// Log-bucketed latency histograms (HDR-style, fixed footprint).
//
// A LatencyHistogram records durations in nanoseconds into 976 atomic
// buckets spanning [1ns, ~584 years] with a guaranteed relative bucket
// width of at most 1/16 (6.25%): values below 16ns get exact unit
// buckets; above that, each power-of-two octave is split into 16
// sub-buckets by the 4 bits after the leading one.  Recording is two
// relaxed fetch_adds and a handful of bit ops — no allocation, no
// locks — so histograms stay live on the engine hot path.
//
// Readers take a HistogramSnapshot (plain values, mergeable across
// engines/jobs) and query p50/p95/p99/max.  Quantiles resolve to a
// bucket's lower bound, i.e. they under-report by at most one bucket
// width; with 6.25% buckets that error is far below scheduling noise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/metric_cell.hpp"

namespace tme::obs {

namespace detail {
/// 4 sub-bucket bits per octave: 16 linear slices between consecutive
/// powers of two.
inline constexpr int kHistSubBits = 4;
inline constexpr std::uint64_t kHistSub = 1u << kHistSubBits;
/// Buckets 0..15 hold exact values 0..15ns; each of the remaining
/// 64 - 4 = 60 octaves contributes 16 sub-buckets: 16 + 60*16 = 976.
inline constexpr std::size_t kHistBuckets =
    kHistSub + (64 - kHistSubBits) * kHistSub;

/// Bucket index for a nanosecond duration.
std::size_t hist_index(std::uint64_t ns);
/// Inclusive lower bound (ns) of the bucket with index `idx`.
std::uint64_t hist_lower_bound(std::size_t idx);
}  // namespace detail

/// Plain-value copy of a histogram, mergeable and queryable.  Bucket
/// vector is sized kHistBuckets (or empty for a default-constructed
/// snapshot, which behaves as all-zero).
struct HistogramSnapshot {
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum_seconds = 0.0;
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;

    /// Value (seconds) at quantile q in [0, 1]: lower bound of the
    /// bucket containing the ceil(q * count)-th recorded value.
    double quantile(double q) const;
    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }
    double max_seconds() const { return 1e-9 * static_cast<double>(max_ns); }
    double min_seconds() const { return 1e-9 * static_cast<double>(min_ns); }
    double mean_seconds() const {
        return count == 0 ? 0.0 : sum_seconds / static_cast<double>(count);
    }

    /// Bucket-wise accumulate (for cross-engine / cross-job rollups).
    void merge(const HistogramSnapshot& other);
};

/// Fixed-size concurrent histogram.  Copy construction/assignment
/// snapshots the source cell by cell (relaxed loads), mirroring
/// MetricCell semantics so metric structs stay plainly copyable.
class LatencyHistogram {
  public:
    LatencyHistogram() = default;
    LatencyHistogram(const LatencyHistogram& other) { *this = other; }
    LatencyHistogram& operator=(const LatencyHistogram& other);

    /// Record one duration.  Negative durations (clock weirdness)
    /// clamp to zero rather than corrupting the high buckets.
    void record(double seconds) {
        record_ns(seconds <= 0.0
                      ? 0
                      : static_cast<std::uint64_t>(seconds * 1e9));
    }
    void record_ns(std::uint64_t ns);

    std::uint64_t count() const { return count_.load(); }
    HistogramSnapshot snapshot() const;

  private:
    MetricCell<std::uint64_t> buckets_[detail::kHistBuckets];
    MetricCell<std::uint64_t> count_;
    MetricCell<double> sum_seconds_;
    MetricCell<std::uint64_t> min_ns_{~std::uint64_t{0}};
    MetricCell<std::uint64_t> max_ns_;
};

}  // namespace tme::obs
