#include "core/bayesian.hpp"

#include <stdexcept>

#include "check/contract.hpp"
#include "check/validators.hpp"
#include "linalg/nnls.hpp"

namespace tme::core {

linalg::Vector bayesian_estimate(const SnapshotProblem& problem,
                                 const linalg::Vector& prior,
                                 const BayesianOptions& options) {
    problem.validate();
    const linalg::SparseMatrix& r = *problem.routing;
    if (prior.size() != r.cols()) {
        throw std::invalid_argument("bayesian_estimate: prior size mismatch");
    }
    if (options.regularization <= 0.0) {
        throw std::invalid_argument(
            "bayesian_estimate: regularization must be positive");
    }
    TME_CONTRACT_DBG_CHECK(
        check::finite(prior, "bayesian_estimate prior"));
    const double w = 1.0 / options.regularization;  // sigma^{-2}

    // Factored path: the MAP normal system G + w I is exactly the
    // factored QP's Hessian shape (sparse CSR Gram + diagonal), and the
    // problem has no equality constraints — nothing quadratic in the
    // pair count is allocated.  Strictly convex, so the minimizer
    // matches the NNLS path below to solver precision.
    if (options.shared_sparse_gram != nullptr &&
        options.shared_gram == nullptr) {
        const linalg::SparseMatrix& g = *options.shared_sparse_gram;
        if (g.rows() != r.cols() || g.cols() != r.cols()) {
            throw std::invalid_argument(
                "bayesian_estimate: shared sparse gram dimension mismatch");
        }
        linalg::Vector rhs = r.multiply_transpose(problem.loads);
        for (std::size_t i = 0; i < rhs.size(); ++i) {
            rhs[i] += w * prior[i];
        }
        const linalg::Vector shift(r.cols(), w);
        linalg::FactoredHessian hessian;
        hessian.matrix = g.view();
        hessian.diagonal = &shift;
        linalg::EqQpNonnegOptions qp_options = options.qp;
        qp_options.equality_operator = nullptr;
        qp_options.warm_start = options.warm_start;
        qp_options.counters = options.counters;
        linalg::Vector x =
            linalg::solve_eq_qp_nonneg_factored(
                hessian, rhs, linalg::SparseMatrix(), {}, qp_options)
                .x;
        TME_CONTRACT_DBG_CHECK(check::solver_boundary(
            "bayesian_estimate (factored)", x,
            /*require_nonnegative=*/true));
        return x;
    }

    // The prior term only shifts the Gram diagonal, so the solver takes
    // the bare Gram plus a virtual shift: no per-window O(P^2) copy of
    // a shared epoch Gram, and the dual refresh runs over R's nonzeros.
    linalg::Matrix local_gram;
    if (options.shared_gram != nullptr) {
        if (options.shared_gram->rows() != r.cols() ||
            options.shared_gram->cols() != r.cols()) {
            throw std::invalid_argument(
                "bayesian_estimate: shared gram dimension mismatch");
        }
    } else {
        local_gram = r.gram();
    }
    const linalg::Matrix& g = options.shared_gram != nullptr
                                  ? *options.shared_gram
                                  : local_gram;
    linalg::Vector rhs = r.multiply_transpose(problem.loads);
    for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] += w * prior[i];

    linalg::NnlsOptions nnls_options;
    nnls_options.warm_start = options.warm_start;
    nnls_options.gram_diagonal_shift = w;
    nnls_options.gram_operator = &r;
    nnls_options.counters = options.counters;
    linalg::Vector x = linalg::nnls_gram(g, rhs, 0.0, nnls_options).x;
    TME_CONTRACT_DBG_CHECK(check::solver_boundary(
        "bayesian_estimate", x, /*require_nonnegative=*/true));
    return x;
}

}  // namespace tme::core
