#include "core/route_change.hpp"

#include <cstring>
#include <random>
#include <stdexcept>

#include "linalg/nnls.hpp"
#include "linalg/qr.hpp"
#include "routing/routing_matrix.hpp"

namespace tme::core {

namespace {

inline void fnv1a_mix(std::uint64_t& h, std::uint64_t v) {
    // Mix 8 bytes at a time; FNV-1a with the 64-bit prime.
    for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (8 * byte)) & 0xffu;
        h *= 0x100000001b3ull;
    }
}

}  // namespace

std::uint64_t routing_fingerprint(const linalg::SparseMatrix& routing) {
    std::uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
    fnv1a_mix(h, routing.rows());
    fnv1a_mix(h, routing.cols());
    for (std::size_t off : routing.row_offsets()) fnv1a_mix(h, off);
    for (std::size_t col : routing.column_indices()) fnv1a_mix(h, col);
    for (double v : routing.values()) {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        fnv1a_mix(h, bits);
    }
    return h;
}

RouteChangeResult route_change_estimate(
    const std::vector<RoutingObservation>& observations) {
    if (observations.empty()) {
        throw std::invalid_argument(
            "route_change_estimate: need >= 1 observation");
    }
    const std::size_t pairs = observations.front().routing->cols();
    for (const RoutingObservation& obs : observations) {
        if (obs.routing == nullptr) {
            throw std::invalid_argument(
                "route_change_estimate: null routing");
        }
        if (obs.routing->cols() != pairs ||
            obs.loads.size() != obs.routing->rows()) {
            throw std::invalid_argument(
                "route_change_estimate: inconsistent observation");
        }
    }

    // Accumulate the Gram system of the stacked problem:
    // G = sum_j R_j' R_j, g = sum_j R_j' t_j.
    // Offline route-change analysis, not the per-window estimation
    // path: the stacked system is solved once per reconvergence
    // event and the dense Grams it sums already exist.
    // lint: allow(dense-alloc)
    linalg::Matrix g(pairs, pairs, 0.0);
    linalg::Vector rhs(pairs, 0.0);
    double btb = 0.0;
    std::size_t total_rows = 0;
    for (const RoutingObservation& obs : observations) {
        g = linalg::add(1.0, g, 1.0, obs.routing->gram());
        linalg::axpy(1.0, obs.routing->multiply_transpose(obs.loads), rhs);
        btb += linalg::dot(obs.loads, obs.loads);
        total_rows += obs.routing->rows();
    }

    RouteChangeResult result;
    const linalg::NnlsResult nn = linalg::nnls_gram(g, rhs, btb);
    result.s = nn.x;
    result.residual_norm = nn.residual_norm;

    // Numerical rank of the stacked matrix via QR of the (tall) stack.
    linalg::Matrix stacked(total_rows, pairs, 0.0);
    std::size_t row = 0;
    for (const RoutingObservation& obs : observations) {
        const linalg::Matrix dense = obs.routing->to_dense();
        for (std::size_t i = 0; i < dense.rows(); ++i, ++row) {
            stacked.set_row(row, dense.row(i));
        }
    }
    if (stacked.rows() >= stacked.cols()) {
        result.stacked_rank = linalg::Qr(stacked).rank();
    } else {
        result.stacked_rank = linalg::Qr(stacked.transposed()).rank();
    }
    return result;
}

linalg::SparseMatrix perturbed_routing(const topology::Topology& topo,
                                       double spread, unsigned seed) {
    if (spread < 0.0) {
        throw std::invalid_argument("perturbed_routing: negative spread");
    }
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> factor(1.0, 1.0 + spread);

    // Copy the topology with perturbed core metrics.  (Rebuild from
    // scratch: Topology is immutable-after-build by design.)
    topology::Topology perturbed;
    for (const topology::Pop& p : topo.pops()) {
        perturbed.add_pop(p, topo.link(topo.ingress_link(0)).capacity_mbps);
    }
    for (std::size_t lid : topo.core_links()) {
        const topology::Link& l = topo.link(lid);
        perturbed.add_core_link(l.src, l.dst, l.capacity_mbps,
                                l.igp_metric * factor(rng));
    }
    return routing::igp_routing_matrix(perturbed);
}

}  // namespace tme::core
