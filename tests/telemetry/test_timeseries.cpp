#include "telemetry/timeseries.hpp"

#include <gtest/gtest.h>

namespace tme::telemetry {
namespace {

TEST(TimeSeries, RecordAndRead) {
    TimeSeriesStore store(2, 3);
    store.record(0, 1, 5.0);
    EXPECT_TRUE(store.has(0, 1));
    EXPECT_FALSE(store.has(0, 0));
    EXPECT_DOUBLE_EQ(store.at(0, 1), 5.0);
    EXPECT_THROW(store.at(0, 0), std::logic_error);
    EXPECT_THROW(store.record(5, 0, 1.0), std::out_of_range);
}

TEST(TimeSeries, LossMarksMissing) {
    TimeSeriesStore store(1, 2);
    store.record(0, 0, 1.0);
    store.record(0, 1, 2.0);
    store.record_loss(0, 1);
    EXPECT_FALSE(store.has(0, 1));
    EXPECT_DOUBLE_EQ(store.loss_fraction(), 0.5);
}

TEST(TimeSeries, SnapshotInterpolatesGaps) {
    TimeSeriesStore store(1, 5);
    store.record(0, 0, 10.0);
    store.record(0, 4, 20.0);
    // Samples 1..3 missing -> linear interpolation.
    EXPECT_DOUBLE_EQ(store.snapshot(2)[0], 15.0);
    EXPECT_DOUBLE_EQ(store.snapshot(1)[0], 12.5);
}

TEST(TimeSeries, SnapshotExtrapolatesEdges) {
    TimeSeriesStore store(1, 4);
    store.record(0, 2, 8.0);
    EXPECT_DOUBLE_EQ(store.snapshot(0)[0], 8.0);  // nearest on the right
    EXPECT_DOUBLE_EQ(store.snapshot(3)[0], 8.0);  // nearest on the left
}

TEST(TimeSeries, NeverPolledObjectYieldsZero) {
    TimeSeriesStore store(2, 3);
    store.record(0, 1, 4.0);
    EXPECT_DOUBLE_EQ(store.snapshot(1)[1], 0.0);
}

TEST(TimeSeries, LossFractionFullRange) {
    TimeSeriesStore store(2, 2);
    EXPECT_DOUBLE_EQ(store.loss_fraction(), 1.0);
    store.record(0, 0, 1.0);
    store.record(0, 1, 1.0);
    store.record(1, 0, 1.0);
    store.record(1, 1, 1.0);
    EXPECT_DOUBLE_EQ(store.loss_fraction(), 0.0);
}

TEST(TimeSeries, SnapshotBoundsChecked) {
    TimeSeriesStore store(1, 2);
    EXPECT_THROW(store.snapshot(2), std::out_of_range);
}

}  // namespace
}  // namespace tme::telemetry
