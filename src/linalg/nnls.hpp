// Non-negative least squares:  minimize ||A x - b||_2  subject to x >= 0.
//
// Implemented as Lawson-Hanson active-set iteration working on the normal
// equations.  Two entry points are provided:
//
//  * nnls(A, b)            — dense or sparse A supplied explicitly;
//  * nnls_gram(AtA, Atb)   — caller supplies the Gram matrix A'A and the
//                            right-hand side A'b.  This is essential for
//                            the Vardi estimator, whose stacked second-
//                            moment system has L(L+1)/2 rows (tens of
//                            thousands) but whose Gram matrix has a cheap
//                            closed form.
//
// The Bayesian/MAP estimator and the penalized fanout QP also route
// through nnls_gram.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "linalg/budget.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "obs/counters.hpp"

namespace tme::linalg {

struct NnlsOptions {
    /// Dual-feasibility tolerance on the gradient w = A'(b - Ax).
    double tolerance = 1e-10;
    /// Hard cap on outer iterations; 0 means 3 * number of variables.
    std::size_t max_iterations = 0;
    /// Optional warm start: the passive set is seeded with the positive
    /// entries of this vector before the Lawson-Hanson loop.  The problem
    /// stays the same, so a strictly convex (positive-definite Gram)
    /// system converges to the same minimizer; only the active-set path
    /// is shortened.  Streaming callers pass the previous window's
    /// solution here.  Not owned; must outlive the call.
    const Vector* warm_start = nullptr;
    /// Treat the supplied Gram matrix as G + gram_diagonal_shift * I
    /// without materializing the shifted copy.  Ridge-regularized
    /// callers (the Bayesian estimator's prior term) pass the bare Gram
    /// plus this shift, saving an O(n^2) copy per solve; every read of
    /// a diagonal entry adds the shift, so the arithmetic is bit-for-bit
    /// the one the pre-shifted copy would produce.
    double gram_diagonal_shift = 0.0;
    /// Optional sparse operator A with A'A equal to the supplied Gram
    /// (before the diagonal shift).  When set, the dual refresh
    /// w = atb - (G + shift I) x is evaluated as atb - A'(A x) - shift x
    /// in O(nnz) instead of the O(n * |passive|) dense sweep — the
    /// difference between paper-scale and generated-backbone runtimes.
    /// The active-set subproblem itself stays dense (it factorizes
    /// G[passive, passive]).  Not owned; must outlive the call.
    const SparseMatrix* gram_operator = nullptr;
    /// Optional iteration telemetry sink: on return the solver adds its
    /// outer active-set iterations to nnls_pivots.  Written once at the
    /// return site only.  Not owned; must outlive the call.
    obs::SolverCounters* counters = nullptr;
    /// Optional cooperative deadline, polled once per outer pivot.  A
    /// tripped budget returns the current (always primal-feasible)
    /// iterate with outcome = budget_exhausted instead of pivoting on.
    /// Not owned; must outlive the call.
    SolveBudget* budget = nullptr;
};

struct NnlsResult {
    Vector x;                    ///< the non-negative solution
    double residual_norm = 0.0;  ///< ||A x - b||_2 (when computable)
    std::size_t iterations = 0;  ///< outer active-set iterations used
    bool converged = false;      ///< dual feasibility reached
    /// How the solve ended: converged, stopped by the configured
    /// max_iterations cap, or cut short by the SolveBudget (see
    /// linalg/budget.hpp for why the last two are distinct).
    SolveOutcome outcome = SolveOutcome::converged;
};

/// Lawson-Hanson NNLS on an explicit dense matrix.
NnlsResult nnls(const Matrix& a, const Vector& b,
                const NnlsOptions& options = {});

/// Lawson-Hanson NNLS on an explicit sparse matrix.
NnlsResult nnls(const SparseMatrix& a, const Vector& b,
                const NnlsOptions& options = {});

/// Lawson-Hanson NNLS given the Gram matrix G = A'A and g = A'b.
/// residual_norm in the result is sqrt(max(0, x'Gx - 2 g'x + btb)) when
/// btb (= b'b) is supplied, otherwise 0.
NnlsResult nnls_gram(const Matrix& gram_matrix, const Vector& atb,
                     double btb = 0.0, const NnlsOptions& options = {});

/// Column access to an implicit symmetric positive (semi)definite Gram
/// matrix G that is never materialized.  `column(j, scratch, support)`
/// writes column j's nonzero values into `scratch` — a caller-owned
/// buffer of length `dimension` that is all-zero on entry — and the
/// ascending support indices into `support` (cleared by the callee);
/// entries outside `support` must be left zero, and the caller zeroes
/// the support entries back after reading.  When the generator replays
/// the Gram kernels' accumulation order (see linalg::gram_column), the
/// produced values are bitwise the rows of the dense Gram, which is
/// what pins nnls_operator to nnls_gram bit-for-bit at scales where
/// both can run.
struct GramColumnOracle {
    std::size_t dimension = 0;
    std::function<void(std::size_t j, std::vector<double>& scratch,
                       std::vector<std::size_t>& support)>
        column;
};

/// Lawson-Hanson NNLS with a factored passive-set solve over an
/// implicit Gram: columns are generated on demand through the oracle,
/// the Cholesky factor of G[passive, passive] is maintained under
/// single-index pivots (O(k^2) append, O(k^2) Givens-style removal),
/// and the dual refresh runs over the cached passive columns — or in
/// O(nnz) through `options.gram_operator` when one is supplied.
/// Nothing of size dimension^2 is ever allocated, dense or CSR; memory
/// is bounded by the passive columns' nonzeros plus the packed factor.
/// Identical pivot decisions and arithmetic to nnls_gram on the same
/// problem: the two are bitwise equal wherever the dense Gram fits.
NnlsResult nnls_operator(const GramColumnOracle& gram, const Vector& atb,
                         double btb = 0.0, const NnlsOptions& options = {});

}  // namespace tme::linalg
