#include "linalg/qp.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/contract.hpp"
#include "check/validators.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"

namespace tme::linalg {

Vector solve_eq_qp(const Matrix& h, const Vector& f, const Matrix& e,
                   const Vector& d) {
    const std::size_t n = h.rows();
    const std::size_t m = e.rows();
    if (h.cols() != n || f.size() != n || (m > 0 && e.cols() != n) ||
        d.size() != m) {
        throw std::invalid_argument("solve_eq_qp: dimension mismatch");
    }
    // KKT system: [H E'; E 0] [x; nu] = [f; d].
    Matrix kkt(n + m, n + m, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) kkt(i, j) = h(i, j);
    }
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            kkt(n + i, j) = e(i, j);
            kkt(j, n + i) = e(i, j);
        }
    }
    Vector rhs(n + m, 0.0);
    for (std::size_t i = 0; i < n; ++i) rhs[i] = f[i];
    for (std::size_t i = 0; i < m; ++i) rhs[n + i] = d[i];

    Lu lu(kkt);
    if (lu.singular()) {
        throw std::runtime_error("solve_eq_qp: singular KKT system");
    }
    Vector sol = lu.solve(rhs);
    return Vector(sol.begin(), sol.begin() + static_cast<std::ptrdiff_t>(n));
}

EqQpNonnegResult solve_eq_qp_nonneg(const Matrix& h, const Vector& f,
                                    const Matrix& e, const Vector& d,
                                    const EqQpNonnegOptions& options) {
    const std::size_t n = h.rows();
    const std::size_t m = e.rows();
    if (h.cols() != n || f.size() != n || (m > 0 && e.cols() != n) ||
        d.size() != m) {
        throw std::invalid_argument("solve_eq_qp_nonneg: dimension mismatch");
    }
    const SparseMatrix* eop = options.equality_operator;
    if (eop != nullptr && (eop->rows() != m || eop->cols() != n)) {
        throw std::invalid_argument(
            "solve_eq_qp_nonneg: equality_operator dimensions do not "
            "match e");
    }
    TME_CONTRACT_DBG_CHECK(
        check::solver_boundary("solve_eq_qp_nonneg", h, f));
    TME_CONTRACT_DBG_CHECK(check::finite(d, "solve_eq_qp_nonneg d"));
    if (eop != nullptr) {
        TME_CONTRACT_DBG_CHECK(check::csr_structure(
            *eop, "solve_eq_qp_nonneg equality_operator"));
    }
    // Active-set on the non-negativity constraints over exact KKT solves
    // of the equality-constrained subproblem (free variables only).  A
    // penalty reformulation would bury the data term's fine structure
    // under the penalty's conditioning; the KKT route preserves it.
    double hmax = 1.0;
    for (std::size_t i = 0; i < n; ++i) hmax = std::max(hmax, h(i, i));
    double fmax = 1.0;
    for (std::size_t i = 0; i < n; ++i) fmax = std::max(fmax, std::abs(f[i]));

    std::vector<std::uint8_t> fixed_zero(n, 0);
    EqQpNonnegResult result;
    result.x.assign(n, 0.0);

    // Warm start: pin the coordinates the seed holds at zero.  A seed
    // with nothing free cannot satisfy a generic E x = d; run cold.
    bool seeded = false;
    if (options.warm_start != nullptr) {
        if (options.warm_start->size() != n) {
            throw std::invalid_argument(
                "solve_eq_qp_nonneg: warm start size mismatch");
        }
        std::size_t pinned = 0;
        for (std::size_t j = 0; j < n; ++j) {
            fixed_zero[j] = (*options.warm_start)[j] <= 0.0 ? 1 : 0;
            pinned += fixed_zero[j];
        }
        if (pinned < n) {
            seeded = true;
        } else {
            std::fill(fixed_zero.begin(), fixed_zero.end(), 0);
        }
    }

    const std::size_t max_rounds = 3 * n + 16;
    constexpr std::size_t kMaxSeedRepairs = 4;
    std::size_t releases = 0;
    std::size_t seed_repairs = 0;
    bool budget_tripped = false;
    for (std::size_t round = 0; round < max_rounds; ++round) {
        if (options.budget != nullptr && options.budget->exhausted()) {
            // Deadline cut: hand back the newest iterate (the previous
            // round's primal-feasible point, or the zero vector before
            // any round completed) honestly flagged below.
            budget_tripped = true;
            result.converged = false;
            break;
        }
        std::vector<std::size_t> free_vars;
        for (std::size_t j = 0; j < n; ++j) {
            if (!fixed_zero[j]) free_vars.push_back(j);
        }
        if (free_vars.empty()) break;
        const std::size_t k = free_vars.size();

        // A seed that pins an equality row's entire support leaves the
        // KKT system structurally singular (a multiplier row with no
        // free columns); fall back to cold before burning ridge
        // escalations on it.
        if (seeded) {
            bool rows_supported = true;
            if (eop != nullptr) {
                const CsrView ev = eop->view();
                for (std::size_t r = 0; r < m && rows_supported; ++r) {
                    bool has_free = false;
                    for (std::size_t t = ev.offsets[r];
                         t < ev.offsets[r + 1] && !has_free; ++t) {
                        has_free = !fixed_zero[ev.col_index[t]];
                    }
                    rows_supported = has_free;
                }
            } else {
                for (std::size_t r = 0; r < m && rows_supported; ++r) {
                    bool has_free = false;
                    for (std::size_t a = 0; a < k && !has_free; ++a) {
                        has_free = e(r, free_vars[a]) != 0.0;
                    }
                    rows_supported = has_free;
                }
            }
            if (!rows_supported) {
                std::fill(fixed_zero.begin(), fixed_zero.end(), 0);
                seeded = false;
                continue;
            }
        }
        ++result.iterations;

        // KKT system on the free variables, ridge-regularized because H
        // restricted to the constraint manifold may be singular.  The
        // off-diagonal blocks do not depend on the ridge, so the system
        // is assembled once and only the diagonal is rewritten when a
        // singular factorization forces an escalation.
        Matrix kkt(k + m, k + m, 0.0);
        Vector rhs(k + m, 0.0);
        for (std::size_t a = 0; a < k; ++a) {
            rhs[a] = f[free_vars[a]];
            const double* __restrict hrow = h.row_data(free_vars[a]);
            double* __restrict krow = kkt.row_data(a);
            for (std::size_t b = 0; b < k; ++b) {
                krow[b] = hrow[free_vars[b]];
            }
        }
        if (eop != nullptr) {
            // Free-variable index per column, for scattering E's
            // nonzeros straight into the bordered blocks.
            std::vector<std::size_t> free_index(n, SIZE_MAX);
            for (std::size_t a = 0; a < k; ++a) {
                free_index[free_vars[a]] = a;
            }
            const CsrView ev = eop->view();
            for (std::size_t r = 0; r < m; ++r) {
                for (std::size_t t = ev.offsets[r]; t < ev.offsets[r + 1];
                     ++t) {
                    const std::size_t a = free_index[ev.col_index[t]];
                    if (a == SIZE_MAX) continue;
                    kkt(a, k + r) = ev.values[t];
                    kkt(k + r, a) = ev.values[t];
                }
            }
        } else {
            for (std::size_t a = 0; a < k; ++a) {
                for (std::size_t r = 0; r < m; ++r) {
                    kkt(a, k + r) = e(r, free_vars[a]);
                    kkt(k + r, a) = e(r, free_vars[a]);
                }
            }
        }
        for (std::size_t r = 0; r < m; ++r) rhs[k + r] = d[r];

        double ridge = 1e-10 * hmax;
        Vector sol;
        for (int attempt = 0; attempt < 12; ++attempt) {
            for (std::size_t a = 0; a < k; ++a) {
                kkt(a, a) = h(free_vars[a], free_vars[a]) + ridge;
            }
            Lu lu(kkt);
            if (!lu.singular()) {
                sol = lu.solve(rhs);
                break;
            }
            ridge *= 100.0;
        }
        if (sol.empty()) {
            if (seeded) {
                // A seed that pins an equality row's entire support
                // leaves the KKT system structurally singular (a
                // multiplier row with no free columns).  Treat it like
                // any other inconsistent seed: fall back to cold.
                std::fill(fixed_zero.begin(), fixed_zero.end(), 0);
                seeded = false;
                continue;
            }
            throw std::runtime_error(
                "solve_eq_qp_nonneg: singular KKT system");
        }

        // Fix the negative coordinates at zero and re-solve; the
        // threshold scales with the iterate so numerically-zero
        // coordinates of large-magnitude solutions (loads of order
        // 1e9) are not mislabeled negative.
        double xmax = 0.0;
        for (std::size_t a = 0; a < k; ++a) {
            xmax = std::max(xmax, std::abs(sol[a]));
        }
        const double neg_tol = 1e-9 * std::max(1.0, xmax);
        bool any_negative = false;
        for (std::size_t a = 0; a < k; ++a) {
            if (sol[a] < -neg_tol) {
                fixed_zero[free_vars[a]] = 1;
                any_negative = true;
            }
        }
        if (any_negative) continue;

        // Primal feasible: provisional solution on the free set.
        result.x.assign(n, 0.0);
        for (std::size_t a = 0; a < k; ++a) {
            result.x[free_vars[a]] = std::max(0.0, sol[a]);
        }
        result.converged = true;

        // KKT verification: at the optimum the multiplier of every
        // pinned coordinate, mu_j = (H x - f + E' nu)_j, must be
        // non-negative (nu comes out of the same KKT solve).  A pinned
        // coordinate with mu_j < 0 would lower the objective if freed.
        const double mu_tol = 1e-9 * std::max({1.0, fmax, hmax * xmax});
        std::size_t worst = n;
        double worst_mu = -mu_tol;
        std::vector<std::size_t> violators;
        // E' nu gathered once over the nonzeros when the CSR form is
        // available (the dense fallback walks column j per coordinate).
        Vector etnu;
        if (eop != nullptr && m > 0) {
            const Vector nu(sol.begin() + static_cast<std::ptrdiff_t>(k),
                            sol.begin() + static_cast<std::ptrdiff_t>(k + m));
            etnu = eop->multiply_transpose(nu);
        }
        for (std::size_t j = 0; j < n; ++j) {
            if (!fixed_zero[j]) continue;
            double mu = -f[j];
            const double* __restrict hrow = h.row_data(j);
            for (std::size_t a = 0; a < k; ++a) {
                mu += hrow[free_vars[a]] * sol[a];
            }
            if (eop != nullptr) {
                if (m > 0) mu += etnu[j];
            } else {
                for (std::size_t r = 0; r < m; ++r) {
                    mu += e(r, j) * sol[k + r];
                }
            }
            if (mu < -mu_tol) violators.push_back(j);
            if (mu < worst_mu) {
                worst_mu = mu;
                worst = j;
            }
        }
        if (worst == n) {
            result.warm_accepted = seeded;
            break;
        }
        if (seeded && seed_repairs >= kMaxSeedRepairs) {
            // The seed pinned several coordinates the optimum needs
            // free: it describes a different active set entirely.  Fall
            // back to the cold path wholesale instead of unwinding one
            // coordinate at a time.
            std::fill(fixed_zero.begin(), fixed_zero.end(), 0);
            seeded = false;
            result.converged = false;
            continue;
        }
        if (!seeded && releases >= n) {
            // Anti-cycling cap: keep the primal-feasible point but do
            // not claim KKT optimality — a violating multiplier was
            // just found.
            result.converged = false;
            break;
        }
        // Release infeasible pinned coordinates and re-solve.  A seeded
        // run repairs its mildly drifted active set by freeing every
        // violator at once (usually one extra small KKT solve — far
        // cheaper than a cold restart whose first solve runs on the
        // full free set); the cold path releases one coordinate at a
        // time, the textbook anti-cycling discipline.
        if (seeded) {
            ++seed_repairs;
            for (std::size_t j : violators) fixed_zero[j] = 0;
        } else {
            ++releases;
            fixed_zero[worst] = 0;
        }
        result.converged = false;
    }

    result.active.assign(fixed_zero.begin(), fixed_zero.end());
    if (m > 0) {
        Vector ex = eop != nullptr ? eop->multiply(result.x)
                                   : gemv(e, result.x);
        result.equality_violation = nrm_inf(sub(ex, d));
    }
    result.outcome = result.converged  ? SolveOutcome::converged
                     : budget_tripped ? SolveOutcome::budget_exhausted
                                      : SolveOutcome::iteration_capped;
    if (options.counters != nullptr) {
        options.counters->qp_active_set_rounds += result.iterations;
    }
    TME_CONTRACT_DBG_CHECK(
        check::solver_boundary("solve_eq_qp_nonneg", result.x));
    return result;
}

namespace {

/// Column adjacency of a CSR matrix: per column, the (row, value)
/// pairs with rows ascending.  The projected-CG solve needs E's
/// columns to assemble the constraint normal matrix E_F M^-1 E_F'.
struct ColumnLists {
    std::vector<std::size_t> offsets;  // cols + 1
    std::vector<std::size_t> rows;
    std::vector<double> values;
};

ColumnLists column_lists(const CsrView& a) {
    ColumnLists c;
    c.offsets.assign(a.cols + 1, 0);
    const std::size_t nnz = a.rows > 0 ? a.offsets[a.rows] : 0;
    for (std::size_t k = 0; k < nnz; ++k) ++c.offsets[a.col_index[k] + 1];
    for (std::size_t j = 0; j < a.cols; ++j) {
        c.offsets[j + 1] += c.offsets[j];
    }
    c.rows.resize(nnz);
    c.values.resize(nnz);
    std::vector<std::size_t> cursor(c.offsets.begin(), c.offsets.end() - 1);
    for (std::size_t i = 0; i < a.rows; ++i) {
        for (std::size_t k = a.offsets[i]; k < a.offsets[i + 1]; ++k) {
            const std::size_t slot = cursor[a.col_index[k]]++;
            c.rows[slot] = i;
            c.values[slot] = a.values[k];
        }
    }
    return c;
}

// --- Hessian access policies ---------------------------------------------
//
// The active-set driver below is shared between the CSR factored
// Hessian and the pure-operator form.  A policy answers the five
// Hessian touchpoints the driver has: the total diagonal, dense
// gathers of free rows (exact-LU regime), the restricted operator
// product (CG regime), and the pinned-multiplier terms.  The CSR
// policy reproduces the pre-refactor loops instruction for
// instruction, which is what keeps the factored path bit-for-bit its
// old self — and, transitively, bit-for-bit the dense solver in the
// exact-LU regime.

struct CsrHessPolicy {
    CsrView h;
    const Vector* added;  // optional added diagonal
    Vector xfull;         // n-sized scatter scratch for apply_free

    explicit CsrHessPolicy(const FactoredHessian& hf)
        : h(hf.matrix), added(hf.diagonal), xfull(hf.matrix.cols, 0.0) {}

    std::size_t dimension() const { return h.cols; }

    void total_diagonal(Vector& hdiag) const {
        const std::size_t n = h.cols;
        hdiag.assign(n, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            double v = 0.0;
            for (std::size_t t = h.offsets[i]; t < h.offsets[i + 1]; ++t) {
                if (h.col_index[t] == i) {
                    v = h.values[t];
                    break;
                }
                if (h.col_index[t] > i) break;
            }
            if (added != nullptr) v += (*added)[i];
            hdiag[i] = v;
        }
    }

    void gather_free_row(std::size_t i,
                         const std::vector<std::size_t>& free_index,
                         double* __restrict krow) const {
        for (std::size_t t = h.offsets[i]; t < h.offsets[i + 1]; ++t) {
            const std::size_t b = free_index[h.col_index[t]];
            if (b != SIZE_MAX) krow[b] = h.values[t];
        }
    }

    // out = (H_FF + ridge I) w via a scatter into full space.
    void apply_free(const Vector& w,
                    const std::vector<std::size_t>& free_vars, double ridge,
                    Vector& out) {
        const std::size_t k = free_vars.size();
        for (std::size_t a = 0; a < k; ++a) xfull[free_vars[a]] = w[a];
        for (std::size_t a = 0; a < k; ++a) {
            const std::size_t i = free_vars[a];
            double acc = 0.0;
            for (std::size_t t = h.offsets[i]; t < h.offsets[i + 1]; ++t) {
                acc += h.values[t] * xfull[h.col_index[t]];
            }
            if (added != nullptr) acc += (*added)[i] * w[a];
            out[a] = acc + ridge * w[a];
        }
        for (std::size_t a = 0; a < k; ++a) xfull[free_vars[a]] = 0.0;
    }

    void prepare_mu(const Vector&, const std::vector<std::size_t>&, bool) {}

    // mu += sum over free columns of H(j, col) * sol[col].  The row walk
    // restricted to the free columns visits the same nonzero terms,
    // ascending, as the dense solver's free-variable sweep (the skipped
    // terms are exact zeros).  The added diagonal never contributes: j
    // is pinned, so its diagonal multiplies nothing free.
    void add_mu_terms(std::size_t j,
                      const std::vector<std::size_t>& free_index,
                      const Vector& sol, double& mu) const {
        for (std::size_t t = h.offsets[j]; t < h.offsets[j + 1]; ++t) {
            const std::size_t a = free_index[h.col_index[t]];
            if (a != SIZE_MAX) mu += h.values[t] * sol[a];
        }
    }
};

struct OperatorHessPolicy {
    const HessianOperator* op;
    Vector xfull;  // n-sized scatter scratch
    Vector ybuf;   // n-sized operator output
    std::vector<double> colscratch;
    std::vector<std::size_t> support;
    Vector mu_full;        // H x at the current iterate (CG-regime sweep)
    bool mu_ready = false;

    explicit OperatorHessPolicy(const HessianOperator& hop)
        : op(&hop),
          xfull(hop.dimension, 0.0),
          ybuf(hop.dimension, 0.0),
          colscratch(hop.dimension, 0.0),
          mu_full(hop.dimension, 0.0) {}

    std::size_t dimension() const { return op->dimension; }

    void total_diagonal(Vector& hdiag) const {
        hdiag.assign(op->dimension, 0.0);
        op->diag(hdiag);
        if (op->diagonal != nullptr) {
            for (std::size_t i = 0; i < op->dimension; ++i) {
                hdiag[i] += (*op->diagonal)[i];
            }
        }
    }

    void gather_free_row(std::size_t i,
                         const std::vector<std::size_t>& free_index,
                         double* __restrict krow) {
        // Rows through the symmetric column generator; the generated
        // values are bitwise the CSR row when the generator replays the
        // Gram kernels' accumulation order.
        op->column(i, colscratch, support);
        for (std::size_t q : support) {
            const std::size_t b = free_index[q];
            if (b != SIZE_MAX) krow[b] = colscratch[q];
        }
        for (std::size_t q : support) colscratch[q] = 0.0;
    }

    void apply_free(const Vector& w,
                    const std::vector<std::size_t>& free_vars, double ridge,
                    Vector& out) {
        const std::size_t k = free_vars.size();
        for (std::size_t a = 0; a < k; ++a) xfull[free_vars[a]] = w[a];
        op->apply(xfull, ybuf);
        for (std::size_t a = 0; a < k; ++a) {
            const std::size_t i = free_vars[a];
            double acc = ybuf[i];
            if (op->diagonal != nullptr) acc += (*op->diagonal)[i] * w[a];
            out[a] = acc + ridge * w[a];
        }
        for (std::size_t a = 0; a < k; ++a) xfull[free_vars[a]] = 0.0;
    }

    // CG-regime multiplier sweep: one full operator product serves every
    // pinned coordinate (per-row generation would cost a column per
    // pinned variable — quadratic over the run at scale).  The exact-LU
    // regime keeps the per-row walk for bitwise parity with the CSR
    // policy.
    void prepare_mu(const Vector& sol,
                    const std::vector<std::size_t>& free_vars,
                    bool used_cg) {
        mu_ready = used_cg;
        if (!used_cg) return;
        const std::size_t k = free_vars.size();
        for (std::size_t a = 0; a < k; ++a) xfull[free_vars[a]] = sol[a];
        op->apply(xfull, mu_full);
        for (std::size_t a = 0; a < k; ++a) xfull[free_vars[a]] = 0.0;
    }

    void add_mu_terms(std::size_t j,
                      const std::vector<std::size_t>& free_index,
                      const Vector& sol, double& mu) {
        if (mu_ready) {
            mu += mu_full[j];
            return;
        }
        op->column(j, colscratch, support);
        for (std::size_t q : support) {
            const std::size_t a = free_index[q];
            if (a != SIZE_MAX) mu += colscratch[q] * sol[a];
        }
        for (std::size_t q : support) colscratch[q] = 0.0;
    }
};

/// Matrix-free solve of the equality-constrained subproblem on the
/// free set:  min (1/2) x'(H + ridge I)x - f'x  s.t.  E_F x = d,
/// where H is the policy's Hessian restricted to the free variables.
/// Projected CG with the constraint preconditioner [M E'; E 0]
/// (M = Jacobi diagonal of H + ridge): each application costs one
/// O(nnz(E_F)) projection plus an m x m triangular solve, and each
/// iteration one operator product.  Feasibility is maintained by the
/// projection — even a truncated solve returns an E_F x = d point.
/// Returns (x_F, nu) of length k + m, or an empty vector when
/// E_F M^-1 E_F' is structurally singular (an equality row with no
/// free support).
template <typename HessPolicy>
Vector pcg_kkt_solve(HessPolicy& hp, const Vector& hdiag_total,
                     const Vector& f, const CsrView& ev,
                     const ColumnLists& ecols, const Vector& d,
                     const std::vector<std::size_t>& free_vars,
                     const std::vector<std::size_t>& free_index,
                     double ridge, const Vector* initial_full,
                     const EqQpNonnegOptions& options,
                     std::size_t& cg_iterations) {
    const std::size_t k = free_vars.size();
    const std::size_t m = ev.rows;

    // Jacobi metric; strictly positive thanks to the ridge.
    Vector mdiag(k);
    for (std::size_t a = 0; a < k; ++a) {
        mdiag[a] = hdiag_total[free_vars[a]] + ridge;
    }

    // Constraint normal matrix S = E_F M^-1 E_F' via E's columns
    // (cost sum_j colnnz(j)^2 — one flop per column on the fanout E).
    std::optional<Cholesky> schol;
    if (m > 0) {
        Matrix smat(m, m, 0.0);
        for (std::size_t a = 0; a < k; ++a) {
            const std::size_t j = free_vars[a];
            const double mi = 1.0 / mdiag[a];
            for (std::size_t c1 = ecols.offsets[j];
                 c1 < ecols.offsets[j + 1]; ++c1) {
                for (std::size_t c2 = c1; c2 < ecols.offsets[j + 1];
                     ++c2) {
                    smat(ecols.rows[c1], ecols.rows[c2]) +=
                        ecols.values[c1] * ecols.values[c2] * mi;
                }
            }
        }
        symmetrize_from_upper(smat);
        // The caller guarantees every row has free support, so the
        // diagonal is positive; only a tiny conditioning jitter is ever
        // appropriate here.  A factorization that still fails (truly
        // dependent equality rows) is reported as singular — hiding it
        // behind a large jitter would silently solve a different
        // problem.
        double smax = 0.0;
        for (std::size_t r = 0; r < m; ++r) {
            smax = std::max(smax, smat(r, r));
        }
        double jitter = 0.0;
        for (int attempt = 0; attempt < 3 && !schol.has_value();
             ++attempt) {
            schol = try_cholesky(smat, jitter);
            jitter = std::max(jitter * 100.0, 1e-14 * std::max(1.0, smax));
        }
        if (!schol.has_value()) return {};
    }

    // out = E_F w (w in free space).
    Vector escratch(m, 0.0);
    auto e_apply = [&](const Vector& w, Vector& out) {
        for (std::size_t r = 0; r < m; ++r) {
            double acc = 0.0;
            for (std::size_t t = ev.offsets[r]; t < ev.offsets[r + 1];
                 ++t) {
                const std::size_t a = free_index[ev.col_index[t]];
                if (a != SIZE_MAX) acc += ev.values[t] * w[a];
            }
            out[r] = acc;
        }
    };
    // v -= M^-1 E_F' lambda.
    auto et_apply_scaled_sub = [&](const Vector& lambda, Vector& v) {
        for (std::size_t r = 0; r < m; ++r) {
            const double lr = lambda[r];
            if (lr == 0.0) continue;
            for (std::size_t t = ev.offsets[r]; t < ev.offsets[r + 1];
                 ++t) {
                const std::size_t a = free_index[ev.col_index[t]];
                if (a != SIZE_MAX) v[a] -= ev.values[t] * lr / mdiag[a];
            }
        }
    };
    // v = P M^-1 r: the constraint-preconditioner application.
    Vector lambda(m, 0.0);
    auto precondition = [&](const Vector& r_, Vector& v) {
        for (std::size_t a = 0; a < k; ++a) v[a] = r_[a] / mdiag[a];
        if (m > 0) {
            e_apply(v, escratch);
            lambda = schol->solve(escratch);
            et_apply_scaled_sub(lambda, v);
        }
    };
    // out = (H_FF + ridge I) w, through the policy.
    auto h_apply = [&](const Vector& w, Vector& out) {
        hp.apply_free(w, free_vars, ridge, out);
    };

    // Feasible start.  Cold: the least-M-norm point
    // x0 = M^-1 E_F' S^-1 d.  With a prior iterate (the previous
    // active-set round's solution — the rounds differ by a few pinned
    // coordinates, so it is nearly optimal already): restrict it to the
    // free set and correct the constraint residual in the M metric,
    // x0 = x_prev + M^-1 E_F' S^-1 (d - E_F x_prev).  Later rounds then
    // converge in a handful of CG iterations instead of restarting the
    // whole Krylov build-up.
    Vector x(k, 0.0);
    if (initial_full != nullptr) {
        for (std::size_t a = 0; a < k; ++a) {
            x[a] = (*initial_full)[free_vars[a]];
        }
    }
    if (m > 0) {
        Vector cresid(m, 0.0);
        if (initial_full != nullptr) {
            e_apply(x, cresid);
            for (std::size_t r = 0; r < m; ++r) {
                cresid[r] = d[r] - cresid[r];
            }
        } else {
            cresid = d;
        }
        const Vector lambda0 = schol->solve(cresid);
        for (std::size_t r = 0; r < m; ++r) {
            const double lr = lambda0[r];
            if (lr == 0.0) continue;
            for (std::size_t t = ev.offsets[r]; t < ev.offsets[r + 1];
                 ++t) {
                const std::size_t a = free_index[ev.col_index[t]];
                if (a != SIZE_MAX) x[a] += ev.values[t] * lr / mdiag[a];
            }
        }
    }

    Vector hx(k, 0.0);
    Vector resid(k, 0.0);
    Vector v(k, 0.0);
    Vector p(k, 0.0);
    Vector hq(k, 0.0);
    // The stopping threshold is anchored to a fixed problem scale (the
    // preconditioned gradient norm at x = 0) rather than this solve's
    // own initial residual: a warm-started solve that begins close to
    // the optimum must be allowed to stop after a handful of
    // iterations instead of being asked for the same multiplicative
    // reduction a cold solve needs.
    double fscale = 0.0;
    for (std::size_t a = 0; a < k; ++a) {
        fscale += f[free_vars[a]] * f[free_vars[a]] / mdiag[a];
    }
    const std::size_t max_iterations =
        options.cg_max_iterations > 0
            ? options.cg_max_iterations
            : std::min<std::size_t>(2 * (k + m) + 50, 1500);
    std::size_t it = 0;
    double tol2 = 0.0;
    Vector x_best(k, 0.0);
    // Restart loop: the recursively updated residual drifts from the
    // true residual (textbook CG behaviour), so each pass recomputes it
    // from x and a pass that still measures large gets the remaining
    // iteration budget with a fresh Krylov space.  Two floor guards
    // keep the recurrence honest once double precision is exhausted:
    // within a pass the best-residual iterate is snapshotted and a
    // clearly diverging recurrence (junk alpha steps at the floor can
    // catapult x off the constraint manifold) is cut and rolled back,
    // and a pass that failed to halve the true residual ends the solve
    // (the floor is reached; more iterations cannot help).
    for (int restart = 0; restart < 4 && it < max_iterations; ++restart) {
        h_apply(x, hx);
        for (std::size_t a = 0; a < k; ++a) {
            resid[a] = hx[a] - f[free_vars[a]];
        }
        precondition(resid, v);
        for (std::size_t a = 0; a < k; ++a) p[a] = -v[a];
        double rv = 0.0;
        for (std::size_t a = 0; a < k; ++a) rv += resid[a] * v[a];
        if (restart == 0) {
            tol2 = options.cg_tolerance * options.cg_tolerance *
                   std::max(std::max(rv, 0.0), fscale);
        }
        if (!(rv > tol2) || !std::isfinite(rv)) break;  // truly done
        const double rv_pass_start = rv;
        double rv_best = rv;
        std::copy(x.begin(), x.end(), x_best.begin());
        while (it < max_iterations && std::isfinite(rv) && rv > tol2 &&
               rv > 0.0) {
            // Cooperative deadline: a truncated solve is still usable —
            // the projection keeps E_F x = d at every iterate, and the
            // best-residual snapshot below hands back the strongest
            // point reached.  The sticky trip also ends the restart
            // loop (a pass that did not halve the residual breaks out).
            if (options.budget != nullptr && options.budget->exhausted()) {
                break;
            }
            h_apply(p, hq);
            double php = 0.0;
            for (std::size_t a = 0; a < k; ++a) php += p[a] * hq[a];
            if (!(php > 0.0) || !std::isfinite(php)) break;
            const double alpha = rv / php;
            for (std::size_t a = 0; a < k; ++a) x[a] += alpha * p[a];
            for (std::size_t a = 0; a < k; ++a) resid[a] += alpha * hq[a];
            precondition(resid, v);
            double rv_next = 0.0;
            for (std::size_t a = 0; a < k; ++a) rv_next += resid[a] * v[a];
            ++it;
            if (!std::isfinite(rv_next) || rv_next <= 0.0) {
                rv = rv_next;
                break;
            }
            if (rv_next < rv_best) {
                rv_best = rv_next;
                std::copy(x.begin(), x.end(), x_best.begin());
            } else if (rv_next > 4.0 * rv_best) {
                rv = rv_next;
                break;  // diverging at the floor; roll back below
            }
            const double beta = rv_next / rv;
            rv = rv_next;
            for (std::size_t a = 0; a < k; ++a) p[a] = -v[a] + beta * p[a];
        }
        if (!(rv > 0.0) || rv > rv_best) {
            std::copy(x_best.begin(), x_best.end(), x.begin());
        }
        if (!(rv_best < 0.5 * rv_pass_start)) break;  // floor reached
    }
    cg_iterations += it;

    // Multiplier estimate nu = S^-1 E_F M^-1 (f_F - H x): the weighted
    // least-squares solution of the free-variable stationarity system
    // (exact at a KKT point; E_F' has full row support by the S
    // factorization above).
    Vector sol(k + m, 0.0);
    std::copy(x.begin(), x.end(), sol.begin());
    if (m > 0) {
        h_apply(x, hx);
        for (std::size_t a = 0; a < k; ++a) {
            v[a] = (f[free_vars[a]] - hx[a]) / mdiag[a];
        }
        e_apply(v, escratch);
        const Vector nu = schol->solve(escratch);
        std::copy(nu.begin(), nu.end(),
                  sol.begin() + static_cast<std::ptrdiff_t>(k));
    }
    return sol;
}

/// Shared active-set driver over a Hessian access policy.  Both public
/// entry points validate their inputs and land here; the policy decides
/// how the five Hessian touchpoints (total diagonal, dense free-row
/// gathers, restricted operator products, multiplier preparation and
/// per-coordinate multiplier terms) are evaluated.  `name` labels
/// diagnostics.
template <typename HessPolicy>
EqQpNonnegResult eq_qp_nonneg_active_set(HessPolicy& hp, const Vector& f,
                                         const SparseMatrix& e,
                                         const Vector& d,
                                         const EqQpNonnegOptions& options,
                                         const char* name) {
    const std::size_t n = hp.dimension();
    const std::size_t m = e.rows();
    const CsrView ev = e.view();

    // Total Hessian diagonal (matrix diagonal + added diagonal) — the
    // only dense-H quantity the active-set driver ever reads.
    Vector hdiag(n, 0.0);
    hp.total_diagonal(hdiag);
    double hmax = 1.0;
    for (std::size_t i = 0; i < n; ++i) hmax = std::max(hmax, hdiag[i]);
    double fmax = 1.0;
    for (std::size_t i = 0; i < n; ++i) fmax = std::max(fmax, std::abs(f[i]));

    const ColumnLists ecols = column_lists(ev);

    std::vector<std::uint8_t> fixed_zero(n, 0);
    EqQpNonnegResult result;
    result.x.assign(n, 0.0);

    // Warm start: pin the coordinates the seed holds at zero (same
    // verified-seed discipline as the dense solver).
    bool seeded = false;
    if (options.warm_start != nullptr) {
        if (options.warm_start->size() != n) {
            throw std::invalid_argument(std::string(name) +
                                        ": warm start size mismatch");
        }
        std::size_t pinned = 0;
        for (std::size_t j = 0; j < n; ++j) {
            fixed_zero[j] = (*options.warm_start)[j] <= 0.0 ? 1 : 0;
            pinned += fixed_zero[j];
        }
        if (pinned < n) {
            seeded = true;
        } else {
            std::fill(fixed_zero.begin(), fixed_zero.end(), 0);
        }
    }

    // Step discipline.  Problems in the exact-LU regime replay the
    // dense solver's pin-all-negatives / release-worst moves, which
    // keeps the whole trajectory — and the returned minimizer —
    // bit-for-bit the dense path's.  Problems in the CG regime use
    // block principal pivoting (Portugal-Judice-Vicente): every round
    // flips the complete infeasibility set (negative free coordinates
    // pinned, negative-multiplier pinned coordinates released) while
    // the count of infeasibilities keeps shrinking, and falls back to
    // single worst-coordinate pivots (Murty's finite rule) when it
    // stops shrinking.  Block flips give the bulk convergence of the
    // pin-all discipline; the Murty fallback removes its failure mode
    // (endgame zigzag between nearby active sets, which inexact CG
    // solves otherwise provoke on degenerate problems).
    const bool block_pivoting = n + m > options.dense_kkt_limit;
    std::size_t best_infeasible = n + m + 1;
    std::size_t nonimproving = 0;
    constexpr std::size_t kMaxNonimproving = 3;

    const std::size_t max_rounds = options.max_active_set_rounds > 0
                                       ? options.max_active_set_rounds
                                       : 3 * n + 16;
    constexpr std::size_t kMaxSeedRepairs = 4;
    std::size_t releases = 0;
    std::size_t seed_repairs = 0;
    std::size_t support_repairs = 0;
    std::vector<std::size_t> free_index(n, SIZE_MAX);
    Vector pcg_prev;  // previous round's full-space iterate (CG path)
    // Legacy-discipline anti-cycling: each round's active set is
    // hashed; a revisit ends the loop (the dense discipline has no
    // termination proof under inexact solves).  Block pivoting needs no
    // such guard — the Murty fallback is finite by construction.
    std::vector<std::uint64_t> visited_sets;
    bool budget_tripped = false;
    for (std::size_t round = 0; round < max_rounds; ++round) {
        if (options.budget != nullptr && options.budget->exhausted()) {
            // Deadline cut between rounds.  result.x already holds the
            // newest E-feasible subproblem iterate (block pivoting
            // snapshots it every round; the legacy path stores each
            // primal-feasible point), clamped honestly below.
            budget_tripped = true;
            result.converged = false;
            break;
        }
        std::vector<std::size_t> free_vars;
        for (std::size_t j = 0; j < n; ++j) {
            if (!fixed_zero[j]) free_vars.push_back(j);
        }
        if (free_vars.empty()) break;
        const std::size_t k = free_vars.size();
        std::fill(free_index.begin(), free_index.end(), SIZE_MAX);
        for (std::size_t a = 0; a < k; ++a) free_index[free_vars[a]] = a;

        if (!block_pivoting) {
            // FNV-1a over the active-set bitmap.
            std::uint64_t set_hash = 1469598103934665603ull;
            for (std::size_t j = 0; j < n; ++j) {
                set_hash ^= fixed_zero[j];
                set_hash *= 1099511628211ull;
            }
            if (std::find(visited_sets.begin(), visited_sets.end(),
                          set_hash) != visited_sets.end()) {
                result.converged = false;
                break;
            }
            visited_sets.push_back(set_hash);
        }

        // An equality row whose entire support is pinned makes the
        // subproblem structurally infeasible (a multiplier row with no
        // free columns).  A seed that does this falls back to cold, as
        // in the dense solver; a cold iteration that pinned its way
        // into the state is repaired by releasing the offending row's
        // pins — those pins cannot all be right, since the row sum
        // must still be met.
        {
            bool repaired = false;
            bool seed_unsupported = false;
            for (std::size_t r = 0; r < m; ++r) {
                bool has_free = false;
                for (std::size_t t = ev.offsets[r];
                     t < ev.offsets[r + 1] && !has_free; ++t) {
                    has_free = !fixed_zero[ev.col_index[t]];
                }
                if (has_free) continue;
                if (seeded) {
                    seed_unsupported = true;
                    break;
                }
                if (support_repairs < m + 16) {
                    for (std::size_t t = ev.offsets[r];
                         t < ev.offsets[r + 1]; ++t) {
                        fixed_zero[ev.col_index[t]] = 0;
                    }
                    ++support_repairs;
                    repaired = true;
                }
            }
            if (seed_unsupported) {
                std::fill(fixed_zero.begin(), fixed_zero.end(), 0);
                seeded = false;
                continue;
            }
            if (repaired) continue;
        }
        ++result.iterations;

        Vector sol;
        const bool used_cg = k + m > options.dense_kkt_limit;
        if (!used_cg) {
            // Dense gather of the free-set KKT system — exact LU, and
            // bit-for-bit the dense solver's arithmetic (the gathered
            // values are the same doubles; structural zeros match the
            // dense H's stored zeros).
            Matrix kkt(k + m, k + m, 0.0);
            Vector rhs(k + m, 0.0);
            for (std::size_t a = 0; a < k; ++a) {
                rhs[a] = f[free_vars[a]];
                const std::size_t i = free_vars[a];
                double* __restrict krow = kkt.row_data(a);
                hp.gather_free_row(i, free_index, krow);
            }
            for (std::size_t r = 0; r < m; ++r) {
                for (std::size_t t = ev.offsets[r]; t < ev.offsets[r + 1];
                     ++t) {
                    const std::size_t a = free_index[ev.col_index[t]];
                    if (a == SIZE_MAX) continue;
                    kkt(a, k + r) = ev.values[t];
                    kkt(k + r, a) = ev.values[t];
                }
            }
            for (std::size_t r = 0; r < m; ++r) rhs[k + r] = d[r];

            double ridge = 1e-10 * hmax;
            for (int attempt = 0; attempt < 12; ++attempt) {
                for (std::size_t a = 0; a < k; ++a) {
                    kkt(a, a) = hdiag[free_vars[a]] + ridge;
                }
                Lu lu(kkt);
                if (!lu.singular()) {
                    sol = lu.solve(rhs);
                    break;
                }
                ridge *= 100.0;
            }
        } else {
            // Matrix-free projected CG on the free set, warm-started
            // from the previous round's iterate when there is one.
            const double ridge = 1e-10 * hmax;
            sol = pcg_kkt_solve(hp, hdiag, f, ev, ecols, d, free_vars,
                                free_index, ridge,
                                pcg_prev.empty() ? nullptr : &pcg_prev,
                                options, result.cg_iterations);
            if (!sol.empty()) {
                pcg_prev.assign(n, 0.0);
                for (std::size_t a = 0; a < k; ++a) {
                    pcg_prev[free_vars[a]] = sol[a];
                }
            }
        }
        if (sol.empty()) {
            if (seeded) {
                std::fill(fixed_zero.begin(), fixed_zero.end(), 0);
                seeded = false;
                continue;
            }
            throw std::runtime_error(std::string(name) +
                                     ": singular KKT system");
        }

        // Decision thresholds scale with the iterate, as in the dense
        // solver.  CG rounds widen the band two orders above the inner
        // solve's ~1e-9 accuracy so coordinates inside the error band
        // do not flip classification from round to round.
        const double decision_tol = used_cg ? 1e-7 : 1e-9;
        double xmax = 0.0;
        for (std::size_t a = 0; a < k; ++a) {
            xmax = std::max(xmax, std::abs(sol[a]));
        }
        const double neg_tol = decision_tol * std::max(1.0, xmax);
        const double mu_tol =
            decision_tol * std::max({1.0, fmax, hmax * xmax});

        std::vector<std::size_t> negatives;
        for (std::size_t a = 0; a < k; ++a) {
            if (sol[a] < -neg_tol) negatives.push_back(a);
        }

        // Pinned-coordinate multipliers mu_j = (H x - f + E' nu)_j.
        // The H row walk restricted to the free columns visits the
        // same nonzero terms, ascending, as the dense solver's
        // free-variable sweep (the skipped terms are exact zeros), and
        // E' nu gathers over E's nonzeros.  Block pivoting consumes
        // the multipliers every round; the legacy discipline — like
        // the dense solver it replays — only reads them at primal-
        // feasible rounds, so the sweep is skipped on its pin rounds.
        std::size_t worst = n;
        double worst_mu = -mu_tol;
        std::vector<std::size_t> violators;
        if (block_pivoting || negatives.empty()) {
            Vector etnu;
            if (m > 0) {
                const Vector nu(
                    sol.begin() + static_cast<std::ptrdiff_t>(k),
                    sol.begin() + static_cast<std::ptrdiff_t>(k + m));
                etnu = e.multiply_transpose(nu);
            }
            hp.prepare_mu(sol, free_vars, used_cg);
            for (std::size_t j = 0; j < n; ++j) {
                if (!fixed_zero[j]) continue;
                double mu = -f[j];
                hp.add_mu_terms(j, free_index, sol, mu);
                if (m > 0) mu += etnu[j];
                if (mu < -mu_tol) violators.push_back(j);
                if (mu < worst_mu) {
                    worst_mu = mu;
                    worst = j;
                }
            }
        }

        if (negatives.empty() && worst == n) {
            // Feasible and dual-feasible: the KKT point.
            result.x.assign(n, 0.0);
            for (std::size_t a = 0; a < k; ++a) {
                result.x[free_vars[a]] = std::max(0.0, sol[a]);
            }
            result.converged = true;
            result.warm_accepted = seeded;
            break;
        }

        if (block_pivoting) {
            // Keep the newest subproblem iterate: a round-capped solve
            // must hand back the last E-feasible point (projected CG
            // keeps E_F x = d even truncated), not the all-zero
            // initialization; the final clamp below flags it honestly.
            result.x.assign(n, 0.0);
            for (std::size_t a = 0; a < k; ++a) {
                result.x[free_vars[a]] = sol[a];
            }
            const std::size_t infeasible =
                negatives.size() + violators.size();
            bool block_step = false;
            if (infeasible < best_infeasible) {
                best_infeasible = infeasible;
                nonimproving = 0;
                block_step = true;
            } else if (nonimproving < kMaxNonimproving) {
                ++nonimproving;
                block_step = true;
            }
            if (block_step) {
                for (std::size_t a : negatives) {
                    fixed_zero[free_vars[a]] = 1;
                }
                for (std::size_t j : violators) fixed_zero[j] = 0;
            } else {
                // Murty's rule: flip only the largest-index
                // infeasibility — finite by construction.
                const std::size_t neg_j =
                    negatives.empty() ? 0 : free_vars[negatives.back()];
                const std::size_t vio_j =
                    violators.empty() ? 0 : violators.back();
                if (!negatives.empty() &&
                    (violators.empty() || neg_j > vio_j)) {
                    fixed_zero[neg_j] = 1;
                } else if (!violators.empty()) {
                    fixed_zero[vio_j] = 0;
                }
            }
            result.converged = false;
            continue;
        }

        // Legacy discipline (the dense solver's moves, needed for
        // bitwise parity on the exact-LU path).
        if (!negatives.empty()) {
            for (std::size_t a : negatives) {
                fixed_zero[free_vars[a]] = 1;
            }
            result.converged = false;
            continue;
        }
        // Primal feasible: provisional solution on the free set.
        result.x.assign(n, 0.0);
        for (std::size_t a = 0; a < k; ++a) {
            result.x[free_vars[a]] = std::max(0.0, sol[a]);
        }
        result.converged = true;
        if (seeded && seed_repairs >= kMaxSeedRepairs) {
            std::fill(fixed_zero.begin(), fixed_zero.end(), 0);
            seeded = false;
            result.converged = false;
            continue;
        }
        if (!seeded && releases >= n) {
            result.converged = false;
            break;
        }
        if (seeded) {
            ++seed_repairs;
            for (std::size_t j : violators) fixed_zero[j] = 0;
        } else {
            ++releases;
            fixed_zero[worst] = 0;
        }
        result.converged = false;
    }

    if (!result.converged) {
        // Terminated without a verified KKT point (round cap, release
        // cap, or legacy-path cycle): clamp the last iterate so the
        // caller still gets a nonnegative point, honestly flagged.
        for (double& v : result.x) v = std::max(0.0, v);
    }
    result.active.assign(fixed_zero.begin(), fixed_zero.end());
    if (m > 0) {
        result.equality_violation =
            nrm_inf(sub(e.multiply(result.x), d));
    }
    // A budget trip inside projected CG surfaces through expired():
    // the round then finishes on the truncated iterate and the next
    // round's poll breaks the loop, so both paths land here tripped.
    if (options.budget != nullptr && options.budget->expired()) {
        budget_tripped = true;
    }
    result.outcome = result.converged  ? SolveOutcome::converged
                     : budget_tripped ? SolveOutcome::budget_exhausted
                                      : SolveOutcome::iteration_capped;
    if (options.counters != nullptr) {
        options.counters->qp_active_set_rounds += result.iterations;
        options.counters->qp_cg_iterations += result.cg_iterations;
    }
    TME_CONTRACT_DBG_CHECK(check::solver_boundary(name, result.x));
    return result;
}

}  // namespace

EqQpNonnegResult solve_eq_qp_nonneg_factored(
    const FactoredHessian& hf, const Vector& f, const SparseMatrix& e,
    const Vector& d, const EqQpNonnegOptions& options) {
    const CsrView h = hf.matrix;
    const std::size_t n = h.cols;
    const std::size_t m = e.rows();
    if (h.rows != n || f.size() != n || (m > 0 && e.cols() != n) ||
        d.size() != m) {
        throw std::invalid_argument(
            "solve_eq_qp_nonneg_factored: dimension mismatch");
    }
    if (hf.diagonal != nullptr && hf.diagonal->size() != n) {
        throw std::invalid_argument(
            "solve_eq_qp_nonneg_factored: diagonal size mismatch");
    }
    TME_CONTRACT_DBG_CHECK(check::csr_structure(
        h, "solve_eq_qp_nonneg_factored Hessian"));
    // m == 0 means "no equality constraints": a default-constructed
    // SparseMatrix with no offsets array, not a malformed CSR.
    if (m > 0) {
        TME_CONTRACT_DBG_CHECK(check::csr_structure(
            e, "solve_eq_qp_nonneg_factored equality operator"));
    }
    TME_CONTRACT_DBG_CHECK(
        check::finite(f, "solve_eq_qp_nonneg_factored f"));
    TME_CONTRACT_DBG_CHECK(
        check::finite(d, "solve_eq_qp_nonneg_factored d"));
    if (hf.diagonal != nullptr) {
        TME_CONTRACT_DBG_CHECK(check::finite(
            *hf.diagonal, "solve_eq_qp_nonneg_factored added diagonal"));
    }
    CsrHessPolicy hp(hf);
    return eq_qp_nonneg_active_set(hp, f, e, d, options,
                                   "solve_eq_qp_nonneg_factored");
}

EqQpNonnegResult solve_eq_qp_nonneg_operator(
    const HessianOperator& h, const Vector& f, const SparseMatrix& e,
    const Vector& d, const EqQpNonnegOptions& options) {
    const std::size_t n = h.dimension;
    const std::size_t m = e.rows();
    if (f.size() != n || (m > 0 && e.cols() != n) || d.size() != m) {
        throw std::invalid_argument(
            "solve_eq_qp_nonneg_operator: dimension mismatch");
    }
    if (!h.apply || !h.diag || !h.column) {
        throw std::invalid_argument(
            "solve_eq_qp_nonneg_operator: apply, diag and column "
            "closures must all be set");
    }
    if (h.diagonal != nullptr && h.diagonal->size() != n) {
        throw std::invalid_argument(
            "solve_eq_qp_nonneg_operator: diagonal size mismatch");
    }
    if (m > 0) {
        TME_CONTRACT_DBG_CHECK(check::csr_structure(
            e, "solve_eq_qp_nonneg_operator equality operator"));
    }
    TME_CONTRACT_DBG_CHECK(
        check::finite(f, "solve_eq_qp_nonneg_operator f"));
    TME_CONTRACT_DBG_CHECK(
        check::finite(d, "solve_eq_qp_nonneg_operator d"));
    if (h.diagonal != nullptr) {
        TME_CONTRACT_DBG_CHECK(check::finite(
            *h.diagonal, "solve_eq_qp_nonneg_operator added diagonal"));
    }
    OperatorHessPolicy hp(h);
    return eq_qp_nonneg_active_set(hp, f, e, d, options,
                                   "solve_eq_qp_nonneg_operator");
}

}  // namespace tme::linalg
