// Publication wiring: every engine flavour (serial OnlineEngine,
// PipelinedEngine, FleetDriver jobs) publishes one EstimateSnapshot per
// completed window into an EstimateStore, with strictly monotone
// versions in submission order and snapshot contents bitwise equal to
// the engine's own WindowResults.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "engine/fleet.hpp"
#include "engine/replay.hpp"
#include "serve/publish.hpp"
#include "serve/store.hpp"

namespace tme::serve {
namespace {

scenario::Scenario trimmed_scenario(std::size_t samples) {
    scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe);
    sc.demands.resize(samples);
    sc.loads.resize(samples);
    return sc;
}

engine::EngineConfig cheap_config() {
    engine::EngineConfig config;
    config.window_size = 6;
    config.methods = {engine::Method::gravity, engine::Method::kruithof};
    return config;
}

void expect_snapshot_matches_window(const EstimateSnapshot& snap,
                                    const engine::WindowResult& window) {
    EXPECT_EQ(snap.window_start_sample(), window.window_start_sample);
    EXPECT_EQ(snap.window_end_sample(), window.window_end_sample);
    EXPECT_EQ(snap.window_size(), window.window_size);
    EXPECT_EQ(snap.epoch_fingerprint(), window.epoch_fingerprint);
    ASSERT_EQ(snap.methods().size(), window.runs.size());
    for (std::size_t i = 0; i < window.runs.size(); ++i) {
        const MethodEstimate& me = snap.methods()[i];
        const engine::MethodRun& run = window.runs[i];
        EXPECT_EQ(me.method, run.method);
        ASSERT_EQ(me.estimate.size(), run.estimate.size());
        for (std::size_t p = 0; p < run.estimate.size(); ++p) {
            // Bitwise: the snapshot is a value copy, nothing recomputed.
            EXPECT_EQ(me.estimate[p], run.estimate[p])
                << "pair " << p << " of method " << i;
        }
        if (std::isnan(run.mre)) {
            EXPECT_TRUE(std::isnan(me.mre));
        } else {
            EXPECT_EQ(me.mre, run.mre);
        }
        EXPECT_EQ(me.seconds, run.seconds);
        EXPECT_EQ(me.warm_started, run.warm_started);
        EXPECT_EQ(me.warm_accepted, run.warm_accepted);
    }
}

TEST(ServePublishIntegration, OnlineEnginePublishesEveryWindow) {
    const scenario::Scenario sc = trimmed_scenario(24);
    StoreOptions options;
    options.retention = 32;  // keep every version queryable
    EstimateStore store(options);
    engine::OnlineEngine eng(sc.topo, sc.routing, cheap_config());
    eng.set_window_sink(make_publisher(store));

    const engine::ReplayResult replay = engine::replay_scenario(eng, sc);
    ASSERT_EQ(replay.windows.size(), 24u);
    EXPECT_EQ(store.head_version(), 24u);

    Reader reader(store);
    for (std::uint64_t v = 1; v <= store.head_version(); ++v) {
        const QueryResult<SnapshotRef> ref = reader.at(v);
        ASSERT_TRUE(ref.ok()) << query_status_name(ref.status);
        EXPECT_EQ(ref.value->version(), v);
        EXPECT_TRUE(ref.value->consistent());
        expect_snapshot_matches_window(*ref.value,
                                       replay.windows[v - 1]);
    }
}

TEST(ServePublishIntegration, PipelinedEnginePublishesInSubmissionOrder) {
    const scenario::Scenario sc = trimmed_scenario(24);
    StoreOptions options;
    options.retention = 32;
    EstimateStore store(options);
    engine::EngineConfig config = cheap_config();
    config.threads = 2;  // real overlap: finalize order is arbitrary
    engine::PipelineOptions pipeline;
    pipeline.depth = 4;
    engine::PipelinedEngine eng(sc.topo, sc.routing, config, pipeline);
    eng.set_window_sink(make_publisher(store));

    const engine::ReplayResult replay = engine::replay_scenario(eng, sc);
    ASSERT_EQ(replay.windows.size(), 24u);
    EXPECT_EQ(store.head_version(), 24u);

    // Versions must follow submission order even though windows
    // complete out of order: version v is window v of the stream.
    Reader reader(store);
    for (std::uint64_t v = 1; v <= store.head_version(); ++v) {
        const QueryResult<SnapshotRef> ref = reader.at(v);
        ASSERT_TRUE(ref.ok()) << query_status_name(ref.status);
        EXPECT_TRUE(ref.value->consistent());
        expect_snapshot_matches_window(*ref.value,
                                       replay.windows[v - 1]);
    }
}

TEST(ServePublishIntegration, FleetJobsPublishIntoPerJobStores) {
    const scenario::Scenario sc = trimmed_scenario(18);
    engine::FleetConfig config;
    config.engine = cheap_config();
    config.keep_windows = true;
    config.async_ingest = true;
    engine::FleetDriver fleet(sc.topo, config);

    StoreOptions options;
    options.retention = 32;
    EstimateStore store_a(options);
    EstimateStore store_b(options);
    std::vector<engine::FleetJob> jobs(2);
    jobs[0].name = "a";
    jobs[0].scenario = &sc;
    jobs[0].window_sink = make_publisher(store_a);
    jobs[1].name = "b";
    jobs[1].scenario = &sc;
    jobs[1].engine = cheap_config();
    jobs[1].engine->window_size = 4;
    jobs[1].window_sink = make_publisher(store_b);

    const engine::FleetReport report = fleet.run(jobs);
    ASSERT_EQ(report.jobs.size(), 2u);
    EXPECT_EQ(store_a.head_version(), report.jobs[0].windows);
    EXPECT_EQ(store_b.head_version(), report.jobs[1].windows);

    Reader reader_a(store_a);
    for (std::uint64_t v = 1; v <= store_a.head_version(); ++v) {
        const QueryResult<SnapshotRef> ref = reader_a.at(v);
        ASSERT_TRUE(ref.ok()) << query_status_name(ref.status);
        expect_snapshot_matches_window(
            *ref.value, report.jobs[0].window_results[v - 1]);
    }
    Reader reader_b(store_b);
    const QueryResult<SnapshotRef> head_b = reader_b.latest();
    ASSERT_TRUE(head_b.ok());
    EXPECT_EQ(head_b.value->window_size(), 4u);
}

TEST(ServePublishIntegration, SinkDetachesAndEngineKeepsRunning) {
    const scenario::Scenario sc = trimmed_scenario(8);
    EstimateStore store;
    engine::OnlineEngine eng(sc.topo, sc.routing, cheap_config());
    eng.set_window_sink(make_publisher(store));
    eng.ingest(0, sc.loads[0]);
    EXPECT_EQ(store.head_version(), 1u);
    eng.set_window_sink({});  // detach
    eng.ingest(1, sc.loads[1]);
    EXPECT_EQ(store.head_version(), 1u);
}

}  // namespace
}  // namespace tme::serve
