#include "engine/metrics.hpp"

#include <cmath>
#include <cstdio>

namespace tme::engine {

std::string EngineMetrics::summary() const {
    char line[256];
    std::string out;
    std::snprintf(line, sizeof(line),
                  "samples=%zu gaps=%zu windows=%zu flushes=%zu "
                  "epoch_changes=%zu\n",
                  samples_ingested, gap_samples, windows_run,
                  window_flushes, epoch_changes);
    out += line;
    std::snprintf(line, sizeof(line),
                  "epoch cache: hit rate %.3f (%zu hits, %zu misses, "
                  "%zu evictions, %zu collisions)\n",
                  cache_hit_rate(), cache_hits, cache_misses,
                  cache_evictions, cache_collisions);
    out += line;
    std::snprintf(line, sizeof(line),
                  "latency: total %.3fs, last window %.2fms\n",
                  total_seconds, last_window_seconds * 1e3);
    out += line;
    for (const auto& [method, stats] : methods) {
        std::snprintf(line, sizeof(line),
                      "  %-9s runs=%zu warm=%zu/%zu mean=%.2fms "
                      "last=%.2fms",
                      method_name(method), stats.runs,
                      stats.warm_accepted_runs, stats.warm_runs,
                      stats.mean_seconds() * 1e3, stats.last_seconds * 1e3);
        out += line;
        if (stats.mre_count > 0) {
            std::snprintf(line, sizeof(line), " mean_mre=%.4f last_mre=%.4f",
                          stats.mean_mre(), stats.last_mre);
            out += line;
        }
        out += '\n';
    }
    return out;
}

}  // namespace tme::engine
