// Dense row-major matrix of doubles plus the BLAS-level-2/3 surface needed
// by the traffic-matrix estimation solvers (gemv, gemm, transpose, Gram
// products).  Sizes in this library are small (hundreds of rows/columns),
// so a straightforward cache-friendly implementation is sufficient.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace tme::linalg {

/// Dense row-major matrix.  Invariant: data_.size() == rows_*cols_.
class Matrix {
  public:
    /// Empty 0x0 matrix.
    Matrix() = default;

    /// rows x cols matrix, all entries set to `fill`.
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    /// Builds from nested initializer lists; all rows must have equal size.
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    static Matrix identity(std::size_t n);

    /// Diagonal matrix with d on the diagonal.
    static Matrix diagonal(const Vector& d);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    bool empty() const { return rows_ == 0 || cols_ == 0; }

    double& operator()(std::size_t i, std::size_t j) {
        return data_[i * cols_ + j];
    }
    double operator()(std::size_t i, std::size_t j) const {
        return data_[i * cols_ + j];
    }

    /// Bounds-checked access; throws std::out_of_range.
    double at(std::size_t i, std::size_t j) const;

    /// Pointer to the start of row i (row-major contiguous storage).
    double* row_data(std::size_t i) { return data_.data() + i * cols_; }
    const double* row_data(std::size_t i) const {
        return data_.data() + i * cols_;
    }

    /// Copies row i into a vector.
    Vector row(std::size_t i) const;

    /// Copies column j into a vector.
    Vector col(std::size_t j) const;

    void set_row(std::size_t i, const Vector& v);
    void set_col(std::size_t j, const Vector& v);

    Matrix transposed() const;

    /// Frobenius norm.
    double frobenius_norm() const;

    /// Max |a_ij|.
    double max_abs() const;

    bool operator==(const Matrix& other) const = default;

    /// Human-readable dump (for test failure messages).
    std::string to_string(int precision = 4) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// y = A x.
Vector gemv(const Matrix& a, const Vector& x);

/// y = A' x  (transpose product without forming A').
Vector gemv_transpose(const Matrix& a, const Vector& x);

/// C = A B.
Matrix gemm(const Matrix& a, const Matrix& b);

/// C = A' A  (Gram matrix, exploits symmetry).
Matrix gram(const Matrix& a);

/// C = alpha*A + beta*B.
Matrix add(double alpha, const Matrix& a, double beta, const Matrix& b);

/// Stacks A on top of B (same column count).
Matrix vstack(const Matrix& a, const Matrix& b);

/// Maximum absolute difference between two equally-sized matrices.
double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace tme::linalg
