// Uniform time-series store for link/LSP utilization counters.
//
// The paper's collection system (Section 5.1.2) polls SNMP counters every
// 5 minutes at fixed timestamps, records the exact response time, and
// normalizes the byte counts by the real measurement interval, producing
// uniform rate series.  This container is that end product: per-object
// rates on a fixed 5-minute grid, with gap bookkeeping for lost polls.
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <vector>

namespace tme::telemetry {

/// Rates for a fixed set of objects over a fixed number of intervals.
class TimeSeriesStore {
  public:
    TimeSeriesStore(std::size_t objects, std::size_t intervals);

    std::size_t objects() const { return objects_; }
    std::size_t intervals() const { return intervals_; }

    void record(std::size_t object, std::size_t interval, double rate);

    /// Marks a poll as lost (value stays missing).
    void record_loss(std::size_t object, std::size_t interval);

    bool has(std::size_t object, std::size_t interval) const;
    double at(std::size_t object, std::size_t interval) const;

    /// Vector of all object rates at one interval; missing values filled
    /// by linear interpolation from the object's neighbouring samples
    /// (operators do the same when a poll is lost).
    std::vector<double> snapshot(std::size_t interval) const;

    /// Fraction of polls missing.
    double loss_fraction() const;

    /// Number of objects with a missing poll at one interval (the
    /// streaming engine uses this to flag interpolated samples).
    std::size_t missing_count(std::size_t interval) const;

  private:
    void check(std::size_t object, std::size_t interval) const;
    double interpolate(std::size_t object, std::size_t interval) const;

    std::size_t objects_;
    std::size_t intervals_;
    std::vector<double> values_;
    std::vector<bool> present_;
};

}  // namespace tme::telemetry
