#include "engine/window.hpp"

#include <stdexcept>

namespace tme::engine {

SlidingWindow::SlidingWindow(const topology::Topology* topo,
                             const linalg::SparseMatrix* routing,
                             std::size_t capacity, bool track_load_moments)
    : topo_(topo), capacity_(capacity), track_moments_(track_load_moments) {
    if (topo_ == nullptr) {
        throw std::invalid_argument("SlidingWindow: null topology");
    }
    if (routing == nullptr) {
        throw std::invalid_argument("SlidingWindow: null routing");
    }
    if (capacity_ == 0) {
        throw std::invalid_argument("SlidingWindow: zero capacity");
    }
    if (routing->rows() != topo_->link_count() ||
        routing->cols() != topo_->pair_count()) {
        throw std::invalid_argument(
            "SlidingWindow: routing does not match topology");
    }
    problem_.topo = topo_;
    problem_.routing = routing;
    const std::size_t links = routing->rows();
    const std::size_t nodes = topo_->pop_count();
    const std::size_t pairs = routing->cols();
    sum_loads_.assign(links, 0.0);
    if (track_moments_) {
        // links x links load covariance: L ~ O(hundreds), not O(P^2).
        // lint: allow(dense-alloc)
        sum_outer_ = linalg::Matrix(links, links, 0.0);
    }
    // nodes x nodes source moments: N PoPs, tiny.  lint: allow(dense-alloc)
    source_outer_ = linalg::Matrix(nodes, nodes, 0.0);
    weighted_rhs_.assign(pairs, 0.0);
}

std::size_t SlidingWindow::first_sample() const {
    if (samples_.empty()) {
        throw std::logic_error("SlidingWindow::first_sample: empty");
    }
    return samples_.front();
}

std::size_t SlidingWindow::last_sample() const {
    if (samples_.empty()) {
        throw std::logic_error("SlidingWindow::last_sample: empty");
    }
    return samples_.back();
}

const linalg::Vector& SlidingWindow::latest() const {
    if (problem_.loads.empty()) {
        throw std::logic_error("SlidingWindow::latest: empty");
    }
    return problem_.loads.back();
}

linalg::Vector SlidingWindow::source_totals(
    const linalg::Vector& loads) const {
    const std::size_t nodes = topo_->pop_count();
    linalg::Vector te(nodes, 0.0);
    for (std::size_t n = 0; n < nodes; ++n) {
        te[n] = loads[topo_->ingress_link(n)];
    }
    return te;
}

void SlidingWindow::accumulate(const linalg::Vector& loads, double sign) {
    const std::size_t links = loads.size();
    for (std::size_t l = 0; l < links; ++l) {
        sum_loads_[l] += sign * loads[l];
    }
    if (track_moments_) {
        // Outer products are accumulated for deviations from the epoch
        // anchor so large absolute load levels (e.g. Mbps-scale rates)
        // do not cancel catastrophically in the covariance.
        linalg::Vector d = loads;
        for (std::size_t l = 0; l < links; ++l) d[l] -= anchor_[l];
        for (std::size_t l = 0; l < links; ++l) {
            const double dl = d[l];
            if (dl == 0.0) continue;
            for (std::size_t m = 0; m < links; ++m) {
                sum_outer_(l, m) += sign * dl * d[m];
            }
        }
    }
    const linalg::Vector te = source_totals(loads);
    const std::size_t nodes = te.size();
    for (std::size_t n = 0; n < nodes; ++n) {
        if (te[n] == 0.0) continue;
        for (std::size_t m = 0; m < nodes; ++m) {
            source_outer_(n, m) += sign * te[n] * te[m];
        }
    }
    const linalg::Vector rt = problem_.routing->multiply_transpose(loads);
    const std::size_t pairs = rt.size();
    for (std::size_t p = 0; p < pairs; ++p) {
        const std::size_t src = topo_->pair_nodes(p).first;
        weighted_rhs_[p] += sign * te[src] * rt[p];
    }
}

void SlidingWindow::push(std::size_t sample, linalg::Vector loads,
                         bool gap) {
    if (loads.size() != problem_.routing->rows()) {
        throw std::invalid_argument("SlidingWindow::push: load size");
    }
    if (!samples_.empty() && sample <= samples_.back()) {
        throw std::invalid_argument(
            "SlidingWindow::push: samples must be strictly increasing");
    }
    if (!anchor_set_) {
        anchor_ = loads;
        anchor_set_ = true;
    }
    if (full()) {
        accumulate(problem_.loads.front(), -1.0);
        problem_.pop_front_load();
        samples_.pop_front();
    }
    accumulate(loads, +1.0);
    problem_.push_load(std::move(loads));
    samples_.push_back(sample);
    ++total_pushed_;
    if (gap) ++gap_count_;
}

void SlidingWindow::reset(const linalg::SparseMatrix* routing) {
    if (routing == nullptr) {
        throw std::invalid_argument("SlidingWindow::reset: null routing");
    }
    problem_.routing = routing;
    problem_.loads.clear();
    samples_.clear();
    sum_loads_.assign(routing->rows(), 0.0);
    anchor_set_ = false;
    if (track_moments_) {
        sum_outer_ = linalg::Matrix(routing->rows(), routing->rows(), 0.0);
    }
    source_outer_ =
        linalg::Matrix(topo_->pop_count(), topo_->pop_count(), 0.0);
    weighted_rhs_.assign(routing->cols(), 0.0);
}

void SlidingWindow::rebind_routing(const linalg::SparseMatrix* routing) {
    if (routing == nullptr) {
        throw std::invalid_argument(
            "SlidingWindow::rebind_routing: null routing");
    }
    if (routing->rows() != problem_.routing->rows() ||
        routing->cols() != problem_.routing->cols()) {
        throw std::invalid_argument(
            "SlidingWindow::rebind_routing: dimension mismatch");
    }
    problem_.routing = routing;
}

linalg::Vector SlidingWindow::mean_loads() const {
    if (empty()) {
        throw std::logic_error("SlidingWindow::mean_loads: empty");
    }
    linalg::Vector mean = sum_loads_;
    const double inv_k = 1.0 / static_cast<double>(size());
    for (double& v : mean) v *= inv_k;
    return mean;
}

linalg::Matrix SlidingWindow::covariance() const {
    if (!track_moments_) {
        throw std::logic_error(
            "SlidingWindow::covariance: load moments not tracked");
    }
    if (empty()) {
        throw std::logic_error("SlidingWindow::covariance: empty");
    }
    // Shift invariance: cov(t) == cov(t - anchor), and the deviation
    // mean is mean(t) - anchor.
    const std::size_t links = sum_loads_.size();
    const double inv_k = 1.0 / static_cast<double>(size());
    linalg::Vector dbar(links);
    for (std::size_t l = 0; l < links; ++l) {
        dbar[l] = sum_loads_[l] * inv_k - anchor_[l];
    }
    // links x links covariance: link count, not pair count.  lint: allow(dense-alloc)
    linalg::Matrix cov(links, links, 0.0);
    for (std::size_t l = 0; l < links; ++l) {
        for (std::size_t m = 0; m < links; ++m) {
            cov(l, m) = sum_outer_(l, m) * inv_k - dbar[l] * dbar[m];
        }
    }
    return cov;
}

}  // namespace tme::engine
