#include "engine/replay.hpp"

#include <cmath>
#include <stdexcept>

namespace tme::engine {

ReplayResult replay_scenario(OnlineEngine& engine,
                             const scenario::Scenario& sc,
                             const ReplayOptions& options) {
    if (engine.routing().cols() != sc.topo.pair_count()) {
        throw std::invalid_argument(
            "replay_scenario: engine routing does not match scenario");
    }
    // The scenario truth provider is installed for the duration of the
    // replay only; whatever the caller had attached is restored on exit
    // (including the exception path — the replacement lambda captures
    // the caller-scoped scenario and must never outlive this call).
    TruthProvider saved = engine.truth();
    if (options.attach_truth) {
        engine.set_truth(
            [&sc](std::size_t sample) { return sc.demands.at(sample); });
    }

    ReplayResult result;
    result.windows.reserve(sc.demands.size());
    try {
        scenario::replay(
            sc, options.events,
            [&](std::size_t sample, const linalg::SparseMatrix& routing,
                const linalg::Vector& loads,
                const linalg::Vector& demands) {
                (void)demands;
                if (&routing != &engine.routing()) {
                    engine.set_routing(routing);
                }
                result.windows.push_back(engine.ingest(sample, loads));
            });
    } catch (...) {
        if (options.attach_truth) engine.set_truth(std::move(saved));
        throw;
    }
    if (options.attach_truth) {
        engine.set_truth(std::move(saved));
    }

    std::map<Method, std::pair<double, std::size_t>> acc;
    for (const WindowResult& window : result.windows) {
        for (const MethodRun& run : window.runs) {
            if (std::isnan(run.mre)) continue;
            auto& [sum, count] = acc[run.method];
            sum += run.mre;
            ++count;
        }
    }
    for (const auto& [method, pair] : acc) {
        if (pair.second > 0) {
            result.mean_mre[method] =
                pair.first / static_cast<double>(pair.second);
        }
    }
    return result;
}

}  // namespace tme::engine
