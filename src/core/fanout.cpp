#include "core/fanout.hpp"

#include <cmath>
#include <stdexcept>

#include "check/contract.hpp"
#include "check/validators.hpp"
#include "linalg/qp.hpp"

namespace tme::core {

namespace {

// w_k[p] = te(src(p))[k]: per-pair source totals from the ingress rows.
linalg::Vector pair_source_totals(const topology::Topology& topo,
                                  const linalg::Vector& loads) {
    linalg::Vector w(topo.pair_count(), 0.0);
    for (std::size_t p = 0; p < topo.pair_count(); ++p) {
        const auto [src, dst] = topo.pair_nodes(p);
        (void)dst;
        w[p] = loads[topo.ingress_link(src)];
    }
    return w;
}

}  // namespace

FanoutConstraints FanoutConstraints::build(const topology::Topology& topo) {
    FanoutConstraints c;
    const std::size_t pairs = topo.pair_count();
    const std::size_t nodes = topo.pop_count();
    c.source_of.resize(pairs);
    std::vector<linalg::Triplet> trips;
    trips.reserve(pairs);
    for (std::size_t p = 0; p < pairs; ++p) {
        const std::size_t src = topo.pair_nodes(p).first;
        c.source_of[p] = src;
        trips.push_back({src, p, 1.0});
    }
    c.equality_sparse = linalg::SparseMatrix(nodes, pairs, std::move(trips));
    c.rhs.assign(nodes, 1.0);
    return c;
}

FanoutResult fanout_estimate(const SeriesProblem& problem,
                             const FanoutOptions& options) {
    problem.validate_with_topology();
    const topology::Topology& topo = *problem.topo;
    const linalg::SparseMatrix& r = *problem.routing;
    const std::size_t pairs = r.cols();
    const std::size_t nodes = topo.pop_count();
    const std::size_t window = problem.loads.size();

    const FanoutWindowAggregates& agg = options.aggregates;
    if (!agg.complete() && !agg.empty()) {
        throw std::invalid_argument(
            "fanout_estimate: window aggregates must be supplied together");
    }
    if (agg.complete() &&
        (agg.source_outer->rows() != nodes ||
         agg.source_outer->cols() != nodes ||
         agg.weighted_rhs->size() != pairs ||
         agg.mean_loads->size() != r.rows())) {
        throw std::invalid_argument(
            "fanout_estimate: aggregate dimension mismatch");
    }

    // Sparse Gram G1 = R'R in CSR form, shared per routing epoch by the
    // engine, derived locally otherwise.  The dense P x P Gram the
    // pre-factored path weighted element-by-element is never built.
    linalg::SparseMatrix local_gram;
    if (options.shared_sparse_gram != nullptr) {
        if (options.shared_sparse_gram->rows() != pairs ||
            options.shared_sparse_gram->cols() != pairs) {
            throw std::invalid_argument(
                "fanout_estimate: shared gram dimension mismatch");
        }
    } else {
        local_gram = linalg::gram_sparse_csr(r);
    }
    const linalg::SparseMatrix& g1 = options.shared_sparse_gram != nullptr
                                         ? *options.shared_sparse_gram
                                         : local_gram;
    const linalg::CsrView gv = g1.view();
    const std::size_t gnnz = g1.nonzeros();

    // Equality-constraint structure (per source, fanouts sum to one):
    // shared per routing epoch by the engine, derived locally otherwise.
    FanoutConstraints local_constraints;
    if (options.shared_constraints != nullptr) {
        if (options.shared_constraints->source_of.size() != pairs ||
            options.shared_constraints->equality_sparse.rows() != nodes ||
            options.shared_constraints->equality_sparse.cols() != pairs) {
            throw std::invalid_argument(
                "fanout_estimate: shared constraints dimension mismatch");
        }
    } else {
        local_constraints = FanoutConstraints::build(topo);
    }
    const FanoutConstraints& constraints =
        options.shared_constraints != nullptr ? *options.shared_constraints
                                              : local_constraints;

    // Factored data term H = sum_k W_k G1 W_k: G1's CSR structure with
    // per-entry source weights — H(p, q) = (sum_k w_k[p] w_k[q]) G1(p, q)
    // and the weight only depends on the source nodes of p and q.  Each
    // value multiplies exactly as the dense assembly did (same products,
    // same accumulation order over the window), so the factored values
    // are the dense H's entries bit-for-bit; only the P x P container is
    // gone.
    std::vector<double> hvals(gnnz, 0.0);
    linalg::Vector f(pairs, 0.0);
    const std::vector<std::size_t>& source_of = constraints.source_of;
    if (agg.complete()) {
        const linalg::Matrix& outer = *agg.source_outer;
        for (std::size_t p = 0; p < pairs; ++p) {
            const double* __restrict orow = outer.row_data(source_of[p]);
            for (std::size_t t = gv.offsets[p]; t < gv.offsets[p + 1];
                 ++t) {
                hvals[t] = orow[source_of[gv.col_index[t]]] * gv.values[t];
            }
        }
        f = *agg.weighted_rhs;
    } else {
        linalg::Vector rt;
        for (std::size_t k = 0; k < window; ++k) {
            const linalg::Vector w =
                pair_source_totals(topo, problem.loads[k]);
            r.multiply_transpose_into(problem.loads[k], rt);
            for (std::size_t p = 0; p < pairs; ++p) {
                f[p] += w[p] * rt[p];
                if (w[p] == 0.0) continue;
                const double wp = w[p];
                for (std::size_t t = gv.offsets[p]; t < gv.offsets[p + 1];
                     ++t) {
                    hvals[t] += wp * w[gv.col_index[t]] * gv.values[t];
                }
            }
        }
    }

    // Weak gravity-fanout tie-break (see FanoutOptions): alpha_gravity
    // for pair (n, m) is the destination's share of mean exit traffic.
    // The ridge lives in the factored Hessian's added diagonal — the
    // weighted Gram values stay untouched.
    linalg::Vector tiebreak_diag;
    if (options.gravity_tiebreak_weight > 0.0) {
        linalg::Vector mean_loads(r.rows(), 0.0);
        if (agg.complete()) {
            mean_loads = *agg.mean_loads;
        } else {
            for (const linalg::Vector& t : problem.loads) {
                linalg::axpy(1.0, t, mean_loads);
            }
            linalg::scale(1.0 / static_cast<double>(window), mean_loads);
        }
        double total_exit = 0.0;
        for (std::size_t m = 0; m < nodes; ++m) {
            total_exit += mean_loads[topo.egress_link(m)];
        }
        double hmax = 0.0;
        for (std::size_t p = 0; p < pairs; ++p) {
            for (std::size_t t = gv.offsets[p]; t < gv.offsets[p + 1];
                 ++t) {
                if (gv.col_index[t] == p) {
                    hmax = std::max(hmax, hvals[t]);
                    break;
                }
                if (gv.col_index[t] > p) break;
            }
        }
        const double eps =
            options.gravity_tiebreak_weight * std::max(hmax, 1e-300);
        tiebreak_diag.assign(pairs, eps);
        for (std::size_t p = 0; p < pairs; ++p) {
            const auto [src, dst] = topo.pair_nodes(p);
            (void)src;
            const double alpha_gravity =
                total_exit > 0.0
                    ? mean_loads[topo.egress_link(dst)] / total_exit
                    : 0.0;
            f[p] += eps * alpha_gravity;
        }
    }

    linalg::EqQpNonnegOptions qp_options = options.qp;
    qp_options.equality_operator = nullptr;
    qp_options.warm_start = nullptr;
    if (options.warm_start != nullptr) {
        if (options.warm_start->size() != pairs) {
            throw std::invalid_argument(
                "fanout_estimate: warm start size mismatch");
        }
        qp_options.warm_start = options.warm_start;
    }
    linalg::FactoredHessian hessian;
    hessian.matrix = {pairs, pairs, gv.offsets, gv.col_index, hvals.data()};
    hessian.diagonal =
        tiebreak_diag.empty() ? nullptr : &tiebreak_diag;
    const linalg::EqQpNonnegResult qp = linalg::solve_eq_qp_nonneg_factored(
        hessian, f, constraints.equality_sparse, constraints.rhs,
        qp_options);

    FanoutResult result;
    result.fanouts = qp.x;
    result.equality_violation = qp.equality_violation;
    result.qp_iterations = qp.iterations;
    result.qp_cg_iterations = qp.cg_iterations;
    result.warm_accepted = qp.warm_accepted;

    // Window-averaged demand estimate.  w_k is linear in the loads, so
    // the mean over samples equals the value at the mean loads.
    result.mean_demands.assign(pairs, 0.0);
    if (agg.complete()) {
        const linalg::Vector mean_w =
            pair_source_totals(topo, *agg.mean_loads);
        for (std::size_t p = 0; p < pairs; ++p) {
            result.mean_demands[p] = result.fanouts[p] * mean_w[p];
        }
    } else {
        for (std::size_t k = 0; k < window; ++k) {
            const linalg::Vector w =
                pair_source_totals(topo, problem.loads[k]);
            for (std::size_t p = 0; p < pairs; ++p) {
                result.mean_demands[p] += result.fanouts[p] * w[p];
            }
        }
        for (double& v : result.mean_demands) {
            v /= static_cast<double>(window);
        }
    }
    TME_CONTRACT_DBG_CHECK(check::solver_boundary(
        "fanout_estimate", result.mean_demands,
        /*require_nonnegative=*/true));
    return result;
}

linalg::Vector demands_from_fanout_snapshot(const SnapshotProblem& problem,
                                            const linalg::Vector& fanouts) {
    problem.validate_with_topology();
    if (fanouts.size() != problem.topo->pair_count()) {
        throw std::invalid_argument(
            "demands_from_fanout_snapshot: fanout size mismatch");
    }
    const linalg::Vector w = pair_source_totals(*problem.topo,
                                                problem.loads);
    return linalg::hadamard(fanouts, w);
}

}  // namespace tme::core
