#include "engine/scheduler.hpp"

#include <chrono>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/gravity.hpp"

namespace tme::engine {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

const MethodRun* WindowResult::find(Method method) const {
    for (const MethodRun& run : runs) {
        if (run.method == method) return &run;
    }
    return nullptr;
}

EstimatorScheduler::EstimatorScheduler(std::vector<Method> methods,
                                       MethodOptions options,
                                       std::size_t threads, bool warm_start,
                                       std::size_t min_series_window)
    : methods_(std::move(methods)),
      options_(std::move(options)),
      warm_start_(warm_start),
      min_series_window_(min_series_window < 1 ? 1 : min_series_window),
      warm_(method_count),
      pool_(threads) {
    if (methods_.empty()) {
        throw std::invalid_argument("EstimatorScheduler: no methods");
    }
    // Uniqueness is load-bearing, not just hygiene: each method owns
    // one warm-start slot, and the fanout task writes its slot from
    // inside the pool — two tasks for the same method would race.
    std::vector<bool> seen(method_count, false);
    for (Method m : methods_) {
        std::vector<bool>::reference slot_seen =
            seen[static_cast<std::size_t>(m)];
        if (slot_seen) {
            throw std::invalid_argument(
                "EstimatorScheduler: duplicate method");
        }
        slot_seen = true;
    }
}

void EstimatorScheduler::reset_warm_state() {
    for (WarmSlot& s : warm_) s.valid = false;
}

WindowResult EstimatorScheduler::run(const SlidingWindow& window,
                                     const RoutingEpoch& epoch) {
    if (window.empty()) {
        throw std::logic_error("EstimatorScheduler::run: empty window");
    }
    const Clock::time_point pass_start = Clock::now();

    const core::SeriesProblem& series = window.series();
    core::SnapshotProblem latest;
    latest.topo = series.topo;
    latest.routing = series.routing;
    latest.loads = window.latest();

    const bool run_series = window.size() >= min_series_window_;
    bool need_prior = false;
    bool need_vardi = false;
    bool need_fanout = false;
    for (Method m : methods_) {
        if (m == Method::gravity || m == Method::kruithof ||
            m == Method::entropy || m == Method::bayesian) {
            need_prior = true;
        }
        if (m == Method::vardi && run_series) need_vardi = true;
        if (m == Method::fanout && run_series) need_fanout = true;
    }

    // Gravity prior, shared by Kruithof / entropy / Bayesian.
    const Clock::time_point prior_start = Clock::now();
    const linalg::Vector prior =
        need_prior ? core::gravity_estimate(latest) : linalg::Vector();
    const double prior_seconds = seconds_since(prior_start);

    // Window aggregates, materialized once per window from the ring
    // buffer's incrementally-maintained sums.
    linalg::Vector mean_loads;
    linalg::Matrix covariance;
    core::FanoutWindowAggregates aggregates;
    if (need_vardi || need_fanout) mean_loads = window.mean_loads();
    if (need_vardi) covariance = window.covariance();
    if (need_fanout) {
        aggregates.source_outer = &window.source_outer();
        aggregates.weighted_rhs = &window.weighted_rhs();
        aggregates.mean_loads = &mean_loads;
    }

    std::vector<std::optional<MethodRun>> slots(methods_.size());
    std::vector<std::exception_ptr> errors(methods_.size());
    std::vector<std::function<void()>> tasks;

    for (std::size_t i = 0; i < methods_.size(); ++i) {
        const Method m = methods_[i];
        if (is_series_method(m) && !run_series) continue;
        if (m == Method::gravity) {
            MethodRun run;
            run.method = m;
            run.estimate = prior;
            run.seconds = prior_seconds;
            slots[i] = std::move(run);
            continue;
        }
        tasks.push_back([this, i, m, &latest, &series, &epoch, &prior,
                         &mean_loads, &covariance, &aggregates, &slots,
                         &errors] {
            try {
                const Clock::time_point start = Clock::now();
                MethodRun run;
                run.method = m;
                const WarmSlot& warm = slot(m);
                const bool use_warm = warm_start_ && warm.valid;
                switch (m) {
                    case Method::kruithof: {
                        run.estimate =
                            core::kruithof_general(latest, prior,
                                                   options_.kruithof)
                                .s;
                        break;
                    }
                    case Method::entropy: {
                        core::EntropyOptions opts = options_.entropy;
                        if (use_warm) {
                            opts.solver.initial = &warm.estimate;
                            run.warm_started = true;
                            run.warm_accepted = true;
                        }
                        run.estimate =
                            core::entropy_estimate(latest, prior, opts);
                        break;
                    }
                    case Method::bayesian: {
                        core::BayesianOptions opts = options_.bayesian;
                        opts.shared_gram = &epoch.gram();
                        if (use_warm) {
                            opts.warm_start = &warm.estimate;
                            run.warm_started = true;
                            run.warm_accepted = true;
                        }
                        run.estimate =
                            core::bayesian_estimate(latest, prior, opts);
                        break;
                    }
                    case Method::vardi: {
                        core::VardiOptions opts = options_.vardi;
                        // Per-epoch transformed Gram G1 + w*(G1 .* G1),
                        // built lazily on the first Vardi window of the
                        // epoch.
                        opts.shared_transformed_gram = &epoch.vardi_gram(
                            options_.vardi.second_moment_weight);
                        opts.mean_loads = &mean_loads;
                        opts.load_covariance = &covariance;
                        if (use_warm) {
                            opts.warm_start = &warm.estimate;
                            run.warm_started = true;
                            run.warm_accepted = true;
                        }
                        run.estimate =
                            core::vardi_estimate(series, opts).lambda;
                        break;
                    }
                    case Method::fanout: {
                        core::FanoutOptions opts = options_.fanout;
                        opts.shared_gram = &epoch.gram();
                        opts.shared_constraints =
                            &epoch.fanout_constraints(*series.topo);
                        opts.aggregates = aggregates;
                        if (use_warm) {
                            opts.warm_start = &warm.estimate;
                            run.warm_started = true;
                        }
                        core::FanoutResult fanout =
                            core::fanout_estimate(series, opts);
                        run.warm_accepted = fanout.warm_accepted;
                        run.estimate = std::move(fanout.mean_demands);
                        // The QP's variable space is the fanout vector,
                        // not the demand estimate: thread it into the
                        // next window's active-set seed here.  Safe
                        // without locking — each method owns its slot
                        // and the scheduler joins the pool before
                        // reading any of them.
                        if (warm_start_) {
                            WarmSlot& s = slot(m);
                            s.estimate = std::move(fanout.fanouts);
                            s.valid = true;
                        }
                        break;
                    }
                    case Method::gravity:
                        break;  // handled inline above
                }
                run.seconds = seconds_since(start);
                slots[i] = std::move(run);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    pool_.run_batch(std::move(tasks));

    for (const std::exception_ptr& error : errors) {
        if (error) std::rethrow_exception(error);
    }

    WindowResult result;
    result.window_start_sample = window.first_sample();
    result.window_end_sample = window.last_sample();
    result.window_size = window.size();
    result.epoch_fingerprint = epoch.fingerprint();
    for (std::optional<MethodRun>& maybe : slots) {
        if (!maybe.has_value()) continue;
        // Thread the solution into the next window's warm start for the
        // methods whose optimum is start-point independent (fanout
        // threads its own QP-space state inside the task above).
        const Method m = maybe->method;
        if (warm_start_ &&
            (m == Method::entropy || m == Method::bayesian ||
             m == Method::vardi)) {
            WarmSlot& s = slot(m);
            s.estimate = maybe->estimate;
            s.valid = true;
        }
        result.runs.push_back(std::move(*maybe));
    }
    result.seconds = seconds_since(pass_start);
    return result;
}

}  // namespace tme::engine
