// Figure 3: spatial distribution of traffic — a limited subset of PoPs
// accounts for the majority of network traffic.
#include "bench_common.hpp"

#include <cmath>

#include "traffic/traffic_matrix.hpp"

namespace {

void heatmap(const tme::scenario::Scenario& sc) {
    using namespace tme;
    const std::size_t n = sc.topo.pop_count();
    traffic::TrafficMatrix tm(n, sc.busy_mean_demands());
    double vmax = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) vmax = std::max(vmax, tm(i, j));
    }
    // Log-scale shading like the paper's heat map.
    const char shades[] = " .:-=+*#%@";
    std::printf("\n%s demand heat map (rows = source, cols = dest, "
                "log shading, '@' = max):\n    ",
                sc.name.c_str());
    for (std::size_t j = 0; j < n; ++j) std::printf("%c", 'A' + static_cast<char>(j % 26));
    std::printf("\n");
    for (std::size_t i = 0; i < n; ++i) {
        std::printf("%c %-2zu", 'A' + static_cast<char>(i % 26), i);
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j) {
                std::printf(".");
                continue;
            }
            const double v = tm(i, j);
            int idx = 0;
            if (v > 0.0 && vmax > 0.0) {
                // map [1e-4 vmax, vmax] log range onto the shade ramp
                const double r = std::log10(std::max(v / vmax, 1e-4)) / 4.0 +
                                 1.0;  // in (0, 1]
                idx = std::max(
                    1, std::min(9, static_cast<int>(r * 9.0 + 0.5)));
            }
            std::printf("%c", shades[idx]);
        }
        std::printf("  %s\n", sc.topo.pop(i).name.c_str());
    }
    // Top sources by share.
    const linalg::Vector rows = tm.row_totals();
    const double total = tm.total();
    std::printf("top sources: ");
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&rows](auto a, auto b) {
        return rows[a] > rows[b];
    });
    double top4 = 0.0;
    for (int i = 0; i < 4; ++i) {
        top4 += rows[order[static_cast<std::size_t>(i)]];
        std::printf("%s (%.0f%%) ",
                    sc.topo.pop(order[static_cast<std::size_t>(i)]).name.c_str(),
                    100.0 * rows[order[static_cast<std::size_t>(i)]] / total);
    }
    std::printf("- top 4 PoPs originate %.0f%% of traffic\n",
                100.0 * top4 / total);
}

}  // namespace

int main() {
    tme::bench::header(
        "Figure 3 - spatial distribution of traffic",
        "Fig. 3: per source-destination demand heat maps",
        "a few hub rows/columns dominate both matrices");
    heatmap(tme::bench::europe());
    heatmap(tme::bench::usa());
    return 0;
}
