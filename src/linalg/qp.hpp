// Quadratic programming utilities.
//
// The fanout estimator (paper Section 4.2.4) solves
//
//     minimize    sum_k || R S[k] a - t[k] ||^2
//     subject to  sum_m a_nm = 1 for every source n,   a >= 0
//
// i.e. an equality-constrained QP with non-negativity.  Two solvers are
// provided:
//
//  * solve_eq_qp        — KKT system solve, equality constraints only
//                         (used when the non-negativity constraint is
//                         known to be inactive, and inside tests);
//  * solve_eq_qp_nonneg — active-set iteration on the non-negativity
//                         constraints over exact KKT solves of the
//                         equality-constrained subproblem, honouring
//                         both constraint families.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/nnls.hpp"
#include "linalg/sparse.hpp"
#include "obs/counters.hpp"

namespace tme::linalg {

/// Minimizes (1/2) x'Hx - f'x  subject to  E x = d.
/// H must be symmetric positive semi-definite on the nullspace of E.
/// Solved via the KKT system [H E'; E 0][x; nu] = [f; d] with LU.
/// Throws std::runtime_error if the KKT matrix is singular.
Vector solve_eq_qp(const Matrix& h, const Vector& f, const Matrix& e,
                   const Vector& d);

struct EqQpNonnegOptions {
    /// Optional active-set warm start: a prior primal point (typically
    /// the previous window's solution of a slowly drifting problem
    /// sequence).  Coordinates that are <= 0 in this vector seed the
    /// active set — they start pinned at zero, so the first KKT solve
    /// already works on the reduced free set.  The seed is *verified*:
    /// once the seeded iteration reaches primal feasibility, the
    /// Lagrange multipliers of every pinned coordinate are checked.  A
    /// mildly drifted seed (pinned coordinates the optimum needs free)
    /// is repaired by releasing every violator at once and re-solving;
    /// a seed that keeps failing verification falls back to the cold
    /// path wholesale.  Either way a warm solve returns the same
    /// minimizer as a cold solve.  Size must equal the number of
    /// variables.  Not owned; must outlive the call.
    const Vector* warm_start = nullptr;
    /// Optional CSR form of E (must hold exactly the same coefficients
    /// as the dense `e` argument).  The per-round seed support checks,
    /// the KKT assembly of the constraint blocks, the pinned-multiplier
    /// verification and the final equality-violation evaluation then
    /// iterate E's nonzeros instead of dense m x n sweeps — on the
    /// fanout QP E has one nonzero per column, so this turns O(m * n)
    /// passes into O(n) ones.  With one nonzero per column the produced
    /// iterates are bit-for-bit the dense path's (the skipped terms are
    /// exact zeros); for general E the multiplier sums regroup and the
    /// two paths agree to solver precision.  Not owned; must outlive
    /// the call.
    const SparseMatrix* equality_operator = nullptr;
    /// solve_eq_qp_nonneg_factored only: KKT systems whose bordered
    /// dimension (free variables + equality rows) is at most this are
    /// gathered into a dense matrix and LU-solved exactly — bit-for-bit
    /// the dense-H path on matching inputs.  Larger systems switch to
    /// the matrix-free projected-CG solve, which never allocates
    /// anything quadratic in the variable count.  Every paper-scale
    /// problem (<= 600 pairs) sits far below the default.
    std::size_t dense_kkt_limit = 1024;
    /// solve_eq_qp_nonneg_factored only: relative preconditioned-
    /// residual tolerance of the projected-CG inner solve.  The
    /// default sits just above the double-precision floor of the
    /// recurrence; asking for much less makes every inner solve burn
    /// its remaining budget at the floor without gaining accuracy.
    double cg_tolerance = 1e-10;
    /// solve_eq_qp_nonneg_factored only: hard cap on CG iterations per
    /// KKT solve; 0 picks min(2 * (free + rows) + 50, 1500).  A capped
    /// (inexact) solve still yields a feasible iterate — the equality
    /// constraint is maintained by the projection, not by convergence.
    std::size_t cg_max_iterations = 0;
    /// solve_eq_qp_nonneg_factored only: hard cap on active-set rounds
    /// (KKT solves); 0 picks the dense solver's 3n + 16.  Time-boxed
    /// callers (benches, soft-real-time windows) can bound the whole
    /// solve; a capped run returns the last iterate clamped to the
    /// nonnegative orthant with converged = false.
    std::size_t max_active_set_rounds = 0;
    /// Optional iteration telemetry sink: on return the solver adds its
    /// active-set rounds to qp_active_set_rounds and (factored solver)
    /// its CG total to qp_cg_iterations.  Written once at the return
    /// site only — attaching counters never changes the arithmetic.
    /// Not owned; must outlive the call.
    obs::SolverCounters* counters = nullptr;
    /// Optional cooperative deadline, polled once per active-set round
    /// and once per projected-CG iteration.  A tripped budget returns
    /// the newest iterate (clamped to the nonnegative orthant, equality
    /// feasibility as maintained by the projection) with
    /// outcome = budget_exhausted.  Not owned; must outlive the call.
    SolveBudget* budget = nullptr;
};

/// Factored Hessian H = S + diag(extra): a symmetric sparse matrix in
/// CSR form plus an optional added diagonal, never materialized
/// densely.  This is exactly the shape of the estimator data terms —
/// the fanout QP's source-weighted Gram plus its gravity tie-break
/// ridge, and the Bayesian MAP system's Gram plus the prior precision —
/// whose dense P x P form is the last quadratic-in-pairs allocation at
/// generated-backbone scale (a 200-PoP backbone's 39800^2 Hessian would
/// be ~12.7 GB).  The view (and the diagonal, when set) must outlive
/// the solver call; `matrix` must be square with sorted CSR rows.
struct FactoredHessian {
    CsrView matrix;
    const Vector* diagonal = nullptr;  ///< optional, length matrix.cols
};

struct EqQpNonnegResult {
    Vector x;
    /// Final active set: active[j] != 0 iff x_j is pinned at zero.
    /// Feed back into EqQpNonnegOptions::warm_start (via x itself) to
    /// warm-start the next solve of a nearby problem.
    std::vector<std::uint8_t> active;
    double equality_violation = 0.0;  ///< ||E x - d||_inf after solve
    std::size_t iterations = 0;       ///< KKT solves performed
    bool converged = false;
    /// True when a warm-start seed was supplied, passed KKT
    /// verification, and shaped the returned solution (no cold
    /// fall-back happened).
    bool warm_accepted = false;
    /// Total projected-CG iterations across the KKT solves (factored
    /// solver only; 0 when every solve took the dense-gather path).
    std::size_t cg_iterations = 0;
    /// How the solve ended: converged, stopped by a configured cap
    /// (max_active_set_rounds / the release or cycle guards), or cut
    /// short by the SolveBudget (see linalg/budget.hpp).
    SolveOutcome outcome = SolveOutcome::converged;
};

/// Minimizes (1/2) x'Hx - f'x  subject to  E x = d,  x >= 0, via an
/// active set on the non-negativity constraints with an exact KKT solve
/// of the equality-constrained subproblem at each step.  At primal
/// feasibility the multipliers of the pinned coordinates are verified
/// and infeasible ones are released, so the returned point is the KKT
/// point of the (ridge-regularized) problem — warm and cold runs agree
/// to solver precision.  All tolerances are scale-relative (derived
/// from diag(H) and the iterate magnitude), so the solver behaves
/// identically for loads of order 1 and of order 1e9.
EqQpNonnegResult solve_eq_qp_nonneg(const Matrix& h, const Vector& f,
                                    const Matrix& e, const Vector& d,
                                    const EqQpNonnegOptions& options = {});

/// Minimizes (1/2) x'Hx - f'x  subject to  E x = d,  x >= 0, with the
/// Hessian given in factored form (sparse CSR + diagonal) — the dense
/// P x P H never exists.  Warm-start seeding, equality-row support
/// checks and scale-relative tolerances follow solve_eq_qp_nonneg.
/// Problems whose bordered dimension fits
/// EqQpNonnegOptions::dense_kkt_limit replay the dense solver's
/// pin-all-negatives / release-worst discipline over exact dense
/// gathers of the free-set KKT system (LU) — on inputs whose factored
/// values equal a dense H the produced iterates are bit-for-bit
/// solve_eq_qp_nonneg's with equality_operator set.  Larger problems
/// switch to matrix-free projected CG for the inner solves
/// (constraint-preconditioned with the Jacobi diagonal; O(nnz) per
/// iteration, feasibility maintained by projection) driven by a block
/// principal pivoting active set (flip every infeasibility while the
/// count shrinks, Murty single-pivot fallback when it stops) — the
/// combination that stays robust under inexact inner solves.  `e`
/// doubles as the equality operator (no dense E is taken at all);
/// m == 0 is allowed and reduces to a bound-constrained solve of the
/// factored normal equations — the Bayesian estimator's sparse path.
EqQpNonnegResult solve_eq_qp_nonneg_factored(
    const FactoredHessian& h, const Vector& f, const SparseMatrix& e,
    const Vector& d, const EqQpNonnegOptions& options = {});

/// Matrix-free Hessian H = A + diag(extra) for
/// solve_eq_qp_nonneg_operator: not even the CSR form of the matrix
/// part exists.  This is the last step of the Gram-free ladder — at
/// 500 PoPs the fanout/Bayesian data term's CSR Gram alone holds
/// hundreds of millions of nonzeros, so the solver works entirely
/// through three closures:
///  * `apply`:   y = A x (matrix part only; the added `diagonal` and
///               the solver's ridge are applied by the driver) — one
///               call per CG iteration, O(nnz of the underlying
///               routing operator);
///  * `diag`:    fills a caller-sized vector with A's diagonal;
///  * `column`:  column j of A under the GramColumnOracle scratch +
///               ascending-support contract (see linalg/nnls.hpp) —
///               the dense-gather KKT branch and the pinned-multiplier
///               sweep read rows through it.
/// When `column`/`diag` replay the Gram kernels' accumulation order,
/// the exact-LU regime is bit-for-bit solve_eq_qp_nonneg_factored on
/// the equivalent CSR Hessian; the CG regime agrees to solver
/// precision.  All closures must be set; `diagonal` (when non-null)
/// must have length `dimension` and outlive the call.
struct HessianOperator {
    std::size_t dimension = 0;
    std::function<void(const Vector& x, Vector& y)> apply;
    std::function<void(Vector& out)> diag;
    std::function<void(std::size_t j, std::vector<double>& scratch,
                       std::vector<std::size_t>& support)>
        column;
    const Vector* diagonal = nullptr;  ///< optional, length dimension
};

/// Minimizes (1/2) x'Hx - f'x  subject to  E x = d,  x >= 0, with the
/// Hessian supplied as a pure operator — no dense or CSR form of H is
/// ever materialized, so peak memory is O(n + nnz(E)) regardless of
/// how dense H itself would be.  Step discipline, tolerances, warm
/// starts and the dense-LU / projected-CG regime split all follow
/// solve_eq_qp_nonneg_factored.
EqQpNonnegResult solve_eq_qp_nonneg_operator(
    const HessianOperator& h, const Vector& f, const SparseMatrix& e,
    const Vector& d, const EqQpNonnegOptions& options = {});

}  // namespace tme::linalg
