#include "serve/store.hpp"

#include <chrono>
#include <stdexcept>

#include "check/contract.hpp"
#include "check/validators.hpp"
#include "obs/report.hpp"

namespace tme::serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
    return std::chrono::duration<double>(SteadyClock::now() - start)
        .count();
}

std::vector<std::size_t> estimate_lengths(const EstimateSnapshot& snap) {
    std::vector<std::size_t> lengths;
    lengths.reserve(snap.methods().size());
    for (const MethodEstimate& me : snap.methods()) {
        lengths.push_back(me.estimate.size());
    }
    return lengths;
}

}  // namespace

EstimateStore::EstimateStore(StoreOptions options)
    : retention_(options.retention < 2 ? 2 : options.retention),
      slots_(retention_),
      handles_(options.max_readers < 1 ? 1 : options.max_readers) {}

EstimateStore::~EstimateStore() = default;

std::uint64_t EstimateStore::publish(EstimateSnapshot snap) {
    const SteadyClock::time_point start = SteadyClock::now();
    std::lock_guard<std::mutex> lock(writer_mutex_);
    const std::uint64_t v = head_.load(std::memory_order_relaxed) + 1;
    snap.freeze(v);
    TME_CONTRACT_CHECK(check::snapshot_structure(
        snap.version(), snap.window_start_sample(),
        snap.window_end_sample(), estimate_lengths(snap),
        "EstimateStore::publish"));
    auto owned = std::make_shared<const EstimateSnapshot>(std::move(snap));

    // Seqlock swap: invalidate the slot, install the pointer, stamp the
    // new version — all release, so a reader whose acquire load sees
    // version v also sees the matching pointer (and a reader that
    // catches the swap mid-flight sees version 0 and rejects).
    Slot& slot = slots_[static_cast<std::size_t>(v % retention_)];
    slot.version.store(0, std::memory_order_release);
    slot.ptr.store(owned.get(), std::memory_order_release);
    slot.version.store(v, std::memory_order_release);
    retained_.push_back(std::move(owned));
    // The release store orders the whole snapshot payload (frozen
    // before this line) before the head a reader acquires.
    head_.store(v, std::memory_order_release);

    // Retirement: advance the reclaim floor, then free retained
    // snapshots below both the floor and every reader pin.  The
    // seq_cst fence pairs with the readers' pin-then-check fence
    // (Dekker): either we see their pin here, or they see our new
    // floor and abort — never neither.  We never wait on a reader; a
    // pinned snapshot just stays retained until a later publish.
    const std::uint64_t floor_target =
        v >= retention_ ? v - retention_ + 1 : 1;
    floor_.store(floor_target, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::uint64_t limit = floor_target;
    for (const Handle& handle : handles_) {
        if (!handle.claimed.load(std::memory_order_acquire)) continue;
        // Acquire pairs with the reader's releasing pin-clear: once we
        // see the pin dropped, the reader's shared_ptr copy is visible,
        // so dropping our reference can never free under it.
        const std::uint64_t pinned =
            handle.active.load(std::memory_order_acquire);
        if (pinned != 0 && pinned < limit) limit = pinned;
    }
    while (!retained_.empty() && retained_.front()->version() < limit) {
        retained_.pop_front();
    }
    if (!retained_.empty() &&
        retained_.front()->version() < floor_target) {
        reclaim_deferred_.fetch_add(1, std::memory_order_relaxed);
    }
    publish_latency_.record(seconds_since(start));
    return v;
}

std::size_t EstimateStore::retained_count() const {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    return retained_.size();
}

obs::Json EstimateStore::to_json() const {
    obs::Json doc = obs::Json::object();
    doc.set("head_version", head_version());
    doc.set("floor_version", floor_version());
    doc.set("retention", retention_);
    doc.set("max_readers", handles_.size());
    doc.set("retained", retained_count());
    doc.set("reclaim_deferred", reclaim_deferred());
    doc.set("writer_waits", writer_waits());
    doc.set("publish_latency", obs::histogram_to_json(publish_latency()));
    return doc;
}

Reader::Reader(EstimateStore& store) : store_(&store), handle_(nullptr) {
    for (EstimateStore::Handle& handle : store.handles_) {
        bool expected = false;
        if (handle.claimed.compare_exchange_strong(
                expected, true, std::memory_order_acq_rel,
                std::memory_order_relaxed)) {
            handle_ = &handle;
            return;
        }
    }
    throw std::runtime_error(
        "serve::Reader: all reader handles claimed (raise "
        "StoreOptions::max_readers)");
}

Reader::~Reader() {
    handle_->active.store(0, std::memory_order_relaxed);
    handle_->claimed.store(false, std::memory_order_release);
}

QueryResult<SnapshotRef> Reader::acquire(std::uint64_t version) {
    const std::uint64_t head =
        store_->head_.load(std::memory_order_acquire);
    if (head == 0) return {QueryStatus::empty_store, {}};
    if (version == 0 || version > head) {
        return {QueryStatus::version_unknown, {}};
    }
    if (version + store_->retention_ <= head) {
        return {QueryStatus::version_retired, {}};
    }

    // Hazard pin: announce the version, then (after the fence) confirm
    // the reclaim floor has not passed it.  Pairs with the writer's
    // floor-store / fence / pin-scan — see publish().
    handle_->active.store(version, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (store_->floor_.load(std::memory_order_relaxed) > version) {
        handle_->active.store(0, std::memory_order_release);
        return {QueryStatus::version_retired, {}};
    }

    // Seqlock read of the slot: version / pointer / version.  Both
    // version loads must equal the pinned version; slot versions are
    // strictly monotone (v, v + retention, ...), so validation is
    // ABA-proof.  The acquire fence keeps the second version load
    // ordered after the pointer load.
    EstimateStore::Slot& slot =
        store_->slots_[static_cast<std::size_t>(version %
                                                store_->retention_)];
    const std::uint64_t v1 = slot.version.load(std::memory_order_acquire);
    const EstimateSnapshot* ptr = slot.ptr.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t v2 = slot.version.load(std::memory_order_relaxed);
    if (v1 != version || v2 != version || ptr == nullptr) {
        handle_->active.store(0, std::memory_order_release);
        return {QueryStatus::version_retired, {}};
    }

    // The pin guarantees the writer has not freed this snapshot, so
    // minting shared ownership from the raw pointer is safe; once the
    // shared_ptr exists the pin can drop — ordinary refcounting takes
    // over.  The release pairs with the writer's acquire pin-scan.
    SnapshotRef ref{version, ptr->shared_from_this()};
    handle_->active.store(0, std::memory_order_release);
    return {QueryStatus::ok, std::move(ref)};
}

QueryResult<SnapshotRef> Reader::latest() {
    for (;;) {
        const std::uint64_t head =
            store_->head_.load(std::memory_order_acquire);
        if (head == 0) return {QueryStatus::empty_store, {}};
        QueryResult<SnapshotRef> ref = acquire(head);
        if (ref.ok()) return ref;
        // The head we read retired mid-validation, so at least
        // `retention` newer versions exist — reload and retry.
    }
}

QueryResult<SnapshotRef> Reader::at(std::uint64_t version) {
    return acquire(version);
}

QueryResult<std::vector<SnapshotRef>> Reader::window_range(
    std::size_t sample_lo, std::size_t sample_hi) {
    if (sample_lo > sample_hi) return {QueryStatus::invalid_range, {}};
    const std::uint64_t head =
        store_->head_.load(std::memory_order_acquire);
    if (head == 0) return {QueryStatus::empty_store, {}};
    const std::uint64_t lo_version =
        head >= store_->retention_ ? head - store_->retention_ + 1 : 1;
    std::vector<SnapshotRef> out;
    for (std::uint64_t v = lo_version; v <= head; ++v) {
        QueryResult<SnapshotRef> ref = acquire(v);
        // A version that retires mid-scan was outside the retention
        // guarantee when we return — skipping it is correct.
        if (!ref.ok()) continue;
        if (ref.value->window_start_sample() <= sample_hi &&
            ref.value->window_end_sample() >= sample_lo) {
            out.push_back(std::move(ref.value));
        }
    }
    return {QueryStatus::ok, std::move(out)};
}

QueryResult<std::vector<Reader::PointSample>> Reader::point_series(
    engine::Method m, std::size_t pair, std::size_t sample_lo,
    std::size_t sample_hi) {
    QueryResult<std::vector<SnapshotRef>> range =
        window_range(sample_lo, sample_hi);
    if (!range.ok()) return {range.status, {}};
    std::vector<PointSample> out;
    out.reserve(range.value.size());
    for (const SnapshotRef& ref : range.value) {
        const QueryResult<double> value = point(*ref, m, pair);
        if (!value.ok()) return {value.status, {}};
        out.push_back({ref.version, ref->window_start_sample(),
                       ref->window_end_sample(), value.value});
    }
    return {QueryStatus::ok, std::move(out)};
}

QueryResult<linalg::Vector> Reader::version_delta(
    engine::Method m, std::uint64_t older_version,
    std::uint64_t newer_version) {
    if (older_version > newer_version) {
        return {QueryStatus::invalid_range, {}};
    }
    QueryResult<SnapshotRef> newer = acquire(newer_version);
    if (!newer.ok()) return {newer.status, {}};
    QueryResult<SnapshotRef> older = acquire(older_version);
    if (!older.ok()) return {older.status, {}};
    return delta(*newer.value, *older.value, m);
}

}  // namespace tme::serve
