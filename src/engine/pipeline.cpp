#include "engine/pipeline.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/metrics.hpp"
#include "engine/clock.hpp"
#include "fault/injection.hpp"
#include "obs/trace.hpp"

namespace tme::engine {

using Clock = SteadyClock;

/// One window's trip through the pipeline.  Everything a stage reads is
/// immutable after submit(); stages write only their own runs_ slot and
/// the atomic remaining_ counter, whose final decrement hands the job
/// to finalize().
struct PipelinedEngine::WindowJob {
    WindowContext ctx;
    std::uint64_t generation = 0;  ///< warm-lineage generation at submit
    Clock::time_point start;
    bool scored = false;               ///< truth refs captured
    linalg::Vector truth_latest;       ///< reference for snapshot methods
    linalg::Vector truth_mean;         ///< reference for series methods
    std::vector<std::optional<MethodRun>> runs;  // per methods_ index
    std::atomic<std::size_t> remaining{0};
    WindowResult result;  ///< assembled by finalize()
    bool done = false;    ///< finalized (guarded by state_mutex_)
};

/// Per-method execution lane.  Stages for one method run strictly in
/// window order: enqueue_stage() appends under the lane mutex and at
/// most one drainer loops over the FIFO at a time, so the warm-start
/// fields are only ever touched by the active drainer (successive
/// drainers are ordered by the same mutex).
struct PipelinedEngine::Lineage {
    std::mutex mutex;
    std::deque<std::pair<std::shared_ptr<WindowJob>, std::size_t>> queue;
    bool running = false;
    // Warm-start state, in the method's own variable space.
    linalg::Vector warm;
    bool warm_valid = false;
    std::uint64_t warm_generation = 0;
    // Last-good estimate for graceful degradation (scheduler.hpp).
    // Touched only by the lane's active drainer, like the warm fields;
    // unlike them it survives routing rebinds (demand estimates do not
    // depend on the routing).
    FallbackState last_good;
};

PipelinedEngine::PipelinedEngine(
    const topology::Topology& topo, const linalg::SparseMatrix& routing,
    EngineConfig config, PipelineOptions pipeline,
    std::shared_ptr<RoutingEpochCache> shared_cache)
    : topo_(&topo),
      routing_(&routing),
      config_(std::move(config)),
      depth_(pipeline.depth < 1 ? 1 : pipeline.depth),
      cache_(shared_cache != nullptr
                 ? std::move(shared_cache)
                 : std::make_shared<RoutingEpochCache>(
                       config_.epoch_cache_capacity)),
      window_(&topo, &routing, config_.window_size,
              schedules(config_.methods, Method::vardi)),
      lineages_(std::make_unique<Lineage[]>(method_count)),
      pool_(config_.threads) {
    if (routing.rows() != topo.link_count() ||
        routing.cols() != topo.pair_count()) {
        throw std::invalid_argument(
            "PipelinedEngine: routing does not match topology");
    }
    const SchedulerConfigCheck check =
        EstimatorScheduler::validate_methods(config_.methods);
    if (!check) throw SchedulerConfigException(check);
    if (config_.min_series_window < 1) config_.min_series_window = 1;
    for (Method m : config_.methods) metrics_.methods[m];
}

PipelinedEngine::Lineage& PipelinedEngine::lineage(Method m) {
    return lineages_[static_cast<std::size_t>(m)];
}

PipelinedEngine::~PipelinedEngine() {
    // Drain without rethrowing: a stage failure during unwind must not
    // terminate().
    std::unique_lock<std::mutex> lock(state_mutex_);
    state_cv_.wait(lock, [this] { return completed_ == submitted_; });
}

void PipelinedEngine::set_routing(const linalg::SparseMatrix& routing) {
    if (routing.rows() != topo_->link_count() ||
        routing.cols() != topo_->pair_count()) {
        throw std::invalid_argument(
            "PipelinedEngine::set_routing: routing does not match "
            "topology");
    }
    if (&routing == routing_) return;
    // In-flight windows alias the current matrix through their captured
    // SeriesProblem, and the caller is free to destroy it the moment
    // this returns (e.g. replacing a content-identical object).  Drain
    // the pipeline first so no stage can dangle; routing changes are
    // rare (a handful per day), so the barrier costs next to nothing.
    {
        std::unique_lock<std::mutex> lock(state_mutex_);
        state_cv_.wait(lock, [this] { return completed_ == submitted_; });
    }
    routing_ = &routing;
}

std::size_t PipelinedEngine::max_in_flight() const {
    std::lock_guard<std::mutex> lock(state_mutex_);
    return max_in_flight_;
}

void PipelinedEngine::submit(std::size_t sample, linalg::Vector loads,
                             bool gap) {
    obs::Span span("pipeline/submit", "sample",
                   static_cast<long long>(sample));
    // Uncaught by design — models a job-killing crash; see
    // OnlineEngine::ingest.
    if (fault::should_inject(fault::FaultSite::alloc_failure, "ingest")) {
        throw std::bad_alloc();
    }
    // Same epoch/flush protocol as OnlineEngine::ingest (see there for
    // the serial-vs-fingerprint rationale, including the rebuilt-
    // same-content exception for shared-cache eviction churn);
    // additionally every epoch change bumps generation_ so in-flight
    // warm state of the old epoch is retired without waiting for it.
    epoch_ = cache_->acquire_shared(*routing_);
    const bool rebuilt_same_content =
        epoch_bound_ && epoch_->fingerprint() == window_epoch_ &&
        epoch_->rows() == window_epoch_rows_ &&
        epoch_->cols() == window_epoch_cols_ &&
        epoch_->nonzeros() == window_epoch_nnz_;
    if (!epoch_bound_ || (epoch_->serial() != window_epoch_serial_ &&
                          !rebuilt_same_content)) {
        if (epoch_bound_) {
            ++metrics_.epoch_changes;
            if (!window_.empty()) ++metrics_.window_flushes;
        }
        window_.reset(routing_);
        ++generation_;
        window_epoch_ = epoch_->fingerprint();
        window_epoch_serial_ = epoch_->serial();
        window_epoch_rows_ = epoch_->rows();
        window_epoch_cols_ = epoch_->cols();
        window_epoch_nnz_ = epoch_->nonzeros();
        epoch_bound_ = true;
    } else {
        window_epoch_serial_ = epoch_->serial();
        if (window_.series().routing != routing_) {
            window_.rebind_routing(routing_);
        }
    }

    // Fault probes + always-compiled sanitizer, identical to
    // OnlineEngine::ingest (see there for the semantics).
    if (fault::should_inject(fault::FaultSite::routing_inconsistency)) {
        ++metrics_.routing_faults;
        if (!window_.empty()) ++metrics_.window_flushes;
        window_.reset(routing_);
        ++generation_;
    }
    if (!loads.empty()) {
        if (fault::should_inject(fault::FaultSite::measurement_nan)) {
            loads[fault::draw(fault::FaultSite::measurement_nan) %
                  loads.size()] =
                std::numeric_limits<double>::quiet_NaN();
        }
        if (fault::should_inject(fault::FaultSite::measurement_negative)) {
            double& v = loads[fault::draw(
                                  fault::FaultSite::measurement_negative) %
                              loads.size()];
            v = v != 0.0 ? -v : -1.0;
        }
        if (fault::should_inject(fault::FaultSite::measurement_drop)) {
            loads.assign(loads.size(), 0.0);
            gap = true;
        }
    }
    bool corrupt = false;
    for (double& v : loads) {
        if (!std::isfinite(v) || v < 0.0) {
            v = 0.0;
            corrupt = true;
        }
    }
    if (corrupt) {
        ++metrics_.corrupt_samples;
        gap = true;
    }

    window_.push(sample, std::move(loads), gap);
    ++metrics_.samples_ingested;
    if (gap) ++metrics_.gap_samples;
    metrics_.cache_hits = cache_->hits();
    metrics_.cache_misses = cache_->misses();
    metrics_.cache_evictions = cache_->evictions();
    metrics_.cache_collisions = cache_->collisions();
    // Shared-cache caveat as in OnlineEngine::ingest: under a fleet
    // these are every engine's builds, not just this one's.
    metrics_.epoch_build_latency = cache_->build_latency();

    // Everything that can throw (snapshotting, the user-supplied truth
    // provider) runs BEFORE pipeline admission: an exception here must
    // propagate without leaking an in-flight slot, or finish() and the
    // destructor would wait forever.
    auto job = std::make_shared<WindowJob>();
    job->start = Clock::now();
    job->ctx = WindowContext::capture(window_, epoch_, config_.methods,
                                      config_.min_series_window,
                                      next_ordinal_++);
    job->generation = generation_;

    // Truth references are captured now, while the window still spans
    // exactly this job's samples (the serial engine scores at the same
    // point in the stream).
    if (truth_) {
        job->scored = true;
        job->truth_latest = truth_(sample);
        bool need_series_truth = false;
        for (Method m : config_.methods) {
            if (is_series_method(m) && job->ctx.run_series) {
                need_series_truth = true;
            }
        }
        if (need_series_truth) {
            job->truth_mean.assign(job->truth_latest.size(), 0.0);
            for (std::size_t s : window_.sample_indices()) {
                const linalg::Vector t = truth_(s);
                for (std::size_t p = 0; p < job->truth_mean.size(); ++p) {
                    job->truth_mean[p] += t[p];
                }
            }
            const double inv_k =
                1.0 / static_cast<double>(window_.size());
            for (double& v : job->truth_mean) v *= inv_k;
        }
    }

    job->runs.resize(config_.methods.size());
    std::size_t stages = 0;
    for (Method m : config_.methods) {
        if (is_series_method(m) && !job->ctx.run_series) continue;
        ++stages;
    }
    job->remaining.store(stages, std::memory_order_relaxed);

    // Backpressure: admit the window only when a pipeline slot frees
    // up.  Nothing below this point throws.
    {
        obs::Span wait_span("pipeline/backpressure_wait");
        const Clock::time_point wait_start = Clock::now();
        std::unique_lock<std::mutex> lock(state_mutex_);
        state_cv_.wait(lock, [this] { return in_flight_ < depth_; });
        metrics_.backpressure_wait.record(seconds_since(wait_start));
        ++in_flight_;
        ++submitted_;
        if (in_flight_ > max_in_flight_) max_in_flight_ = in_flight_;
        jobs_.push_back(job);
    }

    if (stages == 0) {
        // Every scheduled method is a series method still below
        // min_series_window: the window produces an empty result (as
        // the serial scheduler does) and must complete here, or it
        // would hold its pipeline slot forever.
        finalize(*job);
        return;
    }
    for (std::size_t i = 0; i < config_.methods.size(); ++i) {
        const Method m = config_.methods[i];
        if (is_series_method(m) && !job->ctx.run_series) continue;
        enqueue_stage(lineage(m), job, i);
    }
}

void PipelinedEngine::enqueue_stage(Lineage& lin,
                                    std::shared_ptr<WindowJob> job,
                                    std::size_t method_index) {
    bool need_drainer = false;
    {
        std::lock_guard<std::mutex> lock(lin.mutex);
        lin.queue.emplace_back(std::move(job), method_index);
        if (!lin.running) {
            lin.running = true;
            need_drainer = true;
        }
    }
    // Submitted outside the lane lock: with a zero-thread pool the
    // drainer runs inline right here, and must be able to re-lock.
    if (need_drainer) {
        pool_.submit([this, &lin] { drain_lineage(lin); });
    }
}

void PipelinedEngine::drain_lineage(Lineage& lin) {
    while (true) {
        std::shared_ptr<WindowJob> job;
        std::size_t method_index = 0;
        {
            std::lock_guard<std::mutex> lock(lin.mutex);
            if (lin.queue.empty()) {
                lin.running = false;
                return;
            }
            job = std::move(lin.queue.front().first);
            method_index = lin.queue.front().second;
            lin.queue.pop_front();
        }
        run_stage(lin, *job, method_index);
    }
}

void PipelinedEngine::run_stage(Lineage& lin, WindowJob& job,
                                std::size_t method_index) {
    const Method m = config_.methods[method_index];
    try {
        // Warm seeds cross windows only within one generation: a
        // routing rebind retires all older state, exactly like the
        // serial engine's reset_warm_state().
        const linalg::Vector* seed = nullptr;
        if (config_.warm_start && lin.warm_valid &&
            lin.warm_generation == job.generation) {
            seed = &lin.warm;
        }
        MethodExecution exec =
            execute_method_guarded(m, job.ctx, config_.method_options,
                                   seed, lin.last_good,
                                   config_.warm_start);
        if (config_.warm_start && exec.warm_next_valid) {
            lin.warm = std::move(exec.warm_next);
            lin.warm_valid = true;
            lin.warm_generation = job.generation;
        }
        if (job.scored) {
            const linalg::Vector& reference = is_series_method(m)
                                                  ? job.truth_mean
                                                  : job.truth_latest;
            // An all-quiet truth window (no demand above the coverage
            // threshold) has no defined MRE; score it as NaN.
            if (linalg::sum(reference) > 0.0) {
                exec.run.mre = core::mre_at_coverage(
                    reference, exec.run.estimate, 0.9);
            } else {
                ++metrics_.mre_skipped_runs;
            }
        }
        job.runs[method_index] = std::move(exec.run);
    } catch (...) {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
    }
    if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        finalize(job);
    }
}

void PipelinedEngine::finalize(WindowJob& job) {
    WindowResult& result = job.result;
    result.window_start_sample = job.ctx.window_start_sample;
    result.window_end_sample = job.ctx.window_end_sample;
    result.window_size = job.ctx.window_size;
    result.epoch_fingerprint = job.ctx.epoch->fingerprint();
    result.seconds = seconds_since(job.start);
    for (std::optional<MethodRun>& maybe : job.runs) {
        if (!maybe.has_value()) continue;
        const MethodRun& run = *maybe;
        const auto it = metrics_.methods.find(run.method);
        if (it != metrics_.methods.end()) {
            MethodStats& stats = it->second;
            ++stats.runs;
            if (run.warm_started) ++stats.warm_runs;
            if (run.warm_accepted) ++stats.warm_accepted_runs;
            stats.total_seconds += run.seconds;
            stats.last_seconds = run.seconds;
            stats.max_seconds.fetch_max(run.seconds);
            stats.latency.record(run.seconds);
            stats.solver.add(run.solver);
            record_run_quality(metrics_, run,
                               job.ctx.window_end_sample);
            if (job.scored && !std::isnan(run.mre)) {
                stats.last_mre = run.mre;
                stats.mre_sum += run.mre;
                ++stats.mre_count;
            }
        }
        result.runs.push_back(std::move(*maybe));
    }
    ++metrics_.windows_run;
    metrics_.total_seconds += result.seconds;
    metrics_.last_window_seconds = result.seconds;
    metrics_.window_latency.record(result.seconds);
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        job.done = true;
    }
    flush_completed();
}

void PipelinedEngine::flush_completed() {
    // Methods finish when they finish, so finalize() runs out of
    // submission order — but the window-sink contract is strictly
    // ordered.  The publish mutex admits one flusher at a time; it
    // walks the submission-order cursor over every consecutively-done
    // window (its own and any predecessors-completed-later it
    // unblocked), invokes the sink outside state_mutex_, and only then
    // counts the window completed, so finish()/~PipelinedEngine cannot
    // return while a sink call is still running.
    std::lock_guard<std::mutex> publish_lock(publish_mutex_);
    while (true) {
        std::shared_ptr<WindowJob> job;
        {
            std::lock_guard<std::mutex> lock(state_mutex_);
            if (next_publish_ >= jobs_.size() ||
                !jobs_[next_publish_]->done) {
                break;
            }
            job = jobs_[next_publish_];
            ++next_publish_;
        }
        if (sink_) {
            try {
                sink_(job->result);
            } catch (...) {
                std::lock_guard<std::mutex> lock(state_mutex_);
                if (!first_error_) {
                    first_error_ = std::current_exception();
                }
            }
        }
        {
            std::lock_guard<std::mutex> lock(state_mutex_);
            ++completed_;
            --in_flight_;
        }
        state_cv_.notify_all();
    }
}

std::vector<WindowResult> PipelinedEngine::finish() {
    std::vector<WindowResult> out;
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(state_mutex_);
        state_cv_.wait(lock, [this] { return completed_ == submitted_; });
        out.reserve(jobs_.size());
        for (const std::shared_ptr<WindowJob>& job : jobs_) {
            out.push_back(std::move(job->result));
        }
        jobs_.clear();
        next_publish_ = 0;
        error = first_error_;
        first_error_ = nullptr;
    }
    if (error) std::rethrow_exception(error);
    return out;
}

}  // namespace tme::engine
