#include "fault/injection.hpp"

#if TME_FAULT_INJECTION

#include <atomic>
#include <mutex>
#include <utility>

namespace tme::fault {

namespace {

struct ArmedSpec {
    FaultSpec spec;
    std::uint64_t matched = 0;  ///< matching probes seen so far
};

struct Registry {
    std::mutex mutex;
    std::vector<ArmedSpec> specs;
    std::uint64_t seed = 0;
    FaultStats stats;
};

Registry& registry() {
    static Registry r;
    return r;
}

/// Disarmed fast path: one relaxed load instead of the mutex.
std::atomic<bool> g_armed{false};

thread_local const char* t_scope = "";

std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

}  // namespace

void arm(std::vector<FaultSpec> schedule, std::uint64_t seed) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.specs.clear();
    r.specs.reserve(schedule.size());
    for (FaultSpec& spec : schedule) {
        r.specs.push_back(ArmedSpec{std::move(spec), 0});
    }
    r.seed = seed;
    r.stats = FaultStats{};
    g_armed.store(true, std::memory_order_release);
}

void disarm() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.specs.clear();
    g_armed.store(false, std::memory_order_release);
}

bool armed() { return g_armed.load(std::memory_order_acquire); }

FaultStats stats() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.stats;
}

bool should_inject(FaultSite site, const char* detail) {
    if (!g_armed.load(std::memory_order_acquire)) return false;
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const std::size_t s = static_cast<std::size_t>(site);
    ++r.stats.hits[s];
    const char* ambient = t_scope;
    bool fire = false;
    for (ArmedSpec& armed_spec : r.specs) {
        const FaultSpec& spec = armed_spec.spec;
        if (spec.site != site) continue;
        if (!spec.scope.empty()) {
            const bool matches_detail =
                detail != nullptr && spec.scope == detail;
            const bool matches_ambient = spec.scope == ambient;
            if (!matches_detail && !matches_ambient) continue;
        }
        const std::uint64_t ordinal = armed_spec.matched++;
        if (ordinal >= spec.after_hits &&
            ordinal < spec.after_hits + spec.count) {
            fire = true;
        }
    }
    if (fire) ++r.stats.fires[s];
    return fire;
}

std::uint64_t draw(FaultSite site) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const std::size_t s = static_cast<std::size_t>(site);
    // Keyed by the fire ordinal so consecutive fires at one site draw
    // distinct, schedule-stable values.
    return splitmix64(r.seed ^ (static_cast<std::uint64_t>(s) << 32) ^
                      r.stats.fires[s]);
}

const char* current_scope() { return t_scope; }

ScopedFaultScope::ScopedFaultScope(std::string scope)
    : scope_(std::move(scope)), previous_(t_scope) {
    t_scope = scope_.c_str();
}

ScopedFaultScope::~ScopedFaultScope() { t_scope = previous_; }

}  // namespace tme::fault

#endif  // TME_FAULT_INJECTION
