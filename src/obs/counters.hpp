// Solver iteration telemetry.
//
// Every estimator in this repo bottoms out in an iterative solver —
// the fanout/Bayesian QP's active-set rounds and projected-CG
// iterations, entropy's exponentiated-gradient steps and Armijo
// backtracking probes, Kruithof's MART sweeps, and the NNLS
// Lawson-Hanson pivots — but those counts historically died inside
// per-call result structs (or were never surfaced at all).  A
// SolverCounters handle threads through the solver option structs: the
// caller owns one per solve (or per window run), each solver ADDS its
// totals exactly once on return, and the engine accumulates the
// per-run snapshot into atomic per-method cells.
//
// The counters are written only AFTER a solver finishes (one += per
// field at the return site), never inside an iteration, so attaching
// them cannot perturb the arithmetic: estimates with and without
// counters are bitwise identical by construction.
#pragma once

#include <cstddef>

#include "obs/metric_cell.hpp"

namespace tme::obs {

/// Per-call (or per-window-run) iteration counts.  Plain fields — a
/// handle is owned by one solve at a time; cross-thread accumulation
/// goes through SolverCounterCells.
struct SolverCounters {
    /// Active-set rounds (KKT solves) of the eq-QP solvers, dense or
    /// factored (fanout, Bayesian sparse path).
    std::size_t qp_active_set_rounds = 0;
    /// Projected-CG iterations across those KKT solves (factored
    /// solver's matrix-free branch; 0 on the dense-gather path).
    std::size_t qp_cg_iterations = 0;
    /// Accepted exponentiated-gradient iterations of kl_regularized_ls.
    std::size_t entropy_iterations = 0;
    /// Armijo backtracking probes (objective evaluations) across those
    /// iterations — each probe costs one O(nnz) forward product, so
    /// probes, not iterations, are the entropy solver's real work unit.
    std::size_t entropy_armijo_probes = 0;
    /// Kruithof/MART multiplicative scaling sweeps.
    std::size_t kruithof_sweeps = 0;
    /// Lawson-Hanson NNLS outer active-set iterations (pivots).
    std::size_t nnls_pivots = 0;

    bool any() const {
        return qp_active_set_rounds != 0 || qp_cg_iterations != 0 ||
               entropy_iterations != 0 || entropy_armijo_probes != 0 ||
               kruithof_sweeps != 0 || nnls_pivots != 0;
    }

    void add(const SolverCounters& other) {
        qp_active_set_rounds += other.qp_active_set_rounds;
        qp_cg_iterations += other.qp_cg_iterations;
        entropy_iterations += other.entropy_iterations;
        entropy_armijo_probes += other.entropy_armijo_probes;
        kruithof_sweeps += other.kruithof_sweeps;
        nnls_pivots += other.nnls_pivots;
    }
};

/// Atomic accumulator mirror of SolverCounters: one per method in the
/// engine metrics, updated by whichever worker finished the run,
/// copied torn-free by metric readers.
struct SolverCounterCells {
    MetricCell<std::size_t> qp_active_set_rounds;
    MetricCell<std::size_t> qp_cg_iterations;
    MetricCell<std::size_t> entropy_iterations;
    MetricCell<std::size_t> entropy_armijo_probes;
    MetricCell<std::size_t> kruithof_sweeps;
    MetricCell<std::size_t> nnls_pivots;

    void add(const SolverCounters& c) {
        if (c.qp_active_set_rounds) {
            qp_active_set_rounds += c.qp_active_set_rounds;
        }
        if (c.qp_cg_iterations) qp_cg_iterations += c.qp_cg_iterations;
        if (c.entropy_iterations) entropy_iterations += c.entropy_iterations;
        if (c.entropy_armijo_probes) {
            entropy_armijo_probes += c.entropy_armijo_probes;
        }
        if (c.kruithof_sweeps) kruithof_sweeps += c.kruithof_sweeps;
        if (c.nnls_pivots) nnls_pivots += c.nnls_pivots;
    }

    SolverCounters snapshot() const {
        SolverCounters c;
        c.qp_active_set_rounds = qp_active_set_rounds.load();
        c.qp_cg_iterations = qp_cg_iterations.load();
        c.entropy_iterations = entropy_iterations.load();
        c.entropy_armijo_probes = entropy_armijo_probes.load();
        c.kruithof_sweeps = kruithof_sweeps.load();
        c.nnls_pivots = nnls_pivots.load();
        return c;
    }
};

}  // namespace tme::obs
