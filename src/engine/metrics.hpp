// Engine observability: per-window latency, routing-epoch cache
// statistics, gap bookkeeping, and estimation error against ground
// truth when the feeding scenario provides it.
//
// All counters are relaxed atomics wrapped so the structs stay
// copyable snapshot types: a fleet driver or progress reporter may poll
// an engine's metrics while its worker threads are still updating them,
// and must never observe a torn value.  The per-method map is
// pre-populated by the engine at construction (one entry per scheduled
// method), so its structure never changes while workers update the
// atomic fields inside — concurrent iteration is safe.
//
// Latency is tracked two ways per method: the legacy mean/last fields
// (cheap, used by summary lines and existing tests) and an HDR-style
// obs::LatencyHistogram giving p50/p95/p99/max.  Solver iteration
// totals (QP active-set rounds, CG iterations, entropy Armijo probes,
// MART sweeps, NNLS pivots) accumulate per method in SolverCounterCells.
#pragma once

#include <cstddef>
#include <limits>
#include <map>
#include <string>

#include "engine/method.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/metric_cell.hpp"

namespace tme::engine {

/// Relaxed atomic cell that copies by value (see obs/metric_cell.hpp).
/// Re-exported here because engine code predates src/obs/.
using obs::MetricCell;

struct MethodStats {
    MetricCell<std::size_t> runs;
    MetricCell<std::size_t> warm_runs;
    /// Runs whose warm-start seed survived verification (the fanout
    /// QP can reject an inconsistent seed and fall back to a cold
    /// solve; for the other methods this tracks warm_runs).
    MetricCell<std::size_t> warm_accepted_runs;
    MetricCell<double> total_seconds{0.0};
    MetricCell<double> last_seconds{0.0};
    /// Worst-case run latency (monotone fetch_max — survives where
    /// last_seconds is overwritten every window).
    MetricCell<double> max_seconds{0.0};
    MetricCell<double> last_mre{std::numeric_limits<double>::quiet_NaN()};
    MetricCell<double> mre_sum{0.0};
    MetricCell<std::size_t> mre_count;
    /// Full latency distribution (p50/p95/p99 via latency.snapshot()).
    obs::LatencyHistogram latency;
    /// Solver iteration totals attributed to this method's runs.
    obs::SolverCounterCells solver;

    double mean_seconds() const {
        const std::size_t n = runs.load();
        return n > 0 ? total_seconds.load() / static_cast<double>(n) : 0.0;
    }
    double mean_mre() const {
        const std::size_t n = mre_count.load();
        return n > 0 ? mre_sum.load() / static_cast<double>(n)
                     : std::numeric_limits<double>::quiet_NaN();
    }
};

struct EngineMetrics {
    MetricCell<std::size_t> samples_ingested;
    MetricCell<std::size_t> gap_samples;   ///< samples flagged as interpolated
    MetricCell<std::size_t> windows_run;
    MetricCell<std::size_t> window_flushes;  ///< windows dropped on epoch change
    MetricCell<std::size_t> epoch_changes;   ///< routing fingerprint transitions
    /// Epoch-cache statistics.  NOTE: these snapshot the engine's
    /// cache, which under a fleet is the SHARED cache — they are then
    /// fleet-wide totals, not this engine's share (FleetReport carries
    /// the authoritative shared numbers once).
    MetricCell<std::size_t> cache_hits;
    MetricCell<std::size_t> cache_misses;
    MetricCell<std::size_t> cache_evictions;
    /// Fingerprint hits rejected by the structural-identity check.
    MetricCell<std::size_t> cache_collisions;
    /// Method runs skipped by MRE scoring because the truth reference
    /// carried no traffic at all (all-quiet window).
    MetricCell<std::size_t> mre_skipped_runs;
    MetricCell<double> total_seconds{0.0};  ///< scheduler time across windows
    MetricCell<double> last_window_seconds{0.0};
    /// End-to-end window latency distribution (same samples that feed
    /// total_seconds / last_window_seconds).
    obs::LatencyHistogram window_latency;
    /// Consumer-side waits popping the bounded ingest queue during
    /// async replay (time the engine sat starved for samples).
    obs::LatencyHistogram ingest_wait;
    /// Producer-side stalls: pipeline submit() blocked at depth, and
    /// ingest-queue push() blocked on a full queue.
    obs::LatencyHistogram backpressure_wait;
    /// Routing-epoch derived-data build times (gram, vardi gram,
    /// fanout constraints, reduced factor) observed via this engine's
    /// cache — shared-cache caveat above applies.
    obs::LatencyHistogram epoch_build_latency;
    /// Pre-populated by the engine for every scheduled method; the map
    /// structure is immutable afterwards (only the atomic fields move).
    std::map<Method, MethodStats> methods;

    double cache_hit_rate() const {
        const std::size_t h = cache_hits.load();
        const std::size_t total = h + cache_misses.load();
        return total > 0
                   ? static_cast<double>(h) / static_cast<double>(total)
                   : 0.0;
    }

    /// Multi-line human-readable dump.
    std::string summary() const;

    /// Structured export mirroring summary(): engine-level counters,
    /// latency histograms, and a per-method object with runs/latency
    /// percentiles/solver iteration counters.
    obs::Json to_json() const;
};

}  // namespace tme::engine
