#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include <random>

namespace tme::linalg {
namespace {

TEST(Lu, SolvesSmallSystem) {
    Matrix a{{2.0, 1.0}, {1.0, 3.0}};
    const Vector x = lu_solve(a, {5.0, 10.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, HandlesPermutation) {
    // Leading zero forces a pivot swap.
    Matrix a{{0.0, 1.0}, {1.0, 0.0}};
    const Vector x = lu_solve(a, {2.0, 3.0});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
    Matrix a{{1.0, 2.0}, {2.0, 4.0}};
    Lu lu(a);
    EXPECT_TRUE(lu.singular());
    EXPECT_THROW(lu.solve({1.0, 1.0}), std::runtime_error);
}

TEST(Lu, ThrowsOnNonSquare) {
    EXPECT_THROW(Lu(Matrix(2, 3)), std::invalid_argument);
}

TEST(Lu, SolveSizeMismatchThrows) {
    Lu lu(Matrix::identity(2));
    EXPECT_THROW(lu.solve(Vector{1.0}), std::invalid_argument);
}

TEST(Lu, IndefiniteSymmetricSystem) {
    // KKT-style indefinite matrix that Cholesky cannot factor.
    Matrix a{{2.0, 0.0, 1.0}, {0.0, 2.0, 1.0}, {1.0, 1.0, 0.0}};
    const Vector b{1.0, 2.0, 3.0};
    const Vector x = lu_solve(a, b);
    const Vector resid = sub(gemv(a, x), b);
    EXPECT_LT(nrm2(resid), 1e-10);
}

class LuProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(LuProperty, RandomSystemResidual) {
    const std::size_t n = 2 + GetParam() % 20;
    std::mt19937_64 rng(GetParam());
    std::uniform_real_distribution<double> dist(-3.0, 3.0);
    Matrix a(n, n);
    Vector b(n);
    for (std::size_t i = 0; i < n; ++i) {
        b[i] = dist(rng);
        for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
    }
    Lu lu(a);
    if (lu.singular()) GTEST_SKIP() << "random matrix was singular";
    const Vector x = lu.solve(b);
    EXPECT_LT(nrm2(sub(gemv(a, x), b)), 1e-8 * (1.0 + nrm2(b)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u));

}  // namespace
}  // namespace tme::linalg
