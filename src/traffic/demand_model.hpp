// Spatial demand model: synthesizes the busy-hour mean traffic matrix.
//
// The generator is calibrated to the spatial properties the paper reports
// for the Global Crossing data set (Sections 5.2.1 and 5.2.4):
//
//  * a limited subset of PoPs originates/attracts most traffic (Fig. 3)
//    — modelled by per-PoP weights (population served);
//  * the top ~20% of demands carry ~80% of traffic (Fig. 2)
//    — the product form plus log-normal jitter yields this skew;
//  * PoPs have a few dominating destinations that differ from PoP to PoP,
//    violating the gravity assumption (Section 5.2.4, strong in the US
//    network, mild in Europe) — modelled by per-source "hotspot"
//    destinations whose demand is boosted on top of the product form.
//
// All outputs are normalized to sum to 1 (the paper scales plots by the
// maximum total traffic; absolute rates are proprietary).
#pragma once

#include "linalg/vector_ops.hpp"
#include "topology/topology.hpp"

namespace tme::traffic {

struct DemandModelConfig {
    unsigned seed = 7;
    /// Std-dev of the log-normal multiplicative jitter applied to the
    /// gravity product form.  Small values keep the matrix close to
    /// rank-1 (gravity-friendly, Europe); larger values disperse it.
    double lognormal_sigma = 0.35;
    /// Std-dev of additive iid jitter, expressed relative to the mean
    /// demand (total/P).  Additive deviations barely perturb the large
    /// demands in relative terms but dominate the small ones, matching
    /// the funnel-shaped scatter of the paper's Fig. 7.
    double additive_sigma = 0.0;
    /// Number of dominating destinations per source PoP.
    std::size_t hotspots_per_source = 2;
    /// Strength of the hotspot boost relative to the source's total
    /// product-form traffic; 0 disables hotspots.  Large values create
    /// the US-style gravity violations.
    double hotspot_strength = 0.0;
};

/// Busy-hour mean demands (pair-indexed, normalized to sum to 1).
linalg::Vector base_demands(const topology::Topology& topo,
                            const DemandModelConfig& config);

/// The deterministic product-form component only (no jitter, no
/// hotspots), normalized to sum to 1.  base_demands() = structural part
/// perturbed by the configured jitter/hotspots; scenario assembly uses
/// this split to control how visible the perturbations are to the link
/// loads (row-space alignment).
linalg::Vector structural_demands(const topology::Topology& topo);

/// The classical gravity prediction from the true marginals of `demands`
/// (useful for analysis; the estimator in core/ computes it from link
/// loads instead).
linalg::Vector gravity_from_marginals(std::size_t nodes,
                                      const linalg::Vector& demands);

}  // namespace tme::traffic
