#include "core/bayesian.hpp"

#include <stdexcept>

#include "check/contract.hpp"
#include "check/validators.hpp"
#include "linalg/nnls.hpp"

namespace tme::core {

linalg::Vector bayesian_estimate(const SnapshotProblem& problem,
                                 const linalg::Vector& prior,
                                 const BayesianOptions& options) {
    problem.validate();
    const linalg::SparseMatrix& r = *problem.routing;
    if (prior.size() != r.cols()) {
        throw std::invalid_argument("bayesian_estimate: prior size mismatch");
    }
    if (options.regularization <= 0.0) {
        throw std::invalid_argument(
            "bayesian_estimate: regularization must be positive");
    }
    TME_CONTRACT_DBG_CHECK(
        check::finite(prior, "bayesian_estimate prior"));
    const double w = 1.0 / options.regularization;  // sigma^{-2}

    // Gram-free path: neither the dense nor the CSR Gram ever exists.
    // Below the dense-KKT limit the factored-passive-set NNLS works on
    // on-demand Gram columns (bit-for-bit the dense NNLS path); above
    // it the operator QP applies A'A implicitly — the positive prior
    // makes the MAP solution dense-positive, which would cost an
    // active-set NNLS one pivot per pair, while block pivoting reaches
    // the same strictly convex minimizer in a handful of rounds.
    if (options.operator_form) {
        const std::size_t pairs = r.cols();
        if (options.shared_routing_transpose != nullptr &&
            (options.shared_routing_transpose->rows() != pairs ||
             options.shared_routing_transpose->cols() != r.rows())) {
            throw std::invalid_argument(
                "bayesian_estimate: shared routing transpose dimension "
                "mismatch");
        }
        linalg::SparseMatrix rt_local;
        if (options.shared_routing_transpose == nullptr) {
            rt_local = linalg::transpose(r);
        }
        const linalg::SparseMatrix& rt =
            options.shared_routing_transpose != nullptr
                ? *options.shared_routing_transpose
                : rt_local;
        const linalg::CsrView rv = r.view();
        const linalg::CsrView rtv = rt.view();
        linalg::Vector rhs = r.multiply_transpose(problem.loads);
        for (std::size_t i = 0; i < rhs.size(); ++i) {
            rhs[i] += w * prior[i];
        }

        if (pairs <= options.qp.dense_kkt_limit) {
            linalg::GramColumnOracle oracle;
            oracle.dimension = pairs;
            oracle.column = [rv, rtv](std::size_t j,
                                      std::vector<double>& scratch,
                                      std::vector<std::size_t>& support) {
                linalg::gram_column(rv, rtv, j, scratch.data(), support);
            };
            linalg::NnlsOptions nnls_options;
            nnls_options.warm_start = options.warm_start;
            nnls_options.gram_diagonal_shift = w;
            nnls_options.gram_operator = &r;
            nnls_options.counters = options.counters;
            nnls_options.budget = options.budget;
            linalg::Vector x =
                linalg::nnls_operator(oracle, rhs, 0.0, nnls_options).x;
            TME_CONTRACT_DBG_CHECK(check::solver_boundary(
                "bayesian_estimate (operator)", x,
                /*require_nonnegative=*/true));
            return x;
        }

        const linalg::Vector shift(pairs, w);
        linalg::HessianOperator hessian;
        hessian.dimension = pairs;
        hessian.apply = [&r, tmp = linalg::Vector(r.rows(), 0.0)](
                            const linalg::Vector& x,
                            linalg::Vector& y) mutable {
            r.multiply_into(x, tmp);
            r.multiply_transpose_into(tmp, y);
        };
        // G(p, p) = sum of squares over column p's carriers, source
        // rows ascending — the Gram kernels' diagonal accumulation.
        hessian.diag = [rtv](linalg::Vector& out) {
            for (std::size_t j = 0; j < rtv.rows; ++j) {
                double dj = 0.0;
                for (std::size_t t = rtv.offsets[j]; t < rtv.offsets[j + 1];
                     ++t) {
                    dj += rtv.values[t] * rtv.values[t];
                }
                out[j] = dj;
            }
        };
        hessian.column = [rv, rtv](std::size_t j,
                                   std::vector<double>& scratch,
                                   std::vector<std::size_t>& support) {
            linalg::gram_column(rv, rtv, j, scratch.data(), support);
        };
        hessian.diagonal = &shift;
        linalg::EqQpNonnegOptions qp_options = options.qp;
        qp_options.equality_operator = nullptr;
        qp_options.warm_start = options.warm_start;
        qp_options.counters = options.counters;
        if (options.budget != nullptr) qp_options.budget = options.budget;
        linalg::Vector x = linalg::solve_eq_qp_nonneg_operator(
                               hessian, rhs, linalg::SparseMatrix(), {},
                               qp_options)
                               .x;
        TME_CONTRACT_DBG_CHECK(check::solver_boundary(
            "bayesian_estimate (operator)", x,
            /*require_nonnegative=*/true));
        return x;
    }

    // Factored path: the MAP normal system G + w I is exactly the
    // factored QP's Hessian shape (sparse CSR Gram + diagonal), and the
    // problem has no equality constraints — nothing quadratic in the
    // pair count is allocated.  Strictly convex, so the minimizer
    // matches the NNLS path below to solver precision.
    if (options.shared_sparse_gram != nullptr &&
        options.shared_gram == nullptr) {
        const linalg::SparseMatrix& g = *options.shared_sparse_gram;
        if (g.rows() != r.cols() || g.cols() != r.cols()) {
            throw std::invalid_argument(
                "bayesian_estimate: shared sparse gram dimension mismatch");
        }
        linalg::Vector rhs = r.multiply_transpose(problem.loads);
        for (std::size_t i = 0; i < rhs.size(); ++i) {
            rhs[i] += w * prior[i];
        }
        const linalg::Vector shift(r.cols(), w);
        linalg::FactoredHessian hessian;
        hessian.matrix = g.view();
        hessian.diagonal = &shift;
        linalg::EqQpNonnegOptions qp_options = options.qp;
        qp_options.equality_operator = nullptr;
        qp_options.warm_start = options.warm_start;
        qp_options.counters = options.counters;
        if (options.budget != nullptr) qp_options.budget = options.budget;
        linalg::Vector x =
            linalg::solve_eq_qp_nonneg_factored(
                hessian, rhs, linalg::SparseMatrix(), {}, qp_options)
                .x;
        TME_CONTRACT_DBG_CHECK(check::solver_boundary(
            "bayesian_estimate (factored)", x,
            /*require_nonnegative=*/true));
        return x;
    }

    // The prior term only shifts the Gram diagonal, so the solver takes
    // the bare Gram plus a virtual shift: no per-window O(P^2) copy of
    // a shared epoch Gram, and the dual refresh runs over R's nonzeros.
    linalg::Matrix local_gram;
    if (options.shared_gram != nullptr) {
        if (options.shared_gram->rows() != r.cols() ||
            options.shared_gram->cols() != r.cols()) {
            throw std::invalid_argument(
                "bayesian_estimate: shared gram dimension mismatch");
        }
    } else {
        local_gram = r.gram();
    }
    const linalg::Matrix& g = options.shared_gram != nullptr
                                  ? *options.shared_gram
                                  : local_gram;
    linalg::Vector rhs = r.multiply_transpose(problem.loads);
    for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] += w * prior[i];

    linalg::NnlsOptions nnls_options;
    nnls_options.warm_start = options.warm_start;
    nnls_options.gram_diagonal_shift = w;
    nnls_options.gram_operator = &r;
    nnls_options.counters = options.counters;
    nnls_options.budget = options.budget;
    linalg::Vector x = linalg::nnls_gram(g, rhs, 0.0, nnls_options).x;
    TME_CONTRACT_DBG_CHECK(check::solver_boundary(
        "bayesian_estimate", x, /*require_nonnegative=*/true));
    return x;
}

}  // namespace tme::core
