// Shared wall-clock helper for the engine module's latency metrics.
#pragma once

#include <chrono>

namespace tme::engine {

using SteadyClock = std::chrono::steady_clock;

inline double seconds_since(SteadyClock::time_point start) {
    return std::chrono::duration<double>(SteadyClock::now() - start)
        .count();
}

}  // namespace tme::engine
