#include "routing/dijkstra.hpp"

#include <limits>
#include <queue>
#include <stdexcept>
#include <tuple>

namespace tme::routing {

ShortestPathTree dijkstra(const topology::Topology& topo, std::size_t src,
                          const LinkFilter& filter) {
    const std::size_t n = topo.pop_count();
    if (src >= n) throw std::out_of_range("dijkstra: bad source");

    ShortestPathTree tree;
    tree.distance.assign(n, std::numeric_limits<double>::infinity());
    tree.hops.assign(n, 0);
    tree.via_link.assign(n, std::nullopt);
    tree.distance[src] = 0.0;

    // Priority queue keyed by (distance, hops, pop) for deterministic
    // tie-breaking.
    using Entry = std::tuple<double, std::size_t, std::size_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    pq.push({0.0, 0, src});
    std::vector<bool> settled(n, false);

    while (!pq.empty()) {
        const auto [dist, hops, u] = pq.top();
        pq.pop();
        if (settled[u]) continue;
        settled[u] = true;
        for (std::size_t lid : topo.outgoing_core(u)) {
            const topology::Link& l = topo.link(lid);
            if (filter && !filter(l)) continue;
            const double nd = dist + l.igp_metric;
            const std::size_t nh = hops + 1;
            const std::size_t v = l.dst;
            const bool better =
                nd < tree.distance[v] ||
                (nd == tree.distance[v] &&
                 (nh < tree.hops[v] ||
                  (nh == tree.hops[v] && tree.via_link[v] &&
                   lid < *tree.via_link[v])));
            if (!settled[v] && better) {
                tree.distance[v] = nd;
                tree.hops[v] = nh;
                tree.via_link[v] = lid;
                pq.push({nd, nh, v});
            }
        }
    }
    return tree;
}

std::optional<Path> extract_path(const topology::Topology& topo,
                                 const ShortestPathTree& tree,
                                 std::size_t src, std::size_t dst) {
    if (dst >= tree.distance.size()) {
        throw std::out_of_range("extract_path: bad destination");
    }
    if (tree.distance[dst] == std::numeric_limits<double>::infinity()) {
        return std::nullopt;
    }
    Path reversed;
    std::size_t cur = dst;
    while (cur != src) {
        if (!tree.via_link[cur]) return std::nullopt;
        const std::size_t lid = *tree.via_link[cur];
        reversed.push_back(lid);
        cur = topo.link(lid).src;
        if (reversed.size() > topo.pop_count()) {
            return std::nullopt;  // defensive: corrupt tree
        }
    }
    return Path(reversed.rbegin(), reversed.rend());
}

std::optional<Path> shortest_path(const topology::Topology& topo,
                                  std::size_t src, std::size_t dst,
                                  const LinkFilter& filter) {
    return extract_path(topo, dijkstra(topo, src, filter), src, dst);
}

double path_metric(const topology::Topology& topo, const Path& path) {
    double acc = 0.0;
    for (std::size_t lid : path) acc += topo.link(lid).igp_metric;
    return acc;
}

bool path_is_valid(const topology::Topology& topo, std::size_t src,
                   std::size_t dst, const Path& path) {
    if (path.empty()) return src == dst;
    std::size_t cur = src;
    for (std::size_t lid : path) {
        if (lid >= topo.link_count()) return false;
        const topology::Link& l = topo.link(lid);
        if (l.kind != topology::LinkKind::core || l.src != cur) return false;
        cur = l.dst;
    }
    return cur == dst;
}

}  // namespace tme::routing
