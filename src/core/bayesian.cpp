#include "core/bayesian.hpp"

#include <stdexcept>

#include "linalg/nnls.hpp"

namespace tme::core {

linalg::Vector bayesian_estimate(const SnapshotProblem& problem,
                                 const linalg::Vector& prior,
                                 const BayesianOptions& options) {
    problem.validate();
    const linalg::SparseMatrix& r = *problem.routing;
    if (prior.size() != r.cols()) {
        throw std::invalid_argument("bayesian_estimate: prior size mismatch");
    }
    if (options.regularization <= 0.0) {
        throw std::invalid_argument(
            "bayesian_estimate: regularization must be positive");
    }
    const double w = 1.0 / options.regularization;  // sigma^{-2}

    linalg::Matrix g = r.gram();
    for (std::size_t i = 0; i < g.rows(); ++i) g(i, i) += w;
    linalg::Vector rhs = r.multiply_transpose(problem.loads);
    for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] += w * prior[i];

    return linalg::nnls_gram(g, rhs).x;
}

}  // namespace tme::core
