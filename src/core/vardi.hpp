// Vardi's Poissonian moment-matching estimator (paper Section 4.2.2;
// Vardi 1996).
//
// Under s_p ~ Poisson(lambda_p), link loads satisfy E{t} = R lambda and
// Cov{t} = R diag(lambda) R'.  Matching sample moments in least squares
// (Csiszar's argument for LS over KL when observations may be negative)
// gives
//
//   minimize  ||R lambda - that||^2
//             + w * || R diag(lambda) R' - Sigmahat ||_F^2,  lambda >= 0
//
// with w = sigma^{-2} in [0, 1] expressing faith in the Poisson
// assumption.  Both terms are linear in lambda, so this is one big NNLS;
// the second-moment block has L^2 rows but its Gram contribution has the
// closed form (R'R) .* (R'R), and its right-hand side is
// q_p = r_p' Sigmahat r_p — so the problem is solved entirely in Gram
// form without materializing the stacked matrix.
#pragma once

#include "core/problem.hpp"

namespace tme::core {

struct VardiOptions {
    /// Weight w = sigma^{-2} on the second-moment equations (paper uses
    /// 0.01 and 1 in Table 1).
    double second_moment_weight = 1.0;
};

struct VardiResult {
    linalg::Vector lambda;          ///< estimated mean rates
    double first_moment_residual = 0.0;   ///< ||R lambda - that||_2
    double second_moment_residual = 0.0;  ///< ||R diag(l) R' - Sigmahat||_F
};

/// Estimates lambda from a window of load measurements.
VardiResult vardi_estimate(const SeriesProblem& problem,
                           const VardiOptions& options = {});

}  // namespace tme::core
