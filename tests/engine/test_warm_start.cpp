// Warm-start equivalence: the reuse hooks must not change any estimate.
// All warm-started problems here have a unique minimizer (positive
// definite Gram, or strictly convex KL objective), so warm and cold runs
// converge to the same point; only the iteration path differs.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/bayesian.hpp"
#include "core/entropy.hpp"
#include "core/gravity.hpp"
#include "core/route_change.hpp"
#include "core/test_helpers.hpp"
#include "core/vardi.hpp"
#include "engine/engine.hpp"
#include "linalg/nnls.hpp"
#include "scenario/scenario.hpp"

namespace tme::engine {
namespace {

using core::testing::SmallNetwork;
using core::testing::tiny_network;

double max_abs_diff(const linalg::Vector& a, const linalg::Vector& b) {
    EXPECT_EQ(a.size(), b.size());
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        worst = std::max(worst, std::abs(a[i] - b[i]));
    }
    return worst;
}

TEST(WarmStart, NnlsGramSameSolution) {
    // Random PD system with an active non-negativity boundary.
    std::mt19937_64 rng(9);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    const std::size_t n = 20;
    linalg::Matrix a(n + 5, n, 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
    }
    const linalg::Matrix g = linalg::gram(a);
    linalg::Vector atb(n);
    for (double& v : atb) v = dist(rng);

    const linalg::NnlsResult cold = linalg::nnls_gram(g, atb);
    ASSERT_TRUE(cold.converged);

    // Warm start from the exact solution: converges immediately.
    linalg::NnlsOptions exact;
    exact.warm_start = &cold.x;
    const linalg::NnlsResult warm = linalg::nnls_gram(g, atb, 0.0, exact);
    ASSERT_TRUE(warm.converged);
    EXPECT_EQ(warm.iterations, 0u);
    EXPECT_LT(max_abs_diff(warm.x, cold.x), 1e-10);

    // Warm start from a perturbed support: same minimizer.
    linalg::Vector perturbed = cold.x;
    perturbed[0] += 1.0;
    perturbed[n - 1] = 0.0;
    linalg::NnlsOptions off;
    off.warm_start = &perturbed;
    const linalg::NnlsResult warm2 = linalg::nnls_gram(g, atb, 0.0, off);
    ASSERT_TRUE(warm2.converged);
    EXPECT_LT(max_abs_diff(warm2.x, cold.x), 1e-10);

    linalg::Vector wrong_size(n + 1, 1.0);
    linalg::NnlsOptions bad;
    bad.warm_start = &wrong_size;
    EXPECT_THROW(linalg::nnls_gram(g, atb, 0.0, bad),
                 std::invalid_argument);
}

TEST(WarmStart, BayesianSameEstimate) {
    const SmallNetwork net = tiny_network();
    const core::SnapshotProblem snap = net.snapshot();
    const linalg::Vector prior = core::gravity_estimate(snap);

    const linalg::Vector cold = core::bayesian_estimate(snap, prior);

    // Warm start from a deliberately different point (the prior).
    core::BayesianOptions warm_options;
    warm_options.warm_start = &prior;
    const linalg::Vector warm =
        core::bayesian_estimate(snap, prior, warm_options);
    EXPECT_LT(max_abs_diff(warm, cold), 1e-9);

    // Warm start from the cold solution.
    core::BayesianOptions exact_options;
    exact_options.warm_start = &cold;
    const linalg::Vector warm2 =
        core::bayesian_estimate(snap, prior, exact_options);
    EXPECT_LT(max_abs_diff(warm2, cold), 1e-9);
}

TEST(WarmStart, BayesianSharedGramIdentical) {
    const SmallNetwork net = tiny_network();
    const core::SnapshotProblem snap = net.snapshot();
    const linalg::Vector prior = core::gravity_estimate(snap);
    const linalg::Vector plain = core::bayesian_estimate(snap, prior);

    const linalg::Matrix gram = net.routing.gram();
    core::BayesianOptions options;
    options.shared_gram = &gram;
    const linalg::Vector shared =
        core::bayesian_estimate(snap, prior, options);
    // Same Gram values, same deterministic active-set path: bit-for-bit.
    EXPECT_EQ(max_abs_diff(shared, plain), 0.0);

    const linalg::Matrix wrong(3, 3, 0.0);
    core::BayesianOptions bad;
    bad.shared_gram = &wrong;
    EXPECT_THROW(core::bayesian_estimate(snap, prior, bad),
                 std::invalid_argument);
}

TEST(WarmStart, EntropyWarmNeverWorseAndNearby) {
    const SmallNetwork net = tiny_network();
    const core::SnapshotProblem snap = net.snapshot();
    const linalg::Vector prior = core::gravity_estimate(snap);

    core::EntropyOptions options;  // defaults: regularization 1000
    const linalg::Vector cold = core::entropy_estimate(snap, prior, options);

    core::EntropyOptions warm_options = options;
    warm_options.solver.initial = &cold;
    const linalg::Vector warm =
        core::entropy_estimate(snap, prior, warm_options);

    // The objective is strictly convex with a unique minimizer, but the
    // exponentiated-gradient solver terminates at first-order accuracy,
    // so coordinates agree to solver precision rather than machine
    // precision.  Restarting from the cold solution must never move to
    // a worse point.
    const double w = 1.0 / options.regularization;
    const auto objective = [&](const linalg::Vector& s) {
        const linalg::Vector r =
            linalg::sub(net.routing.multiply(s), snap.loads);
        return linalg::dot(r, r) + w * linalg::generalized_kl(s, prior);
    };
    EXPECT_LE(objective(warm), objective(cold) * (1.0 + 1e-12) + 1e-15);
    EXPECT_LT(max_abs_diff(warm, cold), 1e-2);
}

TEST(WarmStart, VardiSameEstimate) {
    const SmallNetwork net = tiny_network();
    std::mt19937_64 rng(21);
    std::uniform_real_distribution<double> dist(0.8, 1.2);
    std::vector<linalg::Vector> demands;
    for (std::size_t k = 0; k < 8; ++k) {
        linalg::Vector s = net.truth;
        for (double& v : s) v *= dist(rng);
        demands.push_back(std::move(s));
    }
    const core::SeriesProblem series = net.series(demands);

    const core::VardiResult cold = core::vardi_estimate(series);

    core::VardiOptions options;
    options.warm_start = &cold.lambda;
    const core::VardiResult warm = core::vardi_estimate(series, options);
    EXPECT_LT(max_abs_diff(warm.lambda, cold.lambda), 1e-8);
}

TEST(WarmStart, EngineWarmMatchesColdOverStream) {
    // Stream the same samples through a warm-starting engine and a cold
    // one; every window's estimates must agree.
    const SmallNetwork net = tiny_network();
    EngineConfig warm_config;
    warm_config.window_size = 5;
    warm_config.methods = {Method::gravity, Method::bayesian,
                           Method::vardi, Method::fanout};
    warm_config.warm_start = true;
    EngineConfig cold_config = warm_config;
    cold_config.warm_start = false;

    OnlineEngine warm_engine(net.topo, net.routing, warm_config);
    OnlineEngine cold_engine(net.topo, net.routing, cold_config);

    std::mt19937_64 rng(33);
    std::uniform_real_distribution<double> dist(0.7, 1.3);
    for (std::size_t k = 0; k < 12; ++k) {
        linalg::Vector s = net.truth;
        for (double& v : s) v *= dist(rng);
        const linalg::Vector loads = net.routing.multiply(s);
        const WindowResult warm_result = warm_engine.ingest(k, loads);
        const WindowResult cold_result = cold_engine.ingest(k, loads);
        ASSERT_EQ(warm_result.runs.size(), cold_result.runs.size());
        for (std::size_t i = 0; i < warm_result.runs.size(); ++i) {
            const MethodRun& w = warm_result.runs[i];
            const MethodRun& c = cold_result.runs[i];
            ASSERT_EQ(w.method, c.method);
            EXPECT_LT(max_abs_diff(w.estimate, c.estimate), 1e-9)
                << "method " << method_name(w.method) << " at sample " << k;
        }
    }
    // The warm engine actually warm-started something, and the fanout
    // QP's active-set seeds were verified and accepted.
    const MethodStats& stats =
        warm_engine.metrics().methods.at(Method::bayesian);
    EXPECT_GT(stats.warm_runs, 0u);
    const MethodStats& fanout_stats =
        warm_engine.metrics().methods.at(Method::fanout);
    EXPECT_GT(fanout_stats.warm_runs, 0u);
    EXPECT_GT(fanout_stats.warm_accepted_runs, 0u);
}

TEST(WarmStart, FanoutWarmMatchesColdAcrossMidDayReroute) {
    // Replay a scenario day with a routing change in the middle through
    // a warm-starting engine and a cold one: the fanout estimates must
    // agree to 1e-9 on every window, including the windows right after
    // the reroute (where the warm state was flushed and the QP restarts
    // cold on a fresh epoch).
    const scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe);
    const linalg::SparseMatrix rerouted =
        core::perturbed_routing(sc.topo, 0.8, 5);
    constexpr std::size_t kChangeAt = 60;
    constexpr std::size_t kSamples = 120;

    EngineConfig warm_config;
    warm_config.window_size = 12;
    warm_config.methods = {Method::fanout, Method::vardi};
    warm_config.warm_start = true;
    EngineConfig cold_config = warm_config;
    cold_config.warm_start = false;
    OnlineEngine warm_engine(sc.topo, sc.routing, warm_config);
    OnlineEngine cold_engine(sc.topo, sc.routing, cold_config);

    for (std::size_t k = 0; k < kSamples; ++k) {
        if (k == kChangeAt) {
            warm_engine.set_routing(rerouted);
            cold_engine.set_routing(rerouted);
        }
        const linalg::SparseMatrix& r =
            k < kChangeAt ? sc.routing : rerouted;
        const linalg::Vector loads = r.multiply(sc.demands[k]);
        const WindowResult warm_result = warm_engine.ingest(k, loads);
        const WindowResult cold_result = cold_engine.ingest(k, loads);
        ASSERT_EQ(warm_result.runs.size(), cold_result.runs.size());
        for (std::size_t i = 0; i < warm_result.runs.size(); ++i) {
            const MethodRun& w = warm_result.runs[i];
            const MethodRun& c = cold_result.runs[i];
            ASSERT_EQ(w.method, c.method);
            EXPECT_LT(max_abs_diff(w.estimate, c.estimate), 1e-9)
                << "method " << method_name(w.method) << " at sample "
                << k;
        }
    }
    EXPECT_EQ(warm_engine.metrics().epoch_changes, 1u);
    const MethodStats& stats =
        warm_engine.metrics().methods.at(Method::fanout);
    EXPECT_GT(stats.warm_accepted_runs, 0u);
    // The reroute flushed the warm state, so at least two runs (the
    // first of each epoch) were cold.
    EXPECT_LE(stats.warm_runs + 2, stats.runs);
}

TEST(WarmStart, DuplicateMethodsAreRejected) {
    // Each method owns one warm-start slot (fanout writes its slot from
    // inside the pool task), so scheduling a method twice would race.
    const SmallNetwork net = tiny_network();
    EngineConfig config;
    config.methods = {Method::gravity, Method::fanout, Method::fanout};
    EXPECT_THROW(OnlineEngine(net.topo, net.routing, config),
                 std::invalid_argument);
}

TEST(WarmStart, AllQuietTruthWindowScoresNaNInsteadOfThrowing) {
    // A truth provider that reports zero traffic must not let the MRE
    // metric throw out of the scheduler; the run is scored NaN and
    // stays out of the per-method MRE aggregates.
    const SmallNetwork net = tiny_network();
    EngineConfig config;
    config.window_size = 4;
    config.methods = {Method::gravity, Method::bayesian};
    OnlineEngine engine(net.topo, net.routing, config);
    engine.set_truth([&net](std::size_t) {
        return linalg::Vector(net.topo.pair_count(), 0.0);
    });

    const linalg::Vector loads = net.routing.multiply(net.truth);
    for (std::size_t k = 0; k < 3; ++k) {
        const WindowResult result = engine.ingest(k, loads);
        for (const MethodRun& run : result.runs) {
            EXPECT_TRUE(std::isnan(run.mre));
        }
    }
    EXPECT_GT(engine.metrics().mre_skipped_runs, 0u);
    for (const auto& [method, stats] : engine.metrics().methods) {
        EXPECT_EQ(stats.mre_count, 0u) << method_name(method);
        EXPECT_TRUE(std::isnan(stats.mean_mre()));
    }
}

}  // namespace
}  // namespace tme::engine
