// Constraint-based shortest path first (CSPF) with RSVP-TE-style
// bandwidth accounting, and the full-mesh LSP setup used by the paper's
// operator network (Section 5.1.1):
//
//   "A mesh of Label Switched Paths has been established between all the
//    core routers ... Every LSP has a bandwidth value associated with it,
//    and the head-end will use a constraint based routing algorithm
//    (CSPF) to find the shortest path that has the required bandwidth
//    available."
//
// The paper's authors reproduce the operator's routing by simulating
// CSPF with Cariden MATE; this module is our open equivalent.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "routing/dijkstra.hpp"
#include "topology/topology.hpp"

namespace tme::routing {

/// Tracks unreserved bandwidth per link during LSP placement.
class BandwidthLedger {
  public:
    explicit BandwidthLedger(const topology::Topology& topo,
                             double max_utilization = 1.0);

    /// Unreserved capacity remaining on a link.
    double available(std::size_t link_id) const;

    /// Reserves `mbps` on every link of `path`; throws std::logic_error if
    /// any reservation would exceed the allowed utilization (callers are
    /// expected to have routed with `can_fit`).
    void reserve(const Path& path, double mbps);

    /// True when the link can accept `mbps` more.
    bool can_fit(std::size_t link_id, double mbps) const;

    double reserved(std::size_t link_id) const;

  private:
    const topology::Topology* topo_;
    double max_utilization_;
    std::vector<double> reserved_;
};

struct Lsp {
    std::size_t src = 0;
    std::size_t dst = 0;
    double bandwidth_mbps = 0.0;
    Path path;
    bool constrained = false;  ///< true if placed respecting bandwidth
};

struct CspfOptions {
    /// Fraction of link capacity CSPF may reserve (RSVP subscription).
    double max_utilization = 1.0;
    /// When no bandwidth-feasible path exists, fall back to the
    /// unconstrained shortest path (the LSP is then marked
    /// constrained=false) instead of failing.
    bool fallback_to_igp = true;
};

/// Routes one LSP with CSPF against the ledger; reserves on success.
/// Returns std::nullopt only when the destination is unreachable even
/// without constraints (or fallback disabled and no feasible path).
std::optional<Lsp> route_lsp(const topology::Topology& topo,
                             BandwidthLedger& ledger, std::size_t src,
                             std::size_t dst, double bandwidth_mbps,
                             const CspfOptions& options = {});

/// Sets up the full LSP mesh: one LSP per ordered PoP pair, placed in
/// descending bandwidth order (the usual offline TE ordering, which also
/// makes placement deterministic).  `bandwidth` is indexed by
/// Topology::pair_index.  Throws std::runtime_error if any destination is
/// unreachable.
std::vector<Lsp> build_lsp_mesh(const topology::Topology& topo,
                                const std::vector<double>& bandwidth,
                                const CspfOptions& options = {});

}  // namespace tme::routing
