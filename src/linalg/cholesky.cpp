#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

#include "check/contract.hpp"
#include "check/validators.hpp"

namespace tme::linalg {

namespace {

// Dimension at which Cholesky switches from the exact unblocked kernel
// to the blocked one.  Every system the paper-scale pipeline factors
// (Europe 132 / USA 600-pair reduced problems cap out below this) stays
// bit-for-bit on the historical kernel; generated-backbone systems flip
// to the blocked path.
constexpr std::size_t kBlockedThreshold = 512;

// Panel width of the blocked factorization.
constexpr std::size_t kPanel = 48;

// Factorizes the columns [j0, j1) of l in place, assuming all columns
// < j0 have already been folded into the panel by trailing updates.
// Returns false when a pivot is not positive.
bool factor_panel(Matrix& l, std::size_t j0, std::size_t j1) {
    const std::size_t n = l.rows();
    for (std::size_t j = j0; j < j1; ++j) {
        const double* __restrict lrow_j = l.row_data(j);
        double diag = lrow_j[j];
        for (std::size_t k = j0; k < j; ++k) diag -= lrow_j[k] * lrow_j[k];
        if (diag <= 0.0 || !std::isfinite(diag)) return false;
        const double ljj = std::sqrt(diag);
        l(j, j) = ljj;
        const double inv = 1.0 / ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double* __restrict lrow_i = l.row_data(i);
            double v = lrow_i[j];
            for (std::size_t k = j0; k < j; ++k) v -= lrow_i[k] * lrow_j[k];
            lrow_i[j] = v * inv;
        }
    }
    return true;
}

// Trailing update after the panel [j0, j1): for every (i, c) in the
// lower triangle with i, c >= j1,  l(i, c) -= sum_k l(i, k) l(c, k),
// k over the panel.  2x4 register tiles give each dot product an
// independent accumulator chain (the unblocked kernel's single serial
// chain is what makes it latency-bound).
void trailing_update(Matrix& l, std::size_t j0, std::size_t j1) {
    const std::size_t n = l.rows();
    for (std::size_t i0 = j1; i0 < n; i0 += 2) {
        const std::size_t in = std::min<std::size_t>(2, n - i0);
        const double* __restrict ri0 = l.row_data(i0) + j0;
        const double* __restrict ri1 =
            in > 1 ? l.row_data(i0 + 1) + j0 : ri0;
        for (std::size_t c0 = j1; c0 <= i0 + in - 1; c0 += 4) {
            const std::size_t cn =
                std::min<std::size_t>(4, i0 + in - c0);
            double acc[2][4] = {{0.0, 0.0, 0.0, 0.0},
                                {0.0, 0.0, 0.0, 0.0}};
            for (std::size_t cc = 0; cc < cn; ++cc) {
                const double* __restrict rc = l.row_data(c0 + cc) + j0;
                double s0 = 0.0;
                double s1 = 0.0;
                const std::size_t width = j1 - j0;
                for (std::size_t k = 0; k < width; ++k) {
                    s0 += ri0[k] * rc[k];
                    s1 += ri1[k] * rc[k];
                }
                acc[0][cc] = s0;
                acc[1][cc] = s1;
            }
            for (std::size_t ii = 0; ii < in; ++ii) {
                double* __restrict row = l.row_data(i0 + ii);
                for (std::size_t cc = 0; cc < cn; ++cc) {
                    const std::size_t c = c0 + cc;
                    if (c <= i0 + ii) row[c] -= acc[ii][cc];
                }
            }
        }
    }
}

}  // namespace

Matrix cholesky_factor_unblocked(const Matrix& a, double jitter) {
    const std::size_t n = a.rows();
    Matrix l(n, n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a(j, j) + jitter;
        for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
        if (diag <= 0.0 || !std::isfinite(diag)) return Matrix();
        const double ljj = std::sqrt(diag);
        l(j, j) = ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double v = a(i, j);
            for (std::size_t k = 0; k < j; ++k) v -= l(i, k) * l(j, k);
            l(i, j) = v / ljj;
        }
    }
    return l;
}

Matrix cholesky_factor_blocked(const Matrix& a, double jitter) {
    const std::size_t n = a.rows();
    Matrix l(n, n, 0.0);
    // Seed with the lower triangle of a (+ jitter on the diagonal); the
    // factorization then runs fully in place over contiguous rows.
    for (std::size_t i = 0; i < n; ++i) {
        const double* __restrict src = a.row_data(i);
        double* __restrict dst = l.row_data(i);
        for (std::size_t j = 0; j < i; ++j) dst[j] = src[j];
        dst[i] = src[i] + jitter;
    }
    for (std::size_t j0 = 0; j0 < n; j0 += kPanel) {
        const std::size_t j1 = std::min(n, j0 + kPanel);
        if (!factor_panel(l, j0, j1)) return Matrix();
        if (j1 < n) trailing_update(l, j0, j1);
    }
    return l;
}

namespace {

// Returns the lower Cholesky factor, or an empty matrix on failure.
Matrix factorize(const Matrix& a, double jitter) {
    return a.rows() >= kBlockedThreshold ? cholesky_factor_blocked(a, jitter)
                                         : cholesky_factor_unblocked(a, jitter);
}

}  // namespace

Cholesky::Cholesky(const Matrix& a, double jitter) {
    if (a.rows() != a.cols()) {
        throw std::invalid_argument("Cholesky: matrix must be square");
    }
    // A NaN/Inf input would fail factorization with a misleading
    // "not positive definite"; name the real problem first.
    TME_CONTRACT_DBG_CHECK(check::finite(a, "Cholesky input"));
    l_ = factorize(a, jitter);
    if (l_.empty() && a.rows() > 0) {
        throw std::runtime_error("Cholesky: matrix not positive definite");
    }
}

Vector Cholesky::solve(const Vector& b) const {
    const std::size_t n = l_.rows();
    if (b.size() != n) {
        throw std::invalid_argument("Cholesky::solve: size mismatch");
    }
    // Forward substitution: L y = b.
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double v = b[i];
        for (std::size_t k = 0; k < i; ++k) v -= l_(i, k) * y[k];
        y[i] = v / l_(i, i);
    }
    // Back substitution: L' x = y.
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double v = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k) v -= l_(k, ii) * x[k];
        x[ii] = v / l_(ii, ii);
    }
    return x;
}

Matrix Cholesky::solve(const Matrix& b) const {
    if (b.rows() != l_.rows()) {
        throw std::invalid_argument("Cholesky::solve: size mismatch");
    }
    const std::size_t n = l_.rows();
    const std::size_t nrhs = b.cols();
    // All right-hand sides advance through the substitution together:
    // each elimination step updates a contiguous row of X across every
    // column, instead of extracting one strided column at a time.  The
    // per-column arithmetic (and order) is identical to solve(Vector).
    Matrix x = b;
    for (std::size_t i = 0; i < n; ++i) {
        double* __restrict xi = x.row_data(i);
        for (std::size_t k = 0; k < i; ++k) {
            const double lik = l_(i, k);
            const double* __restrict xk = x.row_data(k);
            for (std::size_t j = 0; j < nrhs; ++j) xi[j] -= lik * xk[j];
        }
        const double ljj = l_(i, i);
        for (std::size_t j = 0; j < nrhs; ++j) xi[j] /= ljj;
    }
    for (std::size_t ii = n; ii-- > 0;) {
        double* __restrict xi = x.row_data(ii);
        for (std::size_t k = ii + 1; k < n; ++k) {
            const double lki = l_(k, ii);
            const double* __restrict xk = x.row_data(k);
            for (std::size_t j = 0; j < nrhs; ++j) xi[j] -= lki * xk[j];
        }
        const double ljj = l_(ii, ii);
        for (std::size_t j = 0; j < nrhs; ++j) xi[j] /= ljj;
    }
    return x;
}

std::optional<Cholesky> try_cholesky(const Matrix& a, double jitter) {
    if (a.rows() != a.cols()) return std::nullopt;
    Matrix l = factorize(a, jitter);
    if (l.empty() && a.rows() > 0) return std::nullopt;
    Cholesky c;
    // Reuse the computed factor rather than refactorizing.
    c.l_ = std::move(l);
    return c;
}

Vector solve_spd_robust(const Matrix& a, const Vector& b) {
    if (a.rows() != a.cols() || a.rows() != b.size()) {
        throw std::invalid_argument("solve_spd_robust: dimension mismatch");
    }
    const std::size_t n = a.rows();
    if (n == 0) return {};
    double trace = 0.0;
    for (std::size_t i = 0; i < n; ++i) trace += a(i, i);
    const double base = (trace > 0.0 ? trace / static_cast<double>(n) : 1.0);
    double jitter = 0.0;
    for (int attempt = 0; attempt < 24; ++attempt) {
        if (auto c = try_cholesky(a, jitter)) return c->solve(b);
        jitter = (jitter == 0.0 ? base * 1e-12 : jitter * 10.0);
    }
    throw std::runtime_error("solve_spd_robust: factorization failed");
}

}  // namespace tme::linalg
