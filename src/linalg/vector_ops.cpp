#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tme::linalg {

namespace {

void require_same_size(const Vector& x, const Vector& y, const char* op) {
    if (x.size() != y.size()) {
        throw std::invalid_argument(std::string(op) +
                                    ": vector size mismatch");
    }
}

}  // namespace

double dot(const Vector& x, const Vector& y) {
    require_same_size(x, y, "dot");
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
    return acc;
}

double nrm2(const Vector& x) { return std::sqrt(dot(x, x)); }

double sum(const Vector& x) {
    double acc = 0.0;
    for (double v : x) acc += v;
    return acc;
}

double nrm1(const Vector& x) {
    double acc = 0.0;
    for (double v : x) acc += std::abs(v);
    return acc;
}

double nrm_inf(const Vector& x) {
    double acc = 0.0;
    for (double v : x) acc = std::max(acc, std::abs(v));
    return acc;
}

void axpy(double alpha, const Vector& x, Vector& y) {
    require_same_size(x, y, "axpy");
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, Vector& x) {
    for (double& v : x) v *= alpha;
}

Vector add(const Vector& x, const Vector& y) {
    require_same_size(x, y, "add");
    Vector z(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] + y[i];
    return z;
}

Vector sub(const Vector& x, const Vector& y) {
    require_same_size(x, y, "sub");
    Vector z(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] - y[i];
    return z;
}

Vector hadamard(const Vector& x, const Vector& y) {
    require_same_size(x, y, "hadamard");
    Vector z(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] * y[i];
    return z;
}

double max_element(const Vector& x) {
    if (x.empty()) throw std::invalid_argument("max_element: empty vector");
    return *std::max_element(x.begin(), x.end());
}

double min_element(const Vector& x) {
    if (x.empty()) throw std::invalid_argument("min_element: empty vector");
    return *std::min_element(x.begin(), x.end());
}

void clamp_below(Vector& x, double floor) {
    for (double& v : x) v = std::max(v, floor);
}

bool all_finite(const Vector& x) {
    return std::all_of(x.begin(), x.end(),
                       [](double v) { return std::isfinite(v); });
}

Vector constant(std::size_t n, double value) { return Vector(n, value); }

}  // namespace tme::linalg
