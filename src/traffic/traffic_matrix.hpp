// Traffic matrix container and fanout arithmetic (paper Sections 3.1-3.2).
//
// The demand between ordered PoP pair (n, m) is s_nm; the vector form s
// enumerates pairs via Topology::pair_index.  Fanouts are the row-
// normalized demands alpha_nm = s_nm / sum_m s_nm (eq. 4): the fraction
// of traffic entering at n that exits at m.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector_ops.hpp"
#include "topology/topology.hpp"

namespace tme::traffic {

/// Square demand matrix with a structural zero diagonal.
class TrafficMatrix {
  public:
    explicit TrafficMatrix(std::size_t nodes);

    /// From a pair-indexed demand vector (length N(N-1)).
    TrafficMatrix(std::size_t nodes, const linalg::Vector& pair_vector);

    std::size_t nodes() const { return n_; }

    double operator()(std::size_t src, std::size_t dst) const;
    void set(std::size_t src, std::size_t dst, double value);

    /// Vectorizes in canonical pair order (length N(N-1)).
    linalg::Vector to_pair_vector() const;

    /// Total network traffic sum_nm s_nm.
    double total() const;

    /// Row sums: total traffic entering the network at each node.
    linalg::Vector row_totals() const;

    /// Column sums: total traffic exiting the network at each node.
    linalg::Vector col_totals() const;

    /// Fanout matrix alpha_nm = s_nm / row_total(n); rows with zero total
    /// get uniform fanouts 1/(N-1).
    TrafficMatrix fanouts() const;

    const linalg::Matrix& matrix() const { return m_; }

  private:
    std::size_t n_;
    linalg::Matrix m_;
};

/// Fanout vector (pair-indexed) from a demand vector.  Rows with zero
/// total get uniform fanouts.
linalg::Vector fanouts_from_demands(std::size_t nodes,
                                    const linalg::Vector& demands);

/// Demands from fanouts and per-node entering totals:
/// s_nm = alpha_nm * total_n.
linalg::Vector demands_from_fanouts(std::size_t nodes,
                                    const linalg::Vector& fanouts,
                                    const linalg::Vector& node_totals);

/// Per-source node totals te(n) from a pair-indexed demand vector.
linalg::Vector node_totals_from_demands(std::size_t nodes,
                                        const linalg::Vector& demands);

}  // namespace tme::traffic
