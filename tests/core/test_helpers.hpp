// Shared fixtures for estimator tests: a small consistent network where
// ground truth is known exactly and the load vectors satisfy t = R s.
#pragma once

#include <random>

#include "core/problem.hpp"
#include "routing/routing_matrix.hpp"
#include "topology/builders.hpp"

namespace tme::core::testing {

struct SmallNetwork {
    topology::Topology topo;
    linalg::SparseMatrix routing;
    linalg::Vector truth;

    SnapshotProblem snapshot() const {
        SnapshotProblem p;
        p.topo = &topo;
        p.routing = &routing;
        p.loads = routing.multiply(truth);
        return p;
    }

    SeriesProblem series(const std::vector<linalg::Vector>& demands) const {
        SeriesProblem p;
        p.topo = &topo;
        p.routing = &routing;
        for (const linalg::Vector& s : demands) {
            p.loads.push_back(routing.multiply(s));
        }
        return p;
    }
};

/// 4-PoP network with deterministic pseudo-random positive demands.
inline SmallNetwork tiny_network(unsigned seed = 1) {
    SmallNetwork net;
    net.topo = topology::tiny_backbone();
    net.routing = routing::igp_routing_matrix(net.topo);
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(0.5, 4.0);
    net.truth.resize(net.topo.pair_count());
    for (double& v : net.truth) v = dist(rng);
    return net;
}

/// Europe-sized network with product-form-plus-jitter demands.
inline SmallNetwork europe_network(unsigned seed = 1) {
    SmallNetwork net;
    net.topo = topology::europe_backbone();
    net.routing = routing::igp_routing_matrix(net.topo);
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> gauss(0.0, 0.2);
    net.truth.resize(net.topo.pair_count());
    for (std::size_t p = 0; p < net.truth.size(); ++p) {
        const auto [src, dst] = net.topo.pair_nodes(p);
        net.truth[p] = net.topo.pop(src).weight * net.topo.pop(dst).weight *
                       std::exp(gauss(rng));
    }
    return net;
}

}  // namespace tme::core::testing
