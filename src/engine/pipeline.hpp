// Pipelined window fan-out: estimation passes for successive sliding
// windows overlap in time.
//
// The serial OnlineEngine finishes every method of window t before it
// will even look at sample t+1, so one slow QP stalls the whole
// stream.  The PipelinedEngine instead snapshots each closed window
// into an immutable WindowContext and dispatches it as a pipeline
// stage: window t+1's cheap methods (gravity, Kruithof, Bayesian) run
// while window t's fanout QP is still solving.  Three rules keep this
// exactly equivalent (to the bit) to the serial engine:
//
//   * per-method lineages — each method's windows execute strictly in
//     window order on a private FIFO, so warm-start state flows
//     window -> next window exactly as in the serial scheduler, and an
//     out-of-order completion of one method can never seed another
//     window's solve with a stale estimate;
//   * warm generation tags — every routing-epoch rebind bumps a
//     generation counter and lineage warm state is tagged with it, so
//     a window after a reroute always cold-starts (the serial engine's
//     reset_warm_state), even when in-flight windows of the old epoch
//     are still completing;
//   * bounded depth — at most `depth` windows are in flight; submit()
//     blocks (backpressure) instead of queueing without limit.  Depth 1
//     degenerates to fully serial execution, and a zero-thread pool
//     runs everything inline, which is the deterministic single-thread
//     fallback the tests pin against the serial engine.
//
// The routing epoch is pinned (shared_ptr) by every in-flight window,
// so epoch-cache evictions — including those triggered by *other*
// engines sharing the cache in a fleet — can never destroy derived
// data a stage is still reading.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/engine.hpp"

namespace tme::engine {

struct PipelineOptions {
    /// Maximum windows in flight (>= 1).  1 reproduces serial order;
    /// small depths (2-4) already hide the expensive series methods
    /// behind the next windows' cheap ones.
    std::size_t depth = 2;
};

class PipelinedEngine {
  public:
    /// `topo` and `routing` must outlive the engine.  `shared_cache` as
    /// in OnlineEngine (fleet engines share derived data per epoch).
    /// config.threads sizes the pipeline's worker pool; 0 runs every
    /// stage inline inside submit() (serial fallback).
    PipelinedEngine(const topology::Topology& topo,
                    const linalg::SparseMatrix& routing,
                    EngineConfig config, PipelineOptions pipeline = {},
                    std::shared_ptr<RoutingEpochCache> shared_cache =
                        nullptr);

    /// Drains all in-flight windows before destruction.
    ~PipelinedEngine();

    PipelinedEngine(const PipelinedEngine&) = delete;
    PipelinedEngine& operator=(const PipelinedEngine&) = delete;

    /// As OnlineEngine::set_routing: takes effect for subsequent
    /// submits; the flush happens on the next submit if the content
    /// fingerprint changed.  Swapping to a different matrix object
    /// drains the in-flight windows first (they alias the current
    /// object, which the caller may free once this returns); routing
    /// changes are rare enough that the barrier is negligible.
    void set_routing(const linalg::SparseMatrix& routing);
    const linalg::SparseMatrix& routing() const { return *routing_; }

    /// Attaches the ground-truth provider (scored refs are captured at
    /// submit time).  Must not be called while windows are in flight.
    void set_truth(TruthProvider truth) { truth_ = std::move(truth); }
    const TruthProvider& truth() const { return truth_; }

    /// Attaches a window-completion sink.  Windows may *finalize* out
    /// of submission order (methods finish when they finish), but the
    /// sink is invoked strictly in submission order, one call at a
    /// time — a completed window waits for its predecessors before it
    /// is published (see finalize()/flush_completed() in pipeline.cpp).
    /// Must not be called while windows are in flight.  A sink
    /// exception is captured and rethrown by finish(), like a stage
    /// exception.
    void set_window_sink(WindowSink sink) { sink_ = std::move(sink); }
    const WindowSink& window_sink() const { return sink_; }

    /// Ingests one sample and dispatches the updated window's
    /// estimation pass into the pipeline.  Blocks while `depth` windows
    /// are already in flight (backpressure).  Sample indices must be
    /// strictly increasing within a routing epoch.
    void submit(std::size_t sample, linalg::Vector loads, bool gap = false);

    /// Blocks until every submitted window has completed; returns their
    /// results in submission order and clears the internal buffer (the
    /// engine is reusable afterwards).  Rethrows the first estimator
    /// exception, if any stage failed.
    std::vector<WindowResult> finish();

    /// Live metrics (atomic counters; safe to read concurrently).
    /// windows_run lags samples_ingested by the windows in flight;
    /// total_seconds sums overlapping window walls, so it can exceed
    /// the stream's wall time.
    const EngineMetrics& metrics() const { return metrics_; }
    const SlidingWindow& window() const { return window_; }
    const std::shared_ptr<RoutingEpochCache>& cache() const {
        return cache_;
    }

    std::size_t depth() const { return depth_; }
    /// High-water mark of windows simultaneously in flight (<= depth).
    std::size_t max_in_flight() const;

  private:
    struct WindowJob;
    struct Lineage;

    void enqueue_stage(Lineage& lineage, std::shared_ptr<WindowJob> job,
                       std::size_t method_index);
    void drain_lineage(Lineage& lineage);
    void run_stage(Lineage& lineage, WindowJob& job,
                   std::size_t method_index);
    void finalize(WindowJob& job);
    void flush_completed();
    Lineage& lineage(Method m);

    const topology::Topology* topo_;
    const linalg::SparseMatrix* routing_;
    EngineConfig config_;
    std::size_t depth_;
    std::shared_ptr<RoutingEpochCache> cache_;
    std::shared_ptr<const RoutingEpoch> epoch_;
    SlidingWindow window_;
    EngineMetrics metrics_;
    TruthProvider truth_;
    WindowSink sink_;

    std::uint64_t window_epoch_ = 0;         ///< bound fingerprint
    std::uint64_t window_epoch_serial_ = 0;  ///< cache-unique identity
    /// Bound epoch's routing structure (see OnlineEngine: recognizes a
    /// shared cache's eviction-rebuild of identical content).
    std::size_t window_epoch_rows_ = 0;
    std::size_t window_epoch_cols_ = 0;
    std::size_t window_epoch_nnz_ = 0;
    bool epoch_bound_ = false;
    /// Bumped on every epoch rebind; lineage warm state carrying an
    /// older generation is never used as a seed.
    std::uint64_t generation_ = 0;
    std::size_t next_ordinal_ = 0;

    std::unique_ptr<Lineage[]> lineages_;  // indexed by Method

    mutable std::mutex state_mutex_;
    std::condition_variable state_cv_;
    std::size_t in_flight_ = 0;
    std::size_t submitted_ = 0;
    std::size_t completed_ = 0;
    std::size_t max_in_flight_ = 0;
    std::deque<std::shared_ptr<WindowJob>> jobs_;  // submission order
    std::exception_ptr first_error_;
    /// Completion-flush cursor into jobs_: windows below it have been
    /// handed to the sink (or skipped past, when none is attached).
    /// Guarded by state_mutex_; the flush itself serializes on
    /// publish_mutex_ (ordered: publish_mutex_ -> state_mutex_).
    std::size_t next_publish_ = 0;
    std::mutex publish_mutex_;

    /// Declared last on purpose: the pool is destroyed FIRST, joining
    /// every worker (a drainer's final empty-check included) while the
    /// lineages and state mutex above are still alive.
    ThreadPool pool_;
};

}  // namespace tme::engine
