// Routing-epoch cache: per-routing-matrix precomputations keyed by the
// content fingerprint of R.
//
// A backbone's routing matrix is piecewise constant in time — it changes
// only when the IGP reconverges or an operator reroutes LSPs — while
// load samples arrive every five minutes.  Everything derived purely
// from R (today the dense Gram matrix R'R that the Bayesian, Vardi and
// fanout solvers consume) is therefore cached per epoch and invalidated
// *exactly* when a route change produces a matrix with a different
// fingerprint.  A small LRU keeps the last few epochs alive so routing
// flaps that revert to a previous configuration hit the cache again.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace tme::engine {

/// Cached derived data for one routing configuration.
struct RoutingEpoch {
    std::uint64_t fingerprint = 0;
    /// The routing matrix this epoch was built from (not owned; rebound
    /// to the most recent structurally-identical matrix on each hit).
    const linalg::SparseMatrix* routing = nullptr;
    /// Dense Gram matrix R'R (pairs x pairs).
    linalg::Matrix gram;
};

class RoutingEpochCache {
  public:
    explicit RoutingEpochCache(std::size_t capacity = 4);

    /// Returns the epoch for `routing`, building it on a miss.  The
    /// reference stays valid until `capacity` further distinct epochs
    /// have been acquired.
    const RoutingEpoch& acquire(const linalg::SparseMatrix& routing);

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return entries_.size(); }
    std::size_t hits() const { return hits_; }
    std::size_t misses() const { return misses_; }
    std::size_t evictions() const { return evictions_; }

  private:
    std::size_t capacity_;
    std::list<RoutingEpoch> entries_;  // most recently used first
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
    std::size_t evictions_ = 0;
};

}  // namespace tme::engine
