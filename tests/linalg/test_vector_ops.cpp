#include "linalg/vector_ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

namespace tme::linalg {
namespace {

TEST(VectorOps, DotBasic) {
    EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
}

TEST(VectorOps, DotEmptyIsZero) { EXPECT_DOUBLE_EQ(dot({}, {}), 0.0); }

TEST(VectorOps, DotSizeMismatchThrows) {
    EXPECT_THROW(dot({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(VectorOps, Nrm2) {
    EXPECT_DOUBLE_EQ(nrm2({3.0, 4.0}), 5.0);
    EXPECT_DOUBLE_EQ(nrm2({}), 0.0);
}

TEST(VectorOps, Nrm1AndInf) {
    EXPECT_DOUBLE_EQ(nrm1({-1.0, 2.0, -3.0}), 6.0);
    EXPECT_DOUBLE_EQ(nrm_inf({-1.0, 2.0, -3.0}), 3.0);
}

TEST(VectorOps, Sum) { EXPECT_DOUBLE_EQ(sum({1.5, -0.5, 2.0}), 3.0); }

TEST(VectorOps, Axpy) {
    Vector y{1.0, 1.0};
    axpy(2.0, {3.0, -1.0}, y);
    EXPECT_DOUBLE_EQ(y[0], 7.0);
    EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(VectorOps, Scale) {
    Vector x{1.0, -2.0};
    scale(-3.0, x);
    EXPECT_DOUBLE_EQ(x[0], -3.0);
    EXPECT_DOUBLE_EQ(x[1], 6.0);
}

TEST(VectorOps, AddSubHadamard) {
    const Vector a{1.0, 2.0};
    const Vector b{3.0, 5.0};
    EXPECT_EQ(add(a, b), (Vector{4.0, 7.0}));
    EXPECT_EQ(sub(a, b), (Vector{-2.0, -3.0}));
    EXPECT_EQ(hadamard(a, b), (Vector{3.0, 10.0}));
}

TEST(VectorOps, MinMaxElement) {
    EXPECT_DOUBLE_EQ(max_element({1.0, 5.0, -2.0}), 5.0);
    EXPECT_DOUBLE_EQ(min_element({1.0, 5.0, -2.0}), -2.0);
    EXPECT_THROW(max_element({}), std::invalid_argument);
    EXPECT_THROW(min_element({}), std::invalid_argument);
}

TEST(VectorOps, ClampBelow) {
    Vector x{-1.0, 0.5, 2.0};
    clamp_below(x, 0.0);
    EXPECT_EQ(x, (Vector{0.0, 0.5, 2.0}));
}

TEST(VectorOps, AllFinite) {
    EXPECT_TRUE(all_finite({1.0, -2.0}));
    EXPECT_FALSE(all_finite({1.0, std::numeric_limits<double>::infinity()}));
    EXPECT_FALSE(all_finite({std::nan("")}));
}

TEST(VectorOps, Constant) {
    EXPECT_EQ(constant(3, 2.5), (Vector{2.5, 2.5, 2.5}));
}

// Property: Cauchy-Schwarz |x'y| <= ||x|| * ||y|| on pseudo-random data.
class VectorOpsProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(VectorOpsProperty, CauchySchwarz) {
    std::mt19937_64 rng(GetParam());
    std::uniform_real_distribution<double> dist(-10.0, 10.0);
    Vector x(37);
    Vector y(37);
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = dist(rng);
        y[i] = dist(rng);
    }
    EXPECT_LE(std::abs(dot(x, y)), nrm2(x) * nrm2(y) + 1e-9);
}

TEST_P(VectorOpsProperty, TriangleInequality) {
    std::mt19937_64 rng(GetParam() + 1000);
    std::uniform_real_distribution<double> dist(-10.0, 10.0);
    Vector x(23);
    Vector y(23);
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = dist(rng);
        y[i] = dist(rng);
    }
    EXPECT_LE(nrm2(add(x, y)), nrm2(x) + nrm2(y) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorOpsProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace tme::linalg
