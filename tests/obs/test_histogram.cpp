// Bucket-indexing, quantile, and merge correctness for the HDR-style
// latency histogram.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "obs/histogram.hpp"

namespace obs = tme::obs;
namespace detail = tme::obs::detail;

TEST(HistIndex, ExactUnitBucketsBelowSixteen) {
    for (std::uint64_t ns = 0; ns < 16; ++ns) {
        EXPECT_EQ(detail::hist_index(ns), ns);
        EXPECT_EQ(detail::hist_lower_bound(ns), ns);
    }
}

TEST(HistIndex, MonotoneAndWithinBounds) {
    std::size_t previous = 0;
    for (std::uint64_t ns = 0; ns < (1u << 20); ns += 7) {
        const std::size_t idx = detail::hist_index(ns);
        ASSERT_LT(idx, detail::kHistBuckets);
        ASSERT_GE(idx, previous);
        previous = idx;
    }
}

TEST(HistIndex, LowerBoundIsInclusiveAndTight) {
    // Every recorded value must land in a bucket whose lower bound is
    // <= the value, and the *next* bucket's lower bound must exceed it.
    std::mt19937_64 rng(42);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t ns = rng() >> (rng() % 50);
        const std::size_t idx = detail::hist_index(ns);
        EXPECT_LE(detail::hist_lower_bound(idx), ns);
        if (idx + 1 < detail::kHistBuckets) {
            EXPECT_GT(detail::hist_lower_bound(idx + 1), ns);
        }
    }
}

TEST(HistIndex, RelativeBucketWidthAtMostOneSixteenth) {
    for (std::size_t idx = 16; idx + 1 < detail::kHistBuckets; ++idx) {
        const double lo =
            static_cast<double>(detail::hist_lower_bound(idx));
        const double hi =
            static_cast<double>(detail::hist_lower_bound(idx + 1));
        EXPECT_LE((hi - lo) / lo, 1.0 / 16.0 + 1e-12);
    }
}

TEST(LatencyHistogram, CountSumMinMax) {
    obs::LatencyHistogram h;
    h.record(0.001);
    h.record(0.002);
    h.record(0.004);
    h.record(-1.0);  // clamps to 0
    const obs::HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, 4u);
    EXPECT_NEAR(s.sum_seconds, 0.007, 1e-12);
    EXPECT_EQ(s.min_ns, 0u);
    EXPECT_EQ(s.max_ns, 4000000u);
    EXPECT_NEAR(s.max_seconds(), 0.004, 1e-12);
    EXPECT_NEAR(s.mean_seconds(), 0.00175, 1e-12);
}

TEST(LatencyHistogram, EmptySnapshotIsAllZero) {
    const obs::LatencyHistogram h;
    const obs::HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.min_ns, 0u);
    EXPECT_EQ(s.max_ns, 0u);
    EXPECT_EQ(s.quantile(0.5), 0.0);
    EXPECT_EQ(s.mean_seconds(), 0.0);
}

TEST(LatencyHistogram, QuantilesResolveToBucketLowerBounds) {
    obs::LatencyHistogram h;
    // 100 samples: 1ms x 90, 10ms x 9, 100ms x 1.
    for (int i = 0; i < 90; ++i) h.record(0.001);
    for (int i = 0; i < 9; ++i) h.record(0.010);
    h.record(0.100);
    const obs::HistogramSnapshot s = h.snapshot();
    // Each quantile under-reports by at most one bucket width (6.25%).
    EXPECT_NEAR(s.p50(), 0.001, 0.001 / 16.0);
    EXPECT_NEAR(s.p95(), 0.010, 0.010 / 16.0);
    EXPECT_NEAR(s.p99(), 0.010, 0.010 / 16.0);
    EXPECT_NEAR(s.quantile(1.0), 0.100, 0.100 / 16.0);
    EXPECT_LE(s.p50(), 0.001);
    EXPECT_LE(s.p95(), 0.010);
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
    obs::LatencyHistogram a;
    obs::LatencyHistogram b;
    obs::LatencyHistogram combined;
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<double> dist(1e-6, 1e-1);
    for (int i = 0; i < 1000; ++i) {
        const double v = dist(rng);
        ((i % 2 == 0) ? a : b).record(v);
        combined.record(v);
    }
    obs::HistogramSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    const obs::HistogramSnapshot reference = combined.snapshot();
    EXPECT_EQ(merged.count, reference.count);
    EXPECT_NEAR(merged.sum_seconds, reference.sum_seconds, 1e-9);
    EXPECT_EQ(merged.min_ns, reference.min_ns);
    EXPECT_EQ(merged.max_ns, reference.max_ns);
    ASSERT_EQ(merged.buckets.size(), reference.buckets.size());
    for (std::size_t i = 0; i < merged.buckets.size(); ++i) {
        EXPECT_EQ(merged.buckets[i], reference.buckets[i]) << "bucket " << i;
    }
    EXPECT_EQ(merged.quantile(0.5), reference.quantile(0.5));
    EXPECT_EQ(merged.quantile(0.99), reference.quantile(0.99));
}

TEST(LatencyHistogram, MergeIntoEmptyAdoptsOther) {
    obs::LatencyHistogram a;
    a.record(0.003);
    obs::HistogramSnapshot empty;  // default: no bucket vector at all
    empty.merge(a.snapshot());
    EXPECT_EQ(empty.count, 1u);
    EXPECT_EQ(empty.max_ns, 3000000u);
    EXPECT_GT(empty.quantile(0.5), 0.0);
}

TEST(LatencyHistogram, CopySnapshotsLiveCells) {
    obs::LatencyHistogram a;
    a.record(0.001);
    obs::LatencyHistogram copy = a;
    a.record(0.002);
    EXPECT_EQ(copy.count(), 1u);
    EXPECT_EQ(a.count(), 2u);
}
