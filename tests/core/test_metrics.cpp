#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tme::core {
namespace {

TEST(Metrics, ThresholdCoversRequestedTraffic) {
    // Demands 10, 5, 3, 1, 1 (total 20).  90% -> need 10+5+3 = 18.
    const linalg::Vector s{10.0, 5.0, 3.0, 1.0, 1.0};
    const double thr = threshold_for_coverage(s, 0.9);
    const auto big = demands_above(s, thr);
    EXPECT_EQ(big.size(), 3u);
    EXPECT_EQ(big[0], 0u);
    EXPECT_EQ(big[1], 1u);
    EXPECT_EQ(big[2], 2u);
}

TEST(Metrics, ThresholdFullCoverageIncludesAll) {
    const linalg::Vector s{3.0, 1.0, 2.0};
    const double thr = threshold_for_coverage(s, 1.0);
    EXPECT_EQ(demands_above(s, thr).size(), 3u);
}

TEST(Metrics, ThresholdValidation) {
    EXPECT_THROW(threshold_for_coverage({}, 0.9), std::invalid_argument);
    EXPECT_THROW(threshold_for_coverage({0.0}, 0.9), std::invalid_argument);
    EXPECT_THROW(threshold_for_coverage({1.0}, 0.0), std::invalid_argument);
    EXPECT_THROW(threshold_for_coverage({1.0}, 1.5), std::invalid_argument);
}

TEST(Metrics, MreExactMatchIsZero) {
    const linalg::Vector s{5.0, 2.0, 1.0};
    EXPECT_DOUBLE_EQ(mean_relative_error(s, s, 0.0), 0.0);
}

TEST(Metrics, MreOnlyCountsLargeDemands) {
    const linalg::Vector truth{10.0, 1.0};
    const linalg::Vector est{5.0, 100.0};  // small demand wildly wrong
    // Threshold 5: only the first demand counts: |5-10|/10 = 0.5.
    EXPECT_DOUBLE_EQ(mean_relative_error(truth, est, 5.0), 0.5);
}

TEST(Metrics, MreAveragesRelativeErrors) {
    const linalg::Vector truth{10.0, 4.0};
    const linalg::Vector est{11.0, 3.0};  // 10% and 25%
    EXPECT_NEAR(mean_relative_error(truth, est, 0.0), 0.175, 1e-12);
}

TEST(Metrics, MreValidation) {
    EXPECT_THROW(mean_relative_error({1.0}, {1.0, 2.0}, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(mean_relative_error({1.0}, {1.0}, 5.0),
                 std::invalid_argument);
}

TEST(Metrics, MreAtCoverageMatchesManual) {
    const linalg::Vector truth{10.0, 5.0, 3.0, 1.0, 1.0};
    linalg::Vector est = truth;
    est[0] = 12.0;  // 20% error on the largest
    const double mre = mre_at_coverage(truth, est, 0.9);
    EXPECT_NEAR(mre, 0.2 / 3.0, 1e-12);
}

TEST(Metrics, Rmse) {
    EXPECT_DOUBLE_EQ(rmse({1.0, 2.0}, {1.0, 2.0}), 0.0);
    EXPECT_DOUBLE_EQ(rmse({0.0, 0.0}, {3.0, 4.0}),
                     std::sqrt(12.5));
    EXPECT_THROW(rmse({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Metrics, DemandsAboveSortedDescending) {
    const linalg::Vector s{1.0, 9.0, 4.0, 6.0};
    const auto idx = demands_above(s, 2.0);
    ASSERT_EQ(idx.size(), 3u);
    EXPECT_EQ(idx[0], 1u);
    EXPECT_EQ(idx[1], 3u);
    EXPECT_EQ(idx[2], 2u);
}

}  // namespace
}  // namespace tme::core
