#include "core/cao.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/nnls.hpp"
#include "linalg/stats.hpp"

namespace tme::core {

CaoResult cao_estimate(const SeriesProblem& problem,
                       const CaoOptions& options) {
    problem.validate();
    if (options.phi <= 0.0) {
        throw std::invalid_argument("cao_estimate: phi must be positive");
    }
    const linalg::SparseMatrix& r = *problem.routing;
    const std::size_t pairs = r.cols();
    const double w = options.second_moment_weight;

    const linalg::Vector that = linalg::sample_mean(problem.loads);
    const linalg::Matrix sigma = linalg::sample_covariance(problem.loads);
    const linalg::Matrix g1 = r.gram();
    const linalg::Vector g1_rhs = r.multiply_transpose(that);

    // Column supports for the quadratic forms.
    std::vector<std::vector<std::pair<std::size_t, double>>> columns(pairs);
    const auto& offsets = r.row_offsets();
    const auto& cols = r.column_indices();
    const auto& vals = r.values();
    for (std::size_t l = 0; l < r.rows(); ++l) {
        for (std::size_t k = offsets[l]; k < offsets[l + 1]; ++k) {
            columns[cols[k]].push_back({l, vals[k]});
        }
    }
    linalg::Vector q(pairs, 0.0);
    for (std::size_t p = 0; p < pairs; ++p) {
        for (const auto& [l, vl] : columns[p]) {
            for (const auto& [m, vm] : columns[p]) {
                q[p] += vl * vm * sigma(l, m);
            }
        }
    }

    // Initial iterate: first moments only.  NOTE: the first-moment
    // system is rank deficient (rank R < pairs), so its minimizer is
    // not unique — the dense dual refresh is kept deliberately, because
    // switching the refresh arithmetic (e.g. to the sparse-operator
    // form) can legitimately land on a different minimizer and change
    // the published estimates.
    CaoResult result;
    result.lambda = linalg::nnls_gram(g1, g1_rhs).x;
    if (w == 0.0) return result;

    const double lam_scale =
        std::max(1e-300, linalg::nrm_inf(result.lambda));
    for (std::size_t outer = 0; outer < options.outer_iterations; ++outer) {
        // Per-demand variance weights d_p = phi * lambda_p^{c-1},
        // linearizing var_p = phi lambda_p^c at the current iterate.
        linalg::Vector d(pairs, 0.0);
        for (std::size_t p = 0; p < pairs; ++p) {
            const double lp = std::max(result.lambda[p], 1e-9 * lam_scale);
            d[p] = options.phi * std::pow(lp, options.c - 1.0);
        }
        // Second-moment block with column scaling D:
        // rows (l,m): sum_p r_lp r_mp d_p lambda_p = Sigma_lm.
        // Gram contribution: G2[p][q] = d_p d_q (G1[p][q])^2,
        // rhs contribution: d_p * q_p.
        linalg::Matrix g = g1;
        linalg::Vector rhs = g1_rhs;
        for (std::size_t p = 0; p < pairs; ++p) {
            rhs[p] += w * d[p] * q[p];
            for (std::size_t qq = 0; qq < pairs; ++qq) {
                const double base = g1(p, qq);
                g(p, qq) = base + w * d[p] * d[qq] * base * base;
            }
        }
        linalg::Vector next = linalg::nnls_gram(g, rhs).x;
        double change = 0.0;
        for (std::size_t p = 0; p < pairs; ++p) {
            change = std::max(change,
                              std::abs(next[p] - result.lambda[p]));
        }
        result.lambda = std::move(next);
        result.iterate_change = change;
        ++result.outer_iterations;
        if (change <= 1e-9 * lam_scale) break;
    }
    return result;
}

}  // namespace tme::core
