#include "core/iterative_bayesian.hpp"

#include <cmath>
#include <stdexcept>

namespace tme::core {

IterativeBayesianResult iterative_bayesian_estimate(
    const SeriesProblem& problem, const linalg::Vector& initial_prior,
    const IterativeBayesianOptions& options) {
    problem.validate();
    if (initial_prior.size() != problem.routing->cols()) {
        throw std::invalid_argument(
            "iterative_bayesian_estimate: prior size mismatch");
    }
    if (options.max_passes == 0) {
        throw std::invalid_argument(
            "iterative_bayesian_estimate: max_passes must be >= 1");
    }

    BayesianOptions map_options;
    map_options.regularization = options.regularization;

    IterativeBayesianResult result;
    result.s = initial_prior;

    for (result.passes = 0; result.passes < options.max_passes;
         ++result.passes) {
        SnapshotProblem snap =
            problem.snapshot(result.passes % problem.loads.size());
        const linalg::Vector next =
            bayesian_estimate(snap, result.s, map_options);

        double change = 0.0;
        double scale = 0.0;
        for (std::size_t p = 0; p < next.size(); ++p) {
            change = std::max(change, std::abs(next[p] - result.s[p]));
            scale = std::max(scale, std::abs(next[p]));
        }
        result.s = next;
        result.last_change = (scale > 0.0 ? change / scale : 0.0);
        if (result.passes > 0 && result.last_change <= options.tolerance) {
            ++result.passes;
            result.converged = true;
            break;
        }
    }
    return result;
}

}  // namespace tme::core
