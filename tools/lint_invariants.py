#!/usr/bin/env python3
"""Repo-specific invariant lint (docs/STATIC_ANALYSIS.md).

Machine-enforces the conventions this codebase relies on but that no
compiler flag checks:

  dense-alloc     No square Matrix(n, n)-shaped dense allocation outside
                  src/linalg/.  A pairs x pairs dense matrix is the one
                  allocation that cannot exist at scale (200 PoPs:
                  ~12.7 GB); every estimation-path consumer must go
                  through the sparse/factored kernels in src/linalg/.
  gram-alloc      No RoutingEpoch::sparse_gram() / vardi_gram() call
                  outside an audited allowlist (the accessor definitions
                  and the tests that exercise them).  Both materialize
                  pairs x pairs structure — dense or CSR — so any new
                  call site silently re-introduces the quadratic build
                  the Gram-free operator paths (routing_transpose() +
                  linalg::gram_column / gram_operator) were built to
                  eliminate; at 500 PoPs no such structure fits.
  memory-order    Every operation on a raw std::atomic names an explicit
                  std::memory_order.  Defaulted seq_cst hides the
                  intended ordering contract and silently costs fences;
                  the THREADING.md audit table documents each choice.
                  (obs::MetricCell encapsulates its own relaxed ordering
                  and is exempt by construction.)
  layering        src/core/ and src/linalg/ never include src/engine/,
                  src/serve/ or (beyond the public counter interface
                  obs/counters.hpp) src/obs/ headers, and src/engine/ /
                  src/obs/ never include src/serve/.  The method and
                  kernel layers must stay embeddable without the online
                  engine, and the engine without the serving layer
                  (serve may include engine/obs, not vice versa).
  self-contained  Every header under src/ compiles standalone
                  (g++ -fsyntax-only): a header that leans on its
                  includer's includes breaks the next reorganisation.

Suppression: append a comment containing `lint: allow(<rule>)` on the
offending line or the line directly above it, with a justification.
Suppressions are audited decisions, not escapes — the comment is the
audit trail.

Usage:
  tools/lint_invariants.py [--root DIR] [--no-headers]
  tools/lint_invariants.py --self-test

Exit status: 0 clean, 1 violations found (or self-test failure).
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile

HEADER_EXTS = (".hpp", ".h")
SOURCE_EXTS = (".cpp", ".cc") + HEADER_EXTS

SUPPRESS_RE = re.compile(r"lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# Matches the call form Matrix(n, n...), the declaration form
# Matrix g(n, n...), and brace-init Matrix g{n, n...} — any square
# dense allocation whose two leading extents are the same identifier.
DENSE_ALLOC_RE = re.compile(
    r"\bMatrix\s+?(?:[A-Za-z_]\w*\s*)?[({]\s*([A-Za-z_]\w*)\s*,\s*\1\b|"
    r"\bMatrix\s*\(\s*([A-Za-z_]\w*)\s*,\s*\2\b")

# Call (or declaration) form of the two epoch accessors that build
# pairs x pairs Gram structure.  `sparse_gram_built()` / `gram_built()`
# telemetry probes do not match (no `(` directly after the name).
GRAM_ALLOC_RE = re.compile(r"\b(sparse_gram|vardi_gram)\s*\(")

# Audited allowlist for gram-alloc: the accessor definitions themselves
# and the tests that exercise the lazy-build/caching contract of those
# accessors.  Everything else — estimators, scheduler, serving, benches
# — must stay on the routing_transpose() operator paths or carry a
# `lint: allow(gram-alloc)` justification.
GRAM_ALLOC_ALLOWED = frozenset({
    "src/engine/epoch_cache.hpp",
    "src/engine/epoch_cache.cpp",
    "tests/engine/test_derived_cache.cpp",
    "tests/engine/test_epoch_cache_concurrency.cpp",
})

ATOMIC_DECL_RE = re.compile(
    r"std::atomic(?:<[^<>]*(?:<[^<>]*>[^<>]*)*>|_flag|_bool|_int|_uint|"
    r"_llong|_ullong|_size_t)\s*[&*]?\s*([A-Za-z_]\w*)"
)
ATOMIC_OP_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*\.\s*"
    r"(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong|wait|"
    r"test_and_set|clear)\s*\("
)
ATOMIC_INCDEC_RE = re.compile(
    r"(?:(?:\+\+|--)\s*([A-Za-z_]\w*)\b(?!\s*\.)|"
    r"\b([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*(?:\+\+|--|[+\-|&^]=))"
)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')

# The one obs/ header the method/kernel layers may use: the plain
# counter structs estimators fill in (no engine machinery behind it).
LAYERING_OBS_ALLOWED = {"obs/counters.hpp"}
# Directory -> include prefixes it must not reach into.  core/linalg
# stay embeddable without the engine/observability/serving layers;
# engine and obs stay embeddable without the serving layer (serve sits
# on top: it may include engine/ and obs/ freely).
LAYERING_RULES = {
    "src/core": ("engine/", "obs/", "serve/"),
    "src/linalg": ("engine/", "obs/", "serve/"),
    "src/engine": ("serve/",),
    "src/obs": ("serve/",),
    # fault/ is a base layer like obs/counters.hpp — every layer may
    # call into it, so it must depend on nothing above the std library.
    "src/fault": ("core/", "linalg/", "engine/", "obs/", "serve/",
                  "telemetry/", "scenario/", "topology/", "check/"),
}


class Violation:
    def __init__(self, rule: str, path: str, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line
    structure, so the regex rules never fire on prose or log text."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i > 1
                                                    else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def suppressed(raw_lines: list[str], lineno: int, rule: str) -> bool:
    """`lint: allow(rule)` on the flagged line or the one above it."""
    for idx in (lineno - 1, lineno - 2):
        if 0 <= idx < len(raw_lines):
            m = SUPPRESS_RE.search(raw_lines[idx])
            if m and rule in [r.strip() for r in m.group(1).split(",")]:
                return True
    return False


def iter_source_files(root: str, subdirs: tuple[str, ...],
                      exts: tuple[str, ...]):
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)


def relpath(root: str, path: str) -> str:
    return os.path.relpath(path, root).replace(os.sep, "/")


def check_dense_alloc(root: str) -> list[Violation]:
    violations = []
    for path in iter_source_files(root, ("src",), SOURCE_EXTS):
        rel = relpath(root, path)
        if rel.startswith("src/linalg/"):
            continue
        raw = open(path, encoding="utf-8", errors="replace").read()
        raw_lines = raw.splitlines()
        clean = strip_comments_and_strings(raw).splitlines()
        for lineno, line in enumerate(clean, 1):
            m = DENSE_ALLOC_RE.search(line)
            if m and not suppressed(raw_lines, lineno, "dense-alloc"):
                dim = m.group(1) or m.group(2)
                violations.append(Violation(
                    "dense-alloc", rel, lineno,
                    f"square dense Matrix({dim}, {dim}) "
                    "allocated outside src/linalg/ — use the sparse/"
                    "factored kernels, or justify with "
                    "// lint: allow(dense-alloc)"))
    return violations


def check_gram_alloc(root: str) -> list[Violation]:
    violations = []
    for path in iter_source_files(root, ("src", "tests", "bench"),
                                  SOURCE_EXTS):
        rel = relpath(root, path)
        if rel in GRAM_ALLOC_ALLOWED:
            continue
        raw = open(path, encoding="utf-8", errors="replace").read()
        raw_lines = raw.splitlines()
        clean = strip_comments_and_strings(raw).splitlines()
        for lineno, line in enumerate(clean, 1):
            m = GRAM_ALLOC_RE.search(line)
            if m and not suppressed(raw_lines, lineno, "gram-alloc"):
                violations.append(Violation(
                    "gram-alloc", rel, lineno,
                    f"{m.group(1)}() materializes pairs x pairs Gram "
                    "structure outside the audited allowlist — use the "
                    "routing_transpose() operator path, or justify "
                    "with // lint: allow(gram-alloc)"))
    return violations


def collect_atomic_names(root: str,
                         subdirs: tuple[str, ...]) -> set[str]:
    names = set()
    for path in iter_source_files(root, subdirs, SOURCE_EXTS):
        clean = strip_comments_and_strings(
            open(path, encoding="utf-8", errors="replace").read())
        for m in ATOMIC_DECL_RE.finditer(clean):
            names.add(m.group(1))
    # Never misclassify the relaxed-by-construction metric wrapper's
    # internals as unordered use sites (it passes explicit orders).
    return names


def balanced_args(text: str, open_paren: int) -> str:
    depth, j = 0, open_paren
    while j < len(text):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1:j]
        j += 1
    return text[open_paren + 1:]


def check_memory_order(root: str,
                       subdirs: tuple[str, ...]) -> list[Violation]:
    atomic_names = collect_atomic_names(root, subdirs)
    violations = []
    for path in iter_source_files(root, subdirs, SOURCE_EXTS):
        rel = relpath(root, path)
        raw = open(path, encoding="utf-8", errors="replace").read()
        raw_lines = raw.splitlines()
        clean = strip_comments_and_strings(raw)
        for m in ATOMIC_OP_RE.finditer(clean):
            name, op = m.group(1), m.group(2)
            if name not in atomic_names:
                continue
            lineno = clean.count("\n", 0, m.start()) + 1
            args = balanced_args(clean, m.end() - 1)
            if "memory_order" in args:
                continue
            if suppressed(raw_lines, lineno, "memory-order"):
                continue
            violations.append(Violation(
                "memory-order", rel, lineno,
                f"std::atomic {name}.{op}() without an explicit "
                "std::memory_order (defaulted seq_cst hides the "
                "ordering contract; see THREADING.md)"))
        for m in ATOMIC_INCDEC_RE.finditer(clean):
            name = m.group(1) or m.group(2)
            if name not in atomic_names:
                continue
            lineno = clean.count("\n", 0, m.start()) + 1
            if suppressed(raw_lines, lineno, "memory-order"):
                continue
            violations.append(Violation(
                "memory-order", rel, lineno,
                f"implicit seq_cst operator on std::atomic {name} — "
                "use fetch_add/fetch_sub with an explicit order"))
    return violations


def check_layering(root: str) -> list[Violation]:
    violations = []
    for sub, forbidden in LAYERING_RULES.items():
        for path in iter_source_files(root, (sub,), SOURCE_EXTS):
            rel = relpath(root, path)
            raw_lines = open(path, encoding="utf-8",
                             errors="replace").read().splitlines()
            for lineno, line in enumerate(raw_lines, 1):
                m = INCLUDE_RE.match(line)
                if not m:
                    continue
                inc = m.group(1)
                if not inc.startswith(tuple(forbidden)):
                    continue
                if inc in LAYERING_OBS_ALLOWED:
                    continue
                if suppressed(raw_lines, lineno, "layering"):
                    continue
                layers = "/".join(p.rstrip("/") for p in forbidden)
                violations.append(Violation(
                    "layering", rel, lineno,
                    f'#include "{inc}" — {sub}/ must stay embeddable '
                    f"without the {layers} layer(s) (allowed "
                    f"exceptions: {sorted(LAYERING_OBS_ALLOWED)})"))
    return violations


def check_self_contained(root: str,
                         compiler: str | None = None) -> list[Violation]:
    compiler = compiler or os.environ.get("CXX") or shutil.which("g++") \
        or shutil.which("c++")
    if compiler is None:
        print("lint: no C++ compiler found; skipping self-contained "
              "rule", file=sys.stderr)
        return []
    violations = []
    for path in iter_source_files(root, ("src",), HEADER_EXTS):
        rel = relpath(root, path)
        raw_lines = open(path, encoding="utf-8",
                         errors="replace").read().splitlines()
        if suppressed(raw_lines, 1, "self-contained"):
            continue
        proc = subprocess.run(
            [compiler, "-std=c++20", "-fsyntax-only",
             "-I", os.path.join(root, "src"), "-x", "c++", path],
            capture_output=True, text=True)
        if proc.returncode != 0:
            first = next((ln for ln in proc.stderr.splitlines()
                          if "error" in ln), proc.stderr.strip())
            violations.append(Violation(
                "self-contained", rel, 1,
                f"header does not compile standalone: {first}"))
    return violations


def run_all(root: str, headers: bool = True) -> list[Violation]:
    violations = []
    violations += check_dense_alloc(root)
    violations += check_gram_alloc(root)
    violations += check_memory_order(root, ("src", "tests", "bench",
                                            "examples"))
    violations += check_layering(root)
    if headers:
        violations += check_self_contained(root)
    return violations


# --------------------------------------------------------------------
# Self-test: seed one violation per rule in a scratch tree and assert
# the lint flags exactly it; then assert the suppression comment and
# the clean form are accepted.  Guards the lint itself against silent
# regex rot.

SELF_TEST_CASES = [
    (
        "dense-alloc",
        "src/engine/bad_dense.cpp",
        "void f(std::size_t pairs) {\n"
        "    auto g = linalg::Matrix(pairs, pairs);\n"
        "}\n",
        "void f(std::size_t pairs) {\n"
        "    // Vardi transform is inherently dense; built once per "
        "epoch.  lint: allow(dense-alloc)\n"
        "    auto g = linalg::Matrix(pairs, pairs);\n"
        "}\n",
    ),
    (
        "gram-alloc",
        "src/engine/bad_gram.cpp",
        "void f(const RoutingEpoch& epoch) {\n"
        "    const auto& g = epoch.sparse_gram();\n"
        "    (void)g;\n"
        "}\n",
        "void f(const RoutingEpoch& epoch) {\n"
        "    const auto& rt = epoch.routing_transpose();\n"
        "    (void)rt;\n"
        "}\n",
    ),
    (
        # vardi_gram matches too, and the suppression comment is the
        # audit trail for a justified dense fallback.
        "gram-alloc",
        "src/engine/bad_vardi_gram.cpp",
        "void f(const RoutingEpoch& epoch) {\n"
        "    const auto& g = epoch.vardi_gram(0.5);\n"
        "    (void)g;\n"
        "}\n",
        "void f(const RoutingEpoch& epoch) {\n"
        "    // Dense fallback kept for the paper-scale bitwise gate."
        "  lint: allow(gram-alloc)\n"
        "    const auto& g = epoch.vardi_gram(0.5);\n"
        "    (void)g;\n"
        "}\n",
    ),
    (
        "memory-order",
        "src/engine/bad_atomic.cpp",
        "#include <atomic>\n"
        "std::atomic<int> hits{0};\n"
        "int f() { return hits.load(); }\n",
        "#include <atomic>\n"
        "std::atomic<int> hits{0};\n"
        "int f() { return hits.load(std::memory_order_relaxed); }\n",
    ),
    (
        "memory-order",
        "src/engine/bad_incr.cpp",
        "#include <atomic>\n"
        "std::atomic<int> misses{0};\n"
        "void f() { ++misses; }\n",
        "#include <atomic>\n"
        "std::atomic<int> misses{0};\n"
        "void f() { misses.fetch_add(1, std::memory_order_relaxed); }\n",
    ),
    (
        "layering",
        "src/core/bad_layer.cpp",
        '#include "engine/scheduler.hpp"\n',
        '#include "obs/counters.hpp"\n',
    ),
    (
        # core must not reach up into the serving layer.
        "layering",
        "src/core/bad_serve_layer.cpp",
        '#include "serve/store.hpp"\n',
        '#include "obs/counters.hpp"\n',
    ),
    (
        # engine must stay embeddable without serve (serve includes
        # engine, never the reverse); engine -> obs stays allowed.
        "layering",
        "src/engine/bad_serve_layer.cpp",
        '#include "serve/snapshot.hpp"\n',
        '#include "obs/histogram.hpp"\n',
    ),
    (
        "self-contained",
        "src/core/bad_header.hpp",
        "#pragma once\n"
        "inline std::string broken() { return {}; }\n",
        "#pragma once\n"
        "#include <string>\n"
        "inline std::string fixed() { return {}; }\n",
    ),
]


def self_test() -> int:
    failures = 0
    for rule, rel, bad, good in SELF_TEST_CASES:
        for label, content, expect_hit in (("seeded", bad, True),
                                           ("clean", good, False)):
            with tempfile.TemporaryDirectory() as tmp:
                path = os.path.join(tmp, rel)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "w", encoding="utf-8") as f:
                    f.write(content)
                found = [v for v in run_all(tmp) if v.rule == rule]
                ok = bool(found) == expect_hit
                status = "ok" if ok else "FAIL"
                print(f"self-test [{rule}/{label}]: {status}" +
                      ("" if ok else
                       f" (violations: {[str(v) for v in found]})"))
                failures += 0 if ok else 1
    # Suppression must silence the dense-alloc seed.
    rule, rel, _bad, suppressed_src = SELF_TEST_CASES[0]
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(suppressed_src)
        found = [v for v in run_all(tmp) if v.rule == rule]
        ok = not found
        print(f"self-test [{rule}/suppressed]: "
              f"{'ok' if ok else 'FAIL'}")
        failures += 0 if ok else 1
    print(f"self-test: {'PASS' if failures == 0 else 'FAIL'}")
    return 0 if failures == 0 else 1


def main() -> int:
    parser = argparse.ArgumentParser(
        description="repo invariant lint (see docs/STATIC_ANALYSIS.md)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--no-headers", action="store_true",
                        help="skip the header self-containment compiles")
    parser.add_argument("--self-test", action="store_true",
                        help="seed violations and assert detection")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    violations = run_all(root, headers=not args.no_headers)
    for v in violations:
        print(v)
    if violations:
        print(f"lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
