#include "engine/replay.hpp"

#include <cmath>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "engine/ingest_queue.hpp"

namespace tme::engine {

namespace {

/// Mean per-method MRE over all scored windows.
std::map<Method, double> summarize_mre(
    const std::vector<WindowResult>& windows) {
    std::map<Method, std::pair<double, std::size_t>> acc;
    for (const WindowResult& window : windows) {
        for (const MethodRun& run : window.runs) {
            if (std::isnan(run.mre)) continue;
            auto& [sum, count] = acc[run.method];
            sum += run.mre;
            ++count;
        }
    }
    std::map<Method, double> mean;
    for (const auto& [method, pair] : acc) {
        if (pair.second > 0) {
            mean[method] = pair.first / static_cast<double>(pair.second);
        }
    }
    return mean;
}

/// Installs the scenario truth provider for the duration of `body`,
/// restoring whatever the caller had attached on every exit path.
template <typename Engine, typename Body>
void with_scenario_truth(Engine& engine, const scenario::Scenario& sc,
                         bool attach, const Body& body) {
    TruthProvider saved = engine.truth();
    if (attach) {
        engine.set_truth(
            [&sc](std::size_t sample) { return sc.demands.at(sample); });
    }
    try {
        body();
    } catch (...) {
        if (attach) engine.set_truth(std::move(saved));
        throw;
    }
    if (attach) engine.set_truth(std::move(saved));
}

}  // namespace

ReplayResult replay_scenario(OnlineEngine& engine,
                             const scenario::Scenario& sc,
                             const ReplayOptions& options) {
    if (engine.routing().cols() != sc.topo.pair_count()) {
        throw std::invalid_argument(
            "replay_scenario: engine routing does not match scenario");
    }
    ReplayResult result;
    result.windows.reserve(sc.demands.size());
    with_scenario_truth(engine, sc, options.attach_truth, [&] {
        scenario::replay(
            sc, options.events,
            [&](std::size_t sample, const linalg::SparseMatrix& routing,
                const linalg::Vector& loads,
                const linalg::Vector& demands) {
                (void)demands;
                if (&routing != &engine.routing()) {
                    engine.set_routing(routing);
                }
                result.windows.push_back(engine.ingest(sample, loads));
            });
    });
    result.mean_mre = summarize_mre(result.windows);
    return result;
}

ReplayResult replay_scenario_async(OnlineEngine& engine,
                                   const scenario::Scenario& sc,
                                   const ReplayOptions& options,
                                   std::size_t queue_capacity) {
    if (engine.routing().cols() != sc.topo.pair_count()) {
        throw std::invalid_argument(
            "replay_scenario_async: engine routing does not match "
            "scenario");
    }
    ReplayResult result;
    result.windows.reserve(sc.demands.size());
    with_scenario_truth(engine, sc, options.attach_truth, [&] {
        IngestQueue queue(queue_capacity);
        // Producer stalls (full queue) and consumer waits (empty queue)
        // land in the engine's backpressure/ingest-wait histograms.
        queue.set_wait_sinks(&engine.backpressure_wait_sink(),
                             &engine.ingest_wait_sink());
        std::exception_ptr producer_error;
        // Producer: generates the day's samples (loads under the active
        // routing) and pushes them through the bounded queue.  Route
        // changes ride in-band on each item, so the consumer rebinds at
        // exactly the same stream position as the synchronous replay.
        std::thread producer([&] {
            try {
                scenario::replay(
                    sc, options.events,
                    [&](std::size_t sample,
                        const linalg::SparseMatrix& routing,
                        const linalg::Vector& loads,
                        const linalg::Vector& demands) {
                        (void)demands;
                        IngestItem item;
                        item.sample = sample;
                        item.loads = loads;
                        item.routing = &routing;
                        if (!queue.push(std::move(item))) {
                            // Consumer aborted; stop producing.  Typed
                            // so the join below can tell this echo from
                            // a genuine producer failure.
                            throw QueueClosedError(
                                "replay_scenario_async: queue closed");
                        }
                    });
            } catch (...) {
                producer_error = std::current_exception();
            }
            queue.close();
        });

        try {
            while (std::optional<IngestItem> item = queue.pop()) {
                if (item->routing != nullptr &&
                    item->routing != &engine.routing()) {
                    engine.set_routing(*item->routing);
                }
                result.windows.push_back(engine.ingest(
                    item->sample, std::move(item->loads), item->gap));
            }
        } catch (...) {
            // Unblock and stop the producer before rethrowing.
            queue.close();
            producer.join();
            throw;
        }
        producer.join();
        // A closed-queue abort in the producer is only the echo of a
        // consumer-side close (the catch above rethrows the consumer's
        // own error before reaching here); any other producer error
        // surfaces.
        if (producer_error) {
            try {
                std::rethrow_exception(producer_error);
            } catch (const QueueClosedError&) {
                // benign: consumer hung up first
            }
        }
    });
    result.mean_mre = summarize_mre(result.windows);
    return result;
}

ReplayResult replay_scenario(PipelinedEngine& engine,
                             const scenario::Scenario& sc,
                             const ReplayOptions& options) {
    if (engine.routing().cols() != sc.topo.pair_count()) {
        throw std::invalid_argument(
            "replay_scenario: engine routing does not match scenario");
    }
    ReplayResult result;
    with_scenario_truth(engine, sc, options.attach_truth, [&] {
        scenario::replay(
            sc, options.events,
            [&](std::size_t sample, const linalg::SparseMatrix& routing,
                const linalg::Vector& loads,
                const linalg::Vector& demands) {
                (void)demands;
                if (&routing != &engine.routing()) {
                    engine.set_routing(routing);
                }
                engine.submit(sample, loads);
            });
        result.windows = engine.finish();
    });
    result.mean_mre = summarize_mre(result.windows);
    return result;
}

}  // namespace tme::engine
