// Online traffic-matrix estimation engine.
//
// Turns the repository's batch estimators into a streaming pipeline:
// link-load samples are ingested one 5-minute interval at a time (from
// raw vectors, a telemetry::TimeSeriesStore, or a simulated
// telemetry::PollingOutcome with gap handling for lost polls), appended
// into a ring-buffered sliding window, and re-estimated per window by a
// configurable set of methods running on a small thread pool.  Derived
// data that depends only on the routing matrix lives in a routing-epoch
// cache and is invalidated exactly when a route change produces a new
// R; the sliding window is flushed at the same moment, because samples
// measured under different routing cannot share one estimation problem.
//
//   telemetry ──> OnlineEngine::ingest ──> SlidingWindow ──┐
//                                                          ├─> EstimatorScheduler ──> WindowResult
//   route_change ──> set_routing ──> RoutingEpochCache  ───┘        │
//                                                                   └──> EngineMetrics
#pragma once

#include <cstdint>
#include <functional>

#include "engine/epoch_cache.hpp"
#include "engine/metrics.hpp"
#include "engine/scheduler.hpp"
#include "engine/window.hpp"
#include "telemetry/poller.hpp"
#include "telemetry/timeseries.hpp"

namespace tme::engine {

struct EngineConfig {
    /// Sliding-window capacity in samples (5-minute intervals).
    std::size_t window_size = 12;
    /// Series methods (Vardi, fanout) wait for this many samples.
    std::size_t min_series_window = 3;
    /// Methods re-estimated each window.
    std::vector<Method> methods = {Method::gravity, Method::bayesian,
                                   Method::fanout};
    MethodOptions method_options;
    /// Worker threads for the per-window method fan-out; 0 runs inline.
    std::size_t threads = 0;
    /// Routing epochs kept alive for flap recovery.
    std::size_t epoch_cache_capacity = 4;
    /// Seed each method's solver from the previous window's solution.
    bool warm_start = true;
};

/// Per-sample ground truth provider (demand vector for sample k), used
/// to score windows when a scenario supplies the truth.
using TruthProvider = std::function<linalg::Vector(std::size_t sample)>;

class OnlineEngine {
  public:
    /// `topo` and `routing` must outlive the engine.  `shared_cache`
    /// lets a fleet of engines on the same topology share one routing-
    /// epoch cache (its derived data is built once and read by all);
    /// when null the engine owns a private cache of
    /// config.epoch_cache_capacity epochs.
    OnlineEngine(const topology::Topology& topo,
                 const linalg::SparseMatrix& routing,
                 EngineConfig config = {},
                 std::shared_ptr<RoutingEpochCache> shared_cache = nullptr);

    /// Signals a routing change: subsequent samples are interpreted
    /// under `routing`.  The window flush and cache (in)validation
    /// happen on the next ingest, driven by the content fingerprint —
    /// re-announcing a content-identical matrix keeps the epoch (and
    /// window) alive, merely rebinding internal pointers to the new
    /// object.
    void set_routing(const linalg::SparseMatrix& routing);

    const linalg::SparseMatrix& routing() const { return *routing_; }

    /// Ingests one load sample and runs the scheduled estimators over
    /// the updated window.  `gap` flags a sample reconstructed by
    /// interpolation (lost polls).  Sample indices must be strictly
    /// increasing within a routing epoch.
    WindowResult ingest(std::size_t sample, linalg::Vector loads,
                        bool gap = false);

    /// Ingests interval `interval` of a telemetry store (objects are
    /// link ids).  Missing polls are linearly interpolated by the store
    /// and the sample is flagged as a gap.
    WindowResult ingest_interval(const telemetry::TimeSeriesStore& store,
                                 std::size_t interval);

    /// Replays every interval of a polling-simulation outcome.
    std::vector<WindowResult> ingest_outcome(
        const telemetry::PollingOutcome& outcome);

    /// Attaches/detaches the ground-truth provider used to fill
    /// MethodRun::mre (pass an empty function to detach).
    void set_truth(TruthProvider truth) { truth_ = std::move(truth); }

    /// The currently attached truth provider (empty when detached).
    const TruthProvider& truth() const { return truth_; }

    /// Attaches a window-completion sink, invoked at the end of every
    /// ingest with the finished (scored) WindowResult — after metrics
    /// accumulation, before ingest returns.  Pass an empty function to
    /// detach.  A sink exception propagates out of ingest.
    void set_window_sink(WindowSink sink) { sink_ = std::move(sink); }
    const WindowSink& window_sink() const { return sink_; }

    /// Records time a feeder spent waiting for samples (async replay's
    /// consumer blocking on the ingest queue) / stalled pushing into a
    /// full queue.  Exposed so feed loops outside the engine can land
    /// their wait time in this engine's metrics.
    void note_ingest_wait(double seconds) {
        metrics_.ingest_wait.record(seconds);
    }
    void note_backpressure_wait(double seconds) {
        metrics_.backpressure_wait.record(seconds);
    }

    /// Histogram sinks for IngestQueue::set_wait_sinks: producer stalls
    /// land in backpressure_wait, consumer waits in ingest_wait.  The
    /// histograms are internally atomic, so the queue's threads may
    /// record into them concurrently with ingestion and metric readers.
    obs::LatencyHistogram& ingest_wait_sink() {
        return metrics_.ingest_wait;
    }
    obs::LatencyHistogram& backpressure_wait_sink() {
        return metrics_.backpressure_wait;
    }

    /// Live metrics.  Counters are atomics and the per-method map is
    /// pre-populated at construction, so reading (or copying) the
    /// metrics concurrently with ingestion is safe and torn-free.
    const EngineMetrics& metrics() const { return metrics_; }
    const SlidingWindow& window() const { return window_; }
    const std::shared_ptr<RoutingEpochCache>& cache() const {
        return cache_;
    }
    std::uint64_t current_epoch() const { return window_epoch_; }

  private:
    const topology::Topology* topo_;
    const linalg::SparseMatrix* routing_;
    EngineConfig config_;
    std::shared_ptr<RoutingEpochCache> cache_;
    /// Pins the bound epoch so a shared cache serving other engines can
    /// never destroy it under this engine's feet.
    std::shared_ptr<const RoutingEpoch> epoch_;
    SlidingWindow window_;
    EstimatorScheduler scheduler_;
    EngineMetrics metrics_;
    TruthProvider truth_;
    WindowSink sink_;
    std::uint64_t window_epoch_ = 0;         ///< fingerprint (reporting)
    std::uint64_t window_epoch_serial_ = 0;  ///< cache-unique identity
    /// Structure of the bound epoch's routing, so a shared cache's
    /// eviction-rebuild (same content, fresh serial) is recognized and
    /// does not flush the window.
    std::size_t window_epoch_rows_ = 0;
    std::size_t window_epoch_cols_ = 0;
    std::size_t window_epoch_nnz_ = 0;
    bool epoch_bound_ = false;  ///< window_epoch_* hold a real epoch
};

}  // namespace tme::engine
