#include "engine/epoch_cache.hpp"

#include <stdexcept>
#include <utility>

#include "check/contract.hpp"
#include "check/validators.hpp"
#include "core/route_change.hpp"
#include "engine/clock.hpp"
#include "obs/trace.hpp"

namespace tme::engine {

RoutingEpoch::RoutingEpoch(std::uint64_t fingerprint, std::uint64_t serial,
                           const linalg::SparseMatrix& routing,
                           std::shared_ptr<obs::LatencyHistogram>
                               build_latency)
    : fingerprint_(fingerprint),
      serial_(serial),
      rows_(routing.rows()),
      cols_(routing.cols()),
      nonzeros_(routing.nonzeros()),
      routing_(routing),
      derived_(std::make_unique<Derived>()),
      build_latency_(std::move(build_latency)) {}

void RoutingEpoch::record_build(double build_seconds) const {
    if (build_latency_ != nullptr) build_latency_->record(build_seconds);
}

const linalg::Matrix& RoutingEpoch::gram() const {
    {
        std::shared_lock<std::shared_mutex> read(derived_->mutex);
        if (derived_->gram_built) return derived_->gram;
    }
    std::unique_lock<std::shared_mutex> write(derived_->mutex);
    if (!derived_->gram_built) {
        obs::Span span("epoch/build_gram");
        const SteadyClock::time_point start = SteadyClock::now();
        derived_->gram = linalg::gram_sparse(routing_);
        derived_->gram_built = true;
        // Every estimator sharing this epoch consumes the Gram as-is; a
        // NaN here (corrupted routing values) poisons all of them.
        TME_CONTRACT_DBG_CHECK(
            check::finite(derived_->gram, "epoch dense Gram"));
        record_build(seconds_since(start));
    }
    return derived_->gram;
}

bool RoutingEpoch::gram_built() const {
    std::shared_lock<std::shared_mutex> read(derived_->mutex);
    return derived_->gram_built;
}

const linalg::SparseMatrix& RoutingEpoch::sparse_gram() const {
    {
        std::shared_lock<std::shared_mutex> read(derived_->mutex);
        if (derived_->sparse_gram_built) return derived_->sparse_gram;
    }
    std::unique_lock<std::shared_mutex> write(derived_->mutex);
    if (!derived_->sparse_gram_built) {
        obs::Span span("epoch/build_sparse_gram");
        const SteadyClock::time_point start = SteadyClock::now();
        derived_->sparse_gram = linalg::gram_sparse_csr(routing_);
        derived_->sparse_gram_built = true;
        TME_CONTRACT_DBG_CHECK(check::csr_structure(
            derived_->sparse_gram, "epoch sparse Gram"));
        ++derived_->builds;
        record_build(seconds_since(start));
    }
    return derived_->sparse_gram;
}

bool RoutingEpoch::sparse_gram_built() const {
    std::shared_lock<std::shared_mutex> read(derived_->mutex);
    return derived_->sparse_gram_built;
}

const linalg::SparseMatrix& RoutingEpoch::routing_transpose() const {
    {
        std::shared_lock<std::shared_mutex> read(derived_->mutex);
        if (derived_->transpose_built) return derived_->transpose;
    }
    std::unique_lock<std::shared_mutex> write(derived_->mutex);
    if (!derived_->transpose_built) {
        obs::Span span("epoch/build_routing_transpose");
        const SteadyClock::time_point start = SteadyClock::now();
        derived_->transpose = linalg::transpose(routing_);
        derived_->transpose_built = true;
        TME_CONTRACT_DBG_CHECK(check::csr_structure(
            derived_->transpose, "epoch routing transpose"));
        record_build(seconds_since(start));
    }
    return derived_->transpose;
}

bool RoutingEpoch::routing_transpose_built() const {
    std::shared_lock<std::shared_mutex> read(derived_->mutex);
    return derived_->transpose_built;
}

const linalg::Matrix& RoutingEpoch::vardi_gram(double weight) const {
    // Force the Gram build (under its own critical section) before
    // taking the exclusive lock below — gram() grabs the same mutex.
    const linalg::Matrix& g1m = gram();
    {
        std::shared_lock<std::shared_mutex> read(derived_->mutex);
        const auto it = derived_->vardi_by_weight.find(weight);
        if (it != derived_->vardi_by_weight.end()) return it->second;
    }
    std::unique_lock<std::shared_mutex> write(derived_->mutex);
    // Re-check: another cold caller may have built while we waited for
    // the exclusive lock.
    const auto it = derived_->vardi_by_weight.find(weight);
    if (it != derived_->vardi_by_weight.end()) return it->second;
    obs::Span span("epoch/build_vardi_gram");
    const SteadyClock::time_point start = SteadyClock::now();
    const std::size_t pairs = g1m.rows();
    // Vardi's transformed Gram is inherently dense (it maps the already-
    // built dense Gram elementwise); built lazily at most once per
    // (epoch, weight), never on the per-window path.
    // lint: allow(dense-alloc)
    linalg::Matrix g(pairs, pairs, 0.0);
    for (std::size_t p = 0; p < pairs; ++p) {
        const double* __restrict src = g1m.row_data(p);
        double* __restrict dst = g.row_data(p);
        for (std::size_t q = 0; q < pairs; ++q) {
            const double g1 = src[q];
            // Structural zeros of G1 stay exact zeros; skip the writes.
            if (g1 != 0.0) dst[q] = g1 + weight * g1 * g1;
        }
    }
    TME_CONTRACT_DBG_CHECK(
        check::finite(g, "epoch Vardi transformed Gram"));
    ++derived_->builds;
    record_build(seconds_since(start));
    return derived_->vardi_by_weight.emplace(weight, std::move(g))
        .first->second;
}

const core::FanoutConstraints& RoutingEpoch::fanout_constraints(
    const topology::Topology& topo) const {
    if (topo.pair_count() != cols_) {
        throw std::invalid_argument(
            "RoutingEpoch::fanout_constraints: topology does not match "
            "the routing matrix");
    }
    {
        std::shared_lock<std::shared_mutex> read(derived_->mutex);
        if (derived_->fanout_built) return derived_->fanout;
    }
    std::unique_lock<std::shared_mutex> write(derived_->mutex);
    if (!derived_->fanout_built) {
        obs::Span span("epoch/build_fanout_constraints");
        const SteadyClock::time_point start = SteadyClock::now();
        derived_->fanout = core::FanoutConstraints::build(topo);
        derived_->fanout_built = true;
        TME_CONTRACT_DBG_CHECK(check::csr_structure(
            derived_->fanout.equality_sparse,
            "epoch fanout equality constraints"));
        ++derived_->builds;
        record_build(seconds_since(start));
    }
    return derived_->fanout;
}

std::shared_ptr<const core::ReducedFactor> RoutingEpoch::reduced_factor(
    const std::vector<std::size_t>& unknown, double tau) const {
    {
        std::shared_lock<std::shared_mutex> read(derived_->mutex);
        if (derived_->reduced != nullptr &&
            derived_->reduced->unknown == unknown &&
            derived_->reduced->regularization == tau) {
            return derived_->reduced;
        }
    }
    std::unique_lock<std::shared_mutex> write(derived_->mutex);
    if (derived_->reduced == nullptr ||
        derived_->reduced->unknown != unknown ||
        derived_->reduced->regularization != tau) {
        obs::Span span("epoch/build_reduced_factor");
        const SteadyClock::time_point start = SteadyClock::now();
        // Built from the sparse routing copy: bitwise what slicing the
        // dense Gram would give, without ever needing the dense Gram.
        derived_->reduced = std::make_shared<const core::ReducedFactor>(
            core::ReducedFactor::from_routing(routing_, unknown, tau));
        ++derived_->builds;
        record_build(seconds_since(start));
    }
    return derived_->reduced;
}

std::size_t RoutingEpoch::derived_builds() const {
    std::shared_lock<std::shared_mutex> read(derived_->mutex);
    return derived_->builds;
}

RoutingEpochCache::RoutingEpochCache(std::size_t capacity,
                                     Fingerprint fingerprint)
    : capacity_(capacity), fingerprint_(std::move(fingerprint)) {
    if (capacity_ == 0) {
        throw std::invalid_argument("RoutingEpochCache: zero capacity");
    }
    if (!fingerprint_) {
        fingerprint_ = [](const linalg::SparseMatrix& routing) {
            return core::routing_fingerprint(routing);
        };
    }
}

std::size_t RoutingEpochCache::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::shared_ptr<const RoutingEpoch> RoutingEpochCache::acquire_shared(
    const linalg::SparseMatrix& routing) {
    // The fingerprint is a pure function of the matrix content; compute
    // it outside the lock so concurrent engines only serialize on the
    // LRU bookkeeping (a miss now only copies the CSR arrays — the Gram
    // and all deeper derived data build lazily under the epoch's own
    // double-checked lock, still exactly once per epoch).
    const std::uint64_t fp = fingerprint_(routing);
    obs::Span span("cache/acquire");
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if ((*it)->fingerprint() != fp) continue;
        // A 64-bit fingerprint can collide; serving a colliding entry
        // would hand the wrong Gram to every solver.  Cheap structural
        // identity gates the hit; a mismatch falls through to a miss.
        if ((*it)->rows() != routing.rows() ||
            (*it)->cols() != routing.cols() ||
            (*it)->nonzeros() != routing.nonzeros()) {
            collisions_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        hits_.fetch_add(1, std::memory_order_relaxed);
        span.arg("hit", 1);
        entries_.splice(entries_.begin(), entries_, it);
        return entries_.front();
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    span.arg("hit", 0);
    entries_.push_front(std::make_shared<RoutingEpoch>(
        fp, ++next_serial_, routing, build_latency_));
    while (entries_.size() > capacity_) {
        entries_.pop_back();  // pinned holders keep the epoch alive
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    return entries_.front();
}

}  // namespace tme::engine
