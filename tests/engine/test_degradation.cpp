// Graceful degradation: solver deadlines surface as typed, flagged
// quality levels instead of hangs or silent garbage; corrupt
// measurements are repaired by the always-compiled ingest sanitizer;
// missing-data windows flow through every method flagged as gaps; and
// all of it is visible in EngineMetrics (summary + to_json) and the
// served EstimateSnapshot.  Everything here runs WITHOUT fault
// injection compiled in — the degradation machinery itself is
// unconditional.
#include "engine/fleet.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "serve/snapshot.hpp"
#include "telemetry/timeseries.hpp"

namespace tme::engine {
namespace {

scenario::Scenario short_scenario(std::size_t samples, unsigned seed = 1) {
    scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe, seed);
    if (sc.demands.size() > samples) {
        sc.demands.resize(samples);
        sc.loads.resize(samples);
    }
    return sc;
}

EngineConfig all_methods_config(std::size_t window_size) {
    EngineConfig config;
    config.window_size = window_size;
    config.methods = {Method::gravity, Method::kruithof, Method::entropy,
                      Method::bayesian, Method::vardi,   Method::fanout};
    config.min_series_window = 2;
    config.threads = 0;
    return config;
}

// record_run_quality is the single aggregation point both engines use;
// pin its counter/record/json behaviour for every quality level.
TEST(Degradation, RecordRunQualityCountersRecordsAndJson) {
    EngineMetrics metrics;
    metrics.methods[Method::kruithof];
    metrics.methods[Method::bayesian];

    MethodRun exact;
    exact.method = Method::kruithof;
    record_run_quality(metrics, exact, 1);

    MethodRun degraded;
    degraded.method = Method::kruithof;
    degraded.quality = EstimateQuality::degraded;
    degraded.solve_outcome = SolveOutcome::budget_exhausted;
    degraded.degradation_reason = "solve budget exhausted";
    record_run_quality(metrics, degraded, 2);

    MethodRun stale;
    stale.method = Method::bayesian;
    stale.quality = EstimateQuality::stale;
    stale.used_fallback = true;
    stale.fallback_method = Method::bayesian;
    stale.stale_age = 3;
    stale.degradation_reason = "whole chain failed";
    record_run_quality(metrics, stale, 5);

    MethodRun failed;
    failed.method = Method::bayesian;
    failed.quality = EstimateQuality::failed;
    record_run_quality(metrics, failed, 6);

    EXPECT_EQ(metrics.degraded_runs.load(), 1u);
    EXPECT_EQ(metrics.stale_runs.load(), 1u);
    EXPECT_EQ(metrics.failed_runs.load(), 1u);
    EXPECT_EQ(metrics.budget_exhausted_runs.load(), 1u);
    EXPECT_EQ(metrics.methods[Method::kruithof].degraded_runs.load(), 1u);
    EXPECT_EQ(metrics.methods[Method::bayesian].stale_runs.load(), 1u);
    EXPECT_EQ(metrics.methods[Method::bayesian].failed_runs.load(), 1u);
    EXPECT_EQ(metrics.methods[Method::bayesian].fallback_runs.load(), 1u);
    // Exact runs leave no record; the three non-exact runs do.
    ASSERT_EQ(metrics.degradation.size(), 3u);
    const std::vector<DegradationRecord> records =
        metrics.degradation.snapshot();
    EXPECT_EQ(records[0].window_end_sample, 2u);
    EXPECT_EQ(records[0].quality, EstimateQuality::degraded);
    EXPECT_EQ(records[1].quality, EstimateQuality::stale);
    EXPECT_EQ(records[1].stale_age, 3u);

    const obs::Json j = metrics.to_json();
    const obs::Json* degr = j.find("degradation");
    ASSERT_NE(degr, nullptr);
    EXPECT_EQ(degr->find("degraded_runs")->as_int(), 1);
    EXPECT_EQ(degr->find("stale_runs")->as_int(), 1);
    EXPECT_EQ(degr->find("failed_runs")->as_int(), 1);
    EXPECT_EQ(degr->find("budget_exhausted_runs")->as_int(), 1);
    const obs::Json* recs = degr->find("records");
    ASSERT_NE(recs, nullptr);
    ASSERT_EQ(recs->items().size(), 3u);
    EXPECT_EQ(recs->items()[0].find("quality")->as_string(), "degraded");
    EXPECT_EQ(recs->items()[0].find("reason")->as_string(),
              "solve budget exhausted");
    EXPECT_EQ(recs->items()[1].find("quality")->as_string(), "stale");
    EXPECT_EQ(recs->items()[1].find("stale_age")->as_int(), 3);
    EXPECT_EQ(recs->items()[1].find("fallback_method")->as_string(),
              "bayesian");
    EXPECT_EQ(recs->items()[2].find("quality")->as_string(), "failed");

    // The summary grows a degradation line — and per-method suffixes —
    // only when something degraded (the golden summary test pins the
    // healthy format).
    const std::string text = metrics.summary();
    EXPECT_NE(text.find("degradation:"), std::string::npos);
    EXPECT_NE(text.find("degraded=1"), std::string::npos);
    EngineMetrics healthy;
    healthy.methods[Method::gravity];
    EXPECT_EQ(healthy.summary().find("degradation:"), std::string::npos);
}

TEST(Degradation, DegradationLogBoundsAndCopies) {
    DegradationLog log;
    for (std::size_t k = 0; k < DegradationLog::kCapacity + 5; ++k) {
        DegradationRecord r;
        r.window_end_sample = k;
        log.push(std::move(r));
    }
    EXPECT_EQ(log.size(), DegradationLog::kCapacity);
    EXPECT_EQ(log.dropped(), 5u);
    DegradationLog copy(log);
    EXPECT_EQ(copy.size(), DegradationLog::kCapacity);
    EXPECT_EQ(copy.dropped(), 5u);
    EXPECT_EQ(copy.snapshot().front().window_end_sample, 0u);
}

// An (effectively) zero wall-clock deadline cuts every budgeted solve
// at its first poll: each method must return its best feasible iterate
// flagged degraded/budget_exhausted — never hang, throw, or serve
// garbage — and the flags must reach metrics JSON and the served
// snapshot.
TEST(Degradation, ZeroDeadlineDegradesEveryBudgetedMethod) {
    const scenario::Scenario sc = short_scenario(8);
    EngineConfig config = all_methods_config(4);
    config.method_options.solve_deadline_seconds = 1e-12;

    OnlineEngine engine(sc.topo, sc.routing, config);
    WindowResult last;
    for (std::size_t k = 0; k < sc.loads.size(); ++k) {
        last = engine.ingest(k, sc.loads[k]);
    }
    ASSERT_EQ(last.runs.size(), config.methods.size());
    for (const MethodRun& run : last.runs) {
        ASSERT_EQ(run.estimate.size(), sc.topo.pair_count())
            << method_name(run.method);
        for (double v : run.estimate) {
            ASSERT_TRUE(std::isfinite(v) && v >= 0.0)
                << method_name(run.method);
        }
        if (run.method == Method::gravity) {
            EXPECT_EQ(run.quality, EstimateQuality::exact);
        } else {
            EXPECT_EQ(run.quality, EstimateQuality::degraded)
                << method_name(run.method);
            EXPECT_EQ(run.solve_outcome, SolveOutcome::budget_exhausted)
                << method_name(run.method);
            EXPECT_FALSE(run.used_fallback);
            EXPECT_EQ(run.degradation_reason, "solve budget exhausted");
        }
    }

    const EngineMetrics& metrics = engine.metrics();
    const std::size_t budgeted = config.methods.size() - 1;  // not gravity
    EXPECT_EQ(metrics.degraded_runs.load(),
              metrics.budget_exhausted_runs.load());
    EXPECT_GE(metrics.degraded_runs.load(),
              budgeted);  // every window degrades all budgeted methods
    EXPECT_EQ(metrics.stale_runs.load(), 0u);
    EXPECT_EQ(metrics.failed_runs.load(), 0u);
    EXPECT_GT(metrics.degradation.size(), 0u);

    // Served snapshot carries the quality flags, names included.
    const serve::EstimateSnapshot snap =
        serve::EstimateSnapshot::from_window(last);
    const serve::MethodEstimate* bayes = snap.find(Method::bayesian);
    ASSERT_NE(bayes, nullptr);
    EXPECT_EQ(bayes->quality, EstimateQuality::degraded);
    const obs::Json j = snap.to_json();
    const obs::Json* methods = j.find("methods");
    ASSERT_NE(methods, nullptr);
    EXPECT_EQ(methods->find("bayesian")->find("quality")->as_string(),
              "degraded");
    EXPECT_EQ(methods->find("gravity")->find("quality")->as_string(),
              "exact");
}

// Non-finite / negative loads are repaired by the always-compiled
// ingest sanitizer: zeroed, flagged as a gap, counted — and the solvers
// never see them (estimates stay finite and nonnegative).
TEST(Degradation, IngestSanitizerRepairsCorruptLoads) {
    const scenario::Scenario sc = short_scenario(6);
    OnlineEngine engine(sc.topo, sc.routing, all_methods_config(3));
    for (std::size_t k = 0; k < sc.loads.size(); ++k) {
        linalg::Vector loads = sc.loads[k];
        if (k == 2) {
            loads[0] = std::numeric_limits<double>::quiet_NaN();
            loads[1] = -5.0;
        }
        const WindowResult result = engine.ingest(k, std::move(loads));
        for (const MethodRun& run : result.runs) {
            for (double v : run.estimate) {
                ASSERT_TRUE(std::isfinite(v) && v >= 0.0)
                    << "sample " << k << " " << method_name(run.method);
            }
        }
    }
    EXPECT_EQ(engine.metrics().corrupt_samples.load(), 1u);
    EXPECT_EQ(engine.metrics().gap_samples.load(), 1u);
    const obs::Json j = engine.metrics().to_json();
    EXPECT_EQ(j.find("degradation")->find("corrupt_samples")->as_int(), 1);
}

// Missing-data windows (lost polls -> interpolated samples) flow
// through all methods as flagged gaps — not as degradation, and with
// MRE scoring untouched (mre_skipped_runs counts only all-quiet truth
// windows, which interpolation never creates here).
TEST(Degradation, MissingDataWindowsRunAllMethodsFlaggedAsGaps) {
    const scenario::Scenario sc = short_scenario(5);
    const std::size_t links = sc.topo.link_count();
    telemetry::TimeSeriesStore store(links, sc.loads.size());
    for (std::size_t k = 0; k < sc.loads.size(); ++k) {
        for (std::size_t l = 0; l < links; ++l) {
            if (k == 2 && l < 3) {
                store.record_loss(l, k);  // lost polls at interval 2
            } else {
                store.record(l, k, sc.loads[k][l]);
            }
        }
    }
    ASSERT_GT(store.missing_count(2), 0u);

    OnlineEngine engine(sc.topo, sc.routing, all_methods_config(3));
    engine.set_truth([&](std::size_t s) { return sc.demands[s]; });
    for (std::size_t k = 0; k < store.intervals(); ++k) {
        const WindowResult result = engine.ingest_interval(store, k);
        for (const MethodRun& run : result.runs) {
            EXPECT_EQ(run.quality, EstimateQuality::exact)
                << "interval " << k << " " << method_name(run.method);
            ASSERT_EQ(run.estimate.size(), sc.topo.pair_count());
            for (double v : run.estimate) {
                ASSERT_TRUE(std::isfinite(v) && v >= 0.0);
            }
            EXPECT_FALSE(std::isnan(run.mre))
                << "scored window lost its MRE at interval " << k;
        }
    }
    const EngineMetrics& metrics = engine.metrics();
    EXPECT_EQ(metrics.gap_samples.load(), 1u);  // exactly interval 2
    EXPECT_EQ(metrics.corrupt_samples.load(), 0u);
    EXPECT_EQ(metrics.mre_skipped_runs.load(), 0u);
    EXPECT_EQ(metrics.degraded_runs.load(), 0u);
    EXPECT_EQ(metrics.stale_runs.load(), 0u);
    EXPECT_EQ(metrics.failed_runs.load(), 0u);
}

// The pipelined engine shares the guarded executor: a zero deadline
// degrades its budgeted methods identically (per-lineage last-good
// slots, same flags).
TEST(Degradation, PipelinedEngineFlagsBudgetExhaustionToo) {
    const scenario::Scenario sc = short_scenario(6);
    EngineConfig config = all_methods_config(3);
    config.method_options.solve_deadline_seconds = 1e-12;
    PipelineOptions popts;
    popts.depth = 2;
    PipelinedEngine engine(sc.topo, sc.routing, config, popts);
    for (std::size_t k = 0; k < sc.loads.size(); ++k) {
        engine.submit(k, sc.loads[k]);
    }
    const std::vector<WindowResult> results = engine.finish();
    ASSERT_FALSE(results.empty());
    for (const MethodRun& run : results.back().runs) {
        if (run.method == Method::gravity) {
            EXPECT_EQ(run.quality, EstimateQuality::exact);
        } else {
            EXPECT_EQ(run.quality, EstimateQuality::degraded)
                << method_name(run.method);
        }
    }
    EXPECT_GT(engine.metrics().degraded_runs.load(), 0u);
    EXPECT_EQ(engine.metrics().degraded_runs.load(),
              engine.metrics().budget_exhausted_runs.load());
}

}  // namespace
}  // namespace tme::engine
