// Property tests pinning the blocked / sparse-aware kernels to their
// naive references: bit-for-bit where the accumulation order is
// preserved (gemm, gram, sparse Gram, the QP's sparse-E path), and to
// tight tolerances where it is not (blocked Cholesky).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "linalg/nnls.hpp"
#include "linalg/qp.hpp"
#include "linalg/sparse.hpp"

namespace tme::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols,
                     std::mt19937_64& rng, double density = 1.0) {
    Matrix m(rows, cols, 0.0);
    std::uniform_real_distribution<double> value(-2.0, 2.0);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < cols; ++j) {
            if (coin(rng) < density) m(i, j) = value(rng);
        }
    }
    return m;
}

// The seed library's plain triple-loop kernels, kept verbatim as the
// bitwise references.
Matrix gemm_naive(const Matrix& a, const Matrix& b) {
    Matrix c(a.rows(), b.cols(), 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        const double* arow = a.row_data(i);
        double* crow = c.row_data(i);
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const double aik = arow[k];
            if (aik == 0.0) continue;
            const double* brow = b.row_data(k);
            for (std::size_t j = 0; j < b.cols(); ++j) {
                crow[j] += aik * brow[j];
            }
        }
    }
    return c;
}

Matrix gram_naive(const Matrix& a) {
    const std::size_t n = a.cols();
    Matrix g(n, n, 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        const double* row = a.row_data(i);
        for (std::size_t p = 0; p < n; ++p) {
            const double rp = row[p];
            if (rp == 0.0) continue;
            double* grow = g.row_data(p);
            for (std::size_t q = p; q < n; ++q) grow[q] += rp * row[q];
        }
    }
    for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t q = 0; q < p; ++q) g(p, q) = g(q, p);
    }
    return g;
}

TEST(BlockedKernels, GemmBitwiseMatchesNaive) {
    std::mt19937_64 rng(42);
    // Odd shapes straddle every tile boundary of the blocked kernel,
    // including the 512-double column tile (the 1100-column shapes run
    // the j0 loop more than once, with a ragged final tile).
    const std::size_t shapes[][3] = {{1, 1, 1},    {2, 3, 4},
                                     {5, 7, 3},    {16, 16, 16},
                                     {17, 19, 23}, {33, 64, 65},
                                     {70, 41, 129}, {9, 30, 512},
                                     {10, 33, 1100}};
    for (const auto& s : shapes) {
        const Matrix a = random_matrix(s[0], s[1], rng, 0.8);
        const Matrix b = random_matrix(s[1], s[2], rng, 0.8);
        EXPECT_EQ(gemm(a, b), gemm_naive(a, b))
            << s[0] << "x" << s[1] << "x" << s[2];
    }
}

TEST(BlockedKernels, GramBitwiseMatchesNaive) {
    std::mt19937_64 rng(43);
    for (const std::size_t rows : {1ul, 3ul, 8ul, 21ul, 50ul}) {
        for (const std::size_t cols : {1ul, 2ul, 17ul, 64ul, 130ul}) {
            const Matrix a = random_matrix(rows, cols, rng, 0.6);
            EXPECT_EQ(gram(a), gram_naive(a)) << rows << "x" << cols;
        }
    }
    // Past the 512-double column tile: multi-tile rows with a ragged
    // final tile, exercising the diagonal clamp across tile seams.
    const Matrix wide = random_matrix(12, 1100, rng, 0.3);
    EXPECT_EQ(gram(wide), gram_naive(wide));
}

// gram_sparse(A) == gram(densify(A)) exactly: same per-element term
// order, and the skipped terms are exact zeros.
TEST(BlockedKernels, SparseGramExactlyMatchesDense) {
    std::mt19937_64 rng(44);
    for (const double density : {0.02, 0.1, 0.5}) {
        for (const std::size_t rows : {1ul, 7ul, 40ul, 120ul}) {
            const std::size_t cols = rows + 13;
            const Matrix dense = random_matrix(rows, cols, rng, density);
            const SparseMatrix sparse = SparseMatrix::from_dense(dense);
            EXPECT_EQ(gram_sparse(sparse), gram(dense))
                << rows << "x" << cols << " density " << density;
        }
    }
}

TEST(BlockedKernels, CsrGramExactlyMatchesDense) {
    std::mt19937_64 rng(45);
    for (const double density : {0.05, 0.3}) {
        for (const std::size_t rows : {1ul, 9ul, 33ul, 90ul}) {
            const std::size_t cols = rows + 5;
            const Matrix dense = random_matrix(rows, cols, rng, density);
            const SparseMatrix sparse = SparseMatrix::from_dense(dense);
            const SparseMatrix g = gram_sparse_csr(sparse);
            EXPECT_EQ(g.rows(), cols);
            EXPECT_EQ(g.cols(), cols);
            EXPECT_EQ(g.to_dense(), gram(dense))
                << rows << "x" << cols << " density " << density;
        }
    }
}

TEST(BlockedKernels, FromCsrValidates) {
    // Well-formed round trip.
    const SparseMatrix ok = SparseMatrix::from_csr(
        2, 3, {0, 2, 3}, {0, 2, 1}, {1.0, 2.0, 3.0});
    EXPECT_EQ(ok.nonzeros(), 3u);
    EXPECT_EQ(ok.at(0, 2), 2.0);
    EXPECT_EQ(ok.at(1, 1), 3.0);
    // Shape / monotonicity / sortedness violations.
    EXPECT_THROW(SparseMatrix::from_csr(2, 3, {0, 2}, {0, 2}, {1.0, 2.0}),
                 std::invalid_argument);
    EXPECT_THROW(
        SparseMatrix::from_csr(2, 3, {0, 2, 3}, {2, 0, 1}, {1.0, 2.0, 3.0}),
        std::invalid_argument);
    EXPECT_THROW(
        SparseMatrix::from_csr(2, 3, {0, 2, 3}, {0, 3, 1}, {1.0, 2.0, 3.0}),
        std::invalid_argument);
}

TEST(BlockedKernels, TransposedMatchesElementwise) {
    std::mt19937_64 rng(46);
    const Matrix a = random_matrix(37, 91, rng);
    const Matrix t = a.transposed();
    ASSERT_EQ(t.rows(), a.cols());
    ASSERT_EQ(t.cols(), a.rows());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) {
            EXPECT_EQ(t(j, i), a(i, j));
        }
    }
}

Matrix random_spd(std::size_t n, std::mt19937_64& rng) {
    const Matrix b = random_matrix(n, n, rng);
    Matrix a = gram(b);
    for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
    return a;
}

// Blocked Cholesky regroups the update sums, so it is not bitwise —
// but it must stay within 1e-12 (relative) of the unblocked factor on
// every size, especially ones that straddle the 48-column panel.
TEST(BlockedKernels, CholeskyBlockedMatchesUnblocked) {
    std::mt19937_64 rng(47);
    for (const std::size_t n : {1ul, 2ul, 5ul, 16ul, 47ul, 48ul, 49ul,
                                 96ul, 97ul, 130ul, 191ul, 256ul}) {
        const Matrix spd = random_spd(n, rng);
        const Matrix lu = cholesky_factor_unblocked(spd);
        const Matrix lb = cholesky_factor_blocked(spd);
        ASSERT_FALSE(lu.empty());
        ASSERT_FALSE(lb.empty());
        const double scale = std::max(1.0, lu.max_abs());
        EXPECT_LE(max_abs_diff(lu, lb), 1e-12 * scale) << "n=" << n;
    }
}

TEST(BlockedKernels, CholeskyBlockedDetectsIndefinite) {
    Matrix notspd(60, 60, 0.0);
    for (std::size_t i = 0; i < 60; ++i) notspd(i, i) = 1.0;
    notspd(40, 40) = -1.0;
    EXPECT_TRUE(cholesky_factor_blocked(notspd).empty());
    EXPECT_TRUE(cholesky_factor_unblocked(notspd).empty());
}

// The multi-RHS solve was rewritten to advance all columns together;
// it must match the per-column solve exactly.
TEST(BlockedKernels, CholeskyMatrixSolveMatchesColumnwise) {
    std::mt19937_64 rng(48);
    const Matrix spd = random_spd(33, rng);
    const Cholesky chol(spd);
    const Matrix b = random_matrix(33, 7, rng);
    const Matrix x = chol.solve(b);
    for (std::size_t j = 0; j < b.cols(); ++j) {
        const Vector xj = chol.solve(b.col(j));
        for (std::size_t i = 0; i < b.rows(); ++i) {
            EXPECT_EQ(x(i, j), xj[i]) << "col " << j << " row " << i;
        }
    }
}

// Virtual diagonal shift == materialized shifted copy, bit for bit:
// the same two operands are added at every diagonal read.
TEST(BlockedKernels, NnlsDiagonalShiftMatchesMaterialized) {
    std::mt19937_64 rng(49);
    const Matrix a = random_matrix(40, 25, rng, 0.4);
    const Matrix g = gram(a);
    const double shift = 0.37;
    Matrix g_shifted = g;
    for (std::size_t i = 0; i < g.rows(); ++i) g_shifted(i, i) += shift;
    Vector atb(25);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (double& v : atb) v = dist(rng);

    const NnlsResult materialized = nnls_gram(g_shifted, atb);
    NnlsOptions opts;
    opts.gram_diagonal_shift = shift;
    const NnlsResult virtual_shift = nnls_gram(g, atb, 0.0, opts);
    ASSERT_EQ(materialized.x.size(), virtual_shift.x.size());
    for (std::size_t i = 0; i < materialized.x.size(); ++i) {
        EXPECT_EQ(materialized.x[i], virtual_shift.x[i]) << i;
    }
}

// Sparse-operator dual refresh on a strictly convex (ridge) system must
// land on the same unique minimizer as the dense refresh.
TEST(BlockedKernels, NnlsSparseOperatorMatchesDenseRefresh) {
    std::mt19937_64 rng(50);
    const Matrix dense = random_matrix(60, 35, rng, 0.15);
    const SparseMatrix sparse = SparseMatrix::from_dense(dense);
    const Matrix g = gram_sparse(sparse);
    const double ridge = 1e-3;
    Matrix g_shifted = g;
    for (std::size_t i = 0; i < g.rows(); ++i) g_shifted(i, i) += ridge;
    Vector x_true(35);
    std::uniform_real_distribution<double> pos(0.0, 1.0);
    for (double& v : x_true) v = pos(rng);
    const Vector atb = sparse.multiply_transpose(sparse.multiply(x_true));

    const NnlsResult dense_refresh = nnls_gram(g_shifted, atb);
    NnlsOptions opts;
    opts.gram_operator = &sparse;
    opts.gram_diagonal_shift = ridge;
    const NnlsResult sparse_refresh = nnls_gram(g, atb, 0.0, opts);
    ASSERT_EQ(dense_refresh.x.size(), sparse_refresh.x.size());
    double scale = 1.0;
    for (double v : dense_refresh.x) scale = std::max(scale, std::abs(v));
    for (std::size_t i = 0; i < dense_refresh.x.size(); ++i) {
        EXPECT_NEAR(dense_refresh.x[i], sparse_refresh.x[i], 1e-9 * scale)
            << i;
    }
}

TEST(BlockedKernels, NnlsGramRejectsBadOperatorAndShift) {
    const Matrix g(3, 3, 0.0);
    const Vector atb{1.0, 1.0, 1.0};
    NnlsOptions opts;
    const SparseMatrix wrong = SparseMatrix::from_dense(Matrix(2, 2, 1.0));
    opts.gram_operator = &wrong;
    EXPECT_THROW(nnls_gram(g, atb, 0.0, opts), std::invalid_argument);
    NnlsOptions neg;
    neg.gram_diagonal_shift = -1.0;
    EXPECT_THROW(nnls_gram(g, atb, 0.0, neg), std::invalid_argument);
}

// Fanout-family QP (one nonzero per column of E): the sparse-E path
// must be bit-for-bit the dense path.
TEST(BlockedKernels, QpEqualityOperatorBitwiseMatchesDense) {
    std::mt19937_64 rng(51);
    const std::size_t n = 18;
    const std::size_t m = 4;
    const Matrix h = random_spd(n, rng);
    Vector f(n);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (double& v : f) v = dist(rng);
    Matrix e(m, n, 0.0);
    std::vector<Triplet> trips;
    for (std::size_t j = 0; j < n; ++j) {
        const std::size_t r = j % m;
        e(r, j) = 1.0;
        trips.push_back({r, j, 1.0});
    }
    const SparseMatrix e_sparse(m, n, std::move(trips));
    const Vector d(m, 1.0);

    const EqQpNonnegResult dense_path = solve_eq_qp_nonneg(h, f, e, d);
    EqQpNonnegOptions opts;
    opts.equality_operator = &e_sparse;
    const EqQpNonnegResult sparse_path =
        solve_eq_qp_nonneg(h, f, e, d, opts);
    ASSERT_EQ(dense_path.x.size(), sparse_path.x.size());
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(dense_path.x[i], sparse_path.x[i]) << i;
    }
    EXPECT_EQ(dense_path.active, sparse_path.active);
    EXPECT_EQ(dense_path.iterations, sparse_path.iterations);
    EXPECT_EQ(dense_path.equality_violation,
              sparse_path.equality_violation);

    // Warm-started runs must agree as well (the seed-repair sweeps use
    // the operator too).
    EqQpNonnegOptions warm_dense;
    warm_dense.warm_start = &dense_path.x;
    EqQpNonnegOptions warm_sparse;
    warm_sparse.warm_start = &dense_path.x;
    warm_sparse.equality_operator = &e_sparse;
    const EqQpNonnegResult wd = solve_eq_qp_nonneg(h, f, e, d, warm_dense);
    const EqQpNonnegResult ws = solve_eq_qp_nonneg(h, f, e, d, warm_sparse);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(wd.x[i], ws.x[i]) << i;
    EXPECT_EQ(wd.warm_accepted, ws.warm_accepted);
}

TEST(BlockedKernels, QpRejectsMismatchedOperator) {
    const Matrix h = Matrix::identity(4);
    const Vector f(4, 1.0);
    const Matrix e(1, 4, 1.0);
    const Vector d(1, 1.0);
    const SparseMatrix wrong = SparseMatrix::from_dense(Matrix(2, 4, 1.0));
    EqQpNonnegOptions opts;
    opts.equality_operator = &wrong;
    EXPECT_THROW(solve_eq_qp_nonneg(h, f, e, d, opts),
                 std::invalid_argument);
}

}  // namespace
}  // namespace tme::linalg
