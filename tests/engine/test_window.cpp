#include "engine/window.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/test_helpers.hpp"
#include "linalg/stats.hpp"

namespace tme::engine {
namespace {

using core::testing::SmallNetwork;
using core::testing::tiny_network;

std::vector<linalg::Vector> random_loads(const SmallNetwork& net,
                                         std::size_t count, unsigned seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(0.2, 3.0);
    std::vector<linalg::Vector> loads;
    for (std::size_t k = 0; k < count; ++k) {
        linalg::Vector s(net.topo.pair_count());
        for (double& v : s) v = dist(rng);
        loads.push_back(net.routing.multiply(s));
    }
    return loads;
}

TEST(SlidingWindow, RingSemantics) {
    const SmallNetwork net = tiny_network();
    SlidingWindow window(&net.topo, &net.routing, 3);
    EXPECT_EQ(window.capacity(), 3u);
    EXPECT_TRUE(window.empty());
    EXPECT_THROW(window.latest(), std::logic_error);
    EXPECT_THROW(window.first_sample(), std::logic_error);

    const std::vector<linalg::Vector> loads = random_loads(net, 5, 7);
    window.push(10, loads[0]);
    EXPECT_EQ(window.size(), 1u);
    EXPECT_EQ(window.first_sample(), 10u);
    EXPECT_EQ(window.last_sample(), 10u);
    window.push(11, loads[1]);
    window.push(12, loads[2]);
    EXPECT_TRUE(window.full());

    // Pushing past capacity evicts the oldest sample.
    window.push(13, loads[3]);
    EXPECT_EQ(window.size(), 3u);
    EXPECT_EQ(window.first_sample(), 11u);
    EXPECT_EQ(window.last_sample(), 13u);
    EXPECT_EQ(window.series().loads.front(), loads[1]);
    EXPECT_EQ(window.latest(), loads[3]);
    EXPECT_EQ(window.total_pushed(), 4u);

    // Sample indices must be strictly increasing.
    EXPECT_THROW(window.push(13, loads[4]), std::invalid_argument);
    EXPECT_THROW(window.push(5, loads[4]), std::invalid_argument);

    // Wrong load dimension is rejected.
    EXPECT_THROW(window.push(14, linalg::Vector(3, 1.0)),
                 std::invalid_argument);
}

TEST(SlidingWindow, GapBookkeeping) {
    const SmallNetwork net = tiny_network();
    SlidingWindow window(&net.topo, &net.routing, 4);
    const std::vector<linalg::Vector> loads = random_loads(net, 3, 11);
    window.push(0, loads[0], false);
    window.push(1, loads[1], true);
    window.push(2, loads[2], true);
    EXPECT_EQ(window.gap_count(), 2u);
    EXPECT_EQ(window.total_pushed(), 3u);
}

TEST(SlidingWindow, IncrementalAggregatesMatchRecomputation) {
    const SmallNetwork net = tiny_network();
    const std::size_t capacity = 4;
    SlidingWindow window(&net.topo, &net.routing, capacity);
    const std::vector<linalg::Vector> loads = random_loads(net, 12, 3);

    for (std::size_t k = 0; k < loads.size(); ++k) {
        window.push(k, loads[k]);
        // Recompute every aggregate from the current window content and
        // compare with the incrementally maintained versions.
        const std::vector<linalg::Vector>& in_window =
            window.series().loads;
        const linalg::Vector mean = linalg::sample_mean(in_window);
        const linalg::Vector inc_mean = window.mean_loads();
        for (std::size_t l = 0; l < mean.size(); ++l) {
            EXPECT_NEAR(inc_mean[l], mean[l], 1e-12);
        }
        const linalg::Matrix cov = linalg::sample_covariance(in_window);
        const linalg::Matrix inc_cov = window.covariance();
        EXPECT_LT(linalg::max_abs_diff(cov, inc_cov), 1e-12);

        const std::size_t nodes = net.topo.pop_count();
        linalg::Matrix source_outer(nodes, nodes, 0.0);
        linalg::Vector weighted_rhs(net.topo.pair_count(), 0.0);
        for (const linalg::Vector& t : in_window) {
            linalg::Vector te(nodes);
            for (std::size_t n = 0; n < nodes; ++n) {
                te[n] = t[net.topo.ingress_link(n)];
            }
            for (std::size_t n = 0; n < nodes; ++n) {
                for (std::size_t m = 0; m < nodes; ++m) {
                    source_outer(n, m) += te[n] * te[m];
                }
            }
            const linalg::Vector rt = net.routing.multiply_transpose(t);
            for (std::size_t p = 0; p < weighted_rhs.size(); ++p) {
                weighted_rhs[p] +=
                    te[net.topo.pair_nodes(p).first] * rt[p];
            }
        }
        EXPECT_LT(linalg::max_abs_diff(source_outer, window.source_outer()),
                  1e-12);
        for (std::size_t p = 0; p < weighted_rhs.size(); ++p) {
            EXPECT_NEAR(window.weighted_rhs()[p], weighted_rhs[p], 1e-12);
        }
    }
}

TEST(SlidingWindow, ResetFlushesAndRebinds) {
    const SmallNetwork net = tiny_network();
    SlidingWindow window(&net.topo, &net.routing, 3);
    const std::vector<linalg::Vector> loads = random_loads(net, 3, 5);
    for (std::size_t k = 0; k < loads.size(); ++k) window.push(k, loads[k]);
    EXPECT_TRUE(window.full());

    const linalg::SparseMatrix other = net.routing;  // same content, new object
    window.reset(&other);
    EXPECT_TRUE(window.empty());
    EXPECT_EQ(window.series().routing, &other);
    // Aggregates restart from zero.
    EXPECT_EQ(window.source_outer().max_abs(), 0.0);
    // Lifetime counters survive.
    EXPECT_EQ(window.total_pushed(), 3u);

    // Sample numbering may restart after a reset on a fresh window.
    window.push(0, loads[0]);
    EXPECT_EQ(window.size(), 1u);
}

TEST(SlidingWindow, MomentTrackingOptional) {
    const SmallNetwork net = tiny_network();
    SlidingWindow window(&net.topo, &net.routing, 3,
                         /*track_load_moments=*/false);
    const std::vector<linalg::Vector> loads = random_loads(net, 2, 17);
    window.push(0, loads[0]);
    window.push(1, loads[1]);
    // Covariance is unavailable, everything else still works.
    EXPECT_THROW(window.covariance(), std::logic_error);
    EXPECT_EQ(window.mean_loads().size(), net.routing.rows());
    EXPECT_GT(window.source_outer().max_abs(), 0.0);
}

TEST(SlidingWindow, RebindRoutingKeepsContent) {
    const SmallNetwork net = tiny_network();
    SlidingWindow window(&net.topo, &net.routing, 3);
    const std::vector<linalg::Vector> loads = random_loads(net, 2, 19);
    window.push(0, loads[0]);
    window.push(1, loads[1]);

    const linalg::SparseMatrix copy = net.routing;
    window.rebind_routing(&copy);
    EXPECT_EQ(window.series().routing, &copy);
    EXPECT_EQ(window.size(), 2u);  // nothing flushed

    const linalg::SparseMatrix wrong(3, 4, {});
    EXPECT_THROW(window.rebind_routing(&wrong), std::invalid_argument);
    EXPECT_THROW(window.rebind_routing(nullptr), std::invalid_argument);
}

TEST(SlidingWindow, CovarianceStableUnderLargeLoadLevels) {
    // Mbps-scale absolute levels with small fluctuations: the naive
    // E[tt'] - mm' formula loses ~10 digits to cancellation; the
    // anchored sums must stay accurate.
    const SmallNetwork net = tiny_network();
    SlidingWindow window(&net.topo, &net.routing, 6);
    std::vector<linalg::Vector> shifted = random_loads(net, 6, 23);
    for (linalg::Vector& t : shifted) {
        for (double& v : t) v += 1e8;
    }
    for (std::size_t k = 0; k < shifted.size(); ++k) {
        window.push(k, shifted[k]);
    }
    const linalg::Matrix direct = linalg::sample_covariance(shifted);
    const linalg::Matrix incremental = window.covariance();
    // Covariance entries are O(1); demand agreement far below them.
    EXPECT_LT(linalg::max_abs_diff(direct, incremental), 1e-6);
}

TEST(SlidingWindow, ConstructorValidation) {
    const SmallNetwork net = tiny_network();
    EXPECT_THROW(SlidingWindow(nullptr, &net.routing, 3),
                 std::invalid_argument);
    EXPECT_THROW(SlidingWindow(&net.topo, nullptr, 3),
                 std::invalid_argument);
    EXPECT_THROW(SlidingWindow(&net.topo, &net.routing, 0),
                 std::invalid_argument);
}

}  // namespace
}  // namespace tme::engine
