#include "core/route_change.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "test_helpers.hpp"

namespace tme::core {
namespace {

using testing::SmallNetwork;
using testing::europe_network;
using testing::tiny_network;

std::vector<RoutingObservation> observe(
    const SmallNetwork& net,
    const std::vector<const linalg::SparseMatrix*>& routings) {
    std::vector<RoutingObservation> obs;
    for (const linalg::SparseMatrix* r : routings) {
        obs.push_back({r, r->multiply(net.truth)});
    }
    return obs;
}

TEST(RouteChange, SingleObservationMatchesPlainNnls) {
    const SmallNetwork net = tiny_network(2);
    const auto obs = observe(net, {&net.routing});
    const RouteChangeResult r = route_change_estimate(obs);
    EXPECT_LE(r.residual_norm, 1e-6);
    EXPECT_LE(r.stacked_rank, net.truth.size());
}

TEST(RouteChange, AdditionalConfigurationsIncreaseRank) {
    const SmallNetwork net = europe_network(3);
    const linalg::SparseMatrix alt1 =
        perturbed_routing(net.topo, 0.6, 11);
    const linalg::SparseMatrix alt2 =
        perturbed_routing(net.topo, 0.6, 22);

    const RouteChangeResult one =
        route_change_estimate(observe(net, {&net.routing}));
    const RouteChangeResult three = route_change_estimate(
        observe(net, {&net.routing, &alt1, &alt2}));
    EXPECT_GT(three.stacked_rank, one.stacked_rank);
}

TEST(RouteChange, EnoughConfigurationsRecoverDemandsExactly) {
    // With several independent routings the stacked system pins the
    // demands without any prior — the Nucci et al. premise.
    const SmallNetwork net = europe_network(4);
    std::vector<linalg::SparseMatrix> alts;
    for (unsigned seed : {11u, 22u, 33u, 44u, 55u, 66u}) {
        alts.push_back(perturbed_routing(net.topo, 0.8, seed));
    }
    std::vector<const linalg::SparseMatrix*> routings{&net.routing};
    for (const auto& r : alts) routings.push_back(&r);
    const RouteChangeResult res =
        route_change_estimate(observe(net, routings));
    if (res.stacked_rank < net.truth.size()) {
        GTEST_SKIP() << "perturbations insufficient for full rank";
    }
    EXPECT_LT(mre_at_coverage(net.truth, res.s, 0.9), 1e-4);
}

TEST(RouteChange, PerturbedRoutingDiffersButStaysValid) {
    const SmallNetwork net = europe_network(5);
    const linalg::SparseMatrix alt = perturbed_routing(net.topo, 0.9, 7);
    EXPECT_EQ(alt.rows(), net.routing.rows());
    EXPECT_EQ(alt.cols(), net.routing.cols());
    // Same deterministic inputs -> same perturbation.
    const linalg::SparseMatrix alt_again =
        perturbed_routing(net.topo, 0.9, 7);
    EXPECT_EQ(alt.nonzeros(), alt_again.nonzeros());
    // Different seed -> (almost surely) different paths somewhere.
    const linalg::SparseMatrix other = perturbed_routing(net.topo, 0.9, 8);
    bool differs = other.nonzeros() != alt.nonzeros();
    if (!differs) {
        for (std::size_t p = 0; p < alt.cols() && !differs; ++p) {
            differs = alt.column_nonzeros(p) != other.column_nonzeros(p);
        }
    }
    EXPECT_TRUE(differs);
}

TEST(RouteChange, Validation) {
    EXPECT_THROW(route_change_estimate({}), std::invalid_argument);
    const SmallNetwork net = tiny_network();
    RoutingObservation bad{&net.routing, linalg::Vector(3, 0.0)};
    EXPECT_THROW(route_change_estimate({bad}), std::invalid_argument);
    EXPECT_THROW(perturbed_routing(net.topo, -1.0, 1),
                 std::invalid_argument);
}

}  // namespace
}  // namespace tme::core
