#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

namespace tme::obs {
namespace {

struct TraceRecord {
    const char* name = nullptr;
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
    const char* arg_key[2] = {nullptr, nullptr};
    long long arg_value[2] = {0, 0};
};

struct ThreadBuffer {
    // 16K records × 64B ≈ 1 MiB per traced thread; enough for every
    // bench/test workload in-repo (a 200-sample 6-method replay emits
    // ~3K spans) while bounding memory on long-lived fleets.
    static constexpr std::uint64_t kCapacity = 1u << 14;

    explicit ThreadBuffer(int tid_) : tid(tid_), records(kCapacity) {}

    void push(const TraceRecord& r) {
        const std::uint64_t h = head.load(std::memory_order_relaxed);
        records[h % kCapacity] = r;
        // Release so a quiescent drainer that reads head sees the
        // record bytes; concurrent drains are documented unsupported.
        head.store(h + 1, std::memory_order_release);
    }

    const int tid;
    std::vector<TraceRecord> records;
    std::atomic<std::uint64_t> head{0};
};

std::chrono::steady_clock::time_point g_base =
    std::chrono::steady_clock::now();

}  // namespace

struct Tracer::Impl {
    mutable std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    int next_tid = 1;

    std::shared_ptr<ThreadBuffer> register_thread() {
        std::lock_guard<std::mutex> lock(mutex);
        auto buf = std::make_shared<ThreadBuffer>(next_tid++);
        buffers.push_back(buf);
        return buf;
    }
};

namespace {

ThreadBuffer& local_buffer() {
    // The shared_ptr keeps the ring alive in the registry after the
    // thread exits, so post-join drains still see its spans.
    thread_local std::shared_ptr<ThreadBuffer> buf =
        Tracer::instance().impl().register_thread();
    return *buf;
}

}  // namespace

Tracer::Tracer() : impl_(new Impl) {
    (void)g_base;  // force base-time init before any span
}

Tracer& Tracer::instance() {
    static Tracer tracer;
    return tracer;
}

void Tracer::set_enabled(bool on) {
#if TME_TRACING
    detail::g_trace_enabled.store(on, std::memory_order_relaxed);
#else
    (void)on;
#endif
}

std::uint64_t Tracer::now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - g_base)
            .count());
}

std::uint64_t Tracer::recorded() const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    std::uint64_t total = 0;
    for (const auto& buf : impl_->buffers) {
        total += buf->head.load(std::memory_order_acquire);
    }
    return total;
}

std::uint64_t Tracer::dropped() const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    std::uint64_t total = 0;
    for (const auto& buf : impl_->buffers) {
        const std::uint64_t h = buf->head.load(std::memory_order_acquire);
        if (h > ThreadBuffer::kCapacity) {
            total += h - ThreadBuffer::kCapacity;
        }
    }
    return total;
}

void Tracer::clear() {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (const auto& buf : impl_->buffers) {
        buf->head.store(0, std::memory_order_release);
    }
}

Json Tracer::chrome_trace() const {
    Json events = Json::array();
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (const auto& buf : impl_->buffers) {
        const std::uint64_t head = buf->head.load(std::memory_order_acquire);
        const std::uint64_t n = std::min(head, ThreadBuffer::kCapacity);
        for (std::uint64_t i = head - n; i < head; ++i) {
            const TraceRecord& r =
                buf->records[i % ThreadBuffer::kCapacity];
            Json event = Json::object();
            event.set("name", r.name);
            // Category = name prefix before the first '/', for
            // Perfetto filtering ("solver/entropy" -> "solver").
            const char* slash = std::strchr(r.name, '/');
            event.set("cat", slash ? std::string(r.name, slash) : r.name);
            event.set("ph", "X");
            event.set("ts", 1e-3 * static_cast<double>(r.start_ns));
            event.set("dur",
                      1e-3 * static_cast<double>(r.end_ns - r.start_ns));
            event.set("pid", 1);
            event.set("tid", buf->tid);
            if (r.arg_key[0] != nullptr) {
                Json args = Json::object();
                for (int a = 0; a < 2 && r.arg_key[a] != nullptr; ++a) {
                    args.set(r.arg_key[a],
                             static_cast<long long>(r.arg_value[a]));
                }
                event.set("args", std::move(args));
            }
            events.push_back(std::move(event));
        }
    }
    Json doc = Json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", "ns");
    return doc;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
    const std::string text = chrome_trace().dump();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), f);
    const bool ok = written == text.size() && std::fclose(f) == 0;
    if (!ok && written != text.size()) std::fclose(f);
    return ok;
}

void Span::begin(const char* name) {
    name_ = name;
    start_ns_ = Tracer::now_ns();
    active_ = true;
}

void Span::end() {
    TraceRecord r;
    r.name = name_;
    r.start_ns = start_ns_;
    r.end_ns = Tracer::now_ns();
    for (int i = 0; i < 2; ++i) {
        r.arg_key[i] = arg_key_[i];
        r.arg_value[i] = arg_value_[i];
    }
    local_buffer().push(r);
}

}  // namespace tme::obs
