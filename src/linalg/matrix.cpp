#include "linalg/matrix.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <sstream>
#include <stdexcept>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace tme::linalg {

namespace detail {

namespace {
std::atomic<std::size_t> g_peak_allocation_bytes{0};
std::atomic<std::size_t> g_total_allocation_bytes{0};
}  // namespace

std::size_t peak_matrix_allocation_bytes() {
    return g_peak_allocation_bytes.load(std::memory_order_relaxed);
}

void reset_peak_matrix_allocation() {
    g_peak_allocation_bytes.store(0, std::memory_order_relaxed);
}

std::size_t total_matrix_allocation_bytes() {
    return g_total_allocation_bytes.load(std::memory_order_relaxed);
}

void reset_total_matrix_allocation() {
    g_total_allocation_bytes.store(0, std::memory_order_relaxed);
}

void* zeroed_allocate(std::size_t bytes) {
    std::size_t peak =
        g_peak_allocation_bytes.load(std::memory_order_relaxed);
    while (bytes > peak &&
           !g_peak_allocation_bytes.compare_exchange_weak(
               peak, bytes, std::memory_order_relaxed)) {
    }
    g_total_allocation_bytes.fetch_add(bytes, std::memory_order_relaxed);
    void* p = std::calloc(bytes, 1);
    if (p == nullptr) throw std::bad_alloc();
#if defined(__linux__)
    // Multi-MB Grams fault in hundreds of thousands of 4 KB pages; ask
    // for transparent huge pages (no-op where THP is off).
    if (bytes >= (std::size_t{8} << 20)) {
        madvise(p, bytes, MADV_HUGEPAGE);
    }
#endif
    return p;
}

void zeroed_deallocate(void* p) { std::free(p); }

}  // namespace detail

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols) {
    if (fill == 0.0 && !std::signbit(fill)) {
        // Value-init path: calloc zero pages, no element writes.
        data_.resize(rows * cols);
    } else {
        data_.assign(rows * cols, fill);
    }
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
        if (r.size() != cols_) {
            throw std::invalid_argument("Matrix: ragged initializer list");
        }
        data_.insert(data_.end(), r.begin(), r.end());
    }
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

Matrix Matrix::diagonal(const Vector& d) {
    Matrix m(d.size(), d.size(), 0.0);
    for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
    return m;
}

double Matrix::at(std::size_t i, std::size_t j) const {
    if (i >= rows_ || j >= cols_) {
        throw std::out_of_range("Matrix::at: index out of range");
    }
    return (*this)(i, j);
}

Vector Matrix::row(std::size_t i) const {
    if (i >= rows_) throw std::out_of_range("Matrix::row: index out of range");
    return Vector(row_data(i), row_data(i) + cols_);
}

Vector Matrix::col(std::size_t j) const {
    if (j >= cols_) throw std::out_of_range("Matrix::col: index out of range");
    Vector v(rows_);
    // Single strided pass over the column: the pointer walks the storage
    // once with a fixed stride instead of re-deriving i*cols_+j per row.
    const double* __restrict src = data_.data() + j;
    double* __restrict dst = v.data();
    for (std::size_t i = 0; i < rows_; ++i, src += cols_) dst[i] = *src;
    return v;
}

void Matrix::set_row(std::size_t i, const Vector& v) {
    if (i >= rows_ || v.size() != cols_) {
        throw std::invalid_argument("Matrix::set_row: bad row or size");
    }
    std::copy(v.begin(), v.end(), row_data(i));
}

void Matrix::set_col(std::size_t j, const Vector& v) {
    if (j >= cols_ || v.size() != rows_) {
        throw std::invalid_argument("Matrix::set_col: bad column or size");
    }
    double* __restrict dst = data_.data() + j;
    const double* __restrict src = v.data();
    for (std::size_t i = 0; i < rows_; ++i, dst += cols_) *dst = src[i];
}

Matrix Matrix::transposed() const {
    Matrix t(cols_, rows_);
    // Tiled transpose: a straight j-inner loop strides through the output
    // by rows_ doubles per store, missing cache on every write for large
    // matrices.  Square tiles keep both the read rows and the written
    // rows resident while a tile is processed.
    constexpr std::size_t kTile = 32;
    for (std::size_t i0 = 0; i0 < rows_; i0 += kTile) {
        const std::size_t ilim = std::min(rows_, i0 + kTile);
        for (std::size_t j0 = 0; j0 < cols_; j0 += kTile) {
            const std::size_t jlim = std::min(cols_, j0 + kTile);
            for (std::size_t i = i0; i < ilim; ++i) {
                const double* __restrict src = row_data(i);
                for (std::size_t j = j0; j < jlim; ++j) {
                    t(j, i) = src[j];
                }
            }
        }
    }
    return t;
}

double Matrix::frobenius_norm() const {
    double acc = 0.0;
    for (double v : data_) acc += v * v;
    return std::sqrt(acc);
}

double Matrix::max_abs() const {
    double acc = 0.0;
    for (double v : data_) acc = std::max(acc, std::abs(v));
    return acc;
}

std::string Matrix::to_string(int precision) const {
    std::ostringstream os;
    os.precision(precision);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t j = 0; j < cols_; ++j) {
            os << (*this)(i, j) << (j + 1 == cols_ ? "" : " ");
        }
        os << '\n';
    }
    return os.str();
}

Vector gemv(const Matrix& a, const Vector& x) {
    if (a.cols() != x.size()) {
        throw std::invalid_argument("gemv: dimension mismatch");
    }
    Vector y(a.rows(), 0.0);
    const std::size_t n = a.cols();
    const double* __restrict xp = x.data();
    for (std::size_t i = 0; i < a.rows(); ++i) {
        const double* __restrict row = a.row_data(i);
        double acc = 0.0;
        for (std::size_t j = 0; j < n; ++j) acc += row[j] * xp[j];
        y[i] = acc;
    }
    return y;
}

Vector gemv_transpose(const Matrix& a, const Vector& x) {
    if (a.rows() != x.size()) {
        throw std::invalid_argument("gemv_transpose: dimension mismatch");
    }
    Vector y(a.cols(), 0.0);
    const std::size_t n = a.cols();
    double* __restrict yp = y.data();
    for (std::size_t i = 0; i < a.rows(); ++i) {
        const double* __restrict row = a.row_data(i);
        const double xi = x[i];
        if (xi == 0.0) continue;
        for (std::size_t j = 0; j < n; ++j) yp[j] += xi * row[j];
    }
    return y;
}

namespace {

// Blocking shape shared by gemm and gram: kRowTile output rows advance
// together through the k sweep (each B/source row is loaded once per
// row *block* instead of once per row), over j tiles of kColTile
// doubles (4 KB) so the active output slice stays in L1 however wide
// the matrices get.  Each output element still accumulates its terms
// with k strictly ascending and with the same zero-skip as the plain
// triple loop, so the blocked kernels are bit-for-bit identical to the
// naive ones on finite inputs.
constexpr std::size_t kRowTile = 4;
constexpr std::size_t kColTile = 512;

}  // namespace

Matrix gemm(const Matrix& a, const Matrix& b) {
    if (a.cols() != b.rows()) {
        throw std::invalid_argument("gemm: dimension mismatch");
    }
    const std::size_t m = a.rows();
    const std::size_t kk = a.cols();
    const std::size_t n = b.cols();
    Matrix c(m, n, 0.0);
    for (std::size_t i0 = 0; i0 < m; i0 += kRowTile) {
        const std::size_t ilim = std::min(m, i0 + kRowTile);
        for (std::size_t j0 = 0; j0 < n; j0 += kColTile) {
            const std::size_t jn = std::min(n, j0 + kColTile) - j0;
            for (std::size_t k = 0; k < kk; ++k) {
                const double* __restrict brow = b.row_data(k) + j0;
                for (std::size_t ii = i0; ii < ilim; ++ii) {
                    const double aik = a(ii, k);
                    if (aik == 0.0) continue;
                    double* __restrict crow = c.row_data(ii) + j0;
                    for (std::size_t jj = 0; jj < jn; ++jj) {
                        crow[jj] += aik * brow[jj];
                    }
                }
            }
        }
    }
    return c;
}

Matrix gram(const Matrix& a) {
    const std::size_t n = a.cols();
    const std::size_t m = a.rows();
    Matrix g(n, n, 0.0);
    // Upper triangle, kRowTile output rows per pass over A: each source
    // row is read once per row block, and every (p, q) element sums its
    // terms with i ascending, exactly like the naive rank-1 loop.
    for (std::size_t p0 = 0; p0 < n; p0 += kRowTile) {
        const std::size_t plim = std::min(n, p0 + kRowTile);
        for (std::size_t q0 = p0; q0 < n; q0 += kColTile) {
            const std::size_t qlim = std::min(n, q0 + kColTile);
            for (std::size_t i = 0; i < m; ++i) {
                const double* __restrict row = a.row_data(i);
                for (std::size_t pp = p0; pp < plim; ++pp) {
                    const double rp = row[pp];
                    if (rp == 0.0) continue;
                    // Stay on or above the diagonal inside the tile.
                    const std::size_t qs = std::max(pp, q0);
                    double* __restrict grow = g.row_data(pp);
                    for (std::size_t q = qs; q < qlim; ++q) {
                        grow[q] += rp * row[q];
                    }
                }
            }
        }
    }
    symmetrize_from_upper(g);
    return g;
}

void symmetrize_from_upper(Matrix& g) {
    if (g.rows() != g.cols()) {
        throw std::invalid_argument(
            "symmetrize_from_upper: matrix must be square");
    }
    const std::size_t n = g.rows();
    constexpr std::size_t kTile = 64;
    for (std::size_t p0 = 0; p0 < n; p0 += kTile) {
        const std::size_t plim = std::min(n, p0 + kTile);
        for (std::size_t q0 = 0; q0 <= p0; q0 += kTile) {
            const std::size_t qlim = std::min(plim, q0 + kTile);
            for (std::size_t p = p0; p < plim; ++p) {
                double* __restrict grow = g.row_data(p);
                for (std::size_t q = q0; q < qlim && q < p; ++q) {
                    grow[q] = g(q, p);
                }
            }
        }
    }
}

Matrix add(double alpha, const Matrix& a, double beta, const Matrix& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols()) {
        throw std::invalid_argument("add: dimension mismatch");
    }
    Matrix c(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) {
            c(i, j) = alpha * a(i, j) + beta * b(i, j);
        }
    }
    return c;
}

Matrix vstack(const Matrix& a, const Matrix& b) {
    if (a.cols() != b.cols()) {
        throw std::invalid_argument("vstack: column count mismatch");
    }
    Matrix c(a.rows() + b.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) c.set_row(i, a.row(i));
    for (std::size_t i = 0; i < b.rows(); ++i) c.set_row(a.rows() + i, b.row(i));
    return c;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols()) {
        throw std::invalid_argument("max_abs_diff: dimension mismatch");
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) {
            acc = std::max(acc, std::abs(a(i, j) - b(i, j)));
        }
    }
    return acc;
}

}  // namespace tme::linalg
