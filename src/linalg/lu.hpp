// LU factorization with partial pivoting for general square systems.
//
// Used for the KKT systems of equality-constrained QPs (symmetric but
// indefinite, so Cholesky does not apply) and anywhere a general square
// solve is needed.
#pragma once

#include "linalg/matrix.hpp"

namespace tme::linalg {

/// PA = LU factorization with partial (row) pivoting.
class Lu {
  public:
    /// Factorizes a square matrix.  Throws std::invalid_argument if not
    /// square; singular() reports near-singularity after construction.
    explicit Lu(const Matrix& a);

    /// True when a pivot below `tolerance * max|a_ij|` was encountered.
    bool singular() const { return singular_; }

    /// Solves A x = b.  Throws std::runtime_error if singular().
    Vector solve(const Vector& b) const;

    /// Magnitude of the smallest pivot encountered (diagnostic).
    double min_pivot() const { return min_pivot_; }

  private:
    Matrix lu_;                  // packed L (unit diagonal) and U
    std::vector<std::size_t> perm_;  // row permutation
    bool singular_ = false;
    double min_pivot_ = 0.0;
};

/// Convenience wrapper: factorize and solve in one call.
Vector lu_solve(const Matrix& a, const Vector& b);

}  // namespace tme::linalg
