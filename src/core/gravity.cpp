#include "core/gravity.hpp"

#include <stdexcept>

#include "check/contract.hpp"
#include "check/validators.hpp"

namespace tme::core {

namespace {

struct EdgeTotals {
    linalg::Vector entering;  // t_e(n)
    linalg::Vector exiting;   // t_x(m)
    double total_exit = 0.0;
};

EdgeTotals edge_totals(const SnapshotProblem& problem) {
    const topology::Topology& topo = *problem.topo;
    EdgeTotals et;
    et.entering.resize(topo.pop_count());
    et.exiting.resize(topo.pop_count());
    for (std::size_t n = 0; n < topo.pop_count(); ++n) {
        et.entering[n] = problem.loads[topo.ingress_link(n)];
        et.exiting[n] = problem.loads[topo.egress_link(n)];
        et.total_exit += et.exiting[n];
    }
    return et;
}

}  // namespace

linalg::Vector gravity_estimate(const SnapshotProblem& problem) {
    problem.validate_with_topology();
    const topology::Topology& topo = *problem.topo;
    const EdgeTotals et = edge_totals(problem);
    if (et.total_exit <= 0.0) {
        throw std::invalid_argument("gravity_estimate: no exiting traffic");
    }
    linalg::Vector s(topo.pair_count(), 0.0);
    for (std::size_t n = 0; n < topo.pop_count(); ++n) {
        for (std::size_t m = 0; m < topo.pop_count(); ++m) {
            if (n == m) continue;
            s[topo.pair_index(n, m)] =
                et.entering[n] * et.exiting[m] / et.total_exit;
        }
    }
    TME_CONTRACT_DBG_CHECK(check::solver_boundary(
        "gravity_estimate", s, /*require_nonnegative=*/true));
    return s;
}

linalg::Vector generalized_gravity_estimate(const SnapshotProblem& problem) {
    problem.validate_with_topology();
    const topology::Topology& topo = *problem.topo;
    const EdgeTotals et = edge_totals(problem);
    if (et.total_exit <= 0.0) {
        throw std::invalid_argument(
            "generalized_gravity_estimate: no exiting traffic");
    }
    linalg::Vector s(topo.pair_count(), 0.0);
    for (std::size_t n = 0; n < topo.pop_count(); ++n) {
        const bool n_peer = topo.pop(n).role == topology::PopRole::peering;
        // Exit share restricted to destinations this source may send to.
        double allowed_exit = 0.0;
        for (std::size_t m = 0; m < topo.pop_count(); ++m) {
            if (m == n) continue;
            const bool m_peer =
                topo.pop(m).role == topology::PopRole::peering;
            if (n_peer && m_peer) continue;
            allowed_exit += et.exiting[m];
        }
        if (allowed_exit <= 0.0) continue;
        for (std::size_t m = 0; m < topo.pop_count(); ++m) {
            if (m == n) continue;
            const bool m_peer =
                topo.pop(m).role == topology::PopRole::peering;
            if (n_peer && m_peer) continue;
            // Each source's entering total is preserved:
            // sum_m s_nm = t_e(n).
            s[topo.pair_index(n, m)] =
                et.entering[n] * et.exiting[m] / allowed_exit;
        }
    }
    TME_CONTRACT_DBG_CHECK(check::solver_boundary(
        "generalized_gravity_estimate", s, /*require_nonnegative=*/true));
    return s;
}

}  // namespace tme::core
