#include "traffic/diurnal.hpp"

#include <cmath>
#include <numbers>

namespace tme::traffic {

double diurnal_factor(const DiurnalProfile& profile, double minute_of_day) {
    constexpr double day = 24.0 * 60.0;
    const double phase =
        2.0 * std::numbers::pi * (minute_of_day - profile.peak_minute) / day;
    // Raised cosine in [0,1], sharpened, then lifted to the trough level.
    const double bump = std::pow(0.5 * (1.0 + std::cos(phase)),
                                 profile.sharpness);
    return profile.trough_fraction +
           (1.0 - profile.trough_fraction) * bump;
}

}  // namespace tme::traffic
