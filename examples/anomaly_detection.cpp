// Fanout-drift anomaly detection.
//
// Section 5.2.2 of the paper shows fanout factors are far more stable
// over time than raw demands.  That stability is operationally useful:
// a sudden fanout change at a PoP signals a traffic anomaly (prefix
// hijack, flash crowd, peering failure) even while total volumes swing
// with the normal diurnal cycle.  This example estimates fanouts over a
// sliding window of link loads and flags windows whose fanouts deviate
// from the long-run profile — injecting a synthetic hijack to show the
// detector fires.
#include <cmath>
#include <cstdio>

#include "core/fanout.hpp"
#include "scenario/scenario.hpp"
#include "traffic/traffic_matrix.hpp"

int main() {
    using namespace tme;
    scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe);
    const std::size_t nodes = sc.topo.pop_count();

    // Inject an anomaly: from 20:00, PoP 0 (London) suddenly redirects
    // most of its traffic to a single destination.
    const std::size_t anomaly_start = 240;  // sample index (20:00)
    const std::size_t victim_dst = 6;       // Stockholm
    for (std::size_t k = anomaly_start; k < sc.demands.size(); ++k) {
        traffic::TrafficMatrix tm(nodes, sc.demands[k]);
        const double row = tm.row_totals()[0];
        // 60% of London's traffic now goes to one destination.
        for (std::size_t m = 1; m < nodes; ++m) {
            sc.demands[k][sc.topo.pair_index(0, m)] *= 0.4;
        }
        sc.demands[k][sc.topo.pair_index(0, victim_dst)] += 0.6 * row;
        sc.loads[k] = sc.routing.multiply(sc.demands[k]);
    }

    // Baseline fanouts from a clean reference window (morning).
    core::SeriesProblem reference;
    reference.topo = &sc.topo;
    reference.routing = &sc.routing;
    for (std::size_t k = 96; k < 120; ++k) {
        reference.loads.push_back(sc.loads[k]);
    }
    const core::FanoutResult baseline = core::fanout_estimate(reference);

    std::printf("Sliding-window fanout drift (L1 distance per source):\n\n");
    std::printf("%-8s %-10s %-10s %s\n", "window", "maxdrift", "source",
                "verdict");

    // Slide a 6-sample (30 min) window across the evening.
    for (std::size_t start = 192; start + 6 <= 286; start += 12) {
        core::SeriesProblem window;
        window.topo = &sc.topo;
        window.routing = &sc.routing;
        for (std::size_t k = start; k < start + 6; ++k) {
            window.loads.push_back(sc.loads[k]);
        }
        const core::FanoutResult current = core::fanout_estimate(window);

        // Per-source L1 fanout drift vs. baseline.
        double worst = 0.0;
        std::size_t worst_src = 0;
        for (std::size_t n = 0; n < nodes; ++n) {
            double drift = 0.0;
            for (std::size_t m = 0; m < nodes; ++m) {
                if (m == n) continue;
                const std::size_t p = sc.topo.pair_index(n, m);
                drift += std::abs(current.fanouts[p] - baseline.fanouts[p]);
            }
            if (drift > worst) {
                worst = drift;
                worst_src = n;
            }
        }
        const int hh = static_cast<int>(start * 5) / 60;
        const int mm = static_cast<int>(start * 5) % 60;
        std::printf("%02d:%02d    %-10.3f %-10s %s\n", hh, mm, worst,
                    sc.topo.pop(worst_src).name.c_str(),
                    worst > 0.5 ? "ANOMALY" : "ok");
    }
    std::printf(
        "\nWindows past 20:00 flag London: its fanout vector shifted\n"
        "massively toward one destination, while pre-anomaly windows\n"
        "stay quiet despite the diurnal traffic swing - exactly the\n"
        "stability property of paper Figs. 4-5.\n");
    return 0;
}
