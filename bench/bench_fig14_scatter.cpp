// Figure 14: real vs estimated demands for the American subnetwork,
// Bayesian (left) and Entropy (right), regularization parameter 1000.
#include "bench_common.hpp"

#include "core/bayesian.hpp"
#include "core/entropy.hpp"
#include "core/gravity.hpp"
#include "linalg/stats.hpp"

int main() {
    using namespace tme;
    bench::header(
        "Figure 14 - real vs estimated demands, USA, reg = 1000",
        "Fig. 14: both methods capture demands across the whole size "
        "spectrum",
        "high correlation with truth across demand decades");

    const scenario::Scenario& sc = bench::usa();
    const core::SnapshotProblem snap = sc.busy_snapshot();
    const linalg::Vector& truth = sc.busy_snapshot_demands();
    const linalg::Vector prior = core::gravity_estimate(snap);

    core::BayesianOptions bo;
    bo.regularization = 1000.0;
    const linalg::Vector bayes = core::bayesian_estimate(snap, prior, bo);
    core::EntropyOptions eo;
    eo.regularization = 1000.0;
    const linalg::Vector entropy = core::entropy_estimate(snap, prior, eo);

    std::printf("pearson(truth, bayes)   = %.4f\n",
                linalg::pearson(truth, bayes));
    std::printf("pearson(truth, entropy) = %.4f\n",
                linalg::pearson(truth, entropy));
    std::printf("spearman(truth, bayes)  = %.4f\n",
                linalg::spearman(truth, bayes));

    std::printf("\nper-decade median est/true:\n");
    std::printf("%16s %10s %10s %8s\n", "true decade", "bayes", "entropy",
                "count");
    for (double lo = 1e-5; lo < 1.0; lo *= 10.0) {
        linalg::Vector rb;
        linalg::Vector re;
        for (std::size_t p = 0; p < truth.size(); ++p) {
            if (truth[p] >= lo && truth[p] < 10.0 * lo) {
                rb.push_back(bayes[p] / truth[p]);
                re.push_back(entropy[p] / truth[p]);
            }
        }
        if (rb.empty()) continue;
        std::printf("%9.0e-%6.0e %10.2f %10.2f %8zu\n", lo, 10.0 * lo,
                    linalg::quantile(rb, 0.5), linalg::quantile(re, 0.5),
                    rb.size());
    }
    const double thr = bench::report_threshold(truth);
    std::printf("MRE: bayes %.3f, entropy %.3f\n",
                core::mean_relative_error(truth, bayes, thr),
                core::mean_relative_error(truth, entropy, thr));
    return 0;
}
