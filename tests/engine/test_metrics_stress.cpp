// EngineMetrics under concurrency: counters are atomics and the
// per-method map is pre-populated, so a reader polling (or copying)
// the metrics while another thread ingests must never see torn values,
// only monotonically growing counters.  Run under ThreadSanitizer this
// also proves the absence of data races on the metrics path.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "engine/fleet.hpp"
#include "engine/replay.hpp"

namespace tme::engine {
namespace {

TEST(EngineMetricsStress, ConcurrentReadersSeeMonotonicUntornCounters) {
    scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe);
    constexpr std::size_t kSamples = 60;
    sc.demands.resize(kSamples);
    sc.loads.resize(kSamples);

    EngineConfig config;
    config.window_size = 6;
    config.methods = {Method::gravity, Method::bayesian, Method::fanout};
    OnlineEngine engine(sc.topo, sc.routing, config);
    const EngineMetrics& live = engine.metrics();

    std::atomic<bool> done{false};
    std::atomic<std::size_t> reads{0};
    auto reader = [&] {
        std::size_t last_samples = 0;
        std::size_t last_windows = 0;
        std::size_t last_bayesian_runs = 0;
        while (!done.load(std::memory_order_acquire)) {
            // Snapshot by copy while the writer is mid-flight: the
            // copy itself must be race-free (atomic loads per field).
            const EngineMetrics snap = live;
            const std::size_t samples = snap.samples_ingested.load();
            const std::size_t windows = snap.windows_run.load();
            // Monotonicity: a torn or half-written counter would show
            // up as a value jumping backwards or past the stream end.
            EXPECT_GE(samples, last_samples);
            EXPECT_GE(windows, last_windows);
            EXPECT_LE(samples, kSamples);
            EXPECT_LE(windows, samples);
            last_samples = samples;
            last_windows = windows;
            const auto it = snap.methods.find(Method::bayesian);
            // Pre-populated map: every scheduled method is present
            // from construction, even before its first run.
            ASSERT_NE(it, snap.methods.end());
            const std::size_t runs = it->second.runs.load();
            EXPECT_GE(runs, last_bayesian_runs);
            EXPECT_LE(runs, kSamples);
            last_bayesian_runs = runs;
            EXPECT_GE(it->second.total_seconds.load(), 0.0);
            // summary() walks everything; it must be safe mid-stream.
            EXPECT_FALSE(snap.summary().empty());
            reads.fetch_add(1, std::memory_order_relaxed);
        }
    };

    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) readers.emplace_back(reader);
    const ReplayResult result = replay_scenario(engine, sc);
    done.store(true, std::memory_order_release);
    for (std::thread& t : readers) t.join();

    EXPECT_EQ(result.windows.size(), kSamples);
    EXPECT_GT(reads.load(std::memory_order_relaxed), 0u);
    EXPECT_EQ(live.samples_ingested.load(), kSamples);
    EXPECT_EQ(live.windows_run.load(), kSamples);
    EXPECT_EQ(live.methods.at(Method::bayesian).runs.load(), kSamples);
}

TEST(EngineMetricsStress, FleetAggregationReadsLiveEngines) {
    // The fleet path: metrics snapshots are taken per job while other
    // jobs' engines are still writing theirs — every copy below
    // happens concurrently with live updates elsewhere in the fleet.
    scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe);
    sc.demands.resize(24);
    sc.loads.resize(24);
    FleetConfig config;
    config.engine.window_size = 6;
    config.engine.methods = {Method::gravity, Method::bayesian};
    config.concurrency = 3;
    FleetDriver driver(sc.topo, config);
    std::vector<FleetJob> jobs(3);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        jobs[j].name = "job" + std::to_string(j);
        jobs[j].scenario = &sc;
    }
    const FleetReport report = driver.run(jobs);
    for (const FleetJobReport& job : report.jobs) {
        EXPECT_EQ(job.metrics.samples_ingested.load(), 24u);
        EXPECT_EQ(job.metrics.windows_run.load(), 24u);
    }
}

// Hand-built metrics with known values: pins the exact summary()
// rendering (field order, millisecond formatting, warm ratio, solver
// iteration suffix) so a formatting regression is caught as a string
// diff, not by eyeballing bench logs.
TEST(EngineMetricsGolden, SummaryMatchesGoldenString) {
    EngineMetrics m;
    m.samples_ingested.store(10);
    m.gap_samples.store(1);
    m.windows_run.store(10);
    m.window_flushes.store(2);
    m.epoch_changes.store(3);
    m.cache_hits.store(8);
    m.cache_misses.store(2);
    m.total_seconds.store(1.5);
    m.last_window_seconds.store(0.002);

    MethodStats& gravity = m.methods[Method::gravity];
    gravity.runs.store(10);
    gravity.total_seconds.store(0.05);
    gravity.last_seconds.store(0.005);
    gravity.max_seconds.store(0.006);

    MethodStats& kruithof = m.methods[Method::kruithof];
    kruithof.runs.store(4);
    kruithof.total_seconds.store(0.004);
    kruithof.last_seconds.store(0.001);
    kruithof.max_seconds.store(0.002);
    obs::SolverCounters sweeps;
    sweeps.kruithof_sweeps = 5;
    kruithof.solver.add(sweeps);

    const std::string expected =
        "samples=10 gaps=1 windows=10 flushes=2 epoch_changes=3\n"
        "epoch cache: hit rate 0.800 (8 hits, 2 misses, 0 evictions, "
        "0 collisions)\n"
        "latency: total 1.500s, last window 2.00ms, "
        "p50=0.00ms p95=0.00ms p99=0.00ms max=0.00ms\n"
        "  gravity   runs=10 warm=0/0 mean=5.00ms last=5.00ms "
        "p50=0.00ms p95=0.00ms p99=0.00ms max=6.00ms\n"
        "  kruithof  runs=4 warm=0/0 mean=1.00ms last=1.00ms "
        "p50=0.00ms p95=0.00ms p99=0.00ms max=2.00ms "
        "iters={\"kruithof_sweeps\":5}\n";
    EXPECT_EQ(m.summary(), expected);
}

TEST(EngineMetricsGolden, ToJsonStructureAndRoundTrip) {
    EngineMetrics m;
    m.samples_ingested.store(10);
    m.cache_hits.store(3);
    m.cache_misses.store(1);
    m.window_latency.record(0.002);
    m.window_latency.record(0.004);

    MethodStats& fanout = m.methods[Method::fanout];
    fanout.runs.store(6);
    fanout.warm_runs.store(5);
    fanout.warm_accepted_runs.store(4);
    fanout.total_seconds.store(0.012);
    fanout.max_seconds.store(0.003);
    fanout.latency.record(0.002);
    obs::SolverCounters iters;
    iters.qp_active_set_rounds = 7;
    iters.qp_cg_iterations = 42;
    fanout.solver.add(iters);
    fanout.last_mre.store(0.25);
    fanout.mre_sum.store(0.5);
    fanout.mre_count.store(2);

    const obs::Json j = m.to_json();
    ASSERT_NE(j.find("samples_ingested"), nullptr);
    EXPECT_EQ(j.find("samples_ingested")->as_int(), 10);
    const obs::Json* cache = j.find("epoch_cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->find("hits")->as_int(), 3);
    EXPECT_NEAR(cache->find("hit_rate")->as_double(), 0.75, 1e-12);
    const obs::Json* window = j.find("window_latency");
    ASSERT_NE(window, nullptr);
    EXPECT_EQ(window->find("count")->as_int(), 2);
    // Histograms that never recorded still export a zeroed block.
    ASSERT_NE(j.find("ingest_wait"), nullptr);
    EXPECT_EQ(j.find("ingest_wait")->find("count")->as_int(), 0);

    const obs::Json* methods = j.find("methods");
    ASSERT_NE(methods, nullptr);
    const obs::Json* fj = methods->find("fanout");
    ASSERT_NE(fj, nullptr);
    EXPECT_EQ(fj->find("runs")->as_int(), 6);
    EXPECT_EQ(fj->find("warm_runs")->as_int(), 5);
    EXPECT_EQ(fj->find("warm_accepted_runs")->as_int(), 4);
    EXPECT_NEAR(fj->find("mean_seconds")->as_double(), 0.002, 1e-12);
    EXPECT_NEAR(fj->find("max_seconds")->as_double(), 0.003, 1e-12);
    const obs::Json* solver = fj->find("solver");
    ASSERT_NE(solver, nullptr);
    EXPECT_EQ(solver->find("qp_active_set_rounds")->as_int(), 7);
    EXPECT_EQ(solver->find("qp_cg_iterations")->as_int(), 42);
    // Zero counters are omitted from the solver block.
    EXPECT_EQ(solver->find("kruithof_sweeps"), nullptr);
    EXPECT_NEAR(fj->find("mean_mre")->as_double(), 0.25, 1e-12);
    EXPECT_NEAR(fj->find("last_mre")->as_double(), 0.25, 1e-12);
    // Methods without runs export too, minus optional blocks.
    MethodStats& idle = m.methods[Method::vardi];
    (void)idle;
    const obs::Json j2 = m.to_json();
    const obs::Json* vj = j2.find("methods")->find("vardi");
    ASSERT_NE(vj, nullptr);
    EXPECT_EQ(vj->find("runs")->as_int(), 0);
    EXPECT_EQ(vj->find("solver"), nullptr);
    EXPECT_EQ(vj->find("mean_mre"), nullptr);

    // The export must survive a dump -> strict-parse round trip in
    // both compact and pretty form (this is what lands in BENCH files).
    const std::optional<obs::Json> compact = obs::Json::parse(j2.dump(0));
    ASSERT_TRUE(compact.has_value());
    const std::optional<obs::Json> pretty = obs::Json::parse(j2.dump(2));
    ASSERT_TRUE(pretty.has_value());
    EXPECT_EQ(pretty->find("methods")->find("fanout")->find("runs")->as_int(),
              6);
}

}  // namespace
}  // namespace tme::engine
