// Minimal ordered JSON document model for telemetry export.
//
// Every BENCH_*.json and trace file in this repo is machine-diffed and
// eyeballed, so object key order must be deterministic and meaningful:
// objects here are insertion-ordered vectors of (key, value), not
// maps.  Integers and doubles are kept distinct (counters print as
// integers, latencies as shortest-round-trip doubles) and strings are
// escaped per RFC 8259.
//
// The parser exists for the trace-validation test — it accepts strict
// JSON (objects/arrays/strings/numbers/bools/null, no comments or
// trailing commas) and is not a general-purpose ingestion surface.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tme::obs {

class Json {
  public:
    enum class Type { null, boolean, integer, number, string, array, object };

    Json() : type_(Type::null) {}
    Json(std::nullptr_t) : type_(Type::null) {}
    Json(bool b) : type_(Type::boolean), bool_(b) {}
    Json(int v) : type_(Type::integer), int_(v) {}
    Json(long v) : type_(Type::integer), int_(v) {}
    Json(long long v) : type_(Type::integer), int_(v) {}
    Json(unsigned v) : type_(Type::integer), int_(v) {}
    Json(unsigned long v)
        : type_(Type::integer), int_(static_cast<std::int64_t>(v)) {}
    Json(unsigned long long v)
        : type_(Type::integer), int_(static_cast<std::int64_t>(v)) {}
    Json(double v) : type_(Type::number), num_(v) {}
    Json(const char* s) : type_(Type::string), str_(s) {}
    Json(std::string s) : type_(Type::string), str_(std::move(s)) {}

    static Json array() {
        Json j;
        j.type_ = Type::array;
        return j;
    }
    static Json object() {
        Json j;
        j.type_ = Type::object;
        return j;
    }

    Type type() const { return type_; }
    bool is_object() const { return type_ == Type::object; }
    bool is_array() const { return type_ == Type::array; }
    bool is_string() const { return type_ == Type::string; }
    bool is_integer() const { return type_ == Type::integer; }
    bool is_number() const {
        return type_ == Type::number || type_ == Type::integer;
    }

    bool as_bool() const { return bool_; }
    std::int64_t as_int() const {
        return type_ == Type::number ? static_cast<std::int64_t>(num_)
                                     : int_;
    }
    double as_double() const {
        return type_ == Type::integer ? static_cast<double>(int_) : num_;
    }
    const std::string& as_string() const { return str_; }
    const std::vector<Json>& items() const { return items_; }
    const std::vector<std::pair<std::string, Json>>& members() const {
        return members_;
    }

    /// Array append.  Converts a null value to an array on first use.
    Json& push_back(Json value);
    /// Object append/overwrite (linear key scan keeps first-insertion
    /// order stable).  Converts a null value to an object on first use.
    Json& set(std::string_view key, Json value);
    /// Object lookup; nullptr when absent or not an object.
    const Json* find(std::string_view key) const;

    std::size_t size() const {
        return is_object() ? members_.size() : items_.size();
    }

    /// Serialize.  indent <= 0 emits compact one-line JSON; indent > 0
    /// pretty-prints with that many spaces per level.
    std::string dump(int indent = 0) const;

    /// Strict parse of a complete JSON document; nullopt on any error
    /// (including trailing garbage).
    static std::optional<Json> parse(std::string_view text);

  private:
    void dump_to(std::string& out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> items_;
    std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace tme::obs
