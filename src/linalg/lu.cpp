#include "linalg/lu.hpp"

#include <cmath>
#include <stdexcept>

namespace tme::linalg {

Lu::Lu(const Matrix& a) : lu_(a), perm_(a.rows()) {
    if (a.rows() != a.cols()) {
        throw std::invalid_argument("Lu: matrix must be square");
    }
    const std::size_t n = a.rows();
    for (std::size_t i = 0; i < n; ++i) perm_[i] = i;
    const double scale = a.max_abs();
    const double tol = scale * 1e-13;
    min_pivot_ = scale;

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivoting: pick the largest remaining entry in column k.
        std::size_t piv = k;
        double best = std::abs(lu_(k, k));
        for (std::size_t i = k + 1; i < n; ++i) {
            const double v = std::abs(lu_(i, k));
            if (v > best) {
                best = v;
                piv = i;
            }
        }
        if (piv != k) {
            for (std::size_t j = 0; j < n; ++j) {
                std::swap(lu_(k, j), lu_(piv, j));
            }
            std::swap(perm_[k], perm_[piv]);
        }
        const double pivot = lu_(k, k);
        min_pivot_ = std::min(min_pivot_, std::abs(pivot));
        if (std::abs(pivot) <= tol) {
            singular_ = true;
            continue;
        }
        for (std::size_t i = k + 1; i < n; ++i) {
            const double m = lu_(i, k) / pivot;
            lu_(i, k) = m;
            if (m == 0.0) continue;
            for (std::size_t j = k + 1; j < n; ++j) {
                lu_(i, j) -= m * lu_(k, j);
            }
        }
    }
}

Vector Lu::solve(const Vector& b) const {
    const std::size_t n = lu_.rows();
    if (b.size() != n) {
        throw std::invalid_argument("Lu::solve: size mismatch");
    }
    if (singular_) {
        throw std::runtime_error("Lu::solve: matrix is singular");
    }
    // Apply permutation, then forward substitution with unit-lower L.
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double v = b[perm_[i]];
        for (std::size_t k = 0; k < i; ++k) v -= lu_(i, k) * y[k];
        y[i] = v;
    }
    // Back substitution with U.
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double v = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k) v -= lu_(ii, k) * x[k];
        x[ii] = v / lu_(ii, ii);
    }
    return x;
}

Vector lu_solve(const Matrix& a, const Vector& b) { return Lu(a).solve(b); }

}  // namespace tme::linalg
