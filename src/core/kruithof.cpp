#include "core/kruithof.hpp"

#include <cmath>
#include <stdexcept>

#include "traffic/traffic_matrix.hpp"

namespace tme::core {

KruithofResult kruithof_ipf(std::size_t nodes, const linalg::Vector& prior,
                            const linalg::Vector& row_totals,
                            const linalg::Vector& col_totals,
                            const KruithofOptions& options) {
    if (prior.size() != nodes * (nodes - 1) || row_totals.size() != nodes ||
        col_totals.size() != nodes) {
        throw std::invalid_argument("kruithof_ipf: size mismatch");
    }
    const double row_sum = linalg::sum(row_totals);
    const double col_sum = linalg::sum(col_totals);
    if (row_sum <= 0.0 ||
        std::abs(row_sum - col_sum) > 1e-9 * std::max(row_sum, col_sum)) {
        throw std::invalid_argument(
            "kruithof_ipf: row and column totals must agree");
    }

    traffic::TrafficMatrix tm(nodes, prior);
    KruithofResult result;
    for (result.iterations = 0; result.iterations < options.max_iterations;
         ++result.iterations) {
        // Row scaling.
        linalg::Vector rt = tm.row_totals();
        for (std::size_t i = 0; i < nodes; ++i) {
            if (rt[i] <= 0.0) continue;
            const double f = row_totals[i] / rt[i];
            for (std::size_t j = 0; j < nodes; ++j) {
                if (i != j) tm.set(i, j, tm(i, j) * f);
            }
        }
        // Column scaling.
        linalg::Vector ct = tm.col_totals();
        for (std::size_t j = 0; j < nodes; ++j) {
            if (ct[j] <= 0.0) continue;
            const double f = col_totals[j] / ct[j];
            for (std::size_t i = 0; i < nodes; ++i) {
                if (i != j) tm.set(i, j, tm(i, j) * f);
            }
        }
        // Violation check (after the column pass, rows may drift).
        rt = tm.row_totals();
        ct = tm.col_totals();
        double viol = 0.0;
        for (std::size_t i = 0; i < nodes; ++i) {
            if (row_totals[i] > 0.0) {
                viol = std::max(viol, std::abs(rt[i] - row_totals[i]) /
                                          row_totals[i]);
            }
            if (col_totals[i] > 0.0) {
                viol = std::max(viol, std::abs(ct[i] - col_totals[i]) /
                                          col_totals[i]);
            }
        }
        result.max_violation = viol;
        if (viol <= options.tolerance) {
            result.converged = true;
            break;
        }
    }
    result.s = tm.to_pair_vector();
    return result;
}

KruithofResult kruithof_general(const SnapshotProblem& problem,
                                const linalg::Vector& prior,
                                const KruithofOptions& options) {
    problem.validate();
    const linalg::SparseMatrix& r = *problem.routing;
    if (prior.size() != r.cols()) {
        throw std::invalid_argument("kruithof_general: prior size mismatch");
    }
    const linalg::Vector& t = problem.loads;

    double tmax = linalg::nrm_inf(t);
    if (tmax == 0.0) tmax = 1.0;

    KruithofResult result;
    result.s = prior;
    // Strictly positive start.
    double pmean = linalg::sum(result.s) /
                   static_cast<double>(result.s.size());
    if (pmean <= 0.0) {
        throw std::invalid_argument("kruithof_general: degenerate prior");
    }
    for (double& v : result.s) v = std::max(v, 1e-12 * pmean);

    const auto& offsets = r.row_offsets();
    const auto& cols = r.column_indices();
    const auto& vals = r.values();

    for (result.iterations = 0; result.iterations < options.max_iterations;
         ++result.iterations) {
        // Cyclic MART pass: for each constraint l, scale the demands on
        // the constraint multiplicatively toward t_l.  Exponent
        // r_lp/max_l keeps the update stable for fractional matrices.
        for (std::size_t l = 0; l < r.rows(); ++l) {
            double pred = 0.0;
            for (std::size_t k = offsets[l]; k < offsets[l + 1]; ++k) {
                pred += vals[k] * result.s[cols[k]];
            }
            if (pred <= 0.0) continue;
            if (t[l] <= 0.0) {
                // Zero measured load: demands on this link must vanish.
                for (std::size_t k = offsets[l]; k < offsets[l + 1]; ++k) {
                    result.s[cols[k]] = 0.0;
                }
                continue;
            }
            const double ratio = t[l] / pred;
            for (std::size_t k = offsets[l]; k < offsets[l + 1]; ++k) {
                result.s[cols[k]] *= std::pow(ratio, vals[k]);
            }
        }
        // Convergence: relative residual of R s = t.
        const linalg::Vector pred = r.multiply(result.s);
        double viol = 0.0;
        for (std::size_t l = 0; l < t.size(); ++l) {
            viol = std::max(viol, std::abs(pred[l] - t[l]) / tmax);
        }
        result.max_violation = viol;
        if (viol <= options.tolerance) {
            result.converged = true;
            break;
        }
    }
    return result;
}

}  // namespace tme::core
