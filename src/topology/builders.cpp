#include "topology/builders.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace tme::topology {

namespace {

struct City {
    const char* name;
    double lat;
    double lon;
    double weight;  // relative served population / traffic attraction
};

// Distance-derived IGP metric: roughly 1 unit per 100 km with a floor, as
// operators commonly derive IGP costs from fibre latency.
double metric_for(const Pop& a, const Pop& b) {
    return std::max(1.0, std::round(great_circle_km(a, b) / 100.0));
}

// Adds a bidirectional core adjacency with a distance-based metric.
void connect(Topology& t, std::size_t a, std::size_t b, double capacity) {
    t.add_core_link_pair(a, b, capacity, metric_for(t.pop(a), t.pop(b)));
}

}  // namespace

Topology europe_backbone() {
    // Weights are loosely proportional to metro population / hosting
    // density; London, Paris, Frankfurt and Amsterdam dominate, which
    // reproduces the paper's observation that a limited subset of nodes
    // carries most traffic (Fig. 3).
    // Weight skew is calibrated so that the ~29 largest of the 132
    // demands carry ~90% of traffic (the paper's MRE threshold set) and
    // the top 20% of demands carry ~80% (Fig. 2): four hub PoPs dominate.
    const City cities[] = {
        {"London", 51.51, -0.13, 14.0},   {"Paris", 48.86, 2.35, 8.0},
        {"Amsterdam", 52.37, 4.90, 10.0}, {"Frankfurt", 50.11, 8.68, 12.0},
        {"Madrid", 40.42, -3.70, 0.9},    {"Milan", 45.46, 9.19, 1.1},
        {"Stockholm", 59.33, 18.07, 0.6}, {"Copenhagen", 55.68, 12.57, 0.5},
        {"Brussels", 50.85, 4.35, 0.7},   {"Zurich", 47.38, 8.54, 0.8},
        {"Vienna", 48.21, 16.37, 0.5},    {"Dublin", 53.35, -6.26, 0.4},
    };
    Topology t;
    for (const City& c : cities) {
        Pop p;
        p.name = c.name;
        p.latitude = c.lat;
        p.longitude = c.lon;
        p.weight = c.weight;
        t.add_pop(std::move(p));
    }
    const std::size_t lon = 0, par = 1, ams = 2, fra = 3, mad = 4, mil = 5,
                      sto = 6, cop = 7, bru = 8, zur = 9, vie = 10, dub = 11;
    const double c10g = 10000.0;  // 10 Gbps trunks
    const double c2g5 = 2500.0;   // OC-48 spans
    // 24 adjacencies -> 48 directed core links; with 24 edge links the
    // total is the paper's 72.
    connect(t, lon, par, c10g);
    connect(t, lon, ams, c10g);
    connect(t, lon, dub, c2g5);
    connect(t, lon, fra, c10g);
    connect(t, lon, bru, c2g5);
    connect(t, par, mad, c2g5);
    connect(t, par, bru, c2g5);
    connect(t, par, zur, c2g5);
    connect(t, par, fra, c10g);
    connect(t, ams, bru, c2g5);
    connect(t, ams, fra, c10g);
    connect(t, ams, cop, c2g5);
    connect(t, ams, sto, c2g5);
    connect(t, ams, dub, c2g5);
    connect(t, fra, zur, c2g5);
    connect(t, fra, vie, c2g5);
    connect(t, fra, cop, c2g5);
    connect(t, fra, mil, c2g5);
    connect(t, fra, sto, c2g5);
    connect(t, zur, mil, c2g5);
    connect(t, zur, vie, c2g5);
    connect(t, mil, vie, c2g5);
    connect(t, mad, mil, c2g5);
    connect(t, cop, sto, c2g5);
    if (t.link_count() != 72 || t.pop_count() != 12) {
        throw std::logic_error("europe_backbone: dimension drift");
    }
    return t;
}

Topology us_backbone() {
    // Weights calibrated so the ~155 largest of 600 demands carry ~90%
    // of traffic (paper Section 5.3.1) with a clear hub hierarchy.
    const City cities[] = {
        {"Seattle", 47.61, -122.33, 2.2},
        {"Portland", 45.52, -122.68, 0.7},
        {"SanFrancisco", 37.77, -122.42, 5.0},
        {"SanJose", 37.34, -121.89, 9.0},
        {"LosAngeles", 34.05, -118.24, 7.0},
        {"SanDiego", 32.72, -117.16, 0.7},
        {"Phoenix", 33.45, -112.07, 0.7},
        {"LasVegas", 36.17, -115.14, 0.5},
        {"SaltLakeCity", 40.76, -111.89, 0.5},
        {"Denver", 39.74, -104.99, 1.0},
        {"Dallas", 32.78, -96.80, 6.5},
        {"Houston", 29.76, -95.37, 2.0},
        {"Austin", 30.27, -97.74, 0.6},
        {"KansasCity", 39.10, -94.58, 0.5},
        {"Minneapolis", 44.98, -93.27, 1.0},
        {"Chicago", 41.88, -87.63, 8.5},
        {"StLouis", 38.63, -90.20, 0.6},
        {"Atlanta", 33.75, -84.39, 6.0},
        {"Miami", 25.76, -80.19, 1.8},
        {"Orlando", 28.54, -81.38, 0.6},
        {"WashingtonDC", 38.91, -77.04, 7.0},
        {"Philadelphia", 39.95, -75.17, 1.5},
        {"NewYork", 40.71, -74.01, 11.0},
        {"Boston", 42.36, -71.06, 2.2},
        {"Newark", 40.74, -74.17, 4.5},
    };
    Topology t;
    for (const City& c : cities) {
        Pop p;
        p.name = c.name;
        p.latitude = c.lat;
        p.longitude = c.lon;
        p.weight = c.weight;
        t.add_pop(std::move(p));
    }
    const std::size_t n = t.pop_count();

    // All unordered pairs sorted by great-circle distance.
    struct Cand {
        std::size_t a;
        std::size_t b;
        double km;
    };
    std::vector<Cand> cands;
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
            cands.push_back({a, b, great_circle_km(t.pop(a), t.pop(b))});
        }
    }
    std::sort(cands.begin(), cands.end(),
              [](const Cand& x, const Cand& y) { return x.km < y.km; });

    constexpr std::size_t target_edges = 117;  // -> 234 directed core links
    std::vector<std::vector<bool>> used(n, std::vector<bool>(n, false));
    std::vector<std::size_t> degree(n, 0);
    std::size_t edges = 0;

    // Pass 1: spanning connectivity via Kruskal on distance.
    std::vector<std::size_t> comp(n);
    for (std::size_t i = 0; i < n; ++i) comp[i] = i;
    auto find = [&comp](std::size_t x) {
        while (comp[x] != x) x = comp[x] = comp[comp[x]];
        return x;
    };
    auto add_edge = [&](std::size_t a, std::size_t b) {
        const double cap = great_circle_km(t.pop(a), t.pop(b)) > 1500.0
                               ? 10000.0
                               : 2500.0;
        connect(t, a, b, cap);
        used[a][b] = used[b][a] = true;
        ++degree[a];
        ++degree[b];
        ++edges;
    };
    for (const Cand& c : cands) {
        if (find(c.a) != find(c.b)) {
            comp[find(c.a)] = find(c.b);
            add_edge(c.a, c.b);
        }
    }
    // Pass 2: densify with shortest remaining pairs under a degree cap,
    // mimicking rich metro interconnect plus long-haul express routes.
    constexpr std::size_t degree_cap = 12;
    for (const Cand& c : cands) {
        if (edges >= target_edges) break;
        if (used[c.a][c.b]) continue;
        if (degree[c.a] >= degree_cap || degree[c.b] >= degree_cap) continue;
        add_edge(c.a, c.b);
    }
    // Pass 3 (safety): if the degree cap starved us, relax it.
    for (const Cand& c : cands) {
        if (edges >= target_edges) break;
        if (used[c.a][c.b]) continue;
        add_edge(c.a, c.b);
    }
    if (t.link_count() != 284 || t.pop_count() != 25) {
        throw std::logic_error("us_backbone: dimension drift");
    }
    return t;
}

Topology tiny_backbone() {
    const City cities[] = {
        {"A", 0.0, 0.0, 2.0},
        {"B", 0.0, 3.0, 1.0},
        {"C", 3.0, 0.0, 1.5},
        {"D", 3.0, 3.0, 0.5},
    };
    Topology t;
    for (const City& c : cities) {
        Pop p;
        p.name = c.name;
        p.latitude = c.lat;
        p.longitude = c.lon;
        p.weight = c.weight;
        t.add_pop(std::move(p));
    }
    connect(t, 0, 1, 2500.0);
    connect(t, 0, 2, 2500.0);
    connect(t, 1, 3, 2500.0);
    connect(t, 2, 3, 2500.0);
    connect(t, 0, 3, 10000.0);
    return t;
}

Topology generated_backbone(std::size_t pops, double avg_core_degree,
                            unsigned seed) {
    if (pops < 2) {
        throw std::invalid_argument("generated_backbone: need >= 2 PoPs");
    }
    if (avg_core_degree < 1.0) {
        throw std::invalid_argument(
            "generated_backbone: average core degree must be >= 1");
    }
    std::mt19937_64 rng(0x9e3779b97f4a7c15ULL ^ seed);
    std::uniform_real_distribution<double> jitter(-1.2, 1.2);

    // PoPs on a jittered continental grid (a US-like lat/lon box).
    const std::size_t grid_cols = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(pops))));
    const std::size_t grid_rows = (pops + grid_cols - 1) / grid_cols;
    const double lat_lo = 26.0, lat_hi = 48.0;
    const double lon_lo = -122.0, lon_hi = -72.0;

    // Zipf-like hub hierarchy over a shuffled rank assignment: the
    // heavy PoPs land at deterministic-but-scattered grid positions
    // instead of clustering in one corner.
    std::vector<std::size_t> rank_of(pops);
    for (std::size_t i = 0; i < pops; ++i) rank_of[i] = i;
    std::shuffle(rank_of.begin(), rank_of.end(), rng);

    Topology t;
    for (std::size_t i = 0; i < pops; ++i) {
        const std::size_t gr = i / grid_cols;
        const std::size_t gc = i % grid_cols;
        Pop p;
        p.name = "G" + std::to_string(i);
        p.latitude = lat_lo +
                     (lat_hi - lat_lo) * (static_cast<double>(gr) + 0.5) /
                         static_cast<double>(grid_rows) +
                     jitter(rng);
        p.longitude = lon_lo +
                      (lon_hi - lon_lo) * (static_cast<double>(gc) + 0.5) /
                          static_cast<double>(grid_cols) +
                      jitter(rng);
        // w ~ 1/(rank+1)^0.9, scaled so the top hub is ~an order of
        // magnitude heavier than the median PoP (the paper's "limited
        // subset of nodes carries most traffic").
        p.weight =
            12.0 / std::pow(static_cast<double>(rank_of[i]) + 1.0, 0.9);
        t.add_pop(std::move(p));
    }

    // All unordered pairs by great-circle distance, as in us_backbone().
    struct Cand {
        std::size_t a;
        std::size_t b;
        double km;
    };
    std::vector<Cand> cands;
    cands.reserve(pops * (pops - 1) / 2);
    for (std::size_t a = 0; a < pops; ++a) {
        for (std::size_t b = a + 1; b < pops; ++b) {
            cands.push_back({a, b, great_circle_km(t.pop(a), t.pop(b))});
        }
    }
    std::sort(cands.begin(), cands.end(), [](const Cand& x, const Cand& y) {
        return x.km != y.km ? x.km < y.km
                            : (x.a != y.a ? x.a < y.a : x.b < y.b);
    });

    const std::size_t target_edges = std::max<std::size_t>(
        pops - 1,
        static_cast<std::size_t>(
            std::llround(avg_core_degree * static_cast<double>(pops) / 2.0)));
    std::vector<std::vector<bool>> used(pops, std::vector<bool>(pops, false));
    std::vector<std::size_t> degree(pops, 0);
    std::size_t edges = 0;
    auto add_edge = [&](std::size_t a, std::size_t b) {
        const double cap = great_circle_km(t.pop(a), t.pop(b)) > 1500.0
                               ? 10000.0
                               : 2500.0;
        connect(t, a, b, cap);
        used[a][b] = used[b][a] = true;
        ++degree[a];
        ++degree[b];
        ++edges;
    };

    // Pass 1: spanning connectivity via Kruskal on distance.
    std::vector<std::size_t> comp(pops);
    for (std::size_t i = 0; i < pops; ++i) comp[i] = i;
    auto find = [&comp](std::size_t x) {
        while (comp[x] != x) x = comp[x] = comp[comp[x]];
        return x;
    };
    for (const Cand& c : cands) {
        if (find(c.a) != find(c.b)) {
            comp[find(c.a)] = find(c.b);
            add_edge(c.a, c.b);
        }
    }

    // Pass 2: long-haul express chords between the heaviest hubs (ranks
    // 0..kHubs-1), richly meshing the traffic concentrators the way
    // operators overlay express waves between major metros.
    const std::size_t hubs = std::min<std::size_t>(
        std::max<std::size_t>(3, pops / 16), 12);
    std::vector<std::size_t> hub_pop;
    for (std::size_t i = 0; i < pops; ++i) {
        if (rank_of[i] < hubs) hub_pop.push_back(i);
    }
    for (std::size_t x = 0; x < hub_pop.size() && edges < target_edges;
         ++x) {
        for (std::size_t y = x + 1;
             y < hub_pop.size() && edges < target_edges; ++y) {
            if (!used[hub_pop[x]][hub_pop[y]]) {
                add_edge(hub_pop[x], hub_pop[y]);
            }
        }
    }

    // Pass 3: densify with the shortest remaining pairs under a degree
    // cap; pass 4 relaxes the cap if it starved the target.
    const std::size_t degree_cap = std::max<std::size_t>(
        6, static_cast<std::size_t>(std::llround(3.0 * avg_core_degree)));
    for (const Cand& c : cands) {
        if (edges >= target_edges) break;
        if (used[c.a][c.b]) continue;
        if (degree[c.a] >= degree_cap || degree[c.b] >= degree_cap) continue;
        add_edge(c.a, c.b);
    }
    for (const Cand& c : cands) {
        if (edges >= target_edges) break;
        if (used[c.a][c.b]) continue;
        add_edge(c.a, c.b);
    }
    return t;
}

Topology random_backbone(std::size_t pops, double avg_core_degree,
                         unsigned seed) {
    if (pops < 2) {
        throw std::invalid_argument("random_backbone: need >= 2 PoPs");
    }
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> lat(25.0, 60.0);
    std::uniform_real_distribution<double> lon(-120.0, 20.0);
    std::uniform_real_distribution<double> weight(0.3, 3.0);

    Topology t;
    for (std::size_t i = 0; i < pops; ++i) {
        Pop p;
        p.name = "P" + std::to_string(i);
        p.latitude = lat(rng);
        p.longitude = lon(rng);
        p.weight = weight(rng);
        t.add_pop(std::move(p));
    }
    // Random spanning tree: connect node i to a random predecessor.
    for (std::size_t i = 1; i < pops; ++i) {
        std::uniform_int_distribution<std::size_t> pick(0, i - 1);
        connect(t, i, pick(rng), 10000.0);
    }
    // Extra chords to reach the requested average degree.
    const std::size_t want_edges = static_cast<std::size_t>(
        std::max<double>(static_cast<double>(pops - 1),
                         avg_core_degree * static_cast<double>(pops) / 2.0));
    std::vector<std::vector<bool>> used(pops, std::vector<bool>(pops, false));
    for (std::size_t lid : t.core_links()) {
        const Link& l = t.link(lid);
        used[l.src][l.dst] = used[l.dst][l.src] = true;
    }
    std::size_t edges = pops - 1;
    std::uniform_int_distribution<std::size_t> pick(0, pops - 1);
    std::size_t attempts = 0;
    while (edges < want_edges && attempts < 100 * want_edges) {
        ++attempts;
        const std::size_t a = pick(rng);
        const std::size_t b = pick(rng);
        if (a == b || used[a][b]) continue;
        connect(t, a, b, 10000.0);
        used[a][b] = used[b][a] = true;
        ++edges;
    }
    return t;
}

}  // namespace tme::topology
