#include "core/wcb.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "test_helpers.hpp"

namespace tme::core {
namespace {

using testing::SmallNetwork;
using testing::tiny_network;

TEST(Wcb, BoundsBracketTruth) {
    const SmallNetwork net = tiny_network(3);
    const WcbResult r = worst_case_bounds(net.snapshot());
    EXPECT_EQ(r.failures, 0u);
    for (std::size_t p = 0; p < net.truth.size(); ++p) {
        EXPECT_LE(r.lower[p], net.truth[p] + 1e-6) << "pair " << p;
        EXPECT_GE(r.upper[p], net.truth[p] - 1e-6) << "pair " << p;
        EXPECT_LE(r.lower[p], r.upper[p] + 1e-9);
    }
}

TEST(Wcb, UpperBoundedByPathLinkLoads) {
    // No demand can exceed the smallest load among its links.
    const SmallNetwork net = tiny_network(5);
    const SnapshotProblem snap = net.snapshot();
    const WcbResult r = worst_case_bounds(snap);
    for (std::size_t p = 0; p < net.truth.size(); ++p) {
        double min_load = 1e300;
        for (std::size_t l = 0; l < snap.loads.size(); ++l) {
            if (net.routing.at(l, p) > 0.0) {
                min_load = std::min(min_load, snap.loads[l]);
            }
        }
        EXPECT_LE(r.upper[p], min_load + 1e-6);
    }
}

TEST(Wcb, MidpointIsAverage) {
    const SmallNetwork net = tiny_network(2);
    const WcbResult r = worst_case_bounds(net.snapshot());
    for (std::size_t p = 0; p < net.truth.size(); ++p) {
        EXPECT_NEAR(r.midpoint[p], 0.5 * (r.lower[p] + r.upper[p]), 1e-9);
    }
}

TEST(Wcb, SubsetOnlyComputesRequestedPairs) {
    const SmallNetwork net = tiny_network();
    const WcbResult r = worst_case_bounds(net.snapshot(), {}, {0, 3});
    EXPECT_EQ(r.lps_solved, 4u);
    // Unrequested pairs keep the trivial bounds.
    EXPECT_EQ(r.lower[1], 0.0);
    EXPECT_TRUE(std::isinf(r.upper[1]));
    EXPECT_FALSE(std::isinf(r.upper[0]));
}

TEST(Wcb, WarmStartAgreesWithColdStart) {
    const SmallNetwork net = tiny_network(4);
    WcbOptions cold;
    cold.warm_start = false;
    WcbOptions warm;
    warm.warm_start = true;
    const WcbResult a = worst_case_bounds(net.snapshot(), cold);
    const WcbResult b = worst_case_bounds(net.snapshot(), warm);
    for (std::size_t p = 0; p < net.truth.size(); ++p) {
        EXPECT_NEAR(a.lower[p], b.lower[p], 1e-6);
        EXPECT_NEAR(a.upper[p], b.upper[p], 1e-6);
    }
    // Warm starting must save simplex iterations overall.
    EXPECT_LT(b.simplex_iterations, a.simplex_iterations);
}

TEST(Wcb, ExactlyDeterminedDemandHasTightBounds) {
    // Two PoPs, one pair each way: the single demand equals the edge
    // loads, so lower == upper.
    topology::Topology t;
    t.add_pop({"A", 0.0, 0.0, 1.0, topology::PopRole::access});
    t.add_pop({"B", 1.0, 0.0, 1.0, topology::PopRole::access});
    t.add_core_link_pair(0, 1, 100.0, 1.0);
    SmallNetwork net;
    net.topo = std::move(t);
    net.routing = routing::igp_routing_matrix(net.topo);
    net.truth = {2.5, 1.5};
    const WcbResult r = worst_case_bounds(net.snapshot());
    for (std::size_t p = 0; p < 2; ++p) {
        EXPECT_NEAR(r.lower[p], net.truth[p], 1e-8);
        EXPECT_NEAR(r.upper[p], net.truth[p], 1e-8);
    }
}

TEST(Wcb, MidpointPriorBeatsNothing) {
    // The midpoint prior should be a sane estimate: finite MRE and
    // correlated with the truth.
    const SmallNetwork net = tiny_network(8);
    const WcbResult r = worst_case_bounds(net.snapshot());
    const double mre = mre_at_coverage(net.truth, r.midpoint, 0.9);
    EXPECT_LT(mre, 1.0);
}

}  // namespace
}  // namespace tme::core
