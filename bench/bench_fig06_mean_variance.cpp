// Figure 6: the mean-variance scaling law Var{s_p} = phi * lambda_p^c on
// busy-period 5-minute samples.
#include "bench_common.hpp"

#include <cmath>

#include "linalg/stats.hpp"

namespace {

void fit(const tme::scenario::Scenario& sc, double paper_c) {
    using namespace tme;
    std::vector<linalg::Vector> window(
        sc.demands.begin() + static_cast<std::ptrdiff_t>(sc.busy_start),
        sc.demands.begin() +
            static_cast<std::ptrdiff_t>(sc.busy_start + sc.busy_length));
    const linalg::Vector mean = linalg::sample_mean(window);
    linalg::Vector var(mean.size());
    for (std::size_t p = 0; p < mean.size(); ++p) {
        linalg::Vector xs(window.size());
        for (std::size_t k = 0; k < window.size(); ++k) xs[k] = window[k][p];
        var[p] = linalg::variance(xs);
    }
    const linalg::ScalingLawFit f = linalg::fit_scaling_law(mean, var);
    std::printf("\n%s: fitted Var = %.3g * mean^%.2f  (r^2 = %.3f, %zu "
                "demands; paper c = %.1f)\n",
                sc.name.c_str(), f.phi, f.c, f.r_squared, f.points_used,
                paper_c);
    // Log-log scatter, decade-bucketed.
    std::printf("%14s %14s %14s %6s\n", "mean decade", "median var",
                "law prediction", "count");
    for (double lo = 1e-6; lo < 1.0; lo *= 10.0) {
        linalg::Vector bucket;
        double mean_mid = 0.0;
        for (std::size_t p = 0; p < mean.size(); ++p) {
            if (mean[p] >= lo && mean[p] < lo * 10.0 && var[p] > 0.0) {
                bucket.push_back(var[p]);
                mean_mid += mean[p];
            }
        }
        if (bucket.empty()) continue;
        mean_mid /= static_cast<double>(bucket.size());
        const double med = linalg::quantile(bucket, 0.5);
        std::printf("%8.0e-%5.0e %14.3e %14.3e %6zu\n", lo, lo * 10.0, med,
                    f.phi * std::pow(mean_mid, f.c), bucket.size());
    }
}

}  // namespace

int main() {
    tme::bench::header(
        "Figure 6 - mean-variance scaling law",
        "Fig. 6: Var = phi*lambda^c; phi=0.82,c=1.6 (EU); "
        "phi=2.44,c=1.5 (US)",
        "tight log-log fit over >= 5 decades with c between 1.4 and 1.7 "
        "(phi depends on the normalization unit)");
    fit(tme::bench::europe(), 1.6);
    fit(tme::bench::usa(), 1.5);
    return 0;
}
