// Per-thread span tracing with Chrome trace_event export.
//
// Span model: an obs::Span is an RAII scope — construction stamps a
// start time, destruction stamps the end and pushes one fixed-size
// record into the *current thread's* ring buffer.  Records never cross
// threads at write time, so the hot path is two steady_clock reads,
// a relaxed head bump, and a 64-byte store: no locks, no allocation.
// Nesting is implicit (a child span's [start, end] interval is
// contained in its parent's, and Perfetto/chrome://tracing reconstruct
// the stack from containment of "X" complete events).
//
// Span names must be string literals or other static storage — records
// keep the pointer, not a copy.  The convention is "layer/detail"
// ("solver/entropy", "cache/acquire"); the export splits on the first
// '/' to populate the trace category.
//
// Cost model and toggles:
//   - TME_TRACING=0 at compile time turns Span into an empty struct
//     and Tracer::enabled() into `false` — zero code on the hot path.
//   - Compiled in but runtime-disabled (the default), each span site
//     costs one relaxed atomic load.
//   - Enabled, a span costs ~100ns; bench_perf_engine gates the total
//     against its overhead budget (<1% disabled, <5% enabled).
//
// Draining (chrome_trace()/write_chrome_trace()) walks every thread
// ring including those of exited threads (buffers are shared_ptr-kept
// in a registry).  Drain at quiescence — after joins / engine drain —
// since in-flight writers are not synchronized against the reader
// beyond the relaxed head counter.  Rings are fixed-size; on overflow
// the oldest records are overwritten and counted as dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/json.hpp"

#if !defined(TME_TRACING)
#define TME_TRACING 0
#endif

namespace tme::obs {

/// True when span support is compiled in (TME_TRACING).  Tests use
/// this to skip trace-content assertions in compiled-out builds.
constexpr bool tracing_compiled() { return TME_TRACING != 0; }

namespace detail {
#if TME_TRACING
inline std::atomic<bool> g_trace_enabled{false};
#endif
}  // namespace detail

class Tracer {
  public:
    static Tracer& instance();

    /// Hot-path check: one relaxed load when compiled in, constant
    /// false otherwise (span sites fold away entirely).
    static bool enabled() {
#if TME_TRACING
        return detail::g_trace_enabled.load(std::memory_order_relaxed);
#else
        return false;
#endif
    }
    /// Runtime toggle.  No-op when tracing is compiled out.
    void set_enabled(bool on);

    /// Total spans recorded (including any since overwritten) and
    /// dropped to ring overflow, across all threads ever registered.
    std::uint64_t recorded() const;
    std::uint64_t dropped() const;

    /// Discard all recorded spans (rings keep their threads).  Call at
    /// quiescence only, like the drains below.
    void clear();

    /// Drain every thread ring into a Chrome trace_event document:
    /// {"traceEvents": [{"ph":"X","name",...}, ...]}.  Call at
    /// quiescence.
    Json chrome_trace() const;
    /// chrome_trace() written to `path` (compact JSON).  Returns false
    /// if the file cannot be written.
    bool write_chrome_trace(const std::string& path) const;

    /// Nanoseconds since tracer construction (monotonic).
    static std::uint64_t now_ns();

    /// Opaque implementation handle — incomplete outside trace.cpp.
    struct Impl;
    Impl& impl() const { return *impl_; }

  private:
    Tracer();
    Impl* impl_;
};

/// Re-entrant runtime enable for benches/tests: flips tracing on (or
/// off) for the scope and restores the previous state on exit.
class ScopedTracing {
  public:
    explicit ScopedTracing(bool on = true) : previous_(Tracer::enabled()) {
        Tracer::instance().set_enabled(on);
    }
    ~ScopedTracing() { Tracer::instance().set_enabled(previous_); }
    ScopedTracing(const ScopedTracing&) = delete;
    ScopedTracing& operator=(const ScopedTracing&) = delete;

  private:
    bool previous_;
};

class Span {
  public:
    /// `name` must point to static storage (string literal,
    /// method_name(), ...).
    explicit Span(const char* name) {
        if (Tracer::enabled()) begin(name);
    }
    Span(const char* name, const char* key, long long value) {
        if (Tracer::enabled()) {
            begin(name);
            arg(key, value);
        }
    }
    Span(const char* name, const char* key1, long long value1,
         const char* key2, long long value2) {
        if (Tracer::enabled()) {
            begin(name);
            arg(key1, value1);
            arg(key2, value2);
        }
    }
    ~Span() {
        if (active_) end();
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Attach a numeric argument (at most 2 per span; extras are
    /// silently ignored).  Keys must be static storage, like names.
    /// No-op when the span is inactive, so callers never need their
    /// own enabled() guard.
    void arg(const char* key, long long value) {
        if (!active_) return;
        for (int i = 0; i < 2; ++i) {
            if (arg_key_[i] == nullptr) {
                arg_key_[i] = key;
                arg_value_[i] = value;
                return;
            }
        }
    }

    bool active() const { return active_; }

  private:
    void begin(const char* name);
    void end();

    const char* name_ = nullptr;
    std::uint64_t start_ns_ = 0;
    const char* arg_key_[2] = {nullptr, nullptr};
    long long arg_value_[2] = {0, 0};
    bool active_ = false;
};

}  // namespace tme::obs
