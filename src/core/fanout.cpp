#include "core/fanout.hpp"

#include <cmath>
#include <stdexcept>

#include "check/contract.hpp"
#include "check/validators.hpp"
#include "linalg/qp.hpp"

namespace tme::core {

namespace {

// w_k[p] = te(src(p))[k]: per-pair source totals from the ingress rows.
linalg::Vector pair_source_totals(const topology::Topology& topo,
                                  const linalg::Vector& loads) {
    linalg::Vector w(topo.pair_count(), 0.0);
    for (std::size_t p = 0; p < topo.pair_count(); ++p) {
        const auto [src, dst] = topo.pair_nodes(p);
        (void)dst;
        w[p] = loads[topo.ingress_link(src)];
    }
    return w;
}

}  // namespace

FanoutConstraints FanoutConstraints::build(const topology::Topology& topo) {
    FanoutConstraints c;
    const std::size_t pairs = topo.pair_count();
    const std::size_t nodes = topo.pop_count();
    c.source_of.resize(pairs);
    std::vector<linalg::Triplet> trips;
    trips.reserve(pairs);
    for (std::size_t p = 0; p < pairs; ++p) {
        const std::size_t src = topo.pair_nodes(p).first;
        c.source_of[p] = src;
        trips.push_back({src, p, 1.0});
    }
    c.equality_sparse = linalg::SparseMatrix(nodes, pairs, std::move(trips));
    c.rhs.assign(nodes, 1.0);
    return c;
}

FanoutResult fanout_estimate(const SeriesProblem& problem,
                             const FanoutOptions& options) {
    problem.validate_with_topology();
    const topology::Topology& topo = *problem.topo;
    const linalg::SparseMatrix& r = *problem.routing;
    const std::size_t pairs = r.cols();
    const std::size_t nodes = topo.pop_count();
    const std::size_t window = problem.loads.size();

    const FanoutWindowAggregates& agg = options.aggregates;
    if (!agg.complete() && !agg.empty()) {
        throw std::invalid_argument(
            "fanout_estimate: window aggregates must be supplied together");
    }
    if (agg.complete() &&
        (agg.source_outer->rows() != nodes ||
         agg.source_outer->cols() != nodes ||
         agg.weighted_rhs->size() != pairs ||
         agg.mean_loads->size() != r.rows())) {
        throw std::invalid_argument(
            "fanout_estimate: aggregate dimension mismatch");
    }

    // Sparse Gram G1 = R'R in CSR form, shared per routing epoch by the
    // engine, derived locally otherwise.  The dense P x P Gram the
    // pre-factored path weighted element-by-element is never built.
    linalg::SparseMatrix local_gram;
    if (options.operator_form) {
        // Gram-free: the data term is applied through R and R' below;
        // g1 stays empty and every use of it is guarded.
    } else if (options.shared_sparse_gram != nullptr) {
        if (options.shared_sparse_gram->rows() != pairs ||
            options.shared_sparse_gram->cols() != pairs) {
            throw std::invalid_argument(
                "fanout_estimate: shared gram dimension mismatch");
        }
    } else {
        local_gram = linalg::gram_sparse_csr(r);
    }
    const linalg::SparseMatrix& g1 = options.shared_sparse_gram != nullptr
                                         ? *options.shared_sparse_gram
                                         : local_gram;
    const linalg::CsrView gv = g1.view();
    const std::size_t gnnz = g1.nonzeros();

    // Equality-constraint structure (per source, fanouts sum to one):
    // shared per routing epoch by the engine, derived locally otherwise.
    FanoutConstraints local_constraints;
    if (options.shared_constraints != nullptr) {
        if (options.shared_constraints->source_of.size() != pairs ||
            options.shared_constraints->equality_sparse.rows() != nodes ||
            options.shared_constraints->equality_sparse.cols() != pairs) {
            throw std::invalid_argument(
                "fanout_estimate: shared constraints dimension mismatch");
        }
    } else {
        local_constraints = FanoutConstraints::build(topo);
    }
    const FanoutConstraints& constraints =
        options.shared_constraints != nullptr ? *options.shared_constraints
                                              : local_constraints;

    // Factored data term H = sum_k W_k G1 W_k: G1's CSR structure with
    // per-entry source weights — H(p, q) = (sum_k w_k[p] w_k[q]) G1(p, q)
    // and the weight only depends on the source nodes of p and q.  Each
    // value multiplies exactly as the dense assembly did (same products,
    // same accumulation order over the window), so the factored values
    // are the dense H's entries bit-for-bit; only the P x P container is
    // gone.
    std::vector<double> hvals(gnnz, 0.0);
    linalg::Vector f(pairs, 0.0);
    const std::vector<std::size_t>& source_of = constraints.source_of;
    if (agg.complete()) {
        if (!options.operator_form) {
            const linalg::Matrix& outer = *agg.source_outer;
            for (std::size_t p = 0; p < pairs; ++p) {
                const double* __restrict orow =
                    outer.row_data(source_of[p]);
                for (std::size_t t = gv.offsets[p]; t < gv.offsets[p + 1];
                     ++t) {
                    hvals[t] =
                        orow[source_of[gv.col_index[t]]] * gv.values[t];
                }
            }
        }
        f = *agg.weighted_rhs;
    } else {
        linalg::Vector rt;
        for (std::size_t k = 0; k < window; ++k) {
            const linalg::Vector w =
                pair_source_totals(topo, problem.loads[k]);
            r.multiply_transpose_into(problem.loads[k], rt);
            for (std::size_t p = 0; p < pairs; ++p) {
                f[p] += w[p] * rt[p];
                if (options.operator_form || w[p] == 0.0) continue;
                const double wp = w[p];
                for (std::size_t t = gv.offsets[p]; t < gv.offsets[p + 1];
                     ++t) {
                    hvals[t] += wp * w[gv.col_index[t]] * gv.values[t];
                }
            }
        }
    }

    // Operator-form precomputation: the routing transpose (epoch-cached
    // or derived), the G1 diagonal replayed from R's column supports,
    // the source-totals outer matrix (from the aggregates, or locally —
    // nodes x nodes, never pairs-quadratic), and the per-sample window
    // factors the Hessian applies run through.
    linalg::SparseMatrix rt_local;
    const linalg::SparseMatrix* rtp = nullptr;
    linalg::Matrix local_outer;
    const linalg::Matrix* outer_ptr = nullptr;
    std::vector<linalg::Vector> window_w;
    linalg::Vector d1;
    if (options.operator_form) {
        if (options.shared_routing_transpose != nullptr) {
            if (options.shared_routing_transpose->rows() != pairs ||
                options.shared_routing_transpose->cols() != r.rows()) {
                throw std::invalid_argument(
                    "fanout_estimate: shared routing transpose dimension "
                    "mismatch");
            }
            rtp = options.shared_routing_transpose;
        } else {
            rt_local = linalg::transpose(r);
            rtp = &rt_local;
        }
        const linalg::CsrView rtv = rtp->view();
        // G1(p, p) = sum of squares over column p's carriers, source
        // rows ascending — the Gram kernels' diagonal accumulation.
        d1.assign(pairs, 0.0);
        for (std::size_t p = 0; p < pairs; ++p) {
            double dp = 0.0;
            for (std::size_t t = rtv.offsets[p]; t < rtv.offsets[p + 1];
                 ++t) {
                dp += rtv.values[t] * rtv.values[t];
            }
            d1[p] = dp;
        }
        if (agg.complete()) {
            outer_ptr = agg.source_outer;
        } else {
            // nodes x nodes, not pairs x pairs: 2 MB at 500 PoPs.
            // lint: allow(dense-alloc)
            local_outer = linalg::Matrix(nodes, nodes, 0.0);
            for (std::size_t k = 0; k < window; ++k) {
                for (std::size_t n1 = 0; n1 < nodes; ++n1) {
                    const double te1 =
                        problem.loads[k][topo.ingress_link(n1)];
                    if (te1 == 0.0) continue;
                    double* __restrict orow = local_outer.row_data(n1);
                    for (std::size_t n2 = 0; n2 < nodes; ++n2) {
                        orow[n2] +=
                            te1 * problem.loads[k][topo.ingress_link(n2)];
                    }
                }
            }
            outer_ptr = &local_outer;
        }
        window_w.reserve(window);
        for (std::size_t k = 0; k < window; ++k) {
            window_w.push_back(
                pair_source_totals(topo, problem.loads[k]));
        }
    }

    // Weak gravity-fanout tie-break (see FanoutOptions): alpha_gravity
    // for pair (n, m) is the destination's share of mean exit traffic.
    // The ridge lives in the factored Hessian's added diagonal — the
    // weighted Gram values stay untouched.
    linalg::Vector tiebreak_diag;
    if (options.gravity_tiebreak_weight > 0.0) {
        linalg::Vector mean_loads(r.rows(), 0.0);
        if (agg.complete()) {
            mean_loads = *agg.mean_loads;
        } else {
            for (const linalg::Vector& t : problem.loads) {
                linalg::axpy(1.0, t, mean_loads);
            }
            linalg::scale(1.0 / static_cast<double>(window), mean_loads);
        }
        double total_exit = 0.0;
        for (std::size_t m = 0; m < nodes; ++m) {
            total_exit += mean_loads[topo.egress_link(m)];
        }
        double hmax = 0.0;
        if (options.operator_form) {
            // Same scan over the same diagonal values — H(p, p) is the
            // product the weighted-CSR assembly stores at the diagonal
            // slot (structurally absent diagonals scan as 0, which
            // cannot move the max of nonnegative values).
            const linalg::Matrix& outer = *outer_ptr;
            for (std::size_t p = 0; p < pairs; ++p) {
                hmax = std::max(
                    hmax, outer(source_of[p], source_of[p]) * d1[p]);
            }
        } else {
            for (std::size_t p = 0; p < pairs; ++p) {
                for (std::size_t t = gv.offsets[p]; t < gv.offsets[p + 1];
                     ++t) {
                    if (gv.col_index[t] == p) {
                        hmax = std::max(hmax, hvals[t]);
                        break;
                    }
                    if (gv.col_index[t] > p) break;
                }
            }
        }
        const double eps =
            options.gravity_tiebreak_weight * std::max(hmax, 1e-300);
        tiebreak_diag.assign(pairs, eps);
        for (std::size_t p = 0; p < pairs; ++p) {
            const auto [src, dst] = topo.pair_nodes(p);
            (void)src;
            const double alpha_gravity =
                total_exit > 0.0
                    ? mean_loads[topo.egress_link(dst)] / total_exit
                    : 0.0;
            f[p] += eps * alpha_gravity;
        }
    }

    linalg::EqQpNonnegOptions qp_options = options.qp;
    qp_options.equality_operator = nullptr;
    qp_options.warm_start = nullptr;
    if (options.warm_start != nullptr) {
        if (options.warm_start->size() != pairs) {
            throw std::invalid_argument(
                "fanout_estimate: warm start size mismatch");
        }
        qp_options.warm_start = options.warm_start;
    }
    linalg::EqQpNonnegResult qp;
    if (options.operator_form) {
        const linalg::CsrView rv = r.view();
        const linalg::CsrView rtv = rtp->view();
        const linalg::Matrix& outer = *outer_ptr;
        linalg::Vector ubuf(pairs, 0.0);
        linalg::Vector vbuf(r.rows(), 0.0);
        linalg::Vector zbuf(pairs, 0.0);
        linalg::HessianOperator hessian_op;
        hessian_op.dimension = pairs;
        // H x = sum_k W_k R' R W_k x: one R / R' product per window
        // sample — O(nnz * window) per apply, rank-(window) structure
        // exploited instead of the quadratic weighted Gram.
        hessian_op.apply = [&](const linalg::Vector& x,
                               linalg::Vector& y) {
            y.assign(pairs, 0.0);
            for (const linalg::Vector& wk : window_w) {
                for (std::size_t p = 0; p < pairs; ++p) {
                    ubuf[p] = wk[p] * x[p];
                }
                r.multiply_into(ubuf, vbuf);
                r.multiply_transpose_into(vbuf, zbuf);
                for (std::size_t p = 0; p < pairs; ++p) {
                    y[p] += wk[p] * zbuf[p];
                }
            }
        };
        hessian_op.diag = [&](linalg::Vector& out) {
            for (std::size_t p = 0; p < pairs; ++p) {
                out[p] = outer(source_of[p], source_of[p]) * d1[p];
            }
        };
        // Row j = source-weighted Gram column: the generated G1 values
        // and the per-entry products are the weighted-CSR assembly's,
        // bit-for-bit.
        hessian_op.column = [&](std::size_t j,
                                std::vector<double>& scratch,
                                std::vector<std::size_t>& support) {
            linalg::gram_column(rv, rtv, j, scratch.data(), support);
            const double* __restrict orow = outer.row_data(source_of[j]);
            for (const std::size_t q : support) {
                scratch[q] = orow[source_of[q]] * scratch[q];
            }
        };
        hessian_op.diagonal =
            tiebreak_diag.empty() ? nullptr : &tiebreak_diag;
        qp = linalg::solve_eq_qp_nonneg_operator(
            hessian_op, f, constraints.equality_sparse, constraints.rhs,
            qp_options);
    } else {
        linalg::FactoredHessian hessian;
        hessian.matrix = {pairs, pairs, gv.offsets, gv.col_index,
                          hvals.data()};
        hessian.diagonal =
            tiebreak_diag.empty() ? nullptr : &tiebreak_diag;
        qp = linalg::solve_eq_qp_nonneg_factored(
            hessian, f, constraints.equality_sparse, constraints.rhs,
            qp_options);
    }

    FanoutResult result;
    result.fanouts = qp.x;
    result.equality_violation = qp.equality_violation;
    result.qp_iterations = qp.iterations;
    result.qp_cg_iterations = qp.cg_iterations;
    result.warm_accepted = qp.warm_accepted;

    // Window-averaged demand estimate.  w_k is linear in the loads, so
    // the mean over samples equals the value at the mean loads.
    result.mean_demands.assign(pairs, 0.0);
    if (agg.complete()) {
        const linalg::Vector mean_w =
            pair_source_totals(topo, *agg.mean_loads);
        for (std::size_t p = 0; p < pairs; ++p) {
            result.mean_demands[p] = result.fanouts[p] * mean_w[p];
        }
    } else {
        for (std::size_t k = 0; k < window; ++k) {
            const linalg::Vector w =
                pair_source_totals(topo, problem.loads[k]);
            for (std::size_t p = 0; p < pairs; ++p) {
                result.mean_demands[p] += result.fanouts[p] * w[p];
            }
        }
        for (double& v : result.mean_demands) {
            v /= static_cast<double>(window);
        }
    }
    TME_CONTRACT_DBG_CHECK(check::solver_boundary(
        "fanout_estimate", result.mean_demands,
        /*require_nonnegative=*/true));
    return result;
}

linalg::Vector demands_from_fanout_snapshot(const SnapshotProblem& problem,
                                            const linalg::Vector& fanouts) {
    problem.validate_with_topology();
    if (fanouts.size() != problem.topo->pair_count()) {
        throw std::invalid_argument(
            "demands_from_fanout_snapshot: fanout size mismatch");
    }
    const linalg::Vector w = pair_source_totals(*problem.topo,
                                                problem.loads);
    return linalg::hadamard(fanouts, w);
}

}  // namespace tme::core
