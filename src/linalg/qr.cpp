#include "linalg/qr.hpp"

#include <cmath>
#include <stdexcept>

namespace tme::linalg {

Qr::Qr(const Matrix& a) : qr_(a), beta_(a.cols(), 0.0) {
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    if (m < n) {
        throw std::invalid_argument("Qr: requires rows >= cols");
    }
    for (std::size_t k = 0; k < n; ++k) {
        // Build the Householder reflector for column k.
        double norm = 0.0;
        for (std::size_t i = k; i < m; ++i) norm += qr_(i, k) * qr_(i, k);
        norm = std::sqrt(norm);
        if (norm == 0.0) {
            beta_[k] = 0.0;
            continue;
        }
        const double alpha = (qr_(k, k) >= 0.0 ? -norm : norm);
        const double v0 = qr_(k, k) - alpha;
        // v = (v0, a_{k+1,k}, ..., a_{m-1,k}); beta = 2 / v'v.
        double vtv = v0 * v0;
        for (std::size_t i = k + 1; i < m; ++i) vtv += qr_(i, k) * qr_(i, k);
        beta_[k] = (vtv == 0.0 ? 0.0 : 2.0 / vtv);
        qr_(k, k) = v0;
        // Apply the reflector to the remaining columns.
        for (std::size_t j = k + 1; j < n; ++j) {
            double w = 0.0;
            for (std::size_t i = k; i < m; ++i) w += qr_(i, k) * qr_(i, j);
            w *= beta_[k];
            for (std::size_t i = k; i < m; ++i) qr_(i, j) -= w * qr_(i, k);
        }
        // Store R's diagonal entry in place of the annihilated column head.
        // We keep v in the strictly lower part and remember r_kk separately
        // by overwriting after application; here r_kk = alpha.
        // To keep single-array packing, stash alpha and shift v0 out:
        // we store v (unnormalized) below diagonal and alpha on diagonal.
        // Temporarily hold v0 in a side array? Simpler: normalize v so
        // v0 = 1 and scale beta accordingly.
        const double inv_v0 = 1.0 / v0;
        for (std::size_t i = k + 1; i < m; ++i) qr_(i, k) *= inv_v0;
        beta_[k] *= v0 * v0;
        qr_(k, k) = alpha;
    }
}

Vector Qr::q_transpose_mul(const Vector& b) const {
    const std::size_t m = qr_.rows();
    const std::size_t n = qr_.cols();
    if (b.size() != m) {
        throw std::invalid_argument("Qr::q_transpose_mul: size mismatch");
    }
    Vector y = b;
    for (std::size_t k = 0; k < n; ++k) {
        if (beta_[k] == 0.0) continue;
        // v = (1, qr_(k+1,k), ..., qr_(m-1,k))
        double w = y[k];
        for (std::size_t i = k + 1; i < m; ++i) w += qr_(i, k) * y[i];
        w *= beta_[k];
        y[k] -= w;
        for (std::size_t i = k + 1; i < m; ++i) y[i] -= w * qr_(i, k);
    }
    return y;
}

Vector Qr::solve(const Vector& b) const {
    const std::size_t n = qr_.cols();
    Vector y = q_transpose_mul(b);
    Vector x(n, 0.0);
    for (std::size_t ii = n; ii-- > 0;) {
        double v = y[ii];
        for (std::size_t j = ii + 1; j < n; ++j) v -= qr_(ii, j) * x[j];
        const double r = qr_(ii, ii);
        if (r == 0.0) {
            // Rank-deficient column: pick the minimum-norm-ish choice x=0.
            x[ii] = 0.0;
        } else {
            x[ii] = v / r;
        }
    }
    return x;
}

Vector Qr::r_diagonal() const {
    Vector d(qr_.cols());
    for (std::size_t i = 0; i < qr_.cols(); ++i) d[i] = std::abs(qr_(i, i));
    return d;
}

std::size_t Qr::rank(double tol) const {
    const Vector d = r_diagonal();
    double dmax = 0.0;
    for (double v : d) dmax = std::max(dmax, v);
    if (dmax == 0.0) return 0;
    std::size_t r = 0;
    for (double v : d) {
        if (v > tol * dmax) ++r;
    }
    return r;
}

Vector lstsq(const Matrix& a, const Vector& b) { return Qr(a).solve(b); }

}  // namespace tme::linalg
