// Publication glue: engine window completion -> EstimateStore.
//
// make_publisher() turns a store into an engine::WindowSink — the hook
// all three engine flavours expose (OnlineEngine / PipelinedEngine
// via set_window_sink, FleetJob::window_sink per fleet job).  Every
// completed window becomes one published EstimateSnapshot version:
//
//   serve::EstimateStore store;
//   engine.set_window_sink(serve::make_publisher(store));
//   ... ingest ...                    // each window publishes v1, v2, ...
//   serve::Reader reader(store);      // any thread, lock-free
//   auto head = reader.latest();
//
// The sink runs on the engine's completion path (ingest thread /
// pipeline flusher / fleet worker) and is strictly ordered per engine,
// so per-engine stores see monotone window order.  The store tolerates
// several engines publishing into it concurrently (publishes
// serialize), at the cost of interleaved version order.
#pragma once

#include "engine/scheduler.hpp"
#include "serve/store.hpp"

namespace tme::serve {

/// A WindowSink that publishes every completed window into `store`.
/// The store must outlive every engine the sink is attached to.
engine::WindowSink make_publisher(EstimateStore& store);

}  // namespace tme::serve
