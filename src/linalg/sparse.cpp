#include "linalg/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace tme::linalg {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols,
                           std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
    for (const Triplet& t : triplets) {
        if (t.row >= rows || t.col >= cols) {
            throw std::invalid_argument("SparseMatrix: triplet out of range");
        }
    }
    std::sort(triplets.begin(), triplets.end(),
              [](const Triplet& a, const Triplet& b) {
                  return a.row != b.row ? a.row < b.row : a.col < b.col;
              });
    offsets_.assign(rows_ + 1, 0);
    cols_idx_.reserve(triplets.size());
    values_.reserve(triplets.size());
    std::size_t i = 0;
    while (i < triplets.size()) {
        // Sum duplicates.
        std::size_t j = i;
        double v = 0.0;
        while (j < triplets.size() && triplets[j].row == triplets[i].row &&
               triplets[j].col == triplets[i].col) {
            v += triplets[j].value;
            ++j;
        }
        if (v != 0.0) {
            cols_idx_.push_back(triplets[i].col);
            values_.push_back(v);
            ++offsets_[triplets[i].row + 1];
        }
        i = j;
    }
    for (std::size_t r = 0; r < rows_; ++r) offsets_[r + 1] += offsets_[r];
}

SparseMatrix SparseMatrix::from_dense(const Matrix& dense, double drop_tol) {
    std::vector<Triplet> trips;
    for (std::size_t i = 0; i < dense.rows(); ++i) {
        for (std::size_t j = 0; j < dense.cols(); ++j) {
            const double v = dense(i, j);
            if (std::abs(v) > drop_tol) trips.push_back({i, j, v});
        }
    }
    return SparseMatrix(dense.rows(), dense.cols(), std::move(trips));
}

Vector SparseMatrix::multiply(const Vector& x) const {
    if (x.size() != cols_) {
        throw std::invalid_argument("SparseMatrix::multiply: size mismatch");
    }
    Vector y(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
        double acc = 0.0;
        for (std::size_t k = offsets_[i]; k < offsets_[i + 1]; ++k) {
            acc += values_[k] * x[cols_idx_[k]];
        }
        y[i] = acc;
    }
    return y;
}

Vector SparseMatrix::multiply_transpose(const Vector& x) const {
    if (x.size() != rows_) {
        throw std::invalid_argument(
            "SparseMatrix::multiply_transpose: size mismatch");
    }
    Vector y(cols_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
        const double xi = x[i];
        if (xi == 0.0) continue;
        for (std::size_t k = offsets_[i]; k < offsets_[i + 1]; ++k) {
            y[cols_idx_[k]] += xi * values_[k];
        }
    }
    return y;
}

Matrix SparseMatrix::gram() const {
    Matrix g(cols_, cols_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = offsets_[i]; k < offsets_[i + 1]; ++k) {
            const std::size_t p = cols_idx_[k];
            const double vp = values_[k];
            for (std::size_t l = k; l < offsets_[i + 1]; ++l) {
                g(p, cols_idx_[l]) += vp * values_[l];
            }
        }
    }
    // The loop above fills the upper triangle (CSR columns are sorted per
    // row); mirror it.
    for (std::size_t p = 0; p < cols_; ++p) {
        for (std::size_t q = 0; q < p; ++q) g(p, q) = g(q, p);
    }
    return g;
}

Matrix SparseMatrix::to_dense() const {
    Matrix d(rows_, cols_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = offsets_[i]; k < offsets_[i + 1]; ++k) {
            d(i, cols_idx_[k]) = values_[k];
        }
    }
    return d;
}

double SparseMatrix::at(std::size_t i, std::size_t j) const {
    if (i >= rows_ || j >= cols_) {
        throw std::out_of_range("SparseMatrix::at: index out of range");
    }
    for (std::size_t k = offsets_[i]; k < offsets_[i + 1]; ++k) {
        if (cols_idx_[k] == j) return values_[k];
    }
    return 0.0;
}

Vector SparseMatrix::row_dense(std::size_t i) const {
    if (i >= rows_) {
        throw std::out_of_range("SparseMatrix::row_dense: index out of range");
    }
    Vector r(cols_, 0.0);
    for (std::size_t k = offsets_[i]; k < offsets_[i + 1]; ++k) {
        r[cols_idx_[k]] = values_[k];
    }
    return r;
}

SparseMatrix SparseMatrix::select_columns(
    const std::vector<std::size_t>& cols) const {
    std::vector<std::size_t> new_index(cols_, SIZE_MAX);
    for (std::size_t j = 0; j < cols.size(); ++j) {
        if (cols[j] >= cols_) {
            throw std::out_of_range("select_columns: index out of range");
        }
        new_index[cols[j]] = j;
    }
    std::vector<Triplet> trips;
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = offsets_[i]; k < offsets_[i + 1]; ++k) {
            const std::size_t nj = new_index[cols_idx_[k]];
            if (nj != SIZE_MAX) trips.push_back({i, nj, values_[k]});
        }
    }
    return SparseMatrix(rows_, cols.size(), std::move(trips));
}

SparseMatrix SparseMatrix::select_rows(
    const std::vector<std::size_t>& rows) const {
    std::vector<Triplet> trips;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const std::size_t r = rows[i];
        if (r >= rows_) {
            throw std::out_of_range("select_rows: index out of range");
        }
        for (std::size_t k = offsets_[r]; k < offsets_[r + 1]; ++k) {
            trips.push_back({i, cols_idx_[k], values_[k]});
        }
    }
    return SparseMatrix(rows.size(), cols_, std::move(trips));
}

std::size_t SparseMatrix::column_nonzeros(std::size_t j) const {
    std::size_t count = 0;
    for (std::size_t c : cols_idx_) {
        if (c == j) ++count;
    }
    return count;
}

SparseMatrix sparse_vstack(const SparseMatrix& a, const SparseMatrix& b) {
    if (a.cols() != b.cols()) {
        throw std::invalid_argument("sparse_vstack: column count mismatch");
    }
    std::vector<Triplet> trips;
    trips.reserve(a.nonzeros() + b.nonzeros());
    const auto& ao = a.row_offsets();
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t k = ao[i]; k < ao[i + 1]; ++k) {
            trips.push_back({i, a.column_indices()[k], a.values()[k]});
        }
    }
    const auto& bo = b.row_offsets();
    for (std::size_t i = 0; i < b.rows(); ++i) {
        for (std::size_t k = bo[i]; k < bo[i + 1]; ++k) {
            trips.push_back(
                {a.rows() + i, b.column_indices()[k], b.values()[k]});
        }
    }
    return SparseMatrix(a.rows() + b.rows(), a.cols(), std::move(trips));
}

}  // namespace tme::linalg
