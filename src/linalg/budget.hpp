// Cooperative solve deadlines: a runaway iterative solve returns its
// best feasible iterate with a typed outcome instead of hanging.
//
// Every iterative solver in the repo (projected-CG / block-pivoting QP,
// Lawson-Hanson NNLS, MART sweeps, the entropy solver's Armijo loop)
// takes an optional SolveBudget and polls `exhausted()` once per outer
// iteration.  The poll is two branches when the budget is unlimited —
// the default — and one steady_clock read per outer iteration when a
// deadline is set, so threading the budget through costs nothing
// measurable and never changes the arithmetic of a solve that finishes
// in time.  A tripped budget is sticky: once expired, every subsequent
// poll returns true, so nested loops (CG inside an active-set round)
// unwind at their next checkpoint.
//
// SolveOutcome separates the three ways an iterative solve can return
// without full convergence being false:
//   * converged          — tolerance reached; the exact answer.
//   * iteration_capped   — a *configured* iteration cap (max_iterations,
//                          max_active_set_rounds) stopped it.  That cap
//                          was a deliberate accuracy/latency trade by
//                          the caller (benches time-box solvers this
//                          way), so schedulers treat it as exact.
//   * budget_exhausted   — the SolveBudget cut it short; the returned
//                          iterate is the best feasible point so far
//                          and the run is flagged degraded downstream.
//
// The solver_stall fault (fault::FaultSite::solver_stall) hooks in
// here: a scheduled stall poisons the budget at start(), so the very
// first poll trips — simulating a wedged solve being cut off by its
// deadline without actually burning the wall-clock.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "fault/injection.hpp"

namespace tme::linalg {

enum class SolveOutcome : std::uint8_t {
    converged,
    iteration_capped,
    budget_exhausted,
};

constexpr const char* solve_outcome_name(SolveOutcome o) {
    switch (o) {
        case SolveOutcome::converged: return "converged";
        case SolveOutcome::iteration_capped: return "iteration_capped";
        case SolveOutcome::budget_exhausted: return "budget_exhausted";
    }
    return "?";
}

class SolveBudget {
  public:
    /// Unlimited budget: exhausted() is always false.
    SolveBudget() = default;

    /// `deadline_seconds` caps the wall-clock of one solve; <= 0 means
    /// unlimited.  `scope` labels the budget for fault-schedule
    /// matching (the scheduler passes the method name); it must outlive
    /// the budget.
    explicit SolveBudget(double deadline_seconds, const char* scope = "")
        : deadline_seconds_(deadline_seconds), scope_(scope) {}

    bool limited() const { return deadline_seconds_ > 0.0; }
    const char* scope() const { return scope_; }

    /// Arms the deadline from now.  Called once at the outermost solve
    /// entry (execute_method); re-arming resets the clock and the
    /// tripped state.  This is also the solver_stall injection point.
    void start() {
        tripped_ = false;
        stalled_ = fault::should_inject(fault::FaultSite::solver_stall,
                                        scope_);
        if (limited()) {
            deadline_ = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                deadline_seconds_));
        }
        started_ = true;
    }

    /// Cooperative checkpoint, polled once per outer iteration (CG
    /// iteration, active-set round, NNLS pivot, MART sweep, entropy
    /// step).  True once the deadline has passed (sticky) — the solver
    /// must then return its best feasible iterate with
    /// SolveOutcome::budget_exhausted.
    bool exhausted() {
        if (tripped_) return true;
        if (stalled_) {
            tripped_ = true;
            return true;
        }
        if (!limited() || !started_) return false;
        if (std::chrono::steady_clock::now() >= deadline_) {
            tripped_ = true;
        }
        return tripped_;
    }

    /// Whether a previous exhausted() poll tripped (does not re-read
    /// the clock): drivers use it to map a capped return to the right
    /// SolveOutcome.
    bool expired() const { return tripped_; }

  private:
    double deadline_seconds_ = 0.0;
    const char* scope_ = "";
    std::chrono::steady_clock::time_point deadline_{};
    bool started_ = false;
    bool tripped_ = false;
    bool stalled_ = false;
};

}  // namespace tme::linalg
