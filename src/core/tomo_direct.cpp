#include "core/tomo_direct.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/metrics.hpp"

namespace tme::core {

namespace {

ReducedEstimator default_estimator() {
    return [](const SnapshotProblem& problem, const linalg::Vector& prior) {
        EntropyOptions options;
        options.regularization = 1000.0;
        return entropy_estimate(problem, prior, options);
    };
}

// Shared setup of the reduced problem: remaining unknowns, the output
// vector pre-filled with the measured truths, and the loads with the
// measured demands' contribution subtracted.
struct ReducedSetup {
    std::vector<std::size_t> unknown;
    linalg::Vector estimate;
    linalg::Vector reduced_loads;
};

ReducedSetup prepare_reduced(const SnapshotProblem& problem,
                             const linalg::Vector& prior,
                             const linalg::Vector& true_demands,
                             const std::vector<std::size_t>& measured) {
    problem.validate();
    const linalg::SparseMatrix& r = *problem.routing;
    const std::size_t n = r.cols();
    if (prior.size() != n || true_demands.size() != n) {
        throw std::invalid_argument("estimate_with_measured: size mismatch");
    }
    std::vector<bool> is_measured(n, false);
    for (std::size_t p : measured) {
        if (p >= n) {
            throw std::invalid_argument(
                "estimate_with_measured: bad pair index");
        }
        is_measured[p] = true;
    }

    ReducedSetup setup;
    setup.unknown.reserve(n - measured.size());
    for (std::size_t p = 0; p < n; ++p) {
        if (!is_measured[p]) setup.unknown.push_back(p);
    }

    setup.estimate.assign(n, 0.0);
    for (std::size_t p : measured) setup.estimate[p] = true_demands[p];
    if (setup.unknown.empty()) return setup;

    // Subtract measured contributions from the loads.
    linalg::Vector known(n, 0.0);
    for (std::size_t p : measured) known[p] = true_demands[p];
    const linalg::Vector known_loads = r.multiply(known);
    setup.reduced_loads = problem.loads;
    for (std::size_t l = 0; l < setup.reduced_loads.size(); ++l) {
        setup.reduced_loads[l] =
            std::max(0.0, setup.reduced_loads[l] - known_loads[l]);
    }
    return setup;
}

}  // namespace

ReducedFactor::ReducedFactor(std::vector<std::size_t> unknown_pairs,
                             linalg::Matrix reduced_gram, double tau)
    : unknown(std::move(unknown_pairs)),
      gram(std::move(reduced_gram)),
      regularization(tau),
      chol(gram, tau) {
    if (gram.rows() != unknown.size() || gram.cols() != unknown.size()) {
        throw std::invalid_argument("ReducedFactor: dimension mismatch");
    }
}

ReducedFactor ReducedFactor::slice(const linalg::Matrix& full_gram,
                                   std::vector<std::size_t> unknown_pairs,
                                   double tau) {
    const std::size_t k = unknown_pairs.size();
    for (std::size_t p : unknown_pairs) {
        if (p >= full_gram.rows()) {
            throw std::invalid_argument("ReducedFactor::slice: bad index");
        }
    }
    // k x k over the *unmeasured* pair set only — small by design
    // (direct measurement covers the heavy hitters).
    // lint: allow(dense-alloc)
    linalg::Matrix g(k, k, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < k; ++j) {
            g(i, j) = full_gram(unknown_pairs[i], unknown_pairs[j]);
        }
    }
    return ReducedFactor(std::move(unknown_pairs), std::move(g), tau);
}

ReducedFactor ReducedFactor::from_routing(
    const linalg::SparseMatrix& routing,
    std::vector<std::size_t> unknown_pairs, double tau) {
    linalg::Matrix g =
        linalg::gram_sparse(routing.select_columns(unknown_pairs));
    return ReducedFactor(std::move(unknown_pairs), std::move(g), tau);
}

linalg::Vector estimate_with_measured_factored(
    const SnapshotProblem& problem, const linalg::Vector& prior,
    const linalg::Vector& true_demands,
    const std::vector<std::size_t>& measured, double regularization,
    const ReducedFactorProvider& provider) {
    if (regularization <= 0.0) {
        throw std::invalid_argument(
            "estimate_with_measured_factored: regularization must be "
            "positive");
    }
    ReducedSetup setup = prepare_reduced(problem, prior, true_demands,
                                         measured);
    if (setup.unknown.empty()) return setup.estimate;
    const linalg::SparseMatrix& r = *problem.routing;
    const std::size_t k = setup.unknown.size();

    std::shared_ptr<const ReducedFactor> factor;
    if (provider) {
        factor = provider(setup.unknown);
        if (factor == nullptr || factor->unknown != setup.unknown ||
            factor->regularization != regularization) {
            throw std::invalid_argument(
                "estimate_with_measured_factored: provider returned a "
                "factor for a different reduced problem");
        }
    } else {
        // G_u equals the Gram of the column-selected routing matrix.
        factor = std::make_shared<const ReducedFactor>(
            ReducedFactor::from_routing(r, setup.unknown, regularization));
    }

    // R_u columns are columns of R, so R_u' t is a gather of R' t.
    const linalg::Vector rt = r.multiply_transpose(setup.reduced_loads);
    linalg::Vector rhs(k);
    for (std::size_t i = 0; i < k; ++i) {
        rhs[i] = rt[setup.unknown[i]] +
                 regularization * prior[setup.unknown[i]];
    }
    const linalg::Vector x = factor->chol.solve(rhs);
    for (std::size_t i = 0; i < k; ++i) {
        setup.estimate[setup.unknown[i]] = std::max(0.0, x[i]);
    }
    return setup.estimate;
}

linalg::Vector estimate_with_measured(const SnapshotProblem& problem,
                                      const linalg::Vector& prior,
                                      const linalg::Vector& true_demands,
                                      const std::vector<std::size_t>& measured,
                                      const ReducedEstimator& estimator) {
    ReducedSetup setup = prepare_reduced(problem, prior, true_demands,
                                         measured);
    const linalg::SparseMatrix& r = *problem.routing;
    const std::vector<std::size_t>& unknown = setup.unknown;
    linalg::Vector& estimate = setup.estimate;
    if (unknown.empty()) return estimate;
    linalg::Vector reduced_loads = std::move(setup.reduced_loads);

    const linalg::SparseMatrix reduced_r = r.select_columns(unknown);
    linalg::Vector reduced_prior(unknown.size());
    for (std::size_t i = 0; i < unknown.size(); ++i) {
        reduced_prior[i] = prior[unknown[i]];
    }
    // The reduced routing no longer matches the topology's pair count, so
    // the sub-problem carries no topology (estimators used here work from
    // (R, t) alone).
    SnapshotProblem sub;
    sub.topo = nullptr;
    sub.routing = &reduced_r;
    sub.loads = std::move(reduced_loads);

    const linalg::Vector sub_estimate = estimator(sub, reduced_prior);
    if (sub_estimate.size() != unknown.size()) {
        throw std::runtime_error(
            "estimate_with_measured: estimator returned wrong size");
    }
    for (std::size_t i = 0; i < unknown.size(); ++i) {
        estimate[unknown[i]] = sub_estimate[i];
    }
    return estimate;
}

namespace {

DirectMeasurementCurve run_with_order(
    const SnapshotProblem& problem, const linalg::Vector& prior,
    const linalg::Vector& true_demands,
    const DirectMeasurementOptions& options, bool greedy) {
    const std::size_t n = problem.routing->cols();
    const std::size_t steps =
        options.max_measured == 0 ? n : std::min(options.max_measured, n);
    const ReducedEstimator estimator =
        options.estimator ? options.estimator : default_estimator();
    const double threshold =
        options.threshold > 0.0
            ? options.threshold
            : threshold_for_coverage(true_demands, 0.9);

    DirectMeasurementCurve curve;
    std::vector<std::size_t> measured;

    const linalg::Vector base = estimate_with_measured(
        problem, prior, true_demands, measured, estimator);
    curve.mre.push_back(
        mean_relative_error(true_demands, base, threshold));

    // Pre-computed size order for the largest-first strategy.
    std::vector<std::size_t> by_size(n);
    std::iota(by_size.begin(), by_size.end(), 0);
    std::sort(by_size.begin(), by_size.end(),
              [&true_demands](std::size_t a, std::size_t b) {
                  return true_demands[a] > true_demands[b];
              });

    std::vector<bool> is_measured(n, false);
    for (std::size_t step = 0; step < steps; ++step) {
        std::size_t chosen = n;
        double chosen_mre = 0.0;
        if (greedy) {
            // Exhaustive search: the candidate whose measurement gives
            // the lowest resulting MRE.
            double best = std::numeric_limits<double>::infinity();
            for (std::size_t cand = 0; cand < n; ++cand) {
                if (is_measured[cand]) continue;
                measured.push_back(cand);
                const linalg::Vector est = estimate_with_measured(
                    problem, prior, true_demands, measured, estimator);
                measured.pop_back();
                const double m =
                    mean_relative_error(true_demands, est, threshold);
                if (m < best) {
                    best = m;
                    chosen = cand;
                }
            }
            chosen_mre = best;
        } else {
            for (std::size_t cand : by_size) {
                if (!is_measured[cand]) {
                    chosen = cand;
                    break;
                }
            }
            measured.push_back(chosen);
            const linalg::Vector est = estimate_with_measured(
                problem, prior, true_demands, measured, estimator);
            measured.pop_back();
            chosen_mre = mean_relative_error(true_demands, est, threshold);
        }
        if (chosen == n) break;
        measured.push_back(chosen);
        is_measured[chosen] = true;
        curve.measured.push_back(chosen);
        curve.mre.push_back(chosen_mre);
    }
    return curve;
}

}  // namespace

DirectMeasurementCurve greedy_direct_measurements(
    const SnapshotProblem& problem, const linalg::Vector& prior,
    const linalg::Vector& true_demands,
    const DirectMeasurementOptions& options) {
    return run_with_order(problem, prior, true_demands, options, true);
}

DirectMeasurementCurve largest_first_direct_measurements(
    const SnapshotProblem& problem, const linalg::Vector& prior,
    const linalg::Vector& true_demands,
    const DirectMeasurementOptions& options) {
    return run_with_order(problem, prior, true_demands, options, false);
}

}  // namespace tme::core
