// Multi-scenario fleet driver: replays N scenarios / engine
// configurations over the same topology concurrently, one engine per
// job, all sharing a single thread-safe RoutingEpochCache.
//
// The paper's evaluation sweeps whole days across two networks and
// many method settings; learning-based follow-ups replay hundreds of
// scenarios to build training sets.  Serially that is N full-day
// replays back to back.  The fleet driver instead runs the jobs on a
// small worker pool: every engine keeps its own sliding window, warm
// lineage and metrics (nothing estimation-relevant is shared between
// scenarios), while R-derived data — the Gram, Vardi's transformed
// Gram, fanout constraints — is built once per distinct routing epoch
// in the shared cache and read by all engines.  Per-job results and
// metrics are aggregated into a FleetReport; bench_perf_engine gates
// the fleet's aggregate window throughput against the serial baseline.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/replay.hpp"

namespace tme::engine {

/// One scenario replay in the fleet.  The scenario (and any routing
/// matrices referenced by replay.events) must outlive run().
struct FleetJob {
    std::string name;
    const scenario::Scenario* scenario = nullptr;
    ReplayOptions replay;
    /// Per-job engine configuration; nullopt uses FleetConfig::engine.
    std::optional<EngineConfig> engine;
    /// Window-completion sink installed on this job's engine (all three
    /// drive modes).  Called from the job's worker thread, one window
    /// at a time, in submission order — a serving-layer publisher
    /// (serve::make_publisher) slots in directly.  Jobs never share an
    /// engine, so per-job sinks need no cross-job synchronization, but
    /// one sink attached to several jobs must be thread-safe.
    WindowSink window_sink;
};

struct FleetConfig {
    /// Engine template for jobs without a per-job override.  Engines
    /// default to threads = 0: the fleet parallelizes across
    /// scenarios, not within a window.
    EngineConfig engine;
    /// Concurrent scenario workers; 0 picks
    /// min(jobs, hardware_concurrency).
    std::size_t concurrency = 0;
    /// Per-engine pipeline depth; > 1 runs each job on a PipelinedEngine
    /// (window passes overlap within a scenario too).  Overlap needs
    /// workers, so a job left at the engine default threads = 0 gets a
    /// small pool (2) on this path instead of silent inline execution.
    std::size_t pipeline_depth = 1;
    /// Decouple sample production from estimation with a bounded
    /// producer/consumer queue (replay_scenario_async) on the
    /// serial-engine path.
    bool async_ingest = true;
    std::size_t ingest_queue_capacity = 16;
    /// Capacity of the shared routing-epoch cache.  Size it to the
    /// number of distinct routing configurations the fleet touches at
    /// once (base routings + injected reroutes), or flapping jobs will
    /// rebuild each other's epochs.
    std::size_t cache_capacity = 4;
    /// Retain every job's full per-window results (estimates included)
    /// in the report — needed for equivalence checks, sizeable for big
    /// fleets.
    bool keep_windows = false;
    /// Crash isolation.  When true (the default), a job whose replay
    /// throws is retried from scratch up to max_job_attempts times and
    /// then *quarantined* — marked failed in its FleetJobReport while
    /// every sibling job runs to completion — instead of failing the
    /// whole fleet.  When false, run() rethrows the first job exception
    /// after all workers stop (the pre-isolation behaviour).
    /// Configuration errors (null scenario, topology mismatch, bad
    /// method list) are validated up front and always throw.
    bool quarantine = true;
    /// Total attempts per job (first run + retries); >= 1.
    std::size_t max_job_attempts = 3;
    /// Backoff before retry k (1-based) is retry_backoff_seconds *
    /// 2^(k-1) — exponential, deliberately jitter-free so a seeded
    /// fault schedule replays identically.  0 retries immediately.
    double retry_backoff_seconds = 0.0;
};

struct FleetJobReport {
    std::string name;
    std::map<Method, double> mean_mre;
    EngineMetrics metrics;  ///< snapshot of the job's engine metrics
    double seconds = 0.0;   ///< wall time inside this job's replay
    std::size_t windows = 0;
    /// Full per-window results when FleetConfig::keep_windows.
    std::vector<WindowResult> window_results;
    /// Crash-isolation outcome: attempts actually made, whether the job
    /// finally completed, and — when it did not and quarantine is on —
    /// whether it was quarantined.  `error` is the what() of the last
    /// failure (empty on success).  metrics/windows reflect the last
    /// attempt only; earlier attempts are discarded wholesale.
    std::size_t attempts = 0;
    bool completed = false;
    bool quarantined = false;
    std::string error;
};

struct FleetReport {
    std::vector<FleetJobReport> jobs;  ///< in input order
    double wall_seconds = 0.0;         ///< whole-fleet wall time
    std::size_t total_windows = 0;
    /// Jobs that exhausted their attempts and were quarantined.
    std::size_t quarantined_jobs = 0;
    // Shared epoch-cache statistics after the run.
    std::size_t cache_hits = 0;
    std::size_t cache_misses = 0;
    std::size_t cache_evictions = 0;
    std::size_t cache_collisions = 0;

    /// Aggregate window throughput: windows completed per wall second
    /// across the whole fleet.
    double windows_per_second() const {
        return wall_seconds > 0.0
                   ? static_cast<double>(total_windows) / wall_seconds
                   : 0.0;
    }

    /// Multi-line human-readable dump.
    std::string summary() const;
};

class FleetDriver {
  public:
    /// `topo` is the fleet's common topology; every job's scenario must
    /// structurally match it (link/pair counts).  It must outlive the
    /// driver.
    explicit FleetDriver(const topology::Topology& topo,
                         FleetConfig config = {});

    const FleetConfig& config() const { return config_; }
    /// The shared routing-epoch cache (alive across run() calls, so a
    /// second fleet over the same routings starts warm).
    const std::shared_ptr<RoutingEpochCache>& cache() const {
        return cache_;
    }

    /// Runs all jobs to completion and aggregates their reports.
    /// Blocks; jobs execute on min(concurrency, jobs) worker threads.
    /// With FleetConfig::quarantine (the default) a crashing job is
    /// retried with exponential backoff and finally quarantined —
    /// sibling jobs are never disturbed and run() returns normally
    /// (check FleetJobReport::quarantined).  With quarantine off, the
    /// first job exception is rethrown after every worker has stopped.
    FleetReport run(const std::vector<FleetJob>& jobs);

  private:
    void run_job(const FleetJob& job, FleetJobReport& report,
                 std::size_t index);

    const topology::Topology* topo_;
    FleetConfig config_;
    std::shared_ptr<RoutingEpochCache> cache_;
};

}  // namespace tme::engine
