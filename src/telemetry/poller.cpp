#include "telemetry/poller.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

namespace tme::telemetry {

namespace {

// Integral of the piecewise-constant true rate from time 0 to t (seconds).
// Beyond the end of the series the last interval's rate continues (the
// traffic does not stop because our trace does).
double counter_at(const std::vector<std::vector<double>>& rates,
                  std::size_t object, double t, double interval_seconds) {
    if (t <= 0.0) return 0.0;
    const std::size_t intervals = rates.size();
    double acc = 0.0;
    const std::size_t whole = std::min(
        intervals, static_cast<std::size_t>(t / interval_seconds));
    for (std::size_t k = 0; k < whole; ++k) acc += rates[k][object] *
                                                   interval_seconds;
    const double frac = t - static_cast<double>(whole) * interval_seconds;
    const std::size_t tail = std::min(whole, intervals - 1);
    if (frac > 0.0) acc += rates[tail][object] * frac;
    return acc;
}

}  // namespace

PollingOutcome simulate_polling(
    const std::vector<std::vector<double>>& true_rates,
    const PollerConfig& config) {
    if (true_rates.empty() || true_rates.front().empty()) {
        throw std::invalid_argument("simulate_polling: empty input");
    }
    if (config.poller_count == 0) {
        throw std::invalid_argument("simulate_polling: need >= 1 poller");
    }
    const std::size_t intervals = true_rates.size();
    const std::size_t objects = true_rates.front().size();
    for (const auto& row : true_rates) {
        if (row.size() != objects) {
            throw std::invalid_argument("simulate_polling: ragged input");
        }
    }

    std::mt19937_64 rng(config.seed);
    std::normal_distribution<double> jitter(0.0,
                                            config.jitter_stddev_seconds);
    std::uniform_real_distribution<double> coin(0.0, 1.0);

    PollingOutcome outcome{TimeSeriesStore(objects, intervals), 0, 0, 0};

    // Per-object previous successful poll (time, counter).
    std::vector<double> prev_time(objects, 0.0);
    std::vector<double> prev_counter(objects, 0.0);

    for (std::size_t k = 0; k < intervals; ++k) {
        for (std::size_t o = 0; o < objects; ++o) {
            ++outcome.polls_attempted;
            // Poll k nominally happens at the END of interval k.
            const double nominal =
                static_cast<double>(k + 1) * config.interval_seconds;
            double t = nominal + jitter(rng);
            t = std::max(t, prev_time[o] + 1.0);  // monotone poll times

            bool lost = coin(rng) < config.loss_probability;
            if (lost && coin(rng) < config.backup_recovery_probability) {
                // A neighbouring poller retries a little later.
                lost = false;
                t += std::abs(jitter(rng)) + 1.0;
                ++outcome.polls_recovered;
            }
            if (lost) {
                ++outcome.polls_lost;
                outcome.store.record_loss(o, k);
                continue;
            }
            const double counter =
                counter_at(true_rates, o, t, config.interval_seconds);
            const double window = t - prev_time[o];
            const double rate =
                window > 0.0 ? (counter - prev_counter[o]) / window : 0.0;
            outcome.store.record(o, k, rate);
            prev_time[o] = t;
            prev_counter[o] = counter;
        }
    }
    return outcome;
}

}  // namespace tme::telemetry
