#include "engine/metrics.hpp"

#include <cmath>
#include <cstdio>

namespace tme::engine {

std::string EngineMetrics::summary() const {
    char line[256];
    std::string out;
    std::snprintf(line, sizeof(line),
                  "samples=%zu gaps=%zu windows=%zu flushes=%zu "
                  "epoch_changes=%zu\n",
                  samples_ingested.load(), gap_samples.load(),
                  windows_run.load(), window_flushes.load(),
                  epoch_changes.load());
    out += line;
    std::snprintf(line, sizeof(line),
                  "epoch cache: hit rate %.3f (%zu hits, %zu misses, "
                  "%zu evictions, %zu collisions)\n",
                  cache_hit_rate(), cache_hits.load(), cache_misses.load(),
                  cache_evictions.load(), cache_collisions.load());
    out += line;
    std::snprintf(line, sizeof(line),
                  "latency: total %.3fs, last window %.2fms\n",
                  total_seconds.load(), last_window_seconds.load() * 1e3);
    out += line;
    for (const auto& [method, stats] : methods) {
        std::snprintf(line, sizeof(line),
                      "  %-9s runs=%zu warm=%zu/%zu mean=%.2fms "
                      "last=%.2fms",
                      method_name(method), stats.runs.load(),
                      stats.warm_accepted_runs.load(),
                      stats.warm_runs.load(), stats.mean_seconds() * 1e3,
                      stats.last_seconds.load() * 1e3);
        out += line;
        if (stats.mre_count.load() > 0) {
            std::snprintf(line, sizeof(line), " mean_mre=%.4f last_mre=%.4f",
                          stats.mean_mre(), stats.last_mre.load());
            out += line;
        }
        out += '\n';
    }
    return out;
}

}  // namespace tme::engine
