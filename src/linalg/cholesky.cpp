#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

namespace tme::linalg {

namespace {

// Returns the lower Cholesky factor, or an empty matrix on failure.
Matrix factorize(const Matrix& a, double jitter) {
    const std::size_t n = a.rows();
    Matrix l(n, n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a(j, j) + jitter;
        for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
        if (diag <= 0.0 || !std::isfinite(diag)) return Matrix();
        const double ljj = std::sqrt(diag);
        l(j, j) = ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double v = a(i, j);
            for (std::size_t k = 0; k < j; ++k) v -= l(i, k) * l(j, k);
            l(i, j) = v / ljj;
        }
    }
    return l;
}

}  // namespace

Cholesky::Cholesky(const Matrix& a, double jitter) {
    if (a.rows() != a.cols()) {
        throw std::invalid_argument("Cholesky: matrix must be square");
    }
    l_ = factorize(a, jitter);
    if (l_.empty() && a.rows() > 0) {
        throw std::runtime_error("Cholesky: matrix not positive definite");
    }
}

Vector Cholesky::solve(const Vector& b) const {
    const std::size_t n = l_.rows();
    if (b.size() != n) {
        throw std::invalid_argument("Cholesky::solve: size mismatch");
    }
    // Forward substitution: L y = b.
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double v = b[i];
        for (std::size_t k = 0; k < i; ++k) v -= l_(i, k) * y[k];
        y[i] = v / l_(i, i);
    }
    // Back substitution: L' x = y.
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double v = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k) v -= l_(k, ii) * x[k];
        x[ii] = v / l_(ii, ii);
    }
    return x;
}

Matrix Cholesky::solve(const Matrix& b) const {
    if (b.rows() != l_.rows()) {
        throw std::invalid_argument("Cholesky::solve: size mismatch");
    }
    Matrix x(b.rows(), b.cols());
    for (std::size_t j = 0; j < b.cols(); ++j) {
        x.set_col(j, solve(b.col(j)));
    }
    return x;
}

std::optional<Cholesky> try_cholesky(const Matrix& a, double jitter) {
    if (a.rows() != a.cols()) return std::nullopt;
    Matrix l = factorize(a, jitter);
    if (l.empty() && a.rows() > 0) return std::nullopt;
    Cholesky c;
    // Reuse the computed factor rather than refactorizing.
    c.l_ = std::move(l);
    return c;
}

Vector solve_spd_robust(const Matrix& a, const Vector& b) {
    if (a.rows() != a.cols() || a.rows() != b.size()) {
        throw std::invalid_argument("solve_spd_robust: dimension mismatch");
    }
    const std::size_t n = a.rows();
    if (n == 0) return {};
    double trace = 0.0;
    for (std::size_t i = 0; i < n; ++i) trace += a(i, i);
    const double base = (trace > 0.0 ? trace / static_cast<double>(n) : 1.0);
    double jitter = 0.0;
    for (int attempt = 0; attempt < 24; ++attempt) {
        if (auto c = try_cholesky(a, jitter)) return c->solve(b);
        jitter = (jitter == 0.0 ? base * 1e-12 : jitter * 10.0);
    }
    throw std::runtime_error("solve_spd_robust: factorization failed");
}

}  // namespace tme::linalg
