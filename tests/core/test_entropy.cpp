#include "core/entropy.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "test_helpers.hpp"

namespace tme::core {
namespace {

using testing::SmallNetwork;
using testing::tiny_network;

TEST(Entropy, TruePriorStaysPut) {
    const SmallNetwork net = tiny_network();
    EntropyOptions options;
    options.regularization = 100.0;
    const linalg::Vector est =
        entropy_estimate(net.snapshot(), net.truth, options);
    for (std::size_t p = 0; p < net.truth.size(); ++p) {
        EXPECT_NEAR(est[p], net.truth[p], 1e-4 * (1.0 + net.truth[p]));
    }
}

TEST(Entropy, SmallRegularizationSticksToPrior) {
    const SmallNetwork net = tiny_network();
    linalg::Vector prior(net.truth.size(), 1.5);
    EntropyOptions options;
    options.regularization = 1e-9;
    const linalg::Vector est =
        entropy_estimate(net.snapshot(), prior, options);
    for (std::size_t p = 0; p < prior.size(); ++p) {
        EXPECT_NEAR(est[p], prior[p], 1e-2);
    }
}

TEST(Entropy, LargeRegularizationMatchesLoads) {
    const SmallNetwork net = tiny_network();
    linalg::Vector prior(net.truth.size(), 1.0);
    EntropyOptions options;
    options.regularization = 1e7;
    options.solver.max_iterations = 20000;
    const linalg::Vector est =
        entropy_estimate(net.snapshot(), prior, options);
    const SnapshotProblem snap = net.snapshot();
    const linalg::Vector pred = net.routing.multiply(est);
    for (std::size_t l = 0; l < pred.size(); ++l) {
        EXPECT_NEAR(pred[l], snap.loads[l], 5e-3 * (1.0 + snap.loads[l]));
    }
}

TEST(Entropy, OutputStrictlyPositive) {
    const SmallNetwork net = tiny_network(11);
    linalg::Vector prior(net.truth.size(), 0.5);
    const linalg::Vector est = entropy_estimate(net.snapshot(), prior);
    for (double v : est) EXPECT_GT(v, 0.0);
}

TEST(Entropy, ImprovesOnProportionallyWrongPrior) {
    const SmallNetwork net = tiny_network(5);
    linalg::Vector prior = net.truth;
    for (std::size_t p = 0; p < prior.size(); ++p) {
        prior[p] *= (p % 2 == 0 ? 0.6 : 1.7);
    }
    EntropyOptions options;
    options.regularization = 1e5;
    const linalg::Vector est =
        entropy_estimate(net.snapshot(), prior, options);
    EXPECT_LT(mre_at_coverage(net.truth, est, 0.9),
              mre_at_coverage(net.truth, prior, 0.9));
}

TEST(Entropy, Validation) {
    const SmallNetwork net = tiny_network();
    EXPECT_THROW(
        entropy_estimate(net.snapshot(), linalg::Vector(2, 1.0)),
        std::invalid_argument);
    EntropyOptions bad;
    bad.regularization = -1.0;
    EXPECT_THROW(entropy_estimate(net.snapshot(), net.truth, bad),
                 std::invalid_argument);
}

TEST(Entropy, WorksWithoutTopology) {
    const SmallNetwork net = tiny_network();
    SnapshotProblem snap = net.snapshot();
    snap.topo = nullptr;
    const linalg::Vector est = entropy_estimate(snap, net.truth);
    EXPECT_EQ(est.size(), net.truth.size());
}

}  // namespace
}  // namespace tme::core
