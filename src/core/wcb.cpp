#include "core/wcb.hpp"

#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "linalg/simplex.hpp"

namespace tme::core {

WcbResult worst_case_bounds(const SnapshotProblem& problem,
                            const WcbOptions& options,
                            const std::vector<std::size_t>& pairs) {
    problem.validate();
    const linalg::SparseMatrix& r = *problem.routing;
    const std::size_t n = r.cols();

    std::vector<std::size_t> targets = pairs;
    if (targets.empty()) {
        targets.resize(n);
        std::iota(targets.begin(), targets.end(), 0);
    }

    WcbResult result;
    result.lower.assign(n, 0.0);
    result.upper.assign(n, std::numeric_limits<double>::infinity());
    result.midpoint.assign(n, 0.0);

    linalg::LpProblem lp;
    lp.a = r.to_dense();
    lp.b = problem.loads;
    lp.c.assign(n, 0.0);

    linalg::LpOptions lp_options;
    lp_options.max_iterations = options.max_iterations;

    std::vector<std::size_t> warm_basis;
    auto solve_one = [&](std::size_t p, double sign) -> double {
        lp.c.assign(n, 0.0);
        lp.c[p] = sign;  // minimize sign * s_p
        lp_options.initial_basis =
            options.warm_start ? warm_basis : std::vector<std::size_t>{};
        const linalg::LpResult sol = linalg::solve_lp(lp, lp_options);
        ++result.lps_solved;
        result.simplex_iterations += sol.iterations;
        if (sol.status != linalg::LpStatus::optimal) {
            ++result.failures;
            return std::numeric_limits<double>::quiet_NaN();
        }
        if (options.warm_start) warm_basis = sol.basis;
        return sign * sol.objective;  // = optimal s_p value
    };

    for (std::size_t p : targets) {
        const double lo = solve_one(p, +1.0);  // min s_p
        const double hi = solve_one(p, -1.0);  // max s_p
        if (!std::isnan(lo)) result.lower[p] = std::max(0.0, lo);
        if (!std::isnan(hi)) result.upper[p] = hi;
        if (!std::isnan(lo) && !std::isnan(hi)) {
            result.midpoint[p] = 0.5 * (result.lower[p] + result.upper[p]);
        }
    }
    return result;
}

}  // namespace tme::core
