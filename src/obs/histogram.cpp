#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>

namespace tme::obs {
namespace detail {

std::size_t hist_index(std::uint64_t ns) {
    if (ns < kHistSub) return static_cast<std::size_t>(ns);
    const int msb = 63 - std::countl_zero(ns);
    const int shift = msb - kHistSubBits;
    const std::uint64_t sub = (ns >> shift) & (kHistSub - 1);
    // Octave `msb` starts right after the exact range plus the
    // preceding octaves; shift+1 == msb - kHistSubBits + 1 octave rows
    // of kHistSub buckets each lie below it.
    return static_cast<std::size_t>(shift + 1) * kHistSub +
           static_cast<std::size_t>(sub);
}

std::uint64_t hist_lower_bound(std::size_t idx) {
    if (idx < kHistSub) return idx;
    const std::size_t shift = idx / kHistSub - 1;
    const std::uint64_t sub = idx % kHistSub;
    return (kHistSub + sub) << shift;
}

}  // namespace detail

double HistogramSnapshot::quantile(double q) const {
    if (count == 0 || buckets.empty()) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the target sample, 1-based; q=1 maps to the last sample.
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count) + 0.5);
    rank = std::clamp<std::uint64_t>(rank, 1, count);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= rank) {
            return 1e-9 *
                   static_cast<double>(detail::hist_lower_bound(i));
        }
    }
    return max_seconds();
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
    if (other.count == 0) return;
    if (buckets.empty()) {
        buckets.assign(detail::kHistBuckets, 0);
    }
    for (std::size_t i = 0; i < buckets.size() && i < other.buckets.size();
         ++i) {
        buckets[i] += other.buckets[i];
    }
    if (count == 0 || other.min_ns < min_ns) min_ns = other.min_ns;
    if (other.max_ns > max_ns) max_ns = other.max_ns;
    count += other.count;
    sum_seconds += other.sum_seconds;
}

LatencyHistogram& LatencyHistogram::operator=(
    const LatencyHistogram& other) {
    if (this == &other) return *this;
    for (std::size_t i = 0; i < detail::kHistBuckets; ++i) {
        buckets_[i] = other.buckets_[i].load();
    }
    count_ = other.count_.load();
    sum_seconds_ = other.sum_seconds_.load();
    min_ns_ = other.min_ns_.load();
    max_ns_ = other.max_ns_.load();
    return *this;
}

void LatencyHistogram::record_ns(std::uint64_t ns) {
    ++buckets_[detail::hist_index(ns)];
    ++count_;
    sum_seconds_ += 1e-9 * static_cast<double>(ns);
    min_ns_.fetch_min(ns);
    max_ns_.fetch_max(ns);
}

HistogramSnapshot LatencyHistogram::snapshot() const {
    HistogramSnapshot snap;
    snap.buckets.resize(detail::kHistBuckets);
    for (std::size_t i = 0; i < detail::kHistBuckets; ++i) {
        snap.buckets[i] = buckets_[i].load();
    }
    snap.count = count_.load();
    snap.sum_seconds = sum_seconds_.load();
    snap.max_ns = max_ns_.load();
    const std::uint64_t min = min_ns_.load();
    snap.min_ns = (snap.count == 0 && min == ~std::uint64_t{0}) ? 0 : min;
    return snap;
}

}  // namespace tme::obs
