// Figure 1: normalized total network traffic over 24 hours for the
// European and American subnetworks.
#include "bench_common.hpp"

int main() {
    using namespace tme;
    bench::header(
        "Figure 1 - total network traffic over time",
        "Fig. 1: diurnal cycle, busy periods overlap around 18:00 GMT",
        "clear day/night cycle; Europe peaks earlier (GMT) than USA; "
        "trough ~0.3-0.4 of peak");

    const scenario::Scenario& eu = bench::europe();
    const scenario::Scenario& us = bench::usa();
    std::printf("%-7s %10s %10s\n", "time", "Europe", "USA");
    for (std::size_t k = 0; k < eu.demands.size(); k += 6) {  // half-hourly
        const int hh = static_cast<int>(k * 5) / 60;
        const int mm = static_cast<int>(k * 5) % 60;
        std::printf("%02d:%02d   %10.3f %10.3f  %s\n", hh, mm,
                    eu.total_at(k), us.total_at(k),
                    bench::bar(eu.total_at(k) + us.total_at(k), 2.0,
                               30)
                        .c_str());
    }
    // Busy-period diagnostics.
    auto stats = [](const scenario::Scenario& sc) {
        double mn = 1e300;
        std::size_t peak = 0;
        double mx = 0.0;
        for (std::size_t k = 0; k < sc.demands.size(); ++k) {
            const double t = sc.total_at(k);
            mn = std::min(mn, t);
            if (t > mx) {
                mx = t;
                peak = k;
            }
        }
        std::printf(
            "%s: peak at %02zu:%02zu GMT, trough/peak = %.2f, busy window "
            "samples %zu-%zu\n",
            sc.name.c_str(), peak * 5 / 60, peak * 5 % 60, mn / mx,
            sc.busy_start, sc.busy_start + sc.busy_length - 1);
    };
    std::printf("\n");
    stats(eu);
    stats(us);
    return 0;
}
