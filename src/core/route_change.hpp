// Traffic matrix inference from deliberate routing changes (after Nucci,
// Cruz, Taft & Diot, INFOCOM 2004 — reference [14] of the paper).
//
// The paper's related work: "the routing is changed and shifting of link
// load is used to infer the traffic demands."  Every additional routing
// configuration R_j observed with its own load vector t_j (while the
// demands stay constant) contributes L fresh linear equations:
//
//     [ R_1 ]       [ t_1 ]
//     [ R_2 ]  s  =  [ t_2 ]        s >= 0
//     [ ... ]       [ ... ]
//
// With enough link-weight perturbations the stacked system becomes full
// rank and the traffic matrix is determined without any statistical
// prior.  This module stacks the snapshots, solves the NNLS, and reports
// the stacked rank so callers can see how many configurations were
// needed (the bench sweeps this).
#pragma once

#include <cstdint>
#include <vector>

#include "core/problem.hpp"

namespace tme::core {

/// Order-sensitive 64-bit fingerprint of a routing matrix (FNV-1a over
/// the CSR arrays, dimensions included).  Two matrices with the same
/// fingerprint are treated as the same routing epoch by the online
/// engine's caches; any change produced by a reroute (new paths, new
/// weights, new dimensions) yields a different fingerprint with
/// overwhelming probability.
std::uint64_t routing_fingerprint(const linalg::SparseMatrix& routing);

/// One observed routing configuration and its load vector.
struct RoutingObservation {
    const linalg::SparseMatrix* routing = nullptr;
    linalg::Vector loads;
};

struct RouteChangeResult {
    linalg::Vector s;            ///< demand estimate
    std::size_t stacked_rank = 0;  ///< numerical rank of [R_1; ...; R_J]
    double residual_norm = 0.0;  ///< stacked LS residual
};

/// Estimates demands from J >= 1 routing configurations.  All matrices
/// must have the same column count; throws std::invalid_argument
/// otherwise.  Rank is computed via QR on the stacked transpose.
RouteChangeResult route_change_estimate(
    const std::vector<RoutingObservation>& observations);

/// Helper for experiments: reroutes the topology's LSP mesh with IGP
/// metrics perturbed multiplicatively per core link by deterministic
/// factors in [1, 1+spread] (seeded), returning the new routing matrix.
/// Models an operator's deliberate link-weight change.
linalg::SparseMatrix perturbed_routing(const topology::Topology& topo,
                                       double spread, unsigned seed);

}  // namespace tme::core
