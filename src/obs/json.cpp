#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace tme::obs {
namespace {

void append_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void append_double(std::string& out, double v) {
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; null is the conventional stand-in.
        out += "null";
        return;
    }
    char buf[32];
    // %.17g round-trips but litters 0.1 as 0.1000...1; try shorter
    // precisions first and keep the first that re-parses exactly.
    for (int prec = 6; prec <= 17; prec += prec < 15 ? 3 : 1) {
        const int n = std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        double back = 0.0;
        if (std::sscanf(buf, "%lf", &back) == 1 && back == v) {
            out.append(buf, static_cast<std::size_t>(n));
            return;
        }
    }
    out += buf;
}

struct Parser {
    std::string_view text;
    std::size_t pos = 0;
    int depth = 0;

    /// Nesting bound: the parser is recursive-descent, so untrusted
    /// input like "[[[[..." otherwise converts directly into stack
    /// exhaustion.  Telemetry documents nest a handful of levels; 96
    /// is far above any legitimate artifact and far below the stack.
    static constexpr int kMaxDepth = 96;

    struct DepthGuard {
        Parser* p;
        bool ok;
        explicit DepthGuard(Parser* parser)
            : p(parser), ok(++parser->depth <= kMaxDepth) {}
        ~DepthGuard() { --p->depth; }
        DepthGuard(const DepthGuard&) = delete;
        DepthGuard& operator=(const DepthGuard&) = delete;
    };

    void skip_ws() {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }
    bool eof() const { return pos >= text.size(); }
    char peek() const { return text[pos]; }
    bool consume(char c) {
        if (eof() || text[pos] != c) return false;
        ++pos;
        return true;
    }
    bool consume_word(std::string_view word) {
        if (text.substr(pos, word.size()) != word) return false;
        pos += word.size();
        return true;
    }

    std::optional<Json> value() {
        skip_ws();
        if (eof()) return std::nullopt;
        switch (peek()) {
            case '{': return object();
            case '[': return array();
            case '"': {
                std::optional<std::string> s = string();
                if (!s) return std::nullopt;
                return Json(std::move(*s));
            }
            case 't':
                return consume_word("true") ? std::optional<Json>(Json(true))
                                            : std::nullopt;
            case 'f':
                return consume_word("false")
                           ? std::optional<Json>(Json(false))
                           : std::nullopt;
            case 'n':
                return consume_word("null") ? std::optional<Json>(Json())
                                            : std::nullopt;
            default: return number();
        }
    }

    std::optional<Json> object() {
        const DepthGuard guard(this);
        if (!guard.ok) return std::nullopt;
        if (!consume('{')) return std::nullopt;
        Json obj = Json::object();
        skip_ws();
        if (consume('}')) return obj;
        while (true) {
            skip_ws();
            std::optional<std::string> key = string();
            if (!key) return std::nullopt;
            skip_ws();
            if (!consume(':')) return std::nullopt;
            std::optional<Json> v = value();
            if (!v) return std::nullopt;
            obj.set(*key, std::move(*v));
            skip_ws();
            if (consume(',')) continue;
            if (consume('}')) return obj;
            return std::nullopt;
        }
    }

    std::optional<Json> array() {
        const DepthGuard guard(this);
        if (!guard.ok) return std::nullopt;
        if (!consume('[')) return std::nullopt;
        Json arr = Json::array();
        skip_ws();
        if (consume(']')) return arr;
        while (true) {
            std::optional<Json> v = value();
            if (!v) return std::nullopt;
            arr.push_back(std::move(*v));
            skip_ws();
            if (consume(',')) continue;
            if (consume(']')) return arr;
            return std::nullopt;
        }
    }

    /// One 4-hex-digit escape payload; std::nullopt on truncation or a
    /// non-hex digit.  Surrogate pairing happens in the caller.
    std::optional<unsigned> hex4() {
        if (pos + 4 > text.size()) return std::nullopt;
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
                return std::nullopt;
            }
        }
        return code;
    }

    static void utf8_encode(std::string& out, unsigned code) {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
    }

    /// Copies one raw (non-escape) UTF-8 sequence starting at text[pos]
    /// into `out`, validating length, continuation bytes, shortest
    /// form, and the code-point range.  False on any malformed byte —
    /// a truncated multi-byte tail or stray 0x80..0xFF must fail the
    /// parse, not smuggle invalid bytes into re-exported artifacts.
    bool copy_utf8(std::string& out) {
        const unsigned char b0 = static_cast<unsigned char>(text[pos]);
        std::size_t len = 0;
        unsigned code = 0;
        if (b0 < 0x80) {
            len = 1;
            code = b0;
        } else if ((b0 & 0xE0) == 0xC0) {
            len = 2;
            code = b0 & 0x1Fu;
        } else if ((b0 & 0xF0) == 0xE0) {
            len = 3;
            code = b0 & 0x0Fu;
        } else if ((b0 & 0xF8) == 0xF0) {
            len = 4;
            code = b0 & 0x07u;
        } else {
            return false;  // continuation byte or 0xF8+: never a lead
        }
        if (pos + len > text.size()) return false;
        for (std::size_t i = 1; i < len; ++i) {
            const unsigned char b = static_cast<unsigned char>(
                text[pos + i]);
            if ((b & 0xC0) != 0x80) return false;
            code = (code << 6) | (b & 0x3Fu);
        }
        static constexpr unsigned kMinForLen[5] = {0, 0, 0x80, 0x800,
                                                   0x10000};
        if (len > 1 && code < kMinForLen[len]) return false;  // overlong
        if (code > 0x10FFFF) return false;
        if (code >= 0xD800 && code <= 0xDFFF) return false;  // surrogate
        out.append(text.substr(pos, len));
        pos += len;
        return true;
    }

    std::optional<std::string> string() {
        if (!consume('"')) return std::nullopt;
        std::string out;
        while (!eof()) {
            const char c = text[pos];
            if (c == '"') {
                ++pos;
                return out;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                // Raw control bytes (including newlines) must be
                // escaped per RFC 8259; accepting them corrupts
                // line-oriented artifact processing downstream.
                return std::nullopt;
            }
            if (c != '\\') {
                if (!copy_utf8(out)) return std::nullopt;
                continue;
            }
            ++pos;
            if (eof()) return std::nullopt;
            const char esc = text[pos++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    std::optional<unsigned> code = hex4();
                    if (!code) return std::nullopt;
                    unsigned cp = *code;
                    if (cp >= 0xDC00 && cp <= 0xDFFF) {
                        return std::nullopt;  // lone low surrogate
                    }
                    if (cp >= 0xD800 && cp <= 0xDBFF) {
                        // High surrogate: a \uDC00..\uDFFF low half
                        // must follow, combining to one code point.
                        if (pos + 2 > text.size() || text[pos] != '\\' ||
                            text[pos + 1] != 'u') {
                            return std::nullopt;
                        }
                        pos += 2;
                        std::optional<unsigned> low = hex4();
                        if (!low || *low < 0xDC00 || *low > 0xDFFF) {
                            return std::nullopt;
                        }
                        cp = 0x10000 + ((cp - 0xD800) << 10) +
                             (*low - 0xDC00);
                    }
                    utf8_encode(out, cp);
                    break;
                }
                default: return std::nullopt;
            }
        }
        return std::nullopt;  // unterminated string
    }

    std::optional<Json> number() {
        const std::size_t start = pos;
        if (!eof() && (peek() == '-' || peek() == '+')) ++pos;
        bool is_integer = true;
        while (!eof()) {
            const char c = peek();
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '-' ||
                       c == '+') {
                if (c == '.' || c == 'e' || c == 'E') is_integer = false;
                ++pos;
            } else {
                break;
            }
        }
        const std::string_view tok = text.substr(start, pos - start);
        if (tok.empty()) return std::nullopt;
        if (is_integer) {
            std::int64_t v = 0;
            const auto [ptr, ec] =
                std::from_chars(tok.data(), tok.data() + tok.size(), v);
            if (ec == std::errc{} && ptr == tok.data() + tok.size()) {
                return Json(static_cast<long long>(v));
            }
        }
        // Fall back to double (also covers integers out of int64 range).
        char buf[64];
        if (tok.size() >= sizeof(buf)) return std::nullopt;
        std::memcpy(buf, tok.data(), tok.size());
        buf[tok.size()] = '\0';
        char* end = nullptr;
        const double v = std::strtod(buf, &end);
        if (end != buf + tok.size()) return std::nullopt;
        return Json(v);
    }
};

}  // namespace

Json& Json::push_back(Json value) {
    if (type_ == Type::null) type_ = Type::array;
    items_.push_back(std::move(value));
    return items_.back();
}

Json& Json::set(std::string_view key, Json value) {
    if (type_ == Type::null) type_ = Type::object;
    for (auto& [k, v] : members_) {
        if (k == key) {
            v = std::move(value);
            return v;
        }
    }
    members_.emplace_back(std::string(key), std::move(value));
    return members_.back().second;
}

const Json* Json::find(std::string_view key) const {
    if (!is_object()) return nullptr;
    for (const auto& [k, v] : members_) {
        if (k == key) return &v;
    }
    return nullptr;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
    const auto newline_pad = [&](int d) {
        if (indent <= 0) return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent * d), ' ');
    };
    switch (type_) {
        case Type::null: out += "null"; break;
        case Type::boolean: out += bool_ ? "true" : "false"; break;
        case Type::integer: {
            char buf[24];
            const int n = std::snprintf(buf, sizeof(buf), "%" PRId64, int_);
            out.append(buf, static_cast<std::size_t>(n));
            break;
        }
        case Type::number: append_double(out, num_); break;
        case Type::string: append_escaped(out, str_); break;
        case Type::array: {
            out += '[';
            for (std::size_t i = 0; i < items_.size(); ++i) {
                if (i) out += ',';
                newline_pad(depth + 1);
                items_[i].dump_to(out, indent, depth + 1);
            }
            if (!items_.empty()) newline_pad(depth);
            out += ']';
            break;
        }
        case Type::object: {
            out += '{';
            for (std::size_t i = 0; i < members_.size(); ++i) {
                if (i) out += ',';
                newline_pad(depth + 1);
                append_escaped(out, members_[i].first);
                out += indent > 0 ? ": " : ":";
                members_[i].second.dump_to(out, indent, depth + 1);
            }
            if (!members_.empty()) newline_pad(depth);
            out += '}';
            break;
        }
    }
}

std::string Json::dump(int indent) const {
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

std::optional<Json> Json::parse(std::string_view text) {
    Parser p{text};
    std::optional<Json> v = p.value();
    if (!v) return std::nullopt;
    p.skip_ws();
    if (!p.eof()) return std::nullopt;
    return v;
}

}  // namespace tme::obs
