#include "core/fanout.hpp"

#include <gtest/gtest.h>

#include <random>

#include "linalg/stats.hpp"

#include "core/metrics.hpp"
#include "test_helpers.hpp"
#include "traffic/traffic_matrix.hpp"

namespace tme::core {
namespace {

using testing::SmallNetwork;
using testing::tiny_network;

// Builds a window of demands with EXACTLY constant fanouts and varying
// per-source totals — the model the estimator assumes.
SeriesProblem constant_fanout_series(const SmallNetwork& net,
                                     std::size_t samples, unsigned seed,
                                     std::vector<linalg::Vector>* out) {
    const std::size_t nodes = net.topo.pop_count();
    const linalg::Vector alpha =
        traffic::fanouts_from_demands(nodes, net.truth);
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(0.5, 2.0);
    std::vector<linalg::Vector> demands;
    for (std::size_t k = 0; k < samples; ++k) {
        linalg::Vector totals(nodes);
        for (double& v : totals) v = dist(rng);
        demands.push_back(
            traffic::demands_from_fanouts(nodes, alpha, totals));
    }
    if (out != nullptr) *out = demands;
    return net.series(demands);
}

TEST(Fanout, RecoversConstantFanoutsExactly) {
    const SmallNetwork net = tiny_network(2);
    const SeriesProblem series = constant_fanout_series(net, 6, 3, nullptr);
    // Exact-recovery checks use the paper's pure formulation (the data
    // here is rich: totals vary a lot, so no tie-break is needed).
    FanoutOptions pure;
    pure.gravity_tiebreak_weight = 0.0;
    const FanoutResult r = fanout_estimate(series, pure);
    const linalg::Vector alpha =
        traffic::fanouts_from_demands(net.topo.pop_count(), net.truth);
    for (std::size_t p = 0; p < alpha.size(); ++p) {
        EXPECT_NEAR(r.fanouts[p], alpha[p], 1e-4);
    }
    EXPECT_LT(r.equality_violation, 1e-5);
}

TEST(Fanout, FanoutsSumToOnePerSource) {
    const SmallNetwork net = tiny_network(7);
    const SeriesProblem series = constant_fanout_series(net, 4, 9, nullptr);
    const FanoutResult r = fanout_estimate(series);
    const topology::Topology& t = net.topo;
    for (std::size_t n = 0; n < t.pop_count(); ++n) {
        double row = 0.0;
        for (std::size_t m = 0; m < t.pop_count(); ++m) {
            if (m != n) row += r.fanouts[t.pair_index(n, m)];
        }
        EXPECT_NEAR(row, 1.0, 1e-5);
    }
}

TEST(Fanout, MeanDemandsMatchTruthOnConstantFanoutData) {
    const SmallNetwork net = tiny_network(4);
    std::vector<linalg::Vector> demands;
    const SeriesProblem series = constant_fanout_series(net, 8, 5, &demands);
    FanoutOptions pure;
    pure.gravity_tiebreak_weight = 0.0;
    const FanoutResult r = fanout_estimate(series, pure);
    const linalg::Vector mean = linalg::sample_mean(demands);
    for (std::size_t p = 0; p < mean.size(); ++p) {
        EXPECT_NEAR(r.mean_demands[p], mean[p], 1e-3 * (1.0 + mean[p]));
    }
}

TEST(Fanout, SingleSnapshotStillProducesEstimate) {
    // Window of 1 (paper Fig. 10 left panel): underdetermined but the
    // QP still returns a feasible fanout vector.
    const SmallNetwork net = tiny_network(6);
    const SeriesProblem series = constant_fanout_series(net, 1, 2, nullptr);
    const FanoutResult r = fanout_estimate(series);
    for (double v : r.fanouts) EXPECT_GE(v, -1e-10);
    EXPECT_LT(r.equality_violation, 1e-5);
}

TEST(Fanout, NonNegativeFanouts) {
    const SmallNetwork net = tiny_network(12);
    const SeriesProblem series = constant_fanout_series(net, 5, 1, nullptr);
    const FanoutResult r = fanout_estimate(series);
    for (double v : r.fanouts) EXPECT_GE(v, 0.0);
}

TEST(Fanout, SnapshotDemandReconstruction) {
    const SmallNetwork net = tiny_network(3);
    const linalg::Vector alpha =
        traffic::fanouts_from_demands(net.topo.pop_count(), net.truth);
    const linalg::Vector demands =
        demands_from_fanout_snapshot(net.snapshot(), alpha);
    for (std::size_t p = 0; p < net.truth.size(); ++p) {
        EXPECT_NEAR(demands[p], net.truth[p], 1e-9);
    }
    EXPECT_THROW(
        demands_from_fanout_snapshot(net.snapshot(),
                                     linalg::Vector(2, 0.5)),
        std::invalid_argument);
}

TEST(Fanout, RequiresTopology) {
    const SmallNetwork net = tiny_network();
    SeriesProblem series = constant_fanout_series(net, 2, 1, nullptr);
    series.topo = nullptr;
    EXPECT_THROW(fanout_estimate(series), std::invalid_argument);
}

TEST(Fanout, SharedConstraintsIdentical) {
    const SmallNetwork net = tiny_network(5);
    const SeriesProblem series = constant_fanout_series(net, 5, 8, nullptr);
    const FanoutResult plain = fanout_estimate(series);

    const FanoutConstraints constraints =
        FanoutConstraints::build(net.topo);
    FanoutOptions options;
    options.shared_constraints = &constraints;
    const FanoutResult shared = fanout_estimate(series, options);
    // Same constraint values, same deterministic QP path: bit-for-bit.
    ASSERT_EQ(shared.fanouts.size(), plain.fanouts.size());
    for (std::size_t p = 0; p < plain.fanouts.size(); ++p) {
        EXPECT_EQ(shared.fanouts[p], plain.fanouts[p]);
    }

    FanoutConstraints wrong = constraints;
    wrong.source_of.pop_back();
    FanoutOptions bad;
    bad.shared_constraints = &wrong;
    EXPECT_THROW(fanout_estimate(series, bad), std::invalid_argument);
}

TEST(Fanout, SharedSparseGramIdentical) {
    const SmallNetwork net = tiny_network(6);
    const SeriesProblem series = constant_fanout_series(net, 5, 13, nullptr);
    const FanoutResult plain = fanout_estimate(series);

    const linalg::SparseMatrix gram = linalg::gram_sparse_csr(net.routing);
    FanoutOptions options;
    options.shared_sparse_gram = &gram;
    const FanoutResult shared = fanout_estimate(series, options);
    // Same Gram values, same deterministic QP path: bit-for-bit.
    ASSERT_EQ(shared.fanouts.size(), plain.fanouts.size());
    for (std::size_t p = 0; p < plain.fanouts.size(); ++p) {
        EXPECT_EQ(shared.fanouts[p], plain.fanouts[p]);
    }

    const linalg::SparseMatrix wrong(2, 2, {});
    FanoutOptions bad;
    bad.shared_sparse_gram = &wrong;
    EXPECT_THROW(fanout_estimate(series, bad), std::invalid_argument);
}

TEST(Fanout, ForcedCgQpPathStaysCloseToExact) {
    // Routing the factored QP through the projected-CG branch (as a
    // 100+ PoP backbone would) must reproduce the exact-LU fanouts to
    // solver precision.
    const SmallNetwork net = tiny_network(8);
    const SeriesProblem series = constant_fanout_series(net, 6, 7, nullptr);
    const FanoutResult exact = fanout_estimate(series);
    FanoutOptions options;
    options.qp.dense_kkt_limit = 0;
    const FanoutResult cg = fanout_estimate(series, options);
    EXPECT_GT(cg.qp_cg_iterations, 0u);
    EXPECT_EQ(exact.qp_cg_iterations, 0u);
    for (std::size_t p = 0; p < exact.fanouts.size(); ++p) {
        EXPECT_NEAR(cg.fanouts[p], exact.fanouts[p], 1e-6);
    }
    EXPECT_LT(cg.equality_violation, 1e-8);
}

TEST(Fanout, WarmStartSameEstimate) {
    const SmallNetwork net = tiny_network(9);
    const SeriesProblem series = constant_fanout_series(net, 6, 4, nullptr);
    const FanoutResult cold = fanout_estimate(series);

    // Warm start from the cold solution's active set: the QP verifies
    // the seed and must land on the same minimizer in fewer KKT solves.
    FanoutOptions options;
    options.warm_start = &cold.fanouts;
    const FanoutResult warm = fanout_estimate(series, options);
    EXPECT_TRUE(warm.warm_accepted);
    EXPECT_LE(warm.qp_iterations, cold.qp_iterations);
    for (std::size_t p = 0; p < cold.fanouts.size(); ++p) {
        EXPECT_NEAR(warm.fanouts[p], cold.fanouts[p], 1e-9);
        EXPECT_NEAR(warm.mean_demands[p], cold.mean_demands[p], 1e-9);
    }

    const linalg::Vector wrong_size(3, 0.5);
    FanoutOptions bad;
    bad.warm_start = &wrong_size;
    EXPECT_THROW(fanout_estimate(series, bad), std::invalid_argument);
}

TEST(Fanout, WarmStartFromDifferentWindowStillMatchesCold) {
    // Seed window B's solve with window A's fanouts (the engine's
    // streaming pattern); the estimate must equal B's cold solve.
    const SmallNetwork net = tiny_network(11);
    const SeriesProblem a = constant_fanout_series(net, 6, 21, nullptr);
    const SeriesProblem b = constant_fanout_series(net, 6, 22, nullptr);
    const FanoutResult seed = fanout_estimate(a);
    const FanoutResult cold = fanout_estimate(b);
    FanoutOptions options;
    options.warm_start = &seed.fanouts;
    const FanoutResult warm = fanout_estimate(b, options);
    for (std::size_t p = 0; p < cold.fanouts.size(); ++p) {
        EXPECT_NEAR(warm.fanouts[p], cold.fanouts[p], 1e-9);
    }
}

}  // namespace
}  // namespace tme::core
