#include "core/iterative_bayesian.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/gravity.hpp"
#include "core/metrics.hpp"
#include "test_helpers.hpp"

namespace tme::core {
namespace {

using testing::SmallNetwork;
using testing::tiny_network;

// Window of noisy measurements around the same mean demands.
SeriesProblem noisy_window(const SmallNetwork& net, std::size_t samples,
                           double cv, unsigned seed) {
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> gauss(0.0, 1.0);
    std::vector<linalg::Vector> demands;
    for (std::size_t k = 0; k < samples; ++k) {
        linalg::Vector s = net.truth;
        for (double& v : s) {
            v = std::max(0.0, v * (1.0 + cv * gauss(rng)));
        }
        demands.push_back(std::move(s));
    }
    return net.series(demands);
}

TEST(IterativeBayesian, ConvergesOnNoiselessWindow) {
    const SmallNetwork net = tiny_network(3);
    const SeriesProblem series = noisy_window(net, 4, 0.0, 1);
    linalg::Vector prior(net.truth.size(), 1.0);
    IterativeBayesianOptions options;
    options.max_passes = 30;
    const IterativeBayesianResult r =
        iterative_bayesian_estimate(series, prior, options);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(r.last_change, options.tolerance + 1e-12);
}

TEST(IterativeBayesian, RefinementImprovesOnSinglePass) {
    const SmallNetwork net = tiny_network(5);
    const SeriesProblem series = noisy_window(net, 8, 0.05, 2);
    linalg::Vector prior(net.truth.size(), 1.0);

    IterativeBayesianOptions one_pass;
    one_pass.max_passes = 1;
    IterativeBayesianOptions many;
    many.max_passes = 16;

    const double mre_one = mre_at_coverage(
        net.truth,
        iterative_bayesian_estimate(series, prior, one_pass).s, 0.9);
    const double mre_many = mre_at_coverage(
        net.truth, iterative_bayesian_estimate(series, prior, many).s,
        0.9);
    EXPECT_LE(mre_many, mre_one + 1e-9);
}

TEST(IterativeBayesian, FixedPointAtTruth) {
    const SmallNetwork net = tiny_network(7);
    const SeriesProblem series = noisy_window(net, 3, 0.0, 3);
    IterativeBayesianOptions options;
    const IterativeBayesianResult r =
        iterative_bayesian_estimate(series, net.truth, options);
    for (std::size_t p = 0; p < net.truth.size(); ++p) {
        EXPECT_NEAR(r.s[p], net.truth[p], 1e-6 * (1.0 + net.truth[p]));
    }
    EXPECT_TRUE(r.converged);
}

TEST(IterativeBayesian, Validation) {
    const SmallNetwork net = tiny_network();
    const SeriesProblem series = noisy_window(net, 2, 0.0, 4);
    EXPECT_THROW(
        iterative_bayesian_estimate(series, linalg::Vector(2, 1.0)),
        std::invalid_argument);
    IterativeBayesianOptions bad;
    bad.max_passes = 0;
    linalg::Vector prior(net.truth.size(), 1.0);
    EXPECT_THROW(iterative_bayesian_estimate(series, prior, bad),
                 std::invalid_argument);
}

TEST(IterativeBayesian, CyclesOverWindow) {
    // More passes than samples: the pass counter can exceed the window
    // because measurements are reused cyclically.
    const SmallNetwork net = tiny_network(8);
    const SeriesProblem series = noisy_window(net, 2, 0.02, 5);
    linalg::Vector prior(net.truth.size(), 1.0);
    IterativeBayesianOptions options;
    options.max_passes = 9;
    options.tolerance = 0.0;  // force all passes
    const IterativeBayesianResult r =
        iterative_bayesian_estimate(series, prior, options);
    EXPECT_EQ(r.passes, 9u);
}

}  // namespace
}  // namespace tme::core
