// Immutable per-window estimate snapshot — the unit the serving layer
// publishes and readers query.
//
// Each completed engine window becomes one EstimateSnapshot: every
// method's estimate vector, its MRE (NaN when the feed had no truth),
// its wall time and solver counters, plus the window bounds and the
// routing-epoch fingerprint the estimates were computed under.  A
// snapshot is frozen exactly once — when EstimateStore::publish()
// assigns its version — and never mutated afterwards, which is what
// makes the store's lock-free read path safe: a reader that wins the
// version check holds a pointer to data nobody will ever write again.
//
// Freezing computes a 64-bit FNV-1a checksum over the version, the
// window identity and every estimate's bit pattern; consistent()
// recomputes it, so a torn read (impossible by design, asserted by the
// stress tests and bench) is detectable rather than silent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "engine/scheduler.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"

namespace tme::serve {

/// One method's published output for one window (a value-copy of the
/// engine's MethodRun, decoupled from engine buffers).
struct MethodEstimate {
    engine::Method method = engine::Method::gravity;
    linalg::Vector estimate;  ///< per-OD-pair demand estimate
    double mre = 0.0;         ///< NaN when the window was unscored
    double seconds = 0.0;
    bool warm_started = false;
    bool warm_accepted = false;
    obs::SolverCounters solver;
    /// Graceful-degradation flags (engine/method.hpp): readers must
    /// check `quality` before trusting the estimate — degraded/stale/
    /// failed windows are published (never silently dropped) but
    /// labelled.
    engine::EstimateQuality quality = engine::EstimateQuality::exact;
    bool used_fallback = false;
    /// Method that actually produced the estimate (== method unless
    /// used_fallback).
    engine::Method fallback_method = engine::Method::gravity;
    std::size_t stale_age = 0;  ///< windows old, quality == stale only
};

class EstimateSnapshot
    : public std::enable_shared_from_this<EstimateSnapshot> {
  public:
    EstimateSnapshot() = default;

    /// Value-copies one window result into a publishable snapshot.
    /// The version stays 0 (unpublished) until a store freezes it.
    static EstimateSnapshot from_window(const engine::WindowResult& window);

    /// Store-assigned publication version; 0 before publication.
    std::uint64_t version() const { return version_; }
    std::size_t window_start_sample() const { return window_start_sample_; }
    std::size_t window_end_sample() const { return window_end_sample_; }
    std::size_t window_size() const { return window_size_; }
    std::uint64_t epoch_fingerprint() const { return epoch_fingerprint_; }
    /// Wall time of the window's whole estimation pass.
    double window_seconds() const { return window_seconds_; }

    const std::vector<MethodEstimate>& methods() const { return methods_; }
    /// The published estimate for `m`, or nullptr if the window did not
    /// run it (series methods below min_series_window).
    const MethodEstimate* find(engine::Method m) const;
    /// OD-pair count of the estimate vectors (0 for an empty window).
    std::size_t pair_count() const {
        return methods_.empty() ? 0 : methods_.front().estimate.size();
    }
    /// Solver-counter telemetry summed over the window's methods.
    obs::SolverCounters solver_totals() const;

    /// Checksum frozen at publication (0 before).
    std::uint64_t checksum() const { return checksum_; }
    /// Recomputes the checksum over the current bytes; false means the
    /// snapshot was torn or mutated after freeze — which the store's
    /// protocol makes impossible, so the stress tests assert it.
    bool consistent() const {
        return version_ != 0 && compute_checksum() == checksum_;
    }

    /// Snapshot metadata as an obs::Json document.  The 64-bit epoch
    /// fingerprint and checksum are exported as "0x..." hex strings:
    /// obs::Json integers are int64, and a high-bit fingerprint must
    /// survive a dump/parse round trip exactly.  Estimate vectors are
    /// included only when `include_estimates` (they dominate the size).
    obs::Json to_json(bool include_estimates = false) const;

  private:
    friend class EstimateStore;

    /// Assigns the publication version and seals the checksum.  Called
    /// exactly once, by the publishing store, before the snapshot
    /// becomes reachable by any reader.
    void freeze(std::uint64_t version);
    std::uint64_t compute_checksum() const;

    std::uint64_t version_ = 0;
    std::size_t window_start_sample_ = 0;
    std::size_t window_end_sample_ = 0;
    std::size_t window_size_ = 0;
    std::uint64_t epoch_fingerprint_ = 0;
    double window_seconds_ = 0.0;
    std::vector<MethodEstimate> methods_;
    std::uint64_t checksum_ = 0;
};

}  // namespace tme::serve
