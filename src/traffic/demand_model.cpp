#include "traffic/demand_model.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

#include "traffic/traffic_matrix.hpp"

namespace tme::traffic {

linalg::Vector base_demands(const topology::Topology& topo,
                            const DemandModelConfig& config) {
    const std::size_t n = topo.pop_count();
    const std::size_t pairs = topo.pair_count();
    std::mt19937_64 rng(config.seed);
    std::normal_distribution<double> gauss(0.0, 1.0);

    // Product form...
    linalg::Vector s(pairs, 0.0);
    for (std::size_t src = 0; src < n; ++src) {
        for (std::size_t dst = 0; dst < n; ++dst) {
            if (src == dst) continue;
            s[topo.pair_index(src, dst)] =
                topo.pop(src).weight * topo.pop(dst).weight;
        }
    }
    // Log-normal multiplicative jitter.  (Note: with a zero diagonal a
    // product-form matrix is not exactly gravity-reconstructible — the
    // excluded self-traffic skews hub marginals by a few tens of percent
    // for strongly-skewed weights.  This structural error is real in
    // operational networks too and forms the floor of the gravity MRE;
    // jitter and hotspots add the controlled error on top.)
    for (std::size_t src = 0; src < n; ++src) {
        for (std::size_t dst = 0; dst < n; ++dst) {
            if (src == dst) continue;
            s[topo.pair_index(src, dst)] *=
                std::exp(config.lognormal_sigma * gauss(rng));
        }
    }

    // Hotspots: each source concentrates extra traffic on a few
    // destinations of its own (content/peering affinity).  The choice is
    // weighted by destination weight so hotspots land on plausible PoPs,
    // but differs per source, which is exactly what breaks the gravity
    // model's "same fraction to every destination" assumption.
    if (config.hotspot_strength > 0.0 && config.hotspots_per_source > 0) {
        for (std::size_t src = 0; src < n; ++src) {
            double source_total = 0.0;
            for (std::size_t dst = 0; dst < n; ++dst) {
                if (dst != src) source_total += s[topo.pair_index(src, dst)];
            }
            // Weighted sampling without replacement.
            std::vector<std::size_t> candidates;
            std::vector<double> weights;
            for (std::size_t dst = 0; dst < n; ++dst) {
                if (dst == src) continue;
                candidates.push_back(dst);
                weights.push_back(topo.pop(dst).weight);
            }
            const std::size_t picks =
                std::min(config.hotspots_per_source, candidates.size());
            for (std::size_t k = 0; k < picks; ++k) {
                std::discrete_distribution<std::size_t> pick(weights.begin(),
                                                             weights.end());
                const std::size_t chosen = pick(rng);
                const std::size_t dst = candidates[chosen];
                weights[chosen] = 0.0;  // without replacement
                // Boost is itself jittered so hotspot sizes vary.
                const double boost = config.hotspot_strength * source_total /
                                     static_cast<double>(picks) *
                                     std::exp(0.5 * gauss(rng));
                s[topo.pair_index(src, dst)] += boost;
            }
        }
    }

    // Additive iid jitter relative to the mean demand, floored so no
    // demand goes negative (small demands saturate near zero instead).
    if (config.additive_sigma > 0.0) {
        double mean_demand = 0.0;
        for (double v : s) mean_demand += v;
        mean_demand /= static_cast<double>(pairs);
        for (double& v : s) {
            const double bump =
                config.additive_sigma * mean_demand * gauss(rng);
            v = std::max(0.05 * v, v + bump);
        }
    }

    // Normalize to unit total network traffic.
    double total = 0.0;
    for (double v : s) total += v;
    if (total <= 0.0) {
        throw std::logic_error("base_demands: degenerate total");
    }
    for (double& v : s) v /= total;
    return s;
}

linalg::Vector structural_demands(const topology::Topology& topo) {
    const std::size_t n = topo.pop_count();
    linalg::Vector s(topo.pair_count(), 0.0);
    double total = 0.0;
    for (std::size_t src = 0; src < n; ++src) {
        for (std::size_t dst = 0; dst < n; ++dst) {
            if (src == dst) continue;
            const double v = topo.pop(src).weight * topo.pop(dst).weight;
            s[topo.pair_index(src, dst)] = v;
            total += v;
        }
    }
    for (double& v : s) v /= total;
    return s;
}

linalg::Vector gravity_from_marginals(std::size_t nodes,
                                      const linalg::Vector& demands) {
    TrafficMatrix tm(nodes, demands);
    const linalg::Vector in = tm.row_totals();
    const linalg::Vector out = tm.col_totals();
    double total = tm.total();
    if (total <= 0.0) {
        throw std::invalid_argument("gravity_from_marginals: zero traffic");
    }
    linalg::Vector g(demands.size(), 0.0);
    TrafficMatrix gm(nodes);
    for (std::size_t s = 0; s < nodes; ++s) {
        for (std::size_t d = 0; d < nodes; ++d) {
            if (s == d) continue;
            gm.set(s, d, in[s] * out[d] / total);
        }
    }
    return gm.to_pair_vector();
}

}  // namespace tme::traffic
