// Reproduction scenario: everything Section 5 of the paper needs, in one
// object — topology, CSPF routing matrix, 24 hours of 5-minute traffic
// matrices, consistent link loads, and the busy-period window.
//
// Corresponds to the paper's evaluation data set (Section 5.1.4): link
// loads are computed exactly as t[k] = R s[k] from the measured demands
// and the simulated routing, so estimation error is not confounded by
// measurement error.
//
// Calibration constants per network follow DESIGN.md Section 5:
// Europe is mildly non-gravity (small log-normal jitter, weak hotspots),
// America strongly hotspotted; scaling-law exponents c = 1.6 / 1.5
// (paper Fig. 6); busy period = 50 samples around the 18:00 GMT overlap
// of the continental busy hours (paper Fig. 1).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "linalg/sparse.hpp"
#include "topology/topology.hpp"
#include "traffic/generator.hpp"

namespace tme::scenario {

enum class Network { europe, usa };

struct Scenario {
    std::string name;
    topology::Topology topo;
    linalg::SparseMatrix routing;      ///< CSPF LSP-mesh routing matrix
    linalg::Vector base_mean;          ///< busy-hour mean demands
    std::vector<linalg::Vector> demands;  ///< s[k], 288 samples, normalized
    std::vector<linalg::Vector> loads;    ///< t[k] = R s[k]
    std::size_t busy_start = 0;        ///< first busy-period sample
    std::size_t busy_length = 50;      ///< 250 minutes (paper Sec. 5.3.4)
    double scale_mbps = 1.0;           ///< normalized units -> Mbps

    /// Series problem over the busy period (Vardi, fanout).
    core::SeriesProblem busy_series() const;

    /// Series problem over the first `k` busy samples.
    core::SeriesProblem busy_series_window(std::size_t k) const;

    /// Snapshot problem at the middle of the busy period.
    core::SnapshotProblem busy_snapshot() const;

    /// True demands of the busy snapshot (reference for snapshot MRE).
    const linalg::Vector& busy_snapshot_demands() const;

    /// Sample-mean demands over the busy period (reference for series
    /// MRE, as in the paper's Vardi evaluation).
    linalg::Vector busy_mean_demands() const;

    /// Index of the snapshot used by busy_snapshot().
    std::size_t busy_mid() const { return busy_start + busy_length / 2; }

    /// Total network traffic at sample k (normalized).
    double total_at(std::size_t k) const;
};

/// Deterministic scenario for the given network; `seed` varies the random
/// draws while keeping all calibration constants.
Scenario make_scenario(Network network, unsigned seed = 1);

/// Scenario on an arbitrary topology with explicit model knobs (used by
/// property tests).
struct CustomScenarioConfig {
    double lognormal_sigma = 0.4;
    double additive_sigma = 0.0;
    double hotspot_strength = 0.5;
    std::size_t hotspots_per_source = 2;
    /// Fraction of the spatial perturbation (jitter + hotspots) aligned
    /// with the row space of the routing matrix.  On the paper's real
    /// data the regularized estimators recover most of the gravity
    /// error from link loads, which means the true deviations from the
    /// product form are largely visible to R; this knob reproduces that
    /// empirical property (0 = fully random deviations, 1 = fully
    /// link-visible).  See DESIGN.md.
    double rowspace_alignment = 0.0;
    double noise_phi = 0.003;
    double noise_c = 1.6;
    double peak_minute = 18.0 * 60.0;
    double reference_longitude = 0.0;
    /// Longitude-driven busy-hour stagger (solar time = 4 min/degree).
    double minutes_per_degree = 4.0;
    unsigned seed = 1;
};
Scenario make_custom_scenario(topology::Topology topo,
                              const CustomScenarioConfig& config,
                              const std::string& name = "custom");

/// Stress-scaling scenario on a topology::generated_backbone(): the
/// same demand/diurnal machinery as the paper networks at arbitrary PoP
/// count, so engine replays and fleet runs can load
/// hundreds-of-PoP days.  Two scale-conscious defaults differ from the
/// paper assembly: routing comes from plain IGP shortest paths (the
/// bandwidth-constrained CSPF mesh is available via `cspf_routing` but
/// costs P Dijkstra passes with reservations), and the row-space
/// alignment step is skipped (its dense L x L projector assembly is an
/// O(L^2 P) preprocessing artifact of the paper-fidelity calibration,
/// not something stress scaling needs).
struct GeneratedScenarioConfig {
    std::size_t pops = 100;
    double avg_core_degree = 4.0;
    unsigned seed = 1;
    /// Day length in 5-minute samples; trim for smoke tests (the busy
    /// window shrinks with it).
    std::size_t samples = 288;
    bool cspf_routing = false;
};
Scenario make_generated_scenario(const GeneratedScenarioConfig& config);

/// A routing change injected during a replay: every sample with index
/// >= at_sample uses `routing` (until a later event applies).  The
/// matrix must have the scenario's pair count as column count and is not
/// owned — it must outlive the replay.
struct RouteChangeEvent {
    std::size_t at_sample = 0;
    const linalg::SparseMatrix* routing = nullptr;
};

/// Per-sample callback for replay(): the sample index, the routing
/// matrix in effect, the link loads t[k] = R_active s[k], and the true
/// demands s[k].
using SampleSink = std::function<void(
    std::size_t sample, const linalg::SparseMatrix& routing,
    const linalg::Vector& loads, const linalg::Vector& demands)>;

/// Feeds the scenario's full day of samples through `sink` in time
/// order, recomputing link loads under the injected routing changes
/// (events must be sorted by at_sample; samples before the first event
/// use the scenario's own routing).  This is the bridge between the
/// offline evaluation data set and the streaming engine.
void replay(const Scenario& sc, const std::vector<RouteChangeEvent>& events,
            const SampleSink& sink);

}  // namespace tme::scenario
