#include "core/vardi.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/metrics.hpp"
#include "test_helpers.hpp"
#include "traffic/generator.hpp"

namespace tme::core {
namespace {

using testing::SmallNetwork;
using testing::tiny_network;

// Poisson demands in count units (scale 1) so that variance == mean, the
// exact model Vardi assumes.  `boost` lifts the rates into a regime with
// realistic relative noise.
SeriesProblem poisson_series(const SmallNetwork& net, double boost,
                             std::size_t samples, unsigned seed,
                             linalg::Vector* lambda_out = nullptr) {
    linalg::Vector lambda = net.truth;
    for (double& v : lambda) v *= boost;
    if (lambda_out != nullptr) *lambda_out = lambda;
    const auto demands =
        traffic::generate_poisson_series(lambda, 1.0, samples, seed);
    return net.series(demands);
}

TEST(Vardi, FirstMomentsOnlyFitsMeanLoads) {
    const SmallNetwork net = tiny_network();
    const SeriesProblem series = poisson_series(net, 100.0, 30, 1);
    VardiOptions options;
    options.second_moment_weight = 0.0;
    const VardiResult r = vardi_estimate(series, options);
    EXPECT_LT(r.first_moment_residual, 1e-6);
    for (double v : r.lambda) EXPECT_GE(v, 0.0);
}

TEST(Vardi, RecoversPoissonTrafficWithLargeWindow) {
    // On genuinely Poisson traffic with many samples the second moments
    // identify lambda (paper Fig. 12's premise).
    const SmallNetwork net = tiny_network(2);
    linalg::Vector lambda;
    const SeriesProblem series = poisson_series(net, 200.0, 800, 3, &lambda);
    VardiOptions options;
    options.second_moment_weight = 1.0;
    const VardiResult r = vardi_estimate(series, options);
    EXPECT_LT(mre_at_coverage(lambda, r.lambda, 0.95), 0.30);
}

TEST(Vardi, MoreSamplesImproveEstimate) {
    const SmallNetwork net = tiny_network(4);
    VardiOptions options;
    options.second_moment_weight = 1.0;
    linalg::Vector lambda;
    const VardiResult small =
        vardi_estimate(poisson_series(net, 200.0, 20, 5, &lambda), options);
    const VardiResult large =
        vardi_estimate(poisson_series(net, 200.0, 1500, 5), options);
    EXPECT_LT(mre_at_coverage(lambda, large.lambda, 0.95),
              mre_at_coverage(lambda, small.lambda, 0.95) + 1e-9);
}

TEST(Vardi, ResidualDiagnosticsPopulated) {
    const SmallNetwork net = tiny_network();
    const SeriesProblem series = poisson_series(net, 50.0, 40, 7);
    VardiOptions options;
    options.second_moment_weight = 0.5;
    const VardiResult r = vardi_estimate(series, options);
    EXPECT_GT(r.second_moment_residual, 0.0);
    EXPECT_GE(r.first_moment_residual, 0.0);
}

TEST(Vardi, RejectsNegativeWeight) {
    const SmallNetwork net = tiny_network();
    const SeriesProblem series = poisson_series(net, 50.0, 5, 1);
    VardiOptions bad;
    bad.second_moment_weight = -0.1;
    EXPECT_THROW(vardi_estimate(series, bad), std::invalid_argument);
}

TEST(Vardi, RejectsEmptyWindow) {
    const SmallNetwork net = tiny_network();
    SeriesProblem series;
    series.topo = &net.topo;
    series.routing = &net.routing;
    EXPECT_THROW(vardi_estimate(series), std::invalid_argument);
}

TEST(Vardi, GramShortcutMatchesNaiveOnMiniProblem) {
    // Cross-check the closed-form Gram construction against an explicit
    // stacked least-squares matrix on a 2-link, 2-demand system.
    // R = [1 0; 1 1]; demands d; loads t = R d.
    linalg::SparseMatrix r = linalg::SparseMatrix::from_dense(
        linalg::Matrix{{1.0, 0.0}, {1.0, 1.0}});
    topology::Topology dummy;  // not used by vardi_estimate
    SeriesProblem series;
    series.topo = nullptr;
    series.routing = &r;
    std::mt19937_64 rng(8);
    std::poisson_distribution<int> d0(40.0);
    std::poisson_distribution<int> d1(10.0);
    for (int k = 0; k < 2000; ++k) {
        const double a = d0(rng);
        const double b = d1(rng);
        series.loads.push_back({a, a + b});
    }
    VardiOptions options;
    options.second_moment_weight = 1.0;
    const VardiResult res = vardi_estimate(series, options);
    EXPECT_NEAR(res.lambda[0], 40.0, 4.0);
    EXPECT_NEAR(res.lambda[1], 10.0, 2.5);
}

TEST(Vardi, SharedTransformedGramIdentical) {
    const SmallNetwork net = tiny_network(3);
    std::mt19937_64 rng(17);
    std::uniform_real_distribution<double> dist(0.8, 1.2);
    std::vector<linalg::Vector> demands;
    for (std::size_t k = 0; k < 6; ++k) {
        linalg::Vector s = net.truth;
        for (double& v : s) v *= dist(rng);
        demands.push_back(std::move(s));
    }
    const SeriesProblem series = net.series(demands);

    VardiOptions plain_options;
    const VardiResult plain = vardi_estimate(series, plain_options);

    // Transformed Gram built exactly as the engine's epoch cache does.
    const double w = plain_options.second_moment_weight;
    linalg::Matrix transformed = net.routing.gram();
    for (std::size_t p = 0; p < transformed.rows(); ++p) {
        for (std::size_t q = 0; q < transformed.cols(); ++q) {
            const double g1 = transformed(p, q);
            transformed(p, q) = g1 + w * g1 * g1;
        }
    }
    VardiOptions options = plain_options;
    options.shared_transformed_gram = &transformed;
    const VardiResult shared = vardi_estimate(series, options);
    // Same Gram values, same deterministic NNLS path: bit-for-bit.
    ASSERT_EQ(shared.lambda.size(), plain.lambda.size());
    for (std::size_t p = 0; p < plain.lambda.size(); ++p) {
        EXPECT_EQ(shared.lambda[p], plain.lambda[p]);
    }

    const linalg::Matrix wrong(3, 3, 0.0);
    VardiOptions bad;
    bad.shared_transformed_gram = &wrong;
    EXPECT_THROW(vardi_estimate(series, bad), std::invalid_argument);
}

}  // namespace
}  // namespace tme::core
