// Quadratic programming utilities.
//
// The fanout estimator (paper Section 4.2.4) solves
//
//     minimize    sum_k || R S[k] a - t[k] ||^2
//     subject to  sum_m a_nm = 1 for every source n,   a >= 0
//
// i.e. an equality-constrained QP with non-negativity.  Two solvers are
// provided:
//
//  * solve_eq_qp        — KKT system solve, equality constraints only
//                         (used when the non-negativity constraint is
//                         known to be inactive, and inside tests);
//  * solve_eq_qp_nonneg — active-set iteration on the non-negativity
//                         constraints over exact KKT solves of the
//                         equality-constrained subproblem, honouring
//                         both constraint families.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/nnls.hpp"

namespace tme::linalg {

/// Minimizes (1/2) x'Hx - f'x  subject to  E x = d.
/// H must be symmetric positive semi-definite on the nullspace of E.
/// Solved via the KKT system [H E'; E 0][x; nu] = [f; d] with LU.
/// Throws std::runtime_error if the KKT matrix is singular.
Vector solve_eq_qp(const Matrix& h, const Vector& f, const Matrix& e,
                   const Vector& d);

struct EqQpNonnegOptions {
    // Currently empty: the active-set implementation uses exact KKT
    // solves with tolerances derived from diag(H), so there is nothing
    // to configure yet.  The struct is kept in the signature as the
    // extension point for planned warm-start support.
};

struct EqQpNonnegResult {
    Vector x;
    double equality_violation = 0.0;  ///< ||E x - d||_inf after solve
    std::size_t iterations = 0;
    bool converged = false;
};

/// Minimizes (1/2) x'Hx - f'x  subject to  E x = d,  x >= 0, via an
/// active set on the non-negativity constraints with an exact KKT solve
/// of the equality-constrained subproblem at each step.
EqQpNonnegResult solve_eq_qp_nonneg(const Matrix& h, const Vector& f,
                                    const Matrix& e, const Vector& d,
                                    const EqQpNonnegOptions& options = {});

}  // namespace tme::linalg
