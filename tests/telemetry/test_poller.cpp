#include "telemetry/poller.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tme::telemetry {
namespace {

std::vector<std::vector<double>> constant_rates(std::size_t intervals,
                                                std::size_t objects,
                                                double rate) {
    return std::vector<std::vector<double>>(
        intervals, std::vector<double>(objects, rate));
}

TEST(Poller, ExactWithoutJitterOrLoss) {
    PollerConfig config;
    config.jitter_stddev_seconds = 0.0;
    config.loss_probability = 0.0;
    const PollingOutcome out =
        simulate_polling(constant_rates(6, 3, 100.0), config);
    EXPECT_EQ(out.polls_lost, 0u);
    for (std::size_t k = 0; k < 6; ++k) {
        for (std::size_t o = 0; o < 3; ++o) {
            EXPECT_NEAR(out.store.at(o, k), 100.0, 1e-9);
        }
    }
}

TEST(Poller, IntervalAdjustmentHandlesJitter) {
    // With constant true rates, any poll window still measures the exact
    // rate because the counter is divided by the real window length
    // (the paper's Section 5.1.2 adjustment).
    PollerConfig config;
    config.jitter_stddev_seconds = 10.0;
    config.loss_probability = 0.0;
    config.seed = 42;
    const PollingOutcome out =
        simulate_polling(constant_rates(12, 2, 55.0), config);
    for (std::size_t k = 0; k < 12; ++k) {
        for (std::size_t o = 0; o < 2; ++o) {
            EXPECT_NEAR(out.store.at(o, k), 55.0, 1e-9);
        }
    }
}

TEST(Poller, JitterErrorBoundedByRateVariation) {
    // Step change in rate: jittered windows smear only boundary slivers.
    std::vector<std::vector<double>> rates(10,
                                           std::vector<double>(1, 100.0));
    for (std::size_t k = 5; k < 10; ++k) rates[k][0] = 200.0;
    PollerConfig config;
    config.jitter_stddev_seconds = 5.0;
    config.loss_probability = 0.0;
    config.seed = 9;
    const PollingOutcome out = simulate_polling(rates, config);
    for (std::size_t k = 0; k < 10; ++k) {
        const double truth = rates[k][0];
        // 5s jitter on a 300s window changes the measured rate by at
        // most ~ (2*3sigma/300) * |rate step|.
        EXPECT_NEAR(out.store.at(0, k), truth, 100.0 * 30.0 / 300.0 + 1e-6);
    }
}

TEST(Poller, LossAndBackupAccounting) {
    PollerConfig config;
    config.loss_probability = 0.3;
    config.backup_recovery_probability = 0.5;
    config.seed = 7;
    const PollingOutcome out =
        simulate_polling(constant_rates(50, 10, 10.0), config);
    EXPECT_EQ(out.polls_attempted, 500u);
    EXPECT_GT(out.polls_lost, 0u);
    EXPECT_GT(out.polls_recovered, 0u);
    // Unrecovered rate ~ 0.3 * 0.5 = 0.15.
    const double loss_rate = static_cast<double>(out.polls_lost) / 500.0;
    EXPECT_NEAR(loss_rate, 0.15, 0.08);
    EXPECT_NEAR(out.store.loss_fraction(), loss_rate, 1e-12);
}

TEST(Poller, RecoveredPollsStillMeasureRate) {
    PollerConfig config;
    config.loss_probability = 0.4;
    config.backup_recovery_probability = 1.0;  // backup always succeeds
    config.jitter_stddev_seconds = 2.0;
    config.seed = 3;
    const PollingOutcome out =
        simulate_polling(constant_rates(20, 4, 70.0), config);
    EXPECT_EQ(out.polls_lost, 0u);
    for (std::size_t k = 0; k < 20; ++k) {
        for (std::size_t o = 0; o < 4; ++o) {
            EXPECT_NEAR(out.store.at(o, k), 70.0, 1e-9);
        }
    }
}

TEST(Poller, ValidatesInput) {
    PollerConfig config;
    EXPECT_THROW(simulate_polling({}, config), std::invalid_argument);
    std::vector<std::vector<double>> ragged{{1.0, 2.0}, {1.0}};
    EXPECT_THROW(simulate_polling(ragged, config), std::invalid_argument);
    config.poller_count = 0;
    EXPECT_THROW(simulate_polling(constant_rates(2, 2, 1.0), config),
                 std::invalid_argument);
}

TEST(Poller, Deterministic) {
    PollerConfig config;
    config.loss_probability = 0.2;
    config.seed = 12;
    const PollingOutcome a =
        simulate_polling(constant_rates(10, 3, 5.0), config);
    const PollingOutcome b =
        simulate_polling(constant_rates(10, 3, 5.0), config);
    EXPECT_EQ(a.polls_lost, b.polls_lost);
    EXPECT_EQ(a.polls_recovered, b.polls_recovered);
}

}  // namespace
}  // namespace tme::telemetry
