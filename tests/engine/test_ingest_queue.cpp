// Bounded ingestion queue: FIFO order, close-then-drain semantics,
// and backpressure (the producer blocks instead of the queue growing).
#include "engine/ingest_queue.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace tme::engine {
namespace {

IngestItem item_for(std::size_t sample) {
    IngestItem item;
    item.sample = sample;
    item.loads = linalg::Vector{static_cast<double>(sample)};
    return item;
}

TEST(IngestQueue, FifoOrderAndCloseDrainsRemainingItems) {
    IngestQueue queue(8);
    for (std::size_t k = 0; k < 5; ++k) {
        EXPECT_TRUE(queue.push(item_for(k)));
    }
    queue.close();
    // Remaining items are always delivered before end-of-stream.
    for (std::size_t k = 0; k < 5; ++k) {
        const std::optional<IngestItem> item = queue.pop();
        ASSERT_TRUE(item.has_value());
        EXPECT_EQ(item->sample, k);
        ASSERT_EQ(item->loads.size(), 1u);
        EXPECT_EQ(item->loads[0], static_cast<double>(k));
    }
    EXPECT_FALSE(queue.pop().has_value());
    // End-of-stream is sticky.
    EXPECT_FALSE(queue.pop().has_value());
    // Pushing after close drops the item.
    EXPECT_FALSE(queue.push(item_for(99)));
}

TEST(IngestQueue, BackpressureBoundsDepthAndPreservesOrder) {
    constexpr std::size_t kCapacity = 2;
    constexpr std::size_t kItems = 64;
    IngestQueue queue(kCapacity);
    std::thread producer([&] {
        for (std::size_t k = 0; k < kItems; ++k) {
            ASSERT_TRUE(queue.push(item_for(k)));
        }
        queue.close();
    });
    std::vector<std::size_t> seen;
    while (std::optional<IngestItem> item = queue.pop()) {
        seen.push_back(item->sample);
        // A slow consumer forces the producer into the full-queue wait.
        if (seen.size() == 1) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
    }
    producer.join();
    ASSERT_EQ(seen.size(), kItems);
    for (std::size_t k = 0; k < kItems; ++k) {
        EXPECT_EQ(seen[k], k);  // decoupling must never reorder
    }
    // The bound held: the queue never grew past its capacity.
    EXPECT_LE(queue.max_depth(), kCapacity);
    EXPECT_GE(queue.max_depth(), 1u);
}

TEST(IngestQueue, CloseUnblocksAStuckProducer) {
    IngestQueue queue(1);
    ASSERT_TRUE(queue.push(item_for(0)));
    bool second_push_result = true;
    std::thread producer(
        [&] { second_push_result = queue.push(item_for(1)); });
    // Wait until the producer is provably parked on the full queue.
    while (queue.producer_blocks() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    queue.close();
    producer.join();
    // The blocked push was refused instead of deadlocking.
    EXPECT_FALSE(second_push_result);
    // The item accepted before close is still delivered.
    const std::optional<IngestItem> item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(item->sample, 0u);
    EXPECT_FALSE(queue.pop().has_value());
}

TEST(IngestQueue, ZeroCapacityIsRejected) {
    EXPECT_THROW(IngestQueue(0), std::invalid_argument);
}

// Regression: a producer loop that translates a refused push into the
// typed QueueClosedError must be woken by a concurrent close() while
// parked on a full queue — and the error must stay distinguishable
// from a generic runtime_error (replay_scenario_async relies on that
// to tell a consumer hang-up echo from a genuine producer failure).
TEST(IngestQueue, CloseRaisesTypedErrorInBlockedProducer) {
    IngestQueue queue(1);
    ASSERT_TRUE(queue.push(item_for(0)));
    std::exception_ptr producer_error;
    std::thread producer([&] {
        try {
            for (std::size_t k = 1;; ++k) {
                if (!queue.push(item_for(k))) {
                    throw QueueClosedError();
                }
            }
        } catch (...) {
            producer_error = std::current_exception();
        }
    });
    while (queue.producer_blocks() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    queue.close();
    producer.join();
    ASSERT_TRUE(producer_error != nullptr);
    // Typed: catchable specifically, and as a runtime_error generically.
    bool caught_typed = false;
    try {
        std::rethrow_exception(producer_error);
    } catch (const QueueClosedError&) {
        caught_typed = true;
    } catch (const std::runtime_error&) {
        caught_typed = false;
    }
    EXPECT_TRUE(caught_typed);
}

}  // namespace
}  // namespace tme::engine
