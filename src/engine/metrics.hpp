// Engine observability: per-window latency, routing-epoch cache
// statistics, gap bookkeeping, and estimation error against ground
// truth when the feeding scenario provides it.
#pragma once

#include <cstddef>
#include <limits>
#include <map>
#include <string>

#include "engine/method.hpp"

namespace tme::engine {

struct MethodStats {
    std::size_t runs = 0;
    std::size_t warm_runs = 0;
    /// Runs whose warm-start seed survived verification (the fanout
    /// QP can reject an inconsistent seed and fall back to a cold
    /// solve; for the other methods this tracks warm_runs).
    std::size_t warm_accepted_runs = 0;
    double total_seconds = 0.0;
    double last_seconds = 0.0;
    double last_mre = std::numeric_limits<double>::quiet_NaN();
    double mre_sum = 0.0;
    std::size_t mre_count = 0;

    double mean_seconds() const {
        return runs > 0 ? total_seconds / static_cast<double>(runs) : 0.0;
    }
    double mean_mre() const {
        return mre_count > 0
                   ? mre_sum / static_cast<double>(mre_count)
                   : std::numeric_limits<double>::quiet_NaN();
    }
};

struct EngineMetrics {
    std::size_t samples_ingested = 0;
    std::size_t gap_samples = 0;       ///< samples flagged as interpolated
    std::size_t windows_run = 0;
    std::size_t window_flushes = 0;    ///< windows dropped on epoch change
    std::size_t epoch_changes = 0;     ///< routing fingerprint transitions
    std::size_t cache_hits = 0;
    std::size_t cache_misses = 0;
    std::size_t cache_evictions = 0;
    /// Fingerprint hits rejected by the structural-identity check.
    std::size_t cache_collisions = 0;
    /// Method runs skipped by MRE scoring because the truth reference
    /// carried no traffic at all (all-quiet window).
    std::size_t mre_skipped_runs = 0;
    double total_seconds = 0.0;        ///< scheduler time across windows
    double last_window_seconds = 0.0;
    std::map<Method, MethodStats> methods;

    double cache_hit_rate() const {
        const std::size_t total = cache_hits + cache_misses;
        return total > 0 ? static_cast<double>(cache_hits) /
                               static_cast<double>(total)
                         : 0.0;
    }

    /// Multi-line human-readable dump.
    std::string summary() const;
};

}  // namespace tme::engine
