// Network model: PoPs (points of presence) connected by directed core
// links, each PoP terminating one ingress and one egress edge link.
//
// This mirrors the paper's Section 3.1 setup: L directed links split into
// interior (core) links and access/peering edge links; t_e(n) is the load
// on the ingress edge link of node n (total traffic entering the network
// there) and t_x(m) the load on the egress edge link of node m.  Edge
// links appear as ordinary rows of the routing matrix, which is what
// makes gravity models and fanout normalization computable from link
// data alone.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tme::topology {

/// Whether a PoP's edge links attach customers (access) or another
/// network (peering).  The generalized gravity model zeroes peer-to-peer
/// demand (paper Section 4.1).
enum class PopRole { access, peering };

struct Pop {
    std::string name;
    double latitude = 0.0;    ///< degrees, for distance-based IGP metrics
    double longitude = 0.0;   ///< degrees
    double weight = 1.0;      ///< relative user population served
    PopRole role = PopRole::access;
};

enum class LinkKind {
    core,        ///< interior link between two PoPs
    access_in,   ///< edge link carrying traffic INTO the network at a PoP
    access_out,  ///< edge link carrying traffic OUT of the network at a PoP
};

struct Link {
    std::size_t id = 0;
    LinkKind kind = LinkKind::core;
    /// Core: source PoP.  access_in: the PoP entered.  access_out: the PoP
    /// exited.  (Edge links keep src == dst == the PoP.)
    std::size_t src = 0;
    std::size_t dst = 0;
    double capacity_mbps = 0.0;
    double igp_metric = 1.0;  ///< CSPF path cost
};

/// Immutable-after-build network topology.
///
/// Invariants maintained by the builder API:
///  * every PoP has exactly one access_in and one access_out link;
///  * link ids are dense 0..link_count()-1;
///  * core links are directed; add_core_link_pair adds both directions.
class Topology {
  public:
    /// Adds a PoP and its two edge links; returns the PoP index.
    std::size_t add_pop(Pop pop, double edge_capacity_mbps = 40000.0);

    /// Adds one directed core link; returns its id.
    std::size_t add_core_link(std::size_t src, std::size_t dst,
                              double capacity_mbps, double igp_metric);

    /// Adds both directions with equal capacity/metric.
    void add_core_link_pair(std::size_t a, std::size_t b,
                            double capacity_mbps, double igp_metric);

    std::size_t pop_count() const { return pops_.size(); }
    std::size_t link_count() const { return links_.size(); }
    std::size_t core_link_count() const { return core_links_.size(); }

    /// Number of distinct ordered PoP pairs P = N(N-1).
    std::size_t pair_count() const {
        return pops_.size() * (pops_.size() - 1);
    }

    const Pop& pop(std::size_t i) const;
    const Link& link(std::size_t id) const;
    const std::vector<Pop>& pops() const { return pops_; }
    const std::vector<Link>& links() const { return links_; }

    /// Ids of all core links (directed).
    const std::vector<std::size_t>& core_links() const { return core_links_; }

    /// Core links leaving PoP n (for shortest-path traversal).
    const std::vector<std::size_t>& outgoing_core(std::size_t pop) const;

    /// Edge link over which traffic enters the network at PoP n (e(n)).
    std::size_t ingress_link(std::size_t pop) const;

    /// Edge link over which traffic exits the network at PoP m (x(m)).
    std::size_t egress_link(std::size_t pop) const;

    /// True if the core graph is strongly connected (every PoP reaches
    /// every other over core links).
    bool strongly_connected() const;

    /// Index of the ordered pair (src, dst), src != dst, in the canonical
    /// demand-vector enumeration.  Throws std::invalid_argument if
    /// src == dst or out of range.
    std::size_t pair_index(std::size_t src, std::size_t dst) const;

    /// Inverse of pair_index.
    std::pair<std::size_t, std::size_t> pair_nodes(std::size_t pair) const;

  private:
    std::vector<Pop> pops_;
    std::vector<Link> links_;
    std::vector<std::size_t> core_links_;
    std::vector<std::size_t> ingress_;            // per PoP
    std::vector<std::size_t> egress_;             // per PoP
    std::vector<std::vector<std::size_t>> out_;   // per PoP core adjacency
};

/// Great-circle distance in kilometres between two PoPs (haversine).
double great_circle_km(const Pop& a, const Pop& b);

}  // namespace tme::topology
