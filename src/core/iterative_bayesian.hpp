// Iterative Bayesian prior refinement (Vaton & Gravey, ITC 2003 —
// reference [11] of the paper).
//
// The paper's related-work section describes the scheme: estimate the
// traffic matrix from one link-load measurement, use that estimate as
// the prior for the next measurement, and repeat until the estimate
// stops changing.  Each pass is one MAP (Bayesian) solve; over a window
// of measurements the prior accumulates information that a single
// snapshot cannot provide, without assuming any mean-variance model
// (unlike Vardi/Cao).
//
// Implementation notes: measurements are consumed in order, cycling over
// the window when `passes` exceeds its length.  Convergence is declared
// when the relative change of the estimate between consecutive passes
// drops below `tolerance`.
#pragma once

#include "core/bayesian.hpp"
#include "core/problem.hpp"

namespace tme::core {

struct IterativeBayesianOptions {
    /// Regularization for each MAP solve (lambda = sigma^2).
    double regularization = 100.0;
    /// Maximum number of passes over measurements.
    std::size_t max_passes = 20;
    /// Relative-change convergence threshold.
    double tolerance = 1e-4;
};

struct IterativeBayesianResult {
    linalg::Vector s;           ///< final estimate
    std::size_t passes = 0;     ///< measurement passes consumed
    bool converged = false;
    double last_change = 0.0;   ///< final relative iterate change
};

/// Refines `initial_prior` over the measurement window.
IterativeBayesianResult iterative_bayesian_estimate(
    const SeriesProblem& problem, const linalg::Vector& initial_prior,
    const IterativeBayesianOptions& options = {});

}  // namespace tme::core
