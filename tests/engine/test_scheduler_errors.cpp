// Typed scheduler configuration errors: validate_methods() reports a
// bad method list without throwing, and the throwing path carries the
// same typed diagnosis (while still deriving std::invalid_argument for
// legacy catch sites).
#include "engine/scheduler.hpp"

#include <gtest/gtest.h>

#include "core/test_helpers.hpp"
#include "engine/engine.hpp"

namespace tme::engine {
namespace {

using core::testing::SmallNetwork;
using core::testing::tiny_network;

TEST(SchedulerConfig, ValidateReturnsTypedErrorWithoutThrowing) {
    const SchedulerConfigCheck ok = EstimatorScheduler::validate_methods(
        {Method::gravity, Method::vardi, Method::fanout});
    EXPECT_TRUE(ok.ok());
    EXPECT_TRUE(static_cast<bool>(ok));
    EXPECT_EQ(ok.error, SchedulerConfigError::none);
    EXPECT_EQ(ok.message(), "ok");

    const SchedulerConfigCheck dup = EstimatorScheduler::validate_methods(
        {Method::gravity, Method::vardi, Method::vardi});
    EXPECT_FALSE(dup.ok());
    EXPECT_EQ(dup.error, SchedulerConfigError::duplicate_method);
    // The diagnosis names the offending method.
    EXPECT_EQ(dup.offender, Method::vardi);
    EXPECT_NE(dup.message().find("vardi"), std::string::npos);

    const SchedulerConfigCheck empty =
        EstimatorScheduler::validate_methods({});
    EXPECT_FALSE(empty.ok());
    EXPECT_EQ(empty.error, SchedulerConfigError::no_methods);
}

TEST(SchedulerConfig, ConstructorThrowsTheSameTypedDiagnosis) {
    try {
        EstimatorScheduler scheduler(
            {Method::fanout, Method::gravity, Method::fanout},
            MethodOptions{}, 0, true, 3);
        FAIL() << "duplicate method list not rejected";
    } catch (const SchedulerConfigException& e) {
        EXPECT_EQ(e.check().error,
                  SchedulerConfigError::duplicate_method);
        EXPECT_EQ(e.check().offender, Method::fanout);
        EXPECT_NE(std::string(e.what()).find("fanout"),
                  std::string::npos);
    }
    // Legacy catch sites keep working: the typed exception IS an
    // invalid_argument.
    EXPECT_THROW(EstimatorScheduler({}, MethodOptions{}, 0, true, 3),
                 std::invalid_argument);
}

TEST(SchedulerConfig, EngineSurfacesTheTypedError) {
    const SmallNetwork net = tiny_network();
    EngineConfig config;
    config.methods = {Method::bayesian, Method::bayesian};
    try {
        OnlineEngine engine(net.topo, net.routing, config);
        FAIL() << "duplicate method list not rejected";
    } catch (const SchedulerConfigException& e) {
        EXPECT_EQ(e.check().error,
                  SchedulerConfigError::duplicate_method);
        EXPECT_EQ(e.check().offender, Method::bayesian);
    }
    // Callers that validate up front never reach the throw: this is
    // the non-throwing rejection path an ingestion loop should use.
    ASSERT_FALSE(EstimatorScheduler::validate_methods(config.methods));
}

}  // namespace
}  // namespace tme::engine
