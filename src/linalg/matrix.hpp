// Dense row-major matrix of doubles plus the BLAS-level-2/3 surface needed
// by the traffic-matrix estimation solvers (gemv, gemm, transpose, Gram
// products).  The level-3 kernels (gemm, gram) are register-blocked for
// the generated large-backbone workloads while accumulating each output
// element in exactly the same floating-point order as the plain triple
// loop, so results stay bit-for-bit identical to the naive kernels (see
// PERF.md for the blocking scheme and measured speedups).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <new>
#include <string>
#include <type_traits>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace tme::linalg {

namespace detail {

/// calloc-backed zeroed buffer (plus transparent-huge-page advice for
/// multi-MB buffers on Linux); defined in matrix.cpp so the platform
/// headers stay out of this widely included header.  Throws
/// std::bad_alloc on failure.
void* zeroed_allocate(std::size_t bytes);
void zeroed_deallocate(void* p);

/// High-water mark of the largest single Matrix allocation (bytes)
/// since the last reset.  Telemetry for the scale gates: the
/// generated-backbone bench asserts that no estimator ever allocates a
/// dense pairs x pairs structure (the factored fanout QP's whole
/// point), and a counter beats auditing call sites by hand.  Relaxed
/// atomics — cheap enough to leave on unconditionally.
std::size_t peak_matrix_allocation_bytes();
void reset_peak_matrix_allocation();

/// Cumulative bytes handed out by zeroed_allocate since the last
/// reset.  Where the peak answers "did anything quadratic appear?",
/// the total measures allocation *churn* — a solver that allocates the
/// same temporary every window shows up here while staying invisible
/// to the peak.  Reported per phase in BENCH_solvers.json.
std::size_t total_matrix_allocation_bytes();
void reset_total_matrix_allocation();

/// Allocator backing Matrix storage: memory comes from calloc, and
/// value-initialization is a no-op (the pages are already zero).  A
/// zero-filled Gram at generated-backbone scale (hundreds of MB) is
/// thereby mapped as untouched zero pages instead of being written
/// once by the constructor and again by the accumulation — the
/// allocation cost of Matrix(n, n, 0.0) drops from O(n^2) writes to
/// O(1).  Element construction with explicit arguments (fills, copies)
/// behaves normally.
template <typename T>
struct ZeroAllocator {
    using value_type = T;
    using is_always_equal = std::true_type;

    ZeroAllocator() = default;
    template <typename U>
    ZeroAllocator(const ZeroAllocator<U>&) {}

    T* allocate(std::size_t n) {
        if (n == 0) return nullptr;
        return static_cast<T*>(zeroed_allocate(n * sizeof(T)));
    }
    void deallocate(T* p, std::size_t) { zeroed_deallocate(p); }

    /// Value-initialization: already zero from calloc.  (Safe because
    /// Matrix never shrinks-and-regrows its storage in place — every
    /// buffer is freshly allocated.)
    template <typename U>
    void construct(U*) {}
    template <typename U, typename... Args>
    void construct(U* p, Args&&... args) {
        ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
    }

    bool operator==(const ZeroAllocator&) const { return true; }
};

}  // namespace detail

/// Dense row-major matrix.  Invariant: data_.size() == rows_*cols_.
class Matrix {
  public:
    /// Empty 0x0 matrix.
    Matrix() = default;

    /// rows x cols matrix, all entries set to `fill`.
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    /// Builds from nested initializer lists; all rows must have equal size.
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    static Matrix identity(std::size_t n);

    /// Diagonal matrix with d on the diagonal.
    static Matrix diagonal(const Vector& d);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    bool empty() const { return rows_ == 0 || cols_ == 0; }

    double& operator()(std::size_t i, std::size_t j) {
        return data_[i * cols_ + j];
    }
    double operator()(std::size_t i, std::size_t j) const {
        return data_[i * cols_ + j];
    }

    /// Bounds-checked access; throws std::out_of_range.
    double at(std::size_t i, std::size_t j) const;

    /// Pointer to the start of row i (row-major contiguous storage).
    double* row_data(std::size_t i) { return data_.data() + i * cols_; }
    const double* row_data(std::size_t i) const {
        return data_.data() + i * cols_;
    }

    /// Copies row i into a vector.
    Vector row(std::size_t i) const;

    /// Copies column j into a vector.
    Vector col(std::size_t j) const;

    void set_row(std::size_t i, const Vector& v);
    void set_col(std::size_t j, const Vector& v);

    Matrix transposed() const;

    /// Frobenius norm.
    double frobenius_norm() const;

    /// Max |a_ij|.
    double max_abs() const;

    bool operator==(const Matrix& other) const = default;

    /// Human-readable dump (for test failure messages).
    std::string to_string(int precision = 4) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double, detail::ZeroAllocator<double>> data_;
};

/// y = A x.
Vector gemv(const Matrix& a, const Vector& x);

/// y = A' x  (transpose product without forming A').
Vector gemv_transpose(const Matrix& a, const Vector& x);

/// C = A B.
Matrix gemm(const Matrix& a, const Matrix& b);

/// C = A' A  (Gram matrix, exploits symmetry).
Matrix gram(const Matrix& a);

/// Copies the strict upper triangle of a square matrix onto the lower
/// one (tiled — a straight column walk over a multi-hundred-MB Gram is
/// a cache miss per element).  The Gram builders finish with this.
void symmetrize_from_upper(Matrix& g);

/// C = alpha*A + beta*B.
Matrix add(double alpha, const Matrix& a, double beta, const Matrix& b);

/// Stacks A on top of B (same column count).
Matrix vstack(const Matrix& a, const Matrix& b);

/// Maximum absolute difference between two equally-sized matrices.
double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace tme::linalg
