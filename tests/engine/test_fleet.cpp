// FleetDriver: concurrent multi-scenario replays over one topology
// sharing a single epoch cache.  Estimates must match solo serial runs
// bit for bit, the shared cache must build each distinct epoch exactly
// once, and per-job metrics must aggregate into the fleet report.
#include "engine/fleet.hpp"

#include <gtest/gtest.h>

#include "core/route_change.hpp"

namespace tme::engine {
namespace {

scenario::Scenario short_scenario(std::size_t samples, unsigned seed = 1) {
    scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe, seed);
    if (sc.demands.size() > samples) {
        sc.demands.resize(samples);
        sc.loads.resize(samples);
    }
    return sc;
}

EngineConfig small_config(std::size_t window_size) {
    EngineConfig config;
    config.window_size = window_size;
    config.methods = {Method::gravity, Method::bayesian, Method::vardi,
                      Method::fanout};
    config.threads = 0;
    return config;
}

TEST(FleetDriver, MatchesSoloRunsAndBuildsSharedEpochOnce) {
    constexpr std::size_t kSamples = 40;
    const scenario::Scenario sc = short_scenario(kSamples);

    // One scenario, three engine configurations (a config sweep over
    // the same day — all jobs share the scenario's routing epoch).
    const std::size_t windows[] = {6, 10, 14};
    std::vector<FleetJob> jobs(3);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        jobs[j].name = "w" + std::to_string(windows[j]);
        jobs[j].scenario = &sc;
        jobs[j].engine = small_config(windows[j]);
    }

    FleetConfig config;
    config.engine = small_config(12);
    config.concurrency = 3;
    config.keep_windows = true;
    FleetDriver driver(sc.topo, config);
    const FleetReport report = driver.run(jobs);

    ASSERT_EQ(report.jobs.size(), 3u);
    EXPECT_EQ(report.total_windows, 3 * kSamples);
    // The scenario has one routing epoch; three concurrent engines on
    // the shared cache build it exactly once and hit ever after.
    EXPECT_EQ(report.cache_misses, 1u);
    EXPECT_EQ(report.cache_hits, 3 * kSamples - 1);
    EXPECT_EQ(report.cache_collisions, 0u);
    EXPECT_GT(report.wall_seconds, 0.0);
    EXPECT_GT(report.windows_per_second(), 0.0);
    EXPECT_NE(report.summary().find("3 jobs"), std::string::npos);

    for (std::size_t j = 0; j < jobs.size(); ++j) {
        const FleetJobReport& job = report.jobs[j];
        EXPECT_EQ(job.name, jobs[j].name);
        EXPECT_EQ(job.windows, kSamples);
        ASSERT_EQ(job.window_results.size(), kSamples);
        EXPECT_EQ(job.metrics.samples_ingested.load(), kSamples);
        ASSERT_TRUE(job.mean_mre.count(Method::bayesian));

        // Solo serial run with a private cache must agree to the bit.
        OnlineEngine solo(sc.topo, sc.routing, *jobs[j].engine);
        const ReplayResult reference = replay_scenario(solo, sc);
        ASSERT_EQ(reference.windows.size(), kSamples);
        for (std::size_t k = 0; k < kSamples; ++k) {
            const WindowResult& a = reference.windows[k];
            const WindowResult& b = job.window_results[k];
            ASSERT_EQ(a.runs.size(), b.runs.size());
            for (std::size_t m = 0; m < a.runs.size(); ++m) {
                ASSERT_EQ(a.runs[m].estimate.size(),
                          b.runs[m].estimate.size());
                for (std::size_t p = 0; p < a.runs[m].estimate.size();
                     ++p) {
                    EXPECT_EQ(a.runs[m].estimate[p],
                              b.runs[m].estimate[p])
                        << job.name << " window " << k;
                }
            }
        }
        EXPECT_EQ(job.mean_mre.at(Method::bayesian),
                  reference.mean_mre.at(Method::bayesian));
    }
}

TEST(FleetDriver, PerJobRouteChangesKeepEpochsApart) {
    constexpr std::size_t kSamples = 24;
    const scenario::Scenario sc = short_scenario(kSamples);
    const linalg::SparseMatrix reroute_a =
        core::perturbed_routing(sc.topo, 0.8, 3);
    const linalg::SparseMatrix reroute_b =
        core::perturbed_routing(sc.topo, 0.8, 9);
    ASSERT_NE(core::routing_fingerprint(reroute_a),
              core::routing_fingerprint(reroute_b));

    std::vector<FleetJob> jobs(2);
    jobs[0].name = "reroute-a";
    jobs[0].scenario = &sc;
    jobs[0].replay.events = {{kSamples / 2, &reroute_a}};
    jobs[1].name = "reroute-b";
    jobs[1].scenario = &sc;
    jobs[1].replay.events = {{kSamples / 2, &reroute_b}};

    FleetConfig config;
    config.engine = small_config(6);
    config.cache_capacity = 4;  // base + two reroutes fit side by side
    FleetDriver driver(sc.topo, config);
    const FleetReport report = driver.run(jobs);

    // Three distinct epochs were built: the shared base routing once,
    // plus each job's private reroute.
    EXPECT_EQ(report.cache_misses, 3u);
    EXPECT_EQ(report.cache_evictions, 0u);
    for (const FleetJobReport& job : report.jobs) {
        EXPECT_EQ(job.metrics.epoch_changes.load(), 1u);
        EXPECT_EQ(job.metrics.window_flushes.load(), 1u);
        EXPECT_EQ(job.windows, kSamples);
    }

    // The cache outlives the run: a second fleet over the same
    // routings starts warm (no new builds).
    const FleetReport again = driver.run(jobs);
    EXPECT_EQ(again.cache_misses, 3u);
}

TEST(FleetDriver, PipelinedJobsMatchSerialJobs) {
    constexpr std::size_t kSamples = 30;
    const scenario::Scenario sc = short_scenario(kSamples);
    std::vector<FleetJob> jobs(2);
    jobs[0].name = "a";
    jobs[0].scenario = &sc;
    jobs[1].name = "b";
    jobs[1].scenario = &sc;
    jobs[1].engine = small_config(9);

    FleetConfig serial_config;
    serial_config.engine = small_config(6);
    serial_config.keep_windows = true;
    serial_config.async_ingest = false;
    FleetDriver serial_driver(sc.topo, serial_config);
    const FleetReport serial = serial_driver.run(jobs);

    FleetConfig piped_config = serial_config;
    piped_config.pipeline_depth = 3;
    piped_config.engine.threads = 2;
    FleetDriver piped_driver(sc.topo, piped_config);
    const FleetReport piped = piped_driver.run(jobs);

    for (std::size_t j = 0; j < jobs.size(); ++j) {
        ASSERT_EQ(serial.jobs[j].window_results.size(),
                  piped.jobs[j].window_results.size());
        for (std::size_t k = 0; k < kSamples; ++k) {
            const WindowResult& a = serial.jobs[j].window_results[k];
            const WindowResult& b = piped.jobs[j].window_results[k];
            ASSERT_EQ(a.runs.size(), b.runs.size());
            for (std::size_t m = 0; m < a.runs.size(); ++m) {
                for (std::size_t p = 0; p < a.runs[m].estimate.size();
                     ++p) {
                    EXPECT_NEAR(a.runs[m].estimate[p],
                                b.runs[m].estimate[p], 1e-9);
                }
            }
        }
    }
}

TEST(FleetDriver, SharedCacheEvictionChurnDoesNotFlushSiblings) {
    // Regression: when sibling engines' routing churn evicts this
    // engine's epoch from the SHARED cache, the rebuilt epoch (same
    // content, fresh serial) must not read as a routing change — a
    // mid-day window flush would silently change this job's estimates
    // versus a solo run.
    constexpr std::size_t kSamples = 12;
    const scenario::Scenario sc = short_scenario(kSamples);
    const linalg::SparseMatrix other =
        core::perturbed_routing(sc.topo, 0.8, 11);

    const auto cache = std::make_shared<RoutingEpochCache>(1);
    EngineConfig config = small_config(6);
    OnlineEngine churned(sc.topo, sc.routing, config, cache);
    OnlineEngine solo(sc.topo, sc.routing, config);  // private cache
    for (std::size_t k = 0; k < kSamples; ++k) {
        // A "sibling" evicts the shared engine's epoch between every
        // two ingests (capacity 1 makes the churn maximal).
        cache->acquire_shared(other);
        const WindowResult a = churned.ingest(k, sc.loads[k]);
        const WindowResult b = solo.ingest(k, sc.loads[k]);
        ASSERT_EQ(a.runs.size(), b.runs.size());
        for (std::size_t m = 0; m < a.runs.size(); ++m) {
            for (std::size_t p = 0; p < a.runs[m].estimate.size(); ++p) {
                EXPECT_EQ(a.runs[m].estimate[p], b.runs[m].estimate[p])
                    << "window " << k;  // bit-identical to the solo run
            }
        }
    }
    EXPECT_GT(cache->evictions(), 0u);
    EXPECT_EQ(churned.metrics().epoch_changes.load(), 0u);
    EXPECT_EQ(churned.metrics().window_flushes.load(), 0u);
    EXPECT_EQ(churned.window().size(), config.window_size);
}

TEST(FleetDriver, TypedValidationErrors) {
    const scenario::Scenario sc = short_scenario(6);
    FleetConfig config;
    config.engine = small_config(4);

    // Duplicate methods in the fleet template are rejected up front
    // with the scheduler's typed error.
    FleetConfig bad = config;
    bad.engine.methods = {Method::gravity, Method::gravity};
    try {
        FleetDriver driver(sc.topo, bad);
        FAIL() << "duplicate methods not rejected";
    } catch (const SchedulerConfigException& e) {
        EXPECT_EQ(e.check().error,
                  SchedulerConfigError::duplicate_method);
        EXPECT_EQ(e.check().offender, Method::gravity);
    }

    FleetDriver driver(sc.topo, config);
    // Null scenarios and per-job duplicate methods are rejected before
    // any worker starts.
    EXPECT_THROW(driver.run({FleetJob{}}), std::invalid_argument);
    FleetJob job;
    job.name = "dup";
    job.scenario = &sc;
    job.engine = small_config(4);
    job.engine->methods = {Method::vardi, Method::vardi};
    EXPECT_THROW(driver.run({job}), SchedulerConfigException);
}

}  // namespace
}  // namespace tme::engine
