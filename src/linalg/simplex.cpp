#include "linalg/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "linalg/lu.hpp"

namespace tme::linalg {

namespace {

// Internal working state for the revised simplex.  Columns 0..n-1 are the
// structural variables; columns n..n+m-1 are artificials (used by phase 1
// and by redundant-row bookkeeping).
class SimplexState {
  public:
    SimplexState(const Matrix& a, const Vector& b, double tol)
        : m_(a.rows()), n_(a.cols()), a_(a), b_(b), tol_(tol) {
        // Normalize to b >= 0 so the artificial basis is feasible.
        for (std::size_t i = 0; i < m_; ++i) {
            if (b_[i] < 0.0) {
                b_[i] = -b_[i];
                for (std::size_t j = 0; j < n_; ++j) a_(i, j) = -a_(i, j);
            }
        }
    }

    std::size_t m() const { return m_; }
    std::size_t n() const { return n_; }

    // Column j of the extended matrix [A | I].
    Vector column(std::size_t j) const {
        Vector col(m_, 0.0);
        if (j < n_) {
            for (std::size_t i = 0; i < m_; ++i) col[i] = a_(i, j);
        } else {
            col[j - n_] = 1.0;
        }
        return col;
    }

    // Installs the all-artificial basis (phase-1 start).
    void install_artificial_basis() {
        basis_.resize(m_);
        for (std::size_t i = 0; i < m_; ++i) basis_[i] = n_ + i;
        binv_ = Matrix::identity(m_);
        xb_ = b_;
        rebuild_basic_flags();
    }

    // Tries to install a caller-supplied basis; returns false when the
    // basis is singular or primal-infeasible.
    bool install_basis(const std::vector<std::size_t>& basis) {
        if (basis.size() != m_) return false;
        for (std::size_t j : basis) {
            if (j >= n_ + m_) return false;
        }
        Matrix bmat(m_, m_);
        for (std::size_t k = 0; k < m_; ++k) {
            bmat.set_col(k, column(basis[k]));
        }
        Lu lu(bmat);
        if (lu.singular()) return false;
        Matrix binv(m_, m_);
        for (std::size_t k = 0; k < m_; ++k) {
            Vector e(m_, 0.0);
            e[k] = 1.0;
            binv.set_col(k, lu.solve(e));
        }
        Vector xb = gemv(binv, b_);
        for (double v : xb) {
            if (v < -tol_) return false;
        }
        basis_ = basis;
        binv_ = std::move(binv);
        xb_ = std::move(xb);
        for (double& v : xb_) v = std::max(v, 0.0);
        rebuild_basic_flags();
        return true;
    }

    // Runs simplex iterations for the given objective over the extended
    // variable space.  `allow` marks columns eligible to enter the basis.
    // Returns the status and accumulates the iteration count.
    LpStatus iterate(const Vector& cost, const std::vector<bool>& allow,
                     std::size_t max_iterations, std::size_t& iterations) {
        std::size_t degenerate_run = 0;
        while (iterations < max_iterations) {
            ++iterations;
            if (iterations % 256 == 0) refactorize();

            // Simplex multipliers y' = c_B' B^-1.
            Vector cb(m_);
            for (std::size_t i = 0; i < m_; ++i) cb[i] = cost[basis_[i]];
            Vector y = gemv_transpose(binv_, cb);

            // Pricing: Dantzig by default, Bland after degenerate streaks.
            const bool bland = degenerate_run > 2 * (m_ + n_);
            std::size_t entering = SIZE_MAX;
            double best = -tol_;
            for (std::size_t j = 0; j < n_ + m_; ++j) {
                if (!allow[j] || is_basic(j)) continue;
                const double dj = cost[j] - reduced_dot(y, j);
                if (bland) {
                    if (dj < -tol_) {
                        entering = j;
                        break;
                    }
                } else if (dj < best) {
                    best = dj;
                    entering = j;
                }
            }
            if (entering == SIZE_MAX) return LpStatus::optimal;

            // Direction u = B^-1 a_entering.
            Vector u = gemv(binv_, column(entering));

            // Ratio test.
            std::size_t leaving_row = SIZE_MAX;
            double best_ratio = std::numeric_limits<double>::infinity();
            for (std::size_t i = 0; i < m_; ++i) {
                if (u[i] > tol_) {
                    const double ratio = xb_[i] / u[i];
                    if (ratio < best_ratio - tol_ ||
                        (ratio < best_ratio + tol_ &&
                         (leaving_row == SIZE_MAX ||
                          basis_[i] < basis_[leaving_row]))) {
                        best_ratio = ratio;
                        leaving_row = i;
                    }
                }
            }
            if (leaving_row == SIZE_MAX) return LpStatus::unbounded;
            if (best_ratio <= tol_) {
                ++degenerate_run;
            } else {
                degenerate_run = 0;
            }
            pivot(entering, leaving_row, u, best_ratio);
        }
        return LpStatus::iteration_limit;
    }

    // After phase 1: pivot out artificials that remain basic (at zero),
    // or detect that their row is redundant.  Redundant rows keep their
    // artificial basic; it stays at zero because the row is linearly
    // dependent on the others.
    void clean_artificials() {
        for (std::size_t i = 0; i < m_; ++i) {
            if (basis_[i] < n_) continue;
            // Try to replace with any structural column having a nonzero
            // pivot element in row i of B^-1 A.
            std::size_t replacement = SIZE_MAX;
            Vector binv_row(m_);
            for (std::size_t k = 0; k < m_; ++k) binv_row[k] = binv_(i, k);
            for (std::size_t j = 0; j < n_; ++j) {
                if (is_basic(j)) continue;
                double piv = 0.0;
                for (std::size_t k = 0; k < m_; ++k) {
                    piv += binv_row[k] * a_(k, j);
                }
                if (std::abs(piv) > 1e3 * tol_) {
                    replacement = j;
                    break;
                }
            }
            if (replacement != SIZE_MAX) {
                Vector u = gemv(binv_, column(replacement));
                pivot(replacement, i, u, 0.0);
            }
        }
    }

    bool artificials_positive() const {
        for (std::size_t i = 0; i < m_; ++i) {
            if (basis_[i] >= n_ && xb_[i] > 1e3 * tol_) return true;
        }
        return false;
    }

    Vector solution() const {
        Vector x(n_, 0.0);
        for (std::size_t i = 0; i < m_; ++i) {
            if (basis_[i] < n_) x[basis_[i]] = std::max(0.0, xb_[i]);
        }
        return x;
    }

    const std::vector<std::size_t>& basis() const { return basis_; }

  private:
    bool is_basic(std::size_t j) const { return basic_flag_[j]; }

    void rebuild_basic_flags() {
        basic_flag_.assign(n_ + m_, false);
        for (std::size_t j : basis_) basic_flag_[j] = true;
    }

    // y' * (column j of [A|I]) without materializing the column.
    double reduced_dot(const Vector& y, std::size_t j) const {
        if (j < n_) {
            double acc = 0.0;
            for (std::size_t i = 0; i < m_; ++i) acc += y[i] * a_(i, j);
            return acc;
        }
        return y[j - n_];
    }

    void pivot(std::size_t entering, std::size_t leaving_row, const Vector& u,
               double ratio) {
        // Update basic solution.
        for (std::size_t i = 0; i < m_; ++i) xb_[i] -= ratio * u[i];
        xb_[leaving_row] = ratio;
        basic_flag_[basis_[leaving_row]] = false;
        basic_flag_[entering] = true;
        basis_[leaving_row] = entering;
        // Eta update of B^-1: row ops making column `entering` the unit
        // vector e_leaving_row.
        const double piv = u[leaving_row];
        double* prow = binv_.row_data(leaving_row);
        for (std::size_t k = 0; k < m_; ++k) prow[k] /= piv;
        for (std::size_t i = 0; i < m_; ++i) {
            if (i == leaving_row) continue;
            const double f = u[i];
            if (f == 0.0) continue;
            double* row = binv_.row_data(i);
            for (std::size_t k = 0; k < m_; ++k) row[k] -= f * prow[k];
        }
    }

    // Recomputes B^-1 and x_B from scratch to flush accumulated drift.
    void refactorize() {
        Matrix bmat(m_, m_);
        for (std::size_t k = 0; k < m_; ++k) {
            bmat.set_col(k, column(basis_[k]));
        }
        Lu lu(bmat);
        if (lu.singular()) return;  // keep the updated inverse
        for (std::size_t k = 0; k < m_; ++k) {
            Vector e(m_, 0.0);
            e[k] = 1.0;
            binv_.set_col(k, lu.solve(e));
        }
        xb_ = gemv(binv_, b_);
        for (double& v : xb_) v = std::max(v, 0.0);
    }

    std::size_t m_;
    std::size_t n_;
    Matrix a_;
    Vector b_;
    double tol_;
    std::vector<std::size_t> basis_;
    std::vector<bool> basic_flag_;
    Matrix binv_;
    Vector xb_;
};

}  // namespace

LpResult solve_lp(const LpProblem& problem, const LpOptions& options) {
    const std::size_t m = problem.a.rows();
    const std::size_t n = problem.a.cols();
    if (problem.b.size() != m || problem.c.size() != n) {
        throw std::invalid_argument("solve_lp: dimension mismatch");
    }
    const std::size_t max_iter = options.max_iterations > 0
                                     ? options.max_iterations
                                     : 50 * (m + n) + 1000;

    SimplexState state(problem.a, problem.b, options.tolerance);
    LpResult result;

    bool warm = false;
    if (!options.initial_basis.empty()) {
        warm = state.install_basis(options.initial_basis);
    }

    if (!warm) {
        // Phase 1: minimize the sum of artificials.
        state.install_artificial_basis();
        Vector phase1_cost(n + m, 0.0);
        for (std::size_t j = n; j < n + m; ++j) phase1_cost[j] = 1.0;
        std::vector<bool> allow(n + m, true);
        const LpStatus s1 =
            state.iterate(phase1_cost, allow, max_iter, result.iterations);
        if (s1 == LpStatus::iteration_limit) {
            result.status = LpStatus::iteration_limit;
            return result;
        }
        if (state.artificials_positive()) {
            result.status = LpStatus::infeasible;
            return result;
        }
        state.clean_artificials();
    }

    // Phase 2: minimize the real objective; artificials may not re-enter.
    Vector phase2_cost(n + m, 0.0);
    for (std::size_t j = 0; j < n; ++j) phase2_cost[j] = problem.c[j];
    std::vector<bool> allow(n + m, false);
    for (std::size_t j = 0; j < n; ++j) allow[j] = true;
    const LpStatus s2 =
        state.iterate(phase2_cost, allow, max_iter, result.iterations);

    result.status = s2;
    if (s2 == LpStatus::optimal) {
        result.x = state.solution();
        result.objective = dot(problem.c, result.x);
        result.basis = state.basis();
    }
    return result;
}

}  // namespace tme::linalg
