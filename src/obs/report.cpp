#include "obs/report.hpp"

#include <cstdio>
#include <utility>

namespace tme::obs {

Json histogram_to_json(const HistogramSnapshot& snapshot) {
    Json j = Json::object();
    j.set("count", static_cast<long long>(snapshot.count));
    j.set("mean_s", snapshot.mean_seconds());
    j.set("p50_s", snapshot.p50());
    j.set("p95_s", snapshot.p95());
    j.set("p99_s", snapshot.p99());
    j.set("max_s", snapshot.max_seconds());
    if (snapshot.count > 0) j.set("min_s", snapshot.min_seconds());
    return j;
}

Json counters_to_json(const SolverCounters& counters) {
    Json j = Json::object();
    const auto put = [&j](const char* key, std::size_t value) {
        if (value != 0) j.set(key, static_cast<long long>(value));
    };
    put("qp_active_set_rounds", counters.qp_active_set_rounds);
    put("qp_cg_iterations", counters.qp_cg_iterations);
    put("entropy_iterations", counters.entropy_iterations);
    put("entropy_armijo_probes", counters.entropy_armijo_probes);
    put("kruithof_sweeps", counters.kruithof_sweeps);
    put("nnls_pivots", counters.nnls_pivots);
    return j;
}

Report::Report(std::string name) : root_(Json::object()) {
    root_.set("report", std::move(name));
}

bool Report::write_file(const std::string& path, int indent) const {
    // Write-then-rename so the report appears atomically: a reader (CI
    // gate, dashboard scraper) polling `path` sees either the previous
    // complete report or the new complete report, never a torn partial
    // write — and a crash mid-write leaves the previous report intact.
    const std::string text = to_json(indent) + "\n";
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) return false;
    const bool wrote_all =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote_all || !closed) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

}  // namespace tme::obs
