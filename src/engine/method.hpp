// Estimation methods the online engine can schedule per window.
//
// Snapshot methods see only the newest sample of the window; series
// methods (Vardi, fanout) consume the whole sliding window and therefore
// only run once the window holds enough samples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tme::engine {

enum class Method {
    gravity,   ///< simple gravity from edge-link loads (snapshot)
    kruithof,  ///< Kruithof/MART projection of the gravity prior (snapshot)
    entropy,   ///< KL-regularized least squares (snapshot)
    bayesian,  ///< Gaussian-prior regularized NNLS (snapshot)
    vardi,     ///< Poisson moment matching over the window (series)
    fanout,    ///< constant-fanout window LS (series)
};

/// Every method, in enum order.  Keep in sync when extending Method —
/// method_count sizes per-method state tables (e.g. the scheduler's
/// warm-start slots).
inline constexpr Method all_methods[] = {
    Method::gravity, Method::kruithof, Method::entropy,
    Method::bayesian, Method::vardi,   Method::fanout,
};
inline constexpr std::size_t method_count =
    sizeof(all_methods) / sizeof(all_methods[0]);

constexpr const char* method_name(Method m) {
    switch (m) {
        case Method::gravity: return "gravity";
        case Method::kruithof: return "kruithof";
        case Method::entropy: return "entropy";
        case Method::bayesian: return "bayesian";
        case Method::vardi: return "vardi";
        case Method::fanout: return "fanout";
    }
    return "?";
}

constexpr bool is_series_method(Method m) {
    return m == Method::vardi || m == Method::fanout;
}

/// Quality of one method's estimate for one window, as served
/// downstream.  Degradation is graceful and explicit: a window is never
/// silently dropped, it is flagged.
///  * exact    — the configured method ran to completion (including a
///               deliberate iteration cap; see linalg::SolveOutcome).
///  * degraded — the method's own solve was cut by its SolveBudget
///               (best feasible iterate returned), or a fallback method
///               produced the estimate after the configured one failed.
///  * stale    — every method in the fallback chain failed and the
///               estimate is the last good one carried forward
///               (MethodRun::stale_age windows old).
///  * failed   — nothing usable: no fallback succeeded and no last-good
///               estimate exists.  The estimate is all zeros.
enum class EstimateQuality : std::uint8_t {
    exact,
    degraded,
    stale,
    failed,
};

constexpr const char* estimate_quality_name(EstimateQuality q) {
    switch (q) {
        case EstimateQuality::exact: return "exact";
        case EstimateQuality::degraded: return "degraded";
        case EstimateQuality::stale: return "stale";
        case EstimateQuality::failed: return "failed";
    }
    return "?";
}

/// Whether `wanted` appears in a scheduled method list.
inline bool schedules(const std::vector<Method>& methods, Method wanted) {
    for (Method m : methods) {
        if (m == wanted) return true;
    }
    return false;
}

}  // namespace tme::engine
