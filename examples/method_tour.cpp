// Tour of every estimation method in the library on one scenario.
//
// Runs gravity, Kruithof (marginal IPF), Entropy, Bayesian, worst-case
// bounds, fanout estimation, Vardi and the Cao generalized-scaling
// variant on the Europe reference scenario, and prints a Table-2-style
// summary.  A compact map of the public API.
#include <cstdio>

#include "core/bayesian.hpp"
#include "core/cao.hpp"
#include "core/entropy.hpp"
#include "core/fanout.hpp"
#include "core/gravity.hpp"
#include "core/kruithof.hpp"
#include "core/metrics.hpp"
#include "core/vardi.hpp"
#include "core/wcb.hpp"
#include "scenario/scenario.hpp"
#include "traffic/traffic_matrix.hpp"

int main() {
    using namespace tme;
    const scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe);
    const core::SnapshotProblem snap = sc.busy_snapshot();
    const linalg::Vector& truth = sc.busy_snapshot_demands();
    const double thr = core::threshold_for_coverage(truth, 0.9);
    auto mre = [&](const linalg::Vector& est) {
        return core::mean_relative_error(truth, est, thr);
    };
    std::printf("Method tour on the %s scenario (busy-hour snapshot,\n"
                "MRE over demands carrying 90%% of traffic):\n\n",
                sc.name.c_str());

    // --- Snapshot methods -------------------------------------------
    const linalg::Vector gravity = core::gravity_estimate(snap);
    std::printf("  %-34s %.3f\n", "simple gravity model", mre(gravity));

    // Kruithof: adjust the gravity estimate to the measured node totals.
    traffic::TrafficMatrix truth_tm(sc.topo.pop_count(), truth);
    const core::KruithofResult ipf = core::kruithof_ipf(
        sc.topo.pop_count(), gravity, truth_tm.row_totals(),
        truth_tm.col_totals());
    std::printf("  %-34s %.3f (%zu iterations)\n",
                "Kruithof IPF on node totals", mre(ipf.s), ipf.iterations);

    core::EntropyOptions entropy_options;
    entropy_options.regularization = 1000.0;
    const linalg::Vector entropy =
        core::entropy_estimate(snap, gravity, entropy_options);
    std::printf("  %-34s %.3f\n", "entropy (gravity prior)", mre(entropy));

    core::BayesianOptions bayes_options;
    bayes_options.regularization = 10000.0;
    const linalg::Vector bayes =
        core::bayesian_estimate(snap, gravity, bayes_options);
    std::printf("  %-34s %.3f\n", "Bayesian (gravity prior)", mre(bayes));

    const core::WcbResult wcb = core::worst_case_bounds(snap);
    std::printf("  %-34s %.3f (%zu LPs, %zu simplex iterations)\n",
                "worst-case-bound midpoint prior", mre(wcb.midpoint),
                wcb.lps_solved, wcb.simplex_iterations);

    const linalg::Vector bayes_wcb =
        core::bayesian_estimate(snap, wcb.midpoint, bayes_options);
    std::printf("  %-34s %.3f\n", "Bayesian (WCB prior)", mre(bayes_wcb));

    // --- Time-series methods ----------------------------------------
    const core::SeriesProblem series = sc.busy_series();
    const linalg::Vector reference = sc.busy_mean_demands();
    const double thr_series = core::threshold_for_coverage(reference, 0.9);
    auto mre_series = [&](const linalg::Vector& est) {
        return core::mean_relative_error(reference, est, thr_series);
    };

    const core::FanoutResult fanout = core::fanout_estimate(series);
    std::printf("  %-34s %.3f (window %zu)\n", "fanout estimation",
                mre_series(fanout.mean_demands), series.loads.size());

    core::VardiOptions vardi_weak;
    vardi_weak.second_moment_weight = 0.01;
    std::printf("  %-34s %.3f\n", "Vardi (sigma^-2 = 0.01)",
                mre_series(core::vardi_estimate(series, vardi_weak).lambda));

    core::CaoOptions cao_options;
    cao_options.phi = 0.8;
    cao_options.c = 1.6;
    cao_options.second_moment_weight = 0.01;
    std::printf("  %-34s %.3f\n", "Cao generalized scaling (c=1.6)",
                mre_series(core::cao_estimate(series, cao_options).lambda));

    std::printf(
        "\nRegularized methods dominate, gravity is a usable prior, and\n"
        "moment-matching methods trail - the ordering of paper Table 2.\n");
    return 0;
}
