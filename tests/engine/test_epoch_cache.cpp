#include "engine/epoch_cache.hpp"

#include <gtest/gtest.h>

#include "core/route_change.hpp"
#include "core/test_helpers.hpp"
#include "engine/engine.hpp"

namespace tme::engine {
namespace {

using core::routing_fingerprint;
using core::testing::SmallNetwork;
using core::testing::tiny_network;

TEST(RoutingFingerprint, ContentDetermined) {
    const SmallNetwork net = tiny_network();
    const linalg::SparseMatrix copy = net.routing;
    // Same content, different objects: same fingerprint.
    EXPECT_EQ(routing_fingerprint(net.routing), routing_fingerprint(copy));

    // A perturbed reroute yields a different matrix and fingerprint.
    const linalg::SparseMatrix rerouted =
        core::perturbed_routing(net.topo, 0.9, 42);
    ASSERT_EQ(rerouted.cols(), net.routing.cols());
    EXPECT_NE(routing_fingerprint(net.routing),
              routing_fingerprint(rerouted));
}

TEST(RoutingEpochCache, HitMissAndGramCorrectness) {
    const SmallNetwork net = tiny_network();
    RoutingEpochCache cache(2);

    const RoutingEpoch& first = cache.acquire(net.routing);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(first.fingerprint(), routing_fingerprint(net.routing));
    // The cached Gram matrix is exactly R'R of the acquired matrix.
    EXPECT_EQ(linalg::max_abs_diff(first.gram(), net.routing.gram()), 0.0);

    const RoutingEpoch& again = cache.acquire(net.routing);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(again.fingerprint(), first.fingerprint());

    // A route change invalidates: a new epoch is built, and its Gram is
    // the NEW matrix's Gram, never the stale one.
    const linalg::SparseMatrix rerouted =
        core::perturbed_routing(net.topo, 0.9, 42);
    const RoutingEpoch& changed = cache.acquire(rerouted);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(changed.fingerprint(), routing_fingerprint(rerouted));
    EXPECT_EQ(linalg::max_abs_diff(changed.gram(), rerouted.gram()), 0.0);
    EXPECT_GT(linalg::max_abs_diff(changed.gram(), net.routing.gram()),
              0.0);
}

// The dense Gram is lazy: engines scheduling only Gram-free methods
// (gravity, Kruithof) or only the direct-measurement workflow must
// never pay for a P x P matrix.
TEST(RoutingEpochCache, GramIsLazy) {
    const SmallNetwork net = tiny_network();
    RoutingEpochCache cache(2);
    const RoutingEpoch& epoch = cache.acquire(net.routing);
    EXPECT_FALSE(epoch.gram_built());
    // The epoch's private routing copy is content-identical.
    EXPECT_EQ(epoch.routing().nonzeros(), net.routing.nonzeros());

    // The reduced factor builds from the sparse routing copy — still no
    // dense Gram.
    const std::vector<std::size_t> unknown = {0, 2, 5};
    const auto factor = epoch.reduced_factor(unknown, 1e-3);
    ASSERT_NE(factor, nullptr);
    EXPECT_FALSE(epoch.gram_built());
    // ... and matches the dense-Gram slice bitwise.
    const core::ReducedFactor sliced =
        core::ReducedFactor::slice(net.routing.gram(), unknown, 1e-3);
    EXPECT_EQ(linalg::max_abs_diff(factor->gram, sliced.gram), 0.0);

    // First gram() call builds; later calls return the same object.
    const linalg::Matrix& g = epoch.gram();
    EXPECT_TRUE(epoch.gram_built());
    EXPECT_EQ(&epoch.gram(), &g);
    EXPECT_EQ(linalg::max_abs_diff(g, net.routing.gram()), 0.0);
}

TEST(RoutingEpochCache, FlapRecoveryAndEviction) {
    const SmallNetwork net = tiny_network();
    RoutingEpochCache cache(2);
    const linalg::SparseMatrix r2 = core::perturbed_routing(net.topo, 0.9, 1);
    const linalg::SparseMatrix r3 = core::perturbed_routing(net.topo, 0.9, 2);
    ASSERT_NE(routing_fingerprint(r2), routing_fingerprint(r3));

    cache.acquire(net.routing);
    cache.acquire(r2);
    EXPECT_EQ(cache.size(), 2u);

    // Flapping back to the original routing hits the LRU.
    cache.acquire(net.routing);
    EXPECT_EQ(cache.hits(), 1u);

    // A third distinct epoch evicts the least recently used (r2).
    cache.acquire(r3);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.size(), 2u);
    cache.acquire(r2);  // must rebuild
    EXPECT_EQ(cache.misses(), 4u);
}

TEST(OnlineEngine, RouteChangeFlushesWindowAndRebindsEpoch) {
    const SmallNetwork net = tiny_network();
    EngineConfig config;
    config.window_size = 4;
    config.methods = {Method::gravity, Method::bayesian};
    OnlineEngine engine(net.topo, net.routing, config);

    const linalg::Vector loads = net.routing.multiply(net.truth);
    for (std::size_t k = 0; k < 3; ++k) {
        const WindowResult result = engine.ingest(k, loads);
        EXPECT_EQ(result.epoch_fingerprint,
                  routing_fingerprint(net.routing));
    }
    EXPECT_EQ(engine.window().size(), 3u);

    // Re-announcing an identical matrix is NOT an epoch change, but the
    // window must rebind to the new object so it never dangles on a
    // matrix the caller may free.
    const linalg::SparseMatrix same = net.routing;
    engine.set_routing(same);
    engine.ingest(3, loads);
    EXPECT_EQ(engine.metrics().epoch_changes, 0u);
    EXPECT_EQ(engine.window().size(), 4u);
    EXPECT_EQ(engine.window().series().routing, &same);

    // A real reroute flushes the window and switches the epoch.
    const linalg::SparseMatrix rerouted =
        core::perturbed_routing(net.topo, 0.9, 7);
    engine.set_routing(rerouted);
    const linalg::Vector loads2 = rerouted.multiply(net.truth);
    const WindowResult result = engine.ingest(4, loads2);
    EXPECT_EQ(engine.metrics().epoch_changes, 1u);
    EXPECT_EQ(engine.metrics().window_flushes, 1u);
    EXPECT_EQ(engine.window().size(), 1u);
    EXPECT_EQ(result.epoch_fingerprint, routing_fingerprint(rerouted));
    EXPECT_EQ(engine.current_epoch(), routing_fingerprint(rerouted));
}

}  // namespace
}  // namespace tme::engine
