// Combining tomography with direct measurements (paper Section 5.3.6).
//
// A handful of exactly-measured demands (e.g. from targeted NetFlow or
// per-LSP counters) sharply improves link-load tomography: the measured
// demands' contribution is subtracted from the loads, their routing
// columns are removed, and the estimator runs on the reduced problem.
//
// Two selection strategies from the paper:
//  * greedy  — exhaustive search each step for the demand whose exact
//              measurement most decreases the MRE (the oracle curve of
//              Fig. 16);
//  * largest_first — measure demands by size, the "viable practical
//              approach" the paper discusses (estimators rank demand
//              sizes accurately), which needs noticeably more
//              measurements for the same MRE.
#pragma once

#include <functional>
#include <memory>

#include "core/entropy.hpp"
#include "core/problem.hpp"
#include "linalg/cholesky.hpp"

namespace tme::core {

/// Estimator run on the reduced problem: given (problem, prior) returns
/// the demand estimate.  Defaults to the Entropy method as in the paper.
using ReducedEstimator = std::function<linalg::Vector(
    const SnapshotProblem&, const linalg::Vector&)>;

struct DirectMeasurementOptions {
    /// How many demands to measure (curve length).
    std::size_t max_measured = 0;  ///< 0 = all pairs
    /// MRE threshold (same value used for the reported curve).
    double threshold = 0.0;
    /// Estimator for the reduced problems; defaults to Entropy with
    /// regularization 1000.
    ReducedEstimator estimator;
};

struct DirectMeasurementCurve {
    /// measured[i] = pair measured at step i (in order).
    std::vector<std::size_t> measured;
    /// mre[i] = MRE after i demands are measured (mre[0] = no direct
    /// measurements), so size is measured.size() + 1.
    linalg::Vector mre;
};

/// Estimates with a fixed set of exactly-measured demands and returns
/// the full estimate vector (measured entries set to their true values).
linalg::Vector estimate_with_measured(const SnapshotProblem& problem,
                                      const linalg::Vector& prior,
                                      const linalg::Vector& true_demands,
                                      const std::vector<std::size_t>& measured,
                                      const ReducedEstimator& estimator);

/// Reduced-problem factorization for a fixed measured set: the reduced
/// Gram G_u = R_u'R_u (columns `unknown` of the full R) and the
/// Cholesky factor of G_u + tau*I consumed by the factored estimate
/// path below.  In the streaming setting the measured set and the
/// routing stay fixed while load windows arrive every five minutes, so
/// the engine caches this per routing epoch (see
/// engine::RoutingEpoch::reduced_factor) and the per-window cost drops
/// from an O(k^3) factorization to an O(k^2) pair of triangular solves.
struct ReducedFactor {
    std::vector<std::size_t> unknown;  ///< unmeasured pairs, ascending
    linalg::Matrix gram;               ///< R_u' R_u
    double regularization = 0.0;       ///< tau
    linalg::Cholesky chol;             ///< factor of gram + tau*I

    ReducedFactor(std::vector<std::size_t> unknown_pairs,
                  linalg::Matrix reduced_gram, double tau);

    /// Slices G_u out of a precomputed full Gram R'R and factorizes.
    static ReducedFactor slice(const linalg::Matrix& full_gram,
                               std::vector<std::size_t> unknown_pairs,
                               double tau);

    /// Builds G_u straight from the sparse routing matrix (column
    /// selection + sparse Gram) — no dense P x P Gram is ever formed,
    /// which is what makes the direct-measurement workflow viable on
    /// generated backbones whose full Gram would not fit in memory.
    /// Entry-for-entry bitwise equal to slice() on the same inputs.
    static ReducedFactor from_routing(const linalg::SparseMatrix& routing,
                                      std::vector<std::size_t> unknown_pairs,
                                      double tau);
};

/// Source of (shared) reduced factorizations, keyed by the unmeasured
/// pair set.  engine::RoutingEpoch supplies an implementation whose
/// results are invalidated exactly when the routing epoch changes.
using ReducedFactorProvider =
    std::function<std::shared_ptr<const ReducedFactor>(
        const std::vector<std::size_t>& unknown)>;

/// Direct-measurement estimate through a cached factorization: the
/// measured demands' contribution is subtracted from the loads and the
/// remaining demands solve the prior-anchored ridge system
/// (G_u + tau*I) x = R_u' t_reduced + tau * prior_u (negative
/// coordinates clamped to zero).  With an empty provider the factor is
/// built locally from the reduced routing matrix; results are identical
/// either way.
linalg::Vector estimate_with_measured_factored(
    const SnapshotProblem& problem, const linalg::Vector& prior,
    const linalg::Vector& true_demands,
    const std::vector<std::size_t>& measured, double regularization,
    const ReducedFactorProvider& provider = {});

/// Greedy oracle selection (exhaustive search per step, as in the paper).
DirectMeasurementCurve greedy_direct_measurements(
    const SnapshotProblem& problem, const linalg::Vector& prior,
    const linalg::Vector& true_demands,
    const DirectMeasurementOptions& options);

/// Measure demands in descending true-size order.
DirectMeasurementCurve largest_first_direct_measurements(
    const SnapshotProblem& problem, const linalg::Vector& prior,
    const linalg::Vector& true_demands,
    const DirectMeasurementOptions& options);

}  // namespace tme::core
