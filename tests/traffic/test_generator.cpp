#include "traffic/generator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/stats.hpp"
#include "topology/builders.hpp"
#include "traffic/demand_model.hpp"
#include "traffic/traffic_matrix.hpp"

namespace tme::traffic {
namespace {

SeriesConfig quiet_config() {
    SeriesConfig config;
    config.noise.phi = 0.0;
    config.seed = 3;
    return config;
}

TEST(Generator, ProducesRequestedSamples) {
    const topology::Topology t = topology::tiny_backbone();
    const linalg::Vector base = structural_demands(t);
    SeriesConfig config = quiet_config();
    config.samples = 10;
    const auto series = generate_series(t, base, config);
    EXPECT_EQ(series.size(), 10u);
    EXPECT_EQ(series.front().size(), t.pair_count());
}

TEST(Generator, NoiselessFollowsDiurnalMean) {
    const topology::Topology t = topology::tiny_backbone();
    const linalg::Vector base = structural_demands(t);
    SeriesConfig config = quiet_config();
    const auto series = generate_series(t, base, config);
    for (std::size_t k = 0; k < series.size(); k += 48) {
        const linalg::Vector mean = series_mean_at(t, base, config, k);
        for (std::size_t p = 0; p < mean.size(); ++p) {
            EXPECT_NEAR(series[k][p], mean[p], 1e-12);
        }
    }
}

TEST(Generator, DiurnalCycleVisibleInTotals) {
    const topology::Topology t = topology::tiny_backbone();
    const linalg::Vector base = structural_demands(t);
    SeriesConfig config = quiet_config();
    config.profile.peak_minute = 12.0 * 60.0;
    config.profile.trough_fraction = 0.3;
    const auto series = generate_series(t, base, config);
    const double noon = linalg::sum(series[144]);
    const double midnight = linalg::sum(series[0]);
    EXPECT_GT(noon, 2.0 * midnight);
}

TEST(Generator, FanoutsStableUnderDiurnalOnly) {
    // With noise off, per-source diurnal scaling keeps fanouts constant.
    const topology::Topology t = topology::tiny_backbone();
    const linalg::Vector base = structural_demands(t);
    const auto series = generate_series(t, base, quiet_config());
    const linalg::Vector f0 =
        fanouts_from_demands(t.pop_count(), series[0]);
    const linalg::Vector f1 =
        fanouts_from_demands(t.pop_count(), series[144]);
    for (std::size_t p = 0; p < f0.size(); ++p) {
        EXPECT_NEAR(f0[p], f1[p], 1e-9);
    }
}

TEST(Generator, ScalingLawRecovered) {
    // Generate with known (phi, c) at constant mean; the fitted scaling
    // law must recover the exponent (paper Fig. 6 machinery).
    const topology::Topology t = topology::us_backbone();
    DemandModelConfig dm;
    dm.lognormal_sigma = 0.4;
    const linalg::Vector base = base_demands(t, dm);
    SeriesConfig config;
    config.noise.phi = 0.01;
    config.noise.c = 1.5;
    config.profile.trough_fraction = 1.0;  // flat day: constant mean
    config.samples = 200;
    config.seed = 11;
    const auto series = generate_series(t, base, config);

    const linalg::Vector mean = linalg::sample_mean(series);
    linalg::Vector var(mean.size());
    for (std::size_t p = 0; p < mean.size(); ++p) {
        linalg::Vector xs(series.size());
        for (std::size_t k = 0; k < series.size(); ++k) xs[k] = series[k][p];
        var[p] = linalg::variance(xs);
    }
    const linalg::ScalingLawFit fit = linalg::fit_scaling_law(mean, var);
    EXPECT_NEAR(fit.c, 1.5, 0.12);
    EXPECT_GT(fit.r_squared, 0.9);
}

TEST(Generator, RejectsBadInput) {
    const topology::Topology t = topology::tiny_backbone();
    SeriesConfig config;
    EXPECT_THROW(generate_series(t, linalg::Vector(3, 0.1), config),
                 std::invalid_argument);
    config.noise.phi = -1.0;
    EXPECT_THROW(generate_series(t, structural_demands(t), config),
                 std::invalid_argument);
}

TEST(Generator, PoissonSeriesMatchesMoments) {
    linalg::Vector lambda{50.0, 500.0, 5000.0};
    const auto series = generate_poisson_series(lambda, 1.0, 4000, 5);
    ASSERT_EQ(series.size(), 4000u);
    for (std::size_t p = 0; p < lambda.size(); ++p) {
        linalg::Vector xs(series.size());
        for (std::size_t k = 0; k < series.size(); ++k) xs[k] = series[k][p];
        const double m = linalg::mean(xs);
        const double v = linalg::variance(xs);
        EXPECT_NEAR(m, lambda[p], 0.1 * lambda[p]);
        // Poisson: variance == mean.
        EXPECT_NEAR(v / m, 1.0, 0.15);
    }
}

TEST(Generator, PoissonScaleShrinksRelativeNoise) {
    linalg::Vector lambda{10.0};
    const auto coarse = generate_poisson_series(lambda, 1.0, 500, 7);
    const auto fine = generate_poisson_series(lambda, 100.0, 500, 7);
    auto cv = [&](const std::vector<linalg::Vector>& s) {
        linalg::Vector xs(s.size());
        for (std::size_t k = 0; k < s.size(); ++k) xs[k] = s[k][0];
        return std::sqrt(linalg::variance(xs)) / linalg::mean(xs);
    };
    EXPECT_GT(cv(coarse), 2.0 * cv(fine));
}

TEST(Generator, PoissonRejectsBadScale) {
    EXPECT_THROW(generate_poisson_series({1.0}, 0.0, 10, 1),
                 std::invalid_argument);
}

}  // namespace
}  // namespace tme::traffic
