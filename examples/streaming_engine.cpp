// Streaming engine demo: replay the European scenario's full day of
// 5-minute samples through the online estimation engine, inject a
// routing change at midday, and print the per-window MRE of each
// scheduled method.
//
// What to look for in the output:
//  * the engine re-estimates after every sample using its incremental
//    sliding window, warm-starting each solver from the previous
//    window;
//  * at the route change the routing-epoch fingerprint flips, the
//    window is flushed (size drops back to 1) and the epoch cache
//    records exactly one extra miss — stale per-epoch data is never
//    reused;
//  * the per-method MRE is essentially unaffected once the window
//    refills, because the estimators now consume loads consistent with
//    the new routing matrix.
//  * the closing latency table gives each method's p50/p95/p99 from
//    the HDR histograms in EngineMetrics, and the whole replay is
//    traced: load streaming_trace.json into Perfetto / chrome://tracing
//    to see the window spans and per-solver runs nested inside them.
#include <cstdio>

#include "core/route_change.hpp"
#include "engine/replay.hpp"
#include "obs/trace.hpp"

int main() {
    using namespace tme;
    using engine::Method;

    const scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe);

    // An operator reroutes at 12:30 (sample 150): IGP metrics on core
    // links are perturbed and the LSP mesh re-converges.
    const linalg::SparseMatrix rerouted =
        core::perturbed_routing(sc.topo, 0.8, 5);
    constexpr std::size_t change_at = 150;

    engine::EngineConfig config;
    config.window_size = 12;     // one hour of samples
    config.min_series_window = 3;
    config.methods = {Method::gravity, Method::bayesian, Method::vardi,
                      Method::fanout};
    config.threads = 4;
    config.warm_start = true;
    engine::OnlineEngine eng(sc.topo, sc.routing, config);

    engine::ReplayOptions replay;
    replay.events = {{change_at, &rerouted}};
    obs::ScopedTracing tracing(true);  // no-op unless built with TME_TRACING
    const engine::ReplayResult result =
        engine::replay_scenario(eng, sc, replay);

    std::printf("streaming %zu samples through the engine "
                "(route change at sample %zu)\n\n",
                result.windows.size(), change_at);
    std::printf("%7s %6s %10s  %8s %8s %8s %8s\n", "sample", "win",
                "epoch", "gravity", "bayes", "vardi", "fanout");
    for (const engine::WindowResult& window : result.windows) {
        const std::size_t k = window.window_end_sample;
        // Print hourly, plus every window around the route change.
        const bool near_change = k + 3 >= change_at && k < change_at + 6;
        if (k % 12 != 0 && !near_change) continue;
        const auto mre_of = [&](Method m) {
            const engine::MethodRun* run = window.find(m);
            return run != nullptr ? run->mre : -1.0;
        };
        std::printf("%7zu %6zu %10llx  %8.4f %8.4f %8.4f %8.4f%s\n", k,
                    window.window_size,
                    static_cast<unsigned long long>(
                        window.epoch_fingerprint & 0xffffffffffull),
                    mre_of(Method::gravity), mre_of(Method::bayesian),
                    mre_of(Method::vardi), mre_of(Method::fanout),
                    k == change_at ? "  <- route change (window flushed)"
                                   : "");
    }

    std::printf("\nday means:");
    for (const auto& [method, mre] : result.mean_mre) {
        std::printf("  %s=%.4f", engine::method_name(method), mre);
    }
    // Per-method latency percentiles from the HDR histograms (the
    // summary() block below repeats them inline; this table is the
    // at-a-glance view).
    std::printf("\n\nper-method latency\n------------------\n");
    std::printf("%-9s %8s %8s %8s %8s\n", "method", "p50", "p95", "p99",
                "max");
    for (const auto& [method, stats] : eng.metrics().methods) {
        const obs::HistogramSnapshot hist = stats.latency.snapshot();
        std::printf("%-9s %6.2fms %6.2fms %6.2fms %6.2fms\n",
                    engine::method_name(method), hist.p50() * 1e3,
                    hist.p95() * 1e3, hist.p99() * 1e3,
                    hist.max_seconds() * 1e3);
    }

    std::printf("\nengine metrics\n--------------\n%s",
                eng.metrics().summary().c_str());

    if (obs::tracing_compiled()) {
        const char* trace_path = "streaming_trace.json";
        if (obs::Tracer::instance().write_chrome_trace(trace_path)) {
            std::printf(
                "\nwrote %zu trace spans to %s "
                "(open in Perfetto or chrome://tracing)\n",
                obs::Tracer::instance().recorded(), trace_path);
        }
    }
    return 0;
}
