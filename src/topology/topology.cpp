#include "topology/topology.hpp"

#include <cmath>
#include <numbers>
#include <queue>
#include <stdexcept>

namespace tme::topology {

std::size_t Topology::add_pop(Pop pop, double edge_capacity_mbps) {
    const std::size_t idx = pops_.size();
    pops_.push_back(std::move(pop));
    out_.emplace_back();

    Link in;
    in.id = links_.size();
    in.kind = LinkKind::access_in;
    in.src = idx;
    in.dst = idx;
    in.capacity_mbps = edge_capacity_mbps;
    links_.push_back(in);
    ingress_.push_back(in.id);

    Link out;
    out.id = links_.size();
    out.kind = LinkKind::access_out;
    out.src = idx;
    out.dst = idx;
    out.capacity_mbps = edge_capacity_mbps;
    links_.push_back(out);
    egress_.push_back(out.id);
    return idx;
}

std::size_t Topology::add_core_link(std::size_t src, std::size_t dst,
                                    double capacity_mbps, double igp_metric) {
    if (src >= pops_.size() || dst >= pops_.size() || src == dst) {
        throw std::invalid_argument("add_core_link: bad endpoints");
    }
    if (capacity_mbps <= 0.0 || igp_metric <= 0.0) {
        throw std::invalid_argument(
            "add_core_link: capacity and metric must be positive");
    }
    Link l;
    l.id = links_.size();
    l.kind = LinkKind::core;
    l.src = src;
    l.dst = dst;
    l.capacity_mbps = capacity_mbps;
    l.igp_metric = igp_metric;
    links_.push_back(l);
    core_links_.push_back(l.id);
    out_[src].push_back(l.id);
    return l.id;
}

void Topology::add_core_link_pair(std::size_t a, std::size_t b,
                                  double capacity_mbps, double igp_metric) {
    add_core_link(a, b, capacity_mbps, igp_metric);
    add_core_link(b, a, capacity_mbps, igp_metric);
}

const Pop& Topology::pop(std::size_t i) const {
    if (i >= pops_.size()) throw std::out_of_range("Topology::pop");
    return pops_[i];
}

const Link& Topology::link(std::size_t id) const {
    if (id >= links_.size()) throw std::out_of_range("Topology::link");
    return links_[id];
}

const std::vector<std::size_t>& Topology::outgoing_core(
    std::size_t pop) const {
    if (pop >= out_.size()) throw std::out_of_range("Topology::outgoing_core");
    return out_[pop];
}

std::size_t Topology::ingress_link(std::size_t pop) const {
    if (pop >= ingress_.size()) {
        throw std::out_of_range("Topology::ingress_link");
    }
    return ingress_[pop];
}

std::size_t Topology::egress_link(std::size_t pop) const {
    if (pop >= egress_.size()) throw std::out_of_range("Topology::egress_link");
    return egress_[pop];
}

bool Topology::strongly_connected() const {
    const std::size_t n = pops_.size();
    if (n == 0) return true;

    // BFS over core links from node 0, then BFS over reversed links.
    auto reachable = [this, n](bool reversed) {
        std::vector<bool> seen(n, false);
        std::queue<std::size_t> q;
        seen[0] = true;
        q.push(0);
        while (!q.empty()) {
            const std::size_t u = q.front();
            q.pop();
            for (std::size_t lid : core_links_) {
                const Link& l = links_[lid];
                const std::size_t from = reversed ? l.dst : l.src;
                const std::size_t to = reversed ? l.src : l.dst;
                if (from == u && !seen[to]) {
                    seen[to] = true;
                    q.push(to);
                }
            }
        }
        for (bool s : seen) {
            if (!s) return false;
        }
        return true;
    };
    return reachable(false) && reachable(true);
}

std::size_t Topology::pair_index(std::size_t src, std::size_t dst) const {
    const std::size_t n = pops_.size();
    if (src >= n || dst >= n || src == dst) {
        throw std::invalid_argument("pair_index: bad pair");
    }
    return src * (n - 1) + (dst < src ? dst : dst - 1);
}

std::pair<std::size_t, std::size_t> Topology::pair_nodes(
    std::size_t pair) const {
    const std::size_t n = pops_.size();
    if (pair >= pair_count()) {
        throw std::out_of_range("pair_nodes: index out of range");
    }
    const std::size_t src = pair / (n - 1);
    std::size_t dst = pair % (n - 1);
    if (dst >= src) ++dst;
    return {src, dst};
}

double great_circle_km(const Pop& a, const Pop& b) {
    constexpr double earth_radius_km = 6371.0;
    constexpr double deg = std::numbers::pi / 180.0;
    const double lat1 = a.latitude * deg;
    const double lat2 = b.latitude * deg;
    const double dlat = (b.latitude - a.latitude) * deg;
    const double dlon = (b.longitude - a.longitude) * deg;
    const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                     std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                         std::sin(dlon / 2);
    return 2.0 * earth_radius_km * std::asin(std::min(1.0, std::sqrt(h)));
}

}  // namespace tme::topology
