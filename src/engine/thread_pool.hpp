// Minimal fixed-size thread pool for the estimator scheduler and the
// window pipeline.
//
// Two usage patterns share one queue and pending counter:
//   * run_batch(): one engine window fans its per-method estimation
//     tasks out as a batch and waits for completion (the serial
//     scheduler; batches never overlap within one engine);
//   * submit(): the window pipeline enqueues free-running tasks and
//     tracks completion itself, never waiting on the pool.
// run_batch() waits for the pool to go globally idle, so it must not be
// mixed with concurrent submit() traffic on the same pool — the
// pipeline therefore owns its pool exclusively.  Constructed with zero
// threads the pool degrades to inline execution, which keeps
// single-threaded runs deterministic and trivially debuggable.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tme::engine {

class ThreadPool {
  public:
    explicit ThreadPool(std::size_t threads) {
        workers_.reserve(threads);
        for (std::size_t i = 0; i < threads; ++i) {
            workers_.emplace_back([this] { worker(); });
        }
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        work_cv_.notify_all();
        for (std::thread& t : workers_) t.join();
    }

    std::size_t thread_count() const { return workers_.size(); }

    /// Runs all tasks and blocks until every one has finished.  Tasks
    /// must not throw (the scheduler wraps them to capture exceptions).
    void run_batch(std::vector<std::function<void()>> tasks) {
        if (workers_.empty()) {
            for (auto& task : tasks) task();
            return;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (auto& task : tasks) queue_.push(std::move(task));
            pending_ += tasks.size();
        }
        work_cv_.notify_all();
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [this] { return pending_ == 0; });
    }

    /// Enqueues one task and returns immediately (inline execution with
    /// zero workers).  The caller tracks completion itself; tasks must
    /// not throw.
    void submit(std::function<void()> task) {
        if (workers_.empty()) {
            task();
            return;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.push(std::move(task));
            ++pending_;
        }
        work_cv_.notify_one();
    }

    /// Blocks until every enqueued task has finished (pool globally
    /// idle).  Only meaningful when no other thread keeps submitting.
    void wait_idle() {
        if (workers_.empty()) return;
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [this] { return pending_ == 0; });
    }

  private:
    void worker() {
        while (true) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                work_cv_.wait(lock,
                              [this] { return stop_ || !queue_.empty(); });
                if (stop_ && queue_.empty()) return;
                task = std::move(queue_.front());
                queue_.pop();
            }
            task();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (--pending_ == 0) done_cv_.notify_all();
            }
        }
    }

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    std::size_t pending_ = 0;
    bool stop_ = false;
};

}  // namespace tme::engine
