#include "engine/engine.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/metrics.hpp"
#include "fault/injection.hpp"
#include "obs/trace.hpp"

namespace tme::engine {

OnlineEngine::OnlineEngine(const topology::Topology& topo,
                           const linalg::SparseMatrix& routing,
                           EngineConfig config,
                           std::shared_ptr<RoutingEpochCache> shared_cache)
    : topo_(&topo),
      routing_(&routing),
      config_(std::move(config)),
      cache_(shared_cache != nullptr
                 ? std::move(shared_cache)
                 : std::make_shared<RoutingEpochCache>(
                       config_.epoch_cache_capacity)),
      window_(&topo, &routing, config_.window_size,
              schedules(config_.methods, Method::vardi)),
      scheduler_(config_.methods, config_.method_options, config_.threads,
                 config_.warm_start, config_.min_series_window) {
    if (routing.rows() != topo.link_count() ||
        routing.cols() != topo.pair_count()) {
        throw std::invalid_argument(
            "OnlineEngine: routing does not match topology");
    }
    // Pre-populate the per-method stats so the map structure never
    // changes after construction — concurrent metric readers may then
    // iterate it while ingestion updates the atomic fields inside.
    for (Method m : config_.methods) metrics_.methods[m];
}

void OnlineEngine::set_routing(const linalg::SparseMatrix& routing) {
    if (routing.rows() != topo_->link_count() ||
        routing.cols() != topo_->pair_count()) {
        throw std::invalid_argument(
            "OnlineEngine::set_routing: routing does not match topology");
    }
    routing_ = &routing;
}

WindowResult OnlineEngine::ingest(std::size_t sample, linalg::Vector loads,
                                  bool gap) {
    obs::Span span("engine/ingest", "sample",
                   static_cast<long long>(sample));
    // Injected allocation failure at the ingest boundary: unlike the
    // guarded per-method probe this one is NOT caught anywhere in the
    // engine, so it models a job-killing crash (the fleet driver's
    // quarantine path is what contains it).
    if (fault::should_inject(fault::FaultSite::alloc_failure, "ingest")) {
        throw std::bad_alloc();
    }
    epoch_ = cache_->acquire_shared(*routing_);
    const RoutingEpoch& epoch = *epoch_;
    // Epoch identity is the cache serial, not the bare fingerprint: a
    // fingerprint collision between two distinct routing matrices gets
    // separate cache entries (structural check) and must ALSO flush
    // the window here, or samples measured under different routings
    // would share one estimation problem.  One exception keeps a
    // shared cache's eviction churn from perturbing this engine: a
    // fresh serial whose fingerprint AND structure match the bound
    // epoch is the same routing content rebuilt after an eviction
    // (another fleet engine's traffic) — the window stays, to the same
    // collision-risk standard the cache itself applies on a hit.
    const bool rebuilt_same_content =
        epoch_bound_ && epoch.fingerprint() == window_epoch_ &&
        epoch.rows() == window_epoch_rows_ &&
        epoch.cols() == window_epoch_cols_ &&
        epoch.nonzeros() == window_epoch_nnz_;
    if (!epoch_bound_ || (epoch.serial() != window_epoch_serial_ &&
                          !rebuilt_same_content)) {
        if (epoch_bound_) {
            ++metrics_.epoch_changes;
            if (!window_.empty()) ++metrics_.window_flushes;
        }
        // Samples measured under the previous routing cannot be mixed
        // with the new epoch; flush the window and drop warm starts so
        // no stale-epoch state can leak into the next estimate.
        window_.reset(routing_);
        scheduler_.reset_warm_state();
        window_epoch_ = epoch.fingerprint();
        window_epoch_serial_ = epoch.serial();
        window_epoch_rows_ = epoch.rows();
        window_epoch_cols_ = epoch.cols();
        window_epoch_nnz_ = epoch.nonzeros();
        epoch_bound_ = true;
    } else {
        // Same epoch (possibly rebuilt): track the live serial and keep
        // the window bound to the caller's current matrix object so it
        // never dangles on one the caller has replaced and may free.
        window_epoch_serial_ = epoch.serial();
        if (window_.series().routing != routing_) {
            window_.rebind_routing(routing_);
        }
    }

    // Injected routing inconsistency: the capture would mix samples
    // measured under different routings, which is exactly the epoch
    // change hazard — handle it the same way (flush the window, drop
    // warm state) and tally it as a routing fault.
    if (fault::should_inject(fault::FaultSite::routing_inconsistency)) {
        ++metrics_.routing_faults;
        if (!window_.empty()) ++metrics_.window_flushes;
        window_.reset(routing_);
        scheduler_.reset_warm_state();
    }

    // Injected measurement corruption: what a broken collector would
    // ship (one NaN load, one negated load, or a fully dropped poll).
    if (!loads.empty()) {
        if (fault::should_inject(fault::FaultSite::measurement_nan)) {
            loads[fault::draw(fault::FaultSite::measurement_nan) %
                  loads.size()] =
                std::numeric_limits<double>::quiet_NaN();
        }
        if (fault::should_inject(fault::FaultSite::measurement_negative)) {
            double& v = loads[fault::draw(
                                  fault::FaultSite::measurement_negative) %
                              loads.size()];
            v = v != 0.0 ? -v : -1.0;
        }
        if (fault::should_inject(fault::FaultSite::measurement_drop)) {
            loads.assign(loads.size(), 0.0);
            gap = true;
        }
    }
    // Always-compiled sanitizer: non-finite or negative loads — whether
    // injected above or shipped by a real collector — must never reach
    // the solvers (NNLS and the QPs assume finite nonnegative b).  The
    // offending loads are repaired to zero and the sample is flagged as
    // a gap so it is treated like a missed poll, not trusted data.
    bool corrupt = false;
    for (double& v : loads) {
        if (!std::isfinite(v) || v < 0.0) {
            v = 0.0;
            corrupt = true;
        }
    }
    if (corrupt) {
        ++metrics_.corrupt_samples;
        gap = true;
    }

    window_.push(sample, std::move(loads), gap);
    ++metrics_.samples_ingested;
    if (gap) ++metrics_.gap_samples;
    metrics_.cache_hits = cache_->hits();
    metrics_.cache_misses = cache_->misses();
    metrics_.cache_evictions = cache_->evictions();
    metrics_.cache_collisions = cache_->collisions();
    // Shared-cache caveat as above: under a fleet these are the build
    // times every engine triggered, not just this one's.
    metrics_.epoch_build_latency = cache_->build_latency();

    WindowResult result = scheduler_.run(window_, epoch_);

    if (truth_) {
        // Snapshot methods estimate the newest sample's demands; series
        // methods (Vardi, fanout) estimate the window mean, so they are
        // scored against the truth averaged over the window's samples.
        const linalg::Vector truth_now = truth_(sample);
        linalg::Vector truth_mean;
        for (MethodRun& run : result.runs) {
            const linalg::Vector* reference = &truth_now;
            if (is_series_method(run.method)) {
                if (truth_mean.empty()) {
                    truth_mean.assign(truth_now.size(), 0.0);
                    for (std::size_t s : window_.sample_indices()) {
                        const linalg::Vector t = truth_(s);
                        for (std::size_t p = 0; p < truth_mean.size();
                             ++p) {
                            truth_mean[p] += t[p];
                        }
                    }
                    const double inv_k =
                        1.0 / static_cast<double>(window_.size());
                    for (double& v : truth_mean) v *= inv_k;
                }
                reference = &truth_mean;
            }
            // An all-quiet truth window (no demand above the coverage
            // threshold) has no defined MRE; score it as NaN instead of
            // letting the metric throw out of the scheduler loop.
            if (linalg::sum(*reference) > 0.0) {
                run.mre =
                    core::mre_at_coverage(*reference, run.estimate, 0.9);
            } else {
                ++metrics_.mre_skipped_runs;
            }
        }
    }

    ++metrics_.windows_run;
    metrics_.total_seconds += result.seconds;
    metrics_.last_window_seconds = result.seconds;
    metrics_.window_latency.record(result.seconds);
    for (const MethodRun& run : result.runs) {
        MethodStats& stats = metrics_.methods[run.method];
        ++stats.runs;
        if (run.warm_started) ++stats.warm_runs;
        if (run.warm_accepted) ++stats.warm_accepted_runs;
        stats.total_seconds += run.seconds;
        stats.last_seconds = run.seconds;
        stats.max_seconds.fetch_max(run.seconds);
        stats.latency.record(run.seconds);
        stats.solver.add(run.solver);
        record_run_quality(metrics_, run, result.window_end_sample);
        if (truth_ && !std::isnan(run.mre)) {
            // Skipped (all-quiet) windows stay out of the MRE average.
            stats.last_mre = run.mre;
            stats.mre_sum += run.mre;
            ++stats.mre_count;
        }
    }
    if (sink_) sink_(result);
    return result;
}

WindowResult OnlineEngine::ingest_interval(
    const telemetry::TimeSeriesStore& store, std::size_t interval) {
    if (store.objects() != routing_->rows()) {
        throw std::invalid_argument(
            "OnlineEngine::ingest_interval: store object count must equal "
            "the link count");
    }
    const bool gap = store.missing_count(interval) > 0;
    return ingest(interval, store.snapshot(interval), gap);
}

std::vector<WindowResult> OnlineEngine::ingest_outcome(
    const telemetry::PollingOutcome& outcome) {
    std::vector<WindowResult> results;
    results.reserve(outcome.store.intervals());
    for (std::size_t k = 0; k < outcome.store.intervals(); ++k) {
        results.push_back(ingest_interval(outcome.store, k));
    }
    return results;
}

}  // namespace tme::engine
