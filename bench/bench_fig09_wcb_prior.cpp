// Figure 9: the worst-case-bound midpoint as a prior — notably more
// accurate than the raw bounds suggest.
#include "bench_common.hpp"

#include "core/gravity.hpp"
#include "core/wcb.hpp"
#include "linalg/stats.hpp"

namespace {

void midpoint(const tme::scenario::Scenario& sc, double paper_mre) {
    using namespace tme;
    const core::SnapshotProblem snap = sc.busy_snapshot();
    const linalg::Vector& truth = sc.busy_snapshot_demands();
    const core::WcbResult r = core::worst_case_bounds(snap);
    const double thr = bench::report_threshold(truth);
    const double mre_mid =
        core::mean_relative_error(truth, r.midpoint, thr);
    const double mre_grav = core::mean_relative_error(
        truth, core::gravity_estimate(snap), thr);
    std::printf("%s: WCB midpoint prior MRE = %.3f (paper %.2f); "
                "simple gravity = %.3f; correlation(midpoint, truth) = "
                "%.3f\n",
                sc.name.c_str(), mre_mid, paper_mre, mre_grav,
                linalg::pearson(truth, r.midpoint));
}

}  // namespace

int main() {
    tme::bench::header(
        "Figure 9 + Table 2 rows 1-2 - priors from worst-case bounds",
        "Fig. 9: bound midpoints give a relatively accurate estimate; "
        "Table 2: WCB prior 0.10 (EU) / 0.39 (US) beats gravity 0.26 / "
        "0.78",
        "midpoint prior MRE below the simple gravity MRE in both "
        "networks");
    midpoint(tme::bench::europe(), 0.10);
    midpoint(tme::bench::usa(), 0.39);
    return 0;
}
