#include "core/tomo_direct.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/metrics.hpp"

namespace tme::core {

namespace {

ReducedEstimator default_estimator() {
    return [](const SnapshotProblem& problem, const linalg::Vector& prior) {
        EntropyOptions options;
        options.regularization = 1000.0;
        return entropy_estimate(problem, prior, options);
    };
}

}  // namespace

linalg::Vector estimate_with_measured(const SnapshotProblem& problem,
                                      const linalg::Vector& prior,
                                      const linalg::Vector& true_demands,
                                      const std::vector<std::size_t>& measured,
                                      const ReducedEstimator& estimator) {
    problem.validate();
    const linalg::SparseMatrix& r = *problem.routing;
    const std::size_t n = r.cols();
    if (prior.size() != n || true_demands.size() != n) {
        throw std::invalid_argument("estimate_with_measured: size mismatch");
    }
    std::vector<bool> is_measured(n, false);
    for (std::size_t p : measured) {
        if (p >= n) {
            throw std::invalid_argument(
                "estimate_with_measured: bad pair index");
        }
        is_measured[p] = true;
    }

    // Remaining unknowns and the reduced routing matrix.
    std::vector<std::size_t> unknown;
    unknown.reserve(n - measured.size());
    for (std::size_t p = 0; p < n; ++p) {
        if (!is_measured[p]) unknown.push_back(p);
    }

    linalg::Vector estimate(n, 0.0);
    for (std::size_t p : measured) estimate[p] = true_demands[p];
    if (unknown.empty()) return estimate;

    // Subtract measured contributions from the loads.
    linalg::Vector known(n, 0.0);
    for (std::size_t p : measured) known[p] = true_demands[p];
    const linalg::Vector known_loads = r.multiply(known);
    linalg::Vector reduced_loads = problem.loads;
    for (std::size_t l = 0; l < reduced_loads.size(); ++l) {
        reduced_loads[l] = std::max(0.0, reduced_loads[l] - known_loads[l]);
    }

    const linalg::SparseMatrix reduced_r = r.select_columns(unknown);
    linalg::Vector reduced_prior(unknown.size());
    for (std::size_t i = 0; i < unknown.size(); ++i) {
        reduced_prior[i] = prior[unknown[i]];
    }
    // The reduced routing no longer matches the topology's pair count, so
    // the sub-problem carries no topology (estimators used here work from
    // (R, t) alone).
    SnapshotProblem sub;
    sub.topo = nullptr;
    sub.routing = &reduced_r;
    sub.loads = std::move(reduced_loads);

    const linalg::Vector sub_estimate = estimator(sub, reduced_prior);
    if (sub_estimate.size() != unknown.size()) {
        throw std::runtime_error(
            "estimate_with_measured: estimator returned wrong size");
    }
    for (std::size_t i = 0; i < unknown.size(); ++i) {
        estimate[unknown[i]] = sub_estimate[i];
    }
    return estimate;
}

namespace {

DirectMeasurementCurve run_with_order(
    const SnapshotProblem& problem, const linalg::Vector& prior,
    const linalg::Vector& true_demands,
    const DirectMeasurementOptions& options, bool greedy) {
    const std::size_t n = problem.routing->cols();
    const std::size_t steps =
        options.max_measured == 0 ? n : std::min(options.max_measured, n);
    const ReducedEstimator estimator =
        options.estimator ? options.estimator : default_estimator();
    const double threshold =
        options.threshold > 0.0
            ? options.threshold
            : threshold_for_coverage(true_demands, 0.9);

    DirectMeasurementCurve curve;
    std::vector<std::size_t> measured;

    const linalg::Vector base = estimate_with_measured(
        problem, prior, true_demands, measured, estimator);
    curve.mre.push_back(
        mean_relative_error(true_demands, base, threshold));

    // Pre-computed size order for the largest-first strategy.
    std::vector<std::size_t> by_size(n);
    std::iota(by_size.begin(), by_size.end(), 0);
    std::sort(by_size.begin(), by_size.end(),
              [&true_demands](std::size_t a, std::size_t b) {
                  return true_demands[a] > true_demands[b];
              });

    std::vector<bool> is_measured(n, false);
    for (std::size_t step = 0; step < steps; ++step) {
        std::size_t chosen = n;
        double chosen_mre = 0.0;
        if (greedy) {
            // Exhaustive search: the candidate whose measurement gives
            // the lowest resulting MRE.
            double best = std::numeric_limits<double>::infinity();
            for (std::size_t cand = 0; cand < n; ++cand) {
                if (is_measured[cand]) continue;
                measured.push_back(cand);
                const linalg::Vector est = estimate_with_measured(
                    problem, prior, true_demands, measured, estimator);
                measured.pop_back();
                const double m =
                    mean_relative_error(true_demands, est, threshold);
                if (m < best) {
                    best = m;
                    chosen = cand;
                }
            }
            chosen_mre = best;
        } else {
            for (std::size_t cand : by_size) {
                if (!is_measured[cand]) {
                    chosen = cand;
                    break;
                }
            }
            measured.push_back(chosen);
            const linalg::Vector est = estimate_with_measured(
                problem, prior, true_demands, measured, estimator);
            measured.pop_back();
            chosen_mre = mean_relative_error(true_demands, est, threshold);
        }
        if (chosen == n) break;
        measured.push_back(chosen);
        is_measured[chosen] = true;
        curve.measured.push_back(chosen);
        curve.mre.push_back(chosen_mre);
    }
    return curve;
}

}  // namespace

DirectMeasurementCurve greedy_direct_measurements(
    const SnapshotProblem& problem, const linalg::Vector& prior,
    const linalg::Vector& true_demands,
    const DirectMeasurementOptions& options) {
    return run_with_order(problem, prior, true_demands, options, true);
}

DirectMeasurementCurve largest_first_direct_measurements(
    const SnapshotProblem& problem, const linalg::Vector& prior,
    const linalg::Vector& true_demands,
    const DirectMeasurementOptions& options) {
    return run_with_order(problem, prior, true_demands, options, false);
}

}  // namespace tme::core
