// Deterministic, seeded fault injection (compile-gated).
//
// The registry lets tests, benches and scenario replays schedule
// faults — corrupt measurements, routing inconsistencies, solver
// stalls/divergence, allocation failure — at exact, reproducible points
// in the stream.  Production code asks `should_inject(site, detail)` at
// each injection point; the call is an inline `return false` when the
// layer is compiled out (TME_FAULT_INJECTION=0, the release-native
// bench configuration, which gates that the compiled-out sites cost
// nothing and change no estimates) and a couple of relaxed atomic loads
// when compiled in but disarmed, so leaving the sites in the hot paths
// is free.
//
// Determinism contract: a FaultSpec fires on exact *matching-hit
// ordinals* (skip `after_hits` matching probes, then fire `count`
// consecutive ones), never on wall-clock time or unseeded randomness.
// `draw()` values come from a splitmix64 stream keyed by (seed, site,
// fire ordinal), so the same schedule over the same serial stream
// corrupts the same link of the same sample every run.  Scope filters
// target one fleet job (the ambient thread scope set by
// ScopedFaultScope) or one method (the `detail` string a solver site
// passes), which is how a single poisoned job is injected while its
// siblings stay byte-identical to a fault-free run.
//
// This directory is a base layer like obs/counters.hpp: it includes
// nothing from core/linalg/engine/obs/serve, so every layer may call
// into it (see tools/lint_invariants.py LAYERING_RULES).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#if !defined(TME_FAULT_INJECTION)
#define TME_FAULT_INJECTION 0
#endif

namespace tme::fault {

enum class FaultSite : std::uint8_t {
    measurement_nan,        ///< one link load becomes NaN at ingest
    measurement_negative,   ///< one link load becomes negative
    measurement_drop,       ///< one link load is dropped (zeroed)
    routing_inconsistency,  ///< window capture sees inconsistent routing
    solver_stall,           ///< a solve wedges (its budget expires at once)
    solver_diverge,         ///< a solve returns a non-finite estimate
    alloc_failure,          ///< a window allocation throws bad_alloc
};

inline constexpr std::size_t fault_site_count = 7;

constexpr const char* fault_site_name(FaultSite s) {
    switch (s) {
        case FaultSite::measurement_nan: return "measurement_nan";
        case FaultSite::measurement_negative:
            return "measurement_negative";
        case FaultSite::measurement_drop: return "measurement_drop";
        case FaultSite::routing_inconsistency:
            return "routing_inconsistency";
        case FaultSite::solver_stall: return "solver_stall";
        case FaultSite::solver_diverge: return "solver_diverge";
        case FaultSite::alloc_failure: return "alloc_failure";
    }
    return "?";
}

/// One scheduled fault: fire `count` consecutive times at `site` after
/// `after_hits` matching probes have passed.
struct FaultSpec {
    FaultSite site = FaultSite::measurement_nan;
    /// Scope filter.  Empty matches every probe of `site`; otherwise
    /// the probe's `detail` string (method name at solver sites) or the
    /// probing thread's ambient scope (fleet job name, see
    /// ScopedFaultScope) must equal it.
    std::string scope;
    /// Matching probes skipped before the spec starts firing.
    std::uint64_t after_hits = 0;
    /// Matching probes that fire once started.
    std::uint64_t count = 1;
};

/// Per-site probe/injection totals since the last arm().
struct FaultStats {
    std::uint64_t hits[fault_site_count] = {};   ///< probes while armed
    std::uint64_t fires[fault_site_count] = {};  ///< injections delivered

    std::uint64_t total_fires() const {
        std::uint64_t total = 0;
        for (std::uint64_t f : fires) total += f;
        return total;
    }
};

/// Whether the fault layer is compiled into this build.
constexpr bool compiled() { return TME_FAULT_INJECTION != 0; }

#if TME_FAULT_INJECTION

/// Installs `schedule` and starts matching probes against it.  `seed`
/// keys the draw() streams.  Replaces any previous schedule and zeroes
/// the statistics.  Thread-safe, but arming while probes are in flight
/// makes the hit ordinals racy — arm before starting the workload.
void arm(std::vector<FaultSpec> schedule, std::uint64_t seed);

/// Removes the schedule; every subsequent probe returns false.
void disarm();

/// True between arm() and disarm().
bool armed();

/// Probe/injection totals since the last arm().
FaultStats stats();

/// Probes `site`: true when an armed spec matches and its fire window
/// covers this probe.  `detail` is the site-local scope (method name at
/// solver sites); null falls back to the thread's ambient scope.
bool should_inject(FaultSite site, const char* detail = nullptr);

/// Deterministic 64-bit value for the most recent fire at `site`
/// (splitmix64 of seed, site and the site's fire ordinal) — injection
/// points use it to pick e.g. which link load to corrupt.
std::uint64_t draw(FaultSite site);

/// The probing thread's ambient scope ("" when none): fleet workers set
/// it to the job name so schedules can poison exactly one job.
const char* current_scope();

/// RAII ambient scope for the current thread; nests.
class ScopedFaultScope {
  public:
    explicit ScopedFaultScope(std::string scope);
    ~ScopedFaultScope();
    ScopedFaultScope(const ScopedFaultScope&) = delete;
    ScopedFaultScope& operator=(const ScopedFaultScope&) = delete;

  private:
    std::string scope_;
    const char* previous_;
};

#else  // TME_FAULT_INJECTION compiled out: zero-cost inline no-ops.

inline void arm(std::vector<FaultSpec>, std::uint64_t) {}
inline void disarm() {}
inline constexpr bool armed() { return false; }
inline FaultStats stats() { return {}; }
inline constexpr bool should_inject(FaultSite,
                                    const char* = nullptr) {
    return false;
}
inline constexpr std::uint64_t draw(FaultSite) { return 0; }
inline constexpr const char* current_scope() { return ""; }

class ScopedFaultScope {
  public:
    explicit ScopedFaultScope(std::string) {}
};

#endif  // TME_FAULT_INJECTION

}  // namespace tme::fault
