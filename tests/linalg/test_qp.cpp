#include "linalg/qp.hpp"

#include <gtest/gtest.h>

#include <random>

namespace tme::linalg {
namespace {

TEST(EqQp, SimpleProjection) {
    // min 1/2||x||^2 - 0 s.t. x0 + x1 = 2 -> x = (1, 1).
    const Matrix h = Matrix::identity(2);
    const Vector f{0.0, 0.0};
    const Matrix e{{1.0, 1.0}};
    const Vector d{2.0};
    const Vector x = solve_eq_qp(h, f, e, d);
    EXPECT_NEAR(x[0], 1.0, 1e-10);
    EXPECT_NEAR(x[1], 1.0, 1e-10);
}

TEST(EqQp, UnconstrainedReducesToLinearSolve) {
    const Matrix h{{2.0, 0.0}, {0.0, 4.0}};
    const Vector f{2.0, 8.0};
    const Vector x = solve_eq_qp(h, f, Matrix(0, 2), {});
    EXPECT_NEAR(x[0], 1.0, 1e-10);
    EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(EqQp, DimensionMismatchThrows) {
    EXPECT_THROW(
        solve_eq_qp(Matrix::identity(2), {1.0}, Matrix(0, 2), {}),
        std::invalid_argument);
}

TEST(EqQp, SingularKktThrows) {
    // Duplicate equality constraints make the KKT system singular.
    const Matrix h = Matrix::identity(2);
    const Matrix e{{1.0, 1.0}, {1.0, 1.0}};
    EXPECT_THROW(solve_eq_qp(h, {0.0, 0.0}, e, {1.0, 1.0}),
                 std::runtime_error);
}

TEST(EqQpNonneg, MatchesEqualityOnlyWhenInterior) {
    const Matrix h = Matrix::identity(2);
    const Vector f{0.0, 0.0};
    const Matrix e{{1.0, 1.0}};
    const Vector d{2.0};
    const EqQpNonnegResult r = solve_eq_qp_nonneg(h, f, e, d);
    EXPECT_NEAR(r.x[0], 1.0, 1e-5);
    EXPECT_NEAR(r.x[1], 1.0, 1e-5);
    EXPECT_LT(r.equality_violation, 1e-6);
}

TEST(EqQpNonneg, ClampsNegativeCoordinates) {
    // min 1/2 x'Ix - f'x with f = (3, -1), sum = 2: unconstrained
    // equality solution is (3, -1)+nu*(1,1) -> (2.5, -0.5)... must clamp
    // x1 to 0 and put everything on x0.
    const Matrix h = Matrix::identity(2);
    const Vector f{3.0, -1.0};
    const Matrix e{{1.0, 1.0}};
    const Vector d{2.0};
    const EqQpNonnegResult r = solve_eq_qp_nonneg(h, f, e, d);
    EXPECT_NEAR(r.x[0], 2.0, 1e-5);
    EXPECT_NEAR(r.x[1], 0.0, 1e-8);
}

class EqQpNonnegProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(EqQpNonnegProperty, FeasibleAndNoWorseThanProjectedCandidates) {
    std::mt19937_64 rng(GetParam());
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    const std::size_t n = 6;
    Matrix a(8, n);
    for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
    }
    Matrix h = gram(a);
    for (std::size_t i = 0; i < n; ++i) h(i, i) += 0.1;
    Vector f(n);
    for (double& v : f) v = dist(rng);
    // Two disjoint sum constraints.
    Matrix e(2, n, 0.0);
    for (std::size_t j = 0; j < n / 2; ++j) e(0, j) = 1.0;
    for (std::size_t j = n / 2; j < n; ++j) e(1, j) = 1.0;
    const Vector d{1.0, 1.0};

    const EqQpNonnegResult r = solve_eq_qp_nonneg(h, f, e, d);
    EXPECT_LT(r.equality_violation, 1e-5);
    for (double v : r.x) EXPECT_GE(v, -1e-12);

    // Objective no worse than a uniform feasible candidate.
    auto objective = [&](const Vector& x) {
        double acc = 0.0;
        const Vector hx = gemv(h, x);
        for (std::size_t i = 0; i < n; ++i) {
            acc += 0.5 * x[i] * hx[i] - f[i] * x[i];
        }
        return acc;
    };
    Vector uniform(n, 1.0 / static_cast<double>(n / 2));
    EXPECT_LE(objective(r.x), objective(uniform) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EqQpNonnegProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace tme::linalg
