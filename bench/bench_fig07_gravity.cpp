// Figure 7: real demands vs. gravity-model estimates — reasonable in
// Europe, badly underestimates the large US demands.
#include "bench_common.hpp"

#include "core/gravity.hpp"
#include "linalg/stats.hpp"

namespace {

void scatter(const tme::scenario::Scenario& sc, double paper_mre) {
    using namespace tme;
    const core::SnapshotProblem snap = sc.busy_snapshot();
    const linalg::Vector& truth = sc.busy_snapshot_demands();
    const linalg::Vector grav = core::gravity_estimate(snap);
    const double thr = core::threshold_for_coverage(truth, 0.9);

    std::printf("\n%s:\n", sc.name.c_str());
    const double mre = core::mean_relative_error(truth, grav, thr);
    std::printf("gravity MRE over large demands: %.3f (paper: %.2f)\n", mre,
                paper_mre);
    std::printf("rank correlation (Spearman): %.3f\n",
                linalg::spearman(truth, grav));

    // Scatter summary per decade of true demand: mean est/true ratio.
    std::printf("%16s %12s %12s %8s\n", "true decade", "est/true med",
                "under/over", "count");
    for (double lo = 1e-5; lo < 1.0; lo *= 10.0) {
        linalg::Vector ratios;
        for (std::size_t p = 0; p < truth.size(); ++p) {
            if (truth[p] >= lo && truth[p] < 10.0 * lo && truth[p] > 0.0) {
                ratios.push_back(grav[p] / truth[p]);
            }
        }
        if (ratios.empty()) continue;
        const double med = linalg::quantile(ratios, 0.5);
        std::printf("%9.0e-%6.0e %12.2f %12s %8zu\n", lo, 10.0 * lo, med,
                    med < 0.8 ? "UNDER" : (med > 1.25 ? "OVER" : "ok"),
                    ratios.size());
    }
    // The paper's headline: the largest US demands are underestimated.
    const auto big = core::demands_above(truth, thr);
    double under = 0;
    for (std::size_t i = 0; i < std::min<std::size_t>(10, big.size()); ++i) {
        under += grav[big[i]] / truth[big[i]];
    }
    std::printf("mean est/true over 10 largest demands: %.2f\n",
                under / std::min<double>(10.0, static_cast<double>(big.size())));
}

}  // namespace

int main() {
    tme::bench::header(
        "Figure 7 - gravity model vs actual demands",
        "Fig. 7 + Table 2: gravity MRE 0.26 (EU) / 0.78 (US); large US "
        "demands significantly underestimated",
        "EU scatter near diagonal; US large demands well below it");
    scatter(tme::bench::europe(), 0.26);
    scatter(tme::bench::usa(), 0.78);
    return 0;
}
