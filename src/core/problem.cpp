#include "core/problem.hpp"

#include <stdexcept>

namespace tme::core {

void SnapshotProblem::validate() const {
    if (routing == nullptr) {
        throw std::invalid_argument("SnapshotProblem: null routing");
    }
    if (loads.size() != routing->rows()) {
        throw std::invalid_argument("SnapshotProblem: load vector size");
    }
}

void SnapshotProblem::validate_with_topology() const {
    validate();
    if (topo == nullptr) {
        throw std::invalid_argument("SnapshotProblem: null topology");
    }
    if (routing->rows() != topo->link_count() ||
        routing->cols() != topo->pair_count()) {
        throw std::invalid_argument(
            "SnapshotProblem: routing does not match topology");
    }
}

void SeriesProblem::validate() const {
    if (routing == nullptr) {
        throw std::invalid_argument("SeriesProblem: null routing");
    }
    if (loads.empty()) {
        throw std::invalid_argument("SeriesProblem: empty load window");
    }
    for (const linalg::Vector& t : loads) {
        if (t.size() != routing->rows()) {
            throw std::invalid_argument("SeriesProblem: load vector size");
        }
    }
}

void SeriesProblem::validate_with_topology() const {
    validate();
    if (topo == nullptr) {
        throw std::invalid_argument("SeriesProblem: null topology");
    }
    if (routing->rows() != topo->link_count() ||
        routing->cols() != topo->pair_count()) {
        throw std::invalid_argument(
            "SeriesProblem: routing does not match topology");
    }
}

void SeriesProblem::push_load(linalg::Vector t) {
    if (routing != nullptr && t.size() != routing->rows()) {
        throw std::invalid_argument("SeriesProblem::push_load: size");
    }
    loads.push_back(std::move(t));
}

void SeriesProblem::pop_front_load() {
    if (loads.empty()) {
        throw std::logic_error("SeriesProblem::pop_front_load: empty");
    }
    loads.erase(loads.begin());
}

SnapshotProblem SeriesProblem::snapshot(std::size_t k) const {
    if (k >= loads.size()) {
        throw std::out_of_range("SeriesProblem::snapshot");
    }
    return SnapshotProblem{topo, routing, loads[k]};
}

}  // namespace tme::core
