#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tme::core {

double threshold_for_coverage(const linalg::Vector& true_demands,
                              double coverage) {
    if (true_demands.empty()) {
        throw std::invalid_argument("threshold_for_coverage: empty input");
    }
    if (coverage <= 0.0 || coverage > 1.0) {
        throw std::invalid_argument("threshold_for_coverage: bad coverage");
    }
    linalg::Vector sorted = true_demands;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    const double total = linalg::sum(sorted);
    if (total <= 0.0) {
        throw std::invalid_argument("threshold_for_coverage: zero traffic");
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        acc += sorted[i];
        if (acc >= coverage * total) {
            // Demands strictly greater than this value form the set; use
            // a threshold just below the last included demand so it is
            // included by the strict comparison.
            return std::nextafter(sorted[i], 0.0);
        }
    }
    return 0.0;
}

std::vector<std::size_t> demands_above(const linalg::Vector& true_demands,
                                       double threshold) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < true_demands.size(); ++i) {
        if (true_demands[i] > threshold) idx.push_back(i);
    }
    std::sort(idx.begin(), idx.end(),
              [&true_demands](std::size_t a, std::size_t b) {
                  return true_demands[a] > true_demands[b];
              });
    return idx;
}

double mean_relative_error(const linalg::Vector& true_demands,
                           const linalg::Vector& estimate, double threshold) {
    if (true_demands.size() != estimate.size()) {
        throw std::invalid_argument("mean_relative_error: size mismatch");
    }
    double acc = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < true_demands.size(); ++i) {
        if (true_demands[i] > threshold) {
            acc += std::abs((estimate[i] - true_demands[i]) /
                            true_demands[i]);
            ++count;
        }
    }
    if (count == 0) {
        throw std::invalid_argument(
            "mean_relative_error: no demands above threshold");
    }
    return acc / static_cast<double>(count);
}

double mre_at_coverage(const linalg::Vector& true_demands,
                       const linalg::Vector& estimate, double coverage) {
    return mean_relative_error(true_demands, estimate,
                               threshold_for_coverage(true_demands,
                                                      coverage));
}

double rmse(const linalg::Vector& true_demands,
            const linalg::Vector& estimate) {
    if (true_demands.size() != estimate.size()) {
        throw std::invalid_argument("rmse: size mismatch");
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < true_demands.size(); ++i) {
        const double d = estimate[i] - true_demands[i];
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(true_demands.size()));
}

}  // namespace tme::core
