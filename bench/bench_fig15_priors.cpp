// Figure 15: Bayesian MRE vs regularization parameter, comparing the
// gravity prior against the worst-case-bound midpoint prior.
#include "bench_common.hpp"

#include "core/bayesian.hpp"
#include "core/gravity.hpp"
#include "core/wcb.hpp"

namespace {

void sweep(const tme::scenario::Scenario& sc) {
    using namespace tme;
    const core::SnapshotProblem snap = sc.busy_snapshot();
    const linalg::Vector& truth = sc.busy_snapshot_demands();
    const double thr = core::threshold_for_coverage(truth, 0.9);
    const linalg::Vector grav = core::gravity_estimate(snap);
    const core::WcbResult wcb = core::worst_case_bounds(snap);
    std::printf("\n%s (prior MREs: gravity %.3f, WCB midpoint %.3f):\n",
                sc.name.c_str(),
                core::mean_relative_error(truth, grav, thr),
                core::mean_relative_error(truth, wcb.midpoint, thr));
    std::printf("%12s %12s %12s\n", "reg param", "gravity prior",
                "WCB prior");
    for (double lam : {1e-5, 1e-3, 1e-1, 1e1, 1e3, 1e5}) {
        core::BayesianOptions bo;
        bo.regularization = lam;
        const double g = core::mean_relative_error(
            truth, core::bayesian_estimate(snap, grav, bo), thr);
        const double w = core::mean_relative_error(
            truth, core::bayesian_estimate(snap, wcb.midpoint, bo), thr);
        std::printf("%12.0e %12.3f %12.3f\n", lam, g, w);
    }
}

}  // namespace

int main() {
    tme::bench::header(
        "Figure 15 - Bayesian with gravity vs WCB prior",
        "Fig. 15: WCB prior clearly better at small regularization "
        "(prior-dominated); practically equal at large values",
        "WCB column <= gravity column on the left side of the sweep; "
        "columns converge on the right");
    sweep(tme::bench::europe());
    sweep(tme::bench::usa());
    return 0;
}
