// Engine perf bench: incremental sliding windows vs. naive per-window
// recomputation.
//
// Streams a scenario day through (a) the online engine — ring-buffered
// window, routing-epoch-cached Gram matrix and derived data,
// incrementally maintained window aggregates — and (b) a naive baseline
// that rebuilds every window's SeriesProblem from scratch and
// recomputes every R-derived/window-derived quantity per window,
// exactly as the offline benches do.  Two engines — one cold-started,
// one warm-started — are fed the same samples interleaved, so load
// spikes hit both alike; all paths run the same methods (gravity,
// Bayesian, Vardi, fanout) single-threaded and must agree to within
// 1e-9.  The bench FAILS (non-zero exit) if estimates diverge, if the
// incremental warm path is not faster than naive recomputation, or if
// the fanout QP's active-set warm start does not make the fanout
// method at least 1.5x faster per window than its cold runs.
//
// A second phase benchmarks the multi-scenario fleet driver: four
// scenarios on one topology run back to back on a serial engine and
// then concurrently under FleetDriver (async ingestion, one shared
// epoch cache).  The fleet's estimates must match the serial engine's
// to 1e-9 and be bit-for-bit stable across two fleet runs; on a
// multi-core host the fleet must reach at least 1.5x the serial
// aggregate window throughput.  The gate is skipped only on a single
// hardware thread, where no speedup is physically possible, and the
// JSON records the skip reason plus the host core count so a skipped
// gate is auditable.  The fleet phase runs a deliberately smaller
// working set than the single-engine phase (shorter replays, smaller
// window) so that four concurrent engines fit the 2-core CI bench
// runner's cache and the gate actually engages there — it measures
// driver concurrency, not cache capacity.
//
// A third phase measures the observability layer itself: a traced
// replay must produce bit-for-bit the estimates of an untraced one
// (counters and spans may never perturb arithmetic), the per-span cost
// is microbenchmarked and scaled by the replay's span count to gate
// the tracing overhead (<1% of replay wall disabled, <5% enabled —
// derived rather than differenced, so the gate is stable on a loaded
// single-core host), and a two-scenario fleet run is exported as a
// Chrome trace_event JSON artifact for Perfetto.
//
// Results are also written to BENCH_engine.json (per-method window
// timings with p50/p95/p99 latency and solver iteration counters,
// cold/warm speedups, cache hit rate, fleet throughput) so the perf
// trajectory stays machine-readable across PRs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/bayesian.hpp"
#include "core/fanout.hpp"
#include "core/gravity.hpp"
#include "core/vardi.hpp"
#include "engine/engine.hpp"
#include "engine/fleet.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace {

using tme::engine::Method;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

double max_abs_diff(const tme::linalg::Vector& a,
                    const tme::linalg::Vector& b) {
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        worst = std::max(worst, std::abs(a[i] - b[i]));
    }
    return worst;
}

/// Estimates for one window, in method order gravity / bayesian /
/// vardi / fanout (series slots empty below the series threshold).
struct WindowEstimates {
    std::vector<tme::linalg::Vector> by_method;
};

constexpr std::size_t kMinSeriesWindow = 3;

std::vector<WindowEstimates> run_naive(const tme::scenario::Scenario& sc,
                                       std::size_t samples,
                                       std::size_t window_size) {
    using namespace tme;
    std::vector<WindowEstimates> out;
    out.reserve(samples);
    std::vector<linalg::Vector> history;
    for (std::size_t k = 0; k < samples; ++k) {
        history.push_back(sc.loads[k]);
        const std::size_t wsize = std::min(window_size, history.size());

        // Rebuild the window problem from scratch: copy the load
        // vectors and recompute everything the estimators need.
        core::SeriesProblem series;
        series.topo = &sc.topo;
        series.routing = &sc.routing;
        series.loads.assign(history.end() - static_cast<std::ptrdiff_t>(wsize),
                            history.end());

        core::SnapshotProblem latest;
        latest.topo = &sc.topo;
        latest.routing = &sc.routing;
        latest.loads = series.loads.back();

        WindowEstimates est;
        const linalg::Vector prior = core::gravity_estimate(latest);
        est.by_method.push_back(prior);
        est.by_method.push_back(core::bayesian_estimate(latest, prior));
        if (wsize >= kMinSeriesWindow) {
            est.by_method.push_back(core::vardi_estimate(series).lambda);
            est.by_method.push_back(
                core::fanout_estimate(series).mean_demands);
        }
        out.push_back(std::move(est));
    }
    return out;
}

struct EngineRun {
    std::vector<WindowEstimates> estimates;
    tme::engine::EngineMetrics metrics;
    double seconds = 0.0;  ///< wall time spent inside this engine
};

tme::engine::EngineConfig engine_config(std::size_t window_size,
                                        bool warm_start) {
    tme::engine::EngineConfig config;
    config.window_size = window_size;
    config.min_series_window = kMinSeriesWindow;
    config.methods = {Method::gravity, Method::bayesian, Method::vardi,
                      Method::fanout};
    config.threads = 0;  // single-threaded, like the baseline
    config.warm_start = warm_start;
    return config;
}

void ingest_into(tme::engine::OnlineEngine& eng, EngineRun& out,
                 std::size_t sample, const tme::linalg::Vector& loads) {
    const Clock::time_point start = Clock::now();
    tme::engine::WindowResult result = eng.ingest(sample, loads);
    out.seconds += seconds_since(start);
    WindowEstimates est;
    for (auto& run : result.runs) {
        est.by_method.push_back(std::move(run.estimate));
    }
    out.estimates.push_back(std::move(est));
}

/// Streams the day through a cold-started and a warm-started engine,
/// interleaved sample by sample (alternating order), so load spikes and
/// frequency scaling hit both paths alike and the warm-vs-cold ratio
/// stays meaningful on a busy machine.
std::pair<EngineRun, EngineRun> run_engines(const tme::scenario::Scenario& sc,
                                            std::size_t samples,
                                            std::size_t window_size) {
    using namespace tme;
    engine::OnlineEngine cold(sc.topo, sc.routing,
                              engine_config(window_size, false));
    engine::OnlineEngine warm(sc.topo, sc.routing,
                              engine_config(window_size, true));

    std::pair<EngineRun, EngineRun> out;
    out.first.estimates.reserve(samples);
    out.second.estimates.reserve(samples);
    for (std::size_t k = 0; k < samples; ++k) {
        if (k % 2 == 0) {
            ingest_into(cold, out.first, k, sc.loads[k]);
            ingest_into(warm, out.second, k, sc.loads[k]);
        } else {
            ingest_into(warm, out.second, k, sc.loads[k]);
            ingest_into(cold, out.first, k, sc.loads[k]);
        }
    }
    out.first.metrics = cold.metrics();
    out.second.metrics = warm.metrics();
    return out;
}

/// Worst estimate difference between two full window-result streams
/// (1e300 on any shape mismatch).
double compare_windows(const std::vector<tme::engine::WindowResult>& a,
                       const std::vector<tme::engine::WindowResult>& b) {
    if (a.size() != b.size()) return 1e300;
    double worst = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k) {
        if (a[k].runs.size() != b[k].runs.size()) return 1e300;
        for (std::size_t m = 0; m < a[k].runs.size(); ++m) {
            if (a[k].runs[m].method != b[k].runs[m].method ||
                a[k].runs[m].estimate.size() !=
                    b[k].runs[m].estimate.size()) {
                return 1e300;
            }
            worst = std::max(worst, max_abs_diff(a[k].runs[m].estimate,
                                                 b[k].runs[m].estimate));
        }
    }
    return worst;
}

/// One fleet pass over the prepared jobs (async ingestion, shared
/// epoch cache, one worker per job), keeping full window results for
/// the equivalence checks.
tme::engine::FleetReport run_fleet(
    const std::vector<tme::engine::FleetJob>& jobs,
    const tme::engine::EngineConfig& config) {
    using namespace tme;
    engine::FleetConfig fleet_config;
    fleet_config.engine = config;
    fleet_config.concurrency = jobs.size();
    fleet_config.async_ingest = true;
    fleet_config.cache_capacity = jobs.size();
    fleet_config.keep_windows = true;
    engine::FleetDriver driver(jobs.front().scenario->topo, fleet_config);
    return driver.run(jobs);
}

double compare(const std::vector<WindowEstimates>& a,
               const std::vector<WindowEstimates>& b) {
    if (a.size() != b.size()) return 1e300;
    double worst = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k) {
        if (a[k].by_method.size() != b[k].by_method.size()) return 1e300;
        for (std::size_t m = 0; m < a[k].by_method.size(); ++m) {
            if (a[k].by_method[m].size() != b[k].by_method[m].size()) {
                return 1e300;
            }
            worst = std::max(
                worst, max_abs_diff(a[k].by_method[m], b[k].by_method[m]));
        }
    }
    return worst;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace tme;

    std::size_t samples = 288;
    std::size_t window_size = 36;
    scenario::Network network = scenario::Network::europe;
    std::string json_path = "BENCH_engine.json";
    std::string trace_path = "BENCH_engine_trace.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--samples") && i + 1 < argc) {
            samples = static_cast<std::size_t>(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--window") && i + 1 < argc) {
            window_size = static_cast<std::size_t>(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--usa")) {
            network = scenario::Network::usa;
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc) {
            trace_path = argv[++i];
        } else {
            std::printf("usage: %s [--samples N] [--window W] [--usa] "
                        "[--json PATH] [--trace PATH]\n",
                        argv[0]);
            return 2;
        }
    }
    if (samples == 0 || window_size == 0) {
        std::printf("error: --samples and --window must be positive\n");
        return 2;
    }

    bench::header(
        "Engine perf: incremental sliding windows vs naive recomputation",
        "new subsystem (streaming engine); paper Sec. 5.1 operational "
        "setting",
        "engine processes the day faster with identical estimates");

    const scenario::Scenario sc = scenario::make_scenario(network);
    samples = std::min(samples, sc.loads.size());
    std::printf("network=%s samples=%zu window=%zu methods=gravity,"
                "bayesian,vardi,fanout\n\n",
                sc.name.c_str(), samples, window_size);

    const Clock::time_point t_naive = Clock::now();
    const auto naive = run_naive(sc, samples, window_size);
    const double naive_seconds = seconds_since(t_naive);

    const auto [engine_cold, engine_warm] =
        run_engines(sc, samples, window_size);
    const double cold_seconds = engine_cold.seconds;
    const double warm_seconds = engine_warm.seconds;

    const double cold_diff = compare(naive, engine_cold.estimates);
    const double warm_diff = compare(naive, engine_warm.estimates);

    std::printf("naive rebuild-per-window : %8.3f s\n", naive_seconds);
    std::printf("engine (cold starts)     : %8.3f s   speedup %.2fx   "
                "max |diff| %.3g\n",
                cold_seconds, naive_seconds / cold_seconds, cold_diff);
    std::printf("engine (warm starts)     : %8.3f s   speedup %.2fx   "
                "max |diff| %.3g\n",
                warm_seconds, naive_seconds / warm_seconds, warm_diff);

    // Per-method cold/warm window timings.  The fanout method carries
    // the dominant per-window cost (its equality-constrained
    // non-negative QP), so its warm-vs-cold ratio is gated: the
    // active-set warm start must pay for itself.
    std::printf("\nper-method mean window time (cold -> warm):\n");
    double fanout_warm_speedup = 0.0;
    for (const auto& [method, cold_stats] : engine_cold.metrics.methods) {
        const auto it = engine_warm.metrics.methods.find(method);
        if (it == engine_warm.metrics.methods.end()) continue;
        const tme::engine::MethodStats& warm_stats = it->second;
        const double ratio =
            warm_stats.mean_seconds() > 0.0
                ? cold_stats.mean_seconds() / warm_stats.mean_seconds()
                : 0.0;
        std::printf("  %-9s %8.3fms -> %8.3fms  (%.2fx, warm accepted "
                    "%zu/%zu)\n",
                    tme::engine::method_name(method),
                    cold_stats.mean_seconds() * 1e3,
                    warm_stats.mean_seconds() * 1e3, ratio,
                    warm_stats.warm_accepted_runs.load(),
                    warm_stats.warm_runs.load());
        if (method == Method::fanout) fanout_warm_speedup = ratio;
    }

    // ---- Fleet phase: 4 scenarios on one topology, serial vs fleet.
    // Deliberately smaller per-job working set than the single-engine
    // phase: the throughput gate measures FleetDriver concurrency, and
    // on the 2-core CI bench runner four full-day engines with 36-deep
    // windows evict each other's aggregates from the shared cache,
    // hiding the concurrency win the gate is after.
    constexpr std::size_t kFleetJobs = 4;
    const std::size_t fleet_samples = std::min<std::size_t>(samples, 96);
    const std::size_t fleet_window = std::min<std::size_t>(window_size, 12);
    std::printf("\nfleet: %zu %s scenarios x %zu samples, window %zu "
                "(serial engines vs FleetDriver, shared epoch cache)\n",
                kFleetJobs, sc.name.c_str(), fleet_samples, fleet_window);
    std::vector<scenario::Scenario> fleet_scenarios;
    fleet_scenarios.reserve(kFleetJobs);
    for (unsigned s = 0; s < kFleetJobs; ++s) {
        scenario::Scenario fsc = scenario::make_scenario(network, s + 1);
        if (fsc.demands.size() > fleet_samples) {  // bound the replay
            fsc.demands.resize(fleet_samples);
            fsc.loads.resize(fleet_samples);
        }
        fleet_scenarios.push_back(std::move(fsc));
    }
    const engine::EngineConfig fleet_engine_config =
        engine_config(fleet_window, true);
    std::vector<engine::FleetJob> fleet_jobs(kFleetJobs);
    for (std::size_t j = 0; j < kFleetJobs; ++j) {
        fleet_jobs[j].name = sc.name + "-seed" + std::to_string(j + 1);
        fleet_jobs[j].scenario = &fleet_scenarios[j];
        fleet_jobs[j].replay.attach_truth = false;
    }

    // Serial baseline: one engine at a time, each with a private cache.
    std::vector<std::vector<engine::WindowResult>> serial_windows;
    serial_windows.reserve(kFleetJobs);
    double fleet_serial_seconds = 0.0;
    for (std::size_t j = 0; j < kFleetJobs; ++j) {
        engine::OnlineEngine eng(fleet_scenarios[j].topo,
                                 fleet_scenarios[j].routing,
                                 fleet_engine_config);
        const Clock::time_point t0 = Clock::now();
        engine::ReplayResult r = engine::replay_scenario(
            eng, fleet_scenarios[j], fleet_jobs[j].replay);
        fleet_serial_seconds += seconds_since(t0);
        serial_windows.push_back(std::move(r.windows));
    }

    // Fleet runs (twice, for the bit-stability check).
    const engine::FleetReport fleet =
        run_fleet(fleet_jobs, fleet_engine_config);
    const engine::FleetReport fleet_repeat =
        run_fleet(fleet_jobs, fleet_engine_config);

    double fleet_diff_vs_serial = 0.0;
    double fleet_diff_repeat = 0.0;
    for (std::size_t j = 0; j < kFleetJobs; ++j) {
        fleet_diff_vs_serial = std::max(
            fleet_diff_vs_serial,
            compare_windows(serial_windows[j],
                            fleet.jobs[j].window_results));
        fleet_diff_repeat = std::max(
            fleet_diff_repeat,
            compare_windows(fleet.jobs[j].window_results,
                            fleet_repeat.jobs[j].window_results));
    }
    const double fleet_speedup =
        fleet.wall_seconds > 0.0 ? fleet_serial_seconds / fleet.wall_seconds
                                 : 0.0;
    // On a single hardware thread no concurrent speedup is physically
    // possible; the throughput gate only applies on multi-core hosts.
    // Both the verdict and the reason land in the JSON so a skipped
    // gate is visible in the perf trajectory, not silently absent.
    const unsigned host_cores = std::thread::hardware_concurrency();
    const bool fleet_gate_applicable = host_cores >= 2;
    const std::string fleet_gate_skip_reason =
        fleet_gate_applicable
            ? ""
            : "single hardware thread: no concurrent speedup is "
              "physically possible";
    std::printf("serial %zu scenarios      : %8.3f s\n", kFleetJobs,
                fleet_serial_seconds);
    std::printf("fleet  %zu scenarios      : %8.3f s   speedup %.2fx   "
                "max |diff| vs serial %.3g\n",
                kFleetJobs, fleet.wall_seconds, fleet_speedup,
                fleet_diff_vs_serial);
    std::printf("%s", fleet.summary().c_str());

    // ---- Observability phase: tracing cost, equivalence, export.
    std::printf("\nobservability: tracing %s\n",
                obs::tracing_compiled() ? "compiled in" : "compiled out");

    // Per-span cost, microbenchmarked disabled (one relaxed load) and
    // enabled (ring push).  The replay-level overhead is derived as
    // span_count x per-span cost / replay wall rather than differenced
    // between two full runs, so the <1%/<5% gates hold even when a
    // loaded host adds multi-percent run-to-run wall-clock noise.
    constexpr std::size_t kSpanReps = 2000000;
    const auto span_cost_ns = [](std::size_t reps) {
        const Clock::time_point t0 = Clock::now();
        for (std::size_t i = 0; i < reps; ++i) {
            obs::Span span("bench/span_cost");
        }
        return seconds_since(t0) * 1e9 / static_cast<double>(reps);
    };
    const double span_disabled_ns = span_cost_ns(kSpanReps);
    double span_enabled_ns = 0.0;
    {
        obs::ScopedTracing tracing(true);
        span_enabled_ns = span_cost_ns(kSpanReps);
    }
    obs::Tracer::instance().clear();

    // Traced replay of scenario 0: estimates must be bit-for-bit those
    // of the untraced serial replay (spans and counters never touch the
    // arithmetic), and its span count feeds the overhead model.
    std::uint64_t replay_spans = 0;
    double traced_diff = 0.0;
    double traced_seconds = 0.0;
    {
        obs::ScopedTracing tracing(true);
        const std::uint64_t recorded0 =
            obs::Tracer::instance().recorded();
        engine::OnlineEngine eng(fleet_scenarios[0].topo,
                                 fleet_scenarios[0].routing,
                                 fleet_engine_config);
        const Clock::time_point t0 = Clock::now();
        engine::ReplayResult r = engine::replay_scenario(
            eng, fleet_scenarios[0], fleet_jobs[0].replay);
        traced_seconds = seconds_since(t0);
        replay_spans = obs::Tracer::instance().recorded() - recorded0;
        traced_diff = compare_windows(serial_windows[0], r.windows);
    }
    const double replay_ns = traced_seconds * 1e9;
    const double overhead_disabled_pct =
        replay_ns > 0.0 ? 100.0 * static_cast<double>(replay_spans) *
                              span_disabled_ns / replay_ns
                        : 0.0;
    const double overhead_enabled_pct =
        replay_ns > 0.0 ? 100.0 * static_cast<double>(replay_spans) *
                              span_enabled_ns / replay_ns
                        : 0.0;
    std::printf("  span cost: disabled %.2f ns, enabled %.1f ns\n",
                span_disabled_ns, span_enabled_ns);
    std::printf("  traced replay: %llu spans, derived overhead "
                "disabled %.4f%% / enabled %.3f%%, max |diff| vs "
                "untraced %.3g\n",
                static_cast<unsigned long long>(replay_spans),
                overhead_disabled_pct, overhead_enabled_pct, traced_diff);

    // Two-scenario fleet under tracing: the exported Chrome trace is
    // the CI artifact (and what the trace-validation test re-parses).
    obs::Tracer::instance().clear();
    {
        obs::ScopedTracing tracing(true);
        const std::vector<engine::FleetJob> trace_jobs{fleet_jobs[0],
                                                       fleet_jobs[1]};
        run_fleet(trace_jobs, fleet_engine_config);
    }
    const bool trace_written =
        obs::Tracer::instance().write_chrome_trace(trace_path);
    std::printf("  %s %s (%llu spans, %llu dropped)\n",
                trace_written ? "wrote" : "WARNING: could not write",
                trace_path.c_str(),
                static_cast<unsigned long long>(
                    obs::Tracer::instance().recorded()),
                static_cast<unsigned long long>(
                    obs::Tracer::instance().dropped()));

    // Machine-readable record for cross-PR perf tracking.
    obs::Report report("bench_perf_engine");
    report.set("network", sc.name);
    report.set("samples", samples);
    report.set("window", window_size);
    report.set("naive_seconds", naive_seconds);
    report.set("cold_seconds", cold_seconds);
    report.set("warm_seconds", warm_seconds);
    report.set("speedup_cold", naive_seconds / cold_seconds);
    report.set("speedup_warm", naive_seconds / warm_seconds);
    report.set("max_diff_cold", cold_diff);
    report.set("max_diff_warm", warm_diff);
    report.set("cache_hit_rate", engine_warm.metrics.cache_hit_rate());
    report.set("fanout_warm_speedup", fanout_warm_speedup);
    report.set("fleet_jobs", kFleetJobs);
    report.set("fleet_samples", fleet_samples);
    report.set("fleet_window", fleet_window);
    report.set("fleet_serial_seconds", fleet_serial_seconds);
    report.set("fleet_wall_seconds", fleet.wall_seconds);
    report.set("fleet_speedup", fleet_speedup);
    report.set("fleet_max_diff_vs_serial", fleet_diff_vs_serial);
    report.set("fleet_bitstable", fleet_diff_repeat == 0.0);
    report.set("fleet_gate_applied", fleet_gate_applicable);
    report.set("fleet_gate_skip_reason", fleet_gate_skip_reason);
    report.set("host_hardware_concurrency", host_cores);
    {
        obs::Json obs_section = obs::Json::object();
        obs_section.set("tracing_compiled", obs::tracing_compiled());
        obs_section.set("span_cost_disabled_ns", span_disabled_ns);
        obs_section.set("span_cost_enabled_ns", span_enabled_ns);
        obs_section.set("replay_spans", replay_spans);
        obs_section.set("overhead_disabled_pct", overhead_disabled_pct);
        obs_section.set("overhead_enabled_pct", overhead_enabled_pct);
        obs_section.set("traced_max_diff", traced_diff);
        obs_section.set("trace_path", trace_path);
        obs_section.set("trace_written", trace_written);
        report.set("obs", std::move(obs_section));
    }
    {
        obs::Json methods = obs::Json::object();
        for (const auto& [method, cold_stats] :
             engine_cold.metrics.methods) {
            const auto it = engine_warm.metrics.methods.find(method);
            if (it == engine_warm.metrics.methods.end()) continue;
            const tme::engine::MethodStats& warm_stats = it->second;
            obs::Json entry = obs::Json::object();
            entry.set("runs", cold_stats.runs.load());
            entry.set("cold_mean_window_seconds",
                      cold_stats.mean_seconds());
            entry.set("warm_mean_window_seconds",
                      warm_stats.mean_seconds());
            entry.set("warm_runs", warm_stats.warm_runs.load());
            entry.set("warm_accepted_runs",
                      warm_stats.warm_accepted_runs.load());
            entry.set("warm_latency", obs::histogram_to_json(
                                          warm_stats.latency.snapshot()));
            const obs::SolverCounters counters =
                warm_stats.solver.snapshot();
            if (counters.any()) {
                entry.set("solver", obs::counters_to_json(counters));
            }
            methods.set(tme::engine::method_name(method),
                        std::move(entry));
        }
        report.set("methods", std::move(methods));
    }
    // Full structured snapshot of the warm engine — the same document
    // EngineMetrics::to_json() serves operators at runtime.
    report.set("warm_engine_metrics", engine_warm.metrics.to_json());
    if (report.write_file(json_path)) {
        std::printf("\nwrote %s\n", json_path.c_str());
    } else {
        std::printf("\nWARNING: could not write %s\n", json_path.c_str());
    }

    bool ok = true;
    if (cold_diff > 1e-9) {
        std::printf("FAIL: cold-engine estimates diverge from naive "
                    "(%.3g > 1e-9)\n",
                    cold_diff);
        ok = false;
    }
    if (warm_diff > 1e-9) {
        std::printf("FAIL: warm-engine estimates diverge from naive "
                    "(%.3g > 1e-9)\n",
                    warm_diff);
        ok = false;
    }
    if (warm_seconds >= naive_seconds) {
        std::printf("FAIL: incremental warm path not faster than naive "
                    "(%.3fs >= %.3fs)\n",
                    warm_seconds, naive_seconds);
        ok = false;
    }
    if (fanout_warm_speedup < 1.5) {
        std::printf("FAIL: fanout QP warm start below the 1.5x gate "
                    "(%.2fx)\n",
                    fanout_warm_speedup);
        ok = false;
    }
    if (fleet_diff_vs_serial > 1e-9) {
        std::printf("FAIL: fleet estimates diverge from serial engines "
                    "(%.3g > 1e-9)\n",
                    fleet_diff_vs_serial);
        ok = false;
    }
    if (fleet_diff_repeat != 0.0) {
        std::printf("FAIL: fleet estimates not bit-for-bit stable across "
                    "runs (max |diff| %.3g)\n",
                    fleet_diff_repeat);
        ok = false;
    }
    if (fleet_gate_applicable && fleet_speedup < 1.5) {
        std::printf("FAIL: fleet throughput below the 1.5x gate "
                    "(%.2fx over serial at %zu scenarios)\n",
                    fleet_speedup, kFleetJobs);
        ok = false;
    } else if (!fleet_gate_applicable) {
        std::printf("NOTE: %u hardware thread(s) — fleet 1.5x "
                    "throughput gate skipped (measured %.2fx): %s\n",
                    host_cores, fleet_speedup,
                    fleet_gate_skip_reason.c_str());
    }
    if (traced_diff != 0.0) {
        std::printf("FAIL: tracing perturbs estimates (max |diff| %.3g, "
                    "must be bitwise 0)\n",
                    traced_diff);
        ok = false;
    }
    if (obs::tracing_compiled()) {
        if (overhead_disabled_pct >= 1.0) {
            std::printf("FAIL: disabled-tracing overhead above the 1%% "
                        "budget (%.4f%%)\n",
                        overhead_disabled_pct);
            ok = false;
        }
        if (overhead_enabled_pct >= 5.0) {
            std::printf("FAIL: enabled-tracing overhead above the 5%% "
                        "budget (%.3f%%)\n",
                        overhead_enabled_pct);
            ok = false;
        }
        if (!trace_written) {
            std::printf("FAIL: could not write the Chrome trace artifact "
                        "%s\n",
                        trace_path.c_str());
            ok = false;
        }
    }
    if (ok) {
        std::printf("\nPASS: identical estimates (<= 1e-9); incremental "
                    "path %.2fx faster cold, %.2fx warm; fanout warm "
                    "start %.2fx; fleet %.2fx vs serial (bit-stable)\n",
                    naive_seconds / cold_seconds,
                    naive_seconds / warm_seconds, fanout_warm_speedup,
                    fleet_speedup);
    }
    return ok ? 0 : 1;
}
