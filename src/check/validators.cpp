#include "check/validators.hpp"

#include <cmath>
#include <string>

namespace tme::check {

namespace {

[[noreturn]] void fail(const char* invariant, const std::string& detail) {
    // Validators share one raise path so every diagnostic carries the
    // "contract violated" prefix and the invariant name tests grep for.
    detail::raise(invariant, __FILE__, __LINE__, detail);
}

std::string at_index(const char* what, std::size_t i) {
    return std::string(what) + "[" + std::to_string(i) + "]";
}

}  // namespace

void csr_structure(const linalg::CsrView& a, const char* what) {
    const std::string name(what);
    if (a.rows > 0 && a.offsets == nullptr) {
        fail("csr_structure", name + ": null offsets array");
    }
    if (a.rows == 0) return;
    if (a.offsets[0] != 0) {
        fail("csr_structure",
             name + ": offsets[0] = " + std::to_string(a.offsets[0]) +
                 ", expected 0");
    }
    for (std::size_t i = 0; i < a.rows; ++i) {
        if (a.offsets[i + 1] < a.offsets[i]) {
            fail("csr_structure",
                 name + ": row_ptr not monotone at row " + std::to_string(i) +
                     " (" + std::to_string(a.offsets[i]) + " -> " +
                     std::to_string(a.offsets[i + 1]) + ")");
        }
        std::size_t prev_col = 0;
        bool first = true;
        for (std::size_t k = a.offsets[i]; k < a.offsets[i + 1]; ++k) {
            const std::size_t col = a.col_index[k];
            if (col >= a.cols) {
                fail("csr_structure",
                     name + ": column index " + std::to_string(col) +
                         " out of bounds (cols = " + std::to_string(a.cols) +
                         ") in row " + std::to_string(i));
            }
            if (!first && col <= prev_col) {
                fail("csr_structure",
                     name + ": column indices not strictly ascending in row " +
                         std::to_string(i) + " (" + std::to_string(prev_col) +
                         " then " + std::to_string(col) + ")");
            }
            prev_col = col;
            first = false;
        }
    }
}

void csr_structure(const linalg::SparseMatrix& a, const char* what) {
    const std::string name(what);
    if (a.row_offsets().size() != a.rows() + 1) {
        fail("csr_structure",
             name + ": offsets size " +
                 std::to_string(a.row_offsets().size()) + " != rows + 1 = " +
                 std::to_string(a.rows() + 1));
    }
    if (a.row_offsets().back() != a.nonzeros()) {
        fail("csr_structure",
             name + ": final offset " +
                 std::to_string(a.row_offsets().back()) + " != nnz = " +
                 std::to_string(a.nonzeros()));
    }
    if (a.column_indices().size() != a.nonzeros() ||
        a.values().size() != a.nonzeros()) {
        fail("csr_structure", name + ": index/value array sizes disagree "
                                     "with the nonzero count");
    }
    csr_structure(a.view(), what);
}

void finite(const linalg::Vector& v, const char* what) {
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (!std::isfinite(v[i])) {
            fail("finite", at_index(what, i) + " = " + std::to_string(v[i]));
        }
    }
}

void finite(const linalg::Matrix& m, const char* what) {
    for (std::size_t i = 0; i < m.rows(); ++i) {
        const double* row = m.row_data(i);
        for (std::size_t j = 0; j < m.cols(); ++j) {
            if (!std::isfinite(row[j])) {
                fail("finite", std::string(what) + "(" + std::to_string(i) +
                                   "," + std::to_string(j) + ") = " +
                                   std::to_string(row[j]));
            }
        }
    }
}

void finite_nonnegative(const linalg::Vector& v, const char* what,
                        double tolerance) {
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (!std::isfinite(v[i])) {
            fail("finite", at_index(what, i) + " = " + std::to_string(v[i]));
        }
        if (v[i] < -tolerance) {
            fail("nonnegative",
                 at_index(what, i) + " = " + std::to_string(v[i]) +
                     " below -tolerance = " + std::to_string(-tolerance));
        }
    }
}

void solver_boundary(const char* solver, const linalg::CsrView& a,
                     const linalg::Vector& b) {
    const std::string name(solver);
    csr_structure(a, solver);
    if (b.size() != a.rows) {
        fail("solver_boundary",
             name + ": rhs size " + std::to_string(b.size()) +
                 " != operator rows " + std::to_string(a.rows));
    }
    finite(b, (name + " rhs").c_str());
}

void solver_boundary(const char* solver, const linalg::Matrix& gram,
                     const linalg::Vector& atb) {
    const std::string name(solver);
    if (gram.rows() != gram.cols()) {
        fail("solver_boundary",
             name + ": Gram not square (" + std::to_string(gram.rows()) +
                 " x " + std::to_string(gram.cols()) + ")");
    }
    if (atb.size() != gram.rows()) {
        fail("solver_boundary",
             name + ": rhs size " + std::to_string(atb.size()) +
                 " != Gram dimension " + std::to_string(gram.rows()));
    }
    finite(gram, (name + " Gram").c_str());
    finite(atb, (name + " rhs").c_str());
}

void solver_boundary(const char* solver, const linalg::Vector& x,
                     bool require_nonnegative) {
    const std::string name = std::string(solver) + " result";
    if (require_nonnegative) {
        // Scale-relative slack: active-set iterates are accepted at
        // solver precision, so a strict 0 would misfire on -1e-18
        // noise while still catching any genuinely negative demand.
        double scale = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
            const double a = std::abs(x[i]);
            if (a > scale) scale = a;
        }
        finite_nonnegative(x, name.c_str(), 1e-9 * scale);
    } else {
        finite(x, name.c_str());
    }
}

void solver_boundary(const char* solver, const linalg::Vector& x,
                     const std::vector<std::size_t>& passive_set) {
    const std::string name(solver);
    std::vector<bool> passive(x.size(), false);
    for (std::size_t i = 0; i < passive_set.size(); ++i) {
        const std::size_t j = passive_set[i];
        if (j >= x.size()) {
            fail("solver_boundary",
                 name + ": passive index " + std::to_string(j) +
                     " out of range (n = " + std::to_string(x.size()) + ")");
        }
        if (passive[j]) {
            fail("solver_boundary",
                 name + ": passive index " + std::to_string(j) +
                     " listed twice");
        }
        passive[j] = true;
        if (!(x[j] > 0.0)) {
            fail("solver_boundary",
                 name + ": passive " + at_index("x", j) + " = " +
                     std::to_string(x[j]) + ", expected > 0");
        }
    }
    for (std::size_t j = 0; j < x.size(); ++j) {
        if (!passive[j] && x[j] != 0.0) {
            fail("solver_boundary",
                 name + ": active " + at_index("x", j) + " = " +
                     std::to_string(x[j]) + ", expected exactly 0");
        }
    }
}

void snapshot_structure(std::uint64_t version, std::size_t window_start,
                        std::size_t window_end,
                        const std::vector<std::size_t>& estimate_lengths,
                        const char* what) {
    const std::string name(what);
    if (version == 0) {
        fail("snapshot_structure",
             name + ": publication version must be nonzero");
    }
    if (window_start > window_end) {
        fail("snapshot_structure",
             name + ": window bounds out of order (" +
                 std::to_string(window_start) + " > " +
                 std::to_string(window_end) + ")");
    }
    for (std::size_t i = 1; i < estimate_lengths.size(); ++i) {
        if (estimate_lengths[i] != estimate_lengths[0]) {
            fail("snapshot_structure",
                 name + ": method " + std::to_string(i) +
                     " estimate length " +
                     std::to_string(estimate_lengths[i]) +
                     " != method 0 length " +
                     std::to_string(estimate_lengths[0]));
        }
    }
}

}  // namespace tme::check
