// Distributed SNMP poller simulation (paper Section 5.1.2).
//
// Global Crossing collects LSP and link counters with a geographically
// distributed fleet of pollers: each poller owns a set of routers, polls
// every 5 minutes at fixed timestamps, records the actual response time,
// and adjusts rates for the real measurement interval; SNMP rides UDP,
// so polls can be lost, and neighbouring pollers act as backups.
//
// This module reproduces those mechanics against "true" piecewise-
// constant rate series, producing the uniform rate series of a
// TimeSeriesStore.  The estimation benches use the exactly-consistent
// t = R s data set instead (Section 5.1.4); this simulator exists to
// model and test the measurement path itself (and supports the future-
// work experiments the paper lists on measurement errors).
#pragma once

#include <cstddef>
#include <vector>

#include "telemetry/timeseries.hpp"

namespace tme::telemetry {

struct PollerConfig {
    std::size_t poller_count = 4;
    /// Std-dev (seconds) of per-poll response-time jitter around the
    /// nominal 5-minute timestamps.
    double jitter_stddev_seconds = 3.0;
    /// Probability that a poll's UDP response is lost.
    double loss_probability = 0.0;
    /// Probability that a neighbouring backup poller recovers a lost poll.
    double backup_recovery_probability = 0.9;
    /// Nominal polling interval in seconds.
    double interval_seconds = 300.0;
    unsigned seed = 5;
};

/// Result of simulating the poller fleet over a day of true rates.
struct PollingOutcome {
    TimeSeriesStore store;           ///< measured (rate-adjusted) series
    std::size_t polls_attempted = 0;
    std::size_t polls_lost = 0;      ///< lost after backup attempts
    std::size_t polls_recovered = 0; ///< recovered by a backup poller
};

/// Simulates polling `true_rates` (true_rates[k][object] = rate during
/// interval k).  Counters are integrated exactly over the jittered poll
/// windows and divided by the real window length, reproducing the
/// paper's interval-length adjustment; the residual error is only the
/// rate variation inside the misaligned boundary slivers.
PollingOutcome simulate_polling(
    const std::vector<std::vector<double>>& true_rates,
    const PollerConfig& config);

}  // namespace tme::telemetry
