#include "routing/routing_matrix.hpp"

#include <stdexcept>

namespace tme::routing {

linalg::SparseMatrix build_routing_matrix(const topology::Topology& topo,
                                          const std::vector<Lsp>& mesh) {
    const std::size_t pairs = topo.pair_count();
    if (mesh.size() != pairs) {
        throw std::invalid_argument(
            "build_routing_matrix: mesh size mismatch");
    }
    std::vector<linalg::Triplet> trips;
    trips.reserve(pairs * 6);
    for (std::size_t p = 0; p < pairs; ++p) {
        const auto [src, dst] = topo.pair_nodes(p);
        const Lsp& lsp = mesh[p];
        if (lsp.src != src || lsp.dst != dst) {
            throw std::invalid_argument(
                "build_routing_matrix: mesh entry does not match pair");
        }
        if (!path_is_valid(topo, src, dst, lsp.path)) {
            throw std::invalid_argument(
                "build_routing_matrix: invalid LSP path");
        }
        trips.push_back({topo.ingress_link(src), p, 1.0});
        trips.push_back({topo.egress_link(dst), p, 1.0});
        for (std::size_t lid : lsp.path) trips.push_back({lid, p, 1.0});
    }
    return linalg::SparseMatrix(topo.link_count(), pairs, std::move(trips));
}

linalg::SparseMatrix igp_routing_matrix(const topology::Topology& topo) {
    const std::size_t pairs = topo.pair_count();
    std::vector<Lsp> mesh(pairs);
    for (std::size_t src = 0; src < topo.pop_count(); ++src) {
        const ShortestPathTree tree = dijkstra(topo, src);
        for (std::size_t dst = 0; dst < topo.pop_count(); ++dst) {
            if (src == dst) continue;
            auto path = extract_path(topo, tree, src, dst);
            if (!path) {
                throw std::runtime_error(
                    "igp_routing_matrix: disconnected topology");
            }
            const std::size_t p = topo.pair_index(src, dst);
            mesh[p].src = src;
            mesh[p].dst = dst;
            mesh[p].path = std::move(*path);
            mesh[p].constrained = true;
        }
    }
    return build_routing_matrix(topo, mesh);
}

linalg::Vector link_loads(const linalg::SparseMatrix& routing,
                          const linalg::Vector& demands) {
    return routing.multiply(demands);
}

std::string validate_routing_matrix(const topology::Topology& topo,
                                    const linalg::SparseMatrix& routing) {
    if (routing.rows() != topo.link_count() ||
        routing.cols() != topo.pair_count()) {
        return "dimension mismatch";
    }
    for (std::size_t p = 0; p < routing.cols(); ++p) {
        const auto [src, dst] = topo.pair_nodes(p);
        // Reconstruct this column.
        std::size_t in_hits = 0;
        std::size_t out_hits = 0;
        Path core;
        for (std::size_t l = 0; l < routing.rows(); ++l) {
            const double v = routing.at(l, p);
            if (v == 0.0) continue;
            const topology::Link& link = topo.link(l);
            switch (link.kind) {
                case topology::LinkKind::access_in:
                    if (l != topo.ingress_link(src)) {
                        return "pair " + std::to_string(p) +
                               ": wrong ingress link";
                    }
                    ++in_hits;
                    break;
                case topology::LinkKind::access_out:
                    if (l != topo.egress_link(dst)) {
                        return "pair " + std::to_string(p) +
                               ": wrong egress link";
                    }
                    ++out_hits;
                    break;
                case topology::LinkKind::core:
                    core.push_back(l);
                    break;
            }
        }
        if (in_hits != 1) {
            return "pair " + std::to_string(p) + ": ingress row count != 1";
        }
        if (out_hits != 1) {
            return "pair " + std::to_string(p) + ": egress row count != 1";
        }
        // Core links from at() scan are ordered by link id, not by path
        // order; re-walk them greedily from src.
        Path ordered;
        std::size_t cur = src;
        while (cur != dst) {
            bool advanced = false;
            for (std::size_t lid : core) {
                if (topo.link(lid).src == cur) {
                    ordered.push_back(lid);
                    cur = topo.link(lid).dst;
                    advanced = true;
                    break;
                }
            }
            if (!advanced) {
                return "pair " + std::to_string(p) + ": broken core path";
            }
            if (ordered.size() > core.size()) {
                return "pair " + std::to_string(p) + ": core path loop";
            }
        }
        if (ordered.size() != core.size()) {
            return "pair " + std::to_string(p) + ": stray core links";
        }
    }
    return {};
}

}  // namespace tme::routing
