#include "traffic/demand_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/metrics.hpp"
#include "topology/builders.hpp"
#include "traffic/traffic_matrix.hpp"

namespace tme::traffic {
namespace {

TEST(DemandModel, NormalizedToUnitTotal) {
    const topology::Topology t = topology::europe_backbone();
    DemandModelConfig config;
    const linalg::Vector s = base_demands(t, config);
    EXPECT_EQ(s.size(), t.pair_count());
    EXPECT_NEAR(linalg::sum(s), 1.0, 1e-12);
    for (double v : s) EXPECT_GE(v, 0.0);
}

TEST(DemandModel, Deterministic) {
    const topology::Topology t = topology::europe_backbone();
    DemandModelConfig config;
    config.seed = 42;
    const linalg::Vector a = base_demands(t, config);
    const linalg::Vector b = base_demands(t, config);
    EXPECT_EQ(a, b);
}

TEST(DemandModel, SeedChangesOutput) {
    const topology::Topology t = topology::europe_backbone();
    DemandModelConfig a;
    a.seed = 1;
    DemandModelConfig b;
    b.seed = 2;
    EXPECT_NE(base_demands(t, a), base_demands(t, b));
}

TEST(DemandModel, StructuralIsProductForm) {
    const topology::Topology t = topology::tiny_backbone();
    const linalg::Vector s = structural_demands(t);
    // s_nm / (w_n w_m) constant across pairs.
    const double r0 = s[t.pair_index(0, 1)] /
                      (t.pop(0).weight * t.pop(1).weight);
    for (std::size_t src = 0; src < t.pop_count(); ++src) {
        for (std::size_t dst = 0; dst < t.pop_count(); ++dst) {
            if (src == dst) continue;
            const double r = s[t.pair_index(src, dst)] /
                             (t.pop(src).weight * t.pop(dst).weight);
            EXPECT_NEAR(r, r0, 1e-12);
        }
    }
}

TEST(DemandModel, HotspotsIncreaseGravityError) {
    const topology::Topology t = topology::us_backbone();
    DemandModelConfig mild;
    mild.lognormal_sigma = 0.1;
    mild.hotspot_strength = 0.0;
    DemandModelConfig hot = mild;
    hot.hotspot_strength = 3.0;
    hot.hotspots_per_source = 2;

    auto gravity_mre = [&t](const linalg::Vector& s) {
        const linalg::Vector g =
            gravity_from_marginals(t.pop_count(), s);
        return core::mre_at_coverage(s, g, 0.9);
    };
    EXPECT_GT(gravity_mre(base_demands(t, hot)),
              gravity_mre(base_demands(t, mild)));
}

TEST(DemandModel, JitterIncreasesSpread) {
    const topology::Topology t = topology::europe_backbone();
    DemandModelConfig small;
    small.lognormal_sigma = 0.01;
    small.hotspot_strength = 0.0;
    DemandModelConfig big = small;
    big.lognormal_sigma = 1.0;

    auto spread = [](const linalg::Vector& s) {
        const double mx = linalg::max_element(s);
        double mn = 1e300;
        for (double v : s) {
            if (v > 0.0) mn = std::min(mn, v);
        }
        return mx / mn;
    };
    EXPECT_GT(spread(base_demands(t, big)),
              spread(base_demands(t, small)));
}

TEST(DemandModel, AdditiveJitterKeepsDemandsPositive) {
    const topology::Topology t = topology::europe_backbone();
    DemandModelConfig config;
    config.additive_sigma = 3.0;  // aggressive
    const linalg::Vector s = base_demands(t, config);
    for (double v : s) EXPECT_GT(v, 0.0);
}

TEST(GravityFromMarginals, DiagonalMassIdentity) {
    // The gravity image's total satisfies the exact zero-diagonal
    // identity: sum(g) = T - sum_n r_n c_n / T, where r/c are the row
    // and column totals of the source matrix.
    const topology::Topology t = topology::tiny_backbone();
    DemandModelConfig config;
    const linalg::Vector s = base_demands(t, config);
    const linalg::Vector g = gravity_from_marginals(t.pop_count(), s);
    TrafficMatrix tm(t.pop_count(), s);
    const linalg::Vector rows = tm.row_totals();
    const linalg::Vector cols = tm.col_totals();
    const double total = tm.total();
    double diag_mass = 0.0;
    for (std::size_t n = 0; n < t.pop_count(); ++n) {
        diag_mass += rows[n] * cols[n] / total;
    }
    EXPECT_NEAR(linalg::sum(g), total - diag_mass, 1e-9);
    EXPECT_THROW(
        gravity_from_marginals(3, linalg::Vector(6, 0.0)),
        std::invalid_argument);
}

TEST(DemandModel, TopPairsCarryMostTraffic) {
    // Fig. 2 calibration: top 20% of demands carry >= 60% of traffic in
    // both reference networks (the scenario tightens this to ~80%).
    for (auto topo : {topology::europe_backbone(), topology::us_backbone()}) {
        DemandModelConfig config;
        config.lognormal_sigma = 0.2;
        const linalg::Vector s = base_demands(topo, config);
        linalg::Vector sorted = s;
        std::sort(sorted.begin(), sorted.end(), std::greater<>());
        double top = 0.0;
        for (std::size_t i = 0; i < sorted.size() / 5; ++i) top += sorted[i];
        EXPECT_GT(top, 0.6);
    }
}

}  // namespace
}  // namespace tme::traffic
