// Figure 13: MRE of the Bayesian and Entropy methods as a function of
// the regularization parameter, both networks, gravity prior.
#include "bench_common.hpp"

#include "core/bayesian.hpp"
#include "core/entropy.hpp"
#include "core/gravity.hpp"

namespace {

void sweep(const tme::scenario::Scenario& sc) {
    using namespace tme;
    const core::SnapshotProblem snap = sc.busy_snapshot();
    const linalg::Vector& truth = sc.busy_snapshot_demands();
    const double thr = core::threshold_for_coverage(truth, 0.9);
    const linalg::Vector prior = core::gravity_estimate(snap);
    std::printf("\n%s (gravity prior MRE = %.3f):\n", sc.name.c_str(),
                core::mean_relative_error(truth, prior, thr));
    std::printf("%12s %10s %10s\n", "reg param", "Bayesian", "Entropy");
    for (double lam : {1e-5, 1e-3, 1e-1, 1e0, 1e1, 1e2, 1e3, 1e4, 1e5}) {
        core::BayesianOptions bo;
        bo.regularization = lam;
        const double bayes = core::mean_relative_error(
            truth, core::bayesian_estimate(snap, prior, bo), thr);
        core::EntropyOptions eo;
        eo.regularization = lam;
        const double entropy = core::mean_relative_error(
            truth, core::entropy_estimate(snap, prior, eo), thr);
        std::printf("%12.0e %10.3f %10.3f\n", lam, bayes, entropy);
    }
}

}  // namespace

int main() {
    tme::bench::header(
        "Figure 13 - MRE vs regularization parameter (gravity prior)",
        "Fig. 13: best results at LARGE regularization (trust the "
        "measurements); best ~0.08/0.11 EU, ~0.25/0.22 US; no uniform "
        "winner between Bayesian and Entropy",
        "curves start at the prior MRE and decrease toward a plateau as "
        "the regularization parameter grows");
    sweep(tme::bench::europe());
    sweep(tme::bench::usa());
    return 0;
}
