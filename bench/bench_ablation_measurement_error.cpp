// Ablation (paper future work, Section 6): "our data set does not
// contain measurement errors or component failures and we have not
// evaluated the effect of such events on the estimation."
//
// This bench quantifies exactly that: instead of the exactly-consistent
// loads t = R s of the evaluation data set, the estimators are fed loads
// measured by the simulated SNMP poller fleet (polling jitter and UDP
// loss with backup recovery, Section 5.1.2 mechanics), at increasing
// loss rates.  Reported: Bayesian and Entropy MRE vs measurement regime.
#include "bench_common.hpp"

#include "core/bayesian.hpp"
#include "core/entropy.hpp"
#include "core/gravity.hpp"
#include "telemetry/poller.hpp"

namespace {

void run(const tme::scenario::Scenario& sc) {
    using namespace tme;
    const linalg::Vector& truth = sc.busy_snapshot_demands();
    const double thr = core::threshold_for_coverage(truth, 0.9);

    // True rate series around the busy snapshot for the poller.
    constexpr std::size_t window = 24;
    const std::size_t start = sc.busy_mid() - window / 2;
    std::vector<std::vector<double>> rates;
    for (std::size_t k = 0; k < window; ++k) {
        rates.push_back(sc.loads[start + k]);
    }
    const std::size_t snap_index = window / 2;

    std::printf("\n%s:\n%-28s %10s %10s\n", sc.name.c_str(),
                "measurement regime", "Bayesian", "Entropy");

    auto evaluate = [&](const char* label, const linalg::Vector& loads) {
        core::SnapshotProblem snap;
        snap.topo = &sc.topo;
        snap.routing = &sc.routing;
        snap.loads = loads;
        const linalg::Vector prior = core::gravity_estimate(snap);
        core::BayesianOptions bo;
        bo.regularization = 1e4;
        const double bayes = core::mean_relative_error(
            truth, core::bayesian_estimate(snap, prior, bo), thr);
        core::EntropyOptions eo;
        eo.regularization = 1e3;
        const double entropy = core::mean_relative_error(
            truth, core::entropy_estimate(snap, prior, eo), thr);
        std::printf("%-28s %10.3f %10.3f\n", label, bayes, entropy);
    };

    // Baseline: the paper's exactly-consistent loads.
    evaluate("consistent (paper 5.1.4)", sc.loads[sc.busy_mid()]);

    // Polled loads at increasing UDP loss rates.
    for (double loss : {0.0, 0.02, 0.10, 0.25}) {
        telemetry::PollerConfig config;
        config.jitter_stddev_seconds = 3.0;
        config.loss_probability = loss;
        config.backup_recovery_probability = 0.9;
        config.seed = 17;
        const telemetry::PollingOutcome out =
            telemetry::simulate_polling(rates, config);
        char label[64];
        std::snprintf(label, sizeof label, "polled, %.0f%% UDP loss",
                      100.0 * loss);
        evaluate(label, out.store.snapshot(snap_index));
    }
}

}  // namespace

int main() {
    tme::bench::header(
        "Ablation - estimation under measurement error",
        "Section 6 future work: effect of measurement errors on the "
        "estimation (not evaluated in the paper)",
        "consistent loads are the best case; polling jitter costs "
        "little; heavy UDP loss degrades both methods gracefully");
    run(tme::bench::europe());
    run(tme::bench::usa());
    return 0;
}
