// Quickstart: estimate a traffic matrix from link loads in ~40 lines.
//
// Builds a small 4-PoP backbone, invents a ground-truth demand matrix,
// derives the link loads the operator would measure via SNMP, and then
// recovers the traffic matrix with the entropy method using a gravity
// prior — the workflow of Gunnar, Johansson & Telkamp (IMC 2004).
#include <cstdio>

#include "core/entropy.hpp"
#include "core/gravity.hpp"
#include "core/metrics.hpp"
#include "routing/routing_matrix.hpp"
#include "topology/builders.hpp"

int main() {
    using namespace tme;

    // 1. A network: PoPs + links (each PoP gets edge links automatically).
    topology::Topology topo = topology::tiny_backbone();

    // 2. Routing matrix R from IGP shortest paths (eq. 1 of the paper).
    const linalg::SparseMatrix routing = routing::igp_routing_matrix(topo);

    // 3. Ground-truth demands (unknown to the operator) and the link
    //    loads t = R s they induce (eq. 2) — what SNMP actually reports.
    linalg::Vector truth(topo.pair_count());
    for (std::size_t p = 0; p < truth.size(); ++p) {
        const auto [src, dst] = topo.pair_nodes(p);
        truth[p] = 100.0 * topo.pop(src).weight * topo.pop(dst).weight;
    }
    core::SnapshotProblem problem;
    problem.topo = &topo;
    problem.routing = &routing;
    problem.loads = routing.multiply(truth);

    // 4. Estimate: gravity model as prior, entropy method for the fit.
    const linalg::Vector prior = core::gravity_estimate(problem);
    core::EntropyOptions options;
    options.regularization = 1000.0;
    const linalg::Vector estimate =
        core::entropy_estimate(problem, prior, options);

    // 5. Compare against the (secret) truth.
    std::printf("%-6s %-6s %10s %10s %10s\n", "src", "dst", "true",
                "gravity", "entropy");
    for (std::size_t p = 0; p < truth.size(); ++p) {
        const auto [src, dst] = topo.pair_nodes(p);
        std::printf("%-6s %-6s %10.1f %10.1f %10.1f\n",
                    topo.pop(src).name.c_str(), topo.pop(dst).name.c_str(),
                    truth[p], prior[p], estimate[p]);
    }
    std::printf("\nMRE over large demands: gravity %.3f, entropy %.3f\n",
                core::mre_at_coverage(truth, prior, 0.9),
                core::mre_at_coverage(truth, estimate, 0.9));
    return 0;
}
