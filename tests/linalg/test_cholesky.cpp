#include "linalg/cholesky.hpp"

#include <gtest/gtest.h>

#include <random>

#include "linalg/matrix.hpp"

namespace tme::linalg {
namespace {

Matrix random_spd(std::size_t n, unsigned seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
    }
    Matrix spd = gram(a);
    for (std::size_t i = 0; i < n; ++i) spd(i, i) += 0.5;
    return spd;
}

TEST(Cholesky, SolvesDiagonalSystem) {
    Cholesky c(Matrix::diagonal({4.0, 9.0}));
    const Vector x = c.solve(Vector{8.0, 27.0});
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Cholesky, FactorReconstructs) {
    const Matrix spd = random_spd(6, 1);
    Cholesky c(spd);
    const Matrix l = c.factor();
    const Matrix rebuilt = gemm(l, l.transposed());
    EXPECT_LT(max_abs_diff(rebuilt, spd), 1e-10);
}

TEST(Cholesky, ThrowsOnNonSquare) {
    EXPECT_THROW(Cholesky(Matrix(2, 3)), std::invalid_argument);
}

TEST(Cholesky, ThrowsOnIndefinite) {
    Matrix m{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
    EXPECT_THROW(Cholesky{m}, std::runtime_error);
}

TEST(Cholesky, TryCholeskyReturnsNulloptOnIndefinite) {
    Matrix m{{0.0, 0.0}, {0.0, 0.0}};
    EXPECT_FALSE(try_cholesky(m).has_value());
    EXPECT_TRUE(try_cholesky(Matrix::identity(2)).has_value());
}

TEST(Cholesky, JitterRescuesSemidefinite) {
    // Rank-1 matrix; plain factorization fails, jitter succeeds.
    Matrix m{{1.0, 1.0}, {1.0, 1.0}};
    EXPECT_FALSE(try_cholesky(m).has_value());
    EXPECT_TRUE(try_cholesky(m, 1e-8).has_value());
}

TEST(Cholesky, MatrixSolve) {
    const Matrix spd = random_spd(4, 2);
    Cholesky c(spd);
    const Matrix x = c.solve(Matrix::identity(4));
    const Matrix should_be_identity = gemm(spd, x);
    EXPECT_LT(max_abs_diff(should_be_identity, Matrix::identity(4)), 1e-9);
}

TEST(Cholesky, SolveSizeMismatchThrows) {
    Cholesky c(Matrix::identity(3));
    EXPECT_THROW(c.solve(Vector{1.0, 2.0}), std::invalid_argument);
}

class CholeskyProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(CholeskyProperty, SolveResidualIsSmall) {
    const std::size_t n = 3 + GetParam() % 12;
    const Matrix spd = random_spd(n, GetParam());
    std::mt19937_64 rng(GetParam() + 77);
    std::uniform_real_distribution<double> dist(-5.0, 5.0);
    Vector b(n);
    for (double& v : b) v = dist(rng);
    Cholesky c(spd);
    const Vector x = c.solve(b);
    const Vector resid = sub(gemv(spd, x), b);
    EXPECT_LT(nrm2(resid), 1e-8 * (1.0 + nrm2(b)));
}

TEST_P(CholeskyProperty, RobustSolveHandlesSingular) {
    const std::size_t n = 4 + GetParam() % 6;
    // Rank-deficient: outer product of one vector.
    std::mt19937_64 rng(GetParam());
    std::uniform_real_distribution<double> dist(0.1, 2.0);
    Vector v(n);
    for (double& x : v) x = dist(rng);
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) m(i, j) = v[i] * v[j];
    }
    // b in the range of m -> a solution exists despite singularity.
    const Vector b = gemv(m, v);
    const Vector x = solve_spd_robust(m, b);
    const Vector resid = sub(gemv(m, x), b);
    EXPECT_LT(nrm2(resid), 1e-5 * (1.0 + nrm2(b)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CholeskyProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace tme::linalg
