// Shared plumbing for the figure/table reproduction benches.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation section, printing the same series the paper plots plus a
// crude ASCII rendering where it helps eyeballing the shape.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "scenario/scenario.hpp"

namespace tme::bench {

inline const scenario::Scenario& europe() {
    static const scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe);
    return sc;
}

inline const scenario::Scenario& usa() {
    static const scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::usa);
    return sc;
}

inline void header(const std::string& experiment,
                   const std::string& paper_ref,
                   const std::string& expectation) {
    std::printf("==================================================\n");
    std::printf("%s\n", experiment.c_str());
    std::printf("Paper: %s\n", paper_ref.c_str());
    std::printf("Expected shape: %s\n", expectation.c_str());
    std::printf("==================================================\n");
}

/// One-line ASCII bar, scaled to `width` characters at value `vmax`.
inline std::string bar(double value, double vmax, int width = 40) {
    const int n = vmax > 0.0
                      ? std::max(0, std::min(width, static_cast<int>(
                                                        value / vmax *
                                                        width)))
                      : 0;
    return std::string(static_cast<std::size_t>(n), '#');
}

/// MRE threshold set info for a demand vector (prints paper-comparable
/// large-demand counts).
inline double report_threshold(const linalg::Vector& truth) {
    const double thr = core::threshold_for_coverage(truth, 0.9);
    std::printf("large-demand set: %zu demands carry ~90%% of traffic\n",
                core::demands_above(truth, thr).size());
    return thr;
}

}  // namespace tme::bench
