// Structured telemetry export: one Report type that every BENCH_*.json
// producer and EngineMetrics::to_json() build on, so the files share
// schema conventions (ordered keys, integer counters, seconds as
// doubles, histograms as {count, mean/p50/p95/p99/max seconds}).
#pragma once

#include <string>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"

namespace tme::obs {

/// Compact summary of a histogram snapshot:
/// {count, mean_s, p50_s, p95_s, p99_s, max_s} (min_s included when
/// nonzero samples exist).  Omits the raw buckets — merge snapshots
/// first if cross-source rollups are needed.
Json histogram_to_json(const HistogramSnapshot& snapshot);

/// {qp_active_set_rounds, qp_cg_iterations, ...} with zero fields
/// omitted (a gravity-only report stays free of QP noise).  All-zero
/// counters serialize to an empty object.
Json counters_to_json(const SolverCounters& counters);

/// A named JSON document destined for a file: benches fill `root` and
/// call write_file().  The name lands in the document itself under
/// "report" so a stray BENCH file self-identifies.
class Report {
  public:
    explicit Report(std::string name);

    Json& root() { return root_; }
    const Json& root() const { return root_; }
    /// Shorthand for root().set(key, value).
    Json& set(std::string_view key, Json value) {
        return root_.set(key, std::move(value));
    }

    std::string to_json(int indent = 2) const { return root_.dump(indent); }
    /// Pretty-printed dump to `path` (trailing newline included).
    /// Atomic: writes `path`.tmp and renames, so concurrent readers
    /// never observe a torn report and a crash mid-write preserves the
    /// previous one.
    bool write_file(const std::string& path, int indent = 2) const;

  private:
    Json root_;
};

}  // namespace tme::obs
