#include "traffic/generator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <stdexcept>

namespace tme::traffic {

namespace {

// Deterministic per-source hash in [0, 1) (splitmix64 finalizer), used
// to diversify day shapes without consuming the series RNG stream.
double source_hash(std::size_t src, unsigned seed, unsigned salt) {
    std::uint64_t z = 0x9e3779b97f4a7c15ull * (src + 1) + seed + salt;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) / 9007199254740992.0;  // 2^53
}

// Per-source diurnal factor at sample k.
double source_factor(const topology::Topology& topo, std::size_t src,
                     const SeriesConfig& config, std::size_t k) {
    DiurnalProfile shifted = config.profile;
    // West of the reference longitude -> solar peak later in GMT.
    shifted.peak_minute +=
        config.minutes_per_degree *
        (config.reference_longitude - topo.pop(src).longitude);
    // Customer-mix diversity: deeper/shallower troughs and sharper or
    // flatter busy periods per PoP.
    const double d = config.per_source_profile_diversity;
    if (d > 0.0) {
        const double h1 = source_hash(src, config.seed, 1) - 0.5;
        const double h2 = source_hash(src, config.seed, 2) - 0.5;
        shifted.trough_fraction = std::clamp(
            shifted.trough_fraction * (1.0 + 0.8 * d * h1), 0.05, 0.95);
        shifted.sharpness =
            std::max(0.5, shifted.sharpness * (1.0 + 0.8 * d * h2));
    }
    return diurnal_factor(shifted, sample_minute(k));
}

// Draws one Gamma sample with the requested mean and variance.
double gamma_sample(std::mt19937_64& rng, double mean, double var) {
    if (mean <= 0.0) return 0.0;
    if (var <= 0.0) return mean;
    const double shape = mean * mean / var;
    const double scale = var / mean;
    std::gamma_distribution<double> dist(shape, scale);
    return dist(rng);
}

}  // namespace

linalg::Vector series_mean_at(const topology::Topology& topo,
                              const linalg::Vector& base_mean,
                              const SeriesConfig& config, std::size_t k) {
    const std::size_t pairs = topo.pair_count();
    if (base_mean.size() != pairs) {
        throw std::invalid_argument("series_mean_at: base size mismatch");
    }
    linalg::Vector mean(pairs, 0.0);
    for (std::size_t src = 0; src < topo.pop_count(); ++src) {
        const double f = source_factor(topo, src, config, k);
        for (std::size_t dst = 0; dst < topo.pop_count(); ++dst) {
            if (src == dst) continue;
            const std::size_t p = topo.pair_index(src, dst);
            mean[p] = base_mean[p] * f;
        }
    }
    return mean;
}

std::vector<linalg::Vector> generate_series(const topology::Topology& topo,
                                            const linalg::Vector& base_mean,
                                            const SeriesConfig& config) {
    const std::size_t pairs = topo.pair_count();
    if (base_mean.size() != pairs) {
        throw std::invalid_argument("generate_series: base size mismatch");
    }
    if (config.noise.phi < 0.0) {
        throw std::invalid_argument("generate_series: phi must be >= 0");
    }
    std::mt19937_64 rng(config.seed);
    std::vector<linalg::Vector> series;
    series.reserve(config.samples);
    for (std::size_t k = 0; k < config.samples; ++k) {
        linalg::Vector s = series_mean_at(topo, base_mean, config, k);
        for (double& v : s) {
            const double var = config.noise.phi *
                               std::pow(v, config.noise.c);
            v = gamma_sample(rng, v, var);
        }
        series.push_back(std::move(s));
    }
    return series;
}

std::vector<linalg::Vector> generate_poisson_series(
    const linalg::Vector& lambda, double scale, std::size_t samples,
    unsigned seed) {
    if (scale <= 0.0) {
        throw std::invalid_argument("generate_poisson_series: bad scale");
    }
    std::mt19937_64 rng(seed);
    std::vector<linalg::Vector> series;
    series.reserve(samples);
    for (std::size_t k = 0; k < samples; ++k) {
        linalg::Vector s(lambda.size(), 0.0);
        for (std::size_t p = 0; p < lambda.size(); ++p) {
            if (lambda[p] <= 0.0) continue;
            std::poisson_distribution<long long> dist(scale * lambda[p]);
            s[p] = static_cast<double>(dist(rng)) / scale;
        }
        series.push_back(std::move(s));
    }
    return series;
}

}  // namespace tme::traffic
