#include "linalg/qp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "routing/routing_matrix.hpp"
#include "topology/builders.hpp"

namespace tme::linalg {
namespace {

TEST(EqQp, SimpleProjection) {
    // min 1/2||x||^2 - 0 s.t. x0 + x1 = 2 -> x = (1, 1).
    const Matrix h = Matrix::identity(2);
    const Vector f{0.0, 0.0};
    const Matrix e{{1.0, 1.0}};
    const Vector d{2.0};
    const Vector x = solve_eq_qp(h, f, e, d);
    EXPECT_NEAR(x[0], 1.0, 1e-10);
    EXPECT_NEAR(x[1], 1.0, 1e-10);
}

TEST(EqQp, UnconstrainedReducesToLinearSolve) {
    const Matrix h{{2.0, 0.0}, {0.0, 4.0}};
    const Vector f{2.0, 8.0};
    const Vector x = solve_eq_qp(h, f, Matrix(0, 2), {});
    EXPECT_NEAR(x[0], 1.0, 1e-10);
    EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(EqQp, DimensionMismatchThrows) {
    EXPECT_THROW(
        solve_eq_qp(Matrix::identity(2), {1.0}, Matrix(0, 2), {}),
        std::invalid_argument);
}

TEST(EqQp, SingularKktThrows) {
    // Duplicate equality constraints make the KKT system singular.
    const Matrix h = Matrix::identity(2);
    const Matrix e{{1.0, 1.0}, {1.0, 1.0}};
    EXPECT_THROW(solve_eq_qp(h, {0.0, 0.0}, e, {1.0, 1.0}),
                 std::runtime_error);
}

TEST(EqQpNonneg, MatchesEqualityOnlyWhenInterior) {
    const Matrix h = Matrix::identity(2);
    const Vector f{0.0, 0.0};
    const Matrix e{{1.0, 1.0}};
    const Vector d{2.0};
    const EqQpNonnegResult r = solve_eq_qp_nonneg(h, f, e, d);
    EXPECT_NEAR(r.x[0], 1.0, 1e-5);
    EXPECT_NEAR(r.x[1], 1.0, 1e-5);
    EXPECT_LT(r.equality_violation, 1e-6);
}

TEST(EqQpNonneg, ClampsNegativeCoordinates) {
    // min 1/2 x'Ix - f'x with f = (3, -1), sum = 2: unconstrained
    // equality solution is (3, -1)+nu*(1,1) -> (2.5, -0.5)... must clamp
    // x1 to 0 and put everything on x0.
    const Matrix h = Matrix::identity(2);
    const Vector f{3.0, -1.0};
    const Matrix e{{1.0, 1.0}};
    const Vector d{2.0};
    const EqQpNonnegResult r = solve_eq_qp_nonneg(h, f, e, d);
    EXPECT_NEAR(r.x[0], 2.0, 1e-5);
    EXPECT_NEAR(r.x[1], 0.0, 1e-8);
}

TEST(EqQpNonneg, ReportsActiveSet) {
    const Matrix h = Matrix::identity(2);
    const Vector f{3.0, -1.0};
    const Matrix e{{1.0, 1.0}};
    const Vector d{2.0};
    const EqQpNonnegResult r = solve_eq_qp_nonneg(h, f, e, d);
    ASSERT_EQ(r.active.size(), 2u);
    EXPECT_EQ(r.active[0], 0);
    EXPECT_NE(r.active[1], 0);
    EXPECT_EQ(r.x[1], 0.0);
}

TEST(EqQpNonnegWarm, ExactSeedConvergesInOneSolve) {
    const Matrix h = Matrix::identity(2);
    const Vector f{3.0, -1.0};
    const Matrix e{{1.0, 1.0}};
    const Vector d{2.0};
    const EqQpNonnegResult cold = solve_eq_qp_nonneg(h, f, e, d);
    ASSERT_TRUE(cold.converged);
    EXPECT_GT(cold.iterations, 1u);

    EqQpNonnegOptions options;
    options.warm_start = &cold.x;
    const EqQpNonnegResult warm = solve_eq_qp_nonneg(h, f, e, d, options);
    ASSERT_TRUE(warm.converged);
    EXPECT_TRUE(warm.warm_accepted);
    EXPECT_EQ(warm.iterations, 1u);
    EXPECT_NEAR(warm.x[0], cold.x[0], 1e-10);
    EXPECT_NEAR(warm.x[1], cold.x[1], 1e-10);
}

TEST(EqQpNonnegWarm, InconsistentSeedStillReturnsColdMinimizer) {
    // Seed pins the coordinate the optimum needs free (and frees the
    // one that must be pinned): verification must repair or fall back,
    // never return a seed-biased point.
    const Matrix h = Matrix::identity(2);
    const Vector f{3.0, -1.0};
    const Matrix e{{1.0, 1.0}};
    const Vector d{2.0};
    const EqQpNonnegResult cold = solve_eq_qp_nonneg(h, f, e, d);

    const Vector wrong{0.0, 2.0};
    EqQpNonnegOptions options;
    options.warm_start = &wrong;
    const EqQpNonnegResult warm = solve_eq_qp_nonneg(h, f, e, d, options);
    ASSERT_TRUE(warm.converged);
    EXPECT_NEAR(warm.x[0], cold.x[0], 1e-9);
    EXPECT_NEAR(warm.x[1], cold.x[1], 1e-9);
}

TEST(EqQpNonnegWarm, AllZeroSeedRunsCold) {
    // A seed with nothing free cannot satisfy E x = d; the solver must
    // ignore it and solve cold.
    const Matrix h = Matrix::identity(2);
    const Vector f{0.0, 0.0};
    const Matrix e{{1.0, 1.0}};
    const Vector d{2.0};
    const Vector zeros(2, 0.0);
    EqQpNonnegOptions options;
    options.warm_start = &zeros;
    const EqQpNonnegResult r = solve_eq_qp_nonneg(h, f, e, d, options);
    EXPECT_FALSE(r.warm_accepted);
    EXPECT_NEAR(r.x[0], 1.0, 1e-8);
    EXPECT_NEAR(r.x[1], 1.0, 1e-8);
}

TEST(EqQpNonnegWarm, SeedPinningAWholeEqualityRowFallsBackCold) {
    // Pinning every variable of one sum constraint leaves that
    // multiplier row without free support — a structurally singular
    // KKT system.  The solver must fall back to the cold path instead
    // of throwing.
    const Matrix h = Matrix::identity(4);
    const Vector f{1.0, 2.0, 1.0, 2.0};
    Matrix e(2, 4, 0.0);
    e(0, 0) = e(0, 1) = 1.0;
    e(1, 2) = e(1, 3) = 1.0;
    const Vector d{1.0, 1.0};
    const EqQpNonnegResult cold = solve_eq_qp_nonneg(h, f, e, d);

    const Vector seed{0.0, 0.0, 0.5, 0.5};  // row 0 fully pinned
    EqQpNonnegOptions options;
    options.warm_start = &seed;
    const EqQpNonnegResult warm = solve_eq_qp_nonneg(h, f, e, d, options);
    EXPECT_FALSE(warm.warm_accepted);
    ASSERT_TRUE(warm.converged);
    for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_NEAR(warm.x[j], cold.x[j], 1e-9) << "var " << j;
    }
}

TEST(EqQpNonnegWarm, SizeMismatchThrows) {
    const Matrix h = Matrix::identity(2);
    const Vector bad(3, 1.0);
    EqQpNonnegOptions options;
    options.warm_start = &bad;
    EXPECT_THROW(solve_eq_qp_nonneg(h, {0.0, 0.0}, Matrix{{1.0, 1.0}},
                                    {2.0}, options),
                 std::invalid_argument);
}

class EqQpNonnegProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(EqQpNonnegProperty, FeasibleAndNoWorseThanProjectedCandidates) {
    std::mt19937_64 rng(GetParam());
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    const std::size_t n = 6;
    Matrix a(8, n);
    for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
    }
    Matrix h = gram(a);
    for (std::size_t i = 0; i < n; ++i) h(i, i) += 0.1;
    Vector f(n);
    for (double& v : f) v = dist(rng);
    // Two disjoint sum constraints.
    Matrix e(2, n, 0.0);
    for (std::size_t j = 0; j < n / 2; ++j) e(0, j) = 1.0;
    for (std::size_t j = n / 2; j < n; ++j) e(1, j) = 1.0;
    const Vector d{1.0, 1.0};

    const EqQpNonnegResult r = solve_eq_qp_nonneg(h, f, e, d);
    EXPECT_LT(r.equality_violation, 1e-5);
    for (double v : r.x) EXPECT_GE(v, -1e-12);

    // Objective no worse than a uniform feasible candidate.
    auto objective = [&](const Vector& x) {
        double acc = 0.0;
        const Vector hx = gemv(h, x);
        for (std::size_t i = 0; i < n; ++i) {
            acc += 0.5 * x[i] * hx[i] - f[i] * x[i];
        }
        return acc;
    };
    Vector uniform(n, 1.0 / static_cast<double>(n / 2));
    EXPECT_LE(objective(r.x), objective(uniform) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EqQpNonnegProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

class EqQpNonnegScale : public ::testing::TestWithParam<unsigned> {};

TEST_P(EqQpNonnegScale, LargeLoadsDoNotBurnExtraRounds) {
    // Regression for the absolute negativity threshold: scaling f and d
    // by 1e9 scales the solution by 1e9, and LU round-off on
    // numerically-zero coordinates lands around 1e9 * eps >> 1e-9.  An
    // absolute threshold mislabels those coordinates negative and burns
    // extra active-set rounds; the scale-relative threshold must make
    // the solve path identical at both magnitudes.
    std::mt19937_64 rng(GetParam());
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    const std::size_t n = 6;
    Matrix a(8, n);
    for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
    }
    Matrix h = gram(a);
    for (std::size_t i = 0; i < n; ++i) h(i, i) += 0.1;
    Vector f(n);
    for (double& v : f) v = dist(rng);
    Matrix e(2, n, 0.0);
    for (std::size_t j = 0; j < n / 2; ++j) e(0, j) = 1.0;
    for (std::size_t j = n / 2; j < n; ++j) e(1, j) = 1.0;
    const Vector d{1.0, 1.0};

    const EqQpNonnegResult base = solve_eq_qp_nonneg(h, f, e, d);
    ASSERT_TRUE(base.converged);

    const double scale = 1e9;
    Vector f_big = f;
    for (double& v : f_big) v *= scale;
    const Vector d_big{scale, scale};
    const EqQpNonnegResult big = solve_eq_qp_nonneg(h, f_big, e, d_big);
    ASSERT_TRUE(big.converged);

    // Same active-set path at both magnitudes, and the solution scales.
    EXPECT_EQ(big.iterations, base.iterations);
    ASSERT_EQ(big.active.size(), base.active.size());
    for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(big.active[j] != 0, base.active[j] != 0) << "var " << j;
        EXPECT_NEAR(big.x[j], scale * base.x[j], 1e-6 * scale)
            << "var " << j;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EqQpNonnegScale,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---- Factored-Hessian solver -------------------------------------------

/// Random factored problem H = A'A (sparse CSR) + diag(shift) with its
/// dense twin, plus two disjoint sum constraints in both forms.
struct FactoredProblem {
    SparseMatrix gram;   // CSR A'A
    Matrix dense_h;      // dense twin, shift already on the diagonal
    Vector shift;
    Vector f;
    Matrix e_dense;
    SparseMatrix e_sparse;
    Vector d;
};

FactoredProblem make_factored_problem(unsigned seed, std::size_t n,
                                      double shift_value) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(0.1, 1.0);
    std::uniform_int_distribution<int> coin(0, 2);
    Matrix a(2 * n, n, 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (coin(rng) == 0) a(i, j) = dist(rng);
        }
    }
    FactoredProblem p;
    p.gram = gram_sparse_csr(SparseMatrix::from_dense(a));
    p.shift.assign(n, shift_value);
    p.dense_h = p.gram.to_dense();
    for (std::size_t i = 0; i < n; ++i) p.dense_h(i, i) += shift_value;
    p.f.resize(n);
    for (double& v : p.f) v = dist(rng) - 0.3;
    p.e_dense = Matrix(2, n, 0.0);
    std::vector<Triplet> trips;
    for (std::size_t j = 0; j < n; ++j) {
        const std::size_t r = j < n / 2 ? 0 : 1;
        p.e_dense(r, j) = 1.0;
        trips.push_back({r, j, 1.0});
    }
    p.e_sparse = SparseMatrix(2, n, std::move(trips));
    p.d = {1.0, 2.0};
    return p;
}

class EqQpFactored : public ::testing::TestWithParam<unsigned> {};

TEST_P(EqQpFactored, GatherPathBitwiseMatchesDense) {
    // Below dense_kkt_limit the factored solver gathers the same KKT
    // doubles the dense solver assembles, so the whole active-set
    // trajectory — and the returned minimizer — must be bit-for-bit.
    const FactoredProblem p = make_factored_problem(GetParam(), 14, 0.05);
    EqQpNonnegOptions dense_opts;
    dense_opts.equality_operator = &p.e_sparse;
    const EqQpNonnegResult dense =
        solve_eq_qp_nonneg(p.dense_h, p.f, p.e_dense, p.d, dense_opts);

    FactoredHessian h;
    h.matrix = p.gram.view();
    h.diagonal = &p.shift;
    const EqQpNonnegResult fact =
        solve_eq_qp_nonneg_factored(h, p.f, p.e_sparse, p.d);
    ASSERT_TRUE(fact.converged);
    ASSERT_EQ(fact.x.size(), dense.x.size());
    for (std::size_t j = 0; j < dense.x.size(); ++j) {
        EXPECT_EQ(fact.x[j], dense.x[j]) << "var " << j;
    }
    EXPECT_EQ(fact.iterations, dense.iterations);
    EXPECT_EQ(fact.cg_iterations, 0u);
    EXPECT_EQ(fact.active, dense.active);
}

TEST_P(EqQpFactored, ProjectedCgMatchesDense) {
    // dense_kkt_limit = 0 forces every KKT solve through the
    // matrix-free projected CG; the strictly convex problem has one
    // minimizer, so the two paths must agree to solver precision.
    const FactoredProblem p = make_factored_problem(GetParam() + 50, 24,
                                                    0.5);
    EqQpNonnegOptions dense_opts;
    dense_opts.equality_operator = &p.e_sparse;
    const EqQpNonnegResult dense =
        solve_eq_qp_nonneg(p.dense_h, p.f, p.e_dense, p.d, dense_opts);

    FactoredHessian h;
    h.matrix = p.gram.view();
    h.diagonal = &p.shift;
    EqQpNonnegOptions opts;
    opts.dense_kkt_limit = 0;
    opts.cg_tolerance = 1e-13;
    const EqQpNonnegResult fact =
        solve_eq_qp_nonneg_factored(h, p.f, p.e_sparse, p.d, opts);
    ASSERT_TRUE(fact.converged);
    EXPECT_GT(fact.cg_iterations, 0u);
    // The CG path trades the last two digits of active-set resolution
    // for scale-independence (decision band 1e-7 vs the gather path's
    // 1e-9), so agreement is to ~1e-6 relative, not bitwise.
    const double scale = std::max(1.0, nrm_inf(dense.x));
    for (std::size_t j = 0; j < dense.x.size(); ++j) {
        EXPECT_NEAR(fact.x[j], dense.x[j], 1e-6 * scale) << "var " << j;
    }
    EXPECT_LT(fact.equality_violation, 1e-9 * scale);
}

TEST_P(EqQpFactored, WarmStartOnCgPathReturnsSameMinimizer) {
    const FactoredProblem p = make_factored_problem(GetParam() + 90, 20,
                                                    0.4);
    FactoredHessian h;
    h.matrix = p.gram.view();
    h.diagonal = &p.shift;
    EqQpNonnegOptions opts;
    opts.dense_kkt_limit = 0;
    const EqQpNonnegResult cold =
        solve_eq_qp_nonneg_factored(h, p.f, p.e_sparse, p.d, opts);
    ASSERT_TRUE(cold.converged);

    EqQpNonnegOptions warm_opts = opts;
    warm_opts.warm_start = &cold.x;
    const EqQpNonnegResult warm =
        solve_eq_qp_nonneg_factored(h, p.f, p.e_sparse, p.d, warm_opts);
    ASSERT_TRUE(warm.converged);
    EXPECT_LE(warm.iterations, cold.iterations);
    const double scale = std::max(1.0, nrm_inf(cold.x));
    for (std::size_t j = 0; j < cold.x.size(); ++j) {
        EXPECT_NEAR(warm.x[j], cold.x[j], 1e-6 * scale) << "var " << j;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EqQpFactored,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(EqQpFactoredEdge, NoEqualityReducesToBoundConstrainedSolve) {
    // m == 0 is the Bayesian MAP shape: factored normal equations with
    // non-negativity only.  Gather path bitwise vs the dense solver,
    // CG path to 1e-9.
    const FactoredProblem p = make_factored_problem(7, 12, 0.3);
    const EqQpNonnegResult dense =
        solve_eq_qp_nonneg(p.dense_h, p.f, Matrix(0, 12), {});
    FactoredHessian h;
    h.matrix = p.gram.view();
    h.diagonal = &p.shift;
    const EqQpNonnegResult gather =
        solve_eq_qp_nonneg_factored(h, p.f, SparseMatrix(), {});
    for (std::size_t j = 0; j < dense.x.size(); ++j) {
        EXPECT_EQ(gather.x[j], dense.x[j]) << "var " << j;
    }
    EqQpNonnegOptions opts;
    opts.dense_kkt_limit = 0;
    const EqQpNonnegResult cg =
        solve_eq_qp_nonneg_factored(h, p.f, SparseMatrix(), {}, opts);
    const double scale = std::max(1.0, nrm_inf(dense.x));
    for (std::size_t j = 0; j < dense.x.size(); ++j) {
        EXPECT_NEAR(cg.x[j], dense.x[j], 1e-6 * scale) << "var " << j;
    }
}

TEST(EqQpFactoredEdge, Validation) {
    const FactoredProblem p = make_factored_problem(3, 10, 0.1);
    FactoredHessian h;
    h.matrix = p.gram.view();
    h.diagonal = &p.shift;
    // f of the wrong length.
    EXPECT_THROW(
        solve_eq_qp_nonneg_factored(h, Vector(3, 0.0), p.e_sparse, p.d),
        std::invalid_argument);
    // Added diagonal of the wrong length.
    const Vector bad_diag(4, 1.0);
    FactoredHessian bad = h;
    bad.diagonal = &bad_diag;
    EXPECT_THROW(solve_eq_qp_nonneg_factored(bad, p.f, p.e_sparse, p.d),
                 std::invalid_argument);
    // Warm-start seed of the wrong length.
    const Vector bad_seed(3, 1.0);
    EqQpNonnegOptions opts;
    opts.warm_start = &bad_seed;
    EXPECT_THROW(
        solve_eq_qp_nonneg_factored(h, p.f, p.e_sparse, p.d, opts),
        std::invalid_argument);
}

TEST(EqQpFactoredScale, HundredPopFanoutShapeKktResiduals) {
    // Property test at generated-backbone scale (100 PoPs, 9900 pairs):
    // the projected-CG path must satisfy the KKT conditions of the
    // fanout-shaped QP — per-source sum constraints met, per-source
    // stationarity value constant across the free fanouts, pinned
    // multipliers non-negative — without ever allocating anything
    // quadratic in the pair count.
    const topology::Topology topo = topology::generated_backbone(100, 4.0, 1);
    const SparseMatrix r = routing::igp_routing_matrix(topo);
    const std::size_t pairs = r.cols();
    const std::size_t nodes = topo.pop_count();
    const SparseMatrix g = gram_sparse_csr(r);
    const CsrView gv = g.view();

    double diag_mean = 0.0;
    for (std::size_t p = 0; p < pairs; ++p) {
        diag_mean += g.at(p, p);
    }
    diag_mean /= static_cast<double>(pairs);
    const Vector shift(pairs, 0.5 * diag_mean);

    std::vector<Triplet> trips;
    std::vector<std::size_t> source_of(pairs);
    for (std::size_t p = 0; p < pairs; ++p) {
        source_of[p] = topo.pair_nodes(p).first;
        trips.push_back({source_of[p], p, 1.0});
    }
    const SparseMatrix e(nodes, pairs, std::move(trips));
    const Vector d(nodes, 1.0);

    // f = H alpha for a feasible fanout vector, plus a bias that drives
    // part of the optimum onto the boundary.
    std::mt19937_64 rng(11);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    Vector alpha(pairs);
    Vector row_sum(nodes, 0.0);
    for (std::size_t p = 0; p < pairs; ++p) {
        alpha[p] = dist(rng);
        row_sum[source_of[p]] += alpha[p];
    }
    for (std::size_t p = 0; p < pairs; ++p) alpha[p] /= row_sum[source_of[p]];
    auto h_times = [&](const Vector& x) {
        Vector y(pairs, 0.0);
        for (std::size_t p = 0; p < pairs; ++p) {
            double acc = 0.0;
            for (std::size_t t = gv.offsets[p]; t < gv.offsets[p + 1];
                 ++t) {
                acc += gv.values[t] * x[gv.col_index[t]];
            }
            y[p] = acc + shift[p] * x[p];
        }
        return y;
    };
    Vector f = h_times(alpha);
    for (std::size_t p = 0; p < pairs; ++p) {
        f[p] += (dist(rng) - 0.7) * 0.05 * diag_mean;
    }

    FactoredHessian h;
    h.matrix = gv;
    h.diagonal = &shift;
    EqQpNonnegOptions opts;
    opts.cg_tolerance = 1e-12;
    detail::reset_peak_matrix_allocation();
    const EqQpNonnegResult result =
        solve_eq_qp_nonneg_factored(h, f, e, d, opts);
    // 9900 free variables >> dense_kkt_limit: this must have gone
    // through the projected CG, and nothing close to a pairs x pairs
    // dense matrix may have been allocated along the way.
    EXPECT_GT(result.cg_iterations, 0u);
    EXPECT_LT(detail::peak_matrix_allocation_bytes(),
              pairs * pairs * sizeof(double) / 16);

    ASSERT_EQ(result.x.size(), pairs);
    double xmax = 0.0;
    for (double v : result.x) {
        ASSERT_TRUE(std::isfinite(v));
        ASSERT_GE(v, 0.0);
        xmax = std::max(xmax, v);
    }
    EXPECT_LT(result.equality_violation, 1e-8);

    // KKT residuals: within each source, (H x - f)_p must be a constant
    // -nu_r on the free fanouts and >= -nu_r (up to scale) on the
    // pinned ones.
    const Vector hx = h_times(result.x);
    double hmax = 0.0;
    for (std::size_t p = 0; p < pairs; ++p) {
        hmax = std::max(hmax, g.at(p, p) + shift[p]);
    }
    const double tol = 1e-6 * std::max(1.0, hmax * std::max(1.0, xmax));
    std::vector<double> nu(nodes, 0.0);
    std::vector<bool> nu_set(nodes, false);
    for (std::size_t p = 0; p < pairs; ++p) {
        if (result.active[p]) continue;
        const double grad = hx[p] - f[p];
        const std::size_t src = source_of[p];
        if (!nu_set[src]) {
            nu[src] = -grad;
            nu_set[src] = true;
        } else {
            EXPECT_NEAR(grad, -nu[src], tol) << "pair " << p;
        }
    }
    for (std::size_t p = 0; p < pairs; ++p) {
        if (!result.active[p]) continue;
        EXPECT_GE(hx[p] - f[p] + nu[source_of[p]], -tol) << "pair " << p;
    }
}

}  // namespace
}  // namespace tme::linalg
