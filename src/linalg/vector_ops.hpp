// Elementary dense vector operations used throughout libtme.
//
// A vector is simply std::vector<double>; these free functions provide the
// small BLAS-level-1 surface the estimation solvers need.  All functions
// validate dimensions and throw std::invalid_argument on mismatch.
#pragma once

#include <cstddef>
#include <vector>

namespace tme::linalg {

using Vector = std::vector<double>;

/// Dot product x'y.  Throws if sizes differ.
double dot(const Vector& x, const Vector& y);

/// Euclidean norm ||x||_2.
double nrm2(const Vector& x);

/// Sum of all entries.
double sum(const Vector& x);

/// One-norm ||x||_1 (sum of absolute values).
double nrm1(const Vector& x);

/// Infinity norm max_i |x_i|.
double nrm_inf(const Vector& x);

/// y <- alpha*x + y.  Throws if sizes differ.
void axpy(double alpha, const Vector& x, Vector& y);

/// x <- alpha*x.
void scale(double alpha, Vector& x);

/// Returns x + y.
Vector add(const Vector& x, const Vector& y);

/// Returns x - y.
Vector sub(const Vector& x, const Vector& y);

/// Returns the elementwise (Hadamard) product x.*y.
Vector hadamard(const Vector& x, const Vector& y);

/// Largest entry; throws on empty input.
double max_element(const Vector& x);

/// Smallest entry; throws on empty input.
double min_element(const Vector& x);

/// Clamps every entry to be >= floor (in place).
void clamp_below(Vector& x, double floor);

/// True when every entry is finite (no NaN / infinity).
bool all_finite(const Vector& x);

/// Returns a vector of n copies of value.
Vector constant(std::size_t n, double value);

}  // namespace tme::linalg
