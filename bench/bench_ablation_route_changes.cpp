// Ablation (paper related work, Nucci et al. [14]): how many deliberate
// routing changes until link loads alone pin down the traffic matrix?
//
// The paper keeps routing constant and regularizes; the route-change
// line of work adds equations instead.  This bench sweeps the number of
// IGP-weight perturbations on the Europe scenario and reports the
// stacked rank and the prior-free NNLS estimation error, quantifying
// the trade the paper's Section 2 sketches.
#include "bench_common.hpp"

#include "core/route_change.hpp"

int main() {
    using namespace tme;
    bench::header(
        "Ablation - traffic inference from routing changes",
        "Section 2 / Nucci et al.: change routing, use shifted loads to "
        "infer demands (not evaluated in the paper)",
        "stacked rank grows with each configuration; MRE collapses once "
        "rank reaches the number of OD pairs - no prior needed");

    const scenario::Scenario& sc = bench::europe();
    const linalg::Vector& truth = sc.busy_snapshot_demands();
    const double thr = bench::report_threshold(truth);

    // Pre-build perturbed routings (operator's weight-change schedule).
    std::vector<linalg::SparseMatrix> alts;
    for (unsigned seed : {11u, 22u, 33u, 44u, 55u, 66u, 77u}) {
        alts.push_back(core::perturbed_routing(sc.topo, 0.8, seed));
    }

    std::printf("\n%8s %12s %12s %10s\n", "configs", "stacked rank",
                "of pairs", "MRE");
    std::vector<core::RoutingObservation> obs;
    obs.push_back({&sc.routing, sc.routing.multiply(truth)});
    for (std::size_t j = 0; j <= alts.size(); ++j) {
        const core::RouteChangeResult r = core::route_change_estimate(obs);
        std::printf("%8zu %12zu %12zu %10.4f\n", obs.size(),
                    r.stacked_rank, truth.size(),
                    core::mean_relative_error(truth, r.s, thr));
        if (j < alts.size()) {
            obs.push_back({&alts[j], alts[j].multiply(truth)});
        }
    }
    std::printf(
        "\nEach weight change adds independent equations and cuts the\n"
        "prior-free error; full identification requires rank P, which\n"
        "needs many changes on a sparse European topology (alternative\n"
        "paths are limited) - the trade-off Nucci et al. navigate with\n"
        "optimized weight-change designs.\n");
    return 0;
}
