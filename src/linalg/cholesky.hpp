// Cholesky (LL') factorization of symmetric positive-definite matrices.
//
// The NNLS and QP solvers repeatedly solve small SPD systems built from
// Gram matrices of routing matrices; Cholesky is the workhorse for those.
// An optional diagonal "jitter" makes semi-definite Gram matrices (rank
// deficient routing submatrices) solvable in a least-norm sense.
#pragma once

#include <optional>

#include "linalg/matrix.hpp"

namespace tme::linalg {

/// Lower-triangular Cholesky factor of an SPD matrix.
class Cholesky {
  public:
    /// Factorizes a (must be square and symmetric).  `jitter` is added to
    /// the diagonal before factorization; use a small positive value to
    /// regularize near-singular systems.  Throws std::invalid_argument if
    /// a is not square, std::runtime_error if factorization fails (matrix
    /// not positive definite even after jitter).
    explicit Cholesky(const Matrix& a, double jitter = 0.0);

    /// Solves A x = b via forward/back substitution.
    Vector solve(const Vector& b) const;

    /// Solves A X = B column-by-column.
    Matrix solve(const Matrix& b) const;

    const Matrix& factor() const { return l_; }

    std::size_t dim() const { return l_.rows(); }

  private:
    Cholesky() = default;
    friend std::optional<Cholesky> try_cholesky(const Matrix& a,
                                                double jitter);

    Matrix l_;
};

/// Attempts a Cholesky factorization; returns std::nullopt instead of
/// throwing when the matrix is not positive definite.
std::optional<Cholesky> try_cholesky(const Matrix& a, double jitter = 0.0);

/// Plain column-by-column factorization (the exact kernel the library
/// shipped with): returns the lower factor of a + jitter*I, or an empty
/// matrix when the input is not positive definite.  Kept public as the
/// reference implementation for the blocked kernel's property tests and
/// the solver benches.
Matrix cholesky_factor_unblocked(const Matrix& a, double jitter = 0.0);

/// Right-looking blocked factorization (panel factor + register-tiled
/// trailing update; see PERF.md).  Same contract as the unblocked
/// kernel; the two factors agree to ~1e-12 relative (summation order
/// differs).  `Cholesky` uses this kernel automatically for dimensions
/// >= 512, keeping every paper-scale system on the bitwise-exact
/// unblocked path.
Matrix cholesky_factor_blocked(const Matrix& a, double jitter = 0.0);

/// Solves the SPD system A x = b with automatic escalating jitter: tries
/// exact factorization first, then adds geometrically increasing diagonal
/// regularization (relative to trace(A)/n) until factorization succeeds.
/// This is the robust primitive the active-set solvers use on possibly
/// rank-deficient passive sets.
Vector solve_spd_robust(const Matrix& a, const Vector& b);

}  // namespace tme::linalg
