#include "traffic/traffic_matrix.hpp"

#include <stdexcept>

namespace tme::traffic {

namespace {

std::size_t pair_index(std::size_t n, std::size_t src, std::size_t dst) {
    return src * (n - 1) + (dst < src ? dst : dst - 1);
}

}  // namespace

TrafficMatrix::TrafficMatrix(std::size_t nodes)
    : n_(nodes), m_(nodes, nodes, 0.0) {
    if (nodes < 2) {
        throw std::invalid_argument("TrafficMatrix: need >= 2 nodes");
    }
}

TrafficMatrix::TrafficMatrix(std::size_t nodes,
                             const linalg::Vector& pair_vector)
    : TrafficMatrix(nodes) {
    if (pair_vector.size() != nodes * (nodes - 1)) {
        throw std::invalid_argument("TrafficMatrix: pair vector size");
    }
    for (std::size_t s = 0; s < nodes; ++s) {
        for (std::size_t d = 0; d < nodes; ++d) {
            if (s == d) continue;
            m_(s, d) = pair_vector[pair_index(nodes, s, d)];
        }
    }
}

double TrafficMatrix::operator()(std::size_t src, std::size_t dst) const {
    return m_.at(src, dst);
}

void TrafficMatrix::set(std::size_t src, std::size_t dst, double value) {
    if (src >= n_ || dst >= n_) {
        throw std::out_of_range("TrafficMatrix::set");
    }
    if (src == dst && value != 0.0) {
        throw std::invalid_argument(
            "TrafficMatrix::set: diagonal must stay zero");
    }
    m_(src, dst) = value;
}

linalg::Vector TrafficMatrix::to_pair_vector() const {
    linalg::Vector v(n_ * (n_ - 1), 0.0);
    for (std::size_t s = 0; s < n_; ++s) {
        for (std::size_t d = 0; d < n_; ++d) {
            if (s == d) continue;
            v[pair_index(n_, s, d)] = m_(s, d);
        }
    }
    return v;
}

double TrafficMatrix::total() const {
    double acc = 0.0;
    for (std::size_t s = 0; s < n_; ++s) {
        for (std::size_t d = 0; d < n_; ++d) acc += m_(s, d);
    }
    return acc;
}

linalg::Vector TrafficMatrix::row_totals() const {
    linalg::Vector r(n_, 0.0);
    for (std::size_t s = 0; s < n_; ++s) {
        for (std::size_t d = 0; d < n_; ++d) r[s] += m_(s, d);
    }
    return r;
}

linalg::Vector TrafficMatrix::col_totals() const {
    linalg::Vector c(n_, 0.0);
    for (std::size_t s = 0; s < n_; ++s) {
        for (std::size_t d = 0; d < n_; ++d) c[d] += m_(s, d);
    }
    return c;
}

TrafficMatrix TrafficMatrix::fanouts() const {
    TrafficMatrix f(n_);
    const linalg::Vector rows = row_totals();
    for (std::size_t s = 0; s < n_; ++s) {
        for (std::size_t d = 0; d < n_; ++d) {
            if (s == d) continue;
            f.m_(s, d) = rows[s] > 0.0
                             ? m_(s, d) / rows[s]
                             : 1.0 / static_cast<double>(n_ - 1);
        }
    }
    return f;
}

linalg::Vector fanouts_from_demands(std::size_t nodes,
                                    const linalg::Vector& demands) {
    return TrafficMatrix(nodes, demands).fanouts().to_pair_vector();
}

linalg::Vector demands_from_fanouts(std::size_t nodes,
                                    const linalg::Vector& fanouts,
                                    const linalg::Vector& node_totals) {
    if (node_totals.size() != nodes ||
        fanouts.size() != nodes * (nodes - 1)) {
        throw std::invalid_argument("demands_from_fanouts: size mismatch");
    }
    linalg::Vector s(fanouts.size(), 0.0);
    for (std::size_t src = 0; src < nodes; ++src) {
        for (std::size_t dst = 0; dst < nodes; ++dst) {
            if (src == dst) continue;
            const std::size_t p = pair_index(nodes, src, dst);
            s[p] = fanouts[p] * node_totals[src];
        }
    }
    return s;
}

linalg::Vector node_totals_from_demands(std::size_t nodes,
                                        const linalg::Vector& demands) {
    return TrafficMatrix(nodes, demands).row_totals();
}

}  // namespace tme::traffic
