// Scenario replay through the online engine: feeds a Scenario's full
// day of 5-minute samples into an OnlineEngine in time order, applying
// injected route changes and scoring every window against the
// scenario's ground-truth demands.
//
// Three drive modes share one result shape:
//   * replay_scenario(OnlineEngine&, ...)    — synchronous, serial;
//   * replay_scenario_async(OnlineEngine&, ...) — a producer thread
//     generates the samples and pushes them through a bounded
//     IngestQueue while the calling thread consumes and estimates;
//     identical results, but sample generation no longer blocks on the
//     solvers (and backpressure bounds the decoupling buffer);
//   * replay_scenario(PipelinedEngine&, ...) — pipelined window
//     fan-out: successive windows' estimation passes overlap.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "engine/engine.hpp"
#include "engine/pipeline.hpp"
#include "scenario/scenario.hpp"

namespace tme::engine {

struct ReplayOptions {
    /// Route changes injected mid-replay (sorted by at_sample; matrices
    /// must outlive the replay).
    std::vector<scenario::RouteChangeEvent> events;
    /// Score each window's estimates against the scenario demands.
    bool attach_truth = true;
};

struct ReplayResult {
    std::vector<WindowResult> windows;
    /// Mean of MethodRun::mre per method over all scored windows.
    std::map<Method, double> mean_mre;
};

/// Replays the scenario through the engine.  The engine must have been
/// constructed on the scenario's topology and routing matrix.
ReplayResult replay_scenario(OnlineEngine& engine,
                             const scenario::Scenario& sc,
                             const ReplayOptions& options = {});

/// As replay_scenario, but sample production runs on a dedicated
/// producer thread decoupled from estimation by a bounded IngestQueue
/// of `queue_capacity` samples.  Route changes travel in-band with the
/// samples, so the consumer applies them at exactly the same stream
/// positions as the synchronous replay; results are identical.
ReplayResult replay_scenario_async(OnlineEngine& engine,
                                   const scenario::Scenario& sc,
                                   const ReplayOptions& options = {},
                                   std::size_t queue_capacity = 16);

/// Replays the scenario through a pipelined engine (overlapping window
/// passes) and waits for the pipeline to drain.  Warm-start lineage
/// makes the estimates equivalent to the serial engine's.
ReplayResult replay_scenario(PipelinedEngine& engine,
                             const scenario::Scenario& sc,
                             const ReplayOptions& options = {});

}  // namespace tme::engine
