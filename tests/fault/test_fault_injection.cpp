// Fault-injection registry semantics: deterministic matching-hit
// ordinals, scope filters (probe detail and thread-ambient job scope),
// seeded draw() streams, and per-site statistics.  With the layer
// compiled out every entry point must be a constant no-op.
#include "fault/injection.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace tme::fault {
namespace {

std::size_t idx(FaultSite s) { return static_cast<std::size_t>(s); }

/// Disarm on scope exit so one test's schedule never leaks into the
/// next (the registry is process-global).
struct DisarmGuard {
    ~DisarmGuard() { disarm(); }
};

TEST(FaultInjection, CompiledOutIsInertEverywhere) {
    if (compiled()) GTEST_SKIP() << "fault layer compiled in";
    arm({FaultSpec{FaultSite::measurement_nan, "", 0, 1000}}, 7);
    EXPECT_FALSE(armed());
    EXPECT_FALSE(should_inject(FaultSite::measurement_nan));
    EXPECT_EQ(draw(FaultSite::measurement_nan), 0u);
    EXPECT_EQ(stats().total_fires(), 0u);
    EXPECT_STREQ(current_scope(), "");
    disarm();
}

TEST(FaultInjection, DisarmedProbesNeverFire) {
    if (!compiled()) GTEST_SKIP() << "needs TME_FAULT_INJECTION=ON";
    disarm();
    EXPECT_FALSE(armed());
    for (int k = 0; k < 10; ++k) {
        EXPECT_FALSE(should_inject(FaultSite::solver_stall, "bayesian"));
    }
    EXPECT_EQ(stats().total_fires(), 0u);
}

TEST(FaultInjection, FiresOnExactMatchingHitOrdinals) {
    if (!compiled()) GTEST_SKIP() << "needs TME_FAULT_INJECTION=ON";
    DisarmGuard guard;
    // Skip 2 matching probes, then fire 2 consecutive ones.
    arm({FaultSpec{FaultSite::measurement_drop, "", 2, 2}}, 1);
    ASSERT_TRUE(armed());
    EXPECT_FALSE(should_inject(FaultSite::measurement_drop));
    EXPECT_FALSE(should_inject(FaultSite::measurement_drop));
    EXPECT_TRUE(should_inject(FaultSite::measurement_drop));
    EXPECT_TRUE(should_inject(FaultSite::measurement_drop));
    EXPECT_FALSE(should_inject(FaultSite::measurement_drop));
    // Other sites are untouched by this spec.
    EXPECT_FALSE(should_inject(FaultSite::measurement_nan));
    const FaultStats st = stats();
    EXPECT_EQ(st.hits[idx(FaultSite::measurement_drop)], 5u);
    EXPECT_EQ(st.fires[idx(FaultSite::measurement_drop)], 2u);
    EXPECT_EQ(st.hits[idx(FaultSite::measurement_nan)], 1u);
    EXPECT_EQ(st.total_fires(), 2u);
}

TEST(FaultInjection, ScopeFiltersByProbeDetail) {
    if (!compiled()) GTEST_SKIP() << "needs TME_FAULT_INJECTION=ON";
    DisarmGuard guard;
    arm({FaultSpec{FaultSite::solver_stall, "bayesian", 0, 100}}, 1);
    EXPECT_FALSE(should_inject(FaultSite::solver_stall, "gravity"));
    EXPECT_FALSE(should_inject(FaultSite::solver_stall));
    EXPECT_TRUE(should_inject(FaultSite::solver_stall, "bayesian"));
    // Non-matching probes do not advance the spec's ordinal, only the
    // site hit counter.
    const FaultStats st = stats();
    EXPECT_EQ(st.hits[idx(FaultSite::solver_stall)], 3u);
    EXPECT_EQ(st.fires[idx(FaultSite::solver_stall)], 1u);
}

TEST(FaultInjection, ScopeFiltersByAmbientThreadScope) {
    if (!compiled()) GTEST_SKIP() << "needs TME_FAULT_INJECTION=ON";
    DisarmGuard guard;
    arm({FaultSpec{FaultSite::alloc_failure, "poisoned", 0, 100}}, 1);
    EXPECT_STREQ(current_scope(), "");
    // Same probe a fleet worker would issue (detail "ingest"): inert
    // outside the poisoned job's ambient scope, firing inside it.
    EXPECT_FALSE(should_inject(FaultSite::alloc_failure, "ingest"));
    {
        ScopedFaultScope job_scope("poisoned");
        EXPECT_STREQ(current_scope(), "poisoned");
        EXPECT_TRUE(should_inject(FaultSite::alloc_failure, "ingest"));
        {
            ScopedFaultScope nested("sibling");
            EXPECT_STREQ(current_scope(), "sibling");
            EXPECT_FALSE(
                should_inject(FaultSite::alloc_failure, "ingest"));
        }
        EXPECT_STREQ(current_scope(), "poisoned");
    }
    EXPECT_STREQ(current_scope(), "");
    // The ambient scope is per-thread: a sibling worker thread with its
    // own scope never matches the poisoned spec.
    bool sibling_fired = true;
    std::thread sibling([&] {
        ScopedFaultScope job_scope("clean");
        sibling_fired = should_inject(FaultSite::alloc_failure, "ingest");
    });
    sibling.join();
    EXPECT_FALSE(sibling_fired);
}

TEST(FaultInjection, DrawIsSeededAndScheduleStable) {
    if (!compiled()) GTEST_SKIP() << "needs TME_FAULT_INJECTION=ON";
    DisarmGuard guard;
    arm({FaultSpec{FaultSite::measurement_nan, "", 0, 2}}, 42);
    ASSERT_TRUE(should_inject(FaultSite::measurement_nan));
    const std::uint64_t first = draw(FaultSite::measurement_nan);
    ASSERT_TRUE(should_inject(FaultSite::measurement_nan));
    const std::uint64_t second = draw(FaultSite::measurement_nan);
    // Consecutive fires draw from distinct points of the stream.
    EXPECT_NE(first, second);

    // Re-arming the same schedule with the same seed replays the same
    // draws; a different seed moves the whole stream.
    arm({FaultSpec{FaultSite::measurement_nan, "", 0, 2}}, 42);
    ASSERT_TRUE(should_inject(FaultSite::measurement_nan));
    EXPECT_EQ(draw(FaultSite::measurement_nan), first);
    ASSERT_TRUE(should_inject(FaultSite::measurement_nan));
    EXPECT_EQ(draw(FaultSite::measurement_nan), second);

    arm({FaultSpec{FaultSite::measurement_nan, "", 0, 2}}, 43);
    ASSERT_TRUE(should_inject(FaultSite::measurement_nan));
    EXPECT_NE(draw(FaultSite::measurement_nan), first);
}

TEST(FaultInjection, ArmReplacesScheduleAndZeroesStats) {
    if (!compiled()) GTEST_SKIP() << "needs TME_FAULT_INJECTION=ON";
    DisarmGuard guard;
    arm({FaultSpec{FaultSite::solver_diverge, "", 0, 1}}, 1);
    EXPECT_TRUE(should_inject(FaultSite::solver_diverge));
    arm({FaultSpec{FaultSite::routing_inconsistency, "", 0, 1}}, 1);
    const FaultStats st = stats();
    EXPECT_EQ(st.total_fires(), 0u);  // zeroed by the second arm()
    // The old spec is gone; the new one fires.
    EXPECT_FALSE(should_inject(FaultSite::solver_diverge));
    EXPECT_TRUE(should_inject(FaultSite::routing_inconsistency));
    disarm();
    EXPECT_FALSE(armed());
    EXPECT_FALSE(should_inject(FaultSite::routing_inconsistency));
}

}  // namespace
}  // namespace tme::fault
