// Figure 12: Vardi MRE vs window size on SYNTHETIC Poisson traffic with
// the busy-period means — even when the Poisson assumption holds, the
// covariance estimate converges slowly.
#include "bench_common.hpp"

#include "core/vardi.hpp"
#include "traffic/generator.hpp"

namespace {

void sweep(const tme::scenario::Scenario& sc) {
    using namespace tme;
    // lambda in Mbps so Poisson counts carry realistic relative noise.
    linalg::Vector lambda = sc.busy_mean_demands();
    for (double& v : lambda) v *= sc.scale_mbps;
    const double thr = core::threshold_for_coverage(lambda, 0.9);

    std::printf("\n%s (Poisson lambda = busy-period means, Mbps):\n",
                sc.name.c_str());
    std::printf("%8s %8s\n", "window", "MRE");
    for (std::size_t window : {10u, 25u, 50u, 100u, 200u, 400u, 800u}) {
        const auto demands =
            traffic::generate_poisson_series(lambda, 1.0, window, 99);
        core::SeriesProblem series;
        series.topo = &sc.topo;
        series.routing = &sc.routing;
        series.loads.reserve(window);
        for (const auto& s : demands) {
            series.loads.push_back(sc.routing.multiply(s));
        }
        core::VardiOptions options;
        options.second_moment_weight = 1.0;
        const core::VardiResult r = core::vardi_estimate(series, options);
        const double mre = core::mean_relative_error(lambda, r.lambda, thr);
        std::printf("%8zu %8.3f  %s\n", window, mre,
                    bench::bar(mre, 1.0, 30).c_str());
    }
}

}  // namespace

int main() {
    tme::bench::header(
        "Figure 12 - Vardi on synthetic Poisson traffic",
        "Fig. 12: with sigma^-2=1 on true Poisson data, the US network "
        "needs a window of ~100 for MRE < 20%",
        "MRE decreases with window size; large windows needed for "
        "acceptable error, demonstrating slow covariance convergence");
    sweep(tme::bench::europe());
    sweep(tme::bench::usa());
    return 0;
}
