#include "core/gravity.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "test_helpers.hpp"
#include "traffic/traffic_matrix.hpp"

namespace tme::core {
namespace {

using testing::SmallNetwork;
using testing::tiny_network;

TEST(Gravity, EstimateIsRankOneInMarginals) {
    const SmallNetwork net = tiny_network();
    const linalg::Vector g = gravity_estimate(net.snapshot());
    // g_nm * g_km == g_km * g_nm trivially; check the product form:
    // g_nm / (te(n) * tx(m)) is constant.
    const SnapshotProblem snap = net.snapshot();
    const topology::Topology& t = net.topo;
    double ratio0 = 0.0;
    for (std::size_t n = 0; n < t.pop_count(); ++n) {
        for (std::size_t m = 0; m < t.pop_count(); ++m) {
            if (n == m) continue;
            const double te = snap.loads[t.ingress_link(n)];
            const double tx = snap.loads[t.egress_link(m)];
            const double r = g[t.pair_index(n, m)] / (te * tx);
            if (ratio0 == 0.0) {
                ratio0 = r;
            } else {
                EXPECT_NEAR(r, ratio0, 1e-12 * ratio0);
            }
        }
    }
}

TEST(Gravity, FanoutFormEquivalence) {
    // Paper Section 4.1: with C = 1/sum(tx), gravity == fanout model
    // alpha_nm = tx(m)/sum(tx), i.e. row sums equal te(n)*(1 - share_n).
    const SmallNetwork net = tiny_network();
    const SnapshotProblem snap = net.snapshot();
    const topology::Topology& t = net.topo;
    const linalg::Vector g = gravity_estimate(snap);
    double total_exit = 0.0;
    for (std::size_t m = 0; m < t.pop_count(); ++m) {
        total_exit += snap.loads[t.egress_link(m)];
    }
    for (std::size_t n = 0; n < t.pop_count(); ++n) {
        double row = 0.0;
        for (std::size_t m = 0; m < t.pop_count(); ++m) {
            if (m != n) row += g[t.pair_index(n, m)];
        }
        const double te = snap.loads[t.ingress_link(n)];
        const double share =
            snap.loads[t.egress_link(n)] / total_exit;
        EXPECT_NEAR(row, te * (1.0 - share), 1e-9);
    }
}

TEST(Gravity, UniformTrafficScaledByDiagonalExclusion) {
    // All demands equal to d: te(n) = tx(m) = (N-1)d for every node, so
    // the gravity prediction is uniform at d*(N-1)/N — the structural
    // zero-diagonal bias (self-traffic mass (1/N) is redistributed).
    SmallNetwork net = tiny_network();
    net.truth.assign(net.truth.size(), 2.0);
    const std::size_t n = net.topo.pop_count();
    const double expected =
        2.0 * static_cast<double>(n - 1) / static_cast<double>(n);
    const linalg::Vector g = gravity_estimate(net.snapshot());
    for (std::size_t p = 0; p < g.size(); ++p) {
        EXPECT_NEAR(g[p], expected, 1e-9);
    }
}

TEST(Gravity, ValidationErrors) {
    SnapshotProblem empty;
    EXPECT_THROW(gravity_estimate(empty), std::invalid_argument);
    SmallNetwork net = tiny_network();
    SnapshotProblem snap = net.snapshot();
    snap.loads.assign(snap.loads.size(), 0.0);
    EXPECT_THROW(gravity_estimate(snap), std::invalid_argument);
}

TEST(GeneralizedGravity, ZeroesPeerToPeer) {
    SmallNetwork net = tiny_network();
    net.topo = topology::tiny_backbone();
    // Make PoPs 0 and 1 peering points.
    topology::Topology t;
    t.add_pop({"A", 0.0, 0.0, 1.0, topology::PopRole::peering});
    t.add_pop({"B", 0.0, 3.0, 1.0, topology::PopRole::peering});
    t.add_pop({"C", 3.0, 0.0, 1.0, topology::PopRole::access});
    t.add_pop({"D", 3.0, 3.0, 1.0, topology::PopRole::access});
    t.add_core_link_pair(0, 1, 2500.0, 1.0);
    t.add_core_link_pair(0, 2, 2500.0, 1.0);
    t.add_core_link_pair(1, 3, 2500.0, 1.0);
    t.add_core_link_pair(2, 3, 2500.0, 1.0);
    SmallNetwork peer_net;
    peer_net.topo = std::move(t);
    peer_net.routing = routing::igp_routing_matrix(peer_net.topo);
    peer_net.truth.assign(peer_net.topo.pair_count(), 1.0);

    const linalg::Vector g =
        generalized_gravity_estimate(peer_net.snapshot());
    EXPECT_DOUBLE_EQ(g[peer_net.topo.pair_index(0, 1)], 0.0);
    EXPECT_DOUBLE_EQ(g[peer_net.topo.pair_index(1, 0)], 0.0);
    EXPECT_GT(g[peer_net.topo.pair_index(0, 2)], 0.0);

    // Each source's entering total is preserved.
    const SnapshotProblem snap = peer_net.snapshot();
    for (std::size_t n = 0; n < peer_net.topo.pop_count(); ++n) {
        double row = 0.0;
        for (std::size_t m = 0; m < peer_net.topo.pop_count(); ++m) {
            if (m != n) row += g[peer_net.topo.pair_index(n, m)];
        }
        EXPECT_NEAR(row, snap.loads[peer_net.topo.ingress_link(n)], 1e-9);
    }
}

TEST(GeneralizedGravity, ReducesTowardSimpleWithoutPeers) {
    // All-access topology: generalized == simple up to the per-source
    // normalization difference; both must rank demands identically.
    const SmallNetwork net = tiny_network();
    const linalg::Vector simple = gravity_estimate(net.snapshot());
    const linalg::Vector general =
        generalized_gravity_estimate(net.snapshot());
    for (std::size_t p = 0; p + 1 < simple.size(); ++p) {
        const bool simple_less = simple[p] < simple[p + 1];
        const bool general_less = general[p] < general[p + 1];
        EXPECT_EQ(simple_less, general_less);
    }
}

}  // namespace
}  // namespace tme::core
