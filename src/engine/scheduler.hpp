// Estimator scheduler: runs a configurable set of estimation methods
// over the current sliding window on a small thread pool, threading
// warm-start state from one window into the next.
//
// Warm starts are only applied where the optimization problem has a
// unique minimizer independent of the starting point (Bayesian/Vardi
// NNLS active-set seeding, entropy initial iterate, fanout QP
// active-set seeding with KKT verification of the seed), so a warm run
// converges to the same estimate as a cold run — it just gets there in
// far fewer iterations when consecutive windows are similar.  The
// gravity prior is computed once per window and shared by Kruithof,
// entropy and Bayesian, exactly as in the paper's evaluation.
//
// The per-window estimation pass is split into two reusable pieces so
// the serial scheduler and the window pipeline share one code path
// (which is what makes their estimates bitwise identical):
//   * WindowContext::capture() snapshots everything a pass consumes —
//     an owning copy of the window loads, the materialized incremental
//     aggregates, the pinned routing epoch, and the gravity prior;
//   * execute_method() runs one method over a captured context with an
//     optional warm-start seed and returns the run plus the state that
//     seeds the method's next window.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/bayesian.hpp"
#include "core/entropy.hpp"
#include "core/fanout.hpp"
#include "core/kruithof.hpp"
#include "core/vardi.hpp"
#include "engine/epoch_cache.hpp"
#include "engine/method.hpp"
#include "engine/thread_pool.hpp"
#include "engine/window.hpp"
#include "obs/counters.hpp"

namespace tme::engine {

/// Engine-side aliases for the solver budget layer (linalg/budget.hpp):
/// engine code configures deadlines and reads outcomes without spelling
/// the linalg namespace.
using SolveBudget = linalg::SolveBudget;
using SolveOutcome = linalg::SolveOutcome;

/// Per-method solver options.  The scheduler overrides the reuse hooks
/// (shared_gram, warm_start, window aggregates) per window; everything
/// else is honoured as configured.
struct MethodOptions {
    core::KruithofOptions kruithof;
    core::EntropyOptions entropy;
    core::BayesianOptions bayesian;
    core::VardiOptions vardi;
    core::FanoutOptions fanout;
    /// Wall-clock deadline per method solve, in seconds; <= 0 means
    /// unlimited.  execute_method arms one SolveBudget per run and
    /// threads it into the method's inner solver loops (projected CG,
    /// block pivoting, NNLS pivots, MART sweeps, entropy Armijo steps),
    /// so a runaway solve returns its best feasible iterate with the
    /// run flagged degraded instead of hanging the window.  The budget
    /// is armed even when unlimited — that is the solver_stall fault
    /// injection point (src/fault/injection.hpp).
    double solve_deadline_seconds = 0.0;
};

/// One method's output for one window.
struct MethodRun {
    Method method = Method::gravity;
    /// Demand estimate: the newest sample's demands for snapshot
    /// methods, the window mean for series methods (Vardi, fanout).
    linalg::Vector estimate;
    double seconds = 0.0;
    bool warm_started = false;
    /// Whether the warm start survived verification and shaped the
    /// solve (fanout's QP seed can be rejected and fall back to a cold
    /// solve; for the other methods this equals warm_started).
    bool warm_accepted = false;
    /// Mean relative error over large demands vs. ground truth; NaN when
    /// the feed provides no truth.  Filled by the engine.
    double mre = std::numeric_limits<double>::quiet_NaN();
    /// Solver iteration counts for this run (QP rounds/CG, entropy
    /// steps/probes, MART sweeps, NNLS pivots); zero for gravity.
    obs::SolverCounters solver;
    /// How the method's own solve ended (budget_exhausted when the
    /// SolveBudget cut it; see MethodOptions::solve_deadline_seconds).
    SolveOutcome solve_outcome = SolveOutcome::converged;
    /// Quality of `estimate` as served downstream (engine/method.hpp).
    EstimateQuality quality = EstimateQuality::exact;
    /// True when the configured method failed and `estimate` came from
    /// `fallback_method` instead (execute_method_guarded's chain).
    bool used_fallback = false;
    /// The method that actually produced the estimate when
    /// used_fallback is set; equals `method` otherwise.
    Method fallback_method = Method::gravity;
    /// Number of windows since the served estimate was computed; > 0
    /// only for quality == stale (last-good carry-forward).
    std::size_t stale_age = 0;
    /// Human-readable cause when quality != exact (exception message,
    /// "solve budget exhausted", ...); empty on clean runs.
    std::string degradation_reason;
};

/// Everything one window's estimation pass produced.
struct WindowResult {
    std::size_t window_start_sample = 0;
    std::size_t window_end_sample = 0;
    std::size_t window_size = 0;
    std::uint64_t epoch_fingerprint = 0;
    double seconds = 0.0;  ///< wall time for the whole pass
    std::vector<MethodRun> runs;

    /// The run for `method`, or nullptr if it did not run this window.
    const MethodRun* find(Method method) const;
};

/// Window-completion hook: every engine flavour invokes it once per
/// completed window, in submission order, from exactly one thread at a
/// time (the serving layer's snapshot publisher attaches here — see
/// src/serve/publish.hpp).  The engine layer only defines the seam, so
/// it stays embeddable without the serving layer.
using WindowSink = std::function<void(const WindowResult&)>;

/// Typed scheduler configuration diagnosis.  validate_methods() lets
/// callers reject a bad method list up front without catching an
/// exception mid-stream; the scheduler constructor throws the same
/// diagnosis wrapped in SchedulerConfigException (which still derives
/// std::invalid_argument for callers that only care that construction
/// failed).
enum class SchedulerConfigError {
    none,
    no_methods,        ///< the method list is empty
    duplicate_method,  ///< a method appears more than once (see offender)
};

struct SchedulerConfigCheck {
    SchedulerConfigError error = SchedulerConfigError::none;
    /// The duplicated method when error == duplicate_method.
    Method offender = Method::gravity;

    bool ok() const { return error == SchedulerConfigError::none; }
    explicit operator bool() const { return ok(); }
    std::string message() const;
};

class SchedulerConfigException : public std::invalid_argument {
  public:
    explicit SchedulerConfigException(SchedulerConfigCheck check)
        : std::invalid_argument("EstimatorScheduler: " + check.message()),
          check_(check) {}
    const SchedulerConfigCheck& check() const { return check_; }

  private:
    SchedulerConfigCheck check_;
};

/// Immutable snapshot of everything one window's estimation pass
/// consumes.  The snapshot owns copies of the window loads and the
/// materialized incremental aggregates, and pins the routing epoch, so
/// the live window may keep sliding (and the epoch cache evicting)
/// while the pass is still in flight on a pipeline.
struct WindowContext {
    /// Monotone window index within the engine (pipeline lineage
    /// position; purely informational for the serial scheduler).
    std::size_t ordinal = 0;
    std::size_t window_start_sample = 0;
    std::size_t window_end_sample = 0;
    std::size_t window_size = 0;
    /// Whether series methods (Vardi, fanout) run for this window.
    bool run_series = false;
    std::shared_ptr<const RoutingEpoch> epoch;
    core::SeriesProblem series;       ///< owned copy of the window loads
    core::SnapshotProblem latest;     ///< newest sample
    linalg::Vector prior;             ///< gravity prior (empty if unused)
    double prior_seconds = 0.0;
    linalg::Vector mean_loads;
    linalg::Matrix covariance;        ///< Vardi only
    linalg::Matrix source_outer;      ///< fanout only
    linalg::Vector weighted_rhs;      ///< fanout only

    /// Materializes the snapshot for `methods`: only the aggregates a
    /// scheduled method actually consumes are copied/computed, and the
    /// gravity prior is evaluated here (shared by Kruithof / entropy /
    /// Bayesian).  `ordinal` tags the window's lineage position.
    static WindowContext capture(const SlidingWindow& window,
                                 std::shared_ptr<const RoutingEpoch> epoch,
                                 const std::vector<Method>& methods,
                                 std::size_t min_series_window,
                                 std::size_t ordinal);
};

/// One method's execution result plus the warm-start state that seeds
/// the SAME method's next window (lineage order): the demand estimate
/// for entropy/Bayesian/Vardi, the fanout vector (QP primal) for the
/// fanout method, nothing for gravity/Kruithof.
struct MethodExecution {
    MethodRun run;
    linalg::Vector warm_next;
    bool warm_next_valid = false;
};

/// Runs one method over a captured window.  `warm_seed` is the
/// previous window's state for this method (nullptr = cold start); it
/// must stay alive for the duration of the call.  `collect_warm`
/// skips materializing warm_next when the caller will not thread it
/// forward (warm starts disabled) — it costs a pairs-length copy per
/// run.  Pure apart from lazy derived-data builds on the pinned epoch
/// (which are thread-safe), so any thread may execute any method —
/// correctness of warm seeding is the caller's ordering
/// responsibility.
MethodExecution execute_method(Method m, const WindowContext& ctx,
                               const MethodOptions& options,
                               const linalg::Vector* warm_seed,
                               bool collect_warm = true);

/// Last-good estimate carried across windows for one method: the
/// graceful-degradation terminal fallback.  Updated only by exact runs;
/// `age` counts the windows since.  Deliberately kept across routing
/// epochs — a demand estimate does not depend on the routing, and a
/// slightly stale estimate beats none when every solver fails.
struct FallbackState {
    linalg::Vector estimate;
    bool valid = false;
    std::size_t age = 0;
};

/// execute_method wrapped in graceful degradation; the serial scheduler
/// and the pipeline both run methods through here, which keeps their
/// degradation behaviour (and estimates) identical.
///
/// The run always comes back usable and honestly labelled:
///  * clean solve                      -> exact (last_good updated);
///  * SolveBudget cut the solve        -> degraded, best feasible
///                                        iterate kept;
///  * solver threw (ContractViolation, bad_alloc, runtime_error) or
///    produced a non-finite/negative estimate -> fallback chain
///    (fanout -> bayesian -> gravity prior; others -> gravity prior),
///    degraded;
///  * whole chain failed               -> last_good carry-forward,
///                                        stale (age reported);
///  * no last_good either              -> failed, all-zero estimate.
/// Unexpected exception types (std::logic_error etc. — programming
/// errors, not data/solver faults) still propagate.  A degraded run
/// never updates the warm slot (warm_next_valid = false) nor last_good.
MethodExecution execute_method_guarded(Method m, const WindowContext& ctx,
                                       const MethodOptions& options,
                                       const linalg::Vector* warm_seed,
                                       FallbackState& last_good,
                                       bool collect_warm = true);

class EstimatorScheduler {
  public:
    EstimatorScheduler(std::vector<Method> methods, MethodOptions options,
                       std::size_t threads, bool warm_start,
                       std::size_t min_series_window);

    /// Non-throwing configuration check (typed error instead of an
    /// exception): empty list and duplicate methods are rejected.
    /// Duplicates matter because each method owns one warm-start slot —
    /// two runs of the same method per window would race on it.
    static SchedulerConfigCheck validate_methods(
        const std::vector<Method>& methods);

    /// Runs every scheduled method over the window.  Series methods are
    /// skipped while the window holds fewer than min_series_window
    /// samples.  Throws if an estimator throws.
    WindowResult run(const SlidingWindow& window,
                     std::shared_ptr<const RoutingEpoch> epoch);

    /// Drops all warm-start state (routing-epoch change: the previous
    /// window's estimates are no longer valid starting points).
    void reset_warm_state();

    const std::vector<Method>& methods() const { return methods_; }
    const MethodOptions& options() const { return options_; }
    bool warm_start_enabled() const { return warm_start_; }
    std::size_t min_series_window() const { return min_series_window_; }

  private:
    struct WarmSlot {
        /// Previous window's solution in the solver's own variable
        /// space: the demand estimate for entropy/Bayesian/Vardi, the
        /// *fanout vector* (QP primal) for the fanout method.
        linalg::Vector estimate;
        bool valid = false;
    };
    WarmSlot& slot(Method m) { return warm_[static_cast<std::size_t>(m)]; }

    std::vector<Method> methods_;
    MethodOptions options_;
    bool warm_start_;
    std::size_t min_series_window_;
    std::size_t next_ordinal_ = 0;
    std::vector<WarmSlot> warm_;
    /// Per-method last-good estimates for degradation (each method's
    /// task touches only its own slot, like warm_).  Survives
    /// reset_warm_state: staleness beats nothing when solvers fail
    /// right after an epoch change.
    std::vector<FallbackState> last_good_;
    ThreadPool pool_;
};

}  // namespace tme::engine
