#include "core/entropy.hpp"

#include <stdexcept>

#include "check/contract.hpp"
#include "check/validators.hpp"

namespace tme::core {

linalg::Vector entropy_estimate(const SnapshotProblem& problem,
                                const linalg::Vector& prior,
                                const EntropyOptions& options) {
    problem.validate();
    if (prior.size() != problem.routing->cols()) {
        throw std::invalid_argument("entropy_estimate: prior size mismatch");
    }
    if (options.regularization <= 0.0) {
        throw std::invalid_argument(
            "entropy_estimate: regularization must be positive");
    }
    TME_CONTRACT_DBG_CHECK(
        check::finite(prior, "entropy_estimate prior"));
    const double w = 1.0 / options.regularization;
    linalg::Vector s = linalg::kl_regularized_ls(*problem.routing,
                                                 problem.loads, prior, w,
                                                 options.solver)
                           .s;
    TME_CONTRACT_DBG_CHECK(check::solver_boundary(
        "entropy_estimate", s, /*require_nonnegative=*/true));
    return s;
}

}  // namespace tme::core
