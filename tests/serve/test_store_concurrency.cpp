// ThreadSanitizer stress for the lock-free read path: four reader
// threads hammer point / top-K / delta queries while the engine
// publishes one snapshot per completed window.  Checked invariants:
//   * per-reader observed versions are monotone non-decreasing;
//   * no torn reads — every acquired snapshot's stamped version,
//     checksum and per-method vector lengths agree (consistent());
//   * reader results are bitwise equal to a post-hoc serial query of
//     the same version.
// Runs under the `tsan` preset (label serve); TME_PIPELINE_SAMPLES
// shortens the replay for instrumented runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <thread>
#include <vector>

#include "engine/replay.hpp"
#include "serve/publish.hpp"
#include "serve/store.hpp"

namespace tme::serve {
namespace {

std::size_t stress_samples() {
    if (const char* env = std::getenv("TME_PIPELINE_SAMPLES")) {
        const long v = std::atol(env);
        if (v >= 8) return static_cast<std::size_t>(v);
    }
    return 48;
}

/// One reader-side observation, replayed serially afterwards.
struct Observation {
    std::uint64_t version = 0;
    double point_value = 0.0;       // pair 0
    std::size_t top_pair = 0;       // heaviest pair
    double top_value = 0.0;
    double delta_value = 0.0;       // pair 0, vs. previous version
    bool has_delta = false;
};

TEST(ServeStoreConcurrency, ReadersSeeConsistentSnapshotsDuringPublish) {
    scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe);
    const std::size_t samples = stress_samples();
    sc.demands.resize(samples);
    sc.loads.resize(samples);

    engine::EngineConfig config;
    config.window_size = 6;
    config.methods = {engine::Method::gravity, engine::Method::kruithof};

    StoreOptions options;
    options.retention = 6;  // small ring: retirement races exercised
    options.max_readers = 8;
    EstimateStore store(options);

    constexpr int kReaderThreads = 4;
    std::atomic<bool> stop{false};
    std::vector<std::vector<Observation>> observed(kReaderThreads);
    std::vector<std::uint64_t> torn_reads(kReaderThreads, 0);
    std::vector<std::thread> readers;
    readers.reserve(kReaderThreads);
    for (int t = 0; t < kReaderThreads; ++t) {
        readers.emplace_back([&store, &stop, &observed, &torn_reads, t] {
            Reader reader(store);
            std::uint64_t last_version = 0;
            std::vector<Observation>& samples_out =
                observed[static_cast<std::size_t>(t)];
            while (!stop.load(std::memory_order_acquire)) {
                const QueryResult<SnapshotRef> head = reader.latest();
                if (!head.ok()) continue;  // store still empty
                const EstimateSnapshot& snap = *head.value;

                // Monotone versions: latest() can never run backwards.
                ASSERT_GE(head.value.version, last_version);
                last_version = head.value.version;

                // Torn-read detection: the stamped version, the sealed
                // checksum and the vector shapes must all agree.
                if (snap.version() != head.value.version ||
                    !snap.consistent()) {
                    ++torn_reads[static_cast<std::size_t>(t)];
                    continue;
                }
                const std::size_t pairs = snap.pair_count();
                for (const MethodEstimate& me : snap.methods()) {
                    ASSERT_EQ(me.estimate.size(), pairs);
                }

                Observation obs;
                obs.version = head.value.version;
                const auto pt = point(snap, engine::Method::gravity, 0);
                ASSERT_TRUE(pt.ok());
                obs.point_value = pt.value;
                const auto hh = top_k(snap, engine::Method::kruithof, 3);
                ASSERT_TRUE(hh.ok());
                obs.top_pair = hh.value.front().pair;
                obs.top_value = hh.value.front().value;
                const QueryResult<linalg::Vector> d = reader.version_delta(
                    engine::Method::gravity, obs.version > 1
                                                 ? obs.version - 1
                                                 : obs.version,
                    obs.version);
                if (d.ok()) {
                    obs.delta_value = d.value[0];
                    obs.has_delta = true;
                } else {
                    // The older version may retire mid-query; that is a
                    // typed miss, never a crash or an empty vector.
                    ASSERT_TRUE(d.status == QueryStatus::version_retired ||
                                d.status == QueryStatus::version_unknown)
                        << query_status_name(d.status);
                }
                if (samples_out.size() < 4096) {
                    samples_out.push_back(obs);
                }
            }
        });
    }

    // Publisher: the engine's window sink publishes into the store; a
    // writer-side Reader immediately captures each version so the
    // readers' observations can be replayed serially afterwards.  The
    // strong refs also outlive retirement, keeping every version
    // queryable post-hoc even with the small ring.
    std::map<std::uint64_t, SnapshotRef> held;
    {
        engine::OnlineEngine eng(sc.topo, sc.routing, config);
        Reader writer_side(store);
        eng.set_window_sink([&store, &held,
                             &writer_side](const engine::WindowResult& w) {
            const std::uint64_t v =
                store.publish(EstimateSnapshot::from_window(w));
            QueryResult<SnapshotRef> ref = writer_side.at(v);
            ASSERT_TRUE(ref.ok()) << query_status_name(ref.status);
            held.emplace(v, std::move(ref.value));
        });
        (void)engine::replay_scenario(eng, sc);
    }
    stop.store(true, std::memory_order_release);
    for (std::thread& th : readers) th.join();

    ASSERT_EQ(store.head_version(), samples);
    EXPECT_EQ(store.writer_waits(), 0u);
    for (int t = 0; t < kReaderThreads; ++t) {
        EXPECT_EQ(torn_reads[static_cast<std::size_t>(t)], 0u)
            << "reader " << t;
    }

    // Post-hoc serial replay: every concurrent observation must be
    // bitwise identical to querying the held copy of the same version.
    std::size_t replayed = 0;
    for (const std::vector<Observation>& per_thread : observed) {
        for (const Observation& obs : per_thread) {
            const auto it = held.find(obs.version);
            ASSERT_NE(it, held.end()) << "version " << obs.version;
            const EstimateSnapshot& snap = *it->second;
            const auto pt = point(snap, engine::Method::gravity, 0);
            ASSERT_TRUE(pt.ok());
            EXPECT_EQ(obs.point_value, pt.value)
                << "version " << obs.version;
            const auto hh = top_k(snap, engine::Method::kruithof, 3);
            ASSERT_TRUE(hh.ok());
            EXPECT_EQ(obs.top_pair, hh.value.front().pair);
            EXPECT_EQ(obs.top_value, hh.value.front().value);
            if (obs.has_delta && obs.version > 1) {
                const auto older = held.find(obs.version - 1);
                ASSERT_NE(older, held.end());
                const auto d = delta(snap, *older->second,
                                     engine::Method::gravity);
                ASSERT_TRUE(d.ok());
                EXPECT_EQ(obs.delta_value, d.value[0]);
            }
            ++replayed;
        }
    }
    // The replay must have produced real concurrency, not an idle spin.
    EXPECT_GT(replayed, 0u);
}

}  // namespace
}  // namespace tme::serve
