#include "linalg/simplex.hpp"

#include <gtest/gtest.h>

#include <random>

namespace tme::linalg {
namespace {

TEST(Simplex, SolvesBasicLp) {
    // min -x0 - x1  s.t.  x0 + x1 + s = 4, x0 <= 3 (x0 + s2 = 3), x >= 0.
    LpProblem p;
    p.a = Matrix{{1.0, 1.0, 1.0, 0.0}, {1.0, 0.0, 0.0, 1.0}};
    p.b = {4.0, 3.0};
    p.c = {-1.0, -1.0, 0.0, 0.0};
    const LpResult r = solve_lp(p);
    ASSERT_EQ(r.status, LpStatus::optimal);
    EXPECT_NEAR(r.objective, -4.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
    // x0 = -1 with x0 >= 0 is infeasible.
    LpProblem p;
    p.a = Matrix{{1.0}};
    p.b = {-1.0};
    p.c = {1.0};
    // b is negated internally; row becomes -x0 = 1, still infeasible.
    const LpResult r = solve_lp(p);
    EXPECT_EQ(r.status, LpStatus::infeasible);
}

TEST(Simplex, DetectsUnbounded) {
    // min -x0 s.t. x0 - x1 = 0: increase both without bound.
    LpProblem p;
    p.a = Matrix{{1.0, -1.0}};
    p.b = {0.0};
    p.c = {-1.0, 0.0};
    const LpResult r = solve_lp(p);
    EXPECT_EQ(r.status, LpStatus::unbounded);
}

TEST(Simplex, HandlesRedundantRows) {
    // Duplicate constraint row; phase 1 must park the artificial.
    LpProblem p;
    p.a = Matrix{{1.0, 1.0}, {1.0, 1.0}};
    p.b = {2.0, 2.0};
    p.c = {1.0, 0.0};
    const LpResult r = solve_lp(p);
    ASSERT_EQ(r.status, LpStatus::optimal);
    EXPECT_NEAR(r.objective, 0.0, 1e-9);
    EXPECT_NEAR(r.x[1], 2.0, 1e-9);
}

TEST(Simplex, NegativeRhsNormalized) {
    // -x0 = -3 -> x0 = 3.
    LpProblem p;
    p.a = Matrix{{-1.0}};
    p.b = {-3.0};
    p.c = {1.0};
    const LpResult r = solve_lp(p);
    ASSERT_EQ(r.status, LpStatus::optimal);
    EXPECT_NEAR(r.x[0], 3.0, 1e-9);
}

TEST(Simplex, DimensionMismatchThrows) {
    LpProblem p;
    p.a = Matrix(2, 3);
    p.b = {1.0};
    p.c = {0.0, 0.0, 0.0};
    EXPECT_THROW(solve_lp(p), std::invalid_argument);
}

TEST(Simplex, WarmStartReusesBasis) {
    LpProblem p;
    p.a = Matrix{{1.0, 1.0, 1.0, 0.0}, {1.0, 0.0, 0.0, 1.0}};
    p.b = {4.0, 3.0};
    p.c = {-1.0, 0.0, 0.0, 0.0};
    const LpResult first = solve_lp(p);
    ASSERT_EQ(first.status, LpStatus::optimal);

    // Same feasible region, new objective, warm-started.
    p.c = {0.0, -1.0, 0.0, 0.0};
    LpOptions options;
    options.initial_basis = first.basis;
    const LpResult second = solve_lp(p, options);
    ASSERT_EQ(second.status, LpStatus::optimal);
    EXPECT_NEAR(second.objective, -4.0, 1e-9);
}

// Brute-force check: enumerate all basic feasible solutions of random
// small LPs and compare the simplex optimum against the vertex minimum.
class SimplexBruteForce : public ::testing::TestWithParam<unsigned> {};

TEST_P(SimplexBruteForce, MatchesVertexEnumeration) {
    std::mt19937_64 rng(GetParam());
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::uniform_real_distribution<double> pos(0.2, 1.5);
    const std::size_t m = 2;
    const std::size_t n = 5;
    Matrix a(m, n);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
    }
    // Feasible by construction: b = A x0 with x0 > 0.
    Vector x0(n);
    for (double& v : x0) v = pos(rng);
    const Vector b = gemv(a, x0);
    Vector c(n);
    for (double& v : c) v = dist(rng);

    LpProblem p{a, b, c};
    const LpResult r = solve_lp(p);
    if (r.status == LpStatus::unbounded) {
        GTEST_SKIP() << "unbounded instance";
    }
    ASSERT_EQ(r.status, LpStatus::optimal);

    // Enumerate all (n choose m) bases.
    double best = 1e300;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            Matrix basis(2, 2);
            basis(0, 0) = a(0, i);
            basis(0, 1) = a(0, j);
            basis(1, 0) = a(1, i);
            basis(1, 1) = a(1, j);
            const double det = basis(0, 0) * basis(1, 1) -
                               basis(0, 1) * basis(1, 0);
            if (std::abs(det) < 1e-9) continue;
            const double xi = (b[0] * basis(1, 1) - basis(0, 1) * b[1]) / det;
            const double xj = (basis(0, 0) * b[1] - b[0] * basis(1, 0)) / det;
            if (xi < -1e-9 || xj < -1e-9) continue;
            best = std::min(best, c[i] * xi + c[j] * xj);
        }
    }
    ASSERT_LT(best, 1e299) << "enumeration found no vertex";
    EXPECT_NEAR(r.objective, best, 1e-6 * (1.0 + std::abs(best)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexBruteForce,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u, 11u, 12u, 13u, 14u, 15u));

// Degenerate LP with many ties: anti-cycling must terminate.
TEST(Simplex, DegenerateProblemTerminates) {
    LpProblem p;
    p.a = Matrix{{1.0, 1.0, 0.0, 0.0},
                 {1.0, 0.0, 1.0, 0.0},
                 {1.0, 0.0, 0.0, 1.0}};
    p.b = {1.0, 1.0, 1.0};
    p.c = {-1.0, 0.0, 0.0, 0.0};
    const LpResult r = solve_lp(p);
    ASSERT_EQ(r.status, LpStatus::optimal);
    EXPECT_NEAR(r.objective, -1.0, 1e-9);
}

}  // namespace
}  // namespace tme::linalg
