// Epoch cache under concurrent access: N threads racing on a cold
// epoch build each derived quantity exactly once (and observe the same
// object), concurrent acquires of one routing build one epoch, and a
// pinned epoch survives eviction by other engines.
#include <gtest/gtest.h>

#include <barrier>
#include <thread>
#include <vector>

#include "core/route_change.hpp"
#include "core/test_helpers.hpp"
#include "engine/epoch_cache.hpp"

namespace tme::engine {
namespace {

using core::testing::SmallNetwork;
using core::testing::tiny_network;

constexpr std::size_t kThreads = 8;

TEST(RoutingEpochConcurrency, ColdDerivedDataBuildsExactlyOnce) {
    const SmallNetwork net = tiny_network();
    RoutingEpochCache cache(2);
    const std::shared_ptr<const RoutingEpoch> epoch =
        cache.acquire_shared(net.routing);
    ASSERT_EQ(epoch->derived_builds(), 0u);

    const std::vector<std::size_t> unknown = {0, 2};
    constexpr double kWeight = 0.5;
    constexpr double kTau = 1e-3;

    std::vector<const linalg::Matrix*> vardi_ptrs(kThreads);
    std::vector<const core::FanoutConstraints*> fanout_ptrs(kThreads);
    std::vector<std::shared_ptr<const core::ReducedFactor>> reduced(
        kThreads);
    std::barrier sync(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            sync.arrive_and_wait();  // maximize the cold-build race
            vardi_ptrs[t] = &epoch->vardi_gram(kWeight);
            fanout_ptrs[t] = &epoch->fanout_constraints(net.topo);
            reduced[t] = epoch->reduced_factor(unknown, kTau);
        });
    }
    for (std::thread& t : threads) t.join();

    // Exactly one build per derived quantity, however the race went.
    EXPECT_EQ(epoch->derived_builds(), 3u);
    // Every thread observed the same objects.
    for (std::size_t t = 1; t < kThreads; ++t) {
        EXPECT_EQ(vardi_ptrs[t], vardi_ptrs[0]);
        EXPECT_EQ(fanout_ptrs[t], fanout_ptrs[0]);
        EXPECT_EQ(reduced[t].get(), reduced[0].get());
    }
    // The race never misfired into the collision path.
    EXPECT_EQ(cache.collisions(), 0u);

    // The built data is correct, not just unique: spot-check Vardi's
    // transform against the eager Gram.
    const linalg::Matrix& gram = epoch->gram();
    const linalg::Matrix& vardi = *vardi_ptrs[0];
    for (std::size_t p = 0; p < gram.rows(); ++p) {
        for (std::size_t q = 0; q < gram.cols(); ++q) {
            const double g1 = gram(p, q);
            EXPECT_DOUBLE_EQ(vardi(p, q), g1 + kWeight * g1 * g1);
        }
    }
}

TEST(RoutingEpochConcurrency, DistinctVardiWeightsCoexistSafely) {
    // Regression: fleet jobs may configure different Vardi weights on
    // one shared epoch.  Each weight builds its own cached matrix and
    // earlier references stay valid (no rebuild-in-place).
    const SmallNetwork net = tiny_network();
    RoutingEpochCache cache(2);
    const std::shared_ptr<const RoutingEpoch> epoch =
        cache.acquire_shared(net.routing);

    const linalg::Matrix& light = epoch->vardi_gram(0.25);
    const double light_00 = light(0, 0);
    std::vector<const linalg::Matrix*> heavy_ptrs(kThreads);
    std::barrier sync(kThreads);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            sync.arrive_and_wait();
            // Half the threads race on a NEW weight while the other
            // half keep reading the existing one.
            if (t % 2 == 0) {
                heavy_ptrs[t] = &epoch->vardi_gram(2.0);
            } else {
                heavy_ptrs[t] = &epoch->vardi_gram(0.25);
            }
        });
    }
    for (std::thread& t : threads) t.join();

    // Two weights -> exactly two builds, and the first weight's matrix
    // was neither moved nor overwritten.
    EXPECT_EQ(epoch->derived_builds(), 2u);
    EXPECT_EQ(&epoch->vardi_gram(0.25), &light);
    EXPECT_EQ(light(0, 0), light_00);
    for (std::size_t t = 0; t < kThreads; ++t) {
        EXPECT_EQ(heavy_ptrs[t],
                  t % 2 == 0 ? &epoch->vardi_gram(2.0) : &light);
    }
    const double g00 = epoch->gram()(0, 0);
    EXPECT_DOUBLE_EQ(epoch->vardi_gram(2.0)(0, 0), g00 + 2.0 * g00 * g00);
    EXPECT_DOUBLE_EQ(light(0, 0), g00 + 0.25 * g00 * g00);
}

TEST(RoutingEpochCacheConcurrency, ConcurrentAcquiresBuildOneEpoch) {
    const SmallNetwork net = tiny_network();
    RoutingEpochCache cache(2);
    std::vector<std::shared_ptr<const RoutingEpoch>> epochs(kThreads);
    std::barrier sync(kThreads);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            sync.arrive_and_wait();
            epochs[t] = cache.acquire_shared(net.routing);
        });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), kThreads - 1);
    for (std::size_t t = 1; t < kThreads; ++t) {
        EXPECT_EQ(epochs[t].get(), epochs[0].get());
    }
}

TEST(RoutingEpochCacheConcurrency, PinnedEpochSurvivesEviction) {
    const SmallNetwork net = tiny_network();
    RoutingEpochCache cache(1);
    const std::shared_ptr<const RoutingEpoch> pinned =
        cache.acquire_shared(net.routing);
    const std::uint64_t serial = pinned->serial();

    // Another engine's routing churn evicts the entry from the LRU...
    const linalg::SparseMatrix r2 = core::perturbed_routing(net.topo, 0.9, 1);
    const linalg::SparseMatrix r3 = core::perturbed_routing(net.topo, 0.9, 2);
    cache.acquire_shared(r2);
    cache.acquire_shared(r3);
    EXPECT_EQ(cache.evictions(), 2u);
    EXPECT_EQ(cache.size(), 1u);

    // ...but the pinned epoch (an in-flight pipeline window, say) is
    // still fully usable, derived data included.
    EXPECT_EQ(pinned->serial(), serial);
    EXPECT_EQ(linalg::max_abs_diff(pinned->gram(), net.routing.gram()),
              0.0);
    EXPECT_GT(pinned->vardi_gram(1.0).rows(), 0u);

    // Re-acquiring the original routing rebuilds a NEW epoch (distinct
    // serial): eviction really dropped it from the cache.
    const std::shared_ptr<const RoutingEpoch> rebuilt =
        cache.acquire_shared(net.routing);
    EXPECT_NE(rebuilt->serial(), serial);
}

}  // namespace
}  // namespace tme::engine
