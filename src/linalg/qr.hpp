// Householder QR factorization and least-squares solving.
//
// Used for dense least-squares subproblems where forming the Gram matrix
// would square the condition number (e.g. validating NNLS passive-set
// solves in tests, and the mean-variance log-log regression fit).
#pragma once

#include "linalg/matrix.hpp"

namespace tme::linalg {

/// Householder QR of an m x n matrix with m >= n.
class Qr {
  public:
    /// Factorizes a (requires rows >= cols, throws otherwise).
    explicit Qr(const Matrix& a);

    /// Minimizes ||A x - b||_2; returns x of length cols().
    Vector solve(const Vector& b) const;

    /// Computes Q' b (length rows()).
    Vector q_transpose_mul(const Vector& b) const;

    /// Absolute values of the R diagonal (rank diagnostics).
    Vector r_diagonal() const;

    /// Numerical rank: number of |r_ii| above tol * max|r_ii|.
    std::size_t rank(double tol = 1e-10) const;

    std::size_t rows() const { return qr_.rows(); }
    std::size_t cols() const { return qr_.cols(); }

  private:
    Matrix qr_;    // Householder vectors below diagonal, R on/above
    Vector beta_;  // Householder scalars
};

/// Convenience: least-squares solve min ||A x - b||_2 via QR.
Vector lstsq(const Matrix& a, const Vector& b);

}  // namespace tme::linalg
