#include "core/tomo_direct.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/bayesian.hpp"
#include "core/metrics.hpp"
#include "test_helpers.hpp"

namespace tme::core {
namespace {

using testing::SmallNetwork;
using testing::tiny_network;

// A fast estimator for the reduced problems (Bayesian instead of the
// slower entropy default).
ReducedEstimator fast_estimator() {
    return [](const SnapshotProblem& problem, const linalg::Vector& prior) {
        BayesianOptions options;
        options.regularization = 1e5;
        return bayesian_estimate(problem, prior, options);
    };
}

TEST(TomoDirect, MeasuredEntriesAreExact) {
    const SmallNetwork net = tiny_network(2);
    linalg::Vector prior(net.truth.size(), 1.0);
    const std::vector<std::size_t> measured{0, 4, 7};
    const linalg::Vector est = estimate_with_measured(
        net.snapshot(), prior, net.truth, measured, fast_estimator());
    for (std::size_t p : measured) {
        EXPECT_DOUBLE_EQ(est[p], net.truth[p]);
    }
}

TEST(TomoDirect, MeasuringAllPairsIsExact) {
    const SmallNetwork net = tiny_network(3);
    linalg::Vector prior(net.truth.size(), 1.0);
    std::vector<std::size_t> all(net.truth.size());
    std::iota(all.begin(), all.end(), 0);
    const linalg::Vector est = estimate_with_measured(
        net.snapshot(), prior, net.truth, all, fast_estimator());
    for (std::size_t p = 0; p < net.truth.size(); ++p) {
        EXPECT_DOUBLE_EQ(est[p], net.truth[p]);
    }
}

TEST(TomoDirect, BadPairIndexThrows) {
    const SmallNetwork net = tiny_network();
    linalg::Vector prior(net.truth.size(), 1.0);
    EXPECT_THROW(
        estimate_with_measured(net.snapshot(), prior, net.truth, {999},
                               fast_estimator()),
        std::invalid_argument);
}

TEST(TomoDirect, GreedyCurveIsMonotoneIsh) {
    // Greedy picks the best improvement each step, so the curve must be
    // non-increasing (up to estimator jitter).
    const SmallNetwork net = tiny_network(5);
    linalg::Vector prior(net.truth.size(), 1.0);
    DirectMeasurementOptions options;
    options.max_measured = 6;
    options.estimator = fast_estimator();
    const DirectMeasurementCurve curve = greedy_direct_measurements(
        net.snapshot(), prior, net.truth, options);
    ASSERT_EQ(curve.mre.size(), curve.measured.size() + 1);
    for (std::size_t i = 1; i < curve.mre.size(); ++i) {
        EXPECT_LE(curve.mre[i], curve.mre[i - 1] + 1e-6);
    }
}

TEST(TomoDirect, GreedyNotWorseThanLargestFirst) {
    const SmallNetwork net = tiny_network(7);
    linalg::Vector prior(net.truth.size(), 1.0);
    DirectMeasurementOptions options;
    options.max_measured = 5;
    options.estimator = fast_estimator();
    const DirectMeasurementCurve greedy = greedy_direct_measurements(
        net.snapshot(), prior, net.truth, options);
    const DirectMeasurementCurve size_based =
        largest_first_direct_measurements(net.snapshot(), prior, net.truth,
                                          options);
    // At every step the greedy (oracle) curve is at least as good.
    for (std::size_t i = 0; i < greedy.mre.size(); ++i) {
        EXPECT_LE(greedy.mre[i], size_based.mre[i] + 1e-6);
    }
}

TEST(TomoDirect, LargestFirstMeasuresBySize) {
    const SmallNetwork net = tiny_network(9);
    linalg::Vector prior(net.truth.size(), 1.0);
    DirectMeasurementOptions options;
    options.max_measured = 3;
    options.estimator = fast_estimator();
    const DirectMeasurementCurve curve =
        largest_first_direct_measurements(net.snapshot(), prior, net.truth,
                                          options);
    const auto order = demands_above(net.truth, 0.0);
    ASSERT_GE(curve.measured.size(), 3u);
    EXPECT_EQ(curve.measured[0], order[0]);
    EXPECT_EQ(curve.measured[1], order[1]);
    EXPECT_EQ(curve.measured[2], order[2]);
}

TEST(TomoDirect, NoMeasurementsMatchesPlainEstimator) {
    const SmallNetwork net = tiny_network(1);
    linalg::Vector prior(net.truth.size(), 1.0);
    const linalg::Vector direct = estimate_with_measured(
        net.snapshot(), prior, net.truth, {}, fast_estimator());
    const linalg::Vector plain =
        fast_estimator()(net.snapshot(), prior);
    for (std::size_t p = 0; p < direct.size(); ++p) {
        EXPECT_NEAR(direct[p], plain[p], 1e-9);
    }
}

TEST(TomoDirect, FactoredPathMatchesLocalBuildAndHonoursProvider) {
    const SmallNetwork net = tiny_network(6);
    linalg::Vector prior(net.truth.size(), 1.0);
    const std::vector<std::size_t> measured{1, 3, 5};
    const double tau = 1e3;

    // Local build (no provider).
    const linalg::Vector local = estimate_with_measured_factored(
        net.snapshot(), prior, net.truth, measured, tau);
    for (std::size_t p : measured) {
        EXPECT_DOUBLE_EQ(local[p], net.truth[p]);
    }

    // Provider handing in a factor sliced from the full Gram — the
    // engine's per-epoch reuse path — must give identical estimates.
    const linalg::Matrix full_gram = net.routing.gram();
    std::size_t provider_calls = 0;
    ReducedFactorProvider provider =
        [&](const std::vector<std::size_t>& unknown) {
            ++provider_calls;
            return std::make_shared<const ReducedFactor>(
                ReducedFactor::slice(full_gram, unknown, tau));
        };
    const linalg::Vector shared = estimate_with_measured_factored(
        net.snapshot(), prior, net.truth, measured, tau, provider);
    EXPECT_EQ(provider_calls, 1u);
    ASSERT_EQ(shared.size(), local.size());
    for (std::size_t p = 0; p < local.size(); ++p) {
        EXPECT_EQ(shared[p], local[p]);
    }

    // A provider answering for the wrong reduced problem is rejected.
    ReducedFactorProvider stale =
        [&](const std::vector<std::size_t>&) {
            return std::make_shared<const ReducedFactor>(
                ReducedFactor::slice(full_gram, {0, 2}, tau));
        };
    EXPECT_THROW(estimate_with_measured_factored(net.snapshot(), prior,
                                                 net.truth, measured, tau,
                                                 stale),
                 std::invalid_argument);
    EXPECT_THROW(estimate_with_measured_factored(net.snapshot(), prior,
                                                 net.truth, measured, 0.0),
                 std::invalid_argument);
}

TEST(TomoDirect, FactoredEstimateTracksTruthAsMeasurementsGrow) {
    // The reduced ridge solve anchors unmeasured demands to the prior;
    // with most pairs measured the remaining system is well determined
    // and the estimate must approach the truth.
    const SmallNetwork net = tiny_network(8);
    const linalg::Vector prior = net.truth;  // well-informed prior
    std::vector<std::size_t> measured;
    for (std::size_t p = 0; p + 2 < net.truth.size(); ++p) {
        measured.push_back(p);
    }
    const linalg::Vector est = estimate_with_measured_factored(
        net.snapshot(), prior, net.truth, measured, 1.0);
    for (std::size_t p = 0; p < net.truth.size(); ++p) {
        EXPECT_NEAR(est[p], net.truth[p], 0.05 * (1.0 + net.truth[p]));
    }
}

// The sparse-routing builder exists so the engine's epoch cache never
// needs the dense P x P Gram; it must reproduce the dense-Gram slice
// bit for bit (even with an unsorted unknown set).
TEST(TomoDirect, FromRoutingMatchesSliceBitwise) {
    const SmallNetwork net = tiny_network(4);
    const std::vector<std::size_t> unknown{7, 1, 4, 10, 2};
    const double tau = 1e-3;
    const ReducedFactor sliced =
        ReducedFactor::slice(net.routing.gram(), unknown, tau);
    const ReducedFactor direct =
        ReducedFactor::from_routing(net.routing, unknown, tau);
    ASSERT_EQ(sliced.unknown, direct.unknown);
    EXPECT_EQ(linalg::max_abs_diff(sliced.gram, direct.gram), 0.0);
    EXPECT_EQ(linalg::max_abs_diff(sliced.chol.factor(),
                                   direct.chol.factor()),
              0.0);
}

}  // namespace
}  // namespace tme::core
