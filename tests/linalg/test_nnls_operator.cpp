// Properties of the factored passive-set NNLS (nnls_operator): the
// oracle path must be bit-for-bit the dense nnls_gram path wherever
// the dense Gram fits — cold AND warm-started — and a warm start may
// only shorten the active-set path, never move the minimizer.  The
// full-scale versions of these gates (bitwise at the paper's 600-pair
// USA backbone, 1e-9 warm-vs-cold at the 200-PoP generated backbone,
// where the dense Gram cannot exist) run in bench_perf_solvers; this
// test pins the same properties in the tier-1 suite on routing-shaped
// random problems.
#include "linalg/nnls.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <random>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace tme::linalg {
namespace {

/// Routing-shaped sparse matrix: `links` rows, `pairs` columns, each
/// column carrying a short path of distinct links (values 1.0, with an
/// occasional 0.5 pair of rows standing in for an ECMP split).  Rank-
/// deficient by construction whenever pairs > links — the regime every
/// backbone estimator lives in.
SparseMatrix routing_like(std::size_t links, std::size_t pairs,
                          unsigned seed) {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<std::size_t> link(0, links - 1);
    std::uniform_int_distribution<int> hops(2, 6);
    Matrix dense(links, pairs, 0.0);
    for (std::size_t j = 0; j < pairs; ++j) {
        const int h = hops(rng);
        for (int t = 0; t < h; ++t) {
            const std::size_t i = link(rng);
            dense(i, j) = (t == 0 && j % 7 == 0) ? 0.5 : 1.0;
        }
    }
    return SparseMatrix::from_dense(dense);
}

/// Oracle replaying the Gram kernels' row accumulation through the
/// routing transpose — the construction the operator-form estimators
/// use (see core::vardi_estimate / linalg::gram_column).
GramColumnOracle make_oracle(const SparseMatrix& a,
                             const SparseMatrix& at) {
    GramColumnOracle oracle;
    oracle.dimension = a.cols();
    const CsrView av = a.view();
    const CsrView atv = at.view();
    oracle.column = [av, atv](std::size_t j, std::vector<double>& scratch,
                              std::vector<std::size_t>& support) {
        gram_column(av, atv, j, scratch.data(), support);
    };
    return oracle;
}

bool bitwise_equal(const Vector& a, const Vector& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) return false;
    }
    return true;
}

double rel_inf_diff(const Vector& a, const Vector& b) {
    return nrm_inf(sub(a, b)) / std::max(1.0, nrm_inf(a));
}

class NnlsOperatorParity : public ::testing::TestWithParam<unsigned> {};

TEST_P(NnlsOperatorParity, ColdSolveMatchesDenseGramBitwise) {
    const std::size_t links = 40, pairs = 156;
    const SparseMatrix a = routing_like(links, pairs, GetParam());
    const SparseMatrix at = transpose(a);
    const Matrix g = gram_sparse(a);

    std::mt19937_64 rng(GetParam() + 77);
    std::uniform_real_distribution<double> dist(0.0, 2.0);
    Vector truth(pairs);
    for (double& v : truth) v = dist(rng);
    const Vector b = a.multiply(truth);
    const Vector atb = a.multiply_transpose(b);
    const double btb = dot(b, b);

    const NnlsResult dense = nnls_gram(g, atb, btb);
    const NnlsResult oper = nnls_operator(make_oracle(a, at), atb, btb);
    EXPECT_EQ(dense.iterations, oper.iterations);
    EXPECT_EQ(dense.converged, oper.converged);
    EXPECT_TRUE(bitwise_equal(dense.x, oper.x))
        << "factored passive-set solve diverged from the dense path "
           "(rel diff "
        << rel_inf_diff(dense.x, oper.x) << ")";
    EXPECT_DOUBLE_EQ(dense.residual_norm, oper.residual_norm);
}

TEST_P(NnlsOperatorParity, WarmStartedSolveMatchesDenseGramBitwise) {
    // The property the streaming engine leans on: with the previous
    // window's solution seeding the passive set, the factored path must
    // still replay the dense solver's pivot decisions and arithmetic
    // exactly — warm starts change the trajectory, and the two
    // implementations must change it identically.
    const std::size_t links = 40, pairs = 156;
    const SparseMatrix a = routing_like(links, pairs, GetParam());
    const SparseMatrix at = transpose(a);
    const Matrix g = gram_sparse(a);

    std::mt19937_64 rng(GetParam() + 901);
    std::uniform_real_distribution<double> dist(0.0, 2.0);
    Vector truth(pairs);
    for (double& v : truth) v = dist(rng);
    const Vector atb = a.multiply_transpose(a.multiply(truth));

    // Previous window: same routing, perturbed loads.
    Vector prev_truth = truth;
    for (double& v : prev_truth) v *= 0.8 + 0.4 * dist(rng);
    const Vector prev_atb =
        a.multiply_transpose(a.multiply(prev_truth));
    const NnlsResult seed = nnls_gram(g, prev_atb);

    NnlsOptions warm;
    warm.warm_start = &seed.x;
    const NnlsResult dense = nnls_gram(g, atb, 0.0, warm);
    const NnlsResult oper =
        nnls_operator(make_oracle(a, at), atb, 0.0, warm);
    EXPECT_EQ(dense.iterations, oper.iterations);
    EXPECT_TRUE(bitwise_equal(dense.x, oper.x))
        << "warm-started factored solve diverged from the warm dense "
           "path (rel diff "
        << rel_inf_diff(dense.x, oper.x) << ")";
}

TEST_P(NnlsOperatorParity, WarmStartMovesThePathNotTheMinimizer) {
    // Ridge-shifted (strictly convex) problem at a larger, heavily
    // rank-deficient scale, operator path only — the warm-started
    // solve must land on the cold solution to 1e-9 even when the seed
    // is wrong in both directions (spurious positives that must pin
    // back to zero, true positives perturbed).  bench_perf_solvers
    // phase 5 runs the same property at the real 200-PoP backbone.
    const std::size_t links = 120, pairs = 1200;
    const SparseMatrix a = routing_like(links, pairs, GetParam() + 33);
    const SparseMatrix at = transpose(a);

    std::mt19937_64 rng(GetParam() + 4242);
    std::uniform_real_distribution<double> dist(0.0, 2.0);
    Vector truth(pairs);
    for (double& v : truth) v = dist(rng);
    const Vector atb = a.multiply_transpose(a.multiply(truth));

    // Bayesian-prior-sized ridge: the dual stopping tolerance (1e-10)
    // bounds the minimizer's displacement by roughly tol/shift, so a
    // vanishing shift cannot certify 1e-9 on a rank-deficient Gram.
    NnlsOptions opt;
    opt.gram_diagonal_shift = 0.5;
    const GramColumnOracle oracle = make_oracle(a, at);
    const NnlsResult cold = nnls_operator(oracle, atb, 0.0, opt);
    ASSERT_TRUE(cold.converged);

    Vector seed = cold.x;
    std::uniform_real_distribution<double> jitter(0.5, 1.5);
    for (std::size_t j = 0; j < pairs; ++j) {
        if (seed[j] > 0.0) {
            seed[j] *= jitter(rng);
        } else if (j % 11 == 0) {
            seed[j] = 0.1;  // spurious passive coordinate
        }
    }
    NnlsOptions warm = opt;
    warm.warm_start = &seed;
    const NnlsResult rewarmed = nnls_operator(oracle, atb, 0.0, warm);
    ASSERT_TRUE(rewarmed.converged);
    EXPECT_LE(rewarmed.iterations, cold.iterations + 8);
    EXPECT_LE(rel_inf_diff(cold.x, rewarmed.x), 1e-9)
        << "warm start moved the minimizer";
}

INSTANTIATE_TEST_SUITE_P(Seeds, NnlsOperatorParity,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace tme::linalg
