// Engine perf bench: incremental sliding windows vs. naive per-window
// recomputation.
//
// Streams a scenario day through (a) the online engine — ring-buffered
// window, routing-epoch-cached Gram matrix and derived data,
// incrementally maintained window aggregates — and (b) a naive baseline
// that rebuilds every window's SeriesProblem from scratch and
// recomputes every R-derived/window-derived quantity per window,
// exactly as the offline benches do.  Two engines — one cold-started,
// one warm-started — are fed the same samples interleaved, so load
// spikes hit both alike; all paths run the same methods (gravity,
// Bayesian, Vardi, fanout) single-threaded and must agree to within
// 1e-9.  The bench FAILS (non-zero exit) if estimates diverge, if the
// incremental warm path is not faster than naive recomputation, or if
// the fanout QP's active-set warm start does not make the fanout
// method at least 1.5x faster per window than its cold runs.
//
// Results are also written to BENCH_engine.json (per-method window
// timings, cold/warm speedups, cache hit rate) so the perf trajectory
// stays machine-readable across PRs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/bayesian.hpp"
#include "core/fanout.hpp"
#include "core/gravity.hpp"
#include "core/vardi.hpp"
#include "engine/engine.hpp"

namespace {

using tme::engine::Method;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

double max_abs_diff(const tme::linalg::Vector& a,
                    const tme::linalg::Vector& b) {
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        worst = std::max(worst, std::abs(a[i] - b[i]));
    }
    return worst;
}

/// Estimates for one window, in method order gravity / bayesian /
/// vardi / fanout (series slots empty below the series threshold).
struct WindowEstimates {
    std::vector<tme::linalg::Vector> by_method;
};

constexpr std::size_t kMinSeriesWindow = 3;

std::vector<WindowEstimates> run_naive(const tme::scenario::Scenario& sc,
                                       std::size_t samples,
                                       std::size_t window_size) {
    using namespace tme;
    std::vector<WindowEstimates> out;
    out.reserve(samples);
    std::vector<linalg::Vector> history;
    for (std::size_t k = 0; k < samples; ++k) {
        history.push_back(sc.loads[k]);
        const std::size_t wsize = std::min(window_size, history.size());

        // Rebuild the window problem from scratch: copy the load
        // vectors and recompute everything the estimators need.
        core::SeriesProblem series;
        series.topo = &sc.topo;
        series.routing = &sc.routing;
        series.loads.assign(history.end() - static_cast<std::ptrdiff_t>(wsize),
                            history.end());

        core::SnapshotProblem latest;
        latest.topo = &sc.topo;
        latest.routing = &sc.routing;
        latest.loads = series.loads.back();

        WindowEstimates est;
        const linalg::Vector prior = core::gravity_estimate(latest);
        est.by_method.push_back(prior);
        est.by_method.push_back(core::bayesian_estimate(latest, prior));
        if (wsize >= kMinSeriesWindow) {
            est.by_method.push_back(core::vardi_estimate(series).lambda);
            est.by_method.push_back(
                core::fanout_estimate(series).mean_demands);
        }
        out.push_back(std::move(est));
    }
    return out;
}

struct EngineRun {
    std::vector<WindowEstimates> estimates;
    tme::engine::EngineMetrics metrics;
    double seconds = 0.0;  ///< wall time spent inside this engine
};

tme::engine::EngineConfig engine_config(std::size_t window_size,
                                        bool warm_start) {
    tme::engine::EngineConfig config;
    config.window_size = window_size;
    config.min_series_window = kMinSeriesWindow;
    config.methods = {Method::gravity, Method::bayesian, Method::vardi,
                      Method::fanout};
    config.threads = 0;  // single-threaded, like the baseline
    config.warm_start = warm_start;
    return config;
}

void ingest_into(tme::engine::OnlineEngine& eng, EngineRun& out,
                 std::size_t sample, const tme::linalg::Vector& loads) {
    const Clock::time_point start = Clock::now();
    tme::engine::WindowResult result = eng.ingest(sample, loads);
    out.seconds += seconds_since(start);
    WindowEstimates est;
    for (auto& run : result.runs) {
        est.by_method.push_back(std::move(run.estimate));
    }
    out.estimates.push_back(std::move(est));
}

/// Streams the day through a cold-started and a warm-started engine,
/// interleaved sample by sample (alternating order), so load spikes and
/// frequency scaling hit both paths alike and the warm-vs-cold ratio
/// stays meaningful on a busy machine.
std::pair<EngineRun, EngineRun> run_engines(const tme::scenario::Scenario& sc,
                                            std::size_t samples,
                                            std::size_t window_size) {
    using namespace tme;
    engine::OnlineEngine cold(sc.topo, sc.routing,
                              engine_config(window_size, false));
    engine::OnlineEngine warm(sc.topo, sc.routing,
                              engine_config(window_size, true));

    std::pair<EngineRun, EngineRun> out;
    out.first.estimates.reserve(samples);
    out.second.estimates.reserve(samples);
    for (std::size_t k = 0; k < samples; ++k) {
        if (k % 2 == 0) {
            ingest_into(cold, out.first, k, sc.loads[k]);
            ingest_into(warm, out.second, k, sc.loads[k]);
        } else {
            ingest_into(warm, out.second, k, sc.loads[k]);
            ingest_into(cold, out.first, k, sc.loads[k]);
        }
    }
    out.first.metrics = cold.metrics();
    out.second.metrics = warm.metrics();
    return out;
}

double compare(const std::vector<WindowEstimates>& a,
               const std::vector<WindowEstimates>& b) {
    if (a.size() != b.size()) return 1e300;
    double worst = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k) {
        if (a[k].by_method.size() != b[k].by_method.size()) return 1e300;
        for (std::size_t m = 0; m < a[k].by_method.size(); ++m) {
            if (a[k].by_method[m].size() != b[k].by_method[m].size()) {
                return 1e300;
            }
            worst = std::max(
                worst, max_abs_diff(a[k].by_method[m], b[k].by_method[m]));
        }
    }
    return worst;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace tme;

    std::size_t samples = 288;
    std::size_t window_size = 36;
    scenario::Network network = scenario::Network::europe;
    std::string json_path = "BENCH_engine.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--samples") && i + 1 < argc) {
            samples = static_cast<std::size_t>(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--window") && i + 1 < argc) {
            window_size = static_cast<std::size_t>(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--usa")) {
            network = scenario::Network::usa;
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::printf("usage: %s [--samples N] [--window W] [--usa] "
                        "[--json PATH]\n",
                        argv[0]);
            return 2;
        }
    }
    if (samples == 0 || window_size == 0) {
        std::printf("error: --samples and --window must be positive\n");
        return 2;
    }

    bench::header(
        "Engine perf: incremental sliding windows vs naive recomputation",
        "new subsystem (streaming engine); paper Sec. 5.1 operational "
        "setting",
        "engine processes the day faster with identical estimates");

    const scenario::Scenario sc = scenario::make_scenario(network);
    samples = std::min(samples, sc.loads.size());
    std::printf("network=%s samples=%zu window=%zu methods=gravity,"
                "bayesian,vardi,fanout\n\n",
                sc.name.c_str(), samples, window_size);

    const Clock::time_point t_naive = Clock::now();
    const auto naive = run_naive(sc, samples, window_size);
    const double naive_seconds = seconds_since(t_naive);

    const auto [engine_cold, engine_warm] =
        run_engines(sc, samples, window_size);
    const double cold_seconds = engine_cold.seconds;
    const double warm_seconds = engine_warm.seconds;

    const double cold_diff = compare(naive, engine_cold.estimates);
    const double warm_diff = compare(naive, engine_warm.estimates);

    std::printf("naive rebuild-per-window : %8.3f s\n", naive_seconds);
    std::printf("engine (cold starts)     : %8.3f s   speedup %.2fx   "
                "max |diff| %.3g\n",
                cold_seconds, naive_seconds / cold_seconds, cold_diff);
    std::printf("engine (warm starts)     : %8.3f s   speedup %.2fx   "
                "max |diff| %.3g\n",
                warm_seconds, naive_seconds / warm_seconds, warm_diff);

    // Per-method cold/warm window timings.  The fanout method carries
    // the dominant per-window cost (its equality-constrained
    // non-negative QP), so its warm-vs-cold ratio is gated: the
    // active-set warm start must pay for itself.
    std::printf("\nper-method mean window time (cold -> warm):\n");
    double fanout_warm_speedup = 0.0;
    for (const auto& [method, cold_stats] : engine_cold.metrics.methods) {
        const auto it = engine_warm.metrics.methods.find(method);
        if (it == engine_warm.metrics.methods.end()) continue;
        const tme::engine::MethodStats& warm_stats = it->second;
        const double ratio =
            warm_stats.mean_seconds() > 0.0
                ? cold_stats.mean_seconds() / warm_stats.mean_seconds()
                : 0.0;
        std::printf("  %-9s %8.3fms -> %8.3fms  (%.2fx, warm accepted "
                    "%zu/%zu)\n",
                    tme::engine::method_name(method),
                    cold_stats.mean_seconds() * 1e3,
                    warm_stats.mean_seconds() * 1e3, ratio,
                    warm_stats.warm_accepted_runs, warm_stats.warm_runs);
        if (method == Method::fanout) fanout_warm_speedup = ratio;
    }

    // Machine-readable record for cross-PR perf tracking.
    std::FILE* json = std::fopen(json_path.c_str(), "w");
    if (json != nullptr) {
        std::fprintf(json, "{\n");
        std::fprintf(json, "  \"network\": \"%s\",\n", sc.name.c_str());
        std::fprintf(json, "  \"samples\": %zu,\n", samples);
        std::fprintf(json, "  \"window\": %zu,\n", window_size);
        std::fprintf(json, "  \"naive_seconds\": %.6f,\n", naive_seconds);
        std::fprintf(json, "  \"cold_seconds\": %.6f,\n", cold_seconds);
        std::fprintf(json, "  \"warm_seconds\": %.6f,\n", warm_seconds);
        std::fprintf(json, "  \"speedup_cold\": %.4f,\n",
                     naive_seconds / cold_seconds);
        std::fprintf(json, "  \"speedup_warm\": %.4f,\n",
                     naive_seconds / warm_seconds);
        std::fprintf(json, "  \"max_diff_cold\": %.3e,\n", cold_diff);
        std::fprintf(json, "  \"max_diff_warm\": %.3e,\n", warm_diff);
        std::fprintf(json, "  \"cache_hit_rate\": %.4f,\n",
                     engine_warm.metrics.cache_hit_rate());
        std::fprintf(json, "  \"fanout_warm_speedup\": %.4f,\n",
                     fanout_warm_speedup);
        std::fprintf(json, "  \"methods\": {\n");
        bool first = true;
        for (const auto& [method, cold_stats] :
             engine_cold.metrics.methods) {
            const auto it = engine_warm.metrics.methods.find(method);
            if (it == engine_warm.metrics.methods.end()) continue;
            const tme::engine::MethodStats& warm_stats = it->second;
            std::fprintf(json, "%s    \"%s\": {\n", first ? "" : ",\n",
                         tme::engine::method_name(method));
            first = false;
            std::fprintf(json, "      \"runs\": %zu,\n", cold_stats.runs);
            std::fprintf(json,
                         "      \"cold_mean_window_seconds\": %.6e,\n",
                         cold_stats.mean_seconds());
            std::fprintf(json,
                         "      \"warm_mean_window_seconds\": %.6e,\n",
                         warm_stats.mean_seconds());
            std::fprintf(json, "      \"warm_runs\": %zu,\n",
                         warm_stats.warm_runs);
            std::fprintf(json, "      \"warm_accepted_runs\": %zu\n",
                         warm_stats.warm_accepted_runs);
            std::fprintf(json, "    }");
        }
        std::fprintf(json, "\n  }\n}\n");
        std::fclose(json);
        std::printf("\nwrote %s\n", json_path.c_str());
    } else {
        std::printf("\nWARNING: could not write %s\n", json_path.c_str());
    }

    bool ok = true;
    if (cold_diff > 1e-9) {
        std::printf("FAIL: cold-engine estimates diverge from naive "
                    "(%.3g > 1e-9)\n",
                    cold_diff);
        ok = false;
    }
    if (warm_diff > 1e-9) {
        std::printf("FAIL: warm-engine estimates diverge from naive "
                    "(%.3g > 1e-9)\n",
                    warm_diff);
        ok = false;
    }
    if (warm_seconds >= naive_seconds) {
        std::printf("FAIL: incremental warm path not faster than naive "
                    "(%.3fs >= %.3fs)\n",
                    warm_seconds, naive_seconds);
        ok = false;
    }
    if (fanout_warm_speedup < 1.5) {
        std::printf("FAIL: fanout QP warm start below the 1.5x gate "
                    "(%.2fx)\n",
                    fanout_warm_speedup);
        ok = false;
    }
    if (ok) {
        std::printf("\nPASS: identical estimates (<= 1e-9); incremental "
                    "path %.2fx faster cold, %.2fx warm; fanout warm "
                    "start %.2fx\n",
                    naive_seconds / cold_seconds,
                    naive_seconds / warm_seconds, fanout_warm_speedup);
    }
    return ok ? 0 : 1;
}
