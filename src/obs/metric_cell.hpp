// Relaxed atomic metric cell shared by every observability surface.
//
// A MetricCell is a copyable wrapper over std::atomic<T> with relaxed
// ordering throughout: metric writers (engine ingestion, pipeline
// stages, fleet workers) update cells concurrently while readers poll
// or copy whole metric structs, and no reader may ever observe a torn
// value.  Copying snapshots the current value, so structs built from
// cells keep working as plain value types for single-threaded callers.
//
// Lives in obs (not engine) because histograms, counters and reports
// are built on it; engine/metrics.hpp re-exports the name so existing
// engine code keeps compiling unchanged.
#pragma once

#include <atomic>

namespace tme::obs {

/// Relaxed atomic cell that copies by value.  Use .load() where a
/// plain value is required (printf-style varargs reject non-trivially-
/// copyable types, which is deliberate: the compiler flags every site
/// that would otherwise pass a raw cell).
template <typename T>
class MetricCell {
  public:
    MetricCell(T value = T{}) : value_(value) {}
    MetricCell(const MetricCell& other) : value_(other.load()) {}
    MetricCell& operator=(const MetricCell& other) {
        store(other.load());
        return *this;
    }
    MetricCell& operator=(T value) {
        store(value);
        return *this;
    }

    T load() const { return value_.load(std::memory_order_relaxed); }
    void store(T value) { value_.store(value, std::memory_order_relaxed); }
    operator T() const { return load(); }

    MetricCell& operator++() {
        value_.fetch_add(T{1}, std::memory_order_relaxed);
        return *this;
    }
    MetricCell& operator+=(T delta) {
        value_.fetch_add(delta, std::memory_order_relaxed);
        return *this;
    }

    /// Monotone maximum: raises the cell to `value` iff it is larger.
    /// CAS loop (not fetch_max) so floating-point cells work too; lost
    /// races retry until the cell is at least `value`.  Used for
    /// worst-case latency cells, where only the high-water mark
    /// matters.
    void fetch_max(T value) {
        T current = value_.load(std::memory_order_relaxed);
        while (current < value &&
               !value_.compare_exchange_weak(current, value,
                                             std::memory_order_relaxed)) {
        }
    }

    /// Monotone minimum: lowers the cell to `value` iff it is smaller.
    void fetch_min(T value) {
        T current = value_.load(std::memory_order_relaxed);
        while (value < current &&
               !value_.compare_exchange_weak(current, value,
                                             std::memory_order_relaxed)) {
        }
    }

  private:
    std::atomic<T> value_;
};

}  // namespace tme::obs
