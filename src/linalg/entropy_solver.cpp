#include "linalg/entropy_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tme::linalg {

double generalized_kl(const Vector& s, const Vector& p) {
    if (s.size() != p.size()) {
        throw std::invalid_argument("generalized_kl: size mismatch");
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (p[i] <= 0.0) {
            throw std::invalid_argument("generalized_kl: prior must be > 0");
        }
        if (s[i] > 0.0) {
            acc += s[i] * std::log(s[i] / p[i]) - s[i] + p[i];
        } else {
            acc += p[i];
        }
    }
    return acc;
}

namespace {

double objective(const SparseMatrix& a, const Vector& b, const Vector& prior,
                 double w, const Vector& s) {
    const Vector r = sub(a.multiply(s), b);
    return dot(r, r) + (w > 0.0 ? w * generalized_kl(s, prior) : 0.0);
}

}  // namespace

EntropySolverResult kl_regularized_ls(const SparseMatrix& a, const Vector& b,
                                      const Vector& prior, double w,
                                      const EntropySolverOptions& options) {
    const std::size_t n = a.cols();
    if (b.size() != a.rows() || prior.size() != n) {
        throw std::invalid_argument("kl_regularized_ls: dimension mismatch");
    }
    if (w < 0.0) {
        throw std::invalid_argument("kl_regularized_ls: w must be >= 0");
    }

    // Clamp the prior away from zero so log(s/p) stays finite.
    Vector p = prior;
    double pmean = 0.0;
    for (double v : p) pmean += std::max(v, 0.0);
    pmean = (pmean > 0.0 ? pmean / static_cast<double>(n) : 1.0);
    const double floor = options.prior_floor * pmean;
    for (double& v : p) v = std::max(v, floor);

    EntropySolverResult result;
    if (options.initial != nullptr) {
        if (options.initial->size() != n) {
            throw std::invalid_argument("kl_regularized_ls: initial size");
        }
        result.s = *options.initial;
        for (double& v : result.s) {
            v = (std::isfinite(v) && v > floor) ? v : floor;
        }
    } else {
        result.s = p;  // start at the prior (strictly positive)
    }

    // Scale for the stationarity test.
    double bscale = nrm_inf(b);
    if (bscale == 0.0) bscale = 1.0;
    const double grad_scale = std::max(1.0, bscale * bscale);

    double f = objective(a, b, p, w, result.s);
    double eta = options.initial_step;

    for (result.iterations = 0; result.iterations < options.max_iterations;
         ++result.iterations) {
        // grad F = 2 A'(A s - b) + w log(s ./ p).
        const Vector resid = sub(a.multiply(result.s), b);
        Vector grad = a.multiply_transpose(resid);
        scale(2.0, grad);
        if (w > 0.0) {
            for (std::size_t i = 0; i < n; ++i) {
                grad[i] += w * std::log(result.s[i] / p[i]);
            }
        }

        // First-order stationarity for the positive-orthant problem with
        // multiplicative iterates: |s_i * grad_i| must vanish.
        double stat = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            stat = std::max(stat, std::abs(result.s[i] * grad[i]));
        }
        if (stat <= options.tolerance * grad_scale) {
            result.converged = true;
            break;
        }

        // Exponentiated-gradient step with Armijo backtracking.  The step
        // is normalized by the largest |s grad| so exp() stays tame.
        const double norm = std::max(stat, 1e-300);
        bool accepted = false;
        for (int bt = 0; bt < 60; ++bt) {
            Vector trial(n);
            const double step = eta / norm;
            for (std::size_t i = 0; i < n; ++i) {
                // Clip the exponent to avoid overflow; +-40 changes s by
                // a factor e^40, far beyond any useful single step.
                double ex = -step * result.s[i] * grad[i];
                ex = std::clamp(ex, -40.0, 40.0);
                trial[i] = result.s[i] * std::exp(ex);
            }
            const double ft = objective(a, b, p, w, trial);
            if (ft < f - 1e-12 * std::abs(f)) {
                result.s = std::move(trial);
                f = ft;
                accepted = true;
                // Allow the step to grow again after a success.
                eta = std::min(eta * 2.0, 1e6);
                break;
            }
            eta *= 0.5;
            if (eta < 1e-18) break;
        }
        if (!accepted) {
            // No descent direction at machine precision: stationary.
            result.converged = true;
            break;
        }
    }
    result.objective = f;
    return result;
}

}  // namespace tme::linalg
