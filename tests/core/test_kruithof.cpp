#include "core/kruithof.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "linalg/entropy_solver.hpp"
#include "test_helpers.hpp"
#include "traffic/traffic_matrix.hpp"

namespace tme::core {
namespace {

using testing::SmallNetwork;
using testing::tiny_network;

TEST(KruithofIpf, MatchesMarginalsExactly) {
    const std::size_t n = 4;
    linalg::Vector prior(n * (n - 1), 1.0);
    const linalg::Vector rows{4.0, 3.0, 2.0, 1.0};
    const linalg::Vector cols{1.0, 2.0, 3.0, 4.0};
    const KruithofResult r = kruithof_ipf(n, prior, rows, cols);
    EXPECT_TRUE(r.converged);
    traffic::TrafficMatrix tm(n, r.s);
    const linalg::Vector rt = tm.row_totals();
    const linalg::Vector ct = tm.col_totals();
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(rt[i], rows[i], 1e-8);
        EXPECT_NEAR(ct[i], cols[i], 1e-8);
    }
}

TEST(KruithofIpf, FixedPointWhenPriorAlreadyConsistent) {
    const std::size_t n = 3;
    linalg::Vector prior(n * (n - 1), 2.0);
    traffic::TrafficMatrix tm(n, prior);
    const KruithofResult r =
        kruithof_ipf(n, prior, tm.row_totals(), tm.col_totals());
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.iterations, 2u);
    for (std::size_t p = 0; p < prior.size(); ++p) {
        EXPECT_NEAR(r.s[p], prior[p], 1e-9);
    }
}

TEST(KruithofIpf, RejectsDisagreeingTotals) {
    linalg::Vector prior(6, 1.0);
    EXPECT_THROW(
        kruithof_ipf(3, prior, {1.0, 1.0, 1.0}, {5.0, 5.0, 5.0}),
        std::invalid_argument);
}

TEST(KruithofIpf, PreservesPriorZeros) {
    // Multiplicative scaling can never resurrect a zero prior entry.
    const std::size_t n = 3;
    linalg::Vector prior(n * (n - 1), 1.0);
    prior[0] = 0.0;  // demand 0->1
    traffic::TrafficMatrix seed_tm(n, linalg::Vector(n * (n - 1), 1.0));
    const KruithofResult r = kruithof_ipf(
        n, prior, seed_tm.row_totals(), seed_tm.col_totals());
    EXPECT_DOUBLE_EQ(r.s[0], 0.0);
}

TEST(KruithofGeneral, SolvesConsistentSystem) {
    const SmallNetwork net = tiny_network();
    const SnapshotProblem snap = net.snapshot();
    linalg::Vector prior(net.truth.size(), 1.0);
    KruithofOptions options;
    options.max_iterations = 3000;
    options.tolerance = 1e-9;
    const KruithofResult r = kruithof_general(snap, prior, options);
    EXPECT_TRUE(r.converged) << "violation " << r.max_violation;
    const linalg::Vector pred = net.routing.multiply(r.s);
    for (std::size_t l = 0; l < pred.size(); ++l) {
        EXPECT_NEAR(pred[l], snap.loads[l],
                    1e-6 * (1.0 + snap.loads[l]));
    }
}

TEST(KruithofGeneral, MinimizesKlAmongFeasible) {
    // Krupp's theorem: the iteration converges to the KL-closest
    // feasible point.  Compare against the entropy solver with tiny
    // data weight... instead compare KL divergence against a few other
    // feasible points: the truth itself must not beat it by KL.
    const SmallNetwork net = tiny_network(3);
    const SnapshotProblem snap = net.snapshot();
    linalg::Vector prior(net.truth.size(), 1.0);
    KruithofOptions options;
    options.max_iterations = 5000;
    const KruithofResult r = kruithof_general(snap, prior, options);
    ASSERT_TRUE(r.converged);
    EXPECT_LE(linalg::generalized_kl(r.s, prior),
              linalg::generalized_kl(net.truth, prior) + 1e-6);
}

TEST(KruithofGeneral, ZeroLoadZerosDemands) {
    const SmallNetwork net = tiny_network();
    SnapshotProblem snap = net.snapshot();
    // Zero out one ingress link: all demands from that PoP must go to 0.
    const std::size_t link = net.topo.ingress_link(0);
    snap.loads[link] = 0.0;
    linalg::Vector prior(net.truth.size(), 1.0);
    const KruithofResult r = kruithof_general(snap, prior);
    for (std::size_t m = 1; m < net.topo.pop_count(); ++m) {
        EXPECT_DOUBLE_EQ(r.s[net.topo.pair_index(0, m)], 0.0);
    }
}

TEST(KruithofIpf, MatchesDenseReferenceBitwise) {
    // The flat skip-diagonal rewrite must reproduce the historical
    // TrafficMatrix-based sweep bit-for-bit: same totals in the same
    // summation order, same scaling products.
    const std::size_t n = 6;
    std::mt19937_64 rng(17);
    std::uniform_real_distribution<double> dist(0.2, 3.0);
    linalg::Vector prior(n * (n - 1));
    for (double& v : prior) v = dist(rng);
    traffic::TrafficMatrix target(n, prior);
    linalg::Vector rows = target.row_totals();
    linalg::Vector cols = target.col_totals();
    // Perturb the prior so the iteration actually has work to do.
    for (double& v : prior) v *= dist(rng);

    KruithofOptions options;
    options.max_iterations = 200;
    const KruithofResult fast =
        kruithof_ipf(n, prior, rows, cols, options);

    // Reference: the pre-rewrite implementation, verbatim.
    traffic::TrafficMatrix tm(n, prior);
    KruithofResult ref;
    for (ref.iterations = 0; ref.iterations < options.max_iterations;
         ++ref.iterations) {
        linalg::Vector rt = tm.row_totals();
        for (std::size_t i = 0; i < n; ++i) {
            if (rt[i] <= 0.0) continue;
            const double f = rows[i] / rt[i];
            for (std::size_t j = 0; j < n; ++j) {
                if (i != j) tm.set(i, j, tm(i, j) * f);
            }
        }
        linalg::Vector ct = tm.col_totals();
        for (std::size_t j = 0; j < n; ++j) {
            if (ct[j] <= 0.0) continue;
            const double f = cols[j] / ct[j];
            for (std::size_t i = 0; i < n; ++i) {
                if (i != j) tm.set(i, j, tm(i, j) * f);
            }
        }
        rt = tm.row_totals();
        ct = tm.col_totals();
        double viol = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (rows[i] > 0.0) {
                viol = std::max(viol,
                                std::abs(rt[i] - rows[i]) / rows[i]);
            }
            if (cols[i] > 0.0) {
                viol = std::max(viol,
                                std::abs(ct[i] - cols[i]) / cols[i]);
            }
        }
        ref.max_violation = viol;
        if (viol <= options.tolerance) {
            ref.converged = true;
            break;
        }
    }
    ref.s = tm.to_pair_vector();

    EXPECT_EQ(fast.converged, ref.converged);
    EXPECT_EQ(fast.iterations, ref.iterations);
    EXPECT_EQ(fast.max_violation, ref.max_violation);
    ASSERT_EQ(fast.s.size(), ref.s.size());
    for (std::size_t p = 0; p < ref.s.size(); ++p) {
        EXPECT_EQ(fast.s[p], ref.s[p]) << "pair " << p;
    }
}

TEST(KruithofIpf, CheckCadenceReachesSameFixedPoint) {
    const std::size_t n = 5;
    std::mt19937_64 rng(3);
    std::uniform_real_distribution<double> dist(0.5, 2.0);
    linalg::Vector prior(n * (n - 1));
    for (double& v : prior) v = dist(rng);
    traffic::TrafficMatrix target(n, prior);
    const linalg::Vector rows = target.row_totals();
    const linalg::Vector cols = target.col_totals();
    for (double& v : prior) v *= dist(rng);

    const KruithofResult every = kruithof_ipf(n, prior, rows, cols);
    KruithofOptions sparse_checks;
    sparse_checks.check_every = 7;
    const KruithofResult cadenced =
        kruithof_ipf(n, prior, rows, cols, sparse_checks);
    ASSERT_TRUE(every.converged);
    ASSERT_TRUE(cadenced.converged);
    // The cadenced run may do a few extra sweeps past the tolerance;
    // both land on the (unique) biproportional fit.
    for (std::size_t p = 0; p < every.s.size(); ++p) {
        EXPECT_NEAR(cadenced.s[p], every.s[p],
                    1e-9 * (1.0 + every.s[p]));
    }
    EXPECT_GE(cadenced.iterations, every.iterations);
}

TEST(KruithofGeneral, CheckCadenceReachesSameSolution) {
    const SmallNetwork net = tiny_network(5);
    const SnapshotProblem snap = net.snapshot();
    linalg::Vector prior(net.truth.size(), 1.0);
    KruithofOptions base;
    base.max_iterations = 3000;
    base.tolerance = 1e-9;
    const KruithofResult every = kruithof_general(snap, prior, base);
    KruithofOptions cadenced_options = base;
    cadenced_options.check_every = 10;
    const KruithofResult cadenced =
        kruithof_general(snap, prior, cadenced_options);
    ASSERT_TRUE(every.converged);
    ASSERT_TRUE(cadenced.converged);
    for (std::size_t p = 0; p < every.s.size(); ++p) {
        EXPECT_NEAR(cadenced.s[p], every.s[p],
                    1e-7 * (1.0 + every.s[p]));
    }
}

TEST(KruithofGeneral, FractionalRoutingTakesPowPath) {
    // ECMP-style fractional routing entries exercise the pow branch of
    // the MART update (the 0/1 fast path must not change semantics for
    // general non-negative matrices).
    const std::size_t links = 4;
    const std::size_t pairs = 3;
    std::vector<linalg::Triplet> trips = {
        {0, 0, 0.5}, {1, 0, 0.5}, {0, 1, 1.0}, {2, 1, 0.5},
        {2, 2, 1.0}, {3, 2, 0.5},
    };
    const linalg::SparseMatrix r(links, pairs, std::move(trips));
    const linalg::Vector truth{2.0, 1.0, 3.0};
    SnapshotProblem snap;
    snap.routing = &r;
    snap.loads = r.multiply(truth);
    linalg::Vector prior(pairs, 1.0);
    KruithofOptions options;
    options.max_iterations = 5000;
    options.tolerance = 1e-10;
    const KruithofResult result = kruithof_general(snap, prior, options);
    EXPECT_TRUE(result.converged) << result.max_violation;
    const linalg::Vector pred = r.multiply(result.s);
    for (std::size_t l = 0; l < links; ++l) {
        EXPECT_NEAR(pred[l], snap.loads[l], 1e-7 * (1.0 + snap.loads[l]));
    }
}

TEST(KruithofGeneral, RejectsBadPrior) {
    const SmallNetwork net = tiny_network();
    EXPECT_THROW(
        kruithof_general(net.snapshot(), linalg::Vector(3, 1.0)),
        std::invalid_argument);
    EXPECT_THROW(
        kruithof_general(net.snapshot(),
                         linalg::Vector(net.truth.size(), 0.0)),
        std::invalid_argument);
}

}  // namespace
}  // namespace tme::core
