#include "core/fanout.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/qp.hpp"

namespace tme::core {

namespace {

// w_k[p] = te(src(p))[k]: per-pair source totals from the ingress rows.
linalg::Vector pair_source_totals(const topology::Topology& topo,
                                  const linalg::Vector& loads) {
    linalg::Vector w(topo.pair_count(), 0.0);
    for (std::size_t p = 0; p < topo.pair_count(); ++p) {
        const auto [src, dst] = topo.pair_nodes(p);
        (void)dst;
        w[p] = loads[topo.ingress_link(src)];
    }
    return w;
}

}  // namespace

FanoutResult fanout_estimate(const SeriesProblem& problem,
                             const FanoutOptions& options) {
    problem.validate_with_topology();
    const topology::Topology& topo = *problem.topo;
    const linalg::SparseMatrix& r = *problem.routing;
    const std::size_t pairs = r.cols();
    const std::size_t nodes = topo.pop_count();
    const std::size_t window = problem.loads.size();

    // Accumulate H = sum_k W_k G1 W_k (elementwise weighting of the Gram
    // matrix) and f = sum_k W_k R' t[k].
    const linalg::Matrix g1 = r.gram();
    linalg::Matrix h(pairs, pairs, 0.0);
    linalg::Vector f(pairs, 0.0);
    // sum_k w_k[p] w_k[q] accumulated in h first, then scaled by G1.
    for (std::size_t k = 0; k < window; ++k) {
        const linalg::Vector w = pair_source_totals(topo, problem.loads[k]);
        const linalg::Vector rt = r.multiply_transpose(problem.loads[k]);
        for (std::size_t p = 0; p < pairs; ++p) {
            f[p] += w[p] * rt[p];
            if (w[p] == 0.0) continue;
            for (std::size_t q = 0; q < pairs; ++q) {
                if (g1(p, q) != 0.0) h(p, q) += w[p] * w[q] * g1(p, q);
            }
        }
    }

    // Weak gravity-fanout tie-break (see FanoutOptions): alpha_gravity
    // for pair (n, m) is the destination's share of mean exit traffic.
    if (options.gravity_tiebreak_weight > 0.0) {
        linalg::Vector mean_loads(r.rows(), 0.0);
        for (const linalg::Vector& t : problem.loads) {
            linalg::axpy(1.0, t, mean_loads);
        }
        linalg::scale(1.0 / static_cast<double>(window), mean_loads);
        double total_exit = 0.0;
        for (std::size_t m = 0; m < nodes; ++m) {
            total_exit += mean_loads[topo.egress_link(m)];
        }
        double hmax = 0.0;
        for (std::size_t p = 0; p < pairs; ++p) {
            hmax = std::max(hmax, h(p, p));
        }
        const double eps =
            options.gravity_tiebreak_weight * std::max(hmax, 1e-300);
        for (std::size_t p = 0; p < pairs; ++p) {
            const auto [src, dst] = topo.pair_nodes(p);
            (void)src;
            const double alpha_gravity =
                total_exit > 0.0
                    ? mean_loads[topo.egress_link(dst)] / total_exit
                    : 0.0;
            h(p, p) += eps;
            f[p] += eps * alpha_gravity;
        }
    }

    // Equality constraints: per source, fanouts sum to one.
    linalg::Matrix e(nodes, pairs, 0.0);
    for (std::size_t p = 0; p < pairs; ++p) {
        const auto [src, dst] = topo.pair_nodes(p);
        (void)dst;
        e(src, p) = 1.0;
    }
    const linalg::Vector ones(nodes, 1.0);

    const linalg::EqQpNonnegResult qp =
        linalg::solve_eq_qp_nonneg(h, f, e, ones);

    FanoutResult result;
    result.fanouts = qp.x;
    result.equality_violation = qp.equality_violation;

    // Window-averaged demand estimate.
    result.mean_demands.assign(pairs, 0.0);
    for (std::size_t k = 0; k < window; ++k) {
        const linalg::Vector w = pair_source_totals(topo, problem.loads[k]);
        for (std::size_t p = 0; p < pairs; ++p) {
            result.mean_demands[p] += result.fanouts[p] * w[p];
        }
    }
    for (double& v : result.mean_demands) {
        v /= static_cast<double>(window);
    }
    return result;
}

linalg::Vector demands_from_fanout_snapshot(const SnapshotProblem& problem,
                                            const linalg::Vector& fanouts) {
    problem.validate_with_topology();
    if (fanouts.size() != problem.topo->pair_count()) {
        throw std::invalid_argument(
            "demands_from_fanout_snapshot: fanout size mismatch");
    }
    const linalg::Vector w = pair_source_totals(*problem.topo,
                                                problem.loads);
    return linalg::hadamard(fanouts, w);
}

}  // namespace tme::core
