// Scenario replay through the online engine: feeds a Scenario's full
// day of 5-minute samples into an OnlineEngine in time order, applying
// injected route changes and scoring every window against the
// scenario's ground-truth demands.
#pragma once

#include <map>
#include <vector>

#include "engine/engine.hpp"
#include "scenario/scenario.hpp"

namespace tme::engine {

struct ReplayOptions {
    /// Route changes injected mid-replay (sorted by at_sample; matrices
    /// must outlive the replay).
    std::vector<scenario::RouteChangeEvent> events;
    /// Score each window's estimates against the scenario demands.
    bool attach_truth = true;
};

struct ReplayResult {
    std::vector<WindowResult> windows;
    /// Mean of MethodRun::mre per method over all scored windows.
    std::map<Method, double> mean_mre;
};

/// Replays the scenario through the engine.  The engine must have been
/// constructed on the scenario's topology and routing matrix.
ReplayResult replay_scenario(OnlineEngine& engine,
                             const scenario::Scenario& sc,
                             const ReplayOptions& options = {});

}  // namespace tme::engine
