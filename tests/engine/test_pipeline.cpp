// Pipelined window fan-out: deterministic equivalence against the
// serial engine.  Every concurrency claim is pinned here: pipeline
// depths 1/2/4 reproduce the serial estimates to 1e-9 for every method
// on Europe and USA days with a mid-day reroute; the zero-thread
// fallback is bitwise identical; warm-start lineage produces exactly
// the serial engine's warm-run pattern (no stale-window seeding); and
// the depth bound (backpressure) is never exceeded.
#include "engine/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "core/route_change.hpp"
#include "engine/replay.hpp"

namespace tme::engine {
namespace {

/// Replay length for the full equivalence sweep.  Overridable so slow
/// instrumented runs (ThreadSanitizer CI) can shorten the day without
/// losing any of the concurrency coverage.
std::size_t sweep_samples() {
    if (const char* env = std::getenv("TME_PIPELINE_SAMPLES")) {
        const long v = std::atol(env);
        if (v >= 8) return static_cast<std::size_t>(v);
    }
    return 80;
}

scenario::Scenario day_scenario(scenario::Network network,
                                std::size_t samples) {
    scenario::Scenario sc = scenario::make_scenario(network);
    if (sc.demands.size() > samples) {
        sc.demands.resize(samples);
        sc.loads.resize(samples);
    }
    return sc;
}

EngineConfig all_method_config(std::size_t threads) {
    EngineConfig config;
    config.window_size = 8;
    config.min_series_window = 3;
    config.methods = {Method::gravity, Method::kruithof, Method::entropy,
                      Method::bayesian, Method::vardi,   Method::fanout};
    config.threads = threads;
    config.warm_start = true;
    // The equivalence claim is about scheduling, not solver depth: cap
    // the iterative solvers so whole-day sweeps stay fast.  Both sides
    // of every comparison share these options, so estimates still
    // match bit for bit.
    config.method_options.entropy.solver.max_iterations = 200;
    config.method_options.entropy.solver.tolerance = 1e-6;
    config.method_options.kruithof.max_iterations = 100;
    config.method_options.kruithof.tolerance = 1e-8;
    return config;
}

double worst_estimate_diff(const std::vector<WindowResult>& a,
                           const std::vector<WindowResult>& b) {
    EXPECT_EQ(a.size(), b.size());
    if (a.size() != b.size()) return 1e300;
    double worst = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k) {
        EXPECT_EQ(a[k].runs.size(), b[k].runs.size()) << "window " << k;
        if (a[k].runs.size() != b[k].runs.size()) return 1e300;
        EXPECT_EQ(a[k].epoch_fingerprint, b[k].epoch_fingerprint)
            << "window " << k;
        EXPECT_EQ(a[k].window_start_sample, b[k].window_start_sample);
        EXPECT_EQ(a[k].window_size, b[k].window_size);
        for (std::size_t m = 0; m < a[k].runs.size(); ++m) {
            const MethodRun& ra = a[k].runs[m];
            const MethodRun& rb = b[k].runs[m];
            EXPECT_EQ(ra.method, rb.method) << "window " << k;
            EXPECT_EQ(ra.estimate.size(), rb.estimate.size());
            if (ra.method != rb.method ||
                ra.estimate.size() != rb.estimate.size()) {
                return 1e300;
            }
            for (std::size_t p = 0; p < ra.estimate.size(); ++p) {
                worst = std::max(
                    worst, std::abs(ra.estimate[p] - rb.estimate[p]));
            }
            // MRE is a pure function of the estimate, so it must track.
            if (std::isnan(ra.mre)) {
                EXPECT_TRUE(std::isnan(rb.mre)) << "window " << k;
            } else {
                worst = std::max(worst, std::abs(ra.mre - rb.mre));
            }
        }
    }
    return worst;
}

TEST(PipelinedEngine, MatchesSerialEngineAtDepths124WithMidDayReroute) {
    for (const scenario::Network network :
         {scenario::Network::europe, scenario::Network::usa}) {
        const scenario::Scenario sc = day_scenario(network, sweep_samples());
        const std::size_t change_at = sc.demands.size() / 2;
        const linalg::SparseMatrix rerouted =
            core::perturbed_routing(sc.topo, 0.8, 5);
        ReplayOptions options;
        options.events = {{change_at, &rerouted}};

        OnlineEngine serial(sc.topo, sc.routing, all_method_config(0));
        const ReplayResult reference =
            replay_scenario(serial, sc, options);
        ASSERT_EQ(reference.windows.size(), sc.demands.size());
        ASSERT_EQ(serial.metrics().epoch_changes.load(), 1u);

        for (const std::size_t depth : {1u, 2u, 4u}) {
            PipelineOptions pipeline;
            pipeline.depth = depth;
            PipelinedEngine engine(sc.topo, sc.routing,
                                   all_method_config(2), pipeline);
            const ReplayResult result =
                replay_scenario(engine, sc, options);
            const double worst =
                worst_estimate_diff(reference.windows, result.windows);
            EXPECT_LE(worst, 1e-9)
                << sc.name << " depth " << depth;
            EXPECT_LE(engine.max_in_flight(), depth);

            // Warm-start lineage replicates the serial warm pattern
            // exactly: same number of runs and warm(-accepted) runs per
            // method, including the cold restart after the reroute — an
            // out-of-order completion seeding from a stale window would
            // break these counts.
            for (const auto& [method, stats] : serial.metrics().methods) {
                const auto it = engine.metrics().methods.find(method);
                ASSERT_NE(it, engine.metrics().methods.end());
                EXPECT_EQ(it->second.runs.load(), stats.runs.load())
                    << method_name(method) << " depth " << depth;
                EXPECT_EQ(it->second.warm_runs.load(),
                          stats.warm_runs.load())
                    << method_name(method) << " depth " << depth;
                EXPECT_EQ(it->second.warm_accepted_runs.load(),
                          stats.warm_accepted_runs.load())
                    << method_name(method) << " depth " << depth;
            }
        }
    }
}

TEST(PipelinedEngine, ZeroThreadFallbackIsBitwiseIdenticalToSerial) {
    const scenario::Scenario sc =
        day_scenario(scenario::Network::europe, 60);
    OnlineEngine serial(sc.topo, sc.routing, all_method_config(0));
    const ReplayResult reference = replay_scenario(serial, sc);

    PipelineOptions pipeline;
    pipeline.depth = 4;
    PipelinedEngine engine(sc.topo, sc.routing, all_method_config(0),
                           pipeline);
    const ReplayResult result = replay_scenario(engine, sc);
    // Inline execution: not just within tolerance — identical bits.
    EXPECT_EQ(worst_estimate_diff(reference.windows, result.windows), 0.0);
    // With zero worker threads every stage completes inside submit().
    EXPECT_EQ(engine.max_in_flight(), 1u);
}

TEST(PipelinedEngine, DepthOneIsStrictlySerialEvenWithWorkers) {
    const scenario::Scenario sc =
        day_scenario(scenario::Network::europe, 40);
    PipelineOptions pipeline;
    pipeline.depth = 1;
    PipelinedEngine engine(sc.topo, sc.routing, all_method_config(2),
                           pipeline);
    const ReplayResult result = replay_scenario(engine, sc);
    EXPECT_EQ(result.windows.size(), sc.demands.size());
    // Backpressure at depth 1 admits one window at a time,
    // deterministically, no matter how many workers exist.
    EXPECT_EQ(engine.max_in_flight(), 1u);
    // Results arrive in submission order.
    for (std::size_t k = 0; k < result.windows.size(); ++k) {
        EXPECT_EQ(result.windows[k].window_end_sample, k);
    }
}

TEST(PipelinedEngine, SetRoutingDrainsInFlightWindowsBeforeSwapping) {
    // Regression: in-flight windows alias the current routing matrix;
    // swapping to a new (even content-identical) object must drain
    // them first, because the caller may free the old object the
    // moment set_routing returns.
    const scenario::Scenario sc =
        day_scenario(scenario::Network::europe, 16);
    EngineConfig config = all_method_config(2);
    config.methods = {Method::gravity, Method::bayesian, Method::fanout};
    PipelineOptions pipeline;
    pipeline.depth = 4;
    PipelinedEngine engine(sc.topo, sc.routing, config, pipeline);
    for (std::size_t k = 0; k < 8; ++k) {
        engine.submit(k, sc.loads[k]);
    }
    {
        // Content-identical copy in a fresh object, as a caller
        // replacing its matrix would produce.
        const linalg::SparseMatrix copy = sc.routing;
        engine.set_routing(copy);
        // Every submitted window completed before the swap took hold.
        EXPECT_EQ(engine.metrics().windows_run.load(), 8u);
        for (std::size_t k = 8; k < 12; ++k) {
            engine.submit(k, sc.loads[k]);
        }
        const std::vector<WindowResult> results = engine.finish();
        EXPECT_EQ(results.size(), 12u);
        // Same fingerprint: no epoch change, window kept growing.
        EXPECT_EQ(engine.metrics().epoch_changes.load(), 0u);
        EXPECT_EQ(engine.metrics().window_flushes.load(), 0u);
        // Swap back (drains again) and rebind the window off `copy`
        // with one more submit while it is still alive; after that the
        // copy can die.
        engine.set_routing(sc.routing);
        engine.submit(12, sc.loads[12]);
        const std::vector<WindowResult> tail = engine.finish();
        EXPECT_EQ(tail.size(), 1u);
    }
    EXPECT_EQ(engine.metrics().window_flushes.load(), 0u);
    EXPECT_EQ(engine.metrics().windows_run.load(), 13u);
}

TEST(PipelinedEngine, SeriesOnlyConfigCompletesWarmupWindows) {
    // Regression: a window where EVERY scheduled method is a series
    // method still below min_series_window has zero stages — it must
    // complete (with an empty run list, like the serial scheduler)
    // instead of holding its pipeline slot forever.
    const scenario::Scenario sc =
        day_scenario(scenario::Network::europe, 8);
    EngineConfig config;
    config.window_size = 6;
    config.min_series_window = 3;
    config.methods = {Method::vardi, Method::fanout};
    config.threads = 2;
    PipelineOptions pipeline;
    pipeline.depth = 2;
    PipelinedEngine engine(sc.topo, sc.routing, config, pipeline);
    for (std::size_t k = 0; k < sc.loads.size(); ++k) {
        engine.submit(k, sc.loads[k]);
    }
    const std::vector<WindowResult> results = engine.finish();
    ASSERT_EQ(results.size(), sc.loads.size());
    for (std::size_t k = 0; k < results.size(); ++k) {
        if (k + 1 < config.min_series_window) {
            EXPECT_TRUE(results[k].runs.empty()) << "window " << k;
        } else {
            EXPECT_EQ(results[k].runs.size(), 2u) << "window " << k;
        }
    }
    EXPECT_EQ(engine.metrics().windows_run.load(), sc.loads.size());
}

TEST(PipelinedEngine, ReusableAfterFinishAndValidatesConfig) {
    const scenario::Scenario sc =
        day_scenario(scenario::Network::europe, 12);
    EngineConfig config = all_method_config(1);
    config.methods = {Method::gravity, Method::bayesian};
    PipelinedEngine engine(sc.topo, sc.routing, config);
    for (std::size_t k = 0; k < 6; ++k) {
        engine.submit(k, sc.loads[k]);
    }
    const std::vector<WindowResult> first = engine.finish();
    EXPECT_EQ(first.size(), 6u);
    // finish() clears the buffer; the engine keeps streaming.
    for (std::size_t k = 6; k < 12; ++k) {
        engine.submit(k, sc.loads[k]);
    }
    const std::vector<WindowResult> second = engine.finish();
    ASSERT_EQ(second.size(), 6u);
    EXPECT_EQ(second.front().window_end_sample, 6u);
    EXPECT_EQ(engine.metrics().windows_run.load(), 12u);

    // Config validation is typed, as for the scheduler.
    EngineConfig bad = config;
    bad.methods = {Method::gravity, Method::gravity};
    EXPECT_THROW(PipelinedEngine(sc.topo, sc.routing, bad),
                 SchedulerConfigException);
}

}  // namespace
}  // namespace tme::engine
