#include "engine/fleet.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "engine/clock.hpp"
#include "fault/injection.hpp"
#include "obs/trace.hpp"

namespace tme::engine {

using Clock = SteadyClock;

std::string FleetReport::summary() const {
    char line[256];
    std::string out;
    std::snprintf(line, sizeof(line),
                  "fleet: %zu jobs, %zu windows in %.3fs (%.1f windows/s)\n",
                  jobs.size(), total_windows, wall_seconds,
                  windows_per_second());
    out += line;
    std::snprintf(line, sizeof(line),
                  "shared epoch cache: %zu hits, %zu misses, %zu "
                  "evictions, %zu collisions\n",
                  cache_hits, cache_misses, cache_evictions,
                  cache_collisions);
    out += line;
    for (const FleetJobReport& job : jobs) {
        if (job.quarantined) {
            std::snprintf(line, sizeof(line),
                          "  %-16s QUARANTINED after %zu attempts: %s\n",
                          job.name.c_str(), job.attempts,
                          job.error.c_str());
        } else {
            std::snprintf(line, sizeof(line),
                          "  %-16s %5zu windows  %8.3fs  epochs=%zu\n",
                          job.name.c_str(), job.windows, job.seconds,
                          job.metrics.epoch_changes.load() + 1);
        }
        out += line;
    }
    return out;
}

FleetDriver::FleetDriver(const topology::Topology& topo, FleetConfig config)
    : topo_(&topo),
      config_(std::move(config)),
      cache_(std::make_shared<RoutingEpochCache>(
          config_.cache_capacity == 0 ? 4 : config_.cache_capacity)) {
    const SchedulerConfigCheck check =
        EstimatorScheduler::validate_methods(config_.engine.methods);
    if (!check) throw SchedulerConfigException(check);
}

void FleetDriver::run_job(const FleetJob& job, FleetJobReport& report,
                          std::size_t index) {
    // Job names are dynamic (span args are numeric), so the span
    // carries the job's input-order index; the report maps it to a name.
    obs::Span span("fleet/job", "job", static_cast<long long>(index));
    // Ambient fault scope = job name: a seeded schedule can poison
    // exactly this job (everything its worker thread executes) while
    // sibling jobs replay byte-identical to a fault-free run.
    fault::ScopedFaultScope fault_scope(job.name);
    const scenario::Scenario& sc = *job.scenario;
    const EngineConfig& cfg =
        job.engine.has_value() ? *job.engine : config_.engine;
    const Clock::time_point start = Clock::now();
    ReplayResult replay;
    if (config_.pipeline_depth > 1) {
        PipelineOptions pipeline;
        pipeline.depth = config_.pipeline_depth;
        // A zero-thread pipeline runs every stage inline (no overlap);
        // asking for depth > 1 means asking for overlap, so give the
        // engine a small worker pool unless the job sized one itself.
        EngineConfig piped = cfg;
        if (piped.threads == 0) piped.threads = 2;
        PipelinedEngine engine(sc.topo, sc.routing, piped, pipeline,
                               cache_);
        if (job.window_sink) engine.set_window_sink(job.window_sink);
        replay = replay_scenario(engine, sc, job.replay);
        report.metrics = engine.metrics();
    } else if (config_.async_ingest) {
        OnlineEngine engine(sc.topo, sc.routing, cfg, cache_);
        if (job.window_sink) engine.set_window_sink(job.window_sink);
        replay = replay_scenario_async(engine, sc, job.replay,
                                       config_.ingest_queue_capacity);
        report.metrics = engine.metrics();
    } else {
        OnlineEngine engine(sc.topo, sc.routing, cfg, cache_);
        if (job.window_sink) engine.set_window_sink(job.window_sink);
        replay = replay_scenario(engine, sc, job.replay);
        report.metrics = engine.metrics();
    }
    report.seconds = seconds_since(start);
    report.windows = replay.windows.size();
    span.arg("windows", static_cast<long long>(report.windows));
    report.mean_mre = std::move(replay.mean_mre);
    if (config_.keep_windows) {
        report.window_results = std::move(replay.windows);
    }
}

FleetReport FleetDriver::run(const std::vector<FleetJob>& jobs) {
    for (const FleetJob& job : jobs) {
        if (job.scenario == nullptr) {
            throw std::invalid_argument("FleetDriver::run: null scenario");
        }
        if (job.scenario->topo.link_count() != topo_->link_count() ||
            job.scenario->topo.pair_count() != topo_->pair_count()) {
            throw std::invalid_argument(
                "FleetDriver::run: scenario '" + job.name +
                "' does not match the fleet topology");
        }
        const SchedulerConfigCheck check =
            job.engine.has_value()
                ? EstimatorScheduler::validate_methods(job.engine->methods)
                : SchedulerConfigCheck{};
        if (!check) {
            throw SchedulerConfigException(check);
        }
    }

    FleetReport report;
    report.jobs.resize(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        report.jobs[i].name = jobs[i].name;
    }
    if (jobs.empty()) return report;

    std::size_t workers = config_.concurrency;
    if (workers == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        workers = hw == 0 ? 1 : hw;
    }
    if (workers > jobs.size()) workers = jobs.size();

    const Clock::time_point start = Clock::now();
    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;
    const std::size_t max_attempts =
        config_.quarantine
            ? (config_.max_job_attempts < 1 ? 1 : config_.max_job_attempts)
            : 1;
    auto worker = [&] {
        while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size()) return;
            FleetJobReport& rep = report.jobs[i];
            for (std::size_t attempt = 1; attempt <= max_attempts;
                 ++attempt) {
                // Each attempt starts from a blank report: a failed
                // attempt's partial metrics/windows must not leak into
                // the retry's (the engine itself is rebuilt by run_job).
                FleetJobReport fresh;
                fresh.name = rep.name;
                fresh.attempts = attempt;
                std::exception_ptr failure;
                try {
                    run_job(jobs[i], fresh, i);
                    fresh.completed = true;
                } catch (...) {
                    failure = std::current_exception();
                }
                if (!failure) {
                    rep = std::move(fresh);
                    break;
                }
                try {
                    std::rethrow_exception(failure);
                } catch (const std::exception& e) {
                    fresh.error = e.what();
                } catch (...) {
                    fresh.error = "unknown exception";
                }
                rep = std::move(fresh);
                if (!config_.quarantine) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error) first_error = failure;
                    break;
                }
                if (attempt == max_attempts) {
                    rep.quarantined = true;
                    break;
                }
                // Deterministic exponential backoff (no jitter): a
                // seeded fault schedule replays the same retry timeline
                // every run.
                if (config_.retry_backoff_seconds > 0.0) {
                    const double backoff =
                        config_.retry_backoff_seconds *
                        static_cast<double>(1ull << (attempt - 1));
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(backoff));
                }
            }
        }
    };
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        threads.emplace_back(worker);
    }
    for (std::thread& t : threads) t.join();
    report.wall_seconds = seconds_since(start);
    if (first_error) std::rethrow_exception(first_error);

    for (const FleetJobReport& job : report.jobs) {
        report.total_windows += job.windows;
        if (job.quarantined) ++report.quarantined_jobs;
    }
    report.cache_hits = cache_->hits();
    report.cache_misses = cache_->misses();
    report.cache_evictions = cache_->evictions();
    report.cache_collisions = cache_->collisions();
    return report;
}

}  // namespace tme::engine
