// Solver for KL-regularized least squares over the non-negative orthant:
//
//     minimize_{s >= 0}  ||A s - b||_2^2  +  w * D(s || p)
//
// where D(s||p) = sum_i [ s_i log(s_i/p_i) - s_i + p_i ] is the
// generalized Kullback-Leibler divergence from the prior p > 0.  This is
// the optimization problem behind the paper's Entropy approach
// (Zhang et al., eq. (6)), with w = sigma^{-2}.
//
// The solver is exponentiated gradient (mirror descent with entropic
// mirror map): s <- s .* exp(-eta * grad F(s)), with Armijo backtracking
// on the objective.  Iterates remain strictly positive, which keeps the
// KL term and its gradient well defined; coordinates can approach zero
// geometrically, which is the correct behaviour for demands the data says
// are absent.
//
// The data term is pure operator form: A enters only through A x / A' x
// sweeps over its nonzeros (A'A is never formed, and no allocation is
// quadratic in the pair count), and the product A s is carried across
// accepted steps, so one iteration costs O(nnz) per backtracking probe
// plus one O(nnz) transpose product.  This is what lets the Entropy
// estimator run at generated-backbone scale (9,900+ pairs) inside the
// per-window budget; see PERF.md.
#pragma once

#include <cstddef>

#include "linalg/budget.hpp"
#include "linalg/sparse.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/counters.hpp"

namespace tme::linalg {

struct EntropySolverOptions {
    std::size_t max_iterations = 4000;
    /// Relative first-order stationarity tolerance.
    double tolerance = 1e-9;
    /// Initial step size for backtracking (re-used across iterations).
    double initial_step = 1.0;
    /// Prior entries are clamped below at prior_floor * mean(prior) to
    /// keep log(s/p) finite for structurally-zero priors.
    double prior_floor = 1e-12;
    /// Optional initial iterate (warm start).  Entries are clamped to the
    /// same strictly-positive floor as the prior.  The objective is
    /// strictly convex for w > 0, so the minimizer is unchanged; a good
    /// initial point (e.g. the previous window's solution in a streaming
    /// setting) only shortens the iteration.  Not owned.
    const Vector* initial = nullptr;
    /// Optional iteration telemetry sink: on return the solver adds its
    /// accepted iterations to entropy_iterations and its backtracking
    /// objective evaluations to entropy_armijo_probes.  Written once at
    /// the return site only.  Not owned; must outlive the call.
    obs::SolverCounters* counters = nullptr;
    /// Optional cooperative deadline, polled once per outer iteration
    /// (before each gradient evaluation).  A tripped budget returns the
    /// current strictly-positive iterate — every accepted step only
    /// ever lowered the objective, so it is the best point visited —
    /// with outcome = budget_exhausted.  Not owned; must outlive the
    /// call.
    SolveBudget* budget = nullptr;
};

struct EntropySolverResult {
    Vector s;
    double objective = 0.0;
    std::size_t iterations = 0;
    bool converged = false;
    /// How the solve ended: converged, stopped by max_iterations, or
    /// cut short by the SolveBudget (see linalg/budget.hpp).
    SolveOutcome outcome = SolveOutcome::converged;
};

/// Minimizes ||A s - b||^2 + w * D(s || prior) for s >= 0.
/// Requires w >= 0 and prior with at least one positive entry.
EntropySolverResult kl_regularized_ls(const SparseMatrix& a, const Vector& b,
                                      const Vector& prior, double w,
                                      const EntropySolverOptions& options = {});

/// Generalized KL divergence D(s||p) = sum s_i log(s_i/p_i) - s_i + p_i.
/// Zero entries of s contribute p_i; requires p > 0 elementwise.
double generalized_kl(const Vector& s, const Vector& p);

}  // namespace tme::linalg
