// End-to-end trace export validation: a two-scenario fleet run under
// tracing must produce a Chrome trace_event JSON document that parses,
// and whose spans nest properly (within each thread, any two spans are
// either disjoint or one contains the other — the invariant Perfetto
// relies on to rebuild the stack from "X" complete events).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "engine/fleet.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace tme;

struct Event {
    std::string name;
    double ts = 0.0;
    double dur = 0.0;
    double end() const { return ts + dur; }
};

}  // namespace

TEST(TraceExport, FleetRunProducesBalancedChromeTrace) {
    if (!obs::tracing_compiled()) {
        GTEST_SKIP() << "tracing compiled out (TME_TRACING=0)";
    }

    // Two whole-day scenarios through the fleet driver under tracing.
    const scenario::Scenario sc1 =
        scenario::make_scenario(scenario::Network::europe, 1);
    scenario::Scenario sc2 =
        scenario::make_scenario(scenario::Network::europe, 2);
    constexpr std::size_t kSamples = 48;
    sc2.demands.resize(std::min(sc2.demands.size(), kSamples));
    sc2.loads.resize(sc2.demands.size());
    scenario::Scenario sc1_cut = sc1;
    sc1_cut.demands.resize(std::min(sc1_cut.demands.size(), kSamples));
    sc1_cut.loads.resize(sc1_cut.demands.size());

    engine::FleetConfig config;
    config.engine.methods = {engine::Method::gravity,
                             engine::Method::bayesian,
                             engine::Method::fanout};
    config.concurrency = 2;
    config.cache_capacity = 2;
    std::vector<engine::FleetJob> jobs(2);
    jobs[0].name = "trace-a";
    jobs[0].scenario = &sc1_cut;
    jobs[1].name = "trace-b";
    jobs[1].scenario = &sc2;

    obs::Tracer::instance().clear();
    {
        obs::ScopedTracing tracing(true);
        engine::FleetDriver driver(sc1_cut.topo, config);
        const engine::FleetReport report = driver.run(jobs);
        ASSERT_EQ(report.jobs.size(), 2u);
        EXPECT_GT(report.total_windows, 0u);
    }
    ASSERT_GT(obs::Tracer::instance().recorded(), 0u);

    const std::string path = ::testing::TempDir() + "tme_fleet_trace.json";
    ASSERT_TRUE(obs::Tracer::instance().write_chrome_trace(path));

    // The written file must re-parse as strict JSON.
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::optional<obs::Json> doc = obs::Json::parse(buffer.str());
    ASSERT_TRUE(doc.has_value()) << "trace JSON does not parse";
    std::remove(path.c_str());

    const obs::Json* events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    ASSERT_GT(events->size(), 0u);

    // Collect per-thread event lists and sanity-check every record.
    std::map<std::int64_t, std::vector<Event>> by_tid;
    bool saw_fleet_job = false;
    bool saw_ingest = false;
    bool saw_solver = false;
    for (const obs::Json& ev : events->items()) {
        ASSERT_TRUE(ev.is_object());
        const obs::Json* ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        EXPECT_EQ(ph->as_string(), "X");
        const obs::Json* name = ev.find("name");
        ASSERT_NE(name, nullptr);
        EXPECT_FALSE(name->as_string().empty());
        const obs::Json* ts = ev.find("ts");
        const obs::Json* dur = ev.find("dur");
        const obs::Json* tid = ev.find("tid");
        ASSERT_NE(ts, nullptr);
        ASSERT_NE(dur, nullptr);
        ASSERT_NE(tid, nullptr);
        EXPECT_GE(dur->as_double(), 0.0);
        Event e;
        e.name = name->as_string();
        e.ts = ts->as_double();
        e.dur = dur->as_double();
        by_tid[tid->as_int()].push_back(std::move(e));
        if (name->as_string() == "fleet/job") saw_fleet_job = true;
        if (name->as_string() == "engine/ingest") saw_ingest = true;
        if (name->as_string().rfind("solver/", 0) == 0) saw_solver = true;
    }
    EXPECT_TRUE(saw_fleet_job);
    EXPECT_TRUE(saw_ingest);
    EXPECT_TRUE(saw_solver);
    // Two concurrent jobs => at least two traced threads.
    EXPECT_GE(by_tid.size(), 2u);

    // Balanced nesting per thread: sorted by start (ties: longest
    // first), every span either starts after the enclosing span ends
    // or lies entirely within it.  RAII spans guarantee this in
    // nanoseconds; microsecond conversion is monotone, so exact
    // comparisons are safe.
    for (auto& [tid, list] : by_tid) {
        std::sort(list.begin(), list.end(),
                  [](const Event& a, const Event& b) {
                      if (a.ts != b.ts) return a.ts < b.ts;
                      return a.dur > b.dur;
                  });
        std::vector<const Event*> stack;
        for (const Event& e : list) {
            while (!stack.empty() && stack.back()->end() <= e.ts) {
                stack.pop_back();
            }
            if (!stack.empty()) {
                EXPECT_LE(e.end(), stack.back()->end())
                    << "span '" << e.name << "' overlaps '"
                    << stack.back()->name << "' on tid " << tid;
            }
            stack.push_back(&e);
        }
    }
}

TEST(TraceExport, DisabledTracerRecordsNothing) {
    obs::Tracer::instance().clear();
    ASSERT_FALSE(obs::Tracer::enabled());
    {
        obs::Span span("test/should_not_record", "k", 1);
        EXPECT_FALSE(span.active());
    }
    EXPECT_EQ(obs::Tracer::instance().recorded(), 0u);
}

TEST(TraceExport, ScopedTracingRestoresPreviousState) {
    ASSERT_FALSE(obs::Tracer::enabled());
    {
        obs::ScopedTracing on(true);
        EXPECT_EQ(obs::Tracer::enabled(), obs::tracing_compiled());
        {
            obs::ScopedTracing off(false);
            EXPECT_FALSE(obs::Tracer::enabled());
        }
        EXPECT_EQ(obs::Tracer::enabled(), obs::tracing_compiled());
    }
    EXPECT_FALSE(obs::Tracer::enabled());
}
