#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace tme::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
        if (r.size() != cols_) {
            throw std::invalid_argument("Matrix: ragged initializer list");
        }
        data_.insert(data_.end(), r.begin(), r.end());
    }
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

Matrix Matrix::diagonal(const Vector& d) {
    Matrix m(d.size(), d.size(), 0.0);
    for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
    return m;
}

double Matrix::at(std::size_t i, std::size_t j) const {
    if (i >= rows_ || j >= cols_) {
        throw std::out_of_range("Matrix::at: index out of range");
    }
    return (*this)(i, j);
}

Vector Matrix::row(std::size_t i) const {
    if (i >= rows_) throw std::out_of_range("Matrix::row: index out of range");
    return Vector(row_data(i), row_data(i) + cols_);
}

Vector Matrix::col(std::size_t j) const {
    if (j >= cols_) throw std::out_of_range("Matrix::col: index out of range");
    Vector v(rows_);
    for (std::size_t i = 0; i < rows_; ++i) v[i] = (*this)(i, j);
    return v;
}

void Matrix::set_row(std::size_t i, const Vector& v) {
    if (i >= rows_ || v.size() != cols_) {
        throw std::invalid_argument("Matrix::set_row: bad row or size");
    }
    std::copy(v.begin(), v.end(), row_data(i));
}

void Matrix::set_col(std::size_t j, const Vector& v) {
    if (j >= cols_ || v.size() != rows_) {
        throw std::invalid_argument("Matrix::set_col: bad column or size");
    }
    for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = v[i];
}

Matrix Matrix::transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    }
    return t;
}

double Matrix::frobenius_norm() const {
    double acc = 0.0;
    for (double v : data_) acc += v * v;
    return std::sqrt(acc);
}

double Matrix::max_abs() const {
    double acc = 0.0;
    for (double v : data_) acc = std::max(acc, std::abs(v));
    return acc;
}

std::string Matrix::to_string(int precision) const {
    std::ostringstream os;
    os.precision(precision);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t j = 0; j < cols_; ++j) {
            os << (*this)(i, j) << (j + 1 == cols_ ? "" : " ");
        }
        os << '\n';
    }
    return os.str();
}

Vector gemv(const Matrix& a, const Vector& x) {
    if (a.cols() != x.size()) {
        throw std::invalid_argument("gemv: dimension mismatch");
    }
    Vector y(a.rows(), 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        const double* row = a.row_data(i);
        double acc = 0.0;
        for (std::size_t j = 0; j < a.cols(); ++j) acc += row[j] * x[j];
        y[i] = acc;
    }
    return y;
}

Vector gemv_transpose(const Matrix& a, const Vector& x) {
    if (a.rows() != x.size()) {
        throw std::invalid_argument("gemv_transpose: dimension mismatch");
    }
    Vector y(a.cols(), 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        const double* row = a.row_data(i);
        const double xi = x[i];
        if (xi == 0.0) continue;
        for (std::size_t j = 0; j < a.cols(); ++j) y[j] += xi * row[j];
    }
    return y;
}

Matrix gemm(const Matrix& a, const Matrix& b) {
    if (a.cols() != b.rows()) {
        throw std::invalid_argument("gemm: dimension mismatch");
    }
    Matrix c(a.rows(), b.cols(), 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        const double* arow = a.row_data(i);
        double* crow = c.row_data(i);
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const double aik = arow[k];
            if (aik == 0.0) continue;
            const double* brow = b.row_data(k);
            for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
        }
    }
    return c;
}

Matrix gram(const Matrix& a) {
    const std::size_t n = a.cols();
    Matrix g(n, n, 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        const double* row = a.row_data(i);
        for (std::size_t p = 0; p < n; ++p) {
            const double rp = row[p];
            if (rp == 0.0) continue;
            double* grow = g.row_data(p);
            for (std::size_t q = p; q < n; ++q) grow[q] += rp * row[q];
        }
    }
    for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t q = 0; q < p; ++q) g(p, q) = g(q, p);
    }
    return g;
}

Matrix add(double alpha, const Matrix& a, double beta, const Matrix& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols()) {
        throw std::invalid_argument("add: dimension mismatch");
    }
    Matrix c(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) {
            c(i, j) = alpha * a(i, j) + beta * b(i, j);
        }
    }
    return c;
}

Matrix vstack(const Matrix& a, const Matrix& b) {
    if (a.cols() != b.cols()) {
        throw std::invalid_argument("vstack: column count mismatch");
    }
    Matrix c(a.rows() + b.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) c.set_row(i, a.row(i));
    for (std::size_t i = 0; i < b.rows(); ++i) c.set_row(a.rows() + i, b.row(i));
    return c;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols()) {
        throw std::invalid_argument("max_abs_diff: dimension mismatch");
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) {
            acc = std::max(acc, std::abs(a(i, j) - b(i, j)));
        }
    }
    return acc;
}

}  // namespace tme::linalg
