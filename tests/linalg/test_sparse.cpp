#include "linalg/sparse.hpp"

#include <gtest/gtest.h>

#include <random>

namespace tme::linalg {
namespace {

SparseMatrix small() {
    // [1 0 2]
    // [0 3 0]
    return SparseMatrix(2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
}

TEST(Sparse, BasicAccess) {
    const SparseMatrix m = small();
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.nonzeros(), 3u);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(m.at(1, 1), 3.0);
    EXPECT_THROW(m.at(2, 0), std::out_of_range);
}

TEST(Sparse, DuplicatesSummed) {
    SparseMatrix m(1, 1, {{0, 0, 1.0}, {0, 0, 2.5}});
    EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
    EXPECT_EQ(m.nonzeros(), 1u);
}

TEST(Sparse, ZeroSumDropped) {
    SparseMatrix m(1, 2, {{0, 0, 1.0}, {0, 0, -1.0}, {0, 1, 2.0}});
    EXPECT_EQ(m.nonzeros(), 1u);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(Sparse, OutOfRangeTripletThrows) {
    EXPECT_THROW(SparseMatrix(1, 1, {{1, 0, 1.0}}), std::invalid_argument);
}

TEST(Sparse, Multiply) {
    const SparseMatrix m = small();
    EXPECT_EQ(m.multiply({1.0, 1.0, 1.0}), (Vector{3.0, 3.0}));
    EXPECT_EQ(m.multiply_transpose({1.0, 2.0}), (Vector{1.0, 6.0, 2.0}));
    EXPECT_THROW(m.multiply({1.0}), std::invalid_argument);
}

TEST(Sparse, ToDenseRoundTrip) {
    const SparseMatrix m = small();
    const Matrix d = m.to_dense();
    const SparseMatrix back = SparseMatrix::from_dense(d);
    EXPECT_EQ(back.nonzeros(), m.nonzeros());
    EXPECT_DOUBLE_EQ(back.at(0, 2), 2.0);
}

TEST(Sparse, RowDense) {
    const SparseMatrix m = small();
    EXPECT_EQ(m.row_dense(0), (Vector{1.0, 0.0, 2.0}));
}

TEST(Sparse, SelectColumns) {
    const SparseMatrix m = small();
    const SparseMatrix sel = m.select_columns({2, 0});
    EXPECT_EQ(sel.cols(), 2u);
    EXPECT_DOUBLE_EQ(sel.at(0, 0), 2.0);  // old column 2
    EXPECT_DOUBLE_EQ(sel.at(0, 1), 1.0);  // old column 0
    EXPECT_THROW(m.select_columns({5}), std::out_of_range);
}

TEST(Sparse, SelectRows) {
    const SparseMatrix m = small();
    const SparseMatrix sel = m.select_rows({1});
    EXPECT_EQ(sel.rows(), 1u);
    EXPECT_DOUBLE_EQ(sel.at(0, 1), 3.0);
}

TEST(Sparse, ColumnNonzeros) {
    const SparseMatrix m = small();
    EXPECT_EQ(m.column_nonzeros(0), 1u);
    EXPECT_EQ(m.column_nonzeros(1), 1u);
}

TEST(Sparse, Vstack) {
    const SparseMatrix m = small();
    const SparseMatrix v = sparse_vstack(m, m);
    EXPECT_EQ(v.rows(), 4u);
    EXPECT_DOUBLE_EQ(v.at(2, 0), 1.0);
    EXPECT_DOUBLE_EQ(v.at(3, 1), 3.0);
}

class SparseProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SparseProperty, AgreesWithDenseOperations) {
    std::mt19937_64 rng(GetParam());
    std::uniform_real_distribution<double> dist(-2.0, 2.0);
    std::uniform_int_distribution<std::size_t> ri(0, 9);
    std::uniform_int_distribution<std::size_t> ci(0, 7);
    std::vector<Triplet> trips;
    for (int k = 0; k < 25; ++k) trips.push_back({ri(rng), ci(rng), dist(rng)});
    SparseMatrix s(10, 8, trips);
    const Matrix d = s.to_dense();

    Vector x(8);
    Vector y(10);
    for (double& v : x) v = dist(rng);
    for (double& v : y) v = dist(rng);

    const Vector sx = s.multiply(x);
    const Vector dx = gemv(d, x);
    for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(sx[i], dx[i], 1e-12);

    const Vector sty = s.multiply_transpose(y);
    const Vector dty = gemv_transpose(d, y);
    for (std::size_t j = 0; j < 8; ++j) EXPECT_NEAR(sty[j], dty[j], 1e-12);

    EXPECT_LT(max_abs_diff(s.gram(), gram(d)), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace tme::linalg
