// Runtime contract layer: typed, compile-time-removable invariant checks.
//
// The estimators in this repo fail by producing plausible-looking garbage,
// not by crashing — a NaN leaking out of a rank-deficient Cholesky or a
// malformed CSR structure flows silently through every downstream window.
// Contracts turn that class of bug into an immediate typed exception at
// the boundary where the invariant first broke.
//
// Two tiers, both statement-shaped and both removed entirely when
// contracts are compiled out (each site then costs literally nothing —
// the condition expression is never evaluated):
//
//   TME_CONTRACT(cond, msg)      cheap boundary predicates (size/shape
//                                checks, option sanity) — O(1).
//   TME_CONTRACT_DBG(cond, msg)  expensive scans (full-vector NaN/Inf
//                                sweeps, CSR structure walks) — O(n) or
//                                O(nnz); a separate switch so a build can
//                                keep the cheap tier in production.
//
// Statement forms for the reusable validators in check/validators.hpp
// (which throw ContractViolation themselves with precise diagnostics):
//
//   TME_CONTRACT_CHECK(check::finite(x, "nnls solution"));
//   TME_CONTRACT_DBG_CHECK(check::csr_structure(r.view(), "routing"));
//
// Compile-time gating:
//   * -DTME_CONTRACTS=0/1 forces the cheap tier off/on;
//   * -DTME_CONTRACTS_DBG=0/1 forces the expensive tier (never on while
//     the cheap tier is off);
//   * with neither defined, both tiers follow !defined(NDEBUG) — debug
//     builds check, release builds compile every site to nothing.
// The build system passes TME_CONTRACTS[_DBG]=1 in the default (test)
// configuration and 0 in the bench lane; bench_perf_solvers gates that
// the compiled-out macro really is free (<1% on a hot kernel) and that
// estimates are bitwise identical with contracts on and off.
//
// Runtime switch: when compiled in, contracts are armed by default and
// can be suspended process-wide (ScopedContractSuspend) so one binary
// can measure checked-vs-unchecked behaviour.  The suspension gate is a
// single relaxed atomic load per site, the same discipline as
// obs tracing.  See docs/STATIC_ANALYSIS.md.
#pragma once

#include <atomic>
#include <stdexcept>
#include <string>

#if defined(TME_CONTRACTS)
#if TME_CONTRACTS
#define TME_CONTRACTS_ENABLED 1
#else
#define TME_CONTRACTS_ENABLED 0
#endif
#elif defined(NDEBUG)
#define TME_CONTRACTS_ENABLED 0
#else
#define TME_CONTRACTS_ENABLED 1
#endif

#if !TME_CONTRACTS_ENABLED
// The expensive tier never runs without the cheap one.
#define TME_CONTRACTS_DBG_ENABLED 0
#elif defined(TME_CONTRACTS_DBG)
#if TME_CONTRACTS_DBG
#define TME_CONTRACTS_DBG_ENABLED 1
#else
#define TME_CONTRACTS_DBG_ENABLED 0
#endif
#else
#define TME_CONTRACTS_DBG_ENABLED TME_CONTRACTS_ENABLED
#endif

namespace tme::check {

/// Thrown when a contract fails.  Derives std::logic_error: a contract
/// violation is a programming/data-integrity error, not a recoverable
/// condition — tests assert on the type, production catches it at the
/// window boundary and quarantines the window.
class ContractViolation : public std::logic_error {
  public:
    ContractViolation(const char* condition, const char* file, int line,
                      const std::string& detail);

    const char* condition() const { return condition_; }
    const char* file() const { return file_; }
    int line() const { return line_; }

  private:
    const char* condition_;
    const char* file_;
    int line_;
};

namespace detail {

extern std::atomic<bool> g_contracts_armed;

[[noreturn]] void raise(const char* condition, const char* file, int line,
                        const std::string& detail);

}  // namespace detail

/// True when contract sites were compiled into this binary (cheap tier).
constexpr bool contracts_compiled() { return TME_CONTRACTS_ENABLED != 0; }

/// True when the expensive (DBG) tier was compiled in.
constexpr bool contracts_dbg_compiled() {
    return TME_CONTRACTS_DBG_ENABLED != 0;
}

/// Compiled-in contracts evaluate only while armed (default: armed).
inline bool contracts_armed() {
    return detail::g_contracts_armed.load(std::memory_order_relaxed);
}

/// Process-wide suspension, for measuring checked-vs-unchecked runs in
/// one binary (bench bitwise/overhead gates).  Not a security boundary;
/// nesting is not reference-counted — use one scope at a time.
class ScopedContractSuspend {
  public:
    ScopedContractSuspend() {
        detail::g_contracts_armed.store(false, std::memory_order_relaxed);
    }
    ~ScopedContractSuspend() {
        detail::g_contracts_armed.store(true, std::memory_order_relaxed);
    }
    ScopedContractSuspend(const ScopedContractSuspend&) = delete;
    ScopedContractSuspend& operator=(const ScopedContractSuspend&) = delete;
};

}  // namespace tme::check

#if TME_CONTRACTS_ENABLED
#define TME_CONTRACT(cond, msg)                                            \
    do {                                                                   \
        if (::tme::check::contracts_armed() && !(cond)) {                  \
            ::tme::check::detail::raise(#cond, __FILE__, __LINE__, (msg)); \
        }                                                                  \
    } while (0)
#define TME_CONTRACT_CHECK(validator_call)          \
    do {                                            \
        if (::tme::check::contracts_armed()) {      \
            validator_call;                         \
        }                                           \
    } while (0)
#else
#define TME_CONTRACT(cond, msg) static_cast<void>(0)
#define TME_CONTRACT_CHECK(validator_call) static_cast<void>(0)
#endif

#if TME_CONTRACTS_DBG_ENABLED
#define TME_CONTRACT_DBG(cond, msg) TME_CONTRACT(cond, msg)
#define TME_CONTRACT_DBG_CHECK(validator_call) \
    TME_CONTRACT_CHECK(validator_call)
#else
#define TME_CONTRACT_DBG(cond, msg) static_cast<void>(0)
#define TME_CONTRACT_DBG_CHECK(validator_call) static_cast<void>(0)
#endif
