#include "linalg/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace tme::linalg {
namespace {

TEST(Stats, MeanVariance) {
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(variance({1.0, 2.0, 3.0}), 1.0);
    EXPECT_DOUBLE_EQ(variance({5.0}), 0.0);
    EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Stats, SampleMean) {
    const Vector m = sample_mean({{1.0, 2.0}, {3.0, 4.0}});
    EXPECT_DOUBLE_EQ(m[0], 2.0);
    EXPECT_DOUBLE_EQ(m[1], 3.0);
    EXPECT_THROW(sample_mean({}), std::invalid_argument);
    EXPECT_THROW(sample_mean({{1.0}, {1.0, 2.0}}), std::invalid_argument);
}

TEST(Stats, SampleCovarianceDiagonal) {
    // Two coordinates, perfectly anti-correlated.
    const Matrix cov =
        sample_covariance({{1.0, -1.0}, {-1.0, 1.0}, {0.0, 0.0}});
    EXPECT_NEAR(cov(0, 0), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(cov(1, 1), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(cov(0, 1), -2.0 / 3.0, 1e-12);
    EXPECT_NEAR(cov(0, 1), cov(1, 0), 1e-15);
}

TEST(Stats, FitLineExact) {
    const LineFit fit = fit_line({0.0, 1.0, 2.0}, {1.0, 3.0, 5.0});
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, FitLineDegenerateX) {
    const LineFit fit = fit_line({1.0, 1.0}, {2.0, 4.0});
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
    EXPECT_DOUBLE_EQ(fit.intercept, 3.0);
}

TEST(Stats, ScalingLawRecoversParameters) {
    // var = 2.5 * mean^1.7 exactly.
    Vector means;
    Vector vars;
    for (double m = 1e-5; m < 1.0; m *= 3.0) {
        means.push_back(m);
        vars.push_back(2.5 * std::pow(m, 1.7));
    }
    const ScalingLawFit fit = fit_scaling_law(means, vars);
    EXPECT_NEAR(fit.phi, 2.5, 1e-9);
    EXPECT_NEAR(fit.c, 1.7, 1e-9);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
    EXPECT_EQ(fit.points_used, means.size());
}

TEST(Stats, ScalingLawSkipsNonpositive) {
    const ScalingLawFit fit =
        fit_scaling_law({0.0, 1.0, 2.0}, {1.0, 1.0, 2.0});
    EXPECT_EQ(fit.points_used, 2u);
}

TEST(Stats, PearsonPerfectCorrelation) {
    EXPECT_NEAR(pearson({1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}), 1.0, 1e-12);
    EXPECT_NEAR(pearson({1.0, 2.0, 3.0}, {-2.0, -4.0, -6.0}), -1.0, 1e-12);
}

TEST(Stats, SpearmanMonotonicTransformInvariance) {
    const Vector x{1.0, 2.0, 3.0, 4.0};
    const Vector y{1.0, 8.0, 27.0, 64.0};  // monotone in x
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Stats, SpearmanHandlesTies) {
    const Vector x{1.0, 1.0, 2.0};
    const Vector y{3.0, 3.0, 5.0};
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Stats, Quantile) {
    Vector x{4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(quantile(x, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(x, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantile(x, 0.5), 2.5);
    EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
    EXPECT_THROW(quantile(x, 1.5), std::invalid_argument);
}

class StatsProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(StatsProperty, CovarianceIsPsd) {
    std::mt19937_64 rng(GetParam());
    std::normal_distribution<double> dist(0.0, 1.0);
    std::vector<Vector> samples;
    for (int k = 0; k < 30; ++k) {
        Vector s(5);
        for (double& v : s) v = dist(rng);
        samples.push_back(s);
    }
    const Matrix cov = sample_covariance(samples);
    // x' C x >= 0 for random x.
    for (int trial = 0; trial < 10; ++trial) {
        Vector x(5);
        for (double& v : x) v = dist(rng);
        EXPECT_GE(dot(x, gemv(cov, x)), -1e-10);
    }
}

TEST_P(StatsProperty, PearsonBounded) {
    std::mt19937_64 rng(GetParam() + 50);
    std::normal_distribution<double> dist(0.0, 2.0);
    Vector x(40);
    Vector y(40);
    for (std::size_t i = 0; i < 40; ++i) {
        x[i] = dist(rng);
        y[i] = dist(rng);
    }
    const double r = pearson(x, y);
    EXPECT_GE(r, -1.0 - 1e-12);
    EXPECT_LE(r, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace tme::linalg
