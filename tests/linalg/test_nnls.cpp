#include "linalg/nnls.hpp"

#include <gtest/gtest.h>

#include <random>

namespace tme::linalg {
namespace {

TEST(Nnls, UnconstrainedInteriorSolution) {
    // Well-conditioned system whose LS solution is positive.
    Matrix a{{2.0, 0.0}, {0.0, 3.0}};
    const NnlsResult r = nnls(a, {4.0, 9.0});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 2.0, 1e-9);
    EXPECT_NEAR(r.x[1], 3.0, 1e-9);
    EXPECT_NEAR(r.residual_norm, 0.0, 1e-9);
}

TEST(Nnls, ActiveConstraintPinsToZero) {
    // LS solution would be negative in x1; NNLS must clamp it to 0.
    Matrix a{{1.0, 1.0}, {0.0, 1.0}};
    // Unconstrained solution of [x0+x1; x1] = [1; -1] is x1=-1, x0=2.
    const NnlsResult r = nnls(a, {1.0, -1.0});
    EXPECT_GE(r.x[0], 0.0);
    EXPECT_DOUBLE_EQ(r.x[1], 0.0);
    EXPECT_NEAR(r.x[0], 1.0, 1e-9);  // best fit with x1 = 0
}

TEST(Nnls, ZeroRhsGivesZero) {
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    const NnlsResult r = nnls(a, {0.0, 0.0});
    EXPECT_TRUE(r.converged);
    EXPECT_DOUBLE_EQ(r.x[0], 0.0);
    EXPECT_DOUBLE_EQ(r.x[1], 0.0);
}

TEST(Nnls, DimensionMismatchThrows) {
    EXPECT_THROW(nnls(Matrix(2, 2), Vector{1.0}), std::invalid_argument);
    EXPECT_THROW(nnls_gram(Matrix(2, 3), Vector{1.0, 2.0}),
                 std::invalid_argument);
}

TEST(Nnls, SparseAndDenseAgree) {
    Matrix a{{1.0, 0.0, 1.0}, {0.0, 1.0, 1.0}, {1.0, 1.0, 0.0}};
    const Vector b{2.0, 1.0, 1.5};
    const NnlsResult dense = nnls(a, b);
    const NnlsResult sparse = nnls(SparseMatrix::from_dense(a), b);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_NEAR(dense.x[i], sparse.x[i], 1e-9);
    }
}

// KKT conditions characterize the NNLS optimum:
//   x >= 0;  w = A'(b - Ax) <= 0 on the active set; w = 0 where x > 0.
class NnlsKkt : public ::testing::TestWithParam<unsigned> {};

TEST_P(NnlsKkt, SatisfiedOnRandomProblems) {
    std::mt19937_64 rng(GetParam());
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    const std::size_t m = 8 + GetParam() % 12;
    const std::size_t n = 4 + GetParam() % 10;
    Matrix a(m, n);
    Vector b(m);
    for (std::size_t i = 0; i < m; ++i) {
        b[i] = dist(rng);
        for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
    }
    const NnlsResult r = nnls(a, b);
    ASSERT_TRUE(r.converged);
    const Vector w = gemv_transpose(a, sub(b, gemv(a, r.x)));
    const double scale = 1.0 + nrm_inf(w);
    for (std::size_t j = 0; j < n; ++j) {
        EXPECT_GE(r.x[j], 0.0);
        if (r.x[j] > 1e-9) {
            EXPECT_NEAR(w[j], 0.0, 1e-6 * scale) << "stationarity at " << j;
        } else {
            EXPECT_LE(w[j], 1e-6 * scale) << "dual feasibility at " << j;
        }
    }
}

TEST_P(NnlsKkt, RecoversTrueNonnegativeSolution) {
    // Consistent system with known non-negative generator and full column
    // rank: NNLS must recover it (it's the unique LS optimum).
    std::mt19937_64 rng(GetParam() + 500);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    const std::size_t m = 20;
    const std::size_t n = 6;
    Matrix a(m, n);
    Vector truth(n);
    for (double& v : truth) v = dist(rng);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
    }
    const Vector b = gemv(a, truth);
    const NnlsResult r = nnls(a, b);
    for (std::size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(r.x[j], truth[j], 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NnlsKkt,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u, 11u, 12u));

TEST(NnlsGram, MatchesExplicitForm) {
    Matrix a{{1.0, 2.0}, {3.0, 1.0}, {0.5, 0.5}};
    const Vector b{1.0, 2.0, 0.5};
    const NnlsResult direct = nnls(a, b);
    const NnlsResult viagram =
        nnls_gram(gram(a), gemv_transpose(a, b), dot(b, b));
    EXPECT_NEAR(direct.x[0], viagram.x[0], 1e-9);
    EXPECT_NEAR(direct.x[1], viagram.x[1], 1e-9);
    EXPECT_NEAR(direct.residual_norm, viagram.residual_norm, 1e-8);
}

TEST(NnlsGram, RankDeficientGramDoesNotCrash) {
    // Gram of a rank-1 matrix: NNLS should still terminate with a
    // feasible, stationary point.
    Matrix a{{1.0, 2.0}, {2.0, 4.0}};
    const Vector b{1.0, 2.0};
    const NnlsResult r = nnls(a, b);
    EXPECT_LE(r.residual_norm, 1e-6);
    for (double v : r.x) EXPECT_GE(v, 0.0);
}

}  // namespace
}  // namespace tme::linalg
