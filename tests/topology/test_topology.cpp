#include "topology/topology.hpp"

#include <gtest/gtest.h>

namespace tme::topology {
namespace {

Topology two_pop() {
    Topology t;
    t.add_pop({"A", 0.0, 0.0, 1.0, PopRole::access});
    t.add_pop({"B", 1.0, 1.0, 2.0, PopRole::access});
    t.add_core_link_pair(0, 1, 1000.0, 5.0);
    return t;
}

TEST(Topology, PopAddsEdgeLinks) {
    const Topology t = two_pop();
    EXPECT_EQ(t.pop_count(), 2u);
    EXPECT_EQ(t.link_count(), 6u);  // 4 edge + 2 core
    EXPECT_EQ(t.core_link_count(), 2u);
    EXPECT_EQ(t.link(t.ingress_link(0)).kind, LinkKind::access_in);
    EXPECT_EQ(t.link(t.egress_link(1)).kind, LinkKind::access_out);
}

TEST(Topology, PairIndexRoundTrip) {
    Topology t;
    for (int i = 0; i < 5; ++i) {
        t.add_pop({"P" + std::to_string(i), 0.0, 0.0, 1.0,
                   PopRole::access});
    }
    EXPECT_EQ(t.pair_count(), 20u);
    for (std::size_t p = 0; p < t.pair_count(); ++p) {
        const auto [src, dst] = t.pair_nodes(p);
        EXPECT_NE(src, dst);
        EXPECT_EQ(t.pair_index(src, dst), p);
    }
    EXPECT_THROW(t.pair_index(1, 1), std::invalid_argument);
    EXPECT_THROW(t.pair_nodes(20), std::out_of_range);
}

TEST(Topology, CoreLinkValidation) {
    Topology t = two_pop();
    EXPECT_THROW(t.add_core_link(0, 0, 10.0, 1.0), std::invalid_argument);
    EXPECT_THROW(t.add_core_link(0, 5, 10.0, 1.0), std::invalid_argument);
    EXPECT_THROW(t.add_core_link(0, 1, -1.0, 1.0), std::invalid_argument);
    EXPECT_THROW(t.add_core_link(0, 1, 10.0, 0.0), std::invalid_argument);
}

TEST(Topology, OutgoingCore) {
    const Topology t = two_pop();
    ASSERT_EQ(t.outgoing_core(0).size(), 1u);
    EXPECT_EQ(t.link(t.outgoing_core(0)[0]).dst, 1u);
}

TEST(Topology, StronglyConnected) {
    Topology t = two_pop();
    EXPECT_TRUE(t.strongly_connected());
    t.add_pop({"C", 2.0, 2.0, 1.0, PopRole::access});
    EXPECT_FALSE(t.strongly_connected());
    t.add_core_link(1, 2, 100.0, 1.0);
    EXPECT_FALSE(t.strongly_connected());  // one-way only
    t.add_core_link(2, 0, 100.0, 1.0);
    EXPECT_TRUE(t.strongly_connected());
}

TEST(Topology, GreatCircleKnownDistance) {
    Pop london{"London", 51.51, -0.13, 1.0, PopRole::access};
    Pop paris{"Paris", 48.86, 2.35, 1.0, PopRole::access};
    const double km = great_circle_km(london, paris);
    EXPECT_GT(km, 300.0);
    EXPECT_LT(km, 400.0);  // ~344 km
    EXPECT_NEAR(great_circle_km(london, london), 0.0, 1e-9);
}

TEST(Topology, OutOfRangeAccessorsThrow) {
    const Topology t = two_pop();
    EXPECT_THROW(t.pop(2), std::out_of_range);
    EXPECT_THROW(t.link(100), std::out_of_range);
    EXPECT_THROW(t.ingress_link(5), std::out_of_range);
    EXPECT_THROW(t.egress_link(5), std::out_of_range);
    EXPECT_THROW(t.outgoing_core(5), std::out_of_range);
}

}  // namespace
}  // namespace tme::topology
