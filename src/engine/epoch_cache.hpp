// Routing-epoch cache: per-routing-matrix precomputations keyed by the
// content fingerprint of R.
//
// A backbone's routing matrix is piecewise constant in time — it changes
// only when the IGP reconverges or an operator reroutes LSPs — while
// load samples arrive every five minutes.  Everything derived purely
// from R is therefore cached per epoch and invalidated *exactly* when a
// route change produces a matrix with a different fingerprint.  The
// Gram matrix R'R is built eagerly (every scheduled method consumes
// it); the deeper derived data — Vardi's transformed Gram
// G1 + w*(G1 .* G1), the fanout equality-constraint structure, and
// reduced-problem factorizations for the direct-measurement workflow —
// is built lazily on first use and dies with the epoch.  A small LRU
// keeps the last few epochs alive so routing flaps that revert to a
// previous configuration hit the cache again.
//
// Fingerprints are 64-bit, so distinct routing matrices could in
// principle collide; acquire() therefore verifies cheap structural
// identity (rows / cols / nonzero count) on every fingerprint hit and
// treats a mismatch as a miss, so a collision can never silently serve
// the wrong Gram.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>

#include "core/fanout.hpp"
#include "core/tomo_direct.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace tme::engine {

/// Cached derived data for one routing configuration.  The epoch never
/// retains a pointer to the matrix it was built from — callers may
/// destroy their matrix the moment acquire() returns.
class RoutingEpoch {
  public:
    RoutingEpoch(std::uint64_t fingerprint, std::uint64_t serial,
                 const linalg::SparseMatrix& routing);

    std::uint64_t fingerprint() const { return fingerprint_; }

    /// Cache-unique identity of this epoch.  Two epochs built from
    /// distinct matrices always have distinct serials even when their
    /// 64-bit fingerprints collide — compare serials, not
    /// fingerprints, to decide whether "the epoch changed".
    std::uint64_t serial() const { return serial_; }

    /// Structural identity of the source matrix (collision screening).
    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t nonzeros() const { return nonzeros_; }

    /// Dense Gram matrix R'R (pairs x pairs); built eagerly.
    const linalg::Matrix& gram() const { return gram_; }

    /// Vardi's transformed Gram G1 + weight*(G1 .* G1), built lazily on
    /// first use and cached for that weight.  Calling with a different
    /// weight rebuilds in place, so concurrent callers must agree on
    /// the weight (the scheduler always does — it is a per-run option).
    /// The reference stays valid until the epoch is evicted or a
    /// different weight is requested.
    const linalg::Matrix& vardi_gram(double weight) const;

    /// Fanout equality-constraint structure (row pattern of E and the
    /// all-ones right-hand side), built lazily from the topology on
    /// first use.  The topology must match the routing matrix's pair
    /// count.  Valid until the epoch is evicted.
    const core::FanoutConstraints& fanout_constraints(
        const topology::Topology& topo) const;

    /// Reduced-problem factorization for the direct-measurement
    /// workflow: G_u + tau*I Cholesky for the unmeasured pair set
    /// `unknown`, sliced from the cached Gram.  Memoizes the most
    /// recent selection — the streaming pattern is a fixed measured set
    /// re-estimated window after window — and returns shared ownership
    /// so a factor stays usable across an eviction.
    std::shared_ptr<const core::ReducedFactor> reduced_factor(
        const std::vector<std::size_t>& unknown, double tau) const;

    /// Number of lazy derived-data builds performed so far (telemetry /
    /// tests; cache hits do not increment it).
    std::size_t derived_builds() const;

  private:
    struct Derived {
        std::mutex mutex;
        bool vardi_built = false;
        double vardi_weight = 0.0;
        linalg::Matrix vardi;
        bool fanout_built = false;
        core::FanoutConstraints fanout;
        std::shared_ptr<const core::ReducedFactor> reduced;
        std::size_t builds = 0;
    };

    std::uint64_t fingerprint_ = 0;
    std::uint64_t serial_ = 0;
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::size_t nonzeros_ = 0;
    linalg::Matrix gram_;
    std::unique_ptr<Derived> derived_;
};

class RoutingEpochCache {
  public:
    /// Content fingerprint function, injectable for collision tests;
    /// defaults to core::routing_fingerprint.
    using Fingerprint =
        std::function<std::uint64_t(const linalg::SparseMatrix&)>;

    explicit RoutingEpochCache(std::size_t capacity = 4,
                               Fingerprint fingerprint = {});

    /// Returns the epoch for `routing`, building it on a miss.  A
    /// fingerprint hit additionally requires structural identity
    /// (rows/cols/nnz); a colliding entry is left in place and a fresh
    /// epoch is built.  The reference stays valid until `capacity`
    /// further distinct epochs have been acquired; no pointer to
    /// `routing` is retained past this call.
    const RoutingEpoch& acquire(const linalg::SparseMatrix& routing);

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return entries_.size(); }
    std::size_t hits() const { return hits_; }
    std::size_t misses() const { return misses_; }
    std::size_t evictions() const { return evictions_; }
    /// Fingerprint hits rejected by the structural-identity check.
    std::size_t collisions() const { return collisions_; }

  private:
    std::size_t capacity_;
    Fingerprint fingerprint_;
    std::uint64_t next_serial_ = 0;
    std::list<RoutingEpoch> entries_;  // most recently used first
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
    std::size_t evictions_ = 0;
    std::size_t collisions_ = 0;
};

}  // namespace tme::engine
