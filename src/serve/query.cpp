#include "serve/query.hpp"

#include <algorithm>
#include <numeric>

namespace tme::serve {

const char* query_status_name(QueryStatus status) {
    switch (status) {
        case QueryStatus::ok: return "ok";
        case QueryStatus::empty_store: return "empty_store";
        case QueryStatus::version_unknown: return "version_unknown";
        case QueryStatus::version_retired: return "version_retired";
        case QueryStatus::method_not_served: return "method_not_served";
        case QueryStatus::pair_out_of_range: return "pair_out_of_range";
        case QueryStatus::zero_k: return "zero_k";
        case QueryStatus::invalid_range: return "invalid_range";
        case QueryStatus::shape_mismatch: return "shape_mismatch";
    }
    return "unknown";
}

QueryResult<double> point(const EstimateSnapshot& snap, engine::Method m,
                          std::size_t pair) {
    const MethodEstimate* me = snap.find(m);
    if (me == nullptr) return {QueryStatus::method_not_served, 0.0};
    if (pair >= me->estimate.size()) {
        return {QueryStatus::pair_out_of_range, 0.0};
    }
    return {QueryStatus::ok, me->estimate[pair]};
}

QueryResult<std::vector<HeavyHitter>> top_k(const EstimateSnapshot& snap,
                                            engine::Method m,
                                            std::size_t k) {
    if (k == 0) return {QueryStatus::zero_k, {}};
    const MethodEstimate* me = snap.find(m);
    if (me == nullptr) return {QueryStatus::method_not_served, {}};
    const linalg::Vector& est = me->estimate;
    const std::size_t n = est.size();
    if (k > n) k = n;
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    const auto heavier = [&est](std::size_t a, std::size_t b) {
        if (est[a] != est[b]) return est[a] > est[b];
        return a < b;  // deterministic tie-break: lower pair first
    };
    // Partial select: everything at/above the k-th heaviest moves to
    // the front in O(n), then only that prefix is sorted.
    if (k < n) {
        std::nth_element(idx.begin(),
                         idx.begin() + static_cast<std::ptrdiff_t>(k - 1),
                         idx.end(), heavier);
    }
    std::sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
              heavier);
    std::vector<HeavyHitter> out;
    out.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
        out.push_back({idx[i], est[idx[i]]});
    }
    return {QueryStatus::ok, std::move(out)};
}

QueryResult<linalg::Vector> delta(const EstimateSnapshot& newer,
                                  const EstimateSnapshot& older,
                                  engine::Method m) {
    const MethodEstimate* a = newer.find(m);
    const MethodEstimate* b = older.find(m);
    if (a == nullptr || b == nullptr) {
        return {QueryStatus::method_not_served, {}};
    }
    if (a->estimate.size() != b->estimate.size()) {
        return {QueryStatus::shape_mismatch, {}};
    }
    linalg::Vector out(a->estimate.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = a->estimate[i] - b->estimate[i];
    }
    return {QueryStatus::ok, std::move(out)};
}

}  // namespace tme::serve
