// Figure 8: worst-case bounds on demands (two LPs per OD pair).
#include "bench_common.hpp"

#include "core/wcb.hpp"

namespace {

void bounds(const tme::scenario::Scenario& sc) {
    using namespace tme;
    const core::SnapshotProblem snap = sc.busy_snapshot();
    const linalg::Vector& truth = sc.busy_snapshot_demands();
    const core::WcbResult r = core::worst_case_bounds(snap);
    std::printf("\n%s: %zu LPs, %zu simplex iterations, %zu failures\n",
                sc.name.c_str(), r.lps_solved, r.simplex_iterations,
                r.failures);

    // Bound tightness distribution.
    std::size_t exact = 0;
    std::size_t nontrivial_lower = 0;
    double width_sum = 0.0;
    for (std::size_t p = 0; p < truth.size(); ++p) {
        const double width = r.upper[p] - r.lower[p];
        if (width < 1e-9) ++exact;
        if (r.lower[p] > 1e-12) ++nontrivial_lower;
        width_sum += width;
    }
    std::printf("exactly determined demands: %zu of %zu\n", exact,
                truth.size());
    std::printf("demands with non-zero lower bound: %zu\n",
                nontrivial_lower);
    std::printf("mean bound width (normalized): %.4f\n",
                width_sum / static_cast<double>(truth.size()));

    // Largest demands: show bounds vs truth (paper: many large EU
    // demands have relatively large bounds).
    const double thr = core::threshold_for_coverage(truth, 0.9);
    const auto big = core::demands_above(truth, thr);
    std::printf("%22s %10s %10s %10s %10s\n", "pair", "true", "lower",
                "upper", "rel.width");
    for (std::size_t i = 0; i < std::min<std::size_t>(12, big.size());
         ++i) {
        const std::size_t p = big[i];
        const auto [src, dst] = sc.topo.pair_nodes(p);
        std::printf("%10s->%-10s %10.5f %10.5f %10.5f %10.2f\n",
                    sc.topo.pop(src).name.c_str(),
                    sc.topo.pop(dst).name.c_str(), truth[p], r.lower[p],
                    r.upper[p], (r.upper[p] - r.lower[p]) / truth[p]);
    }
}

}  // namespace

int main() {
    tme::bench::header(
        "Figure 8 - worst-case bounds on demands",
        "Fig. 8: most bounds non-trivial but relatively loose; few "
        "demands measured exactly",
        "lower <= true <= upper always; some large demands have wide "
        "relative bounds");
    bounds(tme::bench::europe());
    bounds(tme::bench::usa());
    return 0;
}
