#include "serve/publish.hpp"

namespace tme::serve {

engine::WindowSink make_publisher(EstimateStore& store) {
    return [&store](const engine::WindowResult& window) {
        store.publish(EstimateSnapshot::from_window(window));
    };
}

}  // namespace tme::serve
