// Common problem descriptions shared by all estimators.
//
// Estimation always sees the network through (R, t): the routing matrix
// and link loads (paper eq. (2), t = R s).  Snapshot methods (gravity,
// Kruithof, Bayesian, Entropy, worst-case bounds) take a single load
// vector; time-series methods (Vardi, fanout estimation) take a window
// of load vectors.
#pragma once

#include <vector>

#include "linalg/sparse.hpp"
#include "linalg/vector_ops.hpp"
#include "topology/topology.hpp"

namespace tme::core {

/// One snapshot of the estimation problem.
///
/// `topo` may be null for estimators that work purely from (R, t)
/// (Bayesian, Entropy, Kruithof-general, worst-case bounds, and the
/// reduced problems of tomo_direct); methods that need edge-link or PoP
/// structure (gravity, fanout) call validate_with_topology().
struct SnapshotProblem {
    const topology::Topology* topo = nullptr;
    const linalg::SparseMatrix* routing = nullptr;
    linalg::Vector loads;  ///< t, length = routing->rows()

    /// Checks routing/loads consistency only.
    void validate() const;

    /// Additionally checks topo is present and matches the routing.
    void validate_with_topology() const;
};

/// A window of K load measurements.
struct SeriesProblem {
    const topology::Topology* topo = nullptr;
    const linalg::SparseMatrix* routing = nullptr;
    std::vector<linalg::Vector> loads;  ///< t[k], k = 0..K-1

    void validate() const;
    void validate_with_topology() const;

    /// Snapshot view of sample k.
    SnapshotProblem snapshot(std::size_t k) const;

    // Incremental sliding-window maintenance (used by the online engine):
    // appending the newest sample and dropping the oldest keeps the
    // window chronological without reassembling the whole problem.

    /// Appends the newest load vector.  Throws if the size does not match
    /// the routing row count (when a routing matrix is set).
    void push_load(linalg::Vector t);

    /// Drops the oldest load vector (O(K) pointer moves, no copies).
    /// Throws std::logic_error on an empty window.
    void pop_front_load();
};

}  // namespace tme::core
