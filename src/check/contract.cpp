#include "check/contract.hpp"

namespace tme::check {

namespace {

std::string format_message(const char* condition, const char* file, int line,
                           const std::string& detail) {
    std::string out = "contract violated: ";
    out += detail;
    out += " [";
    out += condition;
    out += "] at ";
    out += file;
    out += ':';
    out += std::to_string(line);
    return out;
}

}  // namespace

ContractViolation::ContractViolation(const char* condition, const char* file,
                                     int line, const std::string& detail)
    : std::logic_error(format_message(condition, file, line, detail)),
      condition_(condition),
      file_(file),
      line_(line) {}

namespace detail {

std::atomic<bool> g_contracts_armed{true};

void raise(const char* condition, const char* file, int line,
           const std::string& detail) {
    throw ContractViolation(condition, file, line, detail);
}

}  // namespace detail

}  // namespace tme::check
