// Bounded producer/consumer queue decoupling sample production
// (scenario::replay, a telemetry poller) from estimation.
//
// The producer pushes load samples as fast as it can generate them; the
// consumer drains them into an engine.  The bound provides backpressure:
// when estimation falls behind, push() blocks instead of letting the
// queue grow without limit, so a whole-day replay never holds more than
// `capacity` samples in memory.  close() lets the producer signal
// end-of-stream; pop() then drains the remaining items and returns
// nullopt exactly once the queue is both closed and empty.
//
// The queue is deliberately order-preserving and single-lane (FIFO):
// sample order is load-bearing for the sliding window (strictly
// increasing indices) and for warm-start lineage, so decoupling must
// never reorder.  Multiple producers/consumers are safe but share the
// one FIFO.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "engine/clock.hpp"
#include "linalg/sparse.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/histogram.hpp"

namespace tme::engine {

/// Typed end-of-stream signal: thrown by producers (e.g. the
/// replay_scenario_async generator thread) when push() reports the
/// queue closed under them — a consumer-side abort, not a data error.
/// Derives std::runtime_error so generic handlers still catch it, while
/// callers that care can distinguish "the consumer hung up" from a real
/// failure.
class QueueClosedError : public std::runtime_error {
  public:
    QueueClosedError() : std::runtime_error("ingest queue closed") {}
    explicit QueueClosedError(const std::string& what)
        : std::runtime_error(what) {}
};

/// One ingestion work item: a load sample plus the routing matrix it
/// was measured under (so a route change travels *in-band*, in sample
/// order — the consumer applies it exactly between the right samples).
/// The routing matrix is not owned and must outlive consumption.
struct IngestItem {
    std::size_t sample = 0;
    linalg::Vector loads;
    bool gap = false;
    const linalg::SparseMatrix* routing = nullptr;
};

class IngestQueue {
  public:
    explicit IngestQueue(std::size_t capacity) : capacity_(capacity) {
        if (capacity_ == 0) {
            throw std::invalid_argument("IngestQueue: zero capacity");
        }
    }

    IngestQueue(const IngestQueue&) = delete;
    IngestQueue& operator=(const IngestQueue&) = delete;

    /// Wires the queue's wait times into caller-owned histograms: the
    /// push sink receives one sample per producer stall on a full queue
    /// (backpressure), the pop sink one per consumer wait on an empty
    /// one.  Sinks must outlive the queue; histograms are internally
    /// atomic, so an engine's metrics work directly.  Non-blocking
    /// operations record nothing, keeping the histograms pure wait time.
    void set_wait_sinks(obs::LatencyHistogram* push_wait,
                        obs::LatencyHistogram* pop_wait) {
        push_wait_ = push_wait;
        pop_wait_ = pop_wait;
    }

    /// Blocks while the queue is full (backpressure).  Returns false —
    /// dropping the item — iff the queue was closed, so a consumer-side
    /// abort unblocks a stuck producer instead of deadlocking it.
    bool push(IngestItem item) {
        std::unique_lock<std::mutex> lock(mutex_);
        if (items_.size() >= capacity_ && !closed_) {
            ++producer_blocks_;
            const SteadyClock::time_point wait_start = SteadyClock::now();
            space_cv_.wait(lock, [this] {
                return items_.size() < capacity_ || closed_;
            });
            if (push_wait_ != nullptr) {
                push_wait_->record(seconds_since(wait_start));
            }
        }
        if (closed_) return false;
        items_.push_back(std::move(item));
        if (items_.size() > max_depth_) max_depth_ = items_.size();
        lock.unlock();
        ready_cv_.notify_one();
        return true;
    }

    /// Blocks while the queue is empty and not closed.  Returns nullopt
    /// once the queue is closed AND drained — remaining items are
    /// always delivered first.
    std::optional<IngestItem> pop() {
        std::unique_lock<std::mutex> lock(mutex_);
        if (items_.empty() && !closed_) {
            const SteadyClock::time_point wait_start = SteadyClock::now();
            ready_cv_.wait(lock,
                           [this] { return !items_.empty() || closed_; });
            if (pop_wait_ != nullptr) {
                pop_wait_->record(seconds_since(wait_start));
            }
        }
        if (items_.empty()) return std::nullopt;  // closed and drained
        IngestItem item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        space_cv_.notify_one();
        return item;
    }

    /// Ends the stream: blocked producers return false, and consumers
    /// see nullopt after draining.  Idempotent.
    void close() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        ready_cv_.notify_all();
        space_cv_.notify_all();
    }

    bool closed() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }
    std::size_t size() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }
    std::size_t capacity() const { return capacity_; }
    /// High-water mark of the queue depth (bounded by capacity).
    std::size_t max_depth() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return max_depth_;
    }
    /// Times a push found the queue full and had to wait.
    std::size_t producer_blocks() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return producer_blocks_;
    }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable ready_cv_;
    std::condition_variable space_cv_;
    std::deque<IngestItem> items_;
    bool closed_ = false;
    std::size_t max_depth_ = 0;
    std::size_t producer_blocks_ = 0;
    obs::LatencyHistogram* push_wait_ = nullptr;  ///< producer stalls
    obs::LatencyHistogram* pop_wait_ = nullptr;   ///< consumer waits
};

}  // namespace tme::engine
