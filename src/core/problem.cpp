#include "core/problem.hpp"

#include <stdexcept>

#include "check/contract.hpp"
#include "check/validators.hpp"

namespace tme::core {

void SnapshotProblem::validate() const {
    if (routing == nullptr) {
        throw std::invalid_argument("SnapshotProblem: null routing");
    }
    if (loads.size() != routing->rows()) {
        throw std::invalid_argument("SnapshotProblem: load vector size");
    }
    // Every estimator funnels through validate(), so this is the single
    // entry boundary of the whole method suite: a malformed routing CSR
    // or a NaN load sample is caught before any solver runs on it.
    TME_CONTRACT_DBG_CHECK(
        check::csr_structure(*routing, "SnapshotProblem routing"));
    TME_CONTRACT_DBG_CHECK(
        check::finite(loads, "SnapshotProblem loads"));
}

void SnapshotProblem::validate_with_topology() const {
    validate();
    if (topo == nullptr) {
        throw std::invalid_argument("SnapshotProblem: null topology");
    }
    if (routing->rows() != topo->link_count() ||
        routing->cols() != topo->pair_count()) {
        throw std::invalid_argument(
            "SnapshotProblem: routing does not match topology");
    }
}

void SeriesProblem::validate() const {
    if (routing == nullptr) {
        throw std::invalid_argument("SeriesProblem: null routing");
    }
    if (loads.empty()) {
        throw std::invalid_argument("SeriesProblem: empty load window");
    }
    for (const linalg::Vector& t : loads) {
        if (t.size() != routing->rows()) {
            throw std::invalid_argument("SeriesProblem: load vector size");
        }
        TME_CONTRACT_DBG_CHECK(
            check::finite(t, "SeriesProblem load sample"));
    }
    TME_CONTRACT_DBG_CHECK(
        check::csr_structure(*routing, "SeriesProblem routing"));
}

void SeriesProblem::validate_with_topology() const {
    validate();
    if (topo == nullptr) {
        throw std::invalid_argument("SeriesProblem: null topology");
    }
    if (routing->rows() != topo->link_count() ||
        routing->cols() != topo->pair_count()) {
        throw std::invalid_argument(
            "SeriesProblem: routing does not match topology");
    }
}

void SeriesProblem::push_load(linalg::Vector t) {
    if (routing != nullptr && t.size() != routing->rows()) {
        throw std::invalid_argument("SeriesProblem::push_load: size");
    }
    loads.push_back(std::move(t));
}

void SeriesProblem::pop_front_load() {
    if (loads.empty()) {
        throw std::logic_error("SeriesProblem::pop_front_load: empty");
    }
    loads.erase(loads.begin());
}

SnapshotProblem SeriesProblem::snapshot(std::size_t k) const {
    if (k >= loads.size()) {
        throw std::out_of_range("SeriesProblem::snapshot");
    }
    return SnapshotProblem{topo, routing, loads[k]};
}

}  // namespace tme::core
