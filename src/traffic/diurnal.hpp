// Diurnal traffic profiles (paper Fig. 1).
//
// Total network traffic follows a clear 24-hour cycle with a pronounced
// busy period; the European and American subnetworks peak at different
// GMT hours, overlapping around 18:00 GMT.  The profile here is a
// raised-cosine day shape sharpened to produce a distinct busy plateau,
// evaluated at 5-minute timestamps.
#pragma once

#include <cstddef>

namespace tme::traffic {

struct DiurnalProfile {
    /// Minute of day (GMT) where the profile peaks.
    double peak_minute = 18.0 * 60.0;
    /// Fraction of the peak that remains at the nightly trough (0..1).
    double trough_fraction = 0.35;
    /// Sharpness exponent; larger values concentrate the busy period.
    double sharpness = 2.0;
};

/// Profile value in (0, 1] at a given minute of day (wraps modulo 1440).
double diurnal_factor(const DiurnalProfile& profile, double minute_of_day);

/// Number of 5-minute samples in 24 hours (288).
inline constexpr std::size_t samples_per_day = 288;

/// Minute-of-day of sample k (k * 5).
inline double sample_minute(std::size_t k) { return 5.0 * static_cast<double>(k); }

}  // namespace tme::traffic
