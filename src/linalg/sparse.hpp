// Compressed-sparse-row matrix.
//
// Routing matrices R (links x OD-pairs) are very sparse: a column has one
// nonzero per link on the OD pair's path.  The estimation solvers need
// R*x, R'*x, Gram products R'R, and row/column slicing; all are provided
// here without densifying.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace tme::linalg {

/// One nonzero entry for triplet-based construction.
struct Triplet {
    std::size_t row = 0;
    std::size_t col = 0;
    double value = 0.0;
};

/// Raw-pointer CSR view for tight solver loops: no bounds checks, no
/// vector indirection, stable for the lifetime of the SparseMatrix it
/// was taken from.  Row i's nonzeros live at [offsets[i], offsets[i+1])
/// in `col_index` / `values`.
struct CsrView {
    std::size_t rows = 0;
    std::size_t cols = 0;
    const std::size_t* offsets = nullptr;   // rows + 1 entries
    const std::size_t* col_index = nullptr;
    const double* values = nullptr;
};

/// Immutable CSR sparse matrix.  Duplicate triplets are summed.
class SparseMatrix {
  public:
    SparseMatrix() = default;

    /// Builds from triplets; entries that sum to exactly zero are kept out.
    SparseMatrix(std::size_t rows, std::size_t cols,
                 std::vector<Triplet> triplets);

    static SparseMatrix from_dense(const Matrix& dense,
                                   double drop_tol = 0.0);

    /// Adopts ready-made CSR arrays (offsets.size() == rows + 1, column
    /// indices sorted strictly ascending within each row).  O(nnz)
    /// validation, no re-sorting — the constructor for kernels that
    /// produce CSR output directly (gram_sparse_csr).  Throws
    /// std::invalid_argument on malformed input.
    static SparseMatrix from_csr(std::size_t rows, std::size_t cols,
                                 std::vector<std::size_t> offsets,
                                 std::vector<std::size_t> col_indices,
                                 std::vector<double> values);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t nonzeros() const { return values_.size(); }

    /// y = A x.
    Vector multiply(const Vector& x) const;

    /// y = A x into a caller-owned buffer (resized to rows()).  Exactly
    /// the arithmetic of multiply(), minus the per-call allocation —
    /// the iterative projection solvers (MART, entropy) call this every
    /// sweep, where a fresh rows()-sized vector per call is pure churn.
    void multiply_into(const Vector& x, Vector& y) const;

    /// y = A' x.
    Vector multiply_transpose(const Vector& x) const;

    /// y = A' x into a caller-owned buffer (resized to cols()).
    void multiply_transpose_into(const Vector& x, Vector& y) const;

    /// Dense Gram matrix G = A' A (cols x cols).
    Matrix gram() const;

    /// Dense copy.
    Matrix to_dense() const;

    /// Entry lookup (O(row nnz)); returns 0 for structural zeros.
    double at(std::size_t i, std::size_t j) const;

    /// Copies row i into a dense vector of length cols().
    Vector row_dense(std::size_t i) const;

    /// New matrix keeping only the given columns (in the given order).
    SparseMatrix select_columns(const std::vector<std::size_t>& cols) const;

    /// New matrix keeping only the given rows (in the given order).
    SparseMatrix select_rows(const std::vector<std::size_t>& rows) const;

    /// Number of nonzeros in column j (O(nnz) scan).
    std::size_t column_nonzeros(std::size_t j) const;

    // Raw CSR access for tight solver loops.
    const std::vector<std::size_t>& row_offsets() const { return offsets_; }
    const std::vector<std::size_t>& column_indices() const { return cols_idx_; }
    const std::vector<double>& values() const { return values_; }

    /// Pointer-level CSR view (valid while this matrix is alive).
    CsrView view() const {
        return {rows_, cols_, offsets_.data(), cols_idx_.data(),
                values_.data()};
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<std::size_t> offsets_;   // rows_+1 entries
    std::vector<std::size_t> cols_idx_;  // column index per nonzero
    std::vector<double> values_;
};

/// Stacks A over B (A.cols() == B.cols()).
SparseMatrix sparse_vstack(const SparseMatrix& a, const SparseMatrix& b);

/// CSR transpose (counting pass, values copied verbatim).  Row j of the
/// result lists column j of A with source rows ascending — exactly the
/// order in which the Gram kernels visit column j's carriers, which is
/// what lets `gram_column` reproduce a Gram row bitwise without the
/// Gram ever existing.
SparseMatrix transpose(const SparseMatrix& a);

/// Scatters row j of G = A'A into `scratch` (caller-owned, length
/// A.cols(), all-zero on entry) and appends the ascending support
/// indices to `support` (cleared first).  `at` must be transpose(A)'s
/// view.  The accumulation visits column j's carriers in source-row
/// order and folds each carrying row's full span — the same loop, in
/// the same order, as gram_sparse / gram_sparse_csr run for output row
/// j, so the scattered values are bitwise equal to that Gram row and
/// entries that cancel to exactly 0.0 are absent from `support`.  The
/// caller must zero the support entries of `scratch` back before the
/// next call.
void gram_column(const CsrView& a, const CsrView& at, std::size_t j,
                 double* scratch, std::vector<std::size_t>& support);

/// Dense Gram matrix G = A'A accumulated from row outer products over
/// the nonzeros only — A is never densified, so the arithmetic cost is
/// sum_i nnz(row_i)^2 instead of the nnz * cols of the densifying
/// path.  Element-for-element the accumulation order matches
/// gram(A.to_dense()) (source rows ascending), so the two are bitwise
/// equal on finite inputs.  SparseMatrix::gram() forwards here.
Matrix gram_sparse(const SparseMatrix& a);

/// Gram matrix G = A'A in CSR form (Gustavson's algorithm: one dense
/// scratch row that stays cache-resident, harvested in column order
/// per output row).  Nothing of size cols^2 is ever allocated, which
/// is what makes Gram construction possible at scales where the dense
/// matrix cannot exist at all (a 200-PoP backbone's 39800^2 Gram is
/// ~12.7 GB dense; its CSR form holds only the structurally coupled
/// pair-pairs).  Values accumulate in the same source-row-ascending
/// order as the dense kernels: to_dense() of the result equals
/// gram(A.to_dense()) bitwise on finite inputs (entries that cancel to
/// exactly 0.0 become structural zeros).
SparseMatrix gram_sparse_csr(const SparseMatrix& a);

}  // namespace tme::linalg
