#include "core/bayesian.hpp"

#include <stdexcept>

#include "linalg/nnls.hpp"

namespace tme::core {

linalg::Vector bayesian_estimate(const SnapshotProblem& problem,
                                 const linalg::Vector& prior,
                                 const BayesianOptions& options) {
    problem.validate();
    const linalg::SparseMatrix& r = *problem.routing;
    if (prior.size() != r.cols()) {
        throw std::invalid_argument("bayesian_estimate: prior size mismatch");
    }
    if (options.regularization <= 0.0) {
        throw std::invalid_argument(
            "bayesian_estimate: regularization must be positive");
    }
    const double w = 1.0 / options.regularization;  // sigma^{-2}

    linalg::Matrix g;
    if (options.shared_gram != nullptr) {
        if (options.shared_gram->rows() != r.cols() ||
            options.shared_gram->cols() != r.cols()) {
            throw std::invalid_argument(
                "bayesian_estimate: shared gram dimension mismatch");
        }
        g = *options.shared_gram;
    } else {
        g = r.gram();
    }
    for (std::size_t i = 0; i < g.rows(); ++i) g(i, i) += w;
    linalg::Vector rhs = r.multiply_transpose(problem.loads);
    for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] += w * prior[i];

    linalg::NnlsOptions nnls_options;
    nnls_options.warm_start = options.warm_start;
    return linalg::nnls_gram(g, rhs, 0.0, nnls_options).x;
}

}  // namespace tme::core
