#include "routing/routing_matrix.hpp"

#include <gtest/gtest.h>

#include "topology/builders.hpp"

namespace tme::routing {
namespace {

TEST(RoutingMatrix, DimensionsMatchTopology) {
    const topology::Topology t = topology::europe_backbone();
    const linalg::SparseMatrix r = igp_routing_matrix(t);
    EXPECT_EQ(r.rows(), t.link_count());
    EXPECT_EQ(r.cols(), t.pair_count());
}

TEST(RoutingMatrix, ValidatorAcceptsIgpMatrix) {
    const topology::Topology t = topology::europe_backbone();
    const linalg::SparseMatrix r = igp_routing_matrix(t);
    EXPECT_EQ(validate_routing_matrix(t, r), "");
}

TEST(RoutingMatrix, ValidatorAcceptsUsMatrix) {
    const topology::Topology t = topology::us_backbone();
    const linalg::SparseMatrix r = igp_routing_matrix(t);
    EXPECT_EQ(validate_routing_matrix(t, r), "");
}

TEST(RoutingMatrix, EveryColumnHasEdgeRows) {
    const topology::Topology t = topology::tiny_backbone();
    const linalg::SparseMatrix r = igp_routing_matrix(t);
    for (std::size_t p = 0; p < r.cols(); ++p) {
        const auto [src, dst] = t.pair_nodes(p);
        EXPECT_DOUBLE_EQ(r.at(t.ingress_link(src), p), 1.0);
        EXPECT_DOUBLE_EQ(r.at(t.egress_link(dst), p), 1.0);
    }
}

TEST(RoutingMatrix, EdgeRowsSumNodeTraffic) {
    // t = R s: the ingress row of node n must equal sum of demands from
    // n (paper Section 3.1's t_e(n)).
    const topology::Topology t = topology::tiny_backbone();
    const linalg::SparseMatrix r = igp_routing_matrix(t);
    linalg::Vector s(t.pair_count());
    for (std::size_t p = 0; p < s.size(); ++p) {
        s[p] = 1.0 + static_cast<double>(p);
    }
    const linalg::Vector loads = link_loads(r, s);
    for (std::size_t n = 0; n < t.pop_count(); ++n) {
        double expected = 0.0;
        for (std::size_t m = 0; m < t.pop_count(); ++m) {
            if (m != n) expected += s[t.pair_index(n, m)];
        }
        EXPECT_NEAR(loads[t.ingress_link(n)], expected, 1e-12);
    }
}

TEST(RoutingMatrix, FlowConservationAtEveryPop) {
    // Traffic into a PoP (ingress + incoming core) equals traffic out
    // (egress + outgoing core) for any demand vector.
    const topology::Topology t = topology::europe_backbone();
    const linalg::SparseMatrix r = igp_routing_matrix(t);
    linalg::Vector s(t.pair_count());
    for (std::size_t p = 0; p < s.size(); ++p) {
        s[p] = 0.5 + static_cast<double>((p * 13) % 7);
    }
    const linalg::Vector loads = link_loads(r, s);
    for (std::size_t n = 0; n < t.pop_count(); ++n) {
        double in = loads[t.ingress_link(n)];
        double out = loads[t.egress_link(n)];
        for (std::size_t lid : t.core_links()) {
            const topology::Link& l = t.link(lid);
            if (l.dst == n) in += loads[lid];
            if (l.src == n) out += loads[lid];
        }
        EXPECT_NEAR(in, out, 1e-9) << "PoP " << t.pop(n).name;
    }
}

TEST(RoutingMatrix, MeshMismatchThrows) {
    const topology::Topology t = topology::tiny_backbone();
    std::vector<Lsp> mesh(t.pair_count());
    // Leave paths empty/wrong: src/dst default to 0,0 which mismatches.
    EXPECT_THROW(build_routing_matrix(t, mesh), std::invalid_argument);
    EXPECT_THROW(build_routing_matrix(t, std::vector<Lsp>(3)),
                 std::invalid_argument);
}

TEST(RoutingMatrix, ColumnNonzerosEqualsPathPlusEdges) {
    const topology::Topology t = topology::europe_backbone();
    const linalg::SparseMatrix r = igp_routing_matrix(t);
    for (std::size_t p = 0; p < r.cols(); p += 17) {
        const auto [src, dst] = t.pair_nodes(p);
        const auto path = shortest_path(t, src, dst);
        ASSERT_TRUE(path);
        EXPECT_EQ(r.column_nonzeros(p), path->size() + 2);
    }
}

}  // namespace
}  // namespace tme::routing
