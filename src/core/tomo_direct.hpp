// Combining tomography with direct measurements (paper Section 5.3.6).
//
// A handful of exactly-measured demands (e.g. from targeted NetFlow or
// per-LSP counters) sharply improves link-load tomography: the measured
// demands' contribution is subtracted from the loads, their routing
// columns are removed, and the estimator runs on the reduced problem.
//
// Two selection strategies from the paper:
//  * greedy  — exhaustive search each step for the demand whose exact
//              measurement most decreases the MRE (the oracle curve of
//              Fig. 16);
//  * largest_first — measure demands by size, the "viable practical
//              approach" the paper discusses (estimators rank demand
//              sizes accurately), which needs noticeably more
//              measurements for the same MRE.
#pragma once

#include <functional>

#include "core/entropy.hpp"
#include "core/problem.hpp"

namespace tme::core {

/// Estimator run on the reduced problem: given (problem, prior) returns
/// the demand estimate.  Defaults to the Entropy method as in the paper.
using ReducedEstimator = std::function<linalg::Vector(
    const SnapshotProblem&, const linalg::Vector&)>;

struct DirectMeasurementOptions {
    /// How many demands to measure (curve length).
    std::size_t max_measured = 0;  ///< 0 = all pairs
    /// MRE threshold (same value used for the reported curve).
    double threshold = 0.0;
    /// Estimator for the reduced problems; defaults to Entropy with
    /// regularization 1000.
    ReducedEstimator estimator;
};

struct DirectMeasurementCurve {
    /// measured[i] = pair measured at step i (in order).
    std::vector<std::size_t> measured;
    /// mre[i] = MRE after i demands are measured (mre[0] = no direct
    /// measurements), so size is measured.size() + 1.
    linalg::Vector mre;
};

/// Estimates with a fixed set of exactly-measured demands and returns
/// the full estimate vector (measured entries set to their true values).
linalg::Vector estimate_with_measured(const SnapshotProblem& problem,
                                      const linalg::Vector& prior,
                                      const linalg::Vector& true_demands,
                                      const std::vector<std::size_t>& measured,
                                      const ReducedEstimator& estimator);

/// Greedy oracle selection (exhaustive search per step, as in the paper).
DirectMeasurementCurve greedy_direct_measurements(
    const SnapshotProblem& problem, const linalg::Vector& prior,
    const linalg::Vector& true_demands,
    const DirectMeasurementOptions& options);

/// Measure demands in descending true-size order.
DirectMeasurementCurve largest_first_direct_measurements(
    const SnapshotProblem& problem, const linalg::Vector& prior,
    const linalg::Vector& true_demands,
    const DirectMeasurementOptions& options);

}  // namespace tme::core
