#include "scenario/scenario.hpp"

#include <algorithm>
#include <stdexcept>

#include "linalg/cholesky.hpp"
#include "linalg/stats.hpp"
#include "routing/routing_matrix.hpp"
#include "topology/builders.hpp"
#include "traffic/demand_model.hpp"

namespace tme::scenario {

core::SeriesProblem Scenario::busy_series() const {
    return busy_series_window(busy_length);
}

core::SeriesProblem Scenario::busy_series_window(std::size_t k) const {
    if (k == 0 || busy_start + k > loads.size()) {
        throw std::invalid_argument("busy_series_window: bad window");
    }
    core::SeriesProblem problem;
    problem.topo = &topo;
    problem.routing = &routing;
    problem.loads.assign(loads.begin() + static_cast<std::ptrdiff_t>(busy_start),
                         loads.begin() + static_cast<std::ptrdiff_t>(busy_start + k));
    return problem;
}

core::SnapshotProblem Scenario::busy_snapshot() const {
    core::SnapshotProblem problem;
    problem.topo = &topo;
    problem.routing = &routing;
    problem.loads = loads[busy_mid()];
    return problem;
}

const linalg::Vector& Scenario::busy_snapshot_demands() const {
    return demands[busy_mid()];
}

linalg::Vector Scenario::busy_mean_demands() const {
    std::vector<linalg::Vector> window(
        demands.begin() + static_cast<std::ptrdiff_t>(busy_start),
        demands.begin() + static_cast<std::ptrdiff_t>(busy_start + busy_length));
    return linalg::sample_mean(window);
}

double Scenario::total_at(std::size_t k) const {
    return linalg::sum(demands.at(k));
}

namespace {

// Orthogonal projection of x onto the row space of R, computed via the
// normal equations on RR' (regularized for rank deficiency).
linalg::Vector project_rowspace(const linalg::SparseMatrix& r,
                                const linalg::Vector& x) {
    const std::size_t links = r.rows();
    // RR' assembled densely (links x links; at most 284 here).
    const linalg::Matrix dense = r.to_dense();
    // lint: allow(dense-alloc) — links x links, bounded by the comment above
    linalg::Matrix rrt(links, links, 0.0);
    for (std::size_t i = 0; i < links; ++i) {
        for (std::size_t j = i; j < links; ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < dense.cols(); ++k) {
                acc += dense(i, k) * dense(j, k);
            }
            rrt(i, j) = acc;
            rrt(j, i) = acc;
        }
    }
    const linalg::Vector w =
        linalg::solve_spd_robust(rrt, r.multiply(x));
    return r.multiply_transpose(w);
}

Scenario assemble(std::string name, topology::Topology topo,
                  const traffic::DemandModelConfig& demand_config,
                  const traffic::SeriesConfig& series_config,
                  std::size_t busy_start, double rowspace_alignment,
                  std::size_t busy_length = 50, bool igp_routing = false) {
    Scenario sc;
    sc.name = std::move(name);
    sc.topo = std::move(topo);
    sc.busy_start = busy_start;
    sc.busy_length = busy_length;

    // Spatial base demands (normalized to unit total).
    sc.base_mean = traffic::base_demands(sc.topo, demand_config);

    // CSPF LSP mesh: bandwidth values from the base demands, scaled so
    // the largest demand is ~1200 Mbps (the paper mentions this as the
    // order of the largest demands).  Generated stress-scaling
    // scenarios route over plain IGP shortest paths instead.
    double max_base = 0.0;
    for (double v : sc.base_mean) max_base = std::max(max_base, v);
    sc.scale_mbps = 1200.0 / std::max(max_base, 1e-12);
    if (igp_routing) {
        sc.routing = routing::igp_routing_matrix(sc.topo);
    } else {
        linalg::Vector bandwidth = sc.base_mean;
        for (double& v : bandwidth) v *= sc.scale_mbps;
        routing::CspfOptions cspf;
        cspf.max_utilization = 1.0;
        cspf.fallback_to_igp = true;
        const std::vector<routing::Lsp> mesh =
            routing::build_lsp_mesh(sc.topo, bandwidth, cspf);
        sc.routing = routing::build_routing_matrix(sc.topo, mesh);
    }

    // Row-space alignment (see the header): shrink the component of the
    // matrix's own gravity error that the link loads cannot see.  The
    // error is measured against the matrix's gravity image (so it covers
    // the structural zero-diagonal bias as well as jitter/hotspots); a
    // few sweeps are needed because reshaping changes the marginals.
    if (rowspace_alignment > 0.0) {
        const linalg::Vector structural =
            traffic::structural_demands(sc.topo);
        const std::size_t nodes = sc.topo.pop_count();
        for (int sweep = 0; sweep < 3; ++sweep) {
            const linalg::Vector gravity_image =
                traffic::gravity_from_marginals(nodes, sc.base_mean);
            linalg::Vector pert =
                linalg::sub(sc.base_mean, gravity_image);
            const linalg::Vector visible =
                project_rowspace(sc.routing, pert);
            double total = 0.0;
            for (std::size_t p = 0; p < sc.base_mean.size(); ++p) {
                const double hidden = pert[p] - visible[p];
                double v = gravity_image[p] + visible[p] +
                           (1.0 - rowspace_alignment) * hidden;
                // Keep demands positive; tiny floor relative to the
                // structural pattern.
                v = std::max(v, 0.01 * structural[p]);
                sc.base_mean[p] = v;
                total += v;
            }
            for (double& v : sc.base_mean) v /= total;
        }
    }

    // 24 h of 5-minute traffic matrices.
    sc.demands = traffic::generate_series(sc.topo, sc.base_mean,
                                          series_config);

    // Normalize by the maximum total traffic over the period (the paper
    // scales all plots this way).
    double max_total = 0.0;
    for (const linalg::Vector& s : sc.demands) {
        max_total = std::max(max_total, linalg::sum(s));
    }
    if (max_total <= 0.0) {
        throw std::logic_error("assemble: degenerate traffic series");
    }
    for (linalg::Vector& s : sc.demands) {
        for (double& v : s) v /= max_total;
    }
    for (double& v : sc.base_mean) v /= max_total;
    sc.scale_mbps *= max_total;

    // Consistent link loads (evaluation data set, Section 5.1.4).
    sc.loads.reserve(sc.demands.size());
    for (const linalg::Vector& s : sc.demands) {
        sc.loads.push_back(sc.routing.multiply(s));
    }
    return sc;
}

}  // namespace

Scenario make_scenario(Network network, unsigned seed) {
    // Busy window: 17:00-21:10 GMT (samples 204..253), where the
    // continental busy periods overlap (paper Fig. 1 shading).
    constexpr std::size_t busy_start = 204;

    if (network == Network::europe) {
        traffic::DemandModelConfig demand;
        demand.seed = 1000 + seed;
        demand.lognormal_sigma = 0.12;   // near-gravity spatial structure
        demand.hotspots_per_source = 2;
        demand.hotspot_strength = 0.25;  // mild gravity violations

        traffic::SeriesConfig series;
        series.profile.peak_minute = 16.0 * 60.0;  // 16:00 GMT
        series.profile.trough_fraction = 0.35;
        series.profile.sharpness = 2.0;
        series.reference_longitude = 8.0;  // central Europe
        series.minutes_per_degree = 4.0;
        series.noise.phi = 0.0008;
        series.noise.c = 1.6;             // paper Fig. 6 (Europe)
        series.seed = 2000 + seed;

        return assemble("Europe", topology::europe_backbone(), demand,
                        series, busy_start, /*rowspace_alignment=*/0.5);
    }

    traffic::DemandModelConfig demand;
    demand.seed = 3000 + seed;
    demand.lognormal_sigma = 0.30;
    demand.hotspots_per_source = 2;
    demand.hotspot_strength = 4.0;  // strong per-PoP dominating destinations

    traffic::SeriesConfig series;
    series.profile.peak_minute = 20.0 * 60.0;  // 20:00 GMT
    series.profile.trough_fraction = 0.35;
    series.profile.sharpness = 2.0;
    series.reference_longitude = -95.0;  // central US
    series.minutes_per_degree = 4.0;
    series.noise.phi = 0.0015;
    series.noise.c = 1.5;                // paper Fig. 6 (America)
    series.seed = 4000 + seed;

    return assemble("USA", topology::us_backbone(), demand, series,
                    busy_start, /*rowspace_alignment=*/0.55);
}

void replay(const Scenario& sc, const std::vector<RouteChangeEvent>& events,
            const SampleSink& sink) {
    if (!sink) {
        throw std::invalid_argument("replay: null sink");
    }
    for (std::size_t e = 0; e < events.size(); ++e) {
        if (events[e].routing == nullptr) {
            throw std::invalid_argument("replay: null event routing");
        }
        if (events[e].routing->cols() != sc.topo.pair_count() ||
            events[e].routing->rows() != sc.routing.rows()) {
            throw std::invalid_argument(
                "replay: event routing dimensions do not match the "
                "scenario");
        }
        if (e > 0 && events[e].at_sample < events[e - 1].at_sample) {
            throw std::invalid_argument("replay: events not sorted");
        }
    }
    std::size_t next_event = 0;
    const linalg::SparseMatrix* active = &sc.routing;
    for (std::size_t k = 0; k < sc.demands.size(); ++k) {
        while (next_event < events.size() &&
               events[next_event].at_sample <= k) {
            active = events[next_event].routing;
            ++next_event;
        }
        if (active == &sc.routing) {
            sink(k, *active, sc.loads[k], sc.demands[k]);
        } else {
            sink(k, *active, active->multiply(sc.demands[k]),
                 sc.demands[k]);
        }
    }
}

Scenario make_generated_scenario(const GeneratedScenarioConfig& config) {
    if (config.samples < 2) {
        throw std::invalid_argument(
            "make_generated_scenario: need at least 2 samples");
    }
    topology::Topology topo = topology::generated_backbone(
        config.pops, config.avg_core_degree, config.seed);

    traffic::DemandModelConfig demand;
    demand.seed = 7000 + config.seed;
    demand.lognormal_sigma = 0.3;
    demand.hotspots_per_source = 2;
    demand.hotspot_strength = 2.0;

    traffic::SeriesConfig series;
    series.profile.peak_minute = 18.0 * 60.0;
    series.profile.trough_fraction = 0.35;
    series.profile.sharpness = 2.0;
    series.reference_longitude = -95.0;
    series.minutes_per_degree = 4.0;
    series.noise.phi = 0.0015;
    series.noise.c = 1.5;
    series.seed = 8000 + config.seed;
    series.samples = config.samples;

    // Busy window around the 18:00 peak, clipped to short smoke-test
    // days (which never reach the peak — any window is fine there).
    constexpr std::size_t peak_sample = 216;  // 18:00 in 5-min bins
    const std::size_t busy_length =
        std::min<std::size_t>(50, std::max<std::size_t>(1,
                                                        config.samples / 2));
    std::size_t busy_start =
        peak_sample >= 25 ? peak_sample - 25 : 0;
    if (busy_start + busy_length > config.samples) {
        busy_start = config.samples - busy_length;
    }

    const std::string name = "Generated-" + std::to_string(config.pops) +
                             "pop-seed" + std::to_string(config.seed);
    return assemble(name, std::move(topo), demand, series, busy_start,
                    /*rowspace_alignment=*/0.0, busy_length,
                    /*igp_routing=*/!config.cspf_routing);
}

Scenario make_custom_scenario(topology::Topology topo,
                              const CustomScenarioConfig& config,
                              const std::string& name) {
    traffic::DemandModelConfig demand;
    demand.seed = 5000 + config.seed;
    demand.lognormal_sigma = config.lognormal_sigma;
    demand.additive_sigma = config.additive_sigma;
    demand.hotspots_per_source = config.hotspots_per_source;
    demand.hotspot_strength = config.hotspot_strength;

    traffic::SeriesConfig series;
    series.profile.peak_minute = config.peak_minute;
    series.reference_longitude = config.reference_longitude;
    series.minutes_per_degree = config.minutes_per_degree;
    series.noise.phi = config.noise_phi;
    series.noise.c = config.noise_c;
    series.seed = 6000 + config.seed;

    // Busy window centred on the configured peak.
    const std::size_t peak_sample = static_cast<std::size_t>(
        config.peak_minute / 5.0);
    const std::size_t busy_start =
        peak_sample >= 25 ? peak_sample - 25 : 0;

    return assemble(name, std::move(topo), demand, series, busy_start,
                    config.rowspace_alignment);
}

}  // namespace tme::scenario
