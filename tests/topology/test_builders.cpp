#include "topology/builders.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/route_change.hpp"
#include "routing/routing_matrix.hpp"

namespace tme::topology {
namespace {

// The paper's published dimensions (Section 5.1.4) are hard requirements.
TEST(Builders, EuropeMatchesPaperDimensions) {
    const Topology t = europe_backbone();
    EXPECT_EQ(t.pop_count(), 12u);
    EXPECT_EQ(t.link_count(), 72u);
    EXPECT_EQ(t.pair_count(), 132u);
    EXPECT_EQ(t.core_link_count(), 48u);
}

TEST(Builders, UsMatchesPaperDimensions) {
    const Topology t = us_backbone();
    EXPECT_EQ(t.pop_count(), 25u);
    EXPECT_EQ(t.link_count(), 284u);
    EXPECT_EQ(t.pair_count(), 600u);
    EXPECT_EQ(t.core_link_count(), 234u);
}

TEST(Builders, EuropeStronglyConnected) {
    EXPECT_TRUE(europe_backbone().strongly_connected());
}

TEST(Builders, UsStronglyConnected) {
    EXPECT_TRUE(us_backbone().strongly_connected());
}

TEST(Builders, CoreLinksComeInPairs) {
    for (const Topology& t : {europe_backbone(), us_backbone()}) {
        for (std::size_t lid : t.core_links()) {
            const Link& l = t.link(lid);
            bool reverse_found = false;
            for (std::size_t other : t.core_links()) {
                const Link& o = t.link(other);
                if (o.src == l.dst && o.dst == l.src) {
                    reverse_found = true;
                    EXPECT_DOUBLE_EQ(o.capacity_mbps, l.capacity_mbps);
                    EXPECT_DOUBLE_EQ(o.igp_metric, l.igp_metric);
                    break;
                }
            }
            EXPECT_TRUE(reverse_found)
                << "no reverse for " << t.pop(l.src).name << "->"
                << t.pop(l.dst).name;
        }
    }
}

TEST(Builders, MetricsReflectDistance) {
    const Topology t = europe_backbone();
    // London-Dublin is much shorter than Frankfurt-Stockholm.
    double lon_dub = 0.0;
    double fra_sto = 0.0;
    for (std::size_t lid : t.core_links()) {
        const Link& l = t.link(lid);
        const std::string& a = t.pop(l.src).name;
        const std::string& b = t.pop(l.dst).name;
        if (a == "London" && b == "Dublin") lon_dub = l.igp_metric;
        if (a == "Frankfurt" && b == "Stockholm") fra_sto = l.igp_metric;
    }
    ASSERT_GT(lon_dub, 0.0);
    ASSERT_GT(fra_sto, 0.0);
    EXPECT_LT(lon_dub, fra_sto);
}

TEST(Builders, WeightsAreHubSkewed) {
    const Topology t = europe_backbone();
    double wmax = 0.0;
    double wmin = 1e18;
    for (const Pop& p : t.pops()) {
        wmax = std::max(wmax, p.weight);
        wmin = std::min(wmin, p.weight);
    }
    EXPECT_GT(wmax / wmin, 10.0);  // hub dominance drives Fig. 2/3 skew
}

TEST(Builders, TinyBackboneIsUsable) {
    const Topology t = tiny_backbone();
    EXPECT_EQ(t.pop_count(), 4u);
    EXPECT_TRUE(t.strongly_connected());
}

TEST(Builders, RandomBackboneDeterministic) {
    const Topology a = random_backbone(10, 3.0, 77);
    const Topology b = random_backbone(10, 3.0, 77);
    ASSERT_EQ(a.link_count(), b.link_count());
    for (std::size_t i = 0; i < a.link_count(); ++i) {
        EXPECT_EQ(a.link(i).src, b.link(i).src);
        EXPECT_EQ(a.link(i).dst, b.link(i).dst);
    }
}

TEST(Builders, RandomBackboneConnected) {
    for (unsigned seed : {1u, 2u, 3u, 4u}) {
        EXPECT_TRUE(random_backbone(8, 3.0, seed).strongly_connected())
            << "seed " << seed;
    }
}

TEST(Builders, RandomBackboneRejectsDegenerate) {
    EXPECT_THROW(random_backbone(1, 2.0, 1), std::invalid_argument);
}

// Same seed must give a bitwise-identical topology AND an identical
// routing fingerprint — generated-backbone scaling runs are only
// reproducible across processes/hosts if every derived quantity is.
TEST(Builders, GeneratedBackboneDeterministic) {
    const Topology a = generated_backbone(40, 4.0, 9);
    const Topology b = generated_backbone(40, 4.0, 9);
    ASSERT_EQ(a.pop_count(), b.pop_count());
    ASSERT_EQ(a.link_count(), b.link_count());
    for (std::size_t i = 0; i < a.pop_count(); ++i) {
        EXPECT_EQ(a.pop(i).name, b.pop(i).name);
        EXPECT_EQ(a.pop(i).latitude, b.pop(i).latitude);
        EXPECT_EQ(a.pop(i).longitude, b.pop(i).longitude);
        EXPECT_EQ(a.pop(i).weight, b.pop(i).weight);
    }
    for (std::size_t i = 0; i < a.link_count(); ++i) {
        EXPECT_EQ(a.link(i).src, b.link(i).src);
        EXPECT_EQ(a.link(i).dst, b.link(i).dst);
        EXPECT_EQ(a.link(i).capacity_mbps, b.link(i).capacity_mbps);
        EXPECT_EQ(a.link(i).igp_metric, b.link(i).igp_metric);
    }
    const std::uint64_t fa =
        core::routing_fingerprint(routing::igp_routing_matrix(a));
    const std::uint64_t fb =
        core::routing_fingerprint(routing::igp_routing_matrix(b));
    EXPECT_EQ(fa, fb);
    // A different seed moves the PoPs, so the routing must differ too.
    const std::uint64_t fc = core::routing_fingerprint(
        routing::igp_routing_matrix(generated_backbone(40, 4.0, 10)));
    EXPECT_NE(fa, fc);
}

TEST(Builders, GeneratedBackboneStructure) {
    const std::size_t pops = 60;
    const double degree = 4.0;
    const Topology t = generated_backbone(pops, degree, 3);
    EXPECT_EQ(t.pop_count(), pops);
    EXPECT_TRUE(t.strongly_connected());
    // Every PoP has its two edge links; core edges hit the requested
    // average degree (each undirected adjacency = 2 directed links).
    EXPECT_EQ(t.link_count(), 2 * pops + t.core_link_count());
    EXPECT_EQ(t.core_link_count(),
              2 * static_cast<std::size_t>(degree * pops / 2.0));
    // Zipf-like hub hierarchy: clear weight dominance.
    double wmax = 0.0;
    double wmin = 1e18;
    for (const Pop& p : t.pops()) {
        wmax = std::max(wmax, p.weight);
        wmin = std::min(wmin, p.weight);
    }
    EXPECT_GT(wmax / wmin, 10.0);
}

TEST(Builders, GeneratedBackboneRejectsDegenerate) {
    EXPECT_THROW(generated_backbone(1, 4.0, 1), std::invalid_argument);
    EXPECT_THROW(generated_backbone(10, 0.5, 1), std::invalid_argument);
}

}  // namespace
}  // namespace tme::topology
