// Figure 5: the fanouts associated with Figure 4's demands — much more
// stable over the day than the demands themselves.
#include "bench_common.hpp"

#include <cmath>

#include "linalg/stats.hpp"
#include "traffic/traffic_matrix.hpp"

int main() {
    using namespace tme;
    bench::header(
        "Figure 5 - fanouts of the largest US PoPs over time",
        "Fig. 5: fanouts far more stable than demands (Sec. 5.2.2)",
        "fanout CV a small fraction of demand CV for large sources; "
        "small demands' fanouts can fluctuate more");

    const scenario::Scenario& sc = bench::usa();
    const std::size_t n = sc.topo.pop_count();
    traffic::TrafficMatrix mean_tm(n, sc.busy_mean_demands());
    const linalg::Vector totals = mean_tm.row_totals();
    std::vector<std::size_t> sources(n);
    for (std::size_t i = 0; i < n; ++i) sources[i] = i;
    std::sort(sources.begin(), sources.end(),
              [&totals](auto a, auto b) { return totals[a] > totals[b]; });
    sources.resize(4);

    std::printf("%-14s %-14s %12s %12s %8s\n", "source", "dest",
                "demand CV", "fanout CV", "ratio");
    for (std::size_t src : sources) {
        std::vector<std::size_t> dests;
        for (std::size_t m = 0; m < n; ++m) {
            if (m != src) dests.push_back(m);
        }
        std::sort(dests.begin(), dests.end(), [&](auto a, auto b) {
            return mean_tm(src, a) > mean_tm(src, b);
        });
        dests.resize(4);
        for (std::size_t d : dests) {
            linalg::Vector demand_series;
            linalg::Vector fanout_series;
            for (std::size_t k = 0; k < sc.demands.size(); ++k) {
                const double v =
                    sc.demands[k][sc.topo.pair_index(src, d)];
                const linalg::Vector row_totals =
                    traffic::node_totals_from_demands(n, sc.demands[k]);
                demand_series.push_back(v);
                fanout_series.push_back(
                    row_totals[src] > 0.0 ? v / row_totals[src] : 0.0);
            }
            auto cv = [](const linalg::Vector& xs) {
                return std::sqrt(linalg::variance(xs)) / linalg::mean(xs);
            };
            const double dcv = cv(demand_series);
            const double fcv = cv(fanout_series);
            std::printf("%-14s %-14s %12.3f %12.3f %8.2f\n",
                        sc.topo.pop(src).name.c_str(),
                        sc.topo.pop(d).name.c_str(), dcv, fcv, dcv / fcv);
        }
    }
    std::printf(
        "\nratio >> 1 everywhere: fanouts are stable while demands follow\n"
        "the diurnal cycle, reproducing Figs. 4-5.\n");
    return 0;
}
